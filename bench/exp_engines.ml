(* E33: simulation-engine throughput — scalar vs bit-parallel vs multicore.

   The sampler workload of E16 (multiplier 8 DUT, bitwise macro-model
   trained on white noise, 10^4-cycle stream) is replayed through each
   engine of Hlp_sim.Engine. The bit-parallel engine packs 63 trace
   transitions into each word-wide Bitsim step, so the gate-level replay
   that dominates cosimulation preparation runs ~63x fewer gate
   evaluations; the estimates must not move (sampler/census bit-identical,
   adaptive/gate reference to round-off).

   Besides the printed tables, the run emits BENCH_engines.json: per-engine
   cycles/second and speedup, the Monte Carlo convergence trajectories
   (running mean and Student-t confidence half-width after every batch,
   captured through Hlp_util.Telemetry), and a telemetry-overhead
   measurement on the replay workload. *)

open Hlp_util

let fmt = Table.fmt_float

(* monotonic: an NTP step mid-benchmark must not fabricate a speedup *)
let time f =
  let t0 = Clock.now_s () in
  let r = f () in
  (r, Clock.now_s () -. t0)

(* the E16 sampler workload: macro-model trained on white noise, long
   uniform evaluation stream *)
let sampler_workload ~n =
  let dut =
    { Hlp_power.Macromodel.net = Hlp_logic.Generators.multiplier_circuit 8;
      widths = [ 8; 8 ] }
  in
  let rng = Prng.create 55 in
  let training =
    [ [ Hlp_sim.Streams.uniform rng ~width:8 ~n:400;
        Hlp_sim.Streams.uniform rng ~width:8 ~n:400 ] ]
  in
  let obs = List.map (Hlp_power.Macromodel.observe dut) training in
  let model = Hlp_power.Macromodel.fit Hlp_power.Macromodel.Bitwise dut obs in
  let traces =
    [ Hlp_sim.Streams.uniform rng ~width:8 ~n;
      Hlp_sim.Streams.uniform rng ~width:8 ~n ]
  in
  (model, dut, traces)

(* --- collected results (feed both the printed tables and the JSON) --- *)

type engine_result = {
  engine : string;
  replay_s : float;
  prepare_s : float;
  kcycles_per_s : float;
  speedup_vs_scalar : float;
  gate_ref : float;
  sampler_est : float;
  adaptive_est : float;
}

type mc_result = {
  mc_circuit : string;
  mc_engine : string;
  mc_estimate : float;
  mc_half_interval : float;
  mc_cycles_used : int;
  mc_batches : int;
  mc_seconds : float;
  running_mean : float array;
  ci_half_width : float array;
}

type overhead_result = {
  oh_cycles : int;
  oh_reps : int;
  disabled_a_s : float array;
  disabled_b_s : float array;
  enabled_s : float array;
  disabled_overhead_pct : float;
  enabled_overhead_pct : float;
}

let e33_throughput ?(n = 10_000) ?(assert_speedup = true) () =
  Trace.span "bench.e33_throughput" @@ fun () ->
  let model, dut, traces = sampler_workload ~n in
  let widths = dut.Hlp_power.Macromodel.widths in
  let vector i = Hlp_sim.Streams.pack ~widths traces i in
  let measure engine =
    (* replay = the gate-level simulation proper (the engine under test) *)
    let replay, replay_s =
      time (fun () ->
          Hlp_sim.Parsim.replay ~engine dut.Hlp_power.Macromodel.net ~vector ~n)
    in
    ignore replay;
    (* prepare = replay + macro-model window evaluation (the whole
       cosimulation setup the estimators run on) *)
    let t, prepare_s =
      time (fun () -> Hlp_power.Sampling.prepare ~engine model dut traces)
    in
    (engine, replay_s, t, prepare_s)
  in
  let measured = List.map measure Hlp_sim.Engine.all in
  let scalar_replay_s =
    match measured with (_, s, _, _) :: _ -> s | [] -> assert false
  in
  let scalar_t = match measured with (_, _, t, _) :: _ -> t | [] -> assert false in
  let results =
    List.map
      (fun (engine, replay_s, t, prepare_s) ->
        ( { engine = Hlp_sim.Engine.to_string engine;
            replay_s;
            prepare_s;
            kcycles_per_s = float_of_int n /. replay_s /. 1e3;
            speedup_vs_scalar = scalar_replay_s /. replay_s;
            gate_ref = Hlp_power.Sampling.gate_reference t;
            sampler_est =
              (Hlp_power.Sampling.sampler ~seed:77 t).Hlp_power.Sampling.value;
            adaptive_est =
              (Hlp_power.Sampling.adaptive ~seed:99 t).Hlp_power.Sampling.value },
          (engine, t) ))
      measured
  in
  let rows =
    List.map
      (fun (r, _) ->
        [ r.engine;
          Printf.sprintf "%.1f" (r.replay_s *. 1e3);
          Printf.sprintf "%.0f" r.kcycles_per_s;
          Printf.sprintf "%.1fx" r.speedup_vs_scalar;
          Printf.sprintf "%.1f" (r.prepare_s *. 1e3);
          fmt r.gate_ref;
          fmt r.sampler_est;
          fmt r.adaptive_est ])
      results
  in
  Table.print
    ~title:
      (Printf.sprintf
         "E33: engine throughput on the E16 sampler workload (multiplier 8, %d cycles)"
         n)
    ~align:
      [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
        Table.Right; Table.Right; Table.Right ]
    ~header:
      [ "engine"; "replay ms"; "kcycle/s"; "speedup"; "prepare ms";
        "gate ref"; "sampler"; "adaptive" ]
    rows;
  (* identical-estimate contract across engines *)
  let pinned = Hlp_power.Sampling.sampler ~seed:77 scalar_t in
  List.iter
    (fun (_, (engine, t)) ->
      let s = Hlp_power.Sampling.sampler ~seed:77 t in
      if s.Hlp_power.Sampling.value <> pinned.Hlp_power.Sampling.value then
        failwith
          (Printf.sprintf "E33: %s sampler estimate diverged from scalar"
             (Hlp_sim.Engine.to_string engine));
      let rel =
        Stats.relative_error
          ~actual:(Hlp_power.Sampling.gate_reference scalar_t)
          ~estimate:(Hlp_power.Sampling.gate_reference t)
      in
      if rel > 1e-9 then
        failwith
          (Printf.sprintf "E33: %s gate reference diverged from scalar"
             (Hlp_sim.Engine.to_string engine)))
    results;
  print_endline "estimates identical across engines: yes";
  (match
     List.find_opt
       (fun (_, (e, _)) -> e = Hlp_sim.Engine.Bitparallel)
       results
   with
  | Some (r, _) ->
      Printf.printf "bit-parallel replay speedup vs scalar: %.1fx (target >= 20x)\n"
        r.speedup_vs_scalar;
      if assert_speedup && r.speedup_vs_scalar < 20.0 then
        failwith "E33: bit-parallel engine below the 20x throughput target"
  | None -> ());
  print_newline ();
  List.map fst results

(* Run one Monte Carlo estimation with telemetry enabled and capture the
   convergence trajectory (running mean and 95% Student-t half-width after
   each stopping-rule evaluation) from the probprop series. *)
let mc_capture ~circuit ~engine net =
  Telemetry.reset ();
  Telemetry.enable ();
  let mc, s =
    time (fun () -> Hlp_power.Probprop.monte_carlo ~seed:47 ~engine net)
  in
  let running_mean =
    Telemetry.observations (Telemetry.series "probprop.running_mean")
  in
  let ci_half_width =
    Telemetry.observations (Telemetry.series "probprop.ci_half_width")
  in
  Telemetry.disable ();
  Telemetry.reset ();
  {
    mc_circuit = circuit;
    mc_engine = Hlp_sim.Engine.to_string engine;
    mc_estimate = mc.Hlp_power.Probprop.estimate;
    mc_half_interval = mc.Hlp_power.Probprop.half_interval;
    mc_cycles_used = mc.Hlp_power.Probprop.cycles_used;
    mc_batches = mc.Hlp_power.Probprop.batches;
    mc_seconds = s;
    running_mean;
    ci_half_width;
  }

let e33_monte_carlo () =
  Trace.span "bench.e33_monte_carlo" @@ fun () ->
  let captured = ref [] in
  let rows =
    List.map
      (fun (label, net) ->
        let reference =
          let r =
            Hlp_sim.Parsim.monte_carlo_units ~engine:Hlp_sim.Engine.Bitparallel net
              ~batch:16 ~seed:9
              ~stop:(fun ~means:_ ~cycles -> cycles >= 20_000)
          in
          r.Hlp_sim.Parsim.mean
        in
        let per engine =
          let r = mc_capture ~circuit:label ~engine net in
          captured := r :: !captured;
          r
        in
        let sc = per Hlp_sim.Engine.Scalar in
        let bp = per Hlp_sim.Engine.Bitparallel in
        [ label; fmt reference;
          fmt sc.mc_estimate;
          string_of_int sc.mc_cycles_used;
          fmt bp.mc_estimate;
          string_of_int bp.mc_cycles_used;
          (* cycles/second ratio: the bit engine simulates many more cycles
             (63 lanes per unit), so compare throughput, not latency *)
          Printf.sprintf "%.1fx"
            (float_of_int bp.mc_cycles_used /. bp.mc_seconds
            /. (float_of_int sc.mc_cycles_used /. sc.mc_seconds)) ])
      [
        ("adder 8", Hlp_logic.Generators.adder_circuit 8);
        ("multiplier 6", Hlp_logic.Generators.multiplier_circuit 6);
        ("alu 6", Hlp_logic.Generators.alu_circuit 6);
      ]
  in
  Table.print
    ~title:
      "E33b: Monte Carlo stopping per engine (estimates agree statistically; bit engine amortizes 63 streams/word)"
    ~align:
      [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
        Table.Right; Table.Right ]
    ~header:
      [ "circuit"; "20k-cycle ref"; "scalar est"; "cycles"; "bitpar est";
        "cycles"; "throughput" ]
    rows;
  List.rev !captured

(* Telemetry-overhead measurement on the E33 replay workload: interleaved
   rounds of (disabled, enabled, disabled) bit-parallel replays. The two
   disabled batches run identical code, so their difference is an A/A
   noise floor that bounds the cost of the disabled-mode instrumentation
   (one predictable branch per step plus plain per-instance tallies); the
   enabled batch measures the full aggregation cost. *)
let telemetry_overhead ?(n = 10_000) ?(reps = 5) () =
  Trace.span "bench.telemetry_overhead" @@ fun () ->
  let _model, dut, traces = sampler_workload ~n in
  let widths = dut.Hlp_power.Macromodel.widths in
  let vector i = Hlp_sim.Streams.pack ~widths traces i in
  let net = dut.Hlp_power.Macromodel.net in
  let run () =
    ignore
      (Hlp_sim.Parsim.replay ~engine:Hlp_sim.Engine.Bitparallel net ~vector ~n)
  in
  Telemetry.disable ();
  run ();
  (* warm-up *)
  let timed () = snd (time run) in
  let disabled_a_s = Array.make reps 0.0 in
  let disabled_b_s = Array.make reps 0.0 in
  let enabled_s = Array.make reps 0.0 in
  for i = 0 to reps - 1 do
    Telemetry.disable ();
    disabled_a_s.(i) <- timed ();
    Telemetry.enable ();
    enabled_s.(i) <- timed ();
    Telemetry.disable ();
    disabled_b_s.(i) <- timed ()
  done;
  Telemetry.disable ();
  Telemetry.reset ();
  let minimum a = Array.fold_left min a.(0) a in
  let da = minimum disabled_a_s and db = minimum disabled_b_s in
  let d = min da db in
  let disabled_overhead_pct = abs_float (db -. da) /. da *. 100.0 in
  let enabled_overhead_pct = (minimum enabled_s -. d) /. d *. 100.0 in
  Printf.printf
    "telemetry overhead (bit-parallel replay, %d cycles, best of %d):\n" n reps;
  Printf.printf "  disabled A/A spread: %.2f%% (bounds the off-switch cost)\n"
    disabled_overhead_pct;
  Printf.printf "  enabled vs disabled: %.2f%%\n" enabled_overhead_pct;
  print_newline ();
  {
    oh_cycles = n;
    oh_reps = reps;
    disabled_a_s;
    disabled_b_s;
    enabled_s;
    disabled_overhead_pct;
    enabled_overhead_pct;
  }

(* E35: span-tracing overhead on the same replay workload, measured the
   same way as the telemetry overhead: interleaved (disabled, enabled,
   disabled) rounds. The disabled A/A spread bounds the cost of the
   one-branch-when-off discipline (the acceptance budget is < 2%); the
   enabled round measures full event recording (the workload records a
   handful of events per rep against a 65536-slot buffer, so the
   recording path is always the one paid, never the buffer-full drop
   path). When the caller is tracing the bench run itself (--trace), the
   recorded history is left untouched. *)
let tracing_overhead ?(n = 10_000) ?(reps = 7) () =
  Trace.span "bench.e35_tracing_overhead" @@ fun () ->
  let _model, dut, traces = sampler_workload ~n in
  let widths = dut.Hlp_power.Macromodel.widths in
  let vector i = Hlp_sim.Streams.pack ~widths traces i in
  let net = dut.Hlp_power.Macromodel.net in
  let run () =
    ignore
      (Hlp_sim.Parsim.replay ~engine:Hlp_sim.Engine.Bitparallel net ~vector ~n)
  in
  let was_on = Trace.enabled () in
  Trace.disable ();
  run ();
  (* warm-up *)
  let timed () = snd (time run) in
  let disabled_a_s = Array.make reps 0.0 in
  let disabled_b_s = Array.make reps 0.0 in
  let enabled_s = Array.make reps 0.0 in
  for i = 0 to reps - 1 do
    Trace.disable ();
    disabled_a_s.(i) <- timed ();
    Trace.enable ();
    enabled_s.(i) <- timed ();
    Trace.disable ();
    disabled_b_s.(i) <- timed ()
  done;
  if was_on then Trace.enable () else Trace.reset ();
  let minimum a = Array.fold_left min a.(0) a in
  let da = minimum disabled_a_s and db = minimum disabled_b_s in
  let d = min da db in
  let disabled_overhead_pct = abs_float (db -. da) /. da *. 100.0 in
  let enabled_overhead_pct = (minimum enabled_s -. d) /. d *. 100.0 in
  Printf.printf
    "E35: tracing overhead (bit-parallel replay, %d cycles, best of %d):\n" n
    reps;
  Printf.printf "  disabled A/A spread: %.2f%% (bounds the off-switch cost, budget < 2%%)\n"
    disabled_overhead_pct;
  Printf.printf "  enabled vs disabled: %.2f%%\n" enabled_overhead_pct;
  print_newline ();
  {
    oh_cycles = n;
    oh_reps = reps;
    disabled_a_s;
    disabled_b_s;
    enabled_s;
    disabled_overhead_pct;
    enabled_overhead_pct;
  }

(* E34: cost of the guarded path when nothing goes wrong. The replay
   workload runs interleaved (raw, guarded, raw) rounds: raw calls
   Parsim.replay directly, guarded goes through Parsim.replay_guarded with
   a live deadline guard — the degradation chain, the guard checks, and
   the containment machinery all engaged, but no fault firing. The two raw
   batches bound the measurement noise the same way the telemetry A/A
   comparison does. Also exercises the symbolic-to-sampling degradation
   once (tiny BDD budget) so the JSON records a complete fallback event
   with its telemetry counters. *)

type robustness_result = {
  ro_cycles : int;
  ro_reps : int;
  raw_a_s : float array;
  guarded_s : float array;
  raw_b_s : float array;
  raw_spread_pct : float;
  guarded_overhead_pct : float;
  (* one forced symbolic->sampling degradation, for the record *)
  fb_node_limit : int;
  fb_symbolic_fallbacks : int;
  fb_estimate : float;
}

let e34_robustness ?(n = 10_000) ?(reps = 5) () =
  Trace.span "bench.e34_robustness" @@ fun () ->
  let _model, dut, traces = sampler_workload ~n in
  let widths = dut.Hlp_power.Macromodel.widths in
  let vector i = Hlp_sim.Streams.pack ~widths traces i in
  let net = dut.Hlp_power.Macromodel.net in
  let raw () =
    ignore
      (Hlp_sim.Parsim.replay ~engine:Hlp_sim.Engine.Bitparallel net ~vector ~n)
  in
  let guarded () =
    match
      Hlp_sim.Parsim.replay_guarded
        ~guard:(Hlp_util.Guard.create ~deadline_s:3600.0 ())
        ~engine:Hlp_sim.Engine.Bitparallel net ~vector ~n
    with
    | Ok d -> assert (d.Hlp_sim.Parsim.fallbacks = 0)
    | Error e -> failwith ("E34: guarded replay failed: " ^ Hlp_util.Err.to_string e)
  in
  raw ();
  (* warm-up *)
  let timed f = snd (time f) in
  let raw_a_s = Array.make reps 0.0 in
  let guarded_s = Array.make reps 0.0 in
  let raw_b_s = Array.make reps 0.0 in
  for i = 0 to reps - 1 do
    raw_a_s.(i) <- timed raw;
    guarded_s.(i) <- timed guarded;
    raw_b_s.(i) <- timed raw
  done;
  let minimum a = Array.fold_left min a.(0) a in
  let ra = minimum raw_a_s and rb = minimum raw_b_s in
  let r = min ra rb in
  let raw_spread_pct = abs_float (rb -. ra) /. ra *. 100.0 in
  let guarded_overhead_pct = (minimum guarded_s -. r) /. r *. 100.0 in
  Printf.printf
    "E34: guarded-execution overhead (bit-parallel replay, %d cycles, best of %d):\n"
    n reps;
  Printf.printf "  raw A/A spread:     %.2f%% (measurement noise floor)\n"
    raw_spread_pct;
  Printf.printf "  guarded vs raw:     %.2f%% (budget: < 2%%)\n"
    guarded_overhead_pct;
  (* one forced degradation, counters on the record *)
  let fb_node_limit = 50 in
  Telemetry.reset ();
  Telemetry.enable ();
  let fb_estimate =
    match
      Hlp_power.Probprop.estimate_guarded ~node_limit:fb_node_limit ~seed:47
        ~engine:Hlp_sim.Engine.Bitparallel net
    with
    | Ok g ->
        assert g.Hlp_power.Probprop.symbolic_fallback;
        g.Hlp_power.Probprop.capacitance
    | Error e -> failwith ("E34: fallback demo failed: " ^ Hlp_util.Err.to_string e)
  in
  let fb_symbolic_fallbacks =
    Telemetry.count (Telemetry.counter "probprop.symbolic_fallbacks")
  in
  Telemetry.disable ();
  Telemetry.reset ();
  Printf.printf
    "  degradation demo:   BDD budget %d tripped -> sampled %.1f cap units/cycle\n"
    fb_node_limit fb_estimate;
  print_newline ();
  {
    ro_cycles = n;
    ro_reps = reps;
    raw_a_s;
    guarded_s;
    raw_b_s;
    raw_spread_pct;
    guarded_overhead_pct;
    fb_node_limit;
    fb_symbolic_fallbacks;
    fb_estimate;
  }

(* E36: checkpoint-journaling overhead on a fixed Monte Carlo workload.
   The same estimation (multiplier 8, bit-parallel engine, a precision
   target the cycle budget always hits first, so every run simulates the
   same deterministic unit count) runs interleaved (unjournaled,
   journaled, unjournaled) rounds; the journaled round appends one WAL
   record per unit under the default group-commit cadence and truncates
   the journal at open, so each rep pays the full durability cost. The
   two unjournaled batches bound the measurement noise; the acceptance
   budget for journaling is < 2%. Checkpointing is pure bookkeeping: the
   journaled estimate must be bit-identical to the unjournaled one, and
   that is asserted, not just recorded. *)

type durability_result = {
  du_cycles : int;
  du_units : int;
  du_reps : int;
  unjournaled_a_s : float array;
  journaled_s : float array;
  unjournaled_b_s : float array;
  unjournaled_spread_pct : float;
  journaled_overhead_pct : float;
  du_identical : bool;
}

let e36_durability ?(units = 60) ?(batch = 500) ?(reps = 5) () =
  Trace.span "bench.e36_durability" @@ fun () ->
  let net = Hlp_logic.Generators.multiplier_circuit 8 in
  (* heavyweight units: checkpointing earns its keep on campaigns long
     enough to need crash-safety, where each journaled unit covers
     batch * 63 cycles of simulation — that is the regime the < 2% budget
     is pinned in. (At toy unit sizes the journal's few fsyncs dominate
     trivially short runs.) *)
  let budget = units * batch * 63 in
  let run ?checkpoint () =
    Hlp_power.Probprop.monte_carlo ~batch ~relative_precision:1e-9
      ~max_cycles:budget ~seed:47 ~engine:Hlp_sim.Engine.Bitparallel ?checkpoint
      net
  in
  let path = Filename.temp_file "hlpower_e36" ".journal" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  let journaled () = run ~checkpoint:(Hlp_power.Probprop.checkpoint path) () in
  let base = run () in
  let journ = journaled () in
  if base.Hlp_power.Probprop.batches <> units then
    failwith "E36: workload did not run the fixed unit count";
  let du_identical =
    Int64.bits_of_float base.Hlp_power.Probprop.estimate
    = Int64.bits_of_float journ.Hlp_power.Probprop.estimate
    && Array.length base.Hlp_power.Probprop.batch_means
       = Array.length journ.Hlp_power.Probprop.batch_means
    && Array.for_all2
         (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
         base.Hlp_power.Probprop.batch_means
         journ.Hlp_power.Probprop.batch_means
  in
  if not du_identical then
    failwith "E36: journaled estimate diverged from unjournaled";
  let timed f = snd (time f) in
  let unjournaled_a_s = Array.make reps 0.0 in
  let journaled_s = Array.make reps 0.0 in
  let unjournaled_b_s = Array.make reps 0.0 in
  for i = 0 to reps - 1 do
    unjournaled_a_s.(i) <- timed (fun () -> ignore (run ()));
    journaled_s.(i) <- timed (fun () -> ignore (journaled ()));
    unjournaled_b_s.(i) <- timed (fun () -> ignore (run ()))
  done;
  let minimum a = Array.fold_left min a.(0) a in
  let ua = minimum unjournaled_a_s and ub = minimum unjournaled_b_s in
  let u = min ua ub in
  let unjournaled_spread_pct = abs_float (ub -. ua) /. ua *. 100.0 in
  let journaled_overhead_pct = (minimum journaled_s -. u) /. u *. 100.0 in
  Printf.printf
    "E36: checkpoint overhead (bit-parallel MC, %d units / %d cycles, best of %d):\n"
    units budget reps;
  Printf.printf "  unjournaled A/A spread:   %.2f%% (measurement noise floor)\n"
    unjournaled_spread_pct;
  Printf.printf "  journaled vs unjournaled: %.2f%% (budget: < 2%%)\n"
    journaled_overhead_pct;
  print_endline "  journaled estimate bit-identical: yes";
  print_newline ();
  {
    du_cycles = budget;
    du_units = units;
    du_reps = reps;
    unjournaled_a_s;
    journaled_s;
    unjournaled_b_s;
    unjournaled_spread_pct;
    journaled_overhead_pct;
    du_identical;
  }

(* E38: compiled-kernel replay throughput across circuit sizes. The four
   engines replay the same precomputed white-noise trace (vector generation
   outside the timed region, so the measurement is the gate-level replay
   itself) over three circuits spanning two orders of magnitude in gate
   count. Bit-parallel and compiled are timed as interleaved (bitpar,
   compiled, bitpar) rounds: the two bit-parallel batches are an A/A noise
   floor for the compiled-vs-bitparallel ratio, which is the number the
   regression gate pins (a within-machine ratio, so it transfers across
   runners). The kernel's one-time compile cost is timed cold
   (Kernel.clear_cache first) and folded into an amortization curve:
   amortized speedup over bit-parallel after k replays of the same
   fingerprint, plus the break-even replay count. *)

type kernel_circuit = {
  kc_circuit : string;
  kc_gates : int;
  kc_depth : int;
  kc_cycles : int;
  kc_compile_s : float;
  kc_scalar_s : float;
  kc_bitpar_s : float;
  kc_parallel_s : float;
  kc_compiled_s : float;
  kc_aa_spread_pct : float;  (** bit-parallel A/A spread, noise floor *)
  kc_compiled_vs_bitpar : float;
}

type kernel_result = {
  kn_circuits : kernel_circuit list;
  kn_largest : string;
  kn_ratio : float;  (** compiled vs bit-parallel, largest circuit, warm *)
  kn_break_even_replays : float;
  kn_amortization : (int * float) list;
      (** replay count -> speedup vs bit-parallel including one cold compile *)
}

let e38_kernel ?(chunks = 48) ?(reps = 5) ?(assert_speedup = true) () =
  Trace.span "bench.e38_kernel" @@ fun () ->
  let n = chunks * Hlp_sim.Kernel.lanes in
  let circuits =
    [ ("multiplier 6", Hlp_logic.Generators.multiplier_circuit 6);
      ("multiplier 8", Hlp_logic.Generators.multiplier_circuit 8);
      ( "random 4k",
        Hlp_logic.Generators.random_logic (Prng.create 123) ~inputs:24
          ~outputs:16 ~gates:4000 ) ]
  in
  let timed f = snd (time (fun () -> ignore (f ()))) in
  let minimum a = Array.fold_left min a.(0) a in
  let measure (label, net) =
    let nin = Array.length net.Hlp_logic.Netlist.inputs in
    let rng = Prng.create 77 in
    (* the trace is materialized up front: vector generation must not cap
       the speedup of the fast engines *)
    let vecs = Array.init n (fun _ -> Array.init nin (fun _ -> Prng.bool rng)) in
    let vector i = vecs.(i) in
    let replay engine () =
      Hlp_sim.Parsim.replay ~engine net ~vector ~n
    in
    (* cold compile: evict the plan, then time construction alone *)
    Hlp_sim.Kernel.clear_cache ();
    let _, kc_compile_s = time (fun () -> Hlp_sim.Kernel.of_netlist net) in
    let best engine =
      ignore (replay engine ());
      (* warm-up *)
      let b = Array.init reps (fun _ -> timed (replay engine)) in
      minimum b
    in
    let kc_scalar_s = best Hlp_sim.Engine.Scalar in
    let kc_parallel_s = best Hlp_sim.Engine.Parallel in
    (* interleaved A/B/A: bitpar, compiled, bitpar per rep *)
    ignore (replay Hlp_sim.Engine.Bitparallel ());
    ignore (replay Hlp_sim.Engine.Compiled ());
    let bp_a = Array.make reps 0.0 in
    let co = Array.make reps 0.0 in
    let bp_b = Array.make reps 0.0 in
    for i = 0 to reps - 1 do
      bp_a.(i) <- timed (replay Hlp_sim.Engine.Bitparallel);
      co.(i) <- timed (replay Hlp_sim.Engine.Compiled);
      bp_b.(i) <- timed (replay Hlp_sim.Engine.Bitparallel)
    done;
    let ba = minimum bp_a and bb = minimum bp_b in
    let kc_bitpar_s = min ba bb in
    let kc_compiled_s = minimum co in
    {
      kc_circuit = label;
      kc_gates = Hlp_logic.Netlist.num_gates net;
      kc_depth = Hlp_logic.Netlist.logic_depth net;
      kc_cycles = n;
      kc_compile_s;
      kc_scalar_s;
      kc_bitpar_s;
      kc_parallel_s;
      kc_compiled_s;
      kc_aa_spread_pct = abs_float (bb -. ba) /. ba *. 100.0;
      kc_compiled_vs_bitpar = kc_bitpar_s /. kc_compiled_s;
    }
  in
  let kn_circuits = List.map measure circuits in
  let kcs s = float_of_int n /. s /. 1e3 in
  let rows =
    List.map
      (fun c ->
        [ c.kc_circuit;
          string_of_int c.kc_gates;
          string_of_int c.kc_depth;
          Printf.sprintf "%.0f" (kcs c.kc_scalar_s);
          Printf.sprintf "%.0f" (kcs c.kc_bitpar_s);
          Printf.sprintf "%.0f" (kcs c.kc_parallel_s);
          Printf.sprintf "%.0f" (kcs c.kc_compiled_s);
          Printf.sprintf "%.2fx" c.kc_compiled_vs_bitpar;
          Printf.sprintf "%.2f" (c.kc_compile_s *. 1e3);
          Printf.sprintf "%.1f%%" c.kc_aa_spread_pct ])
      kn_circuits
  in
  Table.print
    ~title:
      (Printf.sprintf
         "E38: compiled-kernel replay throughput (kcycle/s, %d-cycle trace, best of %d)"
         n reps)
    ~align:
      [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
        Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:
      [ "circuit"; "gates"; "depth"; "scalar"; "bitpar"; "parallel";
        "compiled"; "vs bitpar"; "compile ms"; "A/A" ]
    rows;
  let largest =
    List.fold_left
      (fun a c -> if c.kc_gates > a.kc_gates then c else a)
      (List.hd kn_circuits) kn_circuits
  in
  (* amortization: k replays of the same fingerprint pay one cold compile;
     the bit engine pays nothing up front *)
  let amortized k =
    float_of_int k *. largest.kc_bitpar_s
    /. (largest.kc_compile_s +. (float_of_int k *. largest.kc_compiled_s))
  in
  let kn_amortization = List.map (fun k -> (k, amortized k)) [ 1; 10; 100; 1000 ] in
  let kn_break_even_replays =
    if largest.kc_compiled_s < largest.kc_bitpar_s then
      largest.kc_compile_s /. (largest.kc_bitpar_s -. largest.kc_compiled_s)
    else infinity
  in
  Printf.printf
    "compile amortization (%s): break-even at %.2f replays; speedup vs bitpar after"
    largest.kc_circuit kn_break_even_replays;
  List.iter
    (fun (k, s) -> Printf.printf "  %d: %.2fx" k s)
    kn_amortization;
  print_newline ();
  Printf.printf
    "compiled vs bit-parallel on %s: %.2fx warm (target >= 3x; A/A floor %.1f%%)\n"
    largest.kc_circuit largest.kc_compiled_vs_bitpar largest.kc_aa_spread_pct;
  if assert_speedup && largest.kc_compiled_vs_bitpar < 3.0 then
    failwith "E38: compiled kernel below the 3x-vs-bitparallel target";
  if assert_speedup && amortized 10 < 3.0 then
    failwith "E38: compile cost not amortized within 10 replays";
  print_newline ();
  {
    kn_circuits;
    kn_largest = largest.kc_circuit;
    kn_ratio = largest.kc_compiled_vs_bitpar;
    kn_break_even_replays;
    kn_amortization;
  }

(* --- BENCH_engines.json --- *)

let floats a = Json.List (Array.to_list (Array.map (fun x -> Json.Float x) a))

let bench_json ~smoke ~n engines mc overhead tracing robustness durability
    kernel serve resilience flight lifecycle =
  let open Json in
  let engine_obj r =
    Obj
      [ ("engine", Str r.engine);
        ("replay_s", Float r.replay_s);
        ("prepare_s", Float r.prepare_s);
        ("kcycles_per_s", Float r.kcycles_per_s);
        ("speedup_vs_scalar", Float r.speedup_vs_scalar);
        ("gate_reference", Float r.gate_ref);
        ("sampler_estimate", Float r.sampler_est);
        ("adaptive_estimate", Float r.adaptive_est) ]
  in
  let mc_obj r =
    Obj
      [ ("circuit", Str r.mc_circuit);
        ("engine", Str r.mc_engine);
        ("estimate", Float r.mc_estimate);
        ("half_interval_t95", Float r.mc_half_interval);
        ("cycles_used", Int r.mc_cycles_used);
        ("batches", Int r.mc_batches);
        ("seconds", Float r.mc_seconds);
        ("cycles_per_s", Float (float_of_int r.mc_cycles_used /. r.mc_seconds));
        (* one point per stopping-rule evaluation, from batch 2 on *)
        ("running_mean", floats r.running_mean);
        ("ci_half_width", floats r.ci_half_width) ]
  in
  let overhead_obj ~what o =
    Obj
      [ ("instrumentation", Str what);
        ("workload", Str "parsim.replay bitparallel (E33 sampler workload)");
        ("cycles", Int o.oh_cycles);
        ("reps", Int o.oh_reps);
        ("disabled_a_s", floats o.disabled_a_s);
        ("enabled_s", floats o.enabled_s);
        ("disabled_b_s", floats o.disabled_b_s);
        ( "disabled_overhead_pct",
          (* A/A comparison of two identical disabled batches: the
             instrumentation's disabled-mode cost is below this noise floor *)
          Float o.disabled_overhead_pct );
        ("enabled_overhead_pct", Float o.enabled_overhead_pct);
        ("budget_pct", Float 2.0);
        ("disabled_within_budget", Bool (o.disabled_overhead_pct < 2.0)) ]
  in
  let robustness_obj r =
    Obj
      [ ("workload", Str "parsim.replay_guarded vs replay, bitparallel, no faults");
        ("cycles", Int r.ro_cycles);
        ("reps", Int r.ro_reps);
        ("raw_a_s", floats r.raw_a_s);
        ("guarded_s", floats r.guarded_s);
        ("raw_b_s", floats r.raw_b_s);
        (* A/A comparison of the two raw batches: the measurement noise
           floor the guarded overhead is judged against *)
        ("raw_spread_pct", Float r.raw_spread_pct);
        ("guarded_overhead_pct", Float r.guarded_overhead_pct);
        ("budget_pct", Float 2.0);
        ("within_budget", Bool (r.guarded_overhead_pct < 2.0));
        ( "degradation_demo",
          Obj
            [ ("bdd_node_limit", Int r.fb_node_limit);
              ("symbolic_fallbacks", Int r.fb_symbolic_fallbacks);
              ("sampled_estimate", Float r.fb_estimate) ] ) ]
  in
  let durability_obj d =
    Obj
      [ ("workload",
          Str "probprop.monte_carlo bitparallel, fixed unit budget (E36)");
        ("cycles", Int d.du_cycles);
        ("units", Int d.du_units);
        ("reps", Int d.du_reps);
        ("unjournaled_a_s", floats d.unjournaled_a_s);
        ("journaled_s", floats d.journaled_s);
        ("unjournaled_b_s", floats d.unjournaled_b_s);
        ( "unjournaled_spread_pct",
          (* A/A comparison of two identical unjournaled runs: the noise
             floor the journaling overhead is judged against *)
          Float d.unjournaled_spread_pct );
        ("journaled_overhead_pct", Float d.journaled_overhead_pct);
        ("budget_pct", Float 2.0);
        ("within_budget", Bool (d.journaled_overhead_pct < 2.0));
        (* asserted by the experiment, recorded for the report *)
        ("estimate_bit_identical", Bool d.du_identical) ]
  in
  let kernel_circuit_obj c =
    Obj
      [ ("circuit", Str c.kc_circuit);
        ("gates", Int c.kc_gates);
        ("depth", Int c.kc_depth);
        ("cycles", Int c.kc_cycles);
        ("compile_s", Float c.kc_compile_s);
        ("scalar_s", Float c.kc_scalar_s);
        ("bitparallel_s", Float c.kc_bitpar_s);
        ("parallel_s", Float c.kc_parallel_s);
        ("compiled_s", Float c.kc_compiled_s);
        (* A/A comparison of the two interleaved bit-parallel batches:
           the noise floor the compiled ratio is judged against *)
        ("bitparallel_aa_spread_pct", Float c.kc_aa_spread_pct);
        ("compiled_vs_bitparallel", Float c.kc_compiled_vs_bitpar) ]
  in
  let kernel_obj k =
    Obj
      [ ("experiment", Str "E38 compiled-kernel replay throughput");
        ("circuits", List (List.map kernel_circuit_obj k.kn_circuits));
        ("largest_circuit", Str k.kn_largest);
        (* the gated number: warm compiled-vs-bitparallel ratio on the
           largest circuit (within-machine, transfers across runners) *)
        ("compiled_vs_bitparallel", Float k.kn_ratio);
        ("break_even_replays", Float k.kn_break_even_replays);
        ( "amortization",
          List
            (List.map
               (fun (reps, s) ->
                 Obj
                   [ ("replays", Int reps);
                     ("speedup_vs_bitparallel", Float s) ])
               k.kn_amortization) ) ]
  in
  let v =
    Obj
      [ ("experiment", Str "E33 engine throughput + Monte Carlo convergence");
        ( "workload",
          Obj
            [ ("dut", Str "multiplier 8");
              ("stream", Str "uniform white noise");
              ("cycles", Int n) ] );
        ("smoke", Bool smoke);
        ("engines", List (List.map engine_obj engines));
        ("monte_carlo", List (List.map mc_obj mc));
        ("telemetry_overhead", overhead_obj ~what:"telemetry" overhead);
        ("tracing", overhead_obj ~what:"span tracing" tracing);
        ("robustness", robustness_obj robustness);
        ("durability", durability_obj durability);
        ("kernel", kernel_obj kernel);
        ("serve", Exp_serve.json_obj serve);
        ("resilience", Exp_chaos.json_obj resilience);
        ("flight", Exp_flight.json_obj flight);
        ("lifecycle", Exp_lifecycle.json_obj lifecycle) ]
  in
  Json.write ~path:"BENCH_engines.json" v;
  print_endline "wrote BENCH_engines.json"

let all () =
  let n = 10_000 in
  let engines = e33_throughput ~n () in
  let mc = e33_monte_carlo () in
  let overhead = telemetry_overhead ~n () in
  let tracing = tracing_overhead ~n () in
  let robustness = e34_robustness ~n () in
  let durability = e36_durability () in
  let kernel = e38_kernel () in
  let serve = Exp_serve.e39_serve () in
  let resilience = Exp_chaos.e40_chaos () in
  let flight = Exp_flight.e41_flight ~assert_overhead:true () in
  let lifecycle = Exp_lifecycle.e42_lifecycle () in
  bench_json ~smoke:false ~n engines mc overhead tracing robustness durability
    kernel serve resilience flight lifecycle

(* reduced workload for CI: exercises every engine end to end without the
   10^4-cycle stream or the speedup assertion (shared runners are noisy) *)
let smoke () =
  let n = 2_000 in
  let engines = e33_throughput ~n ~assert_speedup:false () in
  let mc = e33_monte_carlo () in
  let overhead = telemetry_overhead ~n ~reps:3 () in
  let tracing = tracing_overhead ~n ~reps:3 () in
  let robustness = e34_robustness ~n ~reps:3 () in
  let durability = e36_durability ~units:30 ~reps:3 () in
  let kernel = e38_kernel ~chunks:8 ~reps:3 ~assert_speedup:false () in
  let serve = Exp_serve.e39_serve ~warm_rounds:2 ~assert_speedup:false () in
  let resilience = Exp_chaos.e40_chaos ~requests:15 () in
  let flight =
    Exp_flight.e41_flight ~reqs_per_batch:3 ~reps:2 ~assert_overhead:false ()
  in
  let lifecycle = Exp_lifecycle.e42_lifecycle ~requests_per_cycle:10 () in
  bench_json ~smoke:true ~n engines mc overhead tracing robustness durability
    kernel serve resilience flight lifecycle

(* --- bench regression gate ---

   Re-measures the engine workload and diffs the fresh numbers against the
   committed BENCH_engines.json snapshot. Two within-machine ratios are
   gated — they transfer across runners, unlike absolute cycles/second
   (and unlike the parallel engine, whose ratio tracks the runner's core
   count): the bit-parallel engine's speedup-vs-scalar, and (when the
   committed snapshot carries an E38 kernel section) the compiled kernel's
   speedup-vs-bitparallel on the largest E38 circuit. The compiled gate is
   learned: snapshots predating the kernel skip it with a notice, and the
   next full regenerate pins it. *)

let threshold_pct = 25.0

let regression_gate ?(path = "BENCH_engines.json") () =
  let committed =
    let ic = open_in path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    match Json.parse s with
    | Ok v -> v
    | Error e ->
        raise (Err.invalid_input ~what:("regression gate: " ^ path) e)
  in
  let speedup_of v =
    match Json.member "engines" v with
    | Some (Json.List engines) ->
        List.find_map
          (fun e ->
            match (Json.member "engine" e, Json.member "speedup_vs_scalar" e) with
            | Some (Json.Str "bitparallel"), Some s -> Json.to_float_opt s
            | _ -> None)
          engines
    | _ -> None
  in
  let baseline =
    match speedup_of committed with
    | Some s -> s
    | None ->
        raise
          (Err.invalid_input ~what:("regression gate: " ^ path)
             "no bitparallel speedup_vs_scalar found")
  in
  (* fresh measurement on this machine, no snapshot rewrite *)
  let fresh = e33_throughput ~n:10_000 ~assert_speedup:false () in
  let current =
    match
      List.find_opt (fun (r : engine_result) -> r.engine = "bitparallel") fresh
    with
    | Some r -> r.speedup_vs_scalar
    | None -> failwith "regression gate: fresh run produced no bitparallel row"
  in
  let floor = baseline *. (1.0 -. (threshold_pct /. 100.0)) in
  let ok = current >= floor in
  Printf.printf
    "regression gate: bitparallel speedup %.1fx vs committed %.1fx (floor %.1fx, -%.0f%%): %s\n"
    current baseline floor threshold_pct
    (if ok then "OK" else "REGRESSION");
  (* compiled-kernel gate: only when the committed snapshot knows the ratio *)
  let kernel_baseline =
    match Json.member "kernel" committed with
    | Some k -> (
        match Json.member "compiled_vs_bitparallel" k with
        | Some v -> Json.to_float_opt v
        | None -> None)
    | None -> None
  in
  let kernel_ok =
    match kernel_baseline with
    | None ->
        print_endline
          "regression gate: no kernel section in snapshot, compiled gate \
           skipped (learned on next regenerate)";
        true
    | Some kb ->
        let fresh_kernel = e38_kernel ~assert_speedup:false () in
        let kfloor = kb *. (1.0 -. (threshold_pct /. 100.0)) in
        let kok = fresh_kernel.kn_ratio >= kfloor in
        Printf.printf
          "regression gate: compiled vs bitparallel %.2fx vs committed %.2fx (floor %.2fx, -%.0f%%): %s\n"
          fresh_kernel.kn_ratio kb kfloor threshold_pct
          (if kok then "OK" else "REGRESSION");
        kok
  in
  (* serve gate: only when the committed snapshot carries an E39 section.
     The gated quantity is the cold/warm p50 ratio against its absolute
     10x floor — cold latency is dominated by BDD work and warm by a
     cache probe, so the ratio is huge and a relative-to-baseline band
     would only add flake; what must never regress is the order of
     magnitude itself (and the byte-identity/typed-shed asserts inside
     the experiment). *)
  let serve_ok =
    match Json.member "serve" committed with
    | None ->
        print_endline
          "regression gate: no serve section in snapshot, serve gate skipped \
           (learned on next regenerate)";
        true
    | Some _ ->
        let fresh_serve = Exp_serve.e39_serve ~assert_speedup:false () in
        let sok = fresh_serve.Exp_serve.sv_cold_vs_warm_p50 >= 10.0 in
        Printf.printf
          "regression gate: serve warm speedup %.0fx (floor 10x): %s\n"
          fresh_serve.Exp_serve.sv_cold_vs_warm_p50
          (if sok then "OK" else "REGRESSION");
        sok
  in
  (* resilience gate: only when the committed snapshot carries an E40
     section. The gated quantities are absolute — availability against
     its 99% floor and exact coalescing (1 computation, N-1 joiners) —
     because both are correctness contracts, not machine-relative
     throughput; a reduced soak re-checks them on this runner. *)
  let resilience_ok =
    match Json.member "resilience" committed with
    | None ->
        print_endline
          "regression gate: no resilience section in snapshot, chaos gate \
           skipped (learned on next regenerate)";
        true
    | Some _ -> (
        match Exp_chaos.e40_chaos ~requests:15 () with
        | r ->
            let rok =
              r.Exp_chaos.ch_availability_pct
              >= Exp_chaos.availability_floor_pct
            in
            Printf.printf
              "regression gate: chaos availability %.2f%% (floor %.0f%%): %s\n"
              r.Exp_chaos.ch_availability_pct Exp_chaos.availability_floor_pct
              (if rok then "OK" else "REGRESSION");
            rok
        | exception Failure msg ->
            (* the experiment's internal asserts (corruption, untyped
               failures, coalescing) fail the gate loudly *)
            Printf.printf "regression gate: chaos soak FAILED: %s\n" msg;
            false)
  in
  (* flight-recorder gate: only when the committed snapshot carries an
     E41 section. The gated quantities are the experiment's internal
     correctness asserts — quantile fidelity against the documented
     bound, access-log/request tie-out, rid correlation — re-checked on
     this runner (overhead is recorded but not gated here: shared
     runners are too noisy for a 2% band). *)
  let flight_ok =
    match Json.member "flight" committed with
    | None ->
        print_endline
          "regression gate: no flight section in snapshot, flight gate \
           skipped (learned on next regenerate)";
        true
    | Some _ -> (
        match
          Exp_flight.e41_flight ~reqs_per_batch:3 ~reps:2
            ~assert_overhead:false ()
        with
        | r ->
            Printf.printf
              "regression gate: flight quantile error %.5f (bound %.5f): OK\n"
              r.Exp_flight.fl_quantile_worst_rel_err
              r.Exp_flight.fl_quantile_bound;
            true
        | exception Failure msg ->
            Printf.printf "regression gate: flight recorder FAILED: %s\n" msg;
            false)
  in
  (* lifecycle gate: only when the committed snapshot carries an E42
     section. The gated quantities are absolute correctness contracts —
     availability under the SIGKILL loop against its 99% floor, zero
     corruption, byte-identical warm keys, the 10x post-restart warm-hit
     floor, and a clean 143 drain — re-checked by a reduced crash loop
     through the real supervise/serve processes on this runner. *)
  let lifecycle_ok =
    match Json.member "lifecycle" committed with
    | None ->
        print_endline
          "regression gate: no lifecycle section in snapshot, crash-loop gate \
           skipped (learned on next regenerate)";
        true
    | Some _ -> (
        match Exp_lifecycle.e42_lifecycle ~cycles:2 ~requests_per_cycle:10 () with
        | r ->
            Printf.printf
              "regression gate: crash-loop availability %.2f%%, warm speedup \
               %.0fx: OK\n"
              r.Exp_lifecycle.lc_availability_pct
              r.Exp_lifecycle.lc_warm_speedup;
            true
        | exception Failure msg ->
            Printf.printf "regression gate: crash loop FAILED: %s\n" msg;
            false)
  in
  ok && kernel_ok && serve_ok && resilience_ok && flight_ok && lifecycle_ok
