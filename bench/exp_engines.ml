(* E33: simulation-engine throughput — scalar vs bit-parallel vs multicore.

   The sampler workload of E16 (multiplier 8 DUT, bitwise macro-model
   trained on white noise, 10^4-cycle stream) is replayed through each
   engine of Hlp_sim.Engine. The bit-parallel engine packs 63 trace
   transitions into each word-wide Bitsim step, so the gate-level replay
   that dominates cosimulation preparation runs ~63x fewer gate
   evaluations; the estimates must not move (sampler/census bit-identical,
   adaptive/gate reference to round-off). *)

open Hlp_util

let fmt = Table.fmt_float

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* the E16 sampler workload: macro-model trained on white noise, long
   uniform evaluation stream *)
let sampler_workload ~n =
  let dut =
    { Hlp_power.Macromodel.net = Hlp_logic.Generators.multiplier_circuit 8;
      widths = [ 8; 8 ] }
  in
  let rng = Prng.create 55 in
  let training =
    [ [ Hlp_sim.Streams.uniform rng ~width:8 ~n:400;
        Hlp_sim.Streams.uniform rng ~width:8 ~n:400 ] ]
  in
  let obs = List.map (Hlp_power.Macromodel.observe dut) training in
  let model = Hlp_power.Macromodel.fit Hlp_power.Macromodel.Bitwise dut obs in
  let traces =
    [ Hlp_sim.Streams.uniform rng ~width:8 ~n;
      Hlp_sim.Streams.uniform rng ~width:8 ~n ]
  in
  (model, dut, traces)

let e33_throughput ?(n = 10_000) ?(assert_speedup = true) () =
  let model, dut, traces = sampler_workload ~n in
  let widths = dut.Hlp_power.Macromodel.widths in
  let vector i = Hlp_sim.Streams.pack ~widths traces i in
  let measure engine =
    (* replay = the gate-level simulation proper (the engine under test) *)
    let replay, replay_s =
      time (fun () ->
          Hlp_sim.Parsim.replay ~engine dut.Hlp_power.Macromodel.net ~vector ~n)
    in
    (* prepare = replay + macro-model window evaluation (the whole
       cosimulation setup the estimators run on) *)
    let t, prepare_s =
      time (fun () -> Hlp_power.Sampling.prepare ~engine model dut traces)
    in
    (engine, replay, replay_s, t, prepare_s)
  in
  let results = List.map measure Hlp_sim.Engine.all in
  let scalar_replay_s =
    match results with (_, _, s, _, _) :: _ -> s | [] -> assert false
  in
  let scalar_t = match results with (_, _, _, t, _) :: _ -> t | [] -> assert false in
  let rows =
    List.map
      (fun (engine, _, replay_s, t, prepare_s) ->
        let speedup = scalar_replay_s /. replay_s in
        [ Hlp_sim.Engine.to_string engine;
          Printf.sprintf "%.1f" (replay_s *. 1e3);
          Printf.sprintf "%.0f" (float_of_int n /. replay_s /. 1e3);
          Printf.sprintf "%.1fx" speedup;
          Printf.sprintf "%.1f" (prepare_s *. 1e3);
          fmt (Hlp_power.Sampling.gate_reference t);
          fmt (Hlp_power.Sampling.sampler ~seed:77 t).Hlp_power.Sampling.value;
          fmt (Hlp_power.Sampling.adaptive ~seed:99 t).Hlp_power.Sampling.value ])
      results
  in
  Table.print
    ~title:
      (Printf.sprintf
         "E33: engine throughput on the E16 sampler workload (multiplier 8, %d cycles)"
         n)
    ~align:
      [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
        Table.Right; Table.Right; Table.Right ]
    ~header:
      [ "engine"; "replay ms"; "kcycle/s"; "speedup"; "prepare ms";
        "gate ref"; "sampler"; "adaptive" ]
    rows;
  (* identical-estimate contract across engines *)
  let pinned = Hlp_power.Sampling.sampler ~seed:77 scalar_t in
  List.iter
    (fun (engine, _, _, t, _) ->
      let s = Hlp_power.Sampling.sampler ~seed:77 t in
      if s.Hlp_power.Sampling.value <> pinned.Hlp_power.Sampling.value then
        failwith
          (Printf.sprintf "E33: %s sampler estimate diverged from scalar"
             (Hlp_sim.Engine.to_string engine));
      let rel =
        Stats.relative_error
          ~actual:(Hlp_power.Sampling.gate_reference scalar_t)
          ~estimate:(Hlp_power.Sampling.gate_reference t)
      in
      if rel > 1e-9 then
        failwith
          (Printf.sprintf "E33: %s gate reference diverged from scalar"
             (Hlp_sim.Engine.to_string engine)))
    results;
  print_endline "estimates identical across engines: yes";
  (match
     List.find_opt
       (fun (e, _, _, _, _) -> e = Hlp_sim.Engine.Bitparallel)
       results
   with
  | Some (_, _, replay_s, _, _) ->
      let speedup = scalar_replay_s /. replay_s in
      Printf.printf "bit-parallel replay speedup vs scalar: %.1fx (target >= 20x)\n"
        speedup;
      if assert_speedup && speedup < 20.0 then
        failwith "E33: bit-parallel engine below the 20x throughput target"
  | None -> ());
  print_newline ()

let e33_monte_carlo () =
  let rows =
    List.map
      (fun (label, net) ->
        let reference =
          let r =
            Hlp_sim.Parsim.monte_carlo_units ~engine:Hlp_sim.Engine.Bitparallel net
              ~batch:16 ~seed:9
              ~stop:(fun ~means:_ ~cycles -> cycles >= 20_000)
          in
          r.Hlp_sim.Parsim.mean
        in
        let per engine =
          let mc, s =
            time (fun () -> Hlp_power.Probprop.monte_carlo ~seed:47 ~engine net)
          in
          (mc, s)
        in
        let sc, sc_s = per Hlp_sim.Engine.Scalar in
        let bp, bp_s = per Hlp_sim.Engine.Bitparallel in
        [ label; fmt reference;
          fmt sc.Hlp_power.Probprop.estimate;
          string_of_int sc.Hlp_power.Probprop.cycles_used;
          fmt bp.Hlp_power.Probprop.estimate;
          string_of_int bp.Hlp_power.Probprop.cycles_used;
          (* cycles/second ratio: the bit engine simulates many more cycles
             (63 lanes per unit), so compare throughput, not latency *)
          Printf.sprintf "%.1fx"
            (float_of_int bp.Hlp_power.Probprop.cycles_used /. bp_s
            /. (float_of_int sc.Hlp_power.Probprop.cycles_used /. sc_s)) ])
      [
        ("adder 8", Hlp_logic.Generators.adder_circuit 8);
        ("multiplier 6", Hlp_logic.Generators.multiplier_circuit 6);
        ("alu 6", Hlp_logic.Generators.alu_circuit 6);
      ]
  in
  Table.print
    ~title:
      "E33b: Monte Carlo stopping per engine (estimates agree statistically; bit engine amortizes 63 streams/word)"
    ~align:
      [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
        Table.Right; Table.Right ]
    ~header:
      [ "circuit"; "20k-cycle ref"; "scalar est"; "cycles"; "bitpar est";
        "cycles"; "throughput" ]
    rows

let all () =
  e33_throughput ();
  e33_monte_carlo ()

(* reduced workload for CI: exercises every engine end to end without the
   10^4-cycle stream or the speedup assertion (shared runners are noisy) *)
let smoke () =
  e33_throughput ~n:2_000 ~assert_speedup:false ();
  e33_monte_carlo ()
