(* Benchmark harness: regenerates every table and figure of the paper
   (sections E1-E21, see DESIGN.md and EXPERIMENTS.md), then times the
   computational kernel behind each experiment with Bechamel. *)

(* one span per experiment group: with --trace, the exported timeline
   shows where a full reproduction run spends its time *)
let traced name f = Hlp_util.Trace.span name f

let experiments () =
  print_endline "=================================================================";
  print_endline " hlpower experiment reproduction";
  print_endline " Macii/Pedram/Somenzi, High-Level Power Modeling, Estimation,";
  print_endline " and Optimization (DAC'97 / IEEE TCAD'98)";
  print_endline "=================================================================";
  print_newline ();
  traced "bench.figures" Exp_figures.all;
  traced "bench.estimation" Exp_estimation.all;
  traced "bench.synthesis" Exp_synthesis.all;
  traced "bench.engines" Exp_engines.all

(* --- bechamel timing of each experiment's kernel --- *)

open Bechamel
open Toolkit

let kernels () =
  let nets = lazy (Hlp_logic.Generators.multiplier_circuit 8) in
  let fir = lazy (Hlp_rtl.Fir.build ~width:8 ~constant_mult:true ()) in
  let stg = lazy (Hlp_fsm.Stg.reactive ~wait_states:4 ~burst_states:4) in
  let cmp = lazy (Hlp_logic.Generators.comparator_circuit 8) in
  let guard_net = lazy (Hlp_optlogic.Guard.demo_circuit 8) in
  let pm_sessions = lazy (Hlp_pm.Policy.workload ~sessions:2000 (Hlp_util.Prng.create 1)) in
  let matmul = lazy (Hlp_isa.Programs.matmul ~n:8) in
  let adder_dut =
    lazy { Hlp_power.Macromodel.net = Hlp_logic.Generators.adder_circuit 8; widths = [ 8; 8 ] }
  in
  let seq_trace = lazy (Hlp_bus.Traces.sequential () ~width:16 ~n:2000) in
  let diffeq = lazy (Hlp_rtl.Cdfg.diffeq ()) in
  [
    Test.make ~name:"E1_table1_fir_sim" (Staged.stage (fun () ->
        ignore (Hlp_rtl.Fir.measure ~cycles:20 (Lazy.force fir))));
    Test.make ~name:"E2_fig2_machine_run" (Staged.stage (fun () ->
        let prog, mem = Lazy.force matmul in
        ignore (Hlp_isa.Machine.run ~mem_init:mem prog)));
    Test.make ~name:"E3_fig3_policy_sim" (Staged.stage (fun () ->
        ignore
          (Hlp_pm.Policy.simulate Hlp_pm.Policy.default_device Hlp_pm.Policy.Regression
             (Lazy.force pm_sessions))));
    Test.make ~name:"E4_fig4_schedule" (Staged.stage (fun () ->
        ignore (Hlp_rtl.Schedule.asap (Hlp_rtl.Cdfg.poly3_direct ()))));
    Test.make ~name:"E6_fig6_precompute_bdd" (Staged.stage (fun () ->
        ignore
          (Hlp_optlogic.Precompute.analyze (Lazy.force cmp) ~output:"lt" ~subset:[ 7; 15 ])));
    Test.make ~name:"E7_fig7_gated_clock" (Staged.stage (fun () ->
        ignore (Hlp_optlogic.Gated_clock.evaluate ~cycles:400 (Lazy.force stg))));
    Test.make ~name:"E8_fig8_guard_odc" (Staged.stage (fun () ->
        ignore (Hlp_optlogic.Guard.find_candidates (Lazy.force guard_net))));
    Test.make ~name:"E9_fig9_eventsim" (Staged.stage (fun () ->
        let net = Lazy.force nets in
        let sim = Hlp_sim.Eventsim.create net in
        let rng = Hlp_util.Prng.create 1 in
        Hlp_sim.Eventsim.run sim (fun _ -> Array.init 16 (fun _ -> Hlp_util.Prng.bool rng)) 50));
    Test.make ~name:"E10_tiwari_features" (Staged.stage (fun () ->
        let prog, mem = Lazy.force matmul in
        let r = Hlp_isa.Machine.run ~mem_init:mem prog in
        ignore (Hlp_isa.Tiwari.features r.Hlp_isa.Machine.counters)));
    Test.make ~name:"E11_entropy_estimate" (Staged.stage (fun () ->
        let rng = Hlp_util.Prng.create 2 in
        let trace = Hlp_sim.Streams.uniform rng ~width:16 ~n:200 in
        ignore
          (Hlp_power.Entropy.estimate_netlist ~model:Hlp_power.Entropy.Marculescu
             (Hlp_logic.Generators.adder_circuit 8) ~input_trace:trace)));
    Test.make ~name:"E12_captot_bdd_count" (Staged.stage (fun () ->
        ignore (Hlp_power.Captot.bdd_nodes_of_netlist (Lazy.force cmp))));
    Test.make ~name:"E13_tyagi_markov" (Staged.stage (fun () ->
        let stg = Lazy.force stg in
        ignore (Hlp_fsm.Tyagi.report stg (Hlp_fsm.Markov.analyze stg))));
    Test.make ~name:"E14_primes_cover" (Staged.stage (fun () ->
        ignore (Hlp_power.Primes.cover ~nvars:6 (List.init 32 (fun i -> 2 * i)))));
    Test.make ~name:"E15_macromodel_observe" (Staged.stage (fun () ->
        let dut = Lazy.force adder_dut in
        let rng = Hlp_util.Prng.create 3 in
        ignore
          (Hlp_power.Macromodel.observe dut
             [ Hlp_sim.Streams.uniform rng ~width:8 ~n:200;
               Hlp_sim.Streams.uniform rng ~width:8 ~n:200 ])));
    Test.make ~name:"E16_sampling_prepare" (Staged.stage (fun () ->
        let dut = Lazy.force adder_dut in
        let rng = Hlp_util.Prng.create 4 in
        let obs =
          Hlp_power.Macromodel.observe dut
            [ Hlp_sim.Streams.uniform rng ~width:8 ~n:100;
              Hlp_sim.Streams.uniform rng ~width:8 ~n:100 ]
        in
        let model = Hlp_power.Macromodel.fit Hlp_power.Macromodel.Bitwise dut [ obs ] in
        ignore
          (Hlp_power.Sampling.prepare model dut
             [ Hlp_sim.Streams.uniform rng ~width:8 ~n:300;
               Hlp_sim.Streams.uniform rng ~width:8 ~n:300 ])));
    Test.make ~name:"E17_bus_encode" (Staged.stage (fun () ->
        ignore
          (Hlp_bus.Encoding.evaluate Hlp_bus.Encoding.T0 ~width:16 (Lazy.force seq_trace))));
    Test.make ~name:"E18_allocation" (Staged.stage (fun () ->
        let g = Lazy.force diffeq in
        let sched =
          Hlp_rtl.Schedule.list_schedule g
            ~resources:[ (Hlp_rtl.Module_energy.Multiplier, 2) ]
        in
        let prof = Hlp_rtl.Allocate.profile ~samples:30 g in
        ignore (Hlp_rtl.Allocate.bind_low_power g sched prof)));
    Test.make ~name:"E19_voltage_schedule" (Staged.stage (fun () ->
        let g = Lazy.force diffeq in
        let base = Hlp_rtl.Voltage.single_voltage g in
        ignore (Hlp_rtl.Voltage.schedule g ~deadline:(base.Hlp_rtl.Voltage.total_delay *. 2.0))));
    Test.make ~name:"E20_fsm_anneal" (Staged.stage (fun () ->
        let stg = Lazy.force stg in
        let dist = Hlp_fsm.Markov.analyze stg in
        ignore (Hlp_fsm.Encode.anneal ~iterations:2000 (Hlp_util.Prng.create 9) stg dist)));
    Test.make ~name:"E21_memory_model" (Staged.stage (fun () ->
        ignore (Hlp_power.Memory_model.optimal_k ~n:14)));
  ]

let run_bechamel () =
  print_endline "=================================================================";
  print_endline " kernel timings (Bechamel, monotonic clock)";
  print_endline "=================================================================";
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 500) ()
  in
  let tests = Test.make_grouped ~name:"hlpower" (kernels ()) in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some (est :: _) -> rows := (name, est) :: !rows
      | _ -> ())
    results;
  let rows = List.sort compare !rows in
  List.iter
    (fun (name, ns) ->
      let pretty =
        if ns > 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
        else Printf.sprintf "%8.0f ns" ns
      in
      Printf.printf "%-40s %s/run\n" name pretty)
    rows

let () =
  let tracing = Array.exists (( = ) "--trace") Sys.argv in
  if tracing then Hlp_util.Trace.enable ();
  let flush_trace () =
    if tracing then begin
      Hlp_util.Trace.write ~path:"BENCH_trace.json";
      Printf.printf "wrote BENCH_trace.json (%d events, %d dropped)\n"
        (Hlp_util.Trace.event_count ())
        (Hlp_util.Trace.dropped ())
    end
  in
  if Array.exists (( = ) "--smoke") Sys.argv then begin
    (* CI mode: a reduced engine workload, no bechamel sweep *)
    Exp_engines.smoke ();
    flush_trace ();
    print_endline "smoke run completed."
  end
  else if Array.exists (( = ) "--engines") Sys.argv then begin
    (* full engine + robustness workload only: regenerates BENCH_engines.json
       without the rest of the experiment sweep *)
    Exp_engines.all ();
    flush_trace ();
    print_endline "engine experiments completed."
  end
  else if Array.exists (( = ) "--chaos") Sys.argv then begin
    (* CI chaos soak: E40 alone, seed from HLP_CHAOS_SEED so a matrix of
       runners exercises distinct deterministic fault schedules; the
       experiment's internal asserts (availability floor, zero
       corruption, zero untyped failures, exact coalescing) are the
       pass/fail criteria *)
    let seed =
      match Sys.getenv_opt "HLP_CHAOS_SEED" with
      | Some s -> (try int_of_string s with Failure _ -> 0)
      | None -> 0
    in
    ignore (Exp_chaos.e40_chaos ~seed ());
    flush_trace ();
    print_endline "chaos soak completed."
  end
  else if Array.exists (( = ) "--flight") Sys.argv then begin
    (* E41 alone: flight-recorder overhead, quantile fidelity, and rid
       correlation — the experiment's internal asserts are the pass/fail
       criteria *)
    ignore (Exp_flight.e41_flight ());
    flush_trace ();
    print_endline "flight-recorder experiment completed."
  end
  else if Array.exists (( = ) "--lifecycle") Sys.argv then begin
    (* E42 alone: the SIGKILL/restart crash loop through the real
       [hlpower supervise] processes — the experiment's internal asserts
       (availability floor, zero corruption, byte-identical warm keys,
       the 10x warm-hit floor, clean drain) are the pass/fail criteria *)
    ignore (Exp_lifecycle.e42_lifecycle ());
    flush_trace ();
    print_endline "lifecycle experiment completed."
  end
  else if Array.exists (( = ) "--regression-gate") Sys.argv then begin
    (* CI gate: fresh engine numbers vs the committed BENCH_engines.json;
       a > 25% bit-parallel throughput regression fails the build *)
    let ok = Exp_engines.regression_gate () in
    flush_trace ();
    if not ok then exit 1;
    print_endline "regression gate passed."
  end
  else begin
    experiments ();
    run_bechamel ();
    flush_trace ();
    print_endline "\nall experiments completed."
  end
