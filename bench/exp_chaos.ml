(* E40: chaos soak — availability and retry amplification through a
   fault-injecting proxy, plus a thundering-herd coalescing pin.

   Soak: an in-process estimation daemon, its estimate cache warmed with
   a small key set (and the known-good response bytes recorded), then a
   seeded Chaos proxy between the clients and the daemon injecting
   delays, drops, truncation, corruption, split writes, and slammed
   connections at a fixed per-chunk rate. Closed-loop resilient clients
   (Server.Client: reconnect, jittered backoff, bounded retries — every
   protocol op is idempotent) hammer the warmed keys. The contract under
   chaos: every logical request ends as a byte-correct answer or a typed
   error — never silent corruption (the CRC wall must catch every
   mangled frame) and never a hung client (request timeouts bound every
   read). The pinned numbers are the availability percentage
   (correct-or-typed over total, floor 99%) and the wire/logical retry
   amplification.

   Herd: N clients connect to a fresh daemon (one worker per client) and
   fire the same cold estimate simultaneously. Single-flight coalescing
   in the estimate cache must collapse the herd to exactly one
   computation: misses == 1, coalesced == N-1, all N responses
   byte-identical. *)

open Hlp_util

type chaos_result = {
  ch_seed : int;
  ch_rate : float;
  ch_clients : int;
  ch_requests : int;  (** per client *)
  ch_total : int;
  ch_ok_correct : int;
  ch_typed : int;
  ch_corrupt : int;  (** ok-but-wrong-bytes: must be 0 *)
  ch_untyped : int;  (** non-typed exceptions: must be 0 *)
  ch_availability_pct : float;
  ch_logical : int;
  ch_wire : int;
  ch_retry_amplification : float;
  ch_faults : int;  (** faults the proxy actually injected *)
  co_clients : int;
  co_computes : int;  (** estimate-cache misses in the herd: must be 1 *)
  co_coalesced : int;  (** joiners: must be N-1 *)
}

let sock name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "hlpower_e40_%s_%d.sock" name (Unix.getpid ()))

(* in-process daemon on a private socket; joins (graceful drain) before
   returning, so consecutive measurements never share a server *)
let with_server ?max_inflight ~name f =
  let path = sock name in
  let token = Guard.token ~name:"bench_e40" () in
  let ready = Atomic.make false in
  let service = Hlp_power.Service.create () in
  let srv =
    Domain.spawn (fun () ->
        Server.serve ?max_inflight ~overload:Hlp_power.Service.overload_response
          ~token
          ~on_ready:(fun () -> Atomic.set ready true)
          ~path
          (Hlp_power.Service.handle service))
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.001
  done;
  Fun.protect
    ~finally:(fun () ->
      Guard.cancel token;
      Domain.join srv)
    (fun () -> f path)

(* Soak keys: cheap symbolic estimates (the zoo's BDDs are tiny), so the
   soak measures the resilience machinery, not estimation throughput.
   Responses are cache hits after the warm pass — sub-millisecond — and
   byte-stable by the serialized-estimate-cache contract. *)
let soak_keys =
  [ ("adder", 6, 11); ("parity", 5, 23); ("comparator", 8, 5); ("max", 6, 7) ]

let soak_request (circuit, width, seed) ~id =
  Hlp_power.Service.estimate_request ~id ~engine:"bitparallel" ~seed
    ~relative_precision:0.1 ~circuit ~width ()

let parse_ok what raw =
  match Hlp_power.Service.parse_response raw with
  | Ok r -> r
  | Error e -> failwith (Printf.sprintf "E40: %s: bad response: %s" what e)

let count name = Telemetry.count (Telemetry.counter name)

(* classify one soak response against the known-good bytes *)
type verdict = Correct | Typed | Corrupt | Untyped

let soak ~seed ~rate ~clients ~requests =
  with_server ~name:"soak" (fun server_path ->
      (* warm pass, clean path: record the known-good response bytes *)
      let expected = Hashtbl.create 8 in
      let conn = Server.connect server_path in
      List.iteri
        (fun i key ->
          let r = parse_ok "warm" (Server.request conn (soak_request key ~id:i)) in
          if not r.Hlp_power.Service.ok then failwith "E40: warm request failed";
          Hashtbl.replace expected key
            (Option.get (Hlp_power.Service.result_string r)))
        soak_keys;
      Server.close conn;
      let listen = sock "chaos" in
      let faults0 = count "chaos.faults" in
      let proxy = Chaos.start ~seed ~rate ~listen ~upstream:server_path () in
      Fun.protect
        ~finally:(fun () -> Chaos.stop proxy)
        (fun () ->
          let nkeys = List.length soak_keys in
          let run_client c () =
            let cl =
              Server.Client.create
                ~seed:((seed * 1000) + c)
                ~max_retries:8 ~request_timeout_s:1.0 listen
            in
            Fun.protect
              ~finally:(fun () -> Server.Client.close cl)
              (fun () ->
                let verdicts =
                  List.init requests (fun r ->
                      let key = List.nth soak_keys ((c + r) mod nkeys) in
                      let id = (c * requests) + r in
                      match Server.Client.request cl (soak_request key ~id) with
                      | raw -> (
                          match Hlp_power.Service.parse_response raw with
                          | Error _ -> Corrupt
                          | Ok pr when not pr.Hlp_power.Service.ok -> Typed
                          | Ok pr -> (
                              match Hlp_power.Service.result_string pr with
                              | Some bytes
                                when String.equal bytes (Hashtbl.find expected key)
                                ->
                                  Correct
                              | _ -> Corrupt))
                      | exception Err.Error _ -> Typed
                      | exception _ -> Untyped)
                in
                (verdicts, Server.Client.counts cl))
          in
          let per_client =
            List.map Domain.join
              (List.init clients (fun c -> Domain.spawn (run_client c)))
          in
          let verdicts = List.concat_map fst per_client in
          let tally v = List.length (List.filter (( = ) v) verdicts) in
          let logical, wire =
            List.fold_left
              (fun (l, w) (_, (cl, cw)) -> (l + cl, w + cw))
              (0, 0) per_client
          in
          ( tally Correct, tally Typed, tally Corrupt, tally Untyped,
            logical, wire, count "chaos.faults" - faults0 )))

(* thundering herd: n clients, one identical cold estimate, one compute *)
let herd ~clients:n =
  with_server ~max_inflight:n ~name:"herd" (fun path ->
      let misses0 = count "server.estimates.cache_misses" in
      let coalesced0 = count "server.estimates.coalesced" in
      (* a deliberately slow key: the tight node budget trips the
         symbolic stage into a real Monte Carlo campaign, so the compute
         window is wide open when the herd lands *)
      let req id =
        Hlp_power.Service.estimate_request ~id ~engine:"bitparallel" ~seed:47
          ~relative_precision:0.002 ~node_limit:60 ~circuit:"multiplier"
          ~width:8 ()
      in
      let arrived = Atomic.make 0 in
      let run_client c () =
        let conn = Server.connect path in
        Fun.protect
          ~finally:(fun () -> Server.close conn)
          (fun () ->
            (* barrier: every client is connected (one worker each)
               before anyone fires, so the requests overlap *)
            Atomic.incr arrived;
            while Atomic.get arrived < n do
              Domain.cpu_relax ()
            done;
            let r = parse_ok "herd" (Server.request conn (req c)) in
            if not r.Hlp_power.Service.ok then failwith "E40: herd request failed";
            Option.get (Hlp_power.Service.result_string r))
      in
      let results =
        List.map Domain.join (List.init n (fun c -> Domain.spawn (run_client c)))
      in
      let distinct = List.sort_uniq compare results in
      if List.length distinct <> 1 then
        failwith "E40: herd responses were not byte-identical";
      ( count "server.estimates.cache_misses" - misses0,
        count "server.estimates.coalesced" - coalesced0 ))

let availability_floor_pct = 99.0

let e40_chaos ?(seed = 0) ?(rate = 0.08) ?(clients = 4) ?(requests = 40)
    ?(herd_clients = 6) () =
  Trace.span "bench.e40_chaos" @@ fun () ->
  (* chaos/coalescing counters are the measurement: telemetry must be on
     for the duration, whatever the surrounding run chose *)
  let was_enabled = Telemetry.enabled () in
  Telemetry.enable ();
  Fun.protect
    ~finally:(fun () -> if not was_enabled then Telemetry.disable ())
  @@ fun () ->
  let ok_correct, typed, corrupt, untyped, logical, wire, faults =
    soak ~seed ~rate ~clients ~requests
  in
  let total = clients * requests in
  let availability =
    100.0 *. float_of_int (ok_correct + typed) /. float_of_int total
  in
  let computes, coalesced = herd ~clients:herd_clients in
  let r =
    {
      ch_seed = seed;
      ch_rate = rate;
      ch_clients = clients;
      ch_requests = requests;
      ch_total = total;
      ch_ok_correct = ok_correct;
      ch_typed = typed;
      ch_corrupt = corrupt;
      ch_untyped = untyped;
      ch_availability_pct = availability;
      ch_logical = logical;
      ch_wire = wire;
      ch_retry_amplification = float_of_int wire /. float_of_int (max 1 logical);
      ch_faults = faults;
      co_clients = herd_clients;
      co_computes = computes;
      co_coalesced = coalesced;
    }
  in
  Printf.printf
    "E40: chaos soak (seed %d, rate %.2f, %d clients x %d requests through \
     the fault proxy):\n"
    seed rate clients requests;
  Printf.printf
    "  %d byte-correct, %d typed errors, %d corrupt, %d untyped; %d faults \
     injected\n"
    r.ch_ok_correct r.ch_typed r.ch_corrupt r.ch_untyped r.ch_faults;
  Printf.printf
    "  availability %.2f%% (floor %.0f%%); retry amplification %.3f (%d \
     wire / %d logical)\n"
    r.ch_availability_pct availability_floor_pct r.ch_retry_amplification
    r.ch_wire r.ch_logical;
  Printf.printf
    "  herd: %d identical clients -> %d computation(s), %d coalesced \
     (want 1 and N-1)\n"
    r.co_clients r.co_computes r.co_coalesced;
  if r.ch_corrupt > 0 then
    failwith "E40: a corrupted response survived the CRC wall";
  if r.ch_untyped > 0 then failwith "E40: a client saw a non-typed failure";
  if r.ch_availability_pct < availability_floor_pct then
    failwith "E40: availability under chaos below the 99% floor";
  if r.co_computes <> 1 then
    failwith "E40: the herd ran more than one computation";
  if r.co_coalesced <> herd_clients - 1 then
    failwith "E40: coalesced counter is not N-1";
  print_newline ();
  r

let json_obj r =
  let open Json in
  Obj
    [ ("experiment", Str "E40 chaos soak availability");
      ( "transport",
        Str "unix socket, CRC-framed, seeded chaos proxy, resilient client" );
      ("seed", Int r.ch_seed);
      ("fault_rate", Float r.ch_rate);
      ("clients", Int r.ch_clients);
      ("requests_per_client", Int r.ch_requests);
      ("total_requests", Int r.ch_total);
      ("ok_correct", Int r.ch_ok_correct);
      ("typed_errors", Int r.ch_typed);
      (* asserted zero by the experiment, recorded for the report *)
      ("corrupt", Int r.ch_corrupt);
      ("untyped", Int r.ch_untyped);
      (* the gated number: correct-or-typed over total, absolute floor *)
      ("availability_pct", Float r.ch_availability_pct);
      ("availability_floor_pct", Float availability_floor_pct);
      ("logical_requests", Int r.ch_logical);
      ("wire_requests", Int r.ch_wire);
      ("retry_amplification", Float r.ch_retry_amplification);
      ("faults_injected", Int r.ch_faults);
      ( "coalescing",
        Obj
          [ ("clients", Int r.co_clients);
            ("computations", Int r.co_computes);
            ("coalesced", Int r.co_coalesced) ] ) ]
