(* Minimal JSON emitter for the BENCH_*.json artifacts (no external
   dependency; the values are all bench-generated, so no parsing needed). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec emit b ~indent v =
  let pad n = String.make n ' ' in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (string_of_bool x)
  | Int x -> Buffer.add_string b (string_of_int x)
  | Float x ->
      Buffer.add_string b (if Float.is_finite x then Printf.sprintf "%.9g" x else "null")
  | Str s -> Buffer.add_string b (Printf.sprintf "\"%s\"" (escape s))
  | List [] -> Buffer.add_string b "[]"
  | List items ->
      Buffer.add_string b "[";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ",";
          Buffer.add_string b "\n";
          Buffer.add_string b (pad (indent + 2));
          emit b ~indent:(indent + 2) x)
        items;
      Buffer.add_string b "\n";
      Buffer.add_string b (pad indent);
      Buffer.add_string b "]"
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
      Buffer.add_string b "{";
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_string b ",";
          Buffer.add_string b "\n";
          Buffer.add_string b (pad (indent + 2));
          Buffer.add_string b (Printf.sprintf "\"%s\": " (escape k));
          emit b ~indent:(indent + 2) x)
        fields;
      Buffer.add_string b "\n";
      Buffer.add_string b (pad indent);
      Buffer.add_string b "}"

let to_string v =
  let b = Buffer.create 4096 in
  emit b ~indent:0 v;
  Buffer.add_string b "\n";
  Buffer.contents b

let write ~path v =
  let oc = open_out path in
  output_string oc (to_string v);
  close_out oc
