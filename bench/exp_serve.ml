(* E39: estimation-service latency — cold estimates vs warm cache hits.

   An in-process [Hlp_util.Server] running [Hlp_power.Service.handle] is
   driven through a real Unix-domain socket by a closed-loop client: one
   cold pass over a set of distinct estimate keys (every request pays a
   full guarded estimation — a tripped symbolic budget followed by a
   Monte Carlo campaign), then several warm rounds over the same keys
   (every request is answered from the serialized-estimate cache). Per-request latencies give p50/p99 for
   both regimes; the warm responses are asserted byte-identical to the
   cold ones (the cache stores the serialized result, so this is the
   protocol's correctness contract, not a float tolerance). A second
   server with one worker and a one-connection admission budget
   demonstrates overload: the surplus connection must receive the typed
   [Overloaded] frame, not an unbounded queue slot.

   The pinned number is the cold-p50 / warm-p50 ratio — a within-machine
   ratio (both sides measured in the same process on the same socket), so
   it transfers across runners the way the E33/E38 ratios do. The
   acceptance floor is 10x: a warm hit must cost at least an order of
   magnitude less than recomputation, else the daemon's reason to exist
   is gone. *)

open Hlp_util

type serve_result = {
  sv_distinct_keys : int;
  sv_warm_rounds : int;
  sv_cold_ms : float array;  (** per-request latency, cold pass *)
  sv_warm_ms : float array;  (** per-request latency, all warm rounds *)
  sv_cold_p50_ms : float;
  sv_cold_p99_ms : float;
  sv_warm_p50_ms : float;
  sv_warm_p99_ms : float;
  sv_cold_requests_per_s : float;
  sv_warm_requests_per_s : float;
  sv_cold_vs_warm_p50 : float;
  sv_byte_identical : bool;
  sv_typed_sheds : int;  (** overload demo: typed frames received *)
}

let time f =
  let t0 = Clock.now_s () in
  let r = f () in
  (r, Clock.now_s () -. t0)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else
    let i = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) i))

(* in-process daemon on a private socket; joins (graceful drain) before
   returning, so consecutive measurements never share a server *)
let with_server ?max_inflight ?queue_budget f =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hlpower_e39_%d.sock" (Unix.getpid ()))
  in
  let token = Guard.token ~name:"bench_e39" () in
  let ready = Atomic.make false in
  let service = Hlp_power.Service.create () in
  let srv =
    Domain.spawn (fun () ->
        Hlp_util.Server.serve ?max_inflight ?queue_budget
          ~overload:Hlp_power.Service.overload_response ~token
          ~on_ready:(fun () -> Atomic.set ready true)
          ~path
          (Hlp_power.Service.handle service))
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.001
  done;
  Fun.protect
    ~finally:(fun () ->
      Guard.cancel token;
      Domain.join srv)
    (fun () -> f path)

(* The estimate key set: distinct circuits, widths, and seeds. The node
   budget is deliberately small, so every cold request trips the symbolic
   stage and runs a real Monte Carlo campaign — thousands of simulated
   cycles per request, which is the regime a designer's iteration loop
   pays without the cache. (The generator zoo's symbolic BDDs are all
   tiny — microseconds — so a symbolic cold pass would only measure
   framing overhead; it would also make the two seeds per circuit share
   all their work, since a symbolic answer is seed-independent.) *)
let keys =
  List.concat_map
    (fun (circuit, width) ->
      List.map (fun seed -> (circuit, width, seed)) [ 11; 23 ])
    [ ("multiplier", 6); ("multiplier", 8); ("alu", 6); ("alu", 8);
      ("adder", 16); ("comparator", 16) ]

let request_of (circuit, width, seed) ~id =
  Hlp_power.Service.estimate_request ~id ~engine:"bitparallel" ~seed
    ~relative_precision:0.002 ~node_limit:60 ~circuit ~width ()

let parse_ok raw =
  match Hlp_power.Service.parse_response raw with
  | Ok r -> r
  | Error e -> failwith ("E39: bad response: " ^ e)

(* overload demo: one worker, one queued connection allowed, a sleeper
   pinning the worker — the third connection must get the typed frame *)
let overload_demo () =
  with_server ~max_inflight:1 ~queue_budget:1 (fun path ->
      let c1 = Hlp_util.Server.connect path in
      let sleeper =
        Domain.spawn (fun () ->
            Hlp_util.Server.request c1
              (Hlp_power.Service.ping_request ~id:1 ~sleep_s:0.6 ()))
      in
      Unix.sleepf 0.2;
      let c2 = Hlp_util.Server.connect path in
      let waiter =
        Domain.spawn (fun () ->
            Hlp_util.Server.request c2
              (Hlp_power.Service.ping_request ~id:2 ()))
      in
      Unix.sleepf 0.2;
      let c3 = Hlp_util.Server.connect path in
      let shed =
        parse_ok
          (Hlp_util.Server.request c3
             (Hlp_power.Service.ping_request ~id:3 ()))
      in
      let typed =
        match shed.Hlp_power.Service.error with
        | Some ("overloaded", _, 70) when not shed.Hlp_power.Service.ok -> 1
        | _ -> 0
      in
      ignore (Domain.join sleeper);
      Hlp_util.Server.close c1;
      ignore (Domain.join waiter);
      Hlp_util.Server.close c2;
      Hlp_util.Server.close c3;
      typed)

let e39_serve ?(warm_rounds = 4) ?(assert_speedup = true) () =
  Trace.span "bench.e39_serve" @@ fun () ->
  let cold_results = Hashtbl.create 16 in
  let sv_cold_ms, sv_warm_ms, sv_byte_identical =
    with_server (fun path ->
        let conn = Hlp_util.Server.connect path in
        Fun.protect
          ~finally:(fun () -> Hlp_util.Server.close conn)
          (fun () ->
            let ask key ~id =
              let raw, s =
                time (fun () ->
                    Hlp_util.Server.request conn (request_of key ~id))
              in
              let r = parse_ok raw in
              if not r.Hlp_power.Service.ok then
                failwith "E39: estimate request failed";
              ( Option.get (Hlp_power.Service.result_string r),
                r.Hlp_power.Service.cached,
                s *. 1e3 )
            in
            (* cold pass: every key is a miss *)
            let cold =
              List.mapi
                (fun i key ->
                  let result, cached, ms = ask key ~id:i in
                  if cached then failwith "E39: cold request was a cache hit";
                  Hashtbl.replace cold_results key result;
                  ms)
                keys
            in
            (* warm rounds: every key is a hit, bytes must match cold *)
            let identical = ref true in
            let warm = ref [] in
            for round = 1 to warm_rounds do
              List.iteri
                (fun i key ->
                  let result, cached, ms =
                    ask key ~id:((round * 1000) + i)
                  in
                  if not cached then failwith "E39: warm request missed";
                  if not (String.equal result (Hashtbl.find cold_results key))
                  then identical := false;
                  warm := ms :: !warm)
                keys
            done;
            (Array.of_list cold, Array.of_list (List.rev !warm), !identical)))
  in
  let sv_typed_sheds = overload_demo () in
  let sorted a =
    let c = Array.copy a in
    Array.sort Float.compare c;
    c
  in
  let cold_sorted = sorted sv_cold_ms and warm_sorted = sorted sv_warm_ms in
  let total = Array.fold_left ( +. ) 0.0 in
  let sv_cold_p50_ms = percentile cold_sorted 50.0 in
  let sv_warm_p50_ms = percentile warm_sorted 50.0 in
  let r =
    {
      sv_distinct_keys = List.length keys;
      sv_warm_rounds = warm_rounds;
      sv_cold_ms;
      sv_warm_ms;
      sv_cold_p50_ms;
      sv_cold_p99_ms = percentile cold_sorted 99.0;
      sv_warm_p50_ms;
      sv_warm_p99_ms = percentile warm_sorted 99.0;
      sv_cold_requests_per_s =
        float_of_int (Array.length sv_cold_ms) /. (total sv_cold_ms /. 1e3);
      sv_warm_requests_per_s =
        float_of_int (Array.length sv_warm_ms) /. (total sv_warm_ms /. 1e3);
      sv_cold_vs_warm_p50 = sv_cold_p50_ms /. sv_warm_p50_ms;
      sv_byte_identical;
      sv_typed_sheds;
    }
  in
  Printf.printf
    "E39: estimation service (%d keys, %d warm rounds, unix socket):\n"
    r.sv_distinct_keys warm_rounds;
  Printf.printf "  cold: p50 %.3f ms, p99 %.3f ms, %.0f req/s\n"
    r.sv_cold_p50_ms r.sv_cold_p99_ms r.sv_cold_requests_per_s;
  Printf.printf "  warm: p50 %.3f ms, p99 %.3f ms, %.0f req/s\n"
    r.sv_warm_p50_ms r.sv_warm_p99_ms r.sv_warm_requests_per_s;
  Printf.printf
    "  warm speedup (cold p50 / warm p50): %.0fx (target >= 10x)\n"
    r.sv_cold_vs_warm_p50;
  Printf.printf "  warm responses byte-identical to cold: %s\n"
    (if r.sv_byte_identical then "yes" else "NO");
  Printf.printf "  overload demo: %d typed Overloaded frame(s)\n"
    r.sv_typed_sheds;
  if not r.sv_byte_identical then
    failwith "E39: warm response bytes diverged from cold";
  if r.sv_typed_sheds <> 1 then
    failwith "E39: overload did not shed exactly one typed frame";
  if assert_speedup && r.sv_cold_vs_warm_p50 < 10.0 then
    failwith "E39: warm cache hits below the 10x latency target";
  print_newline ();
  r

let floats a = Json.List (Array.to_list (Array.map (fun x -> Json.Float x) a))

let json_obj r =
  let open Json in
  Obj
    [ ("experiment", Str "E39 estimation service latency");
      ("transport", Str "unix socket, CRC-framed, in-process server");
      ("distinct_keys", Int r.sv_distinct_keys);
      ("warm_rounds", Int r.sv_warm_rounds);
      ("cold_ms", floats r.sv_cold_ms);
      ("warm_ms", floats r.sv_warm_ms);
      ("cold_p50_ms", Float r.sv_cold_p50_ms);
      ("cold_p99_ms", Float r.sv_cold_p99_ms);
      ("warm_p50_ms", Float r.sv_warm_p50_ms);
      ("warm_p99_ms", Float r.sv_warm_p99_ms);
      ("cold_requests_per_s", Float r.sv_cold_requests_per_s);
      ("warm_requests_per_s", Float r.sv_warm_requests_per_s);
      (* the gated number: within-machine cold/warm latency ratio *)
      ("cold_vs_warm_p50", Float r.sv_cold_vs_warm_p50);
      ("speedup_floor", Float 10.0);
      ("byte_identical", Bool r.sv_byte_identical);
      ("overload_typed_sheds", Int r.sv_typed_sheds) ]
