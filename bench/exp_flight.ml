(* E41: flight-recorder overhead and fidelity.

   Three claims about the daemon's observability layer, each measured
   rather than assumed:

   1. Overhead. The E39 estimation workload (cold estimate requests over
      a real Unix-domain socket, each a tripped symbolic budget followed
      by a fixed-budget Monte Carlo campaign) runs interleaved
      (disabled, enabled, disabled) rounds of the full recorder:
      Telemetry histograms per request plus one access-log line. The two
      disabled batches are an A/A noise floor; the enabled batch pays
      the whole per-request recording path. Budget: < 2% on the minimum
      of reps, judged against the A/A spread — a failure must clear the
      noise floor by at least the budget, so an overhead the noise
      swallows (or shadows to within it) is a pass. Every request uses a fresh seed with a
      pinned cycle budget, so each round does the same deterministic
      simulation work and never hits the estimate cache.

   2. Quantile fidelity. [Hdr]'s log-bucketed quantiles are compared
      against exact sorted-sample quantiles of the same draw at
      p50/p90/p99/p999; the worst relative error must respect the
      documented [Hdr.max_relative_error] bound (integer-valued samples,
      so unit rounding contributes nothing).

   3. Correlation. One slow request (ping with a worker-pinning sleep,
      explicit rid) is issued among ordinary traffic against a server
      with an access log and a slow-request threshold; after drain, the
      same rid must locate the request in the access log (with its
      service time) and as a ["server.slow_request"] instant in the
      trace — the one-id-finds-everything contract. The log itself is
      checked for well-formedness: every line parses as JSON, rids are
      unique, and the line count ties out to the requests served. *)

open Hlp_util

type flight_result = {
  fl_reqs_per_batch : int;
  fl_reps : int;
  fl_disabled_a_s : float array;
  fl_enabled_s : float array;
  fl_disabled_b_s : float array;
  fl_disabled_spread_pct : float;
  fl_enabled_overhead_pct : float;
  fl_quantile_worst_rel_err : float;
  fl_quantile_bound : float;
  fl_log_lines : int;
  fl_requests_served : int;
  fl_rids_unique : bool;
  fl_slow_in_log : bool;
  fl_slow_in_trace : bool;
}

let time f =
  let t0 = Clock.now_s () in
  let r = f () in
  (r, Clock.now_s () -. t0)

(* in-process daemon on a private socket, flight recorder configured;
   joins (graceful drain) before returning so the access log is complete
   and closed when the caller reads it *)
let with_server ?access_log ?slow_s f =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hlpower_e41_%d.sock" (Unix.getpid ()))
  in
  let token = Guard.token ~name:"bench_e41" () in
  let ready = Atomic.make false in
  let service = Hlp_power.Service.create () in
  let srv =
    Domain.spawn (fun () ->
        Hlp_util.Server.serve ?access_log ?slow_s
          ~overload:Hlp_power.Service.overload_response ~token
          ~on_ready:(fun () -> Atomic.set ready true)
          ~path
          (Hlp_power.Service.handle service))
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.001
  done;
  Fun.protect
    ~finally:(fun () ->
      Guard.cancel token;
      Domain.join srv)
    (fun () -> f path)

let parse_ok raw =
  match Hlp_power.Service.parse_response raw with
  | Ok r -> r
  | Error e -> failwith ("E41: bad response: " ^ e)

(* --- 1. recorder overhead on the E39 cold-estimate workload --- *)

(* monotonically fresh seeds: every request is a distinct cache key, so
   each batch repeats the same cold-path work *)
let seed_counter = ref 1000

let fresh_seed () =
  incr seed_counter;
  !seed_counter

let overhead ?(reqs_per_batch = 3) ?(reps = 5) ~access_log () =
  with_server ~access_log (fun path ->
      let conn = Hlp_util.Server.connect path in
      Fun.protect
        ~finally:(fun () -> Hlp_util.Server.close conn)
      @@ fun () ->
      (* fixed cycle budget + unreachable precision: the Monte Carlo
         campaign always runs the whole budget, so per-request work is
         seed-independent (the E36 trick) *)
      let batch () =
        for i = 1 to reqs_per_batch do
          let r =
            parse_ok
              (Hlp_util.Server.request conn
                 (Hlp_power.Service.estimate_request ~id:i
                    ~engine:"bitparallel" ~seed:(fresh_seed ())
                    ~relative_precision:1e-9 ~max_cycles:100_000
                    ~node_limit:60 ~circuit:"multiplier" ~width:8 ()))
          in
          if not r.Hlp_power.Service.ok then
            failwith "E41: estimate request failed";
          if r.Hlp_power.Service.cached then
            failwith "E41: overhead request unexpectedly hit the cache"
        done
      in
      Telemetry.disable ();
      batch ();
      (* warm-up: netlist construction, kernel plan *)
      let timed () = snd (time batch) in
      let disabled_a_s = Array.make reps 0.0 in
      let enabled_s = Array.make reps 0.0 in
      let disabled_b_s = Array.make reps 0.0 in
      for i = 0 to reps - 1 do
        Telemetry.disable ();
        disabled_a_s.(i) <- timed ();
        Telemetry.enable ();
        enabled_s.(i) <- timed ();
        Telemetry.disable ();
        disabled_b_s.(i) <- timed ()
      done;
      Telemetry.disable ();
      Telemetry.reset ();
      (disabled_a_s, enabled_s, disabled_b_s))

(* --- 2. Hdr quantiles vs exact sorted-sample quantiles --- *)

let quantile_fidelity () =
  let rng = Prng.create 4242 in
  let n = 20_000 in
  (* integer-valued, spread over ~5 decades: only the bucketing error is
     in play, never the unit-rounding of fractional values *)
  let samples =
    Array.init n (fun _ ->
        let magnitude = 1 + Prng.int rng 5 in
        let base = int_of_float (10.0 ** float_of_int magnitude) in
        float_of_int (base + Prng.int rng (9 * base)))
  in
  let h = Hdr.create () in
  Array.iter (Hdr.record h) samples;
  let snap = Hdr.snapshot h in
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  let exact q =
    let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
    sorted.(rank - 1)
  in
  let worst =
    List.fold_left
      (fun acc q ->
        let e = exact q and a = Hdr.quantile snap q in
        max acc (abs_float (a -. e) /. e))
      0.0
      [ 0.50; 0.90; 0.99; 0.999 ]
  in
  if worst > Hdr.max_relative_error then
    failwith
      (Printf.sprintf
         "E41: histogram quantile error %.4f exceeds the documented %.4f \
          bound"
         worst Hdr.max_relative_error);
  worst

(* --- 3. rid correlation: access log + trace, one id --- *)

let slow_rid = "e41-slow"

let correlation ~access_log () =
  let trace_was_on = Trace.enabled () in
  if not trace_was_on then Trace.enable ();
  Telemetry.enable ();
  let requests_served =
    with_server ~access_log ~slow_s:0.02 (fun path ->
        let conn = Hlp_util.Server.connect path in
        Fun.protect
          ~finally:(fun () -> Hlp_util.Server.close conn)
        @@ fun () ->
        let ask payload =
          let r = parse_ok (Hlp_util.Server.request conn payload) in
          if not r.Hlp_power.Service.ok then failwith "E41: request failed"
        in
        (* ordinary traffic around the slow request: pings plus a
           miss/hit estimate pair, so the log records every cache
           outcome class *)
        for i = 1 to 5 do
          ask
            (Hlp_power.Service.ping_request ~id:i
               ~rid:(Printf.sprintf "e41-req-%d" i) ())
        done;
        let est ~id =
          Hlp_power.Service.estimate_request ~id
            ~rid:(Printf.sprintf "e41-est-%d" id) ~engine:"bitparallel"
            ~seed:7 ~relative_precision:0.05 ~node_limit:60
            ~circuit:"adder" ~width:8 ()
        in
        ask (est ~id:6);
        ask (est ~id:7);
        (* same key: a hit *)
        ask
          (Hlp_power.Service.ping_request ~id:8 ~rid:slow_rid ~sleep_s:0.05 ());
        8)
  in
  (* drained: the log is complete and closed *)
  let lines =
    let ic = open_in access_log in
    let rec go acc =
      match input_line ic with
      | line -> go (line :: acc)
      | exception End_of_file ->
          close_in ic;
          List.rev acc
    in
    go []
  in
  let parsed =
    List.map
      (fun line ->
        match Json.parse line with
        | Ok v -> v
        | Error e -> failwith ("E41: unparseable access-log line: " ^ e))
      lines
  in
  let rid_of v =
    match Option.bind (Json.member "rid" v) Json.to_str_opt with
    | Some r -> r
    | None -> failwith "E41: access-log line without a rid"
  in
  let rids = List.map rid_of parsed in
  let fl_rids_unique =
    List.length rids = List.length (List.sort_uniq compare rids)
  in
  let fl_slow_in_log =
    List.exists
      (fun v ->
        rid_of v = slow_rid
        && Option.bind (Json.member "op" v) Json.to_str_opt = Some "ping"
        &&
        match Option.bind (Json.member "service_s" v) Json.to_float_opt with
        | Some s -> s >= 0.05
        | None -> false)
      parsed
  in
  let fl_slow_in_trace =
    match Json.member "traceEvents" (Trace.json_value ()) with
    | Some (Json.List events) ->
        List.exists
          (fun e ->
            Json.member "name" e |> fun n ->
            Option.bind n Json.to_str_opt = Some "server.slow_request"
            && Option.bind (Json.member "args" e) (Json.member "rid")
               |> fun r -> Option.bind r Json.to_str_opt = Some slow_rid)
          events
    | _ -> false
  in
  Telemetry.disable ();
  Telemetry.reset ();
  if not trace_was_on then (
    Trace.disable ();
    Trace.reset ());
  (List.length lines, requests_served, fl_rids_unique, fl_slow_in_log,
   fl_slow_in_trace)

let e41_flight ?(reqs_per_batch = 3) ?(reps = 5) ?(assert_overhead = false) ()
    =
  Trace.span "bench.e41_flight" @@ fun () ->
  let fl_quantile_worst_rel_err = quantile_fidelity () in
  let log1 = Filename.temp_file "hlpower_e41_oh" ".log" in
  let log2 = Filename.temp_file "hlpower_e41_corr" ".log" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ log1; log1 ^ ".1"; log2; log2 ^ ".1" ])
  @@ fun () ->
  let disabled_a_s, enabled_s, disabled_b_s =
    overhead ~reqs_per_batch ~reps ~access_log:log1 ()
  in
  let minimum a = Array.fold_left min a.(0) a in
  let da = minimum disabled_a_s and db = minimum disabled_b_s in
  let d = min da db in
  let fl_disabled_spread_pct = abs_float (db -. da) /. da *. 100.0 in
  let fl_enabled_overhead_pct = (minimum enabled_s -. d) /. d *. 100.0 in
  let ( fl_log_lines, fl_requests_served, fl_rids_unique, fl_slow_in_log,
        fl_slow_in_trace ) =
    correlation ~access_log:log2 ()
  in
  let r =
    {
      fl_reqs_per_batch = reqs_per_batch;
      fl_reps = reps;
      fl_disabled_a_s = disabled_a_s;
      fl_enabled_s = enabled_s;
      fl_disabled_b_s = disabled_b_s;
      fl_disabled_spread_pct;
      fl_enabled_overhead_pct;
      fl_quantile_worst_rel_err;
      fl_quantile_bound = Hdr.max_relative_error;
      fl_log_lines;
      fl_requests_served;
      fl_rids_unique;
      fl_slow_in_log;
      fl_slow_in_trace;
    }
  in
  Printf.printf
    "E41: flight recorder (cold estimates over unix socket, %d req/batch, \
     best of %d):\n"
    reqs_per_batch reps;
  Printf.printf "  disabled A/A spread:  %.2f%% (measurement noise floor)\n"
    r.fl_disabled_spread_pct;
  Printf.printf
    "  recorder enabled:     %.2f%% (histograms + access log, budget < 2%%)\n"
    r.fl_enabled_overhead_pct;
  Printf.printf
    "  quantile fidelity:    worst relative error %.5f (bound %.5f)\n"
    r.fl_quantile_worst_rel_err r.fl_quantile_bound;
  Printf.printf
    "  access log: %d line(s) for %d request(s), rids unique: %s\n"
    r.fl_log_lines r.fl_requests_served
    (if r.fl_rids_unique then "yes" else "NO");
  Printf.printf "  slow request by rid: in log %s, in trace %s\n"
    (if r.fl_slow_in_log then "yes" else "NO")
    (if r.fl_slow_in_trace then "yes" else "NO");
  if r.fl_log_lines <> r.fl_requests_served then
    failwith "E41: access-log line count does not tie out to requests served";
  if not r.fl_rids_unique then failwith "E41: duplicate rids in access log";
  if not r.fl_slow_in_log then
    failwith "E41: slow request not found in access log by rid";
  if not r.fl_slow_in_trace then
    failwith "E41: slow request not found in trace by rid";
  (* over budget only counts when it rises above the machine's own A/A
     noise floor by at least the budget itself — an overhead the noise
     floor swallows (or shadows to within the budget) passes *)
  if
    assert_overhead
    && r.fl_enabled_overhead_pct >= 2.0
    && r.fl_enabled_overhead_pct > r.fl_disabled_spread_pct +. 2.0
  then failwith "E41: flight-recorder overhead above the 2% budget";
  print_newline ();
  r

let floats a = Json.List (Array.to_list (Array.map (fun x -> Json.Float x) a))

let json_obj r =
  let open Json in
  Obj
    [ ("experiment", Str "E41 flight-recorder overhead and fidelity");
      ( "workload",
        Str
          "cold estimate requests over unix socket, pinned Monte Carlo \
           budget" );
      ("reqs_per_batch", Int r.fl_reqs_per_batch);
      ("reps", Int r.fl_reps);
      ("disabled_a_s", floats r.fl_disabled_a_s);
      ("enabled_s", floats r.fl_enabled_s);
      ("disabled_b_s", floats r.fl_disabled_b_s);
      (* A/A comparison of two identical disabled batches: the recorder's
         off-switch cost is below this noise floor *)
      ("disabled_spread_pct", Float r.fl_disabled_spread_pct);
      ("enabled_overhead_pct", Float r.fl_enabled_overhead_pct);
      ("budget_pct", Float 2.0);
      ( "within_budget",
        Bool
          (r.fl_enabled_overhead_pct < 2.0
          || r.fl_enabled_overhead_pct <= r.fl_disabled_spread_pct +. 2.0)
      );
      ("quantile_worst_rel_err", Float r.fl_quantile_worst_rel_err);
      ("quantile_bound", Float r.fl_quantile_bound);
      ("access_log_lines", Int r.fl_log_lines);
      ("requests_served", Int r.fl_requests_served);
      ("rids_unique", Bool r.fl_rids_unique);
      ("slow_request_in_log", Bool r.fl_slow_in_log);
      ("slow_request_in_trace", Bool r.fl_slow_in_trace) ]
