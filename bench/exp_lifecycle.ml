(* E42: crash-only lifecycle — a SIGKILL loop through the real
   [hlpower supervise] watchdog and its re-exec'd serve children, under
   closed-loop resilient-client load.

   The daemon is started under the watchdog with a state dir (snapshot
   spill every 0.1 s), a pid file, and a supervision journal. A warm
   pass records the known-good response bytes and the cold compute
   latency of a deliberately expensive pinned key. Then the crash loop:
   each cycle SIGKILLs the current serve child (pid from the pid file)
   and keeps hammering the warmed keys through a resilient client whose
   restart rides absorb the watchdog's restart window. The contract:

   - availability (byte-correct or typed over total) stays >= 99%;
   - zero corrupt responses, zero untyped failures — a crash mid-write
     must surface as a CRC-walled retry or a typed error, never bytes;
   - after the final restart every warmed key still answers
     byte-identically, served from the rehydrated snapshot (cached);
   - the first post-restart warm hit of the pinned key is >= 10x
     cheaper than its cold compute — the point of spilling at all;
   - the supervision journal records every crash and restart;
   - SIGTERM to the supervisor drains the child (exit 143) and unlinks
     the socket and pid file. *)

open Hlp_util

type lifecycle_result = {
  lc_cycles : int;  (** SIGKILL/restart cycles driven *)
  lc_total : int;  (** logical requests during the crash loop *)
  lc_ok_correct : int;
  lc_typed : int;
  lc_corrupt : int;  (** ok-but-wrong-bytes: must be 0 *)
  lc_untyped : int;  (** non-typed exceptions: must be 0 *)
  lc_availability_pct : float;
  lc_crashes_journaled : int;  (** [exited] records in the journal *)
  lc_restarts_journaled : int;  (** [restarting] records *)
  lc_warm_identical : bool;  (** all warmed keys byte-identical after loop *)
  lc_cold_s : float;  (** pinned key cold compute latency *)
  lc_warm_s : float;  (** pinned key first post-restart warm hit *)
  lc_warm_speedup : float;  (** cold/warm, floor 10x *)
  lc_drain_exit : int;  (** supervisor exit code after SIGTERM (143) *)
}

let availability_floor_pct = 99.0
let warm_speedup_floor = 10.0

let hlpower_bin () =
  match Sys.getenv_opt "HLPOWER_BIN" with
  | Some p when Sys.file_exists p -> p
  | _ ->
      let near =
        Filename.concat
          (Filename.dirname Sys.executable_name)
          "../bin/hlpower.exe"
      in
      if Sys.file_exists near then near
      else
        failwith
          "E42: hlpower binary not found next to the bench (set HLPOWER_BIN)"

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let eventually ?(timeout_s = 20.0) what pred =
  let deadline = Clock.now_s () +. timeout_s in
  let rec go () =
    if pred () then ()
    else if Clock.now_s () > deadline then
      failwith ("E42: timed out waiting for " ^ what)
    else begin
      Unix.sleepf 0.01;
      go ()
    end
  in
  go ()

let pid_of_file path =
  match int_of_string (String.trim (read_file path)) with
  | pid -> Some pid
  | exception _ -> None

(* the warmed key set the crash loop hammers; cheap symbolic estimates *)
let warm_keys =
  [ ("adder", 6, 11); ("parity", 5, 23); ("comparator", 8, 5); ("max", 6, 7) ]

(* the pinned key for the warm/cold ratio: the tight node budget trips
   symbolic into a real Monte Carlo campaign, so the cold compute is
   orders of magnitude above a cache probe *)
let pinned = ("multiplier", 10, 47)

let request_of (circuit, width, seed) ~id =
  if circuit = "multiplier" then
    Hlp_power.Service.estimate_request ~id ~engine:"bitparallel" ~seed
      ~relative_precision:0.002 ~node_limit:60 ~circuit ~width ()
  else
    Hlp_power.Service.estimate_request ~id ~engine:"bitparallel" ~seed
      ~relative_precision:0.1 ~circuit ~width ()

type verdict = Correct | Typed | Corrupt | Untyped

let rm_rf dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let journal_event_count path name =
  if not (Sys.file_exists path) then 0
  else
    let lines = String.split_on_char '\n' (read_file path) in
    List.length
      (List.filter
         (fun l ->
           match Json.parse l with
           | Ok j -> (
               match Json.member "event" j with
               | Some (Json.Str e) -> e = name
               | _ -> false)
           | Error _ -> false)
         lines)

let e42_lifecycle ?(cycles = 5) ?(requests_per_cycle = 30) ?(seed = 0) () =
  Trace.span "bench.e42_lifecycle" @@ fun () ->
  let was_enabled = Telemetry.enabled () in
  Telemetry.enable ();
  Fun.protect
    ~finally:(fun () -> if not was_enabled then Telemetry.disable ())
  @@ fun () ->
  let dir = Filename.temp_file "hlp_e42" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let sock = Filename.concat dir "daemon.sock" in
  let pidf = Filename.concat dir "daemon.pid" in
  let jour = Filename.concat dir "supervise.jsonl" in
  let bin = hlpower_bin () in
  (* flap breaker wide open: this experiment *is* a deliberate crash
     loop, and giving up early would abort the measurement *)
  (* probes deliberately lenient: the pinned cold compute saturates the
     cores, and a tight probe timeout would wedge-kill a healthy child
     mid-measurement *)
  let argv =
    [| bin; "supervise"; "--socket"; sock; "--state-dir"; dir; "--pid-file";
       pidf; "--journal"; jour; "--probe-interval"; "0.5"; "--probe-misses";
       "8"; "--backoff-base"; "0.05"; "--backoff-cap"; "0.2"; "--flap-window";
       "5.0"; "--flap-max"; "50"; "--grace"; "5.0"; "--seed";
       string_of_int seed; "--"; "--snapshot-interval"; "0.1" |]
  in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let sup_pid = Unix.create_process bin argv Unix.stdin devnull devnull in
  Unix.close devnull;
  let supervisor_alive () =
    match Unix.waitpid [ Unix.WNOHANG ] sup_pid with
    | 0, _ -> true
    | _ -> false
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> false
  in
  let drain () =
    if supervisor_alive () then begin
      (try Unix.kill sup_pid Sys.sigterm with Unix.Unix_error _ -> ());
      match Unix.waitpid [] sup_pid with
      | _, Unix.WEXITED n -> n
      | _, Unix.WSIGNALED _ -> -1
      | _, Unix.WSTOPPED _ -> -1
      | exception Unix.Unix_error (Unix.ECHILD, _, _) -> -1
    end
    else -1
  in
  match
    eventually "first child to serve" (fun () ->
        supervisor_alive () && Sys.file_exists sock && Sys.file_exists pidf);
    (* every request goes through the resilient client: it reconnects
       and retries across restart windows, which is exactly the access
       pattern the lifecycle promises to survive *)
    let client =
      Server.Client.create ~seed:(seed + 77) ~max_retries:8
        ~backoff_base_s:0.005 ~backoff_cap_s:0.1 ~connect_wait_s:0.2
        ~request_timeout_s:20.0 sock
    in
    let verdicts = ref [] in
    Fun.protect ~finally:(fun () -> Server.Client.close client) @@ fun () ->
    (* --- warm pass: record known-good bytes and the cold latency --- *)
    let expected = Hashtbl.create 8 in
    let time_request req =
      let t0 = Clock.now_s () in
      let raw = Server.Client.request client req in
      (Clock.now_s () -. t0, raw)
    in
    let parse what raw =
      match Hlp_power.Service.parse_response raw with
      | Ok r when r.Hlp_power.Service.ok -> r
      | Ok _ -> failwith ("E42: " ^ what ^ " returned a typed error")
      | Error e -> failwith ("E42: " ^ what ^ ": bad response: " ^ e)
    in
    List.iteri
      (fun i key ->
        let _, raw = time_request (request_of key ~id:i) in
        let r = parse "warm pass" raw in
        Hashtbl.replace expected key
          (Option.get (Hlp_power.Service.result_string r)))
      warm_keys;
    let cold_s, pinned_raw = time_request (request_of pinned ~id:100) in
    let pinned_bytes =
      Option.get
        (Hlp_power.Service.result_string (parse "pinned cold" pinned_raw))
    in
    (* give the spill interval one beat so the snapshot holds the keys *)
    Unix.sleepf 0.3;
    (* --- the crash loop --- *)
    let nkeys = List.length warm_keys in
    for cycle = 1 to cycles do
      let before =
        match pid_of_file pidf with
        | Some p -> p
        | None -> failwith "E42: pid file unreadable before kill"
      in
      (try Unix.kill before Sys.sigkill
       with Unix.Unix_error _ -> failwith "E42: SIGKILL failed");
      for r = 0 to requests_per_cycle - 1 do
        let key = List.nth warm_keys (r mod nkeys) in
        let id = (cycle * 1000) + r in
        let v =
          match Server.Client.request client (request_of key ~id) with
          | raw -> (
              match Hlp_power.Service.parse_response raw with
              | Error _ -> Corrupt
              | Ok pr when not pr.Hlp_power.Service.ok -> Typed
              | Ok pr -> (
                  match Hlp_power.Service.result_string pr with
                  | Some bytes when String.equal bytes (Hashtbl.find expected key)
                    ->
                      Correct
                  | _ -> Corrupt))
          | exception Err.Error _ -> Typed
          | exception _ -> Untyped
        in
        verdicts := v :: !verdicts
      done;
      (* the watchdog must have re-execed a fresh child by now *)
      eventually
        (Printf.sprintf "restart %d (new pid)" cycle)
        (fun () ->
          match pid_of_file pidf with
          | Some p -> p <> before
          | None -> false);
      (* let one spill land so the next kill still finds a snapshot *)
      Unix.sleepf 0.25
    done;
    (* --- post-loop: warm keys must answer byte-identically --- *)
    (* absorb any residual restart window on a throwaway ping so the
       warm-hit timing below measures the cache probe, not a reconnect *)
    ignore
      (parse "post-loop ping"
         (Server.Client.request client (Hlp_power.Service.ping_request ())));
    let warm_identical =
      List.for_all
        (fun key ->
          let r =
            parse "post-loop warm key"
              (Server.Client.request client (request_of key ~id:9000))
          in
          match Hlp_power.Service.result_string r with
          | Some bytes -> String.equal bytes (Hashtbl.find expected key)
          | None -> false)
        warm_keys
    in
    (* first post-restart hit of the pinned key: restored from the
       snapshot, so cached and >= 10x cheaper than the cold compute *)
    let warm_s, warm_raw = time_request (request_of pinned ~id:9100) in
    let warm_r = parse "pinned warm" warm_raw in
    let warm_pinned_ok =
      warm_r.Hlp_power.Service.cached
      && String.equal
           (Option.get (Hlp_power.Service.result_string warm_r))
           pinned_bytes
    in
    (* --- drain: SIGTERM propagates, child exits, files unlinked --- *)
    let drain_exit = drain () in
    ( !verdicts, warm_identical, warm_pinned_ok, cold_s, warm_s, drain_exit )
  with
  | exception e ->
      (* never leave a supervisor behind, whatever failed *)
      ignore (drain ());
      raise e
  | verdicts, warm_identical, warm_pinned_ok, cold_s, warm_s, drain_exit ->
      let tally v = List.length (List.filter (( = ) v) verdicts) in
      let ok_correct = tally Correct in
      let typed = tally Typed in
      let corrupt = tally Corrupt in
      let untyped = tally Untyped in
      let total = List.length verdicts in
      let availability =
        100.0 *. float_of_int (ok_correct + typed) /. float_of_int (max 1 total)
      in
      let crashes = journal_event_count jour "exited" in
      let restarts = journal_event_count jour "restarting" in
      let socket_gone = not (Sys.file_exists sock) in
      let pidf_gone = not (Sys.file_exists pidf) in
      let r =
        {
          lc_cycles = cycles;
          lc_total = total;
          lc_ok_correct = ok_correct;
          lc_typed = typed;
          lc_corrupt = corrupt;
          lc_untyped = untyped;
          lc_availability_pct = availability;
          lc_crashes_journaled = crashes;
          lc_restarts_journaled = restarts;
          lc_warm_identical = warm_identical && warm_pinned_ok;
          lc_cold_s = cold_s;
          lc_warm_s = warm_s;
          lc_warm_speedup = cold_s /. Float.max 1e-9 warm_s;
          lc_drain_exit = drain_exit;
        }
      in
      Printf.printf
        "E42: crash-only lifecycle (%d SIGKILL/restart cycles, %d requests \
         under the crash loop):\n"
        r.lc_cycles r.lc_total;
      Printf.printf
        "  %d byte-correct, %d typed, %d corrupt, %d untyped; availability \
         %.2f%% (floor %.0f%%)\n"
        r.lc_ok_correct r.lc_typed r.lc_corrupt r.lc_untyped
        r.lc_availability_pct availability_floor_pct;
      Printf.printf
        "  journal: %d crashes, %d restarts; warm keys byte-identical after \
         loop: %b\n"
        r.lc_crashes_journaled r.lc_restarts_journaled r.lc_warm_identical;
      Printf.printf
        "  pinned key: cold %.1f ms, first post-restart warm hit %.2f ms \
         (%.0fx, floor %.0fx)\n"
        (r.lc_cold_s *. 1e3) (r.lc_warm_s *. 1e3) r.lc_warm_speedup
        warm_speedup_floor;
      Printf.printf "  drain: supervisor exit %d (want 143), socket gone %b, \
                     pid file gone %b\n"
        r.lc_drain_exit socket_gone pidf_gone;
      if r.lc_corrupt > 0 then
        failwith "E42: a corrupt response survived the crash loop";
      if r.lc_untyped > 0 then
        failwith "E42: a client saw a non-typed failure under the crash loop";
      if r.lc_availability_pct < availability_floor_pct then
        failwith "E42: availability under the crash loop below the 99% floor";
      if not r.lc_warm_identical then
        failwith "E42: a warmed key changed bytes across restarts";
      if r.lc_crashes_journaled < cycles then
        failwith "E42: the supervision journal missed crashes";
      if r.lc_warm_speedup < warm_speedup_floor then
        failwith "E42: post-restart warm hit under the 10x floor";
      if r.lc_drain_exit <> 143 then
        failwith "E42: supervisor did not exit 143 on SIGTERM";
      if not (socket_gone && pidf_gone) then
        failwith "E42: drain left the socket or pid file behind";
      r

let json_obj r =
  let open Json in
  Obj
    [ ("experiment", Str "E42 crash-only lifecycle: SIGKILL loop under load");
      ("cycles", Int r.lc_cycles);
      ("requests", Int r.lc_total);
      ("ok_correct", Int r.lc_ok_correct);
      ("typed", Int r.lc_typed);
      ("corrupt", Int r.lc_corrupt);
      ("untyped", Int r.lc_untyped);
      ("availability_pct", Float r.lc_availability_pct);
      ("availability_floor_pct", Float availability_floor_pct);
      ("crashes_journaled", Int r.lc_crashes_journaled);
      ("restarts_journaled", Int r.lc_restarts_journaled);
      ("warm_keys_byte_identical", Bool r.lc_warm_identical);
      ("cold_s", Float r.lc_cold_s);
      ("first_warm_hit_s", Float r.lc_warm_s);
      ("warm_speedup", Float r.lc_warm_speedup);
      ("warm_speedup_floor", Float warm_speedup_floor);
      ("drain_exit", Int r.lc_drain_exit) ]
