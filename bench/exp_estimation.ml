(* Experiments E10-E16 and E21: the modeling/estimation claims of
   Section II. *)

open Hlp_util

let fmt = Table.fmt_float

(* E10: instruction-level model + profile-driven program synthesis. *)
let e10_software () =
  (* Tiwari model: train on synthetic profile sweeps, test on applications *)
  let rng = Prng.create 51 in
  let training =
    List.init 24 (fun i ->
        let m = 0.1 +. Prng.float rng 0.3 in
        let mul = Prng.float rng 0.2 in
        let br = 0.05 +. Prng.float rng 0.15 in
        let profile =
          {
            Hlp_isa.Profile.mix =
              [ (Hlp_isa.Isa.Alu, max 0.0 (1.0 -. m -. mul -. br));
                (Hlp_isa.Isa.Mulc, mul); (Hlp_isa.Isa.Mem, m);
                (Hlp_isa.Isa.Branch, br); (Hlp_isa.Isa.Other, 0.0) ];
            icache_miss_rate = 0.01;
            dcache_miss_rate = Prng.float rng 0.8;
            branch_taken_rate = Prng.float rng 1.0;
            stall_rate = Prng.float rng 0.2;
            energy_per_cycle = 0.0;
            instructions = 0;
          }
        in
        Hlp_isa.Profile.synthesize ~seed:(1000 + i) profile)
  in
  (* leave-one-out over the applications: each program is predicted by a
     model characterized on the synthetic sweeps plus the other programs *)
  let apps = Hlp_isa.Programs.all () in
  let rows =
    List.map
      (fun (name, (prog, mem)) ->
        let others =
          List.filter_map (fun (n, p) -> if n = name then None else Some p) apps
        in
        let model = Hlp_isa.Tiwari.fit (training @ others) in
        let r = Hlp_isa.Machine.run ~mem_init:mem prog in
        let predicted = Hlp_isa.Tiwari.predict model r.Hlp_isa.Machine.counters in
        [ name;
          fmt r.Hlp_isa.Machine.energy;
          fmt predicted;
          Table.fmt_pct
            (Stats.relative_error ~actual:r.Hlp_isa.Machine.energy ~estimate:predicted) ])
      apps
  in
  Table.print
    ~title:"E10a: Tiwari instruction-level model (leave-one-out over applications)"
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right ]
    ~header:[ "program"; "measured energy"; "predicted"; "error" ]
    rows;
  (* profile-driven synthesis *)
  let rows2 =
    List.map
      (fun (name, (prog, mem)) ->
        let r = Hlp_isa.Machine.run ~mem_init:mem prog in
        let v = Hlp_isa.Profile.validate r () in
        [ name;
          string_of_int v.Hlp_isa.Profile.original.Hlp_isa.Profile.instructions;
          string_of_int v.Hlp_isa.Profile.synthetic.Hlp_isa.Profile.instructions;
          Printf.sprintf "%.0fx" v.Hlp_isa.Profile.trace_reduction;
          Table.fmt_pct v.Hlp_isa.Profile.energy_error ])
      [ ("matmul n=24", Hlp_isa.Programs.matmul ~n:24);
        ("fir 16x4096", Hlp_isa.Programs.fir ~taps:16 ~samples:4096);
        ("bubble sort n=384", Hlp_isa.Programs.bubble_sort ~n:384) ]
  in
  Table.print
    ~title:"E10b: profile-driven program synthesis (paper: 3-5 orders shorter, negligible error)"
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "trace"; "original instrs"; "synthetic instrs"; "reduction"; "power error" ]
    rows2

(* E11: entropy models vs measured average activity. *)
let e11_entropy () =
  let rng = Prng.create 61 in
  let rows =
    List.map
      (fun (label, net) ->
        let nin = Array.length net.Hlp_logic.Netlist.inputs in
        let trace = Hlp_sim.Streams.uniform rng ~width:nin ~n:2000 in
        let sim = Hlp_sim.Funcsim.create net in
        Hlp_sim.Funcsim.run sim
          (fun i -> Array.init nin (fun b -> Bits.bit trace.(i) b))
          2000;
        let actual = Hlp_sim.Funcsim.average_activity sim in
        let em =
          Hlp_power.Entropy.estimate_netlist ~model:Hlp_power.Entropy.Marculescu net
            ~input_trace:trace
        in
        let en =
          Hlp_power.Entropy.estimate_netlist ~model:Hlp_power.Entropy.Nemani_najm net
            ~input_trace:trace
        in
        [ label; fmt ~digits:3 actual;
          fmt ~digits:3 em.Hlp_power.Entropy.e_avg;
          fmt ~digits:3 en.Hlp_power.Entropy.e_avg ])
      [
        ("adder 8", Hlp_logic.Generators.adder_circuit 8);
        ("adder 16", Hlp_logic.Generators.adder_circuit 16);
        ("max 8", Hlp_logic.Generators.max_circuit 8);
        ("alu 6", Hlp_logic.Generators.alu_circuit 6);
        ("parity 12", Hlp_logic.Generators.parity_circuit 12);
        ("multiplier 6", Hlp_logic.Generators.multiplier_circuit 6);
      ]
  in
  Table.print
    ~title:"E11: entropy-based average activity (E <= h/2 bound; white-noise inputs)"
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right ]
    ~header:[ "circuit"; "measured E_avg"; "Marculescu h_avg/2"; "Nemani-Najm h_avg/2" ]
    rows

(* E12: total-capacitance models. *)
let e12_captot () =
  let family =
    [
      ("adder 4", Hlp_logic.Generators.adder_circuit 4);
      ("adder 8", Hlp_logic.Generators.adder_circuit 8);
      ("adder 12", Hlp_logic.Generators.adder_circuit 12);
      ("comparator 8", Hlp_logic.Generators.comparator_circuit 8);
      ("max 6", Hlp_logic.Generators.max_circuit 6);
      ("max 10", Hlp_logic.Generators.max_circuit 10);
      ("parity 10", Hlp_logic.Generators.parity_circuit 10);
      ("alu 4", Hlp_logic.Generators.alu_circuit 4);
    ]
  in
  let population = List.map (fun (_, n) -> (n, Hlp_logic.Netlist.total_capacitance n)) family in
  let fit = Hlp_power.Captot.fit_ferrandi population in
  let rows =
    List.map
      (fun (label, net) ->
        let open Hlp_logic in
        let n = Array.length net.Netlist.inputs in
        let m = Array.length net.Netlist.outputs in
        let h_out = Hlp_power.Captot.h_out_white_noise net in
        let nodes = Hlp_power.Captot.bdd_nodes_of_netlist net in
        let actual = Netlist.total_capacitance net in
        let cheng = Hlp_power.Captot.cheng_agrawal ~n ~m ~h_out in
        let ferr = Hlp_power.Captot.ferrandi_predict fit ~n ~m ~bdd_nodes:nodes ~h_out in
        [ label; fmt actual; fmt cheng; fmt ferr ])
      family
  in
  Table.print
    ~title:"E12: C_tot models (paper: Cheng-Agrawal 'too pessimistic when n is large')"
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right ]
    ~header:[ "circuit"; "actual C_tot"; "Cheng-Agrawal"; "Ferrandi (BDD regression)" ]
    rows

(* E13: Tyagi entropic lower bound. *)
let e13_tyagi () =
  let rows =
    List.map
      (fun stg ->
        let dist = Hlp_fsm.Markov.analyze stg in
        let r = Hlp_fsm.Tyagi.report stg dist in
        let nat = Hlp_fsm.Encode.natural stg in
        let actual =
          Hlp_fsm.Markov.expected_hamming stg dist ~code:(fun s ->
              nat.Hlp_fsm.Encode.code.(s))
        in
        [ stg.Hlp_fsm.Stg.name;
          string_of_int r.Hlp_fsm.Tyagi.states;
          string_of_int r.Hlp_fsm.Tyagi.transitions;
          (if r.Hlp_fsm.Tyagi.sparse then "yes" else "no");
          fmt r.Hlp_fsm.Tyagi.entropy;
          fmt r.Hlp_fsm.Tyagi.lower_bound;
          fmt actual ])
      (Hlp_fsm.Stg.zoo_extended ())
  in
  Table.print ~title:"E13: Tyagi entropic lower bound on state-register switching"
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "machine"; "T"; "t"; "sparse"; "h(p_ij)"; "lower bound"; "actual (natural enc)" ]
    rows

(* E14: complexity-based models. *)
let e14_complexity () =
  (* area regression *)
  let rng = Prng.create 71 in
  let nvars = 6 in
  let population =
    List.filter_map
      (fun i ->
        let density = 0.1 +. (0.03 *. float_of_int i) in
        let on_set =
          List.filter (fun _ -> Prng.bernoulli rng density)
            (List.init (1 lsl nvars) (fun m -> m))
        in
        if on_set = [] then None
        else Some (on_set, Hlp_power.Complexity.actual_area ~nvars ~on_set))
      (List.init 25 (fun i -> i))
  in
  let reg = Hlp_power.Complexity.fit_area_regression ~nvars population in
  Printf.printf
    "== E14a: Nemani-Najm area regression ==\n\
     %d random 6-input functions: area ~ %.1f * C(f) + %.1f, r^2 = %.2f\n\n"
    (List.length population) reg.Stats.slope reg.Stats.intercept reg.Stats.r2;
  (* controller model *)
  let samples = List.map Hlp_power.Complexity.controller_sample (Hlp_fsm.Stg.zoo_extended ()) in
  let cfit = Hlp_power.Complexity.fit_controller samples in
  let rows =
    List.map2
      (fun stg s ->
        [ stg.Hlp_fsm.Stg.name;
          string_of_int s.Hlp_power.Complexity.n_i;
          string_of_int s.Hlp_power.Complexity.n_o;
          string_of_int s.Hlp_power.Complexity.n_m;
          fmt s.Hlp_power.Complexity.cap_per_cycle;
          fmt (Hlp_power.Complexity.controller_predict cfit s) ])
      (Hlp_fsm.Stg.zoo_extended ()) samples
  in
  Table.print
    ~title:
      (Printf.sprintf
         "E14b: Landman-Rabaey controller model (C_I=%.3f, C_O=%.3f, r^2=%.2f)"
         cfit.Hlp_power.Complexity.c_i cfit.Hlp_power.Complexity.c_o
         cfit.Hlp_power.Complexity.r2)
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "machine"; "N_I"; "N_O"; "N_M"; "measured cap"; "model" ]
    rows;
  (* CES sanity *)
  let nets =
    [ ("adder 8", Hlp_logic.Generators.adder_circuit 8);
      ("multiplier 8", Hlp_logic.Generators.multiplier_circuit 8) ]
  in
  let rows =
    List.map
      (fun (label, net) ->
        let est =
          Hlp_power.Complexity.ces_switched_capacitance_estimate
            Hlp_power.Complexity.ces_default net
        in
        let rng = Prng.create 3 in
        let sim = Hlp_sim.Funcsim.create net in
        let nin = Array.length net.Hlp_logic.Netlist.inputs in
        Hlp_sim.Funcsim.run sim (fun _ -> Array.init nin (fun _ -> Prng.bool rng)) 500;
        let actual = Hlp_sim.Funcsim.switched_capacitance sim /. 500.0 in
        [ label; fmt actual; fmt est ])
      nets
  in
  Table.print ~title:"E14c: Chip Estimation System (gate-equivalent) estimate"
    ~align:[ Table.Left; Table.Right; Table.Right ]
    ~header:[ "module"; "simulated cap/cycle"; "CES estimate" ]
    rows

(* E15: the macro-model accuracy ladder. *)
let e15_macromodel () =
  let duts =
    [ ("adder 8", { Hlp_power.Macromodel.net = Hlp_logic.Generators.adder_circuit 8; widths = [ 8; 8 ] });
      ("multiplier 8", { Hlp_power.Macromodel.net = Hlp_logic.Generators.multiplier_circuit 8; widths = [ 8; 8 ] }) ]
  in
  List.iter
    (fun (label, dut) ->
      let training =
        List.map (Hlp_power.Macromodel.observe dut)
          (Hlp_power.Macromodel.training_streams dut)
      in
      let rng = Prng.create 999 in
      let mk s = s () in
      let test_obs =
        List.map
          (fun s -> Hlp_power.Macromodel.observe dut (mk s))
          [
            (fun () ->
              [ Hlp_sim.Streams.gaussian_walk rng ~width:8 ~sigma:5.0 ~n:400;
                Hlp_sim.Streams.gaussian_walk rng ~width:8 ~sigma:60.0 ~n:400 ]);
            (fun () ->
              [ Hlp_sim.Streams.correlated_bits rng ~width:8 ~p:0.4 ~rho:0.7 ~n:400;
                Hlp_sim.Streams.biased_bits rng ~width:8 ~p:0.6 ~n:400 ]);
            (fun () ->
              [ Hlp_sim.Streams.biased_bits rng ~width:8 ~p:0.25 ~n:400;
                Hlp_sim.Streams.correlated_bits rng ~width:8 ~p:0.5 ~rho:0.4 ~n:400 ]);
          ]
      in
      let table = Hlp_power.Macromodel.fit_table training in
      let rows =
        List.map
          (fun kind ->
            let m = Hlp_power.Macromodel.fit kind dut training in
            [ Hlp_power.Macromodel.kind_name kind;
              Table.fmt_pct
                (Hlp_power.Macromodel.evaluate
                   ~predict:(Hlp_power.Macromodel.predict m) training);
              Table.fmt_pct
                (Hlp_power.Macromodel.evaluate
                   ~predict:(Hlp_power.Macromodel.predict m) test_obs) ])
          [ Hlp_power.Macromodel.Pfa; Hlp_power.Macromodel.Dual_bit;
            Hlp_power.Macromodel.Bitwise; Hlp_power.Macromodel.Input_output ]
        @ [ [ "3d table (Gupta-Najm)";
              Table.fmt_pct
                (Hlp_power.Macromodel.evaluate
                   ~predict:(Hlp_power.Macromodel.predict_table table) training);
              Table.fmt_pct
                (Hlp_power.Macromodel.evaluate
                   ~predict:(Hlp_power.Macromodel.predict_table table) test_obs) ] ]
      in
      Table.print
        ~title:(Printf.sprintf "E15: macro-model ladder on %s (paper: 5-10%% typical)" label)
        ~align:[ Table.Left; Table.Right; Table.Right ]
        ~header:[ "macro-model"; "training error"; "unseen-stream error" ]
        rows)
    duts

(* E16: census vs sampler vs adaptive. *)
let e16_sampling () =
  let dut =
    { Hlp_power.Macromodel.net = Hlp_logic.Generators.multiplier_circuit 8; widths = [ 8; 8 ] }
  in
  let rng = Prng.create 55 in
  let n = 10_000 in
  (* macro-model trained on white noise only (the biased-training setup) *)
  let training =
    [ [ Hlp_sim.Streams.uniform rng ~width:8 ~n:400;
        Hlp_sim.Streams.uniform rng ~width:8 ~n:400 ] ]
  in
  let obs = List.map (Hlp_power.Macromodel.observe dut) training in
  let model = Hlp_power.Macromodel.fit Hlp_power.Macromodel.Bitwise dut obs in
  let scenario label traces =
    (* the bit-parallel engine replays the 10^4-cycle trace 63 cycles per
       word step; estimator results are unchanged (E33 checks this) *)
    let t =
      Hlp_power.Sampling.prepare ~engine:Hlp_sim.Engine.Bitparallel model dut traces
    in
    let actual = Hlp_power.Sampling.gate_reference t in
    let census = Hlp_power.Sampling.census t in
    let sampler = Hlp_power.Sampling.sampler ~seed:77 t in
    let adaptive = Hlp_power.Sampling.adaptive ~seed:99 t in
    Printf.printf "-- %s (gate-level reference %.1f cap/cycle)\n" label actual;
    let row name (e : Hlp_power.Sampling.estimate) =
      [ name; fmt e.Hlp_power.Sampling.value;
        Table.fmt_pct (Stats.relative_error ~actual ~estimate:e.Hlp_power.Sampling.value);
        string_of_int e.Hlp_power.Sampling.macro_evaluations;
        string_of_int e.Hlp_power.Sampling.gate_cycles ]
    in
    Table.print ~title:(label ^ ": estimators")
      ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      ~header:[ "estimator"; "estimate"; "error vs gate"; "macro evals"; "gate cycles" ]
      [ row "census" census; row "sampler" sampler; row "adaptive" adaptive ];
    Printf.printf "sampler efficiency vs census: %.0fx fewer evaluations\n\n"
      (float_of_int census.Hlp_power.Sampling.macro_evaluations
      /. float_of_int sampler.Hlp_power.Sampling.macro_evaluations)
  in
  scenario "E16a: in-distribution stream (white noise)"
    [ Hlp_sim.Streams.uniform rng ~width:8 ~n;
      Hlp_sim.Streams.uniform rng ~width:8 ~n ];
  scenario "E16b: out-of-distribution stream (correlated walk; census is biased)"
    [ Hlp_sim.Streams.gaussian_walk rng ~width:8 ~sigma:2.0 ~n;
      Hlp_sim.Streams.gaussian_walk rng ~width:8 ~sigma:2.0 ~n ]

(* E21: Liu-Svensson memory model. *)
let e21_memory_model () =
  let n = 14 in
  let rows =
    List.map
      (fun k ->
        let s = Hlp_power.Memory_model.default_sram ~n ~k in
        [ Printf.sprintf "%d x %d" (1 lsl (n - k)) (1 lsl k);
          fmt (Hlp_power.Memory_model.cell_array_energy s);
          fmt (Hlp_power.Memory_model.row_decoder_energy s);
          fmt (Hlp_power.Memory_model.word_line_energy s);
          fmt (Hlp_power.Memory_model.column_select_energy s);
          fmt (Hlp_power.Memory_model.sense_amp_energy s);
          fmt (Hlp_power.Memory_model.read_energy s) ])
      [ 2; 4; 6; 7; 8; 10; 12 ]
  in
  Table.print
    ~title:
      (Printf.sprintf
         "E21: Liu-Svensson SRAM read energy, 16K words (optimal organization: 2^%d columns)"
         (Hlp_power.Memory_model.optimal_k ~n))
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "rows x cols"; "cells"; "row dec"; "word line"; "col sel"; "sense"; "total" ]
    rows

(* E28: cycle-accurate macro-models (Qiu et al. vs Mehta clustering). *)
let e28_cycle_models () =
  let rows =
    List.concat_map
      (fun (label, dut) ->
        let rng = Prng.create 42 in
        let widths = dut.Hlp_power.Macromodel.widths in
        let mk n =
          List.map
            (fun w -> Hlp_sim.Streams.gaussian_walk rng ~width:w ~sigma:15.0 ~n)
            widths
        in
        let train = Hlp_power.Cyclemodel.collect dut (mk 2000) in
        let test = Hlp_power.Cyclemodel.collect dut (mk 1500) in
        let qiu = Hlp_power.Cyclemodel.fit_qiu train in
        let clus = Hlp_power.Cyclemodel.fit_clusters train in
        let acc pred =
          Hlp_power.Cyclemodel.accuracy ~predicted:pred
            ~actual:(Hlp_power.Cyclemodel.reference test)
        in
        let aq = acc (Hlp_power.Cyclemodel.predict_qiu qiu test) in
        let ac = acc (Hlp_power.Cyclemodel.predict_clusters clus test) in
        [
          [ label ^ " / Qiu regression";
            string_of_int (Hlp_power.Cyclemodel.qiu_variables qiu);
            Table.fmt_pct aq.Hlp_power.Cyclemodel.average_error;
            Table.fmt_pct aq.Hlp_power.Cyclemodel.cycle_error ];
          [ label ^ " / Mehta clustering"; "64 clusters";
            Table.fmt_pct ac.Hlp_power.Cyclemodel.average_error;
            Table.fmt_pct ac.Hlp_power.Cyclemodel.cycle_error ];
        ])
      [
        ("adder 8",
         { Hlp_power.Macromodel.net = Hlp_logic.Generators.adder_circuit 8; widths = [ 8; 8 ] });
        ("multiplier 6",
         { Hlp_power.Macromodel.net = Hlp_logic.Generators.multiplier_circuit 6; widths = [ 6; 6 ] });
      ]
  in
  Table.print
    ~title:
      "E28: cycle-accurate macro-models (paper: ~8 variables, 5-10% average, 10-20% cycle error)"
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right ]
    ~header:[ "module / model"; "variables"; "avg error"; "cycle error" ]
    rows

(* E30: probabilistic estimation and Monte Carlo stopping for random logic
   (the RT-level flow's step 4). *)
let e30_probabilistic () =
  let rows =
    List.map
      (fun (label, net) ->
        let stats = Hlp_power.Probprop.propagate net in
        let prop = Hlp_power.Probprop.estimate_capacitance net stats in
        let mc = Hlp_power.Probprop.monte_carlo ~relative_precision:0.03 net in
        let sim = Hlp_sim.Funcsim.create net in
        let rng = Prng.create 9 in
        let nin = Array.length net.Hlp_logic.Netlist.inputs in
        Hlp_sim.Funcsim.run sim (fun _ -> Array.init nin (fun _ -> Prng.bool rng)) 20_000;
        let reference = Hlp_sim.Funcsim.switched_capacitance sim /. 20_000.0 in
        [ label; fmt reference; fmt prop;
          Table.fmt_pct (Stats.relative_error ~actual:reference ~estimate:prop);
          fmt mc.Hlp_power.Probprop.estimate;
          string_of_int mc.Hlp_power.Probprop.cycles_used ])
      [
        ("adder 8", Hlp_logic.Generators.adder_circuit 8);
        ("multiplier 6", Hlp_logic.Generators.multiplier_circuit 6);
        ("alu 6", Hlp_logic.Generators.alu_circuit 6);
        ("random logic 8x4x120",
         Hlp_logic.Generators.random_logic (Prng.create 77) ~inputs:8 ~outputs:4 ~gates:120);
      ]
  in
  Table.print
    ~title:
      "E30: random-logic estimation — propagation (no simulation) vs Monte Carlo stopping (Burch) vs 20k-cycle reference"
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "circuit"; "reference cap"; "propagated"; "prop error"; "monte carlo"; "MC cycles" ]
    rows

(* E32: the Fig. 1 design-improvement loop — one-pass level-by-level
   estimate of a mixed design vs full gate-level simulation. *)
let e32_flow () =
  let rng = Prng.create 12 in
  let components =
    [
      Hlp_power.Flow.Datapath
        {
          name = "mac multiplier";
          dut =
            { Hlp_power.Macromodel.net = Hlp_logic.Generators.multiplier_circuit 8;
              widths = [ 8; 8 ] };
          traces =
            [ Hlp_sim.Streams.gaussian_walk rng ~width:8 ~sigma:20.0 ~n:2000;
              Hlp_sim.Streams.uniform rng ~width:8 ~n:2000 ];
        };
      Hlp_power.Flow.Datapath
        {
          name = "accumulator";
          dut =
            { Hlp_power.Macromodel.net = Hlp_logic.Generators.adder_circuit 12;
              widths = [ 12; 12 ] };
          traces =
            [ Hlp_sim.Streams.gaussian_walk rng ~width:12 ~sigma:60.0 ~n:2000;
              Hlp_sim.Streams.correlated_bits rng ~width:12 ~p:0.5 ~rho:0.5 ~n:2000 ];
        };
      Hlp_power.Flow.Controller { name = "sequencer"; stg = Hlp_fsm.Stg.memory_controller () };
      Hlp_power.Flow.Glue
        { name = "steering glue";
          net = Hlp_logic.Generators.random_logic (Prng.create 31) ~inputs:8 ~outputs:4 ~gates:90 };
    ]
  in
  let report = Hlp_power.Flow.estimate components in
  print_endline "== E32: Fig. 1 design-improvement loop (level-by-level estimate vs gate level) ==";
  Format.printf "%a@." Hlp_power.Flow.pp_report report;
  Printf.printf
    "the level-by-level feedback the paper's flow depends on: each component\n\
     is priced by its own model class without a full-chip gate-level run.\n\n"

let all () =
  e10_software ();
  e11_entropy ();
  e12_captot ();
  e13_tyagi ();
  e14_complexity ();
  e15_macromodel ();
  e16_sampling ();
  e21_memory_model ();
  e28_cycle_models ();
  e30_probabilistic ();
  e32_flow ()
