/* Lane-major charge accumulation for the compiled replay kernel.

   [Kernel.accumulate_lanes ls deltas caps n] folds node [k]'s capacitance
   [caps[k]] into every lane accumulator [ls[l]] whose bit is set in the
   delta word [deltas[k]], for k = 0 .. n-1 in order. The contract that
   makes this a C primitive worth having (see kernel.ml): each lane's
   accumulator is a chronologically ordered IEEE-754 double sum, so the
   adds cannot be reassociated — but the 63 lanes are independent chains
   that can run interleaved, with the accumulators held in registers for
   the whole sweep. OCaml (without flambda) spills float loop carries to
   memory, which makes the scatter walk and this loop equally
   memory-bound; in C the sweep is float-throughput-bound instead.

   Bit-identity with Bitsim.scan_lanes (the differential wall in
   test/test_kernel.ml asserts it): when bit l of the delta is set the
   term added is exactly [caps[k]] (a bitwise AND with an all-ones mask,
   or [c * 1.0] in the scalar path — exact); when clear the term is +0.0,
   and [x + +0.0] is bit-exact for every x these accumulators can hold
   (the caller proves the caps finite and non-negative at compile time,
   so no lane sum is ever -0.0, an infinity, or a NaN). No fused
   multiply-add, no reassociation: plain adds in program order per lane,
   which is the same per-lane order the scatter walk produces because the
   node order is the same for every lane.

   The AVX2 path is runtime-dispatched (__builtin_cpu_supports), so the
   library builds and runs on any x86-64 without special flags; other
   architectures and non-GNU compilers take the portable scalar path.
   Packed vaddpd is per-lane IEEE double addition, so the SIMD path
   computes the same bits as the scalar one. */

#include <caml/mlvalues.h>
#include <stdint.h>
#include <string.h>

#define LANES 63 /* Bitsim.lanes: one OCaml int of payload per node */

/* c when bit = 1, +0.0 when bit = 0: mask the payload bits, no branch,
   no int-to-float conversion, no multiply */
static inline double mask_sel(double c, long bit)
{
  uint64_t cb;
  memcpy(&cb, &c, 8);
  cb &= (uint64_t)(-bit);
  double r;
  memcpy(&r, &cb, 8);
  return r;
}

static void scalar_accumulate(double *ls, value *deltas, double *caps, long n)
{
  long t = 0;
  while (t < LANES) {
    if (t + 8 <= LANES) {
      double a0 = ls[t], a1 = ls[t + 1], a2 = ls[t + 2], a3 = ls[t + 3];
      double a4 = ls[t + 4], a5 = ls[t + 5], a6 = ls[t + 6], a7 = ls[t + 7];
      for (long k = 0; k < n; k++) {
        long d = Long_val(deltas[k]);
        double c = caps[k];
        a0 += mask_sel(c, (d >> t) & 1);
        a1 += mask_sel(c, (d >> (t + 1)) & 1);
        a2 += mask_sel(c, (d >> (t + 2)) & 1);
        a3 += mask_sel(c, (d >> (t + 3)) & 1);
        a4 += mask_sel(c, (d >> (t + 4)) & 1);
        a5 += mask_sel(c, (d >> (t + 5)) & 1);
        a6 += mask_sel(c, (d >> (t + 6)) & 1);
        a7 += mask_sel(c, (d >> (t + 7)) & 1);
      }
      ls[t] = a0;
      ls[t + 1] = a1;
      ls[t + 2] = a2;
      ls[t + 3] = a3;
      ls[t + 4] = a4;
      ls[t + 5] = a5;
      ls[t + 6] = a6;
      ls[t + 7] = a7;
      t += 8;
    } else {
      /* the last 7 lanes, one interleaved chain each */
      double a0 = ls[t], a1 = ls[t + 1], a2 = ls[t + 2], a3 = ls[t + 3];
      double a4 = ls[t + 4], a5 = ls[t + 5], a6 = ls[t + 6];
      for (long k = 0; k < n; k++) {
        long d = Long_val(deltas[k]);
        double c = caps[k];
        a0 += mask_sel(c, (d >> t) & 1);
        a1 += mask_sel(c, (d >> (t + 1)) & 1);
        a2 += mask_sel(c, (d >> (t + 2)) & 1);
        a3 += mask_sel(c, (d >> (t + 3)) & 1);
        a4 += mask_sel(c, (d >> (t + 4)) & 1);
        a5 += mask_sel(c, (d >> (t + 5)) & 1);
        a6 += mask_sel(c, (d >> (t + 6)) & 1);
      }
      ls[t] = a0;
      ls[t + 1] = a1;
      ls[t + 2] = a2;
      ls[t + 3] = a3;
      ls[t + 4] = a4;
      ls[t + 5] = a5;
      ls[t + 6] = a6;
      t += 7;
    }
  }
}

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>

/* 63 lanes = three 16-lane sweeps + one 12-lane sweep + 3 scalar lanes.
   Per node and ymm group: broadcast the delta word, AND with the group's
   bit masks, compare-equal to build an all-ones/zero lane mask, AND with
   the broadcast capacitance, packed add. Four accumulator registers per
   sweep hide the 4-cycle add latency. */
__attribute__((target("avx2"))) static void
avx2_accumulate(double *ls, value *deltas, double *caps, long n)
{
  for (long t = 0; t + 16 <= LANES; t += 16) {
    __m256d a0 = _mm256_loadu_pd(ls + t);
    __m256d a1 = _mm256_loadu_pd(ls + t + 4);
    __m256d a2 = _mm256_loadu_pd(ls + t + 8);
    __m256d a3 = _mm256_loadu_pd(ls + t + 12);
    __m256i b0 = _mm256_set_epi64x(1L << (t + 3), 1L << (t + 2),
                                   1L << (t + 1), 1L << t);
    __m256i b1 = _mm256_slli_epi64(b0, 4);
    __m256i b2 = _mm256_slli_epi64(b0, 8);
    __m256i b3 = _mm256_slli_epi64(b0, 12);
    for (long k = 0; k < n; k++) {
      __m256i d = _mm256_set1_epi64x(Long_val(deltas[k]));
      __m256d c = _mm256_broadcast_sd(caps + k);
      __m256d m0 = _mm256_castsi256_pd(
          _mm256_cmpeq_epi64(_mm256_and_si256(d, b0), b0));
      __m256d m1 = _mm256_castsi256_pd(
          _mm256_cmpeq_epi64(_mm256_and_si256(d, b1), b1));
      __m256d m2 = _mm256_castsi256_pd(
          _mm256_cmpeq_epi64(_mm256_and_si256(d, b2), b2));
      __m256d m3 = _mm256_castsi256_pd(
          _mm256_cmpeq_epi64(_mm256_and_si256(d, b3), b3));
      a0 = _mm256_add_pd(a0, _mm256_and_pd(m0, c));
      a1 = _mm256_add_pd(a1, _mm256_and_pd(m1, c));
      a2 = _mm256_add_pd(a2, _mm256_and_pd(m2, c));
      a3 = _mm256_add_pd(a3, _mm256_and_pd(m3, c));
    }
    _mm256_storeu_pd(ls + t, a0);
    _mm256_storeu_pd(ls + t + 4, a1);
    _mm256_storeu_pd(ls + t + 8, a2);
    _mm256_storeu_pd(ls + t + 12, a3);
  }
  {
    const long t = 48;
    __m256d a0 = _mm256_loadu_pd(ls + t);
    __m256d a1 = _mm256_loadu_pd(ls + t + 4);
    __m256d a2 = _mm256_loadu_pd(ls + t + 8);
    __m256i b0 = _mm256_set_epi64x(1L << (t + 3), 1L << (t + 2),
                                   1L << (t + 1), 1L << t);
    __m256i b1 = _mm256_slli_epi64(b0, 4);
    __m256i b2 = _mm256_slli_epi64(b0, 8);
    for (long k = 0; k < n; k++) {
      __m256i d = _mm256_set1_epi64x(Long_val(deltas[k]));
      __m256d c = _mm256_broadcast_sd(caps + k);
      __m256d m0 = _mm256_castsi256_pd(
          _mm256_cmpeq_epi64(_mm256_and_si256(d, b0), b0));
      __m256d m1 = _mm256_castsi256_pd(
          _mm256_cmpeq_epi64(_mm256_and_si256(d, b1), b1));
      __m256d m2 = _mm256_castsi256_pd(
          _mm256_cmpeq_epi64(_mm256_and_si256(d, b2), b2));
      a0 = _mm256_add_pd(a0, _mm256_and_pd(m0, c));
      a1 = _mm256_add_pd(a1, _mm256_and_pd(m1, c));
      a2 = _mm256_add_pd(a2, _mm256_and_pd(m2, c));
    }
    _mm256_storeu_pd(ls + t, a0);
    _mm256_storeu_pd(ls + t + 4, a1);
    _mm256_storeu_pd(ls + t + 8, a2);
  }
  {
    double a0 = ls[60], a1 = ls[61], a2 = ls[62];
    for (long k = 0; k < n; k++) {
      long d = Long_val(deltas[k]);
      double c = caps[k];
      a0 += mask_sel(c, (d >> 60) & 1);
      a1 += mask_sel(c, (d >> 61) & 1);
      a2 += mask_sel(c, (d >> 62) & 1);
    }
    ls[60] = a0;
    ls[61] = a1;
    ls[62] = a2;
  }
}

CAMLprim value hlp_kernel_accumulate_lanes(value vls, value vdeltas,
                                           value vcaps, value vn)
{
  static int have_avx2 = -1;
  if (have_avx2 < 0) have_avx2 = __builtin_cpu_supports("avx2");
  if (have_avx2)
    avx2_accumulate((double *)vls, Op_val(vdeltas), (double *)vcaps,
                    Long_val(vn));
  else
    scalar_accumulate((double *)vls, Op_val(vdeltas), (double *)vcaps,
                      Long_val(vn));
  return Val_unit;
}
#else
CAMLprim value hlp_kernel_accumulate_lanes(value vls, value vdeltas,
                                           value vcaps, value vn)
{
  scalar_accumulate((double *)vls, Op_val(vdeltas), (double *)vcaps,
                    Long_val(vn));
  return Val_unit;
}
#endif
