(** Simulation-engine selector shared by every Monte Carlo / cosimulation
    consumer in the toolkit.

    - [Scalar]: one {!Funcsim} step per cycle per vector — the reference
      engine, bit-exact with the seed implementation.
    - [Bitparallel]: {!Bitsim} packs 63 independent vectors into one OCaml
      [int] per wire and evaluates each gate with single word-wide bitwise
      operations; toggle accounting is exact (popcount of [old lxor new]).
    - [Parallel]: the bit-parallel engine sharded over OCaml 5 domains by
      {!Parsim}, with per-shard PRNG streams and a deterministic reduction
      order, so results are bit-identical regardless of the worker count.
    - [Compiled]: the netlist is first compiled by {!Kernel} into a flat
      struct-of-arrays schedule (contiguous opcode / fanin-index /
      capacitance arrays, topologically levelized, specialized per-level
      closures, no per-gate dispatch or allocation) and replayed through
      that kernel — bit-identical to [Bitparallel] on every counter and
      float, several times faster, with the compile amortized across
      replays by a fingerprint-keyed cache.

    Rule of thumb: [Scalar] for debugging and tiny runs; [Bitparallel] for
    long single-stream cosimulation (it wins as soon as a few hundred cycles
    are simulated); [Parallel] for Monte Carlo style workloads with many
    independent vectors on multicore hosts; [Compiled] whenever the same
    netlist is replayed more than a handful of times — the estimation
    service, batch campaigns, and recipe search all live in that regime. *)

type t = Scalar | Bitparallel | Parallel | Compiled

val all : t list

val to_string : t -> string

val of_string : string -> t option
(** Accepts ["scalar"], ["bitparallel"] (or ["bitpar"]), ["parallel"] (or
    ["par"]), ["compiled"] (or ["kernel"]). *)
