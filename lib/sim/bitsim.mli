(** Bit-parallel zero-delay simulation: 63 independent vectors per step.

    Every wire holds one OCaml [int] whose bit [j] is the wire's boolean
    value in {e lane} [j] — 63 independent copies of the circuit simulated
    at once. Each gate evaluation is a single word-wide bitwise operation
    (AND/OR/XOR/NOT over whole words), so one [step] advances all 63 lanes
    by one clock cycle for the cost of roughly one scalar {!Funcsim} step.

    Accounting is exact, not approximate: a node's toggle count increases by
    [popcount (old lxor new)], and cycles-high by [popcount value], so after
    identical stimuli the per-node toggle and high counters equal the
    element-wise sum over 63 independent {!Funcsim} runs — the differential
    property enforced by [test/test_bitsim.ml]. Switched capacitance is
    derived from the integer toggle counts
    ([sum_i cap(i) * toggles(i)]), making it independent of evaluation
    order.

    Lanes share nothing except the netlist: flip-flop state, input vectors,
    and toggle history are all per-lane. Sequential circuits work (all lanes
    start from the same reset state); serial single-stream traces of
    {e combinational} circuits can also be replayed bit-parallel by chunking
    — see {!Parsim.replay}. *)

type s

val lanes : int
(** Number of independent vectors per word: 63 (OCaml [int] width). *)

val create : ?caps:float array -> ?track_lanes:bool -> Hlp_logic.Netlist.t -> s
(** [track_lanes] (default [false]) additionally maintains a per-lane
    switched-capacitance accumulator ({!lane_switched_capacitance}), needed
    when per-lane resolution matters (trace replay); it costs one pass over
    the toggling bits of each changed word.

    [caps] supplies a precomputed {!Hlp_logic.Netlist.node_capacitance}
    array, letting callers that create many short-lived simulators of the
    same netlist (chunked trace replay, Monte Carlo batches) share the
    read-only capacitance table instead of recomputing it per instance. *)

val step : s -> int array -> unit
(** Apply one input word per primary input (parallel to [net.inputs]); bit
    [j] of word [k] is input [k]'s value in lane [j]. *)

val run : s -> (int -> int array) -> int -> unit
(** [run s input_at n] steps [n] times with the given word source. *)

val value : s -> Hlp_logic.Netlist.wire -> int
(** Current settled 63-lane word of a node. *)

val output_words : s -> int array
(** Per-lane outputs: element [j] packs the settled primary outputs of lane
    [j] with output index [k] at bit [k] (requires at most 62 outputs). *)

val pack_lanes : bool array array -> int array
(** [pack_lanes vectors] transposes up to 63 scalar input vectors (element
    [j] becomes lane [j]) into the word-per-input form {!step} consumes. *)

val cycles : s -> int
(** Number of steps taken (each step is one cycle in all 63 lanes). *)

val toggle_counts : s -> int array
(** Per-node toggles summed over all lanes since creation. *)

val high_counts : s -> int array
(** Per-node lane-cycles settled high (sum over lanes of cycles high). *)

val switched_capacitance : s -> float
(** Total capacitance switched over all lanes, computed as
    [sum_i cap(i) * toggles(i)] from the exact integer toggle counts. *)

val lane_switched_capacitance : s -> float array
(** Per-lane switched capacitance (length {!lanes}). Raises [Invalid_argument]
    unless the simulator was created with [~track_lanes:true]. *)

val set_counting : s -> bool -> unit
(** Pause/resume all accounting (toggles, highs, lane capacitance) without
    touching circuit state — used for warm-up steps during trace replay. *)

val reset_counters : s -> unit
(** Zero the accounting without touching circuit state. *)

val scan_lanes : float array -> float -> int -> unit
(** [scan_lanes acc cap delta] adds [cap] to [acc.(j)] for every set bit
    [j] of [delta] — the per-lane capacitance accounting primitive (a
    256-entry byte table keeps it cheap). Within one node each lane
    receives at most one addition, so any visit order gives bit-identical
    per-lane sums; shared with {!Kernel} so both engines charge lanes
    through literally the same code. *)
