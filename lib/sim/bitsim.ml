open Hlp_logic

let lanes = 63

(* all 63 value bits of an OCaml int set: the "every lane true" word *)
let all_ones = -1

type s = {
  net : Netlist.t;
  caps : float array;
  values : int array;
  toggles : int array;
  highs : int array;
  lane_switched : float array;  (* length [lanes]; maintained iff track_lanes *)
  track_lanes : bool;
  ncomb : int;  (* word-wide node evaluations per settle, for telemetry *)
  mutable pops : int;  (* popcount calls since the last telemetry flush *)
  mutable ncycles : int;
  mutable counting : bool;
  mutable first : bool;  (* reset state must survive until the first input *)
}

let tel_steps = Hlp_util.Telemetry.counter "bitsim.steps"
let tel_lane_cycles = Hlp_util.Telemetry.counter "bitsim.lane_cycles"
let tel_evals = Hlp_util.Telemetry.counter "bitsim.word_evals"
let tel_popcounts = Hlp_util.Telemetry.counter "bitsim.popcount_ops"

let broadcast b = if b then all_ones else 0

(* fanin indices are validated once by the netlist builder, so the hot
   evaluation path reads pins unchecked *)
let eval_node values (node : Netlist.node) =
  let f = node.Netlist.fanin in
  let pin k = Array.unsafe_get values (Array.unsafe_get f k) in
  match node.Netlist.kind with
  | Gate.Input | Gate.Dff -> invalid_arg "Bitsim.eval_node: not combinational"
  | Gate.Const b -> broadcast b
  | Gate.Buf -> pin 0
  | Gate.Not -> lnot (pin 0)
  | Gate.And _ ->
      let acc = ref (pin 0) in
      for k = 1 to Array.length f - 1 do
        acc := !acc land pin k
      done;
      !acc
  | Gate.Or _ ->
      let acc = ref (pin 0) in
      for k = 1 to Array.length f - 1 do
        acc := !acc lor pin k
      done;
      !acc
  | Gate.Nand _ ->
      let acc = ref (pin 0) in
      for k = 1 to Array.length f - 1 do
        acc := !acc land pin k
      done;
      lnot !acc
  | Gate.Nor _ ->
      let acc = ref (pin 0) in
      for k = 1 to Array.length f - 1 do
        acc := !acc lor pin k
      done;
      lnot !acc
  | Gate.Xor -> pin 0 lxor pin 1
  | Gate.Xnor -> lnot (pin 0 lxor pin 1)
  | Gate.Mux ->
      let sel = pin 0 in
      (lnot sel land pin 1) lor (sel land pin 2)

let create ?caps ?(track_lanes = false) net =
  let n = Netlist.num_nodes net in
  let s =
    {
      net;
      caps =
        (match caps with
        | Some c ->
            if Array.length c <> n then invalid_arg "Bitsim.create: caps length";
            c
        | None -> Netlist.node_capacitance net);
      values = Array.make n 0;
      toggles = Array.make n 0;
      highs = Array.make n 0;
      lane_switched = Array.make lanes 0.0;
      track_lanes;
      ncomb =
        Array.fold_left
          (fun acc (node : Netlist.node) ->
            match node.Netlist.kind with
            | Gate.Input | Gate.Dff -> acc
            | _ -> acc + 1)
          0 net.Netlist.nodes;
      pops = 0;
      ncycles = 0;
      counting = true;
      first = true;
    }
  in
  (* initial state, every lane identical: dffs at their init value, inputs
     low, combinational logic settled; nothing is charged for power-up *)
  Array.iteri
    (fun j w -> s.values.(w) <- broadcast net.Netlist.dff_init.(j))
    net.Netlist.dffs;
  Array.iteri
    (fun i (node : Netlist.node) ->
      match node.Netlist.kind with
      | Gate.Input | Gate.Dff -> ()
      | _ -> s.values.(i) <- eval_node s.values node)
    net.Netlist.nodes;
  s

(* Per-lane capacitance scan: positions of the set bits of each byte, so a
   63-bit delta word costs 8 byte probes plus one float add per actually
   toggled lane (the 256-entry table stays L1-resident). Within a node the
   lane visit order is irrelevant — each lane receives at most one addition
   per node — so per-lane sums stay bit-identical to a chronological scalar
   accumulation. *)
let byte_pos_off, byte_pos_flat =
  let off = Array.make 257 0 in
  for v = 0 to 255 do
    off.(v + 1) <- off.(v) + Hlp_util.Bits.popcount v
  done;
  let flat = Array.make off.(256) 0 in
  let idx = ref 0 in
  for v = 0 to 255 do
    for b = 0 to 7 do
      if v land (1 lsl b) <> 0 then begin
        flat.(!idx) <- b;
        incr idx
      end
    done
  done;
  (off, flat)

let scan_lanes ls c d =
  let d = ref d and base = ref 0 in
  while !d <> 0 do
    let byte = !d land 0xff in
    if byte <> 0 then begin
      let b = !base in
      let hi = Array.unsafe_get byte_pos_off (byte + 1) - 1 in
      for k = Array.unsafe_get byte_pos_off byte to hi do
        let l = b + Array.unsafe_get byte_pos_flat k in
        Array.unsafe_set ls l (Array.unsafe_get ls l +. c)
      done
    end;
    d := !d lsr 8;
    base := !base + 8
  done

let set s i v =
  let old = Array.unsafe_get s.values i in
  if old <> v then begin
    Array.unsafe_set s.values i v;
    if s.counting then begin
      let d = old lxor v in
      Array.unsafe_set s.toggles i
        (Array.unsafe_get s.toggles i + Hlp_util.Bits.popcount d);
      s.pops <- s.pops + 1;
      if s.track_lanes then
        scan_lanes s.lane_switched (Array.unsafe_get s.caps i) d
    end
  end

let step s inputs =
  let net = s.net in
  assert (Array.length inputs = Array.length net.Netlist.inputs);
  (* fault-injection point: a gate evaluation raising mid-step *)
  Hlp_util.Faultinject.trip Hlp_util.Faultinject.Gate_eval;
  (* clock edge: latch data pins as they settled last cycle; the first edge
     re-captures the reset state *)
  if s.first then s.first <- false
  else begin
    let nexts =
      Array.map
        (fun w -> s.values.(net.Netlist.nodes.(w).Netlist.fanin.(0)))
        net.Netlist.dffs
    in
    Array.iteri (fun j w -> set s w nexts.(j)) net.Netlist.dffs
  end;
  Array.iteri (fun k w -> set s w inputs.(k)) net.Netlist.inputs;
  (* settle combinational logic in topological (id) order *)
  let nodes = net.Netlist.nodes in
  for i = 0 to Array.length nodes - 1 do
    let node = nodes.(i) in
    match node.Netlist.kind with
    | Gate.Input | Gate.Dff -> ()
    | _ -> set s i (eval_node s.values node)
  done;
  if s.counting then begin
    let highs = s.highs and values = s.values in
    for i = 0 to Array.length values - 1 do
      Array.unsafe_set highs i
        (Array.unsafe_get highs i + Hlp_util.Bits.popcount (Array.unsafe_get values i))
    done;
    s.pops <- s.pops + Array.length values
  end;
  s.ncycles <- s.ncycles + 1;
  if Hlp_util.Telemetry.enabled () then begin
    Hlp_util.Telemetry.incr tel_steps;
    Hlp_util.Telemetry.add tel_lane_cycles lanes;
    Hlp_util.Telemetry.add tel_evals s.ncomb;
    Hlp_util.Telemetry.add tel_popcounts s.pops
  end;
  s.pops <- 0

let value s w = s.values.(w)
let cycles s = s.ncycles
let toggle_counts s = s.toggles
let high_counts s = s.highs

let switched_capacitance s =
  (* derived from the exact integer toggle counts so it equals
     sum_i caps(i) * toggles(i) bit-for-bit, independent of step order *)
  let acc = ref 0.0 in
  Array.iteri
    (fun i t -> acc := !acc +. (s.caps.(i) *. float_of_int t))
    s.toggles;
  !acc

let lane_switched_capacitance s =
  if not s.track_lanes then
    invalid_arg "Bitsim.lane_switched_capacitance: created without ~track_lanes";
  Array.copy s.lane_switched

let set_counting s b = s.counting <- b

let reset_counters s =
  Array.fill s.toggles 0 (Array.length s.toggles) 0;
  Array.fill s.highs 0 (Array.length s.highs) 0;
  Array.fill s.lane_switched 0 lanes 0.0;
  s.ncycles <- 0

let pack_lanes vectors =
  let nlanes = Array.length vectors in
  if nlanes = 0 || nlanes > lanes then invalid_arg "Bitsim.pack_lanes";
  let nin = Array.length vectors.(0) in
  let words = Array.make nin 0 in
  for j = 0 to nlanes - 1 do
    let v = vectors.(j) in
    if Array.length v <> nin then invalid_arg "Bitsim.pack_lanes: ragged vectors";
    let bit = 1 lsl j in
    for k = 0 to nin - 1 do
      if Array.unsafe_get v k then
        Array.unsafe_set words k (Array.unsafe_get words k lor bit)
    done
  done;
  words

let output_words s =
  let outs = s.net.Netlist.outputs in
  let res = Array.make lanes 0 in
  Array.iteri
    (fun k (_, w) ->
      let v = s.values.(w) in
      if v <> 0 then
        for j = 0 to lanes - 1 do
          if (v lsr j) land 1 = 1 then res.(j) <- res.(j) lor (1 lsl k)
        done)
    outs;
  res

let run s input_at n =
  for i = 0 to n - 1 do
    step s (input_at i)
  done
