(** Compiled struct-of-arrays replay kernel: the netlist, lowered once.

    {!Funcsim} and {!Bitsim} interpret the netlist: every gate evaluation
    loads a node record, matches on a boxed {!Hlp_logic.Gate.kind}, and
    chases a per-node fanin array. This module {e compiles} the netlist
    instead — once per structure — into a flat schedule that the replay
    loop walks with no dispatch and no allocation:

    - {b Struct-of-arrays}: destination ids, opcodes, specialized fanin
      index arrays for arity <= 3 ([fa]/[fb]/[fc]) plus a CSR pool
      (offsets + flat indices) for n-ary gates, and the capacitance
      table, all in contiguous arrays.
    - {b Levelized}: slots are ordered by {!Hlp_logic.Netlist.comb_levels}
      and grouped by opcode within a level; each maximal same-opcode run
      becomes one {e segment}.
    - {b Specialized closures}: every segment compiles to one closure
      over the flat arrays whose body is a branch-free loop of identical
      word-wide operations — one indirect call per segment per step
      instead of one dispatch per gate.
    - {b Proven-then-unsafe}: the hot loops use
      [Array.unsafe_get]/[unsafe_set]. The justification is a single
      construction-time bounds proof, run at the end of {!compile}: every
      destination and pin index is checked against the node count, CSR
      offsets are checked monotone and covering, every pin is checked to
      settle on a strictly earlier level, segments are checked to tile
      the slots, and the accounting order is checked to be a permutation
      of the node ids. The arrays are immutable afterwards, so the proof
      outlives compilation. A violation fails compilation loudly
      ([Failure]); no unchecked access is ever reached.

    {b Bit-identity contract} (enforced by the differential wall in
    [test/test_kernel.ml]): against {!Bitsim} under identical stimuli,
    every per-node toggle and high counter, the total switched
    capacitance, and the per-lane switched-capacitance floats are
    byte-identical. Integer counters are order-free; the per-lane floats
    are not (float addition is non-associative), so the kernel defers
    accounting to a per-step delta pass that replays Bitsim's
    chronological charge order — registers in declaration order, then
    primary inputs, then remaining nodes in id order — and charges lanes
    through literally the same {!Bitsim.scan_lanes} code path.

    A fingerprint-keyed bounded cache ({!of_netlist}) amortizes
    compilation across the replay-many consumers (Monte Carlo campaigns,
    the estimation service, the batch runner). *)

(** {1 Compilation} *)

type t
(** A compiled plan: immutable after construction, safe to share across
    domains and to reuse for any number of simultaneous replay states. *)

val compile : ?caps:float array -> Hlp_logic.Netlist.t -> t
(** Lower a netlist into a plan, always performing the work (no cache).
    [caps] overrides {!Hlp_logic.Netlist.node_capacitance} (length must
    equal the node count). Raises [Failure] if the netlist fails
    {!Hlp_logic.Netlist.validate} or the construction-time bounds proof. *)

val of_netlist : ?caps:float array -> Hlp_logic.Netlist.t -> t
(** Like {!compile} but memoized on {!Hlp_logic.Netlist.fingerprint}
    through a bounded process-wide {!Hlp_logic.Netcache} — the
    compile-once / replay-many entry point. A custom [caps] table is not
    part of the structural fingerprint, so passing one bypasses the
    cache. *)

val clear_cache : unit -> unit
(** Drop every cached plan (tests and memory-sensitive batch drivers). *)

val cache_length : unit -> int
(** Plans currently cached — the serve daemon's stats report. *)

(** {1 Replay}

    The state mirrors {!Bitsim}'s lane model: each node holds one OCaml
    [int] whose bit [j] is the node's value in lane [j], 63 lanes per
    step. *)

type s

val lanes : int
(** 63, re-exported from {!Bitsim}. *)

val create : ?track_lanes:bool -> t -> s
(** Fresh replay state in the settled reset condition (registers at
    their init values, nothing charged), evaluated through the compiled
    schedule itself. [track_lanes] as in {!Bitsim.create}. *)

val step : s -> int array -> unit
(** Advance one cycle: latch registers, drive one word per primary input
    (parallel to the netlist's input array), settle the compiled
    schedule, account. Uses double buffering — every non-constant node is
    rewritten each step, so the previous cycle's buffer is reused with no
    copying. Trips the [Gate_eval] fault-injection point like the
    interpreters. *)

val step_scalar : s -> bool array -> unit
(** Single-vector convenience: broadcasts a boolean vector into lane 0
    (remaining lanes are driven 0). With only lane 0 exercised the
    kernel's values and toggle counts match a {!Funcsim} run of the same
    stimulus — the scalar differential used in tests. *)

val run : s -> (int -> int array) -> int -> unit
(** [run s input_at n] steps [n] times with the given word source. *)

(** {1 Observation} — same meanings as the {!Bitsim} accessors. *)

val value : s -> Hlp_logic.Netlist.wire -> int
val value_bool : s -> Hlp_logic.Netlist.wire -> bool
(** Lane 0 of {!value}. *)

val cycles : s -> int
val toggle_counts : s -> int array
val high_counts : s -> int array
val switched_capacitance : s -> float
val lane_switched_capacitance : s -> float array
val output_words : s -> int array
val set_counting : s -> bool -> unit
val reset_counters : s -> unit

val plan : s -> t
(** The plan this state replays. *)

(** {1 Plan inspection} — compile-time structure for tests, benches, and
    the design docs. *)

type stats = {
  nodes : int;
  slots : int;  (** combinational gates scheduled *)
  levels : int;
  segments : int;  (** specialized closures per step *)
  pool : int;  (** flat fanin pool length *)
  widest_level : int;
}

val stats : t -> stats
val stats_string : t -> string

val level_fanout_mask : t -> int -> int
(** [level_fanout_mask p l] is a bitmask of the levels consuming level
    [l]'s outputs (saturated at bit 62; register data pins appear as
    level 0, the next cycle's sources). Compile-time fan-out structure,
    exposed for diagnostics and as the hook for future dirty-level
    skipping. *)

val segment_summary : t -> (string * int) array
(** Opcode name and slot count of each segment, in schedule order. *)
