open Hlp_logic

let default_jobs () = max 1 (Domain.recommended_domain_count ())

let tel_maps = Hlp_util.Telemetry.counter "parsim.maps"
let tel_shards = Hlp_util.Telemetry.counter "parsim.shards"
(* one observation per worker domain per parallel map: the number of shards
   that worker pulled. With perfect load balance every observation of a map
   is ~n/jobs; stragglers show up as outliers. *)
let tel_domain_shards = Hlp_util.Telemetry.series "parsim.domain_shards"
let tel_jobs_clamped = Hlp_util.Telemetry.counter "parsim.jobs_clamped"
let tel_worker_failures = Hlp_util.Telemetry.counter "parsim.worker_failures"
let tel_shard_retries = Hlp_util.Telemetry.counter "parsim.shard_retries"
let tel_engine_fallbacks = Hlp_util.Telemetry.counter "parsim.engine_fallbacks"
let tel_replays = Hlp_util.Telemetry.counter "parsim.replays"
let tel_replay_cycles = Hlp_util.Telemetry.counter "parsim.replay_cycles"
let tel_chunks = Hlp_util.Telemetry.counter "parsim.chunks"
let tel_mc_units = Hlp_util.Telemetry.counter "parsim.mc_units"
let tel_replay_time = Hlp_util.Telemetry.timer "parsim.replay"
let tel_mc_time = Hlp_util.Telemetry.timer "parsim.monte_carlo"

(* An explicit worker count is clamped to both the shard count and the
   recommended domain count: domains beyond either would sit idle (or
   oversubscribe the cores), and the clamp is visible in telemetry instead
   of silently spawning them. *)
let effective_jobs ?jobs n =
  let cap = min (max 1 n) (default_jobs ()) in
  match jobs with
  | None -> cap
  | Some j ->
      let j = max 1 j in
      if j > cap then begin
        Hlp_util.Telemetry.incr tel_jobs_clamped;
        cap
      end
      else j

let backoff_base_s = 0.001

let map ?jobs ?(max_retries = 2) n f =
  if n < 0 then
    raise (Hlp_util.Err.invalid_input ~what:"Parsim.map: n" "must be non-negative");
  if max_retries < 0 then
    raise
      (Hlp_util.Err.invalid_input ~what:"Parsim.map: max_retries"
         "must be non-negative");
  let jobs = effective_jobs ?jobs n in
  if n = 0 then [||]
  else begin
    Hlp_util.Telemetry.incr tel_maps;
    Hlp_util.Telemetry.add tel_shards n;
    let results = Array.make n None in
    let failed = Array.make n None in  (* last attempt's exception, per shard *)
    (* One round computes the given shard subset, work-stealing over it.
       Each shard writes only its own slot, so the result is
       position-determined and independent of the worker count and of
       scheduling. A raising shard is contained: its exception is recorded,
       the worker moves on, and every other shard still completes. *)
    let round ~attempt indices =
      let k = Array.length indices in
      let next = Atomic.make 0 in
      let worker () =
        let mine = ref 0 in
        let rec go () =
          let j = Atomic.fetch_and_add next 1 in
          if j < k then begin
            let i = indices.(j) in
            (* span per shard attempt: in the merged trace, each worker
               domain's track shows exactly which shards it pulled, and a
               retried shard appears again with attempt > 1 *)
            (match
               Hlp_util.Trace.span
                 ~args:(fun () ->
                   [ ("shard", Hlp_util.Json.Int i);
                     ("attempt", Hlp_util.Json.Int attempt) ])
                 "parsim.shard"
                 (fun () ->
                   (* fault-injection point: this worker dying at pickup *)
                   Hlp_util.Faultinject.trip Hlp_util.Faultinject.Domain_kill;
                   f i)
             with
            | v ->
                results.(i) <- Some v;
                failed.(i) <- None;
                Stdlib.incr mine
            | exception e ->
                Hlp_util.Telemetry.incr tel_worker_failures;
                Hlp_util.Trace.instant
                  ~args:(fun () ->
                    [ ("shard", Hlp_util.Json.Int i);
                      ("why", Hlp_util.Json.Str (Printexc.to_string e)) ])
                  "parsim.shard_failed";
                failed.(i) <- Some e);
            go ()
          end
        in
        go ();
        if Hlp_util.Telemetry.enabled () then
          Hlp_util.Telemetry.observe tel_domain_shards (float_of_int !mine)
      in
      let domains =
        Array.init (min jobs k - 1) (fun _ -> Domain.spawn worker)
      in
      worker ();
      Array.iter Domain.join domains
    in
    round ~attempt:1 (Array.init n Fun.id);
    (* failed shards are retried on fresh domains with bounded exponential
       backoff; [f] is deterministic per index, so a retried shard that
       succeeds yields exactly the value the clean run would have *)
    let rec retry attempt =
      let pending =
        Array.of_seq
          (Seq.filter (fun i -> failed.(i) <> None) (Seq.init n Fun.id))
      in
      if Array.length pending > 0 && attempt <= max_retries then begin
        Hlp_util.Telemetry.add tel_shard_retries (Array.length pending);
        Hlp_util.Trace.span
          ~args:(fun () ->
            [ ("pending", Hlp_util.Json.Int (Array.length pending));
              ("attempt", Hlp_util.Json.Int attempt) ])
          "parsim.retry_backoff"
          (fun () ->
            Unix.sleepf (backoff_base_s *. float_of_int (1 lsl (attempt - 1))));
        round ~attempt:(attempt + 1) pending;
        retry (attempt + 1)
      end
    in
    retry 1;
    Array.iteri
      (fun i e ->
        match e with
        | Some e ->
            raise
              (Hlp_util.Err.Error
                 (Hlp_util.Err.Worker_failure
                    { shard = i;
                      attempts = max_retries + 1;
                      why = Printexc.to_string e }))
        | None -> ())
      failed;
    Array.map (function Some v -> v | None -> assert false) results
  end

type replay = {
  out_words : int array;
  transition_caps : float array;
}

(* --- scalar reference implementation: one Funcsim step per cycle --- *)

let replay_scalar net ~vector ~n =
  let sim = Funcsim.create net in
  let outs = net.Netlist.outputs in
  let out_words = Array.make n 0 in
  let gate_cum = Array.make n 0.0 in
  for i = 0 to n - 1 do
    Funcsim.step sim (vector i);
    let v = ref 0 in
    Array.iteri
      (fun k (_, wire) -> if Funcsim.value sim wire then v := !v lor (1 lsl k))
      outs;
    out_words.(i) <- !v;
    gate_cum.(i) <- Funcsim.switched_capacitance sim
  done;
  let transition_caps =
    Array.init (max 0 (n - 1)) (fun i -> gate_cum.(i + 1) -. gate_cum.(i))
  in
  { out_words; transition_caps }

(* --- bit-parallel chunk: 63 consecutive cycles per two Bitsim steps ---

   A combinational circuit's settled state depends only on the current
   vector, so a serial trace can be transposed: lane j of a chunk starting
   at cycle [lo] first settles at vector lo+j (warm-up step, accounting
   off), then steps to vector lo+j+1 with per-lane accounting on. The
   per-lane switched capacitance of the counted step is exactly the
   capacitance the scalar simulator charges for the transition
   lo+j -> lo+j+1. *)

(* One chunk on an existing (combinational, track_lanes) simulator. The
   warm-up settle is a pure function of the warm-up vectors, so the
   simulator's prior state is irrelevant and one instance can be reused
   across chunks — the result is bit-identical to a freshly created one. *)
let replay_chunk_with sim ~vector ~n lo =
  let count = min Bitsim.lanes (n - lo) in
  Bitsim.set_counting sim false;
  (* vectors lo .. lo+63 once: lane j of the counted step is lane j+1 of
     the warm-up step, so the counted words are a lane shift of the warm-up
     words plus vector lo+63 entering at the top lane *)
  let vecs =
    Array.init (Bitsim.lanes + 1) (fun j -> vector (min (lo + j) (n - 1)))
  in
  let warm = Bitsim.pack_lanes (Array.sub vecs 0 Bitsim.lanes) in
  Bitsim.step sim warm;
  let outs = Array.sub (Bitsim.output_words sim) 0 count in
  let last = vecs.(Bitsim.lanes) in
  let next =
    Array.mapi
      (fun k w -> (w lsr 1) lor (if last.(k) then 1 lsl (Bitsim.lanes - 1) else 0))
      warm
  in
  Bitsim.reset_counters sim;
  Bitsim.set_counting sim true;
  Bitsim.step sim next;
  let lane_caps = Bitsim.lane_switched_capacitance sim in
  let ntrans = min count (n - 1 - lo) in
  (outs, Array.sub lane_caps 0 (max 0 ntrans))

let replay_chunk net ~caps ~vector ~n lo =
  replay_chunk_with (Bitsim.create ~caps ~track_lanes:true net) ~vector ~n lo

(* Same chunk transposition through the compiled kernel. The accounting
   contract ({!Kernel}) makes the per-lane floats bit-identical to
   [replay_chunk_with], so the two bodies must stay in lockstep. *)
let kernel_chunk_with sim ~vector ~n lo =
  let count = min Kernel.lanes (n - lo) in
  Kernel.set_counting sim false;
  let vecs =
    Array.init (Kernel.lanes + 1) (fun j -> vector (min (lo + j) (n - 1)))
  in
  let warm = Bitsim.pack_lanes (Array.sub vecs 0 Kernel.lanes) in
  Kernel.step sim warm;
  let outs = Array.sub (Kernel.output_words sim) 0 count in
  let last = vecs.(Kernel.lanes) in
  let next =
    Array.mapi
      (fun k w -> (w lsr 1) lor (if last.(k) then 1 lsl (Kernel.lanes - 1) else 0))
      warm
  in
  Kernel.reset_counters sim;
  Kernel.set_counting sim true;
  Kernel.step sim next;
  let lane_caps = Kernel.lane_switched_capacitance sim in
  let ntrans = min count (n - 1 - lo) in
  (outs, Array.sub lane_caps 0 (max 0 ntrans))

let replay ?jobs ?max_retries ~engine net ~vector ~n =
  if n < 1 then
    raise
      (Hlp_util.Err.invalid_input ~what:"Parsim.replay: n"
         "need at least one cycle");
  Hlp_util.Telemetry.incr tel_replays;
  Hlp_util.Telemetry.add tel_replay_cycles n;
  Hlp_util.Telemetry.time tel_replay_time @@ fun () ->
  Hlp_util.Trace.span
    ~args:(fun () ->
      [ ("engine", Hlp_util.Json.Str (Engine.to_string engine));
        ("cycles", Hlp_util.Json.Int n) ])
    "parsim.replay"
  @@ fun () ->
  match (engine : Engine.t) with
  | Engine.Scalar -> replay_scalar net ~vector ~n
  | Engine.Bitparallel | Engine.Parallel | Engine.Compiled ->
      if Netlist.num_dffs net > 0 then
        invalid_arg
          "Parsim.replay: bit-parallel trace replay requires a combinational \
           netlist (sequential state cannot be chunked)";
      let nchunks = (n + Bitsim.lanes - 1) / Bitsim.lanes in
      Hlp_util.Telemetry.add tel_chunks nchunks;
      let chunks =
        match engine with
        | Engine.Compiled ->
            (* compile once (fingerprint-cached), reuse one kernel state
               across all chunks — the warm-up settle erases prior state *)
            let sim = Kernel.create ~track_lanes:true (Kernel.of_netlist net) in
            Array.init nchunks (fun c ->
                kernel_chunk_with sim ~vector ~n (c * Kernel.lanes))
        | _ ->
            let jobs =
              match engine with
              | Engine.Parallel -> (
                  match jobs with Some j -> max 1 j | None -> default_jobs ())
              | _ -> 1
            in
            (* one capacitance table, shared read-only by every chunk
               simulator *)
            let caps = Netlist.node_capacitance net in
            if jobs <= 1 then begin
              (* sequential: one simulator reused across all chunks (the
                 warm-up settle erases prior state), bit-identical to the
                 per-chunk-create parallel path *)
              let sim = Bitsim.create ~caps ~track_lanes:true net in
              Array.init nchunks (fun c ->
                  replay_chunk_with sim ~vector ~n (c * Bitsim.lanes))
            end
            else
              map ~jobs ?max_retries nchunks (fun c ->
                  replay_chunk net ~caps ~vector ~n (c * Bitsim.lanes))
      in
      let out_words = Array.concat (Array.to_list (Array.map fst chunks)) in
      let transition_caps = Array.concat (Array.to_list (Array.map snd chunks)) in
      assert (Array.length out_words = n);
      assert (Array.length transition_caps = n - 1);
      { out_words; transition_caps }

(* --- engine degradation chain --- *)

let degradation_chain = function
  | Engine.Compiled -> [ Engine.Compiled; Engine.Bitparallel; Engine.Scalar ]
  | Engine.Parallel -> [ Engine.Parallel; Engine.Bitparallel; Engine.Scalar ]
  | Engine.Bitparallel -> [ Engine.Bitparallel; Engine.Scalar ]
  | Engine.Scalar -> [ Engine.Scalar ]

(* Guard trips and input errors must propagate: degrading an estimate past
   its deadline (or past bad input) would return a wrong answer late
   instead of a typed error on time. Everything else — injected faults,
   worker failures that survived their retries, engine-capability
   mismatches — degrades to the next engine. *)
let propagates = function
  | Hlp_util.Err.Error
      (Hlp_util.Err.Deadline_exceeded _ | Hlp_util.Err.Cancelled _
      | Hlp_util.Err.Invalid_input _) ->
      true
  | _ -> false

type 'a degraded = { value : 'a; engine_used : Engine.t; fallbacks : int }

let with_degradation ~what ~guard ~engine f =
  Hlp_util.Err.protect @@ fun () ->
  let rec go fallbacks = function
    | [] -> assert false
    | e :: rest -> (
        Hlp_util.Guard.check ~where:what guard;
        match
          (* one span per engine attempt: a degraded run shows the chain of
             attempts side by side, each hop marked by a fallback instant *)
          Hlp_util.Trace.span
            ~args:(fun () ->
              [ ("what", Hlp_util.Json.Str what);
                ("engine", Hlp_util.Json.Str (Engine.to_string e));
                ("fallbacks", Hlp_util.Json.Int fallbacks) ])
            "parsim.engine_attempt"
            (fun () -> f e)
        with
        | v -> { value = v; engine_used = e; fallbacks }
        | exception exn ->
            if propagates exn then raise exn
            else if rest <> [] then begin
              Hlp_util.Telemetry.incr tel_engine_fallbacks;
              Hlp_util.Trace.instant
                ~args:(fun () ->
                  [ ("from", Hlp_util.Json.Str (Engine.to_string e));
                    ("to",
                     Hlp_util.Json.Str (Engine.to_string (List.hd rest)));
                    ("why", Hlp_util.Json.Str (Printexc.to_string exn)) ])
                "parsim.engine_fallback";
              go (fallbacks + 1) rest
            end
            else begin
              match exn with
              | Hlp_util.Err.Error _ -> raise exn
              | _ ->
                  (* the last engine failed with a raw exception: surface it
                     as a typed whole-pipeline worker failure *)
                  raise
                    (Hlp_util.Err.Error
                       (Hlp_util.Err.Worker_failure
                          { shard = -1;
                            attempts = fallbacks + 1;
                            why = what ^ ": " ^ Printexc.to_string exn }))
            end)
  in
  go 0 (degradation_chain engine)

let replay_guarded ?jobs ?max_retries ?(guard = Hlp_util.Guard.unlimited) ~engine
    net ~vector ~n =
  if n < 1 then
    Error
      (Hlp_util.Err.Invalid_input
         { what = "Parsim.replay: n"; why = "need at least one cycle" })
  else
    with_degradation ~what:"parsim.replay" ~guard ~engine (fun e ->
        replay ?jobs ?max_retries ~engine:e net ~vector ~n)

(* --- Monte Carlo under uniform inputs --- *)

type mc = {
  mean : float;
  unit_means : float array;
  cycles : int;
}

(* Each unit is an independent 63-lane batch whose PRNG stream depends only
   on (seed, unit index) — never on the worker that ran it — which is what
   makes the parallel reduction deterministic in the number of domains. *)
let mc_unit net ~caps ~batch ~seed u =
  let rng = Hlp_util.Prng.create (seed + ((u + 1) * 0x2545F4914F6CDD1D)) in
  let nin = Array.length net.Netlist.inputs in
  let sim = Bitsim.create ~caps net in
  for _ = 1 to batch do
    let words = Array.make nin 0 in
    for k = 0 to nin - 1 do
      words.(k) <- Int64.to_int (Hlp_util.Prng.bits64 rng)
    done;
    Bitsim.step sim words
  done;
  Bitsim.switched_capacitance sim /. float_of_int (batch * Bitsim.lanes)

(* The compiled twin of [mc_unit]: identical PRNG stream, identical word
   sequence, and (by the kernel's accounting contract) identical integer
   toggle counts, so the returned mean has the same float bits. *)
let mc_unit_kernel plan ~nin ~batch ~seed u =
  let rng = Hlp_util.Prng.create (seed + ((u + 1) * 0x2545F4914F6CDD1D)) in
  let sim = Kernel.create plan in
  for _ = 1 to batch do
    let words = Array.make nin 0 in
    for k = 0 to nin - 1 do
      words.(k) <- Int64.to_int (Hlp_util.Prng.bits64 rng)
    done;
    Kernel.step sim words
  done;
  Kernel.switched_capacitance sim /. float_of_int (batch * Kernel.lanes)

let monte_carlo_units ?jobs ?max_retries ?resume_means ?on_unit ~engine net
    ~batch ~seed ~stop =
  Hlp_util.Telemetry.time tel_mc_time @@ fun () ->
  (* fixed round size, independent of the worker count, so the stopping
     decisions (and therefore the estimate) do not depend on ~jobs *)
  let round = match (engine : Engine.t) with Engine.Parallel -> 8 | _ -> 1 in
  let jobs = match engine with Engine.Parallel -> jobs | _ -> Some 1 in
  let unit_of =
    match (engine : Engine.t) with
    | Engine.Compiled ->
        let plan = Kernel.of_netlist net in
        let nin = Array.length net.Netlist.inputs in
        fun u -> mc_unit_kernel plan ~nin ~batch ~seed u
    | _ ->
        let caps = Netlist.node_capacitance net in
        fun u -> mc_unit net ~caps ~batch ~seed u
  in
  let rec go acc nunits =
    let fresh =
      Hlp_util.Trace.span
        ~args:(fun () ->
          [ ("units_done", Hlp_util.Json.Int nunits);
            ("round", Hlp_util.Json.Int round) ])
        "parsim.mc_round"
        (fun () ->
          map ?jobs ?max_retries round (fun r -> unit_of (nunits + r)))
    in
    Hlp_util.Telemetry.add tel_mc_units round;
    (match on_unit with
    | None -> ()
    | Some f -> Array.iteri (fun r m -> f (nunits + r) m) fresh);
    let acc = acc @ Array.to_list fresh in
    let nunits = nunits + round in
    let means = Array.of_list acc in
    let cycles = nunits * batch * Bitsim.lanes in
    if stop ~means ~cycles then
      { mean = Hlp_util.Stats.mean means; unit_means = means; cycles }
    else go acc nunits
  in
  let resumed =
    match resume_means with
    | None -> []
    | Some ms ->
        (* keep only whole rounds so stop-rule evaluation points line up
           with the unit-index boundaries a fresh run would have used —
           the price of a crash mid-round is re-running that round *)
        let k = Array.length ms / round * round in
        Array.to_list (Array.sub ms 0 k)
  in
  let nunits0 = List.length resumed in
  let means0 = Array.of_list resumed in
  let cycles0 = nunits0 * batch * Bitsim.lanes in
  (* entry stop-check: the previous run may have crashed after the stop
     rule fired but before its final snapshot landed *)
  if nunits0 > 0 && stop ~means:means0 ~cycles:cycles0 then
    { mean = Hlp_util.Stats.mean means0; unit_means = means0; cycles = cycles0 }
  else go resumed nunits0
