open Hlp_logic

type s = {
  net : Netlist.t;
  caps : float array;
  values : bool array;  (* current instantaneous value *)
  settled : bool array;  (* value at the previous cycle boundary *)
  projected : bool array;  (* value after all pending events *)
  fanouts : int array array;
  toggles : int array;
  functional : int array;
  queue : int Hlp_util.Heap.t;  (* node to (re)evaluate; key = time *)
  mutable switched : float;
  mutable functional_switched : float;
  mutable ncycles : int;
  mutable first : bool;
  (* plain scalar tallies (cheap; flushed to telemetry per step) *)
  mutable ndrained : int;
  mutable ntoggles : int;
  mutable nfunctional : int;
}

let tel_cycles = Hlp_util.Telemetry.counter "eventsim.cycles"
let tel_events = Hlp_util.Telemetry.counter "eventsim.events_drained"
let tel_glitches = Hlp_util.Telemetry.counter "eventsim.glitch_toggles"

let build_fanouts net =
  let n = Netlist.num_nodes net in
  let lists = Array.make n [] in
  Array.iteri
    (fun i (node : Netlist.node) ->
      match node.Netlist.kind with
      | Gate.Dff -> ()  (* dff data pins are sampled at the clock edge only *)
      | _ -> Array.iter (fun w -> lists.(w) <- i :: lists.(w)) node.Netlist.fanin)
    net.Netlist.nodes;
  Array.map (fun l -> Array.of_list (List.rev l)) lists

let create net =
  let n = Netlist.num_nodes net in
  let s =
    {
      net;
      caps = Netlist.node_capacitance net;
      values = Array.make n false;
      settled = Array.make n false;
      projected = Array.make n false;
      fanouts = build_fanouts net;
      toggles = Array.make n 0;
      functional = Array.make n 0;
      queue = Hlp_util.Heap.create ();
      switched = 0.0;
      functional_switched = 0.0;
      ncycles = 0;
      first = true;
      ndrained = 0;
      ntoggles = 0;
      nfunctional = 0;
    }
  in
  Array.iteri
    (fun j w -> s.values.(w) <- net.Netlist.dff_init.(j))
    net.Netlist.dffs;
  (* initial quiescent settle (all inputs low), not charged any energy *)
  Array.iteri
    (fun i (node : Netlist.node) ->
      match node.Netlist.kind with
      | Gate.Input | Gate.Dff -> ()
      | Gate.Const b -> s.values.(i) <- b
      | kind ->
          let pins = Array.map (fun w -> s.values.(w)) node.Netlist.fanin in
          s.values.(i) <- Gate.eval kind pins)
    net.Netlist.nodes;
  Array.blit s.values 0 s.settled 0 n;
  Array.blit s.values 0 s.projected 0 n;
  s

let eval_node s i =
  let node = s.net.Netlist.nodes.(i) in
  let pins = Array.map (fun w -> s.values.(w)) node.Netlist.fanin in
  Gate.eval node.Netlist.kind pins

(* Commit an instantaneous change at a node and schedule re-evaluation of
   its combinational fanouts after their propagation delays. *)
let rec commit s time i v =
  if s.values.(i) <> v then begin
    s.values.(i) <- v;
    s.toggles.(i) <- s.toggles.(i) + 1;
    s.ntoggles <- s.ntoggles + 1;
    s.switched <- s.switched +. s.caps.(i);
    Array.iter (fun g -> schedule s time g) s.fanouts.(i)
  end

and schedule s time g =
  let v = eval_node s g in
  if s.projected.(g) <> v then begin
    s.projected.(g) <- v;
    let d = Gate.delay s.net.Netlist.nodes.(g).Netlist.kind in
    Hlp_util.Heap.push s.queue (time +. d) g
  end

let drain s =
  let rec go () =
    match Hlp_util.Heap.pop s.queue with
    | None -> ()
    | Some (t, g) ->
        s.ndrained <- s.ndrained + 1;
        let v = eval_node s g in
        commit s t g v;
        go ()
  in
  go ()

let step s inputs =
  let net = s.net in
  assert (Array.length inputs = Array.length net.Netlist.inputs);
  (* clock edge at t=0: latch dffs from last settle (the first edge
     re-captures the reset state), drive new inputs *)
  if s.first then s.first <- false
  else begin
    let nexts =
      Array.map
        (fun w -> s.values.(net.Netlist.nodes.(w).Netlist.fanin.(0)))
        net.Netlist.dffs
    in
    Array.iteri
      (fun j w ->
        s.projected.(w) <- nexts.(j);
        commit s 0.0 w nexts.(j))
      net.Netlist.dffs
  end;
  Array.iteri
    (fun k w ->
      s.projected.(w) <- inputs.(k);
      commit s 0.0 w inputs.(k))
    net.Netlist.inputs;
  drain s;
  (* functional (settled-boundary) transitions *)
  Array.iteri
    (fun i v ->
      if s.settled.(i) <> v then begin
        s.functional.(i) <- s.functional.(i) + 1;
        s.nfunctional <- s.nfunctional + 1;
        s.functional_switched <- s.functional_switched +. s.caps.(i);
        s.settled.(i) <- v
      end)
    s.values;
  s.ncycles <- s.ncycles + 1;
  if Hlp_util.Telemetry.enabled () then begin
    Hlp_util.Telemetry.incr tel_cycles;
    Hlp_util.Telemetry.add tel_events s.ndrained;
    Hlp_util.Telemetry.add tel_glitches (s.ntoggles - s.nfunctional)
  end;
  s.ndrained <- 0;
  s.ntoggles <- 0;
  s.nfunctional <- 0

let value s w = s.values.(w)
let cycles s = s.ncycles
let toggle_counts s = s.toggles
let functional_toggle_counts s = s.functional

let glitch_counts s =
  Array.mapi (fun i t -> t - s.functional.(i)) s.toggles

let switched_capacitance s = s.switched
let functional_switched_capacitance s = s.functional_switched
let glitch_capacitance s = s.switched -. s.functional_switched

let run s input_at n =
  for i = 0 to n - 1 do
    step s (input_at i)
  done
