type t = Scalar | Bitparallel | Parallel

let all = [ Scalar; Bitparallel; Parallel ]

let to_string = function
  | Scalar -> "scalar"
  | Bitparallel -> "bitparallel"
  | Parallel -> "parallel"

let of_string = function
  | "scalar" -> Some Scalar
  | "bitparallel" | "bitpar" -> Some Bitparallel
  | "parallel" | "par" -> Some Parallel
  | _ -> None
