type t = Scalar | Bitparallel | Parallel | Compiled

let all = [ Scalar; Bitparallel; Parallel; Compiled ]

let to_string = function
  | Scalar -> "scalar"
  | Bitparallel -> "bitparallel"
  | Parallel -> "parallel"
  | Compiled -> "compiled"

let of_string = function
  | "scalar" -> Some Scalar
  | "bitparallel" | "bitpar" -> Some Bitparallel
  | "parallel" | "par" -> Some Parallel
  | "compiled" | "kernel" -> Some Compiled
  | _ -> None
