(** Multicore driver for the bit-parallel simulator.

    [Parsim] shards independent simulation work across OCaml 5 domains. The
    determinism contract, relied on by every consumer: {e results depend
    only on the inputs and shard indices, never on the number of workers or
    on scheduling}. Shards are self-describing (per-shard PRNG streams
    derived from the seed and the shard index), each shard writes a
    pre-assigned slot, and reductions run in shard-index order — so [jobs=1]
    and [jobs=64] produce bit-identical floats. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

exception Worker of exn
(** A shard raised; the original exception is wrapped (raised by {!map}
    after all domains have been joined). *)

val map : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [map ~jobs n f] is [Array.init n f] computed by up to [jobs] domains
    (default {!default_jobs}) pulling shard indices from a shared counter.
    [f] must be safe to run concurrently with itself (pure, or touching
    only shard-local state). Result slot [i] always holds [f i]. *)

(** {1 Serial-trace replay} *)

type replay = {
  out_words : int array;
      (** per cycle: settled primary outputs, output index [k] at bit [k] *)
  transition_caps : float array;
      (** per transition [i -> i+1] (length [n-1]): capacitance switched *)
}

val replay :
  ?jobs:int ->
  engine:Engine.t ->
  Hlp_logic.Netlist.t ->
  vector:(int -> bool array) ->
  n:int ->
  replay
(** Simulate the [n]-cycle input trace [vector 0 .. vector (n-1)] and
    return per-cycle outputs plus per-transition switched capacitance (the
    quantities the sampling cosimulator consumes).

    [Scalar] runs one {!Funcsim} step per cycle. [Bitparallel] transposes
    the trace into chunks of 63 consecutive cycles, two {!Bitsim} steps per
    chunk (one uncounted warm-up settle, one counted transition), which is
    exact for combinational netlists because the settled state depends only
    on the current vector. [Parallel] additionally spreads the chunks over
    domains with {!map}. Bit-parallel engines raise [Invalid_argument] on
    netlists with flip-flops (sequential state cannot be chunked). Toggle
    counts are integer-exact across engines; the per-transition floats can
    differ from [Scalar] only by summation-order round-off. *)

(** {1 Monte Carlo batches} *)

type mc = {
  mean : float;  (** mean switched capacitance per cycle over all units *)
  unit_means : float array;  (** per-unit batch means, in unit order *)
  cycles : int;  (** total simulated cycles (units x batch x 63) *)
}

val monte_carlo_units :
  ?jobs:int ->
  engine:Engine.t ->
  Hlp_logic.Netlist.t ->
  batch:int ->
  seed:int ->
  stop:(means:float array -> cycles:int -> bool) ->
  mc
(** Evaluate independent Monte Carlo {e units} — each a fresh 63-lane
    {!Bitsim} run of [batch] steps under uniform random inputs from a PRNG
    stream determined by [(seed, unit index)] — until [stop] says so.
    [stop] is consulted on unit-index boundaries that do not depend on
    [jobs] (after every unit for [Bitparallel], after every fixed-size
    round of 8 units for [Parallel]), so the returned estimate is
    bit-identical for any number of domains. *)
