(** Multicore driver for the bit-parallel simulator.

    [Parsim] shards independent simulation work across OCaml 5 domains. The
    determinism contract, relied on by every consumer: {e results depend
    only on the inputs and shard indices, never on the number of workers or
    on scheduling}. Shards are self-describing (per-shard PRNG streams
    derived from the seed and the shard index), each shard writes a
    pre-assigned slot, and reductions run in shard-index order — so [jobs=1]
    and [jobs=64] produce bit-identical floats.

    Faults are {e contained}, not propagated: a shard whose computation
    raises no longer takes the whole map down. Its exception is recorded,
    every other shard still completes, and failed shards are retried on
    fresh domains with bounded exponential backoff ([max_retries] rounds,
    1 ms base). Because shards are deterministic per index, a retry that
    succeeds yields exactly the value a clean run would have — containment
    does not weaken the determinism contract. Shards that keep failing
    surface as the typed error
    [Hlp_util.Err.Error (Worker_failure _)]. Failure, retry, and clamp
    counts are visible in the ["parsim.worker_failures"],
    ["parsim.shard_retries"], ["parsim.jobs_clamped"], and
    ["parsim.engine_fallbacks"] telemetry counters. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

val map : ?jobs:int -> ?max_retries:int -> int -> (int -> 'a) -> 'a array
(** [map ~jobs n f] is [Array.init n f] computed by up to [jobs] domains
    (default {!default_jobs}) pulling shard indices from a shared counter.
    [f] must be safe to run concurrently with itself (pure, or touching
    only shard-local state). Result slot [i] always holds [f i].

    An explicit [jobs] is clamped to [min n (default_jobs ())] — domains
    beyond the shard count or the recommended domain count would idle or
    oversubscribe — with the clamp counted in ["parsim.jobs_clamped"].
    Raising shards are retried up to [max_retries] (default 2) times; a
    shard still failing afterwards raises
    [Hlp_util.Err.Error (Worker_failure {shard; _})]. Raises
    [Invalid_input] on negative [n] or [max_retries]. *)

(** {1 Serial-trace replay} *)

type replay = {
  out_words : int array;
      (** per cycle: settled primary outputs, output index [k] at bit [k] *)
  transition_caps : float array;
      (** per transition [i -> i+1] (length [n-1]): capacitance switched *)
}

val replay :
  ?jobs:int ->
  ?max_retries:int ->
  engine:Engine.t ->
  Hlp_logic.Netlist.t ->
  vector:(int -> bool array) ->
  n:int ->
  replay
(** Simulate the [n]-cycle input trace [vector 0 .. vector (n-1)] and
    return per-cycle outputs plus per-transition switched capacitance (the
    quantities the sampling cosimulator consumes).

    [Scalar] runs one {!Funcsim} step per cycle. [Bitparallel] transposes
    the trace into chunks of 63 consecutive cycles, two {!Bitsim} steps per
    chunk (one uncounted warm-up settle, one counted transition), which is
    exact for combinational netlists because the settled state depends only
    on the current vector. [Parallel] additionally spreads the chunks over
    domains with {!map} ([max_retries] as in {!map}). [Compiled] runs the
    same chunk protocol through the {!Kernel} struct-of-arrays schedule
    (compiled once per fingerprint, one state reused across chunks) and is
    bit-identical to [Bitparallel] on every output word and per-transition
    float. Bit-parallel engines raise [Invalid_argument] on netlists with
    flip-flops (sequential state cannot be chunked); [n < 1] raises the
    typed [Invalid_input]. Toggle counts are integer-exact across engines;
    the per-transition floats can differ from [Scalar] only by
    summation-order round-off. *)

(** {1 Engine degradation} *)

val degradation_chain : Engine.t -> Engine.t list
(** The fallback order {!with_degradation} walks, starting at the given
    engine: [Compiled -> Bitparallel -> Scalar],
    [Parallel -> Bitparallel -> Scalar], [Bitparallel -> Scalar],
    [Scalar] alone. Exposed for tests and capacity planning. *)

type 'a degraded = {
  value : 'a;
  engine_used : Engine.t;  (** the first engine in the chain that succeeded *)
  fallbacks : int;  (** degradation hops taken (0 = requested engine ran) *)
}

val with_degradation :
  what:string ->
  guard:Hlp_util.Guard.t ->
  engine:Engine.t ->
  (Engine.t -> 'a) ->
  ('a degraded, Hlp_util.Err.t) result
(** Run an engine-parameterized computation down the degradation chain
    (see {!replay_guarded} for the policy); the building block behind
    {!replay_guarded} and {!Hlp_power.Probprop}'s Monte Carlo fallback. *)

val replay_guarded :
  ?jobs:int ->
  ?max_retries:int ->
  ?guard:Hlp_util.Guard.t ->
  engine:Engine.t ->
  Hlp_logic.Netlist.t ->
  vector:(int -> bool array) ->
  n:int ->
  (replay degraded, Hlp_util.Err.t) result
(** {!replay} behind the degradation chain
    [Parallel -> Bitparallel -> Scalar] (starting at [engine]): if an
    engine fails — a worker failure that survived its retries, an injected
    fault, or an engine-capability mismatch such as a sequential netlist
    on a bit engine — the next, more conservative engine is tried, with
    each hop counted in ["parsim.engine_fallbacks"]. [Parallel] and
    [Bitparallel] are bit-identical, and [Scalar] differs only by
    summation round-off, so degradation never changes the answer beyond
    float noise. Guard trips ([Deadline_exceeded]/[Cancelled]) and
    [Invalid_input] propagate immediately — degrading past a deadline
    would return a late answer instead of a typed error. When the whole
    chain fails the result is the last typed error (a raw last exception
    is wrapped as [Worker_failure {shard = -1; _}]). *)

(** {1 Monte Carlo batches} *)

type mc = {
  mean : float;  (** mean switched capacitance per cycle over all units *)
  unit_means : float array;  (** per-unit batch means, in unit order *)
  cycles : int;  (** total simulated cycles (units x batch x 63) *)
}

val monte_carlo_units :
  ?jobs:int ->
  ?max_retries:int ->
  ?resume_means:float array ->
  ?on_unit:(int -> float -> unit) ->
  engine:Engine.t ->
  Hlp_logic.Netlist.t ->
  batch:int ->
  seed:int ->
  stop:(means:float array -> cycles:int -> bool) ->
  mc
(** Evaluate independent Monte Carlo {e units} — each a fresh 63-lane
    {!Bitsim} run of [batch] steps under uniform random inputs from a PRNG
    stream determined by [(seed, unit index)] — until [stop] says so.
    [stop] is consulted on unit-index boundaries that do not depend on
    [jobs] (after every unit for [Bitparallel] and [Compiled], after every
    fixed-size round of 8 units for [Parallel]), so the returned estimate
    is bit-identical for any number of domains. Under [Compiled] each unit
    replays a fresh {!Kernel} state of the once-compiled plan with the
    identical PRNG stream, so unit means (and therefore checkpoints)
    carry the same bits as [Bitparallel].

    Checkpoint hooks: [resume_means] seeds the run with per-unit means a
    journal recovered — truncated to a whole number of rounds so the
    stop rule is consulted at exactly the unit boundaries a fresh run
    would have used (a crash mid-round re-runs that round), with an entry
    stop-check covering a crash after the stop fired but before the final
    snapshot. [on_unit] is called with [(unit index, unit mean)] for every
    {e freshly computed} unit, in unit order, on the calling domain —
    the journaling hook; resumed units are not re-reported. Because a
    unit's mean depends only on [(seed, unit index)], a resumed run
    returns the byte-identical [mc] a crash-free run would have. *)
