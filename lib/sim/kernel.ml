open Hlp_logic

(* Compiled struct-of-arrays replay kernel.

   The pointer-chasing interpreter (Funcsim/Bitsim) dispatches every gate
   evaluation through the netlist data structure: load a node record,
   match on a boxed [Gate.kind], chase the fanin array, call [set]. This
   module compiles all of that away once per netlist:

   - the combinational gates are flattened into contiguous arrays
     ("slots"): destination node id, specialized pin indices for
     arity <= 3, and a CSR pool (offsets + flat index array) for n-ary
     gates, plus the capacitance table — the whole schedule is a handful
     of contiguous int/float arrays;
   - slots are topologically levelized ({!Netlist.comb_levels}) and
     grouped by opcode within each level, so the inner loop of a segment
     is a branch-free run of identical word-wide operations;
   - each segment becomes a specialized closure over the flat arrays,
     built once at compile time: per step the kernel makes one indirect
     call per segment instead of one dispatch per gate, and allocates
     nothing;
   - every array access in the closures and in the accounting pass is
     [unsafe_get]/[unsafe_set], justified by a single construction-time
     bounds proof ({!verify}): compilation fails loudly if any slot,
     pin, or level violates its range or ordering invariant, and the
     arrays are never mutated afterwards.

   Bit-identity with {!Bitsim} (the contract the differential wall in
   [test/test_kernel.ml] pins): values are words of 63 lanes evaluated by
   the same bitwise expressions; toggle/high counters are the same
   integer popcounts; and the per-lane float accumulation replays
   Bitsim's chronological charge order exactly — registers in
   declaration order, then inputs, then combinational nodes in id order
   ([acct_order]) — because float addition is non-associative and the
   levelized evaluation order must not leak into the sums. *)

let lanes = Bitsim.lanes
let all_ones = -1
let broadcast b = if b then all_ones else 0

(* slot opcodes: dense ints so the match in [seg_pass] is a jump table
   resolved once per segment at compile time, not once per gate *)
let op_buf = 0
let op_not = 1
let op_and2 = 2
let op_or2 = 3
let op_nand2 = 4
let op_nor2 = 5
let op_xor = 6
let op_xnor = 7
let op_mux = 8
let op_andn = 9
let op_orn = 10
let op_nandn = 11
let op_norn = 12

let opcode_name = function
  | 0 -> "buf" | 1 -> "not" | 2 -> "and2" | 3 -> "or2" | 4 -> "nand2"
  | 5 -> "nor2" | 6 -> "xor" | 7 -> "xnor" | 8 -> "mux" | 9 -> "andn"
  | 10 -> "orn" | 11 -> "nandn" | 12 -> "norn" | _ -> "?"

(* Const / Input / Dff never occupy a slot: constants are fixed at
   creation, inputs and registers are written by the step driver. *)
let opcode_of = function
  | Gate.Input | Gate.Dff | Gate.Const _ -> None
  | Gate.Buf -> Some op_buf
  | Gate.Not -> Some op_not
  | Gate.And n -> Some (if n = 2 then op_and2 else op_andn)
  | Gate.Or n -> Some (if n = 2 then op_or2 else op_orn)
  | Gate.Nand n -> Some (if n = 2 then op_nand2 else op_nandn)
  | Gate.Nor n -> Some (if n = 2 then op_nor2 else op_norn)
  | Gate.Xor -> Some op_xor
  | Gate.Xnor -> Some op_xnor
  | Gate.Mux -> Some op_mux

type seg = { op : int; lo : int; hi : int }

(* Lane-major charge accumulation, the compiled replacement for
   [Bitsim.scan_lanes]. The per-lane sums the replay consumers read are
   ordered float sums: lane [l] accumulates [caps.(i)] over the nodes [i]
   that toggled in lane [l], in the chronological accounting order — and
   that order is the {e same} for every lane. So the counted step records
   each node's delta word once, in accounting order, and this C primitive
   (kernel_stubs.c) then sweeps the dense (delta, cap) arrays lane-major,
   holding the lane accumulators in registers: each starts at the lane's
   running value and folds in exactly [c] when the lane's delta bit is
   set and [+0.0] when it is not, in node order. [x +. +0.0] is bit-exact
   for every [x] a lane sum can hold because the caps are proven finite
   and non-negative at compile time ([lanes_fast]) — so the result is
   bit-identical to the scatter walk while the loop is bound by float
   throughput instead of dependent table loads; the differential wall
   asserts the identity on every test circuit. The [@@noalloc] mark is
   sound: the primitive allocates nothing and never calls back into the
   runtime. *)
external accumulate_lanes :
  float array -> int array -> float array -> int -> unit
  = "hlp_kernel_accumulate_lanes"
  [@@noalloc]

type t = {
  net : Netlist.t;
  caps : float array;
  n : int;  (* nodes *)
  nslots : int;  (* combinational non-constant gates *)
  (* struct-of-arrays schedule, in evaluation (level, opcode, id) order *)
  dst : int array;  (* node id per slot *)
  fa : int array;  (* pin 0 per slot (0 when unused, proven in range) *)
  fb : int array;  (* pin 1 per slot *)
  fc : int array;  (* pin 2 per slot (mux select is fa) *)
  foff : int array;  (* CSR offsets into [fidx], length nslots+1 *)
  fidx : int array;  (* flat fanin pool *)
  segs : seg array;  (* same-opcode slot runs, level-major *)
  passes : (int array -> unit) array;  (* one specialized closure per seg *)
  nlevels : int;
  level_off : int array;  (* seg index boundary per level, length nlevels+1 *)
  level_fanout_masks : int array;
      (* per level: bitmask of the (saturated at 62) levels its outputs
         feed — compile-time fan-out structure for diagnostics and for
         future dirty-level skipping *)
  acct_order : int array;  (* Bitsim's chronological charge order *)
  caps_acct : float array;  (* caps gathered into accounting order *)
  lanes_fast : bool;
      (* every cap finite and non-negative, so [accumulate_lanes] is
         bit-identical to the scatter walk (see its comment) *)
  dff_dst : int array;  (* register node ids, declaration order *)
  dff_src : int array;  (* data-pin node id per register *)
  input_ids : int array;
  const_init : (int * int) array;  (* (node id, broadcast word) *)
  dff_init_words : int array;  (* broadcast init per register *)
}

(* --- the per-segment specialized closures --- *)

let seg_pass ~dst ~fa ~fb ~fc ~foff ~fidx { op; lo; hi } =
  let d = dst and a = fa and b = fb and c = fc in
  match op with
  | 0 (* buf *) ->
      fun v ->
        for s = lo to hi do
          Array.unsafe_set v (Array.unsafe_get d s)
            (Array.unsafe_get v (Array.unsafe_get a s))
        done
  | 1 (* not *) ->
      fun v ->
        for s = lo to hi do
          Array.unsafe_set v (Array.unsafe_get d s)
            (lnot (Array.unsafe_get v (Array.unsafe_get a s)))
        done
  | 2 (* and2 *) ->
      fun v ->
        for s = lo to hi do
          Array.unsafe_set v (Array.unsafe_get d s)
            (Array.unsafe_get v (Array.unsafe_get a s)
            land Array.unsafe_get v (Array.unsafe_get b s))
        done
  | 3 (* or2 *) ->
      fun v ->
        for s = lo to hi do
          Array.unsafe_set v (Array.unsafe_get d s)
            (Array.unsafe_get v (Array.unsafe_get a s)
            lor Array.unsafe_get v (Array.unsafe_get b s))
        done
  | 4 (* nand2 *) ->
      fun v ->
        for s = lo to hi do
          Array.unsafe_set v (Array.unsafe_get d s)
            (lnot
               (Array.unsafe_get v (Array.unsafe_get a s)
               land Array.unsafe_get v (Array.unsafe_get b s)))
        done
  | 5 (* nor2 *) ->
      fun v ->
        for s = lo to hi do
          Array.unsafe_set v (Array.unsafe_get d s)
            (lnot
               (Array.unsafe_get v (Array.unsafe_get a s)
               lor Array.unsafe_get v (Array.unsafe_get b s)))
        done
  | 6 (* xor *) ->
      fun v ->
        for s = lo to hi do
          Array.unsafe_set v (Array.unsafe_get d s)
            (Array.unsafe_get v (Array.unsafe_get a s)
            lxor Array.unsafe_get v (Array.unsafe_get b s))
        done
  | 7 (* xnor *) ->
      fun v ->
        for s = lo to hi do
          Array.unsafe_set v (Array.unsafe_get d s)
            (lnot
               (Array.unsafe_get v (Array.unsafe_get a s)
               lxor Array.unsafe_get v (Array.unsafe_get b s)))
        done
  | 8 (* mux: fa = select, fb = data0, fc = data1 *) ->
      fun v ->
        for s = lo to hi do
          let sel = Array.unsafe_get v (Array.unsafe_get a s) in
          Array.unsafe_set v (Array.unsafe_get d s)
            (lnot sel land Array.unsafe_get v (Array.unsafe_get b s)
            lor (sel land Array.unsafe_get v (Array.unsafe_get c s)))
        done
  | 9 (* andn *) ->
      fun v ->
        for s = lo to hi do
          let o = Array.unsafe_get foff s
          and e = Array.unsafe_get foff (s + 1) in
          let acc = ref (Array.unsafe_get v (Array.unsafe_get fidx o)) in
          for k = o + 1 to e - 1 do
            acc := !acc land Array.unsafe_get v (Array.unsafe_get fidx k)
          done;
          Array.unsafe_set v (Array.unsafe_get d s) !acc
        done
  | 10 (* orn *) ->
      fun v ->
        for s = lo to hi do
          let o = Array.unsafe_get foff s
          and e = Array.unsafe_get foff (s + 1) in
          let acc = ref (Array.unsafe_get v (Array.unsafe_get fidx o)) in
          for k = o + 1 to e - 1 do
            acc := !acc lor Array.unsafe_get v (Array.unsafe_get fidx k)
          done;
          Array.unsafe_set v (Array.unsafe_get d s) !acc
        done
  | 11 (* nandn *) ->
      fun v ->
        for s = lo to hi do
          let o = Array.unsafe_get foff s
          and e = Array.unsafe_get foff (s + 1) in
          let acc = ref (Array.unsafe_get v (Array.unsafe_get fidx o)) in
          for k = o + 1 to e - 1 do
            acc := !acc land Array.unsafe_get v (Array.unsafe_get fidx k)
          done;
          Array.unsafe_set v (Array.unsafe_get d s) (lnot !acc)
        done
  | 12 (* norn *) ->
      fun v ->
        for s = lo to hi do
          let o = Array.unsafe_get foff s
          and e = Array.unsafe_get foff (s + 1) in
          let acc = ref (Array.unsafe_get v (Array.unsafe_get fidx o)) in
          for k = o + 1 to e - 1 do
            acc := !acc lor Array.unsafe_get v (Array.unsafe_get fidx k)
          done;
          Array.unsafe_set v (Array.unsafe_get d s) (lnot !acc)
        done
  | _ -> assert false

(* --- the construction-time bounds proof ---

   Everything the hot loops access unsafely is checked here, once, after
   the schedule is built: slot destinations and every pin index are in
   [0, n); CSR offsets are monotone and cover exactly [fidx]; specialized
   pins agree with the CSR pool; every pin of a slot settles strictly
   before the slot does (lower level, or a level-0 source); segments
   tile [0, nslots) exactly and stay inside one level; the accounting
   order is a permutation of the node ids. A failure here is a compiler
   bug, reported as [Failure] with a diagnostic — the run never reaches
   an unchecked access. *)
let verify p =
  let fail fmt = Printf.ksprintf failwith fmt in
  let check_id what i =
    if i < 0 || i >= p.n then fail "Kernel.verify: %s %d out of range" what i
  in
  if Array.length p.foff <> p.nslots + 1 then fail "Kernel.verify: foff length";
  if p.foff.(0) <> 0 || p.foff.(p.nslots) <> Array.length p.fidx then
    fail "Kernel.verify: CSR does not cover the pool";
  let levels = Netlist.comb_levels p.net in
  for s = 0 to p.nslots - 1 do
    check_id "dst" p.dst.(s);
    if p.foff.(s) > p.foff.(s + 1) then fail "Kernel.verify: CSR not monotone";
    let arity = p.foff.(s + 1) - p.foff.(s) in
    for k = p.foff.(s) to p.foff.(s + 1) - 1 do
      check_id "fanin" p.fidx.(k);
      if levels.(p.fidx.(k)) >= levels.(p.dst.(s)) then
        fail "Kernel.verify: slot %d reads node %d of its own or a later level"
          s p.fidx.(k)
    done;
    if arity >= 1 && p.fa.(s) <> p.fidx.(p.foff.(s)) then
      fail "Kernel.verify: fa disagrees with the CSR pool at slot %d" s;
    if arity >= 2 && p.fb.(s) <> p.fidx.(p.foff.(s) + 1) then
      fail "Kernel.verify: fb disagrees with the CSR pool at slot %d" s;
    if arity >= 3 && p.fc.(s) <> p.fidx.(p.foff.(s) + 2) then
      fail "Kernel.verify: fc disagrees with the CSR pool at slot %d" s;
    check_id "fa" p.fa.(s);
    check_id "fb" p.fb.(s);
    check_id "fc" p.fc.(s)
  done;
  (* segments tile the slots and never straddle a level boundary *)
  let covered = ref 0 in
  Array.iteri
    (fun gi g ->
      if g.lo <> !covered then fail "Kernel.verify: segment %d leaves a gap" gi;
      if g.hi < g.lo then fail "Kernel.verify: empty segment %d" gi;
      if levels.(p.dst.(g.lo)) <> levels.(p.dst.(g.hi)) then
        fail "Kernel.verify: segment %d straddles levels" gi;
      for s = g.lo to g.hi do
        match opcode_of p.net.Netlist.nodes.(p.dst.(s)).Netlist.kind with
        | Some op when op = g.op -> ()
        | _ -> fail "Kernel.verify: slot %d opcode mismatch in segment %d" s gi
      done;
      covered := g.hi + 1)
    p.segs;
  if !covered <> p.nslots then fail "Kernel.verify: segments do not cover slots";
  if Array.length p.level_off <> p.nlevels + 1 then
    fail "Kernel.verify: level_off length";
  (* the accounting order is a permutation of all node ids *)
  if Array.length p.acct_order <> p.n then fail "Kernel.verify: acct length";
  if Array.length p.caps_acct <> p.n then
    fail "Kernel.verify: caps_acct length";
  let seen = Array.make p.n false in
  Array.iter
    (fun i ->
      check_id "acct" i;
      if seen.(i) then fail "Kernel.verify: node %d accounted twice" i;
      seen.(i) <- true)
    p.acct_order;
  Array.iter (fun (i, _) -> check_id "const" i) p.const_init;
  Array.iter (fun i -> check_id "dff_dst" i) p.dff_dst;
  Array.iter (fun i -> check_id "dff_src" i) p.dff_src;
  Array.iter (fun i -> check_id "input" i) p.input_ids

let tel_compiles = Hlp_util.Telemetry.counter "kernel.compiles"
let tel_compile_time = Hlp_util.Telemetry.timer "kernel.compile"
let tel_steps = Hlp_util.Telemetry.counter "kernel.steps"
let tel_lane_cycles = Hlp_util.Telemetry.counter "kernel.lane_cycles"
let tel_evals = Hlp_util.Telemetry.counter "kernel.word_evals"
let tel_popcounts = Hlp_util.Telemetry.counter "kernel.popcount_ops"

let compile ?caps net =
  Hlp_util.Telemetry.incr tel_compiles;
  Hlp_util.Telemetry.time tel_compile_time @@ fun () ->
  Hlp_util.Trace.span
    ~args:(fun () ->
      [ ("gates", Hlp_util.Json.Int (Netlist.num_gates net));
        ("nodes", Hlp_util.Json.Int (Netlist.num_nodes net)) ])
    "kernel.compile"
  @@ fun () ->
  Netlist.validate net;
  let n = Netlist.num_nodes net in
  let caps =
    match caps with
    | Some c ->
        if Array.length c <> n then invalid_arg "Kernel.compile: caps length";
        c
    | None -> Netlist.node_capacitance net
  in
  let levels = Netlist.comb_levels net in
  let nodes = net.Netlist.nodes in
  (* slots in (level, opcode, id) order: level-major for correctness,
     opcode-grouped within a level so segments are maximal runs, id order
     inside a group for determinism *)
  let slot_ids = ref [] in
  for i = n - 1 downto 0 do
    if opcode_of nodes.(i).Netlist.kind <> None then slot_ids := i :: !slot_ids
  done;
  let order = Array.of_list !slot_ids in
  let op_of i = Option.get (opcode_of nodes.(i).Netlist.kind) in
  Array.sort
    (fun x y ->
      let c = compare levels.(x) levels.(y) in
      if c <> 0 then c
      else
        let c = compare (op_of x) (op_of y) in
        if c <> 0 then c else compare x y)
    order;
  let nslots = Array.length order in
  let dst = Array.make nslots 0 in
  let fa = Array.make nslots 0 in
  let fb = Array.make nslots 0 in
  let fc = Array.make nslots 0 in
  let npins =
    Array.fold_left
      (fun acc i -> acc + Array.length nodes.(i).Netlist.fanin)
      0 order
  in
  let foff = Array.make (nslots + 1) 0 in
  let fidx = Array.make (max 1 npins) 0 in
  let pos = ref 0 in
  Array.iteri
    (fun s i ->
      dst.(s) <- i;
      let f = nodes.(i).Netlist.fanin in
      foff.(s) <- !pos;
      Array.iteri
        (fun k w ->
          fidx.(!pos + k) <- w;
          if k = 0 then fa.(s) <- w
          else if k = 1 then fb.(s) <- w
          else if k = 2 then fc.(s) <- w)
        f;
      pos := !pos + Array.length f)
    order;
  foff.(nslots) <- !pos;
  let fidx = if npins = 0 then [||] else fidx in
  let foff = if npins = 0 then Array.make (nslots + 1) 0 else foff in
  (* maximal same-opcode runs, respecting level boundaries by construction
     of the sort order *)
  let segs = ref [] in
  let s = ref 0 in
  while !s < nslots do
    let op = op_of dst.(!s) and lv = levels.(dst.(!s)) in
    let e = ref !s in
    while
      !e + 1 < nslots
      && op_of dst.(!e + 1) = op
      && levels.(dst.(!e + 1)) = lv
    do
      incr e
    done;
    segs := { op; lo = !s; hi = !e } :: !segs;
    s := !e + 1
  done;
  let segs = Array.of_list (List.rev !segs) in
  let nlevels =
    if nslots = 0 then 0 else levels.(dst.(nslots - 1))
  in
  let level_off = Array.make (nlevels + 1) 0 in
  (* level l's segments are level_off.(l-1) .. level_off.(l)-1 when levels
     are 1-based for slots; store boundaries by scanning *)
  let () =
    let gi = ref 0 in
    for l = 1 to nlevels do
      level_off.(l - 1) <- !gi;
      while !gi < Array.length segs && levels.(dst.(segs.(!gi).lo)) = l do
        incr gi
      done
    done;
    if nlevels > 0 then level_off.(nlevels) <- Array.length segs
  in
  (* fan-out masks: which (saturated) levels consume each level's outputs;
     register data pins count as level 0 consumers of the next cycle *)
  let level_fanout_masks = Array.make (nlevels + 1) 0 in
  Array.iteri
    (fun i (node : Netlist.node) ->
      let consumer_level =
        match node.Netlist.kind with
        | Gate.Input | Gate.Const _ -> -1
        | Gate.Dff -> 0
        | _ -> levels.(i)
      in
      if consumer_level >= 0 then
        Array.iter
          (fun w ->
            let src = min levels.(w) nlevels in
            level_fanout_masks.(src) <-
              level_fanout_masks.(src) lor (1 lsl min consumer_level 62))
          node.Netlist.fanin)
    nodes;
  (* chronological accounting order: registers (declaration order), then
     primary inputs, then every other node in id order — exactly the
     order Bitsim's [set] charges lanes in *)
  let is_latched = Array.make n false in
  Array.iter (fun w -> is_latched.(w) <- true) net.Netlist.dffs;
  Array.iter (fun w -> is_latched.(w) <- true) net.Netlist.inputs;
  let rest = ref [] in
  for i = n - 1 downto 0 do
    if not is_latched.(i) then rest := i :: !rest
  done;
  let acct_order =
    Array.concat
      [ net.Netlist.dffs; net.Netlist.inputs; Array.of_list !rest ]
  in
  let const_init = ref [] in
  Array.iteri
    (fun i (node : Netlist.node) ->
      match node.Netlist.kind with
      | Gate.Const b -> const_init := (i, broadcast b) :: !const_init
      | _ -> ())
    nodes;
  let p =
    {
      net;
      caps;
      n;
      nslots;
      dst;
      fa;
      fb;
      fc;
      foff;
      fidx;
      segs;
      passes = Array.map (seg_pass ~dst ~fa ~fb ~fc ~foff ~fidx) segs;
      nlevels;
      level_off;
      level_fanout_masks;
      acct_order;
      caps_acct = Array.map (fun i -> caps.(i)) acct_order;
      lanes_fast =
        Array.for_all (fun c -> Float.is_finite c && c >= 0.0) caps;
      dff_dst = net.Netlist.dffs;
      dff_src =
        Array.map
          (fun w -> nodes.(w).Netlist.fanin.(0))
          net.Netlist.dffs;
      input_ids = net.Netlist.inputs;
      const_init = Array.of_list (List.rev !const_init);
      dff_init_words =
        Array.map broadcast net.Netlist.dff_init;
    }
  in
  verify p;
  p

(* --- fingerprint-keyed kernel cache ---

   Compiling is cheap (one pass over the netlist) but the consumers that
   matter — Monte Carlo campaigns, the batch runner, the estimation
   service — replay the same circuit thousands of times, often
   rebuilding the Netlist value per request. The cache turns those
   recompiles into a fingerprint lookup; compiled plans are immutable,
   so sharing them across domains is safe. A custom capacitance table is
   not part of the structural fingerprint, so [~caps] bypasses the
   cache. *)

let cache : t Netcache.t = Netcache.create ~capacity:32 ~name:"kernel" ()

let of_netlist ?caps net =
  match caps with
  | Some _ -> compile ?caps net
  | None ->
      Netcache.find_or_compute cache ~key:(Netlist.fingerprint net) (fun () ->
          compile net)

let clear_cache () = ignore (Netcache.clear cache)
let cache_length () = Netcache.length cache

(* --- replay state --- *)

type s = {
  plan : t;
  mutable cur : int array;  (* settled word per node, this cycle *)
  mutable prv : int array;  (* settled word per node, previous cycle *)
  deltas : int array;  (* scratch: per-step delta word, accounting order *)
  toggles : int array;
  highs : int array;
  lane_switched : float array;
  track_lanes : bool;
  mutable pops : int;
  mutable ncycles : int;
  mutable counting : bool;
  mutable first : bool;  (* reset state must survive until the first input *)
}

let create ?(track_lanes = false) plan =
  let n = plan.n in
  let cur = Array.make n 0 in
  Array.iteri
    (fun j w -> cur.(w) <- plan.dff_init_words.(j))
    plan.dff_dst;
  Array.iter (fun (i, w) -> cur.(i) <- w) plan.const_init;
  (* settle the reset state through the compiled schedule; nothing is
     charged for power-up, same as the interpreters *)
  Array.iter (fun pass -> pass cur) plan.passes;
  {
    plan;
    cur;
    prv = Array.copy cur;
    deltas = Array.make n 0;
    toggles = Array.make n 0;
    highs = Array.make n 0;
    lane_switched = Array.make lanes 0.0;
    track_lanes;
    pops = 0;
    ncycles = 0;
    counting = true;
    first = true;
  }

let step s inputs =
  let p = s.plan in
  assert (Array.length inputs = Array.length p.input_ids);
  (* fault-injection point: a gate evaluation raising mid-step *)
  Hlp_util.Faultinject.trip Hlp_util.Faultinject.Gate_eval;
  (* double buffer: [old] is last cycle's settled state, [nw] (the buffer
     from two cycles ago) is overwritten completely — every node is either
     latched, driven, settled, or a constant initialized at creation *)
  let old = s.cur and nw = s.prv in
  let dd = p.dff_dst in
  (* clock edge: latch data pins as they settled last cycle; the first
     edge re-captures the reset state *)
  if s.first then begin
    s.first <- false;
    for j = 0 to Array.length dd - 1 do
      let w = Array.unsafe_get dd j in
      Array.unsafe_set nw w (Array.unsafe_get old w)
    done
  end
  else begin
    let ds = p.dff_src in
    for j = 0 to Array.length dd - 1 do
      Array.unsafe_set nw (Array.unsafe_get dd j)
        (Array.unsafe_get old (Array.unsafe_get ds j))
    done
  end;
  let ins = p.input_ids in
  for k = 0 to Array.length ins - 1 do
    Array.unsafe_set nw (Array.unsafe_get ins k) (Array.unsafe_get inputs k)
  done;
  (* settle: the compiled per-level schedule *)
  let passes = p.passes in
  for q = 0 to Array.length passes - 1 do
    (Array.unsafe_get passes q) nw
  done;
  if s.counting then begin
    (* delta accounting in Bitsim's chronological charge order, so the
       per-lane float sums are bit-identical to the interpreter's *)
    let order = p.acct_order and toggles = s.toggles in
    if s.track_lanes && p.lanes_fast then begin
      (* record the delta words densely, then charge lanes lane-major
         (bit-identical to the scatter walk, see [accumulate_lanes]) *)
      let deltas = s.deltas in
      for k = 0 to Array.length order - 1 do
        let i = Array.unsafe_get order k in
        let d = Array.unsafe_get old i lxor Array.unsafe_get nw i in
        Array.unsafe_set deltas k d;
        if d <> 0 then begin
          Array.unsafe_set toggles i
            (Array.unsafe_get toggles i + Hlp_util.Bits.popcount d);
          s.pops <- s.pops + 1
        end
      done;
      accumulate_lanes s.lane_switched deltas p.caps_acct p.n
    end
    else begin
      let caps = p.caps in
      for k = 0 to Array.length order - 1 do
        let i = Array.unsafe_get order k in
        let d = Array.unsafe_get old i lxor Array.unsafe_get nw i in
        if d <> 0 then begin
          Array.unsafe_set toggles i
            (Array.unsafe_get toggles i + Hlp_util.Bits.popcount d);
          s.pops <- s.pops + 1;
          if s.track_lanes then
            Bitsim.scan_lanes s.lane_switched (Array.unsafe_get caps i) d
        end
      done
    end;
    let highs = s.highs in
    for i = 0 to p.n - 1 do
      Array.unsafe_set highs i
        (Array.unsafe_get highs i
        + Hlp_util.Bits.popcount (Array.unsafe_get nw i))
    done;
    s.pops <- s.pops + p.n
  end;
  s.cur <- nw;
  s.prv <- old;
  s.ncycles <- s.ncycles + 1;
  if Hlp_util.Telemetry.enabled () then begin
    Hlp_util.Telemetry.incr tel_steps;
    Hlp_util.Telemetry.add tel_lane_cycles lanes;
    Hlp_util.Telemetry.add tel_evals p.nslots;
    Hlp_util.Telemetry.add tel_popcounts s.pops
  end;
  s.pops <- 0

let step_scalar s inputs =
  step s (Array.map (fun b -> if b then 1 else 0) inputs)

let value s w = s.cur.(w)
let value_bool s w = s.cur.(w) land 1 <> 0
let cycles s = s.ncycles
let toggle_counts s = s.toggles
let high_counts s = s.highs
let plan s = s.plan

let switched_capacitance s =
  (* same formula, same iteration order as Bitsim: derived from the exact
     integer toggle counts, independent of evaluation order *)
  let acc = ref 0.0 in
  Array.iteri
    (fun i t -> acc := !acc +. (s.plan.caps.(i) *. float_of_int t))
    s.toggles;
  !acc

let lane_switched_capacitance s =
  if not s.track_lanes then
    invalid_arg "Kernel.lane_switched_capacitance: created without ~track_lanes";
  Array.copy s.lane_switched

let set_counting s b = s.counting <- b

let reset_counters s =
  Array.fill s.toggles 0 (Array.length s.toggles) 0;
  Array.fill s.highs 0 (Array.length s.highs) 0;
  Array.fill s.lane_switched 0 lanes 0.0;
  s.ncycles <- 0

let output_words s =
  let outs = s.plan.net.Netlist.outputs in
  let res = Array.make lanes 0 in
  Array.iteri
    (fun k (_, w) ->
      let v = s.cur.(w) in
      if v <> 0 then
        for j = 0 to lanes - 1 do
          if (v lsr j) land 1 = 1 then res.(j) <- res.(j) lor (1 lsl k)
        done)
    outs;
  res

let run s input_at n =
  for i = 0 to n - 1 do
    step s (input_at i)
  done

(* --- compile-time structure, for tests, stats, and the design docs --- *)

type stats = {
  nodes : int;
  slots : int;
  levels : int;
  segments : int;
  pool : int;  (* flat fanin pool length *)
  widest_level : int;  (* max slots in one level *)
}

let stats p =
  let widest = ref 0 in
  for l = 0 to p.nlevels - 1 do
    let glo = p.level_off.(l) and ghi = p.level_off.(l + 1) in
    if ghi > glo then begin
      let w = p.segs.(ghi - 1).hi - p.segs.(glo).lo + 1 in
      if w > !widest then widest := w
    end
  done;
  {
    nodes = p.n;
    slots = p.nslots;
    levels = p.nlevels;
    segments = Array.length p.segs;
    pool = Array.length p.fidx;
    widest_level = !widest;
  }

let level_fanout_mask p l =
  if l < 0 || l >= Array.length p.level_fanout_masks then
    invalid_arg "Kernel.level_fanout_mask";
  p.level_fanout_masks.(l)

let stats_string p =
  let st = stats p in
  Printf.sprintf
    "%d slots over %d levels (%d segments, pool %d, widest level %d) of %d nodes"
    st.slots st.levels st.segments st.pool st.widest_level st.nodes

let segment_summary p =
  Array.map (fun g -> (opcode_name g.op, g.hi - g.lo + 1)) p.segs
