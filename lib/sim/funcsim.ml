open Hlp_logic

type s = {
  net : Netlist.t;
  caps : float array;
  values : bool array;
  toggles : int array;
  highs : int array;
  ncomb : int;  (* nodes re-evaluated per settle, for telemetry *)
  mutable switched : float;
  mutable ncycles : int;
  mutable counting : bool;
  mutable first : bool;  (* reset state must survive until the first input *)
}

let tel_cycles = Hlp_util.Telemetry.counter "funcsim.cycles"
let tel_evals = Hlp_util.Telemetry.counter "funcsim.gate_evals"

let create net =
  let n = Netlist.num_nodes net in
  let s =
    {
      net;
      caps = Netlist.node_capacitance net;
      values = Array.make n false;
      toggles = Array.make n 0;
      highs = Array.make n 0;
      ncomb =
        Array.fold_left
          (fun acc (node : Netlist.node) ->
            match node.Netlist.kind with
            | Gate.Input | Gate.Dff -> acc
            | _ -> acc + 1)
          0 net.Netlist.nodes;
      switched = 0.0;
      ncycles = 0;
      counting = true;
      first = true;
    }
  in
  (* initial state: dffs at their init value, inputs low, combinational
     logic settled; nothing is charged for the power-up transient *)
  Array.iteri
    (fun j w -> s.values.(w) <- net.Netlist.dff_init.(j))
    net.Netlist.dffs;
  Array.iteri
    (fun i (node : Netlist.node) ->
      match node.Netlist.kind with
      | Gate.Input | Gate.Dff -> ()
      | Gate.Const b -> s.values.(i) <- b
      | kind ->
          let pins = Array.map (fun w -> s.values.(w)) node.Netlist.fanin in
          s.values.(i) <- Gate.eval kind pins)
    net.Netlist.nodes;
  s

let set s i v =
  if s.values.(i) <> v then begin
    s.values.(i) <- v;
    if s.counting then begin
      s.toggles.(i) <- s.toggles.(i) + 1;
      s.switched <- s.switched +. s.caps.(i)
    end
  end

let step s inputs =
  let net = s.net in
  assert (Array.length inputs = Array.length net.Netlist.inputs);
  (* fault-injection point: a gate evaluation raising mid-step *)
  Hlp_util.Faultinject.trip Hlp_util.Faultinject.Gate_eval;
  (* clock edge: latch data pins as they settled last cycle; the first edge
     re-captures the reset state *)
  if s.first then s.first <- false
  else begin
    let nexts =
      Array.map
        (fun w -> s.values.(net.Netlist.nodes.(w).Netlist.fanin.(0)))
        net.Netlist.dffs
    in
    Array.iteri (fun j w -> set s w nexts.(j)) net.Netlist.dffs
  end;
  Array.iteri (fun k w -> set s w inputs.(k)) net.Netlist.inputs;
  (* settle combinational logic in topological (id) order *)
  Array.iteri
    (fun i (node : Netlist.node) ->
      match node.Netlist.kind with
      | Gate.Input | Gate.Dff -> ()
      | Gate.Const b -> set s i b
      | kind ->
          let pins = Array.map (fun w -> s.values.(w)) node.Netlist.fanin in
          set s i (Gate.eval kind pins))
    net.Netlist.nodes;
  if s.counting then
    Array.iteri (fun i v -> if v then s.highs.(i) <- s.highs.(i) + 1) s.values;
  s.ncycles <- s.ncycles + 1;
  if Hlp_util.Telemetry.enabled () then begin
    Hlp_util.Telemetry.incr tel_cycles;
    Hlp_util.Telemetry.add tel_evals s.ncomb
  end

let value s w = s.values.(w)

let outputs s =
  Array.map (fun (name, w) -> (name, s.values.(w))) s.net.Netlist.outputs

let output_word s ~prefix =
  let v = ref 0 in
  Array.iter
    (fun (name, w) ->
      if String.length name > String.length prefix
         && String.sub name 0 (String.length prefix) = prefix then
        match int_of_string_opt
                (String.sub name (String.length prefix)
                   (String.length name - String.length prefix))
        with
        | Some i -> if s.values.(w) then v := !v lor (1 lsl i)
        | None -> ())
    s.net.Netlist.outputs;
  !v

let cycles s = s.ncycles
let toggle_counts s = s.toggles
let high_counts s = s.highs
let switched_capacitance s = s.switched

let switched_capacitance_of s ~mask =
  let acc = ref 0.0 in
  Array.iteri
    (fun i t -> if mask.(i) then acc := !acc +. (float_of_int t *. s.caps.(i)))
    s.toggles;
  !acc

let reset_counters s =
  Array.fill s.toggles 0 (Array.length s.toggles) 0;
  Array.fill s.highs 0 (Array.length s.highs) 0;
  s.switched <- 0.0;
  s.ncycles <- 0

let restore s ~inputs ~switched ~cycles =
  if Netlist.num_dffs s.net > 0 then
    raise
      (Hlp_util.Err.invalid_input ~what:"Funcsim.restore"
         "sequential netlist: settled state is not a function of one vector");
  if Array.length inputs <> Array.length s.net.Netlist.inputs then
    raise
      (Hlp_util.Err.invalid_input ~what:"Funcsim.restore"
         "input vector width does not match the netlist");
  (* re-prime the node values by replaying the checkpointed last vector
     with accounting off, then install the exact accumulator bits: float
     addition is non-associative, so recomputing the sum would not give
     the byte-identical estimate a resumed run promises *)
  s.counting <- false;
  step s inputs;
  s.counting <- true;
  Array.fill s.toggles 0 (Array.length s.toggles) 0;
  Array.fill s.highs 0 (Array.length s.highs) 0;
  s.switched <- switched;
  s.ncycles <- cycles

let run s input_at n =
  for i = 0 to n - 1 do
    step s (input_at i)
  done

let average_activity s =
  if s.ncycles = 0 then 0.0
  else
    let total = Array.fold_left ( + ) 0 s.toggles in
    float_of_int total
    /. float_of_int (Array.length s.toggles)
    /. float_of_int s.ncycles
