(** Zero-delay (functional) cycle simulation with switched-capacitance
    accounting.

    One [step] is one clock cycle: flip-flops latch the values their data
    pins had after the previous settle, the new primary-input vector is
    applied, and the combinational logic settles in topological order. Every
    node toggle is charged its effective capacitance from
    {!Hlp_logic.Netlist.node_capacitance}, which makes the simulator the
    "gate-level power reference" all macro-models in the paper are compared
    against (zero-delay, so no glitch power — the event-driven simulator in
    {!Eventsim} adds that). *)

type s

val create : Hlp_logic.Netlist.t -> s

val step : s -> bool array -> unit
(** Apply one input vector (parallel to [net.inputs]). *)

val value : s -> Hlp_logic.Netlist.wire -> bool
(** Current settled value of a node. *)

val outputs : s -> (string * bool) array
val output_word : s -> prefix:string -> int
(** Recompose outputs named [prefix0], [prefix1], ... into an integer. *)

val cycles : s -> int
val toggle_counts : s -> int array
(** Per-node toggles since creation (inputs and flip-flops included). *)

val high_counts : s -> int array
(** Per-node count of cycles settled high, for signal probabilities. *)

val switched_capacitance : s -> float
(** Total capacitance switched so far (sum over toggles of the toggling
    node's effective capacitance). Average power is
    [0.5 * V^2 * f * switched_capacitance / cycles]. *)

val switched_capacitance_of : s -> mask:bool array -> float
(** Switched capacitance restricted to nodes selected by [mask] — used by
    the Table I experiment to split capacitance into execution units,
    registers, control, and interconnect. *)

val reset_counters : s -> unit
(** Zero the accounting without touching circuit state (for warm-up). *)

val restore : s -> inputs:bool array -> switched:float -> cycles:int -> unit
(** [restore s ~inputs ~switched ~cycles] rebuilds the exact simulator
    state a checkpoint recorded: node values are re-primed by replaying
    [inputs] (the last vector before the checkpoint) with accounting off,
    then the switched-capacitance accumulator and cycle count are
    installed {e bit-for-bit} — float addition is non-associative, so the
    accumulator must be transplanted, not recomputed, for a resumed
    Monte Carlo run to produce a byte-identical estimate. Per-node
    toggle/high counters restart from zero (they are diagnostics, not
    part of the estimate). Raises [Err.Error (Invalid_input _)] on a
    sequential netlist — its settled state is not a function of one
    vector — or a wrong-width vector. *)

val run : s -> (int -> bool array) -> int -> unit
(** [run s input_at n] steps [n] cycles with the given vector source. *)

val average_activity : s -> float
(** Mean toggles per node per cycle over all nodes — the E_avg of the
    entropy-based power expression. *)
