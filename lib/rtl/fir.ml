open Hlp_logic

type category = Exec_units | Registers_clock | Control_logic | Interconnect

let category_name = function
  | Exec_units -> "Execution units"
  | Registers_clock -> "Registers/clock"
  | Control_logic -> "Control logic"
  | Interconnect -> "Interconnect"

type design = {
  net : Netlist.t;
  category_of : category option array;
  taps : int array;
  width : int;
  sum_width : int;
}

let default_taps = [ 1; 2; 4; 8; 16; 31; 16; 8; 4; 2; 1 ]

let clog2 n =
  let rec go w = if 1 lsl w >= n then w else go (w + 1) in
  go 1

let build ?(taps = default_taps) ~width ~constant_mult () =
  let module B = Netlist.Builder in
  let b = B.create () in
  let tags = ref [] in
  let tagged cat f =
    let start = B.count b in
    let r = f () in
    tags := (start, B.count b, cat) :: !tags;
    r
  in
  let ntaps = List.length taps in
  let coeff_width = clog2 (1 + List.fold_left max 1 taps) in
  let sum_width = width + coeff_width + clog2 ntaps in
  (* input sample *)
  let x = B.inputs ~prefix:"x" b width in
  (* tap delay line *)
  let tap_words =
    tagged Registers_clock (fun () ->
        let rec chain prev i acc =
          if i = ntaps then List.rev acc
          else
            let t = Generators.register_word b prev in
            chain t (i + 1) (t :: acc)
        in
        chain x 0 [])
  in
  (* control: a free-running phase counter plus a one-hot decoder; the
     constant-mult variant needs a longer schedule, hence a wider counter
     and more decode terms (this is why Table I's control row grows) *)
  let control_bits = if constant_mult then 4 else 3 in
  let phase =
    tagged Control_logic (fun () ->
        let q = Array.make control_bits 0 in
        let rec build_bit i carry =
          if i = control_bits then ()
          else begin
            let _ =
              B.dff_feedback b (fun qw ->
                  q.(i) <- qw;
                  B.xor_ b qw carry)
            in
            let c = B.and_ b [ q.(i); carry ] in
            build_bit (i + 1) c
          end
        in
        build_bit 0 (B.const_ b true);
        let qn = Array.map (B.not_ b) q in
        let decode v =
          B.and_ b
            (List.init control_bits (fun k ->
                 if Hlp_util.Bits.bit v k then q.(k) else qn.(k)))
        in
        let lines = List.init (1 lsl control_bits) decode in
        (* the OR of a full one-hot decode is logically constant 1, so the
           steering muxes below stay transparent while the control fabric
           switches every cycle *)
        B.or_ b lines)
  in
  (* interconnect: steering from each tap toward its execution unit *)
  let routed =
    tagged Interconnect (fun () ->
        List.map
          (fun t ->
            let buffered = Array.map (fun w -> B.buf b w) t in
            if constant_mult then buffered
            else
              (* the general-multiplier datapath needs a coefficient-select
                 mux layer on the operand bus *)
              Array.map (fun w -> B.mux b ~sel:phase ~a0:w ~a1:w) buffered)
          tap_words)
  in
  (* execution units *)
  let products =
    tagged Exec_units (fun () ->
        List.map2
          (fun c t ->
            if constant_mult then begin
              (* CSD shift-add at the narrowest sufficient width; c * x
                 fits in width + coeff_width bits *)
              let p = Generators.constant_multiplier b t c ~width:(width + coeff_width) in
              Generators.zero_extend b p sum_width
            end
            else begin
              (* a general-purpose multiplier is sized for arbitrary
                 coefficients: full data width on both operands *)
              let cword =
                Generators.zero_extend b
                  (Generators.constant_word b ~width:coeff_width c)
                  width
              in
              let p = Generators.array_multiplier b t cword in
              Generators.zero_extend b p sum_width
            end)
          taps routed)
  in
  (* accumulation chain with every stage sized to its value bound (a real
     datapath does not carry a 20-bit adder where 14 bits suffice) *)
  let xmax = (1 lsl width) - 1 in
  let bounds = List.map (fun c -> c * xmax) taps in
  let total =
    tagged Exec_units (fun () ->
        let acc =
          List.fold_left2
            (fun acc p bound ->
              match acc with
              | None -> Some (p, bound)
              | Some (s, b_acc) ->
                  let nb = b_acc + bound in
                  let w = clog2 (nb + 1) in
                  let s' , _ =
                    Generators.ripple_adder b
                      (Generators.zero_extend b s w)
                      (Generators.zero_extend b p w)
                  in
                  Some (s', nb))
            None products bounds
        in
        match acc with Some (s, _) -> s | None -> assert false)
  in
  let total = Generators.zero_extend b total sum_width in
  (* output register *)
  let y = tagged Registers_clock (fun () -> Generators.register_word b total) in
  Array.iteri (fun i w -> B.output b (Printf.sprintf "y%d" i) w) y;
  let net = B.finish b in
  Netlist.validate net;
  let category_of = Array.make (Netlist.num_nodes net) None in
  List.iter
    (fun (start, stop, cat) ->
      for i = start to stop - 1 do
        category_of.(i) <- Some cat
      done)
    !tags;
  { net; category_of; taps = Array.of_list taps; width; sum_width }

let mask design cat =
  Array.map (fun c -> c = Some cat) design.category_of

let attribution_group design i =
  match design.category_of.(i) with
  | Some cat -> category_name cat
  | None -> "inputs"

type row = { category : category; switched : float; share : float }

type table = { rows : row list; total : float }

let measure ?(cycles = 400) ?(seed = 11) design =
  let sim = Hlp_sim.Funcsim.create design.net in
  let rng = Hlp_util.Prng.create seed in
  let width = Array.length design.net.Netlist.inputs in
  let trace = Hlp_sim.Streams.gaussian_walk rng ~width ~sigma:40.0 ~n:cycles in
  Hlp_sim.Funcsim.run sim (Hlp_sim.Streams.pack_fn ~widths:[ width ] [ trace ]) cycles;
  let per_cycle v = v /. float_of_int cycles in
  let categories = [ Exec_units; Registers_clock; Control_logic; Interconnect ] in
  let switched =
    List.map
      (fun cat ->
        (cat, per_cycle (Hlp_sim.Funcsim.switched_capacitance_of sim ~mask:(mask design cat))))
      categories
  in
  let total = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 switched in
  {
    rows =
      List.map
        (fun (category, v) ->
          { category; switched = v; share = (if total > 0.0 then v /. total else 0.0) })
        switched;
    total;
  }

(* Timing model matching the simulator: during cycle k (1-indexed) tap i of
   the delay line holds sample x_(k-1-i) and the output register holds the
   sum computed one cycle earlier, i.e. y_k = sum_i c_i * x_(k-2-i) with
   out-of-range samples reading as zero, truncated to [sum_width] bits. *)
let output_reference design trace =
  let sample j = if j >= 1 && j <= Array.length trace then trace.(j - 1) else 0 in
  let mask = Hlp_util.Bits.mask design.sum_width in
  Array.init (Array.length trace) (fun k0 ->
      let k = k0 + 1 in
      let acc = ref 0 in
      Array.iteri (fun i c -> acc := !acc + (c * sample (k - 2 - i))) design.taps;
      !acc land mask)
