(** Gate-level FIR filter datapaths with capacitance accounting by component
    category — the substrate of Table I.

    The paper's Table I reports the switched capacitance of a Tap FIR filter
    split into execution units / registers+clock / control logic /
    interconnect, before and after converting the coefficient
    multiplications into shift-add networks. We build both datapaths down to
    gates, tag every node with its category, simulate them on the same input
    stream, and read the four rows off the simulator. *)

type category = Exec_units | Registers_clock | Control_logic | Interconnect

val category_name : category -> string

type design = {
  net : Hlp_logic.Netlist.t;
  category_of : category option array;  (** per node; [None] for inputs *)
  taps : int array;  (** coefficients, in tap order *)
  width : int;  (** input sample width *)
  sum_width : int;  (** accumulator/output width *)
}

val build : ?taps:int list -> width:int -> constant_mult:bool -> unit -> design
(** Direct-form FIR with the given coefficient taps (default: a symmetric
    11-tap low-pass). [constant_mult:false] uses general array multipliers
    fed by constant coefficient words through a coefficient-select mux layer
    (the "before" column); [constant_mult:true] uses CSD shift-add networks
    (the "after" column) and a slightly larger sequencing controller, as in
    the paper where control capacitance grows after the transformation. *)

val mask : design -> category -> bool array
(** Node mask selecting a category, for
    {!Hlp_sim.Funcsim.switched_capacitance_of}. *)

val attribution_group : design -> int -> string
(** Grouping function for {!Hlp_power.Attribution}-style per-module
    rollups: the node's Table I category name, or ["inputs"] for untagged
    nodes (primary inputs). *)

type row = { category : category; switched : float; share : float }

type table = { rows : row list; total : float }

val measure : ?cycles:int -> ?seed:int -> design -> table
(** Simulate under a random sample stream and split the switched
    capacitance per cycle by category. *)

val output_reference : design -> int array -> int array
(** Bit-exact expected filter outputs for an input sample trace, for
    functional verification of both datapaths. *)
