open Hlp_logic

type entry = {
  node : int;
  kind : string;
  group : string;
  toggles : int;
  node_cap : float;
  switched : float;
  share : float;
}

type group_row = {
  group : string;
  g_switched : float;
  g_share : float;
  g_nodes : int;
}

type t = {
  entries : entry array;
  groups : group_row list;
  total : float;
  cycles : int;
}

let of_counts ?group net ~toggles ~cycles =
  let n = Netlist.num_nodes net in
  if Array.length toggles <> n then
    raise
      (Hlp_util.Err.invalid_input ~what:"Attribution.of_counts: toggles"
         (Printf.sprintf "%d counts for a %d-node netlist"
            (Array.length toggles) n));
  let group =
    match group with
    | Some g -> g
    | None -> fun i -> Gate.name net.Netlist.nodes.(i).Netlist.kind
  in
  let caps = Netlist.node_capacitance net in
  (* ascending-index sum of toggles * cap: the same expression, in the same
     order, as [Funcsim.switched_capacitance_of] with a full mask, so the
     attribution total IS the replay total (not merely close to it) *)
  let total = ref 0.0 in
  let switched = Array.make n 0.0 in
  for i = 0 to n - 1 do
    switched.(i) <- float_of_int toggles.(i) *. caps.(i);
    total := !total +. switched.(i)
  done;
  let total = !total in
  let share v = if total > 0.0 then v /. total else 0.0 in
  let entries =
    Array.init n (fun i ->
        { node = i;
          kind = Gate.name net.Netlist.nodes.(i).Netlist.kind;
          group = group i;
          toggles = toggles.(i);
          node_cap = caps.(i);
          switched = switched.(i);
          share = share switched.(i) })
  in
  Array.sort
    (fun a b ->
      match compare b.switched a.switched with
      | 0 -> compare a.node b.node
      | c -> c)
    entries;
  let tbl : (string, float ref * int ref) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun (e : entry) ->
      match Hashtbl.find_opt tbl e.group with
      | Some (s, c) ->
          s := !s +. e.switched;
          incr c
      | None -> Hashtbl.add tbl e.group (ref e.switched, ref 1))
    entries;
  let groups =
    Hashtbl.fold
      (fun g (s, c) acc ->
        { group = g; g_switched = !s; g_share = share !s; g_nodes = !c } :: acc)
      tbl []
  in
  let groups =
    List.sort
      (fun a b ->
        match compare b.g_switched a.g_switched with
        | 0 -> compare a.group b.group
        | c -> c)
      groups
  in
  { entries; groups; total; cycles }

let profile ?group net ~vector ~n =
  if n < 1 then
    raise
      (Hlp_util.Err.invalid_input ~what:"Attribution.profile: n"
         "need at least one cycle");
  Hlp_util.Trace.span
    ~args:(fun () ->
      [ ("nodes", Hlp_util.Json.Int (Netlist.num_nodes net));
        ("cycles", Hlp_util.Json.Int n) ])
    "attribution.profile"
  @@ fun () ->
  let sim = Hlp_sim.Funcsim.create net in
  Hlp_sim.Funcsim.run sim vector n;
  of_counts ?group net ~toggles:(Hlp_sim.Funcsim.toggle_counts sim) ~cycles:n

let top t k =
  let k = max 0 (min k (Array.length t.entries)) in
  Array.to_list (Array.sub t.entries 0 k)

let report ?(top_k = 20) t =
  let b = Buffer.create 1024 in
  Printf.bprintf b
    "switched-capacitance attribution: %d nodes, %d cycles, total %.6g\n"
    (Array.length t.entries) t.cycles t.total;
  Printf.bprintf b "  %-5s %-6s %-16s %-10s %10s %12s %7s\n" "rank" "node"
    "group" "kind" "toggles" "switched" "share";
  List.iteri
    (fun r e ->
      Printf.bprintf b "  %-5d %-6d %-16s %-10s %10d %12.6g %6.2f%%\n" (r + 1)
        e.node e.group e.kind e.toggles e.switched (100.0 *. e.share))
    (top t top_k);
  Printf.bprintf b "  by group:\n";
  List.iter
    (fun g ->
      Printf.bprintf b "  %-16s %4d nodes %12.6g %6.2f%%\n" g.group g.g_nodes
        g.g_switched (100.0 *. g.g_share))
    t.groups;
  Buffer.contents b

let json_value ?(top_k = 20) t =
  let open Hlp_util.Json in
  let entry e =
    Obj
      [ ("node", Int e.node);
        ("kind", Str e.kind);
        ("group", Str e.group);
        ("toggles", Int e.toggles);
        ("node_cap", Float e.node_cap);
        ("switched", Float e.switched);
        ("share", Float e.share) ]
  in
  let grp g =
    Obj
      [ ("group", Str g.group);
        ("nodes", Int g.g_nodes);
        ("switched", Float g.g_switched);
        ("share", Float g.g_share) ]
  in
  Obj
    [ ("cycles", Int t.cycles);
      ("total", Float t.total);
      ("top", List (List.map entry (top t top_k)));
      ("groups", List (List.map grp t.groups)) ]
