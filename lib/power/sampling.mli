(** Sampling-based RT-level power cosimulation (Section II-C2).

    A power cosimulator rides along an RT-level simulation of a long input
    stream. Three estimators are reproduced:

    - {e census}: evaluate the macro-model equation on every cycle
      (accurate w.r.t. the macro-model, maximum overhead, and still biased
      w.r.t. gate level when the stream differs from the training set);
    - {e sampler}: evaluate only on randomly marked cycles, several
      independent samples of at least 30 units each (Hsieh et al. [46] —
      ~50x fewer evaluations, ~1% deviation from census);
    - {e adaptive}: additionally run the expensive gate-level simulator on
      a small subsample and correct the macro-model with a ratio (regression)
      estimator, removing the training bias (census ~30% error becomes
      ~5%). *)

type t
(** A prepared cosimulation: per-cycle macro-model evaluations are lazy;
    per-cycle gate-level powers are computed on demand and counted. *)

val of_arrays : macro_values:float array -> gate_values:float array -> t
(** Assemble a cosimulation from already-computed per-transition values —
    for replaying recorded data and for tests that need precise control
    over the value streams. Validates at assembly instead of letting bad
    data surface downstream as an index error or a silent NaN estimate:
    mismatched lengths, empty arrays, and non-finite (poisoned) values
    raise the typed [Hlp_util.Err.Error (Invalid_input _)]. *)

val of_arrays_checked :
  macro_values:float array ->
  gate_values:float array ->
  (t, Hlp_util.Err.t) result
(** {!of_arrays} with the validation failure as a [result]. *)

val prepare :
  ?engine:Hlp_sim.Engine.t ->
  ?jobs:int ->
  Macromodel.model ->
  Macromodel.dut ->
  int array list ->
  t
(** [prepare model dut traces] sets up the cosimulation of the module under
    the given input streams (one per input word, equal lengths). The
    macro-model is evaluated cycle-by-cycle on the observed per-bit
    transitions (a bitwise-style cycle equation).

    [engine] (default [Scalar]) selects the gate-level simulation engine
    (see {!Hlp_sim.Engine}): [Bitparallel] replays the trace 63 cycles per
    word-wide step, [Parallel] additionally shards the replay and the
    macro-model evaluations across [jobs] domains. Output words and toggle
    counts are identical across engines; per-transition capacitances (and
    hence {!adaptive} estimates) agree up to float round-off, and sampler /
    census estimates are bit-identical.

    Input validation is typed: no streams, fewer than two cycles, unequal
    stream lengths, or a stream count that does not match the DUT's input
    words raise [Hlp_util.Err.Error (Invalid_input _)], as do poisoned
    (non-finite) per-transition values detected at assembly. *)

val prepare_journaled :
  ?engine:Hlp_sim.Engine.t ->
  ?jobs:int ->
  path:string ->
  Macromodel.model ->
  Macromodel.dut ->
  int array list ->
  t
(** {!prepare} behind a durable replay cache at [path] (a
    {!Hlp_util.Journal}). A complete cache whose header matches the
    circuit fingerprint, engine, and a digest of the input traces is
    loaded instead of re-simulating (counted in ["sampling.cache_hits"]);
    anything else — missing file, torn tail, parameter mismatch, a cache
    without its terminal done-marker because the writer was killed
    mid-write, or corrupt values — is treated as a miss: the streams are
    recomputed with {!prepare} and the cache rewritten (counted in
    ["sampling.cache_misses"]). Loaded values are revalidated through
    {!of_arrays_checked}, so a bad cache can cost time, never
    correctness. *)

val prepare_cached :
  ?engine:Hlp_sim.Engine.t ->
  ?jobs:int ->
  Macromodel.model ->
  Macromodel.dut ->
  int array list ->
  t
(** {!prepare} behind a process-local {!Hlp_logic.Netcache} — the serve
    daemon's hot sampler cache. The key binds the circuit fingerprint,
    the engine, a digest of the input traces, {e and} the model's kind
    and exact coefficient bits, so a hit is always the stream {!prepare}
    would have produced. Hits/misses surface as
    ["sampling.mem.cache_hits"] / ["sampling.mem.cache_misses"]. *)

val clear_prepare_cache : unit -> unit
(** Drop every entry of the {!prepare_cached} cache (tests). *)

val cycles : t -> int

val gate_reference : t -> float
(** True mean switched capacitance per cycle from full gate-level
    simulation (the accuracy yardstick; not an estimator). *)

type estimate = {
  value : float;  (** estimated mean capacitance per cycle *)
  macro_evaluations : int;  (** macro-model equation evaluations used *)
  gate_cycles : int;  (** gate-level simulation cycles used *)
}

val census : t -> estimate

val sampler : ?num_samples:int -> ?sample_size:int -> seed:int -> t -> estimate
(** Simple random sampling: [num_samples] (default 5) independent samples
    of [sample_size] (default 40, >= 30 for normality as the paper
    requires) marked cycles; the estimate is the mean of sample means. On a
    10^4-cycle stream this is the paper's ~50x overhead reduction. *)

val adaptive : ?sample_size:int -> seed:int -> t -> estimate
(** Ratio-estimator correction: gate-level power is simulated on a small
    random sample (default 40 cycles); the estimate is
    [(mean gate / mean macro on the sample) * census macro mean]. *)
