(** Per-gate switched-capacitance attribution: which nodes (and which
    module groups) a design's power actually goes to.

    The estimators in this library answer "how much"; attribution answers
    "where". A profile replays a trace on the scalar reference simulator
    ({!Hlp_sim.Funcsim}, the gate-level power reference) and charges each
    node its effective capacitance per toggle, exactly as the simulator
    does — so the per-node values sum to the replay's total switched
    capacitance, and a grouped rollup (e.g. the Table I categories of
    {!Hlp_rtl.Fir}, or {!Hlp_rtl.Module_energy}-style functional-unit
    groups) partitions that total with nothing lost.

    Grouping is a plain [int -> string] function over node ids, so any
    layer can supply its own partition without this module depending on
    it; the default groups by gate kind ({!Hlp_logic.Gate.name}). *)

type entry = {
  node : int;
  kind : string;  (** gate kind name *)
  group : string;
  toggles : int;
  node_cap : float;  (** effective capacitance switched per toggle *)
  switched : float;  (** [node_cap * toggles] over the whole replay *)
  share : float;  (** fraction of {!field-total} (0 when total is 0) *)
}

type group_row = {
  group : string;
  g_switched : float;
  g_share : float;
  g_nodes : int;  (** nodes in the group *)
}

type t = {
  entries : entry array;  (** every node, hottest first *)
  groups : group_row list;  (** rollup by group, hottest first *)
  total : float;  (** sum of all [switched]; equals the replay total *)
  cycles : int;
}

val of_counts :
  ?group:(int -> string) ->
  Hlp_logic.Netlist.t ->
  toggles:int array ->
  cycles:int ->
  t
(** Attribute from raw per-node toggle counts (as returned by
    {!Hlp_sim.Funcsim.toggle_counts}), without re-simulating. [toggles]
    must have one entry per netlist node. *)

val profile :
  ?group:(int -> string) ->
  Hlp_logic.Netlist.t ->
  vector:(int -> bool array) ->
  n:int ->
  t
(** Replay [n] cycles of [vector] on a fresh scalar simulator and
    attribute the switched capacitance. [n >= 1]; raises the typed
    [Invalid_input] otherwise. *)

val top : t -> int -> entry list
(** The [k] hottest nodes (fewer if the design is smaller). *)

val report : ?top_k:int -> t -> string
(** Human-readable hotspot table: the [top_k] (default 20) hottest nodes
    followed by the per-group rollup. *)

val json_value : ?top_k:int -> t -> Hlp_util.Json.t
(** Machine-readable form of {!report}: [{"cycles", "total",
    "top": [...], "groups": [...]}]. *)
