(** The estimation service: protocol schema, dispatch, and hot caches of
    the [hlpower serve] daemon.

    {!Hlp_util.Server} moves CRC-framed payloads; this module gives the
    payloads meaning. A request is one compact JSON object; the response
    is an envelope [{"id", "rid", "ok", "cached", "result"}] on success
    or [{"id", "rid", "ok": false, "error": {"class", "message",
    "exit_code"}}] on failure, with ["error"]["class"] drawn from the
    {!Hlp_util.Err} taxonomy (so a shed request carries
    ["overloaded"]/70 — admission control speaks the same typed language
    as the batch runner).

    {b Request ids.} Every request carries a ["rid"] string (the
    builders stamp a fresh client-side one when not given); the service
    threads it into the transport's {!Hlp_util.Server.ctx} — so the
    access log and the ["service.<op>"] trace spans record it — and
    echoes it in the response envelope. One string therefore finds a
    request on both sides of the wire.

    {b Ops.}
    - ["ping"]: liveness; an optional ["sleep_s"] occupies the worker —
      the deterministic way tests and the bench provoke overload.
    - ["estimate"]: guarded estimation of a generator circuit
      (["circuit"], ["width"], ["engine"], ["seed"],
      ["relative_precision"], optional ["max_cycles"], ["node_limit"]).
    - ["sampler"]: macro-model cosimulation of the circuit (census,
      gate reference, and a sampled estimate).
    - ["stats"]: cache occupancy (including in-flight and coalesced
      estimate counts) and breaker state — a thin alias for the same
      fields [metrics] serves.
    - ["metrics"]: the full flight-recorder snapshot — the [stats]
      fields plus uptime, every {!Hlp_util.Telemetry} counter and
      histogram (buckets + p50/p90/p99/p999), and per-cache
      occupancy/hit-ratio objects. {!prometheus_of_metrics} renders the
      result in Prometheus text exposition format.

    {b Idempotency.} Every op is pure by construction and therefore safe
    to retry ({!Hlp_util.Server.Client} retries them freely): [estimate]
    is deterministic in (netlist, engine, seed, precision, budgets) and
    served from a cache of serialized results; [sampler] is
    deterministic in (circuit, width, engine, seed, cycles); [ping] and
    [stats] only read. No op mutates state a replay could double-apply —
    the caches are memoization, so recomputation changes occupancy, not
    answers.

    {b Coalescing.} Concurrent identical [estimate] requests are
    single-flight: the estimate cache's in-flight table lets the first
    request compute while the rest park and share the result
    (["server.estimates.coalesced"] counts the joiners), so a
    thundering herd of N identical requests costs one computation. A
    failing computation propagates its typed error to every joiner and
    caches nothing.

    {b Hot caches} (all {!Hlp_logic.Netcache}, telemetry under
    [server.*]): constructed netlists (["server.netlists"]), successful
    symbolic capacitances (["server.symbolic"], shared with
    {!Probprop.estimate_guarded}'s [symbolic_cache]), fitted macro-models
    (["server.models"]), and finished estimates (["server.estimates"],
    keyed by fingerprint + engine + seed + precision + cycle budget +
    node limit). The estimate cache stores the {e serialized} result
    object, so a warm answer is byte-identical to the cold one by
    construction; compiled kernel plans share {!Hlp_sim.Kernel}'s
    process-wide cache. Failed estimates are never cached.

    {b Breaker.} One {!Hlp_util.Supervisor.breaker} guards the symbolic
    BDD stage: repeated budget trips open it and estimates route
    straight to Monte Carlo ([try_symbolic:false]) until the cooldown
    probe succeeds. *)

type t

val create :
  ?netlist_capacity:int ->
  ?estimate_capacity:int ->
  ?failure_threshold:int ->
  ?cooldown_s:float ->
  unit ->
  t
(** A fresh service: empty caches (default capacities 64 netlists, 256
    estimates) and a closed breaker (default threshold 3, cooldown 30s). *)

val handle : t -> Hlp_util.Server.ctx -> string -> string
(** The {!Hlp_util.Server.handler}: request payload to response payload.
    Never raises — malformed JSON, unknown ops/circuits/engines, typed
    estimation errors, and internal exceptions all come back as error
    envelopes. Fills the context's attribution fields (rid, op, cache
    key and hit/miss/coalesced outcome, typed status) for the
    transport's access log and per-op histograms. *)

(** {1 Crash-only lifecycle}

    The daemon's warm state is rebuildable but expensive (the warm/cold
    ratio E39 pins is ~40×), so the serve loop periodically spills the
    two caches whose values have a serial form — finished estimates
    (stored serialized, so a restored hit is byte-identical by
    construction) and symbolic capacitances — to one snapshot file, and
    a restarted daemon rehydrates from it. The format is a stream of
    {!Hlp_util.Journal} CRC-framed records written with
    {!Hlp_util.Journal.write_atomic}: a header binding
    {!snapshot_version} and {!snapshot_recipe} (the estimate cache-key
    derivation, spelled out — key-recipe drift invalidates old
    snapshots instead of mis-keying them), the entries, and a trailer
    carrying the entry count. Restore is paranoid: torn bytes, a CRC
    miss, version or recipe skew, a count mismatch, or one undecodable
    record each degrade to a counted cold start ([`Cold reason]) —
    never an exception, never a partially-trusted cache. Counters under
    ["server.snapshot.*"]: [saves], [restores], [restored_entries],
    [cold_starts], [torn], [version_mismatch], [recipe_mismatch].

    Netlists and prepared models are not spilled: their values are live
    structures with no serial form, and they rebuild on demand behind
    single-flight misses. *)

val snapshot_version : int

val snapshot_recipe : string
(** The estimate cache-key derivation the snapshot binds. Any change to
    how [op_estimate] folds its key {b must} change this string. *)

val save_snapshot : t -> path:string -> int
(** Spill the estimate and symbolic caches to [path] atomically,
    returning the number of entries written. Raises [Sys_error] on an
    unwritable path (the serve loop catches and counts, never dies). *)

val load_snapshot : t -> path:string -> [ `Restored of int | `Cold of string ]
(** Rehydrate the caches from [path]. [`Restored n] installed [n]
    entries; [`Cold reason] ([reason] one of ["absent"], ["torn"],
    ["unreadable"], ["malformed"], ["truncated"], ["version-mismatch"],
    ["recipe-mismatch"]) means the caches were left (or wiped back to)
    empty. Never raises. *)

val trim : ?fraction:float -> t -> int
(** Evict [fraction] (default 0.25, clamped to [0,1]) of each cache in
    second-chance order, returning entries evicted — the memory-pressure
    relief valve {!Hlp_util.Server}'s soft budget invokes. *)

val overload_response : Hlp_util.Err.t -> string
(** The shed frame ([serve ~overload]): an error envelope (id -1)
    carrying the typed [Overloaded] plus the [retry_after_s] backoff
    hint ({!Hlp_util.Server.retry_after_hint_s}) that
    {!Hlp_util.Server.Client} sleeps on before reconnecting. *)

val circuits : (string * (int -> Hlp_logic.Netlist.t)) list
(** The servable generator circuits, by protocol name — the same zoo the
    CLI exposes. *)

val prometheus_of_metrics : Hlp_util.Json.t -> string
(** Render a [metrics] {e result object} as Prometheus text exposition:
    counters as [counter] metrics, cache fields as labelled
    [hlpower_cache_*] gauges, histograms as [histogram] metrics with
    cumulative [_bucket{le=...}] lines, [+Inf], [_sum], and [_count].
    Metric names are the telemetry names prefixed [hlpower_] with
    non-identifier characters mapped to ['_']. *)

(** {1 Requests} — builders the CLI client and bench use, so the schema
    has one producer. Omitted optionals are omitted from the JSON and
    take the server-side defaults (engine bitparallel, seed 47,
    precision 0.05) — except [rid], which defaults to a fresh
    client-side id ({!Hlp_util.Server.fresh_rid}[ ~prefix:"c"]). *)

val ping_request : ?id:int -> ?rid:string -> ?sleep_s:float -> unit -> string

val estimate_request :
  ?id:int ->
  ?rid:string ->
  ?engine:string ->
  ?seed:int ->
  ?relative_precision:float ->
  ?max_cycles:int ->
  ?node_limit:int ->
  circuit:string ->
  width:int ->
  unit ->
  string

val sampler_request :
  ?id:int ->
  ?rid:string ->
  ?engine:string ->
  ?seed:int ->
  ?cycles:int ->
  circuit:string ->
  width:int ->
  unit ->
  string

val stats_request : ?id:int -> ?rid:string -> unit -> string
val metrics_request : ?id:int -> ?rid:string -> unit -> string

(** {1 Responses} *)

type response = {
  id : int;  (** -1 when the server could not read the request id *)
  rid : string;  (** echoed request id; [""] on a pre-rid envelope *)
  ok : bool;
  cached : bool;  (** served from the estimate cache *)
  result : Hlp_util.Json.t option;  (** present iff [ok] *)
  error : (string * string * int) option;
      (** class, message, exit code — present iff not [ok] *)
}

val parse_response : string -> (response, string) result

val result_string : response -> string option
(** The result object re-serialized compactly — the byte-identity unit:
    two responses whose [result_string]s agree carried the same answer,
    whatever their envelope (id, cached flag) said. *)
