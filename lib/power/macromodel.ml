type dut = {
  net : Hlp_logic.Netlist.t;
  widths : int list;
}

type stream_stats = {
  in_acts : Hlp_sim.Activity.t list;
  out_act : Hlp_sim.Activity.t;
  sign_probs : float array list;
  breakpoints : int list;
}

type observation = {
  stats : stream_stats;
  cap : float;
}

let observe dut traces =
  assert (List.length traces = List.length dut.widths);
  let n =
    match traces with [] -> invalid_arg "observe: no traces" | t :: _ -> Array.length t
  in
  List.iter (fun t -> assert (Array.length t = n)) traces;
  let sim = Hlp_sim.Funcsim.create dut.net in
  let outs = dut.net.Hlp_logic.Netlist.outputs in
  let m = Array.length outs in
  let out_trace = Array.make n 0 in
  for i = 0 to n - 1 do
    Hlp_sim.Funcsim.step sim (Hlp_sim.Streams.pack ~widths:dut.widths traces i);
    let v = ref 0 in
    Array.iteri
      (fun k (_, wire) -> if Hlp_sim.Funcsim.value sim wire then v := !v lor (1 lsl k))
      outs;
    out_trace.(i) <- !v
  done;
  let cap = Hlp_sim.Funcsim.switched_capacitance sim /. float_of_int n in
  let in_acts =
    List.map2 (fun w t -> Hlp_sim.Activity.of_trace ~width:w t) dut.widths traces
  in
  let out_act = Hlp_sim.Activity.of_trace ~width:(max m 1) out_trace in
  let sign_probs =
    List.map2 (fun w t -> Hlp_sim.Activity.sign_transition_probs ~width:w t) dut.widths traces
  in
  let breakpoints = List.map Hlp_sim.Activity.breakpoint in_acts in
  { stats = { in_acts; out_act; sign_probs; breakpoints }; cap }

let training_streams ?(seed = 1234) ?(n = 400) dut =
  let rng = Hlp_util.Prng.create seed in
  let per_word f = List.map (fun w -> f w) dut.widths in
  let white p = per_word (fun w -> Hlp_sim.Streams.biased_bits rng ~width:w ~p ~n) in
  let corr p rho =
    per_word (fun w -> Hlp_sim.Streams.correlated_bits rng ~width:w ~p ~rho ~n)
  in
  let walk sigma = per_word (fun w -> Hlp_sim.Streams.gaussian_walk rng ~width:w ~sigma ~n) in
  [
    white 0.5; white 0.3; white 0.7; white 0.15; white 0.85;
    corr 0.5 0.3; corr 0.5 0.6; corr 0.5 0.85; corr 0.3 0.5; corr 0.7 0.5;
    walk 2.0; walk 8.0; walk 32.0; walk 128.0;
  ]

type kind = Pfa | Dual_bit | Bitwise | Input_output

let kind_name = function
  | Pfa -> "power-factor approx"
  | Dual_bit -> "dual-bit type"
  | Bitwise -> "bitwise"
  | Input_output -> "input-output"

let mean_in_activity stats =
  Hlp_util.Stats.mean_list (List.map Hlp_sim.Activity.mean_activity stats.in_acts)

let mean_in_signal_prob stats =
  Hlp_util.Stats.mean_list (List.map Hlp_sim.Activity.mean_signal_prob stats.in_acts)

let features kind stats =
  match kind with
  | Pfa -> [| 1.0 |]
  | Input_output ->
      [| mean_in_activity stats; Hlp_sim.Activity.mean_activity stats.out_act |]
  | Bitwise ->
      Array.concat (List.map (fun a -> a.Hlp_sim.Activity.activity) stats.in_acts)
  | Dual_bit ->
      (* per module: unsigned-region activity mass + the four sign
         transition masses, aggregated over input words *)
      let nu_eu = ref 0.0 in
      let signs = Array.make 4 0.0 in
      List.iteri
        (fun word_idx act ->
          let bp = List.nth stats.breakpoints word_idx in
          let w = act.Hlp_sim.Activity.width in
          for b = 0 to bp - 1 do
            nu_eu := !nu_eu +. act.Hlp_sim.Activity.activity.(b)
          done;
          let ns = float_of_int (w - bp) in
          let sp = List.nth stats.sign_probs word_idx in
          Array.iteri (fun k p -> signs.(k) <- signs.(k) +. (ns *. p)) sp)
        stats.in_acts;
      Array.append [| !nu_eu |] signs

type model = {
  kind : kind;
  coeffs : float array;
}

let fit kind _dut observations =
  assert (observations <> []);
  let x = Array.of_list (List.map (fun o -> features kind o.stats) observations) in
  let y = Array.of_list (List.map (fun o -> o.cap) observations) in
  { kind; coeffs = Hlp_util.Linalg.least_squares_nonneg x y }

let predict model stats = Hlp_util.Linalg.vec_dot model.coeffs (features model.kind stats)

let model_kind m = m.kind
let model_coeffs m = Array.copy m.coeffs

(* --- 3D table --- *)

type table3d = {
  bins : int;
  cells : (int * int * int, float * int) Hashtbl.t;  (* sum, count *)
}

let coords bins stats =
  let clamp x = max 0 (min (bins - 1) x) in
  let bin x = clamp (int_of_float (x *. float_of_int bins)) in
  ( bin (mean_in_signal_prob stats),
    bin (mean_in_activity stats),
    bin (Hlp_sim.Activity.mean_activity stats.out_act) )

let fit_table ?(bins = 5) observations =
  let cells = Hashtbl.create 64 in
  List.iter
    (fun o ->
      let key = coords bins o.stats in
      let sum, count = Option.value ~default:(0.0, 0) (Hashtbl.find_opt cells key) in
      Hashtbl.replace cells key (sum +. o.cap, count + 1))
    observations;
  { bins; cells }

let predict_table t stats =
  let x, y, z = coords t.bins stats in
  match Hashtbl.find_opt t.cells (x, y, z) with
  | Some (sum, count) -> sum /. float_of_int count
  | None ->
      (* inverse-distance interpolation over filled cells *)
      let num = ref 0.0 and den = ref 0.0 in
      Hashtbl.iter
        (fun (cx, cy, cz) (sum, count) ->
          let d2 =
            float_of_int (((cx - x) * (cx - x)) + ((cy - y) * (cy - y)) + ((cz - z) * (cz - z)))
          in
          let w = 1.0 /. (d2 +. 0.25) in
          num := !num +. (w *. sum /. float_of_int count);
          den := !den +. w)
        t.cells;
      if !den = 0.0 then 0.0 else !num /. !den

let relative_error ~actual ~predicted =
  Hlp_util.Stats.relative_error ~actual ~estimate:predicted

let evaluate ~predict observations =
  Hlp_util.Stats.mean_list
    (List.map
       (fun o -> relative_error ~actual:o.cap ~predicted:(predict o.stats))
       observations)
