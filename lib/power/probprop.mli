(** Probabilistic power estimation for random logic (the paper's RT-level
    flow, step 4: glue/interface circuitry is estimated "by performing
    probabilistic power estimation [27]-[31]" instead of simulation, and
    low-level simulation is "sped up by the application of statistical
    sampling techniques [32]-[35]").

    Two engines:
    - propagation: push per-input signal probabilities and transition
      densities through the netlist gate by gate under the independence
      assumption (Najm's transition-density style) — zero simulation;
    - Monte Carlo: simulate in batches until the estimate's confidence
      interval is tight enough (Burch et al.), reporting how many cycles
      the stopping rule needed. *)

type node_stats = {
  prob : float array;  (** per node: probability of being 1 *)
  activity : float array;  (** per node: expected toggles per cycle *)
}

val propagate :
  ?input_prob:(int -> float) ->
  ?input_activity:(int -> float) ->
  Hlp_logic.Netlist.t ->
  node_stats
(** Closed-form propagation assuming spatial independence of gate inputs
    (the classic source of optimism on reconvergent logic, quantified in
    the tests). Defaults: inputs at probability 0.5, activity 0.5.
    Combinational netlists only. *)

val estimate_capacitance : Hlp_logic.Netlist.t -> node_stats -> float
(** Switched capacitance per cycle implied by the propagated activities. *)

type monte_carlo = {
  estimate : float;  (** mean switched capacitance per cycle *)
  half_interval : float;
      (** 95% Student-t confidence half-width over the batch means
          (df = batches - 1) *)
  cycles_used : int;
  batches : int;
}

val monte_carlo :
  ?batch:int ->
  ?relative_precision:float ->
  ?max_cycles:int ->
  ?seed:int ->
  ?engine:Hlp_sim.Engine.t ->
  ?jobs:int ->
  Hlp_logic.Netlist.t ->
  monte_carlo
(** Simulate under uniform inputs in batches (default 30 cycles each, the
    normality minimum) until the 95% CI of the per-cycle capacitance is
    within [relative_precision] (default 5%) of the mean — the
    Burch-et-al. stopping criterion. The interval is a Student-t interval
    over the batch means ([Stats.confidence_interval], df = batches - 1):
    with as few as 3 batches the normal z = 1.96 interval under-covers
    (the true 95% multiplier at df = 2 is 4.303), so a z-based rule stops
    too early and reports intervals that miss the long-run mean well over
    5% of the time (see the empirical-coverage test in [test_power.ml]).

    When {!Hlp_util.Telemetry} is enabled, every stopping-rule evaluation
    appends the running mean and the t half-width to the
    ["probprop.running_mean"] / ["probprop.ci_half_width"] series — the
    full convergence trajectory of the run.

    [engine] (default [Scalar]) selects the simulation engine. [Scalar]
    reproduces the seed implementation bit-for-bit. [Bitparallel] simulates
    63 independent vector streams per word-wide {!Hlp_sim.Bitsim} step, so
    each batch covers [batch * 63] cycles; [Parallel] shards batches over
    [jobs] domains (default [Domain.recommended_domain_count ()]) with
    per-batch PRNG streams and a fixed reduction order, making the estimate
    bit-identical for any [jobs]. The bit engines draw different random
    streams than [Scalar], so their estimates agree statistically (within
    the confidence interval), not bit-exactly. *)
