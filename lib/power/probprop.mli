(** Probabilistic power estimation for random logic (the paper's RT-level
    flow, step 4: glue/interface circuitry is estimated "by performing
    probabilistic power estimation [27]-[31]" instead of simulation, and
    low-level simulation is "sped up by the application of statistical
    sampling techniques [32]-[35]").

    Two engines:
    - propagation: push per-input signal probabilities and transition
      densities through the netlist gate by gate under the independence
      assumption (Najm's transition-density style) — zero simulation;
    - Monte Carlo: simulate in batches until the estimate's confidence
      interval is tight enough (Burch et al.), reporting how many cycles
      the stopping rule needed. *)

type node_stats = {
  prob : float array;  (** per node: probability of being 1 *)
  activity : float array;  (** per node: expected toggles per cycle *)
}

val propagate :
  ?input_prob:(int -> float) ->
  ?input_activity:(int -> float) ->
  Hlp_logic.Netlist.t ->
  node_stats
(** Closed-form propagation assuming spatial independence of gate inputs
    (the classic source of optimism on reconvergent logic, quantified in
    the tests). Defaults: inputs at probability 0.5, activity 0.5.
    Combinational netlists only. *)

val estimate_capacitance : Hlp_logic.Netlist.t -> node_stats -> float
(** Switched capacitance per cycle implied by the propagated activities. *)

val symbolic :
  ?input_prob:(int -> float) -> ?node_limit:int -> Hlp_logic.Netlist.t -> node_stats
(** {e Exact} signal probabilities: every node's global function is built
    as a BDD ({!Hlp_bdd.Bdd.of_netlist_all} under the first-use variable
    order) and evaluated with {!Hlp_bdd.Bdd.probability} — no independence
    assumption, so reconvergent fanout is handled exactly, which is
    precisely where {!propagate} is optimistic. Activity assumes temporally
    independent consecutive vectors: [2 p (1-p)] per node. Combinational
    netlists only ([Invalid_input] otherwise).

    This is the precise-but-explosive side of the paper's tradeoff:
    [node_limit] bounds the BDD manager, and a blowup raises the typed
    [Budget_exceeded] — the signal {!estimate_guarded} uses to degrade to
    Monte Carlo sampling. *)

type monte_carlo = {
  estimate : float;  (** mean switched capacitance per cycle *)
  half_interval : float;
      (** 95% Student-t confidence half-width over the batch means
          (df = batches - 1) *)
  cycles_used : int;
  batches : int;
  batch_means : float array;
      (** per-batch mean switched capacitance, in batch order — the full
          convergence trajectory (the provenance record keeps its tail) *)
}

(** {1 Crash-safe checkpointing}

    A checkpoint journals the Monte Carlo loop's exact state at batch
    (scalar engine) or unit (bit engines) boundaries into a
    {!Hlp_util.Journal}, so a SIGKILLed run resumed from the same journal
    produces the {e byte-identical} estimate — same [estimate] bits, same
    [batch_means], same [cycles_used] — an uninterrupted run would have.
    Floats travel as the hex of their IEEE-754 bits, never as decimal
    text; on the scalar engine the switched-capacitance accumulator and
    the PRNG state are transplanted bit-for-bit and the simulator is
    re-primed from the journaled last input vector (combinational
    netlists only — [Invalid_input] otherwise); on the bit engines each
    unit is a pure function of [(seed, unit index)], so only the finished
    unit means travel.

    The first record is a header binding the journal to the run
    parameters (seed, batch, precision, cycle budget, engine) and the
    circuit's {!Hlp_logic.Netlist.fingerprint}. On any mismatch — or a
    torn/corrupt body — the journal {e self-heals}: it is truncated and
    the run starts fresh (counted in ["probprop.ck_header_mismatches"]),
    so a batch campaign never wedges after a parameter change. Torn
    tails found on resume are counted in ["probprop.ck_torn_tails"],
    successful resumes in ["probprop.ck_resumes"]. *)

type checkpoint

val checkpoint :
  ?every:int ->
  ?sync_every:int ->
  ?resume:bool ->
  ?on_batch:(int -> unit) ->
  string ->
  checkpoint
(** [checkpoint path] configures checkpointing into the journal at
    [path]. [every] (default 1) journals one record per that many batches
    (scalar engine only; the bit engines journal every unit — their
    records are self-contained). [sync_every] (default 16) is the
    group-commit cadence: one [fsync] per that many records, plus one at
    close, trading at most [sync_every] records of power-loss durability
    for the sub-2% overhead pinned by bench E36 (a SIGKILL loses nothing
    either way — appends reach the kernel immediately). [resume] replays
    an existing journal instead of truncating it. [on_batch] is called
    after every batch/unit boundary, {e after} the journal has been
    fsynced — the hook crash-recovery tests use to die at exact points.
    Raises [Invalid_input] on non-positive [every]/[sync_every]. *)

val monte_carlo :
  ?batch:int ->
  ?relative_precision:float ->
  ?max_cycles:int ->
  ?seed:int ->
  ?engine:Hlp_sim.Engine.t ->
  ?jobs:int ->
  ?max_retries:int ->
  ?checkpoint:checkpoint ->
  ?guard:Hlp_util.Guard.t ->
  Hlp_logic.Netlist.t ->
  monte_carlo
(** Simulate under uniform inputs in batches (default 30 cycles each, the
    normality minimum) until the 95% CI of the per-cycle capacitance is
    within [relative_precision] (default 5%) of the mean — the
    Burch-et-al. stopping criterion. The interval is a Student-t interval
    over the batch means ([Stats.confidence_interval], df = batches - 1):
    with as few as 3 batches the normal z = 1.96 interval under-covers
    (the true 95% multiplier at df = 2 is 4.303), so a z-based rule stops
    too early and reports intervals that miss the long-run mean well over
    5% of the time (see the empirical-coverage test in [test_power.ml]).

    When {!Hlp_util.Telemetry} is enabled, every stopping-rule evaluation
    appends the running mean and the t half-width to the
    ["probprop.running_mean"] / ["probprop.ci_half_width"] series — the
    full convergence trajectory of the run.

    [engine] (default [Scalar]) selects the simulation engine. [Scalar]
    reproduces the seed implementation bit-for-bit. [Bitparallel] simulates
    63 independent vector streams per word-wide {!Hlp_sim.Bitsim} step, so
    each batch covers [batch * 63] cycles; [Parallel] shards batches over
    [jobs] domains (default [Domain.recommended_domain_count ()]) with
    per-batch PRNG streams and a fixed reduction order, making the estimate
    bit-identical for any [jobs]. The bit engines draw different random
    streams than [Scalar], so their estimates agree statistically (within
    the confidence interval), not bit-exactly.

    [guard] is checked at every stopping-rule evaluation (and [max_retries]
    is threaded to {!Hlp_sim.Parsim.map} for the parallel engine); a trip
    raises the typed [Deadline_exceeded] / [Cancelled]. [batch < 2] raises
    the typed [Invalid_input]. *)

(** {1 Guarded estimation: the symbolic-vs-sampling degradation chain}

    The paper's central tradeoff (Section II-C): BDD-based symbolic
    estimation is exact but blows up unpredictably; Monte Carlo sampling
    is approximate but robust. [estimate_guarded] encodes it as a
    degradation chain — try exact symbolic propagation under a node
    budget, fall back to sampling on blowup, and degrade the sampling
    engine [Parallel -> Bitparallel -> Scalar] on worker faults — so no
    input, fault, or resource exhaustion produces an uncaught exception:
    the result is an estimate or a typed {!Hlp_util.Err.t}, always. *)

type estimator = Symbolic | Monte_carlo of monte_carlo

type provenance = {
  estimator_used : string;  (** ["symbolic"] or ["monte_carlo"] *)
  engine : string option;  (** sampling engine name, if sampled *)
  symbolic_fallback : bool;
  engine_fallbacks : int;
  seed : int;
  batches : int;  (** 0 for symbolic estimates *)
  cycles_used : int;
  half_interval : float option;
  convergence_tail : float array;
      (** the last (up to 8) batch means, chronological *)
  guard_deadline_trips : int;
      (** deltas of the process-wide telemetry counters over this estimate;
          meaningful only when [counters_live] *)
  guard_cancel_trips : int;
  worker_failures : int;
  shard_retries : int;
  faults_injected : (string * int) list;
      (** injection points that fired during this estimate, with counts
          (tracked independently of the telemetry switch) *)
  counters_live : bool;  (** telemetry was enabled, so deltas are real *)
  wall_time_s : float;  (** monotonic wall time of the whole estimate *)
}

val provenance_json : provenance -> Hlp_util.Json.t
(** The record as a JSON object — the CLI's [--run-report] payload. *)

type guarded = {
  capacitance : float;  (** estimated switched capacitance per cycle *)
  estimator : estimator;
  engine_used : Hlp_sim.Engine.t option;  (** sampling engine, if sampled *)
  symbolic_fallback : bool;
      (** the symbolic stage was attempted and tripped its node budget *)
  engine_fallbacks : int;  (** engine-degradation hops inside sampling *)
  provenance : provenance;
      (** how this number was produced: engine, fallback hops, guard trips,
          fault counters, seed, convergence tail, wall time *)
}

val default_node_limit : int
(** BDD node budget used when [node_limit] is omitted (200k nodes —
    comfortably above every module-sized circuit in the experiments,
    small enough to trip in milliseconds on a blowup). *)

val estimate_guarded :
  ?guard:Hlp_util.Guard.t ->
  ?node_limit:int ->
  ?input_prob:(int -> float) ->
  ?batch:int ->
  ?relative_precision:float ->
  ?max_cycles:int ->
  ?seed:int ->
  ?engine:Hlp_sim.Engine.t ->
  ?jobs:int ->
  ?max_retries:int ->
  ?try_symbolic:bool ->
  ?symbolic_cache:float Hlp_logic.Netcache.t ->
  ?checkpoint:checkpoint ->
  Hlp_logic.Netlist.t ->
  (guarded, Hlp_util.Err.t) result
(** Estimate switched capacitance per cycle, degrading instead of
    crashing. Stage 1 runs {!symbolic} under [node_limit] (skipped for
    sequential netlists, or when [try_symbolic] is [false] — the batch
    supervisor's circuit breaker routes jobs straight to sampling that
    way once the BDD stage has tripped repeatedly); a [Budget_exceeded]
    trip is counted in ["probprop.symbolic_fallbacks"] and degrades to
    stage 2, Monte Carlo sampling starting at [engine] (default
    [Bitparallel]) behind {!Hlp_sim.Parsim.with_degradation}.
    [checkpoint] makes the sampling stage resumable (an engine-degradation
    hop rewrites the journal header, so the journal self-heals rather
    than resuming across engines). Guard trips and invalid input
    surface as [Error]; no exception escapes except programming errors.

    [symbolic_cache] (opt-in — the serve daemon's hot BDD cache) memoizes
    {e successful} symbolic capacitances by {!Hlp_logic.Netlist.fingerprint}.
    It is consulted only under the default input distribution ([input_prob]
    omitted), since a caller-supplied distribution cannot participate in the
    key. A budget trip is never cached, so a later call with a larger
    [node_limit] still gets its attempt; conversely a hit can answer under a
    [node_limit] that would have tripped, which is sound — the cached value
    is the exact answer — and exactly the work-skipping the cache exists
    for. *)
