(* Protocol schema, dispatch, and hot caches of the estimation daemon.
   Transport (frames, pool, admission) is Hlp_util.Server; this layer
   turns request payloads into cached answers. *)

open Hlp_logic
module J = Hlp_util.Json
module Err = Hlp_util.Err

let circuits =
  [ ("adder", Generators.adder_circuit);
    ("multiplier", Generators.multiplier_circuit);
    ("max", Generators.max_circuit);
    ("alu", Generators.alu_circuit);
    ("comparator", Generators.comparator_circuit);
    ("parity", Generators.parity_circuit) ]

(* input-word widths of each generator, for the macro-model dut *)
let widths_of name w =
  match name with
  | "parity" -> [ w ]
  | "alu" -> [ 2; w; w ]
  | _ -> [ w; w ]

type t = {
  netlists : Netlist.t Netcache.t;
  symbolic : float Netcache.t;
  models : (Macromodel.model * Macromodel.dut) Netcache.t;
  estimates : string Netcache.t;  (* serialized result objects *)
  breaker : Hlp_util.Supervisor.breaker;
}

let create ?(netlist_capacity = 64) ?(estimate_capacity = 256)
    ?(failure_threshold = 3) ?(cooldown_s = 30.0) () =
  { netlists = Netcache.create ~capacity:netlist_capacity ~name:"server.netlists" ();
    symbolic = Netcache.create ~capacity:netlist_capacity ~name:"server.symbolic" ();
    models = Netcache.create ~capacity:netlist_capacity ~name:"server.models" ();
    estimates =
      Netcache.create ~capacity:estimate_capacity ~name:"server.estimates" ();
    breaker =
      Hlp_util.Supervisor.breaker ~failure_threshold ~cooldown_s "server.symbolic" }

(* --- envelopes --- *)

let ok_envelope ?(cached = false) id result =
  J.to_string ~compact:true
    (J.Obj
       [ ("id", J.Int id);
         ("ok", J.Bool true);
         ("cached", J.Bool cached);
         ("result", result) ])

let error_envelope_parts id cls msg code =
  J.to_string ~compact:true
    (J.Obj
       [ ("id", J.Int id);
         ("ok", J.Bool false);
         ( "error",
           J.Obj
             [ ("class", J.Str cls);
               ("message", J.Str msg);
               ("exit_code", J.Int code) ] ) ])

let error_envelope id e =
  error_envelope_parts id (Err.class_name e) (Err.to_string e) (Err.exit_code e)

(* Shed frames carry a retry_after_s hint so a resilient client backs
   off instead of reconnecting immediately into the same full queue. *)
let overload_response e =
  J.to_string ~compact:true
    (J.Obj
       [ ("id", J.Int (-1));
         ("ok", J.Bool false);
         ( "error",
           J.Obj
             [ ("class", J.Str (Err.class_name e));
               ("message", J.Str (Err.to_string e));
               ("exit_code", J.Int (Err.exit_code e));
               ("retry_after_s", J.Float Hlp_util.Server.retry_after_hint_s) ] )
       ])

(* --- request field access (typed errors, never exceptions) --- *)

let bad what why = raise (Err.invalid_input ~what:("request " ^ what) why)

let opt_field obj name conv what =
  match J.member name obj with
  | None -> None
  | Some v -> (
      match conv v with
      | Some x -> Some x
      | None -> bad name ("must be " ^ what))

let opt_int obj name = opt_field obj name J.to_int_opt "an integer"
let opt_float obj name = opt_field obj name J.to_float_opt "a number"
let opt_str obj name = opt_field obj name J.to_str_opt "a string"

let req_str obj name =
  match opt_str obj name with Some s -> s | None -> bad name "is required"

let with_default d = function Some v -> v | None -> d

let fbits f = Printf.sprintf "%016Lx" (Int64.bits_of_float f)

(* --- common request decoding --- *)

let decode_circuit t obj =
  let name = req_str obj "circuit" in
  let gen =
    match List.assoc_opt name circuits with
    | Some g -> g
    | None ->
        bad "circuit"
          ("unknown (expected one of "
          ^ String.concat ", " (List.map fst circuits)
          ^ ")")
  in
  let width = with_default 8 (opt_int obj "width") in
  if width < 1 || width > 24 then bad "width" "must be in 1..24";
  let net =
    Netcache.find_or_compute t.netlists
      ~key:(Netcache.combine (Netcache.hash_string name) (Int64.of_int width))
      (fun () -> gen width)
  in
  (name, width, net)

let decode_engine obj =
  let s = with_default "bitparallel" (opt_str obj "engine") in
  match Hlp_sim.Engine.of_string s with
  | Some e -> e
  | None -> bad "engine" ("unknown engine " ^ s)

(* --- ops --- *)

let op_ping obj id =
  let sleep_s = with_default 0.0 (opt_float obj "sleep_s") in
  if (not (Float.is_finite sleep_s)) || sleep_s < 0.0 || sleep_s > 30.0 then
    bad "sleep_s" "must be in [0, 30]";
  if sleep_s > 0.0 then Unix.sleepf sleep_s;
  ok_envelope id
    (J.Obj [ ("op", J.Str "ping"); ("pong", J.Bool true) ])

let op_estimate t guard obj id =
  let name, width, net = decode_circuit t obj in
  let engine = decode_engine obj in
  let seed = with_default 47 (opt_int obj "seed") in
  let rp = with_default 0.05 (opt_float obj "relative_precision") in
  let max_cycles = opt_int obj "max_cycles" in
  let node_limit = opt_int obj "node_limit" in
  let key =
    let open Netcache in
    List.fold_left combine
      (Netlist.fingerprint net)
      [ hash_string (Hlp_sim.Engine.to_string engine);
        Int64.of_int seed;
        Int64.bits_of_float rp;
        Int64.of_int (with_default 0 max_cycles);
        Int64.of_int (with_default 0 node_limit) ]
  in
  let cached = Netcache.mem t.estimates key in
  let result =
    Netcache.find_or_compute t.estimates ~key (fun () ->
        let try_symbolic = Hlp_util.Supervisor.breaker_allows t.breaker in
        match
          Probprop.estimate_guarded ~guard ~seed ~engine ~relative_precision:rp
            ?max_cycles ?node_limit ~try_symbolic ~symbolic_cache:t.symbolic net
        with
        | Error e -> raise (Err.Error e)  (* never cache failures *)
        | Ok g ->
            if try_symbolic then
              if g.Probprop.symbolic_fallback then
                Hlp_util.Supervisor.breaker_failure t.breaker
              else Hlp_util.Supervisor.breaker_success t.breaker;
            let p = g.Probprop.provenance in
            J.to_string ~compact:true
              (J.Obj
                 [ ("op", J.Str "estimate");
                   ("circuit", J.Str name);
                   ("width", J.Int width);
                   ("engine", J.Str (Hlp_sim.Engine.to_string engine));
                   ("seed", J.Int seed);
                   ("relative_precision", J.Float rp);
                   ("capacitance", J.Float g.Probprop.capacitance);
                   ("capacitance_bits", J.Str (fbits g.Probprop.capacitance));
                   ("estimator", J.Str p.Probprop.estimator_used);
                   ( "engine_used",
                     match p.Probprop.engine with
                     | Some e -> J.Str e
                     | None -> J.Null );
                   ("symbolic_fallback", J.Bool g.Probprop.symbolic_fallback);
                   ("batches", J.Int p.Probprop.batches);
                   ("cycles_used", J.Int p.Probprop.cycles_used);
                   ( "half_interval",
                     match p.Probprop.half_interval with
                     | Some h -> J.Float h
                     | None -> J.Null ) ]))
  in
  Printf.sprintf
    "{\"id\":%d,\"ok\":true,\"cached\":%b,\"result\":%s}" id cached result

let op_sampler t obj id =
  let name, width, net = decode_circuit t obj in
  let engine = decode_engine obj in
  let seed = with_default 47 (opt_int obj "seed") in
  let cycles = with_default 256 (opt_int obj "cycles") in
  if cycles < 2 || cycles > 100_000 then bad "cycles" "must be in 2..100000";
  let widths = widths_of name width in
  let model, dut =
    Netcache.find_or_compute t.models
      ~key:
        (Netcache.combine
           (Netcache.combine (Netlist.fingerprint net) (Int64.of_int seed))
           (Int64.of_int width))
      (fun () ->
        let dut = { Macromodel.net; widths } in
        let obs =
          List.map (Macromodel.observe dut)
            (Macromodel.training_streams ~seed dut)
        in
        (Macromodel.fit Macromodel.Bitwise dut obs, dut))
  in
  let rng = Hlp_util.Prng.create seed in
  let traces =
    List.map (fun w -> Hlp_sim.Streams.uniform rng ~width:w ~n:cycles) widths
  in
  let s = Sampling.prepare_cached ~engine model dut traces in
  let census = (Sampling.census s).Sampling.value in
  let sampled = (Sampling.sampler ~seed s).Sampling.value in
  let gate_ref = Sampling.gate_reference s in
  ok_envelope id
    (J.Obj
       [ ("op", J.Str "sampler");
         ("circuit", J.Str name);
         ("width", J.Int width);
         ("engine", J.Str (Hlp_sim.Engine.to_string engine));
         ("seed", J.Int seed);
         ("cycles", J.Int cycles);
         ("census", J.Float census);
         ("census_bits", J.Str (fbits census));
         ("sampled", J.Float sampled);
         ("sampled_bits", J.Str (fbits sampled));
         ("gate_reference", J.Float gate_ref);
         ("gate_reference_bits", J.Str (fbits gate_ref)) ])

let op_stats t id =
  let breaker =
    match Hlp_util.Supervisor.breaker_state t.breaker with
    | Hlp_util.Supervisor.Closed -> "closed"
    | Hlp_util.Supervisor.Open -> "open"
    | Hlp_util.Supervisor.Half_open -> "half-open"
  in
  ok_envelope id
    (J.Obj
       [ ("op", J.Str "stats");
         ("netlists", J.Int (Netcache.length t.netlists));
         ("symbolic", J.Int (Netcache.length t.symbolic));
         ("models", J.Int (Netcache.length t.models));
         ("estimates", J.Int (Netcache.length t.estimates));
         ("estimates_inflight", J.Int (Netcache.inflight t.estimates));
         ( "estimates_coalesced",
           J.Int
             (Hlp_util.Telemetry.count
                (Hlp_util.Telemetry.counter "server.estimates.coalesced")) );
         ("kernel_plans", J.Int (Hlp_sim.Kernel.cache_length ()));
         ("breaker", J.Str breaker) ])

let handle t guard payload =
  match J.parse payload with
  | Error msg ->
      error_envelope_parts (-1) "invalid-input" ("request parse: " ^ msg) 65
  | Ok req -> (
      let id = with_default 0 (try opt_int req "id" with Err.Error _ -> None) in
      try
        match req_str req "op" with
        | "ping" -> op_ping req id
        | "estimate" -> op_estimate t guard req id
        | "sampler" -> op_sampler t req id
        | "stats" -> op_stats t id
        | other -> bad "op" ("unknown op " ^ other)
      with
      | Err.Error e -> error_envelope id e
      | exn ->
          (* a programming error must still answer this request; the
             daemon itself never dies for one frame *)
          error_envelope_parts id "internal" (Printexc.to_string exn) 70)

(* --- request builders --- *)

let build ?id op fields =
  let id = match id with Some i -> [ ("id", J.Int i) ] | None -> [] in
  J.to_string ~compact:true (J.Obj (id @ (("op", J.Str op) :: fields)))

let opt_j name conv = function Some v -> [ (name, conv v) ] | None -> []

let ping_request ?id ?sleep_s () =
  build ?id "ping" (opt_j "sleep_s" (fun s -> J.Float s) sleep_s)

let estimate_request ?id ?engine ?seed ?relative_precision ?max_cycles
    ?node_limit ~circuit ~width () =
  build ?id "estimate"
    ([ ("circuit", J.Str circuit); ("width", J.Int width) ]
    @ opt_j "engine" (fun e -> J.Str e) engine
    @ opt_j "seed" (fun s -> J.Int s) seed
    @ opt_j "relative_precision" (fun r -> J.Float r) relative_precision
    @ opt_j "max_cycles" (fun m -> J.Int m) max_cycles
    @ opt_j "node_limit" (fun n -> J.Int n) node_limit)

let sampler_request ?id ?engine ?seed ?cycles ~circuit ~width () =
  build ?id "sampler"
    ([ ("circuit", J.Str circuit); ("width", J.Int width) ]
    @ opt_j "engine" (fun e -> J.Str e) engine
    @ opt_j "seed" (fun s -> J.Int s) seed
    @ opt_j "cycles" (fun c -> J.Int c) cycles)

let stats_request ?id () = build ?id "stats" []

(* --- response decoding --- *)

type response = {
  id : int;
  ok : bool;
  cached : bool;
  result : J.t option;
  error : (string * string * int) option;
}

let parse_response s =
  match J.parse s with
  | Error msg -> Error ("response parse: " ^ msg)
  | Ok v -> (
      match J.member "ok" v with
      | Some (J.Bool ok) ->
          let id =
            match Option.bind (J.member "id" v) J.to_int_opt with
            | Some i -> i
            | None -> -1
          in
          let cached =
            match J.member "cached" v with Some (J.Bool b) -> b | _ -> false
          in
          let error =
            match J.member "error" v with
            | Some e ->
                let s name =
                  Option.value ~default:""
                    (Option.bind (J.member name e) J.to_str_opt)
                in
                let code =
                  Option.value ~default:1
                    (Option.bind (J.member "exit_code" e) J.to_int_opt)
                in
                Some (s "class", s "message", code)
            | None -> None
          in
          Ok { id; ok; cached; result = J.member "result" v; error }
      | _ -> Error "response missing \"ok\"")

let result_string r =
  Option.map (fun j -> J.to_string ~compact:true j) r.result
