(* Protocol schema, dispatch, and hot caches of the estimation daemon.
   Transport (frames, pool, admission) is Hlp_util.Server; this layer
   turns request payloads into cached answers. *)

open Hlp_logic
module J = Hlp_util.Json
module Err = Hlp_util.Err
module Srv = Hlp_util.Server

let circuits =
  [ ("adder", Generators.adder_circuit);
    ("multiplier", Generators.multiplier_circuit);
    ("max", Generators.max_circuit);
    ("alu", Generators.alu_circuit);
    ("comparator", Generators.comparator_circuit);
    ("parity", Generators.parity_circuit) ]

(* input-word widths of each generator, for the macro-model dut *)
let widths_of name w =
  match name with
  | "parity" -> [ w ]
  | "alu" -> [ 2; w; w ]
  | _ -> [ w; w ]

type t = {
  netlists : Netlist.t Netcache.t;
  symbolic : float Netcache.t;
  models : (Macromodel.model * Macromodel.dut) Netcache.t;
  estimates : string Netcache.t;  (* serialized result objects *)
  breaker : Hlp_util.Supervisor.breaker;
  started : float;  (* Clock.now_s at create, for metrics uptime *)
}

let create ?(netlist_capacity = 64) ?(estimate_capacity = 256)
    ?(failure_threshold = 3) ?(cooldown_s = 30.0) () =
  { netlists = Netcache.create ~capacity:netlist_capacity ~name:"server.netlists" ();
    symbolic = Netcache.create ~capacity:netlist_capacity ~name:"server.symbolic" ();
    models = Netcache.create ~capacity:netlist_capacity ~name:"server.models" ();
    estimates =
      Netcache.create ~capacity:estimate_capacity ~name:"server.estimates" ();
    breaker =
      Hlp_util.Supervisor.breaker ~failure_threshold ~cooldown_s "server.symbolic";
    started = Hlp_util.Clock.now_s () }

(* --- cache snapshot / restore ---

   The crash-only lifecycle: the daemon periodically spills the caches
   whose loss is expensive — finished estimates (serialized response
   objects, so a restored hit is byte-identical by construction) and
   symbolic probability results — to one atomically-written file of
   CRC-framed records. Restore trusts nothing: the header must carry the
   exact snapshot version AND the cache-key recipe string (any PR that
   changes how estimate keys are derived must bump the recipe, or
   restored entries would be served under wrong keys), the trailer must
   count exactly the entries read, and every record sits behind the
   journal CRC. Any violation — torn tail, bit flip, version skew,
   recipe skew — degrades to a counted cold start; restore never raises
   and never installs a questionable byte.

   Netlists and prepared models are deliberately not spilled: their
   values are live closures/BDD structures with no serial form, and they
   rebuild on demand behind single-flight misses — cheap compared to the
   estimates they feed. *)

let snapshot_version = 1

(* the estimate cache-key derivation, spelled out; change op_estimate's
   key fold => change this string *)
let snapshot_recipe =
  "fnv64:fingerprint+engine+seed+rp_bits+max_cycles+node_limit"

let snap_counter name = Hlp_util.Telemetry.counter ("server.snapshot." ^ name)
let tel_snap_saves = snap_counter "saves"
let tel_snap_restores = snap_counter "restores"
let tel_snap_entries = snap_counter "restored_entries"
let tel_snap_cold = snap_counter "cold_starts"
let tel_snap_torn = snap_counter "torn"
let tel_snap_version = snap_counter "version_mismatch"
let tel_snap_recipe = snap_counter "recipe_mismatch"

let key_hex k = Printf.sprintf "%016Lx" k
let key_of_hex s = Int64.of_string ("0x" ^ s)

let save_snapshot t ~path =
  let record j = Hlp_util.Journal.frame (J.to_string ~compact:true j) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (record
       (J.Obj
          [ ("magic", J.Str "hlpower-snapshot");
            ("version", J.Int snapshot_version);
            ("recipe", J.Str snapshot_recipe) ]));
  let entries = ref 0 in
  List.iter
    (fun (k, v) ->
      incr entries;
      Buffer.add_string buf
        (record
           (J.Obj
              [ ("cache", J.Str "estimates");
                ("key", J.Str (key_hex k));
                ("value", J.Str v) ])))
    (Netcache.items t.estimates);
  List.iter
    (fun (k, v) ->
      incr entries;
      Buffer.add_string buf
        (record
           (J.Obj
              [ ("cache", J.Str "symbolic");
                ("key", J.Str (key_hex k));
                ("bits", J.Str (key_hex (Int64.bits_of_float v))) ])))
    (Netcache.items t.symbolic);
  Buffer.add_string buf (record (J.Obj [ ("entries", J.Int !entries) ]));
  Hlp_util.Journal.write_atomic ~path (Buffer.contents buf);
  Hlp_util.Telemetry.incr tel_snap_saves;
  !entries

let load_snapshot t ~path =
  let cold ?counter reason =
    Hlp_util.Telemetry.incr tel_snap_cold;
    Option.iter Hlp_util.Telemetry.incr counter;
    `Cold reason
  in
  match Hlp_util.Journal.recover path with
  | exception Sys_error _ -> cold ~counter:tel_snap_torn "unreadable"
  | { Hlp_util.Journal.records = []; torn_bytes = 0; _ } -> cold "absent"
  | { records = []; _ } -> cold ~counter:tel_snap_torn "torn"
  | { records; torn_bytes; _ } when torn_bytes > 0 ->
      (* write_atomic never leaves a tail: torn bytes mean corruption *)
      ignore records;
      cold ~counter:tel_snap_torn "torn"
  | { records = header :: rest; _ } -> (
      match J.parse header with
      | Error _ -> cold ~counter:tel_snap_torn "malformed"
      | Ok h -> (
          let str name = Option.bind (J.member name h) J.to_str_opt in
          let int name = Option.bind (J.member name h) J.to_int_opt in
          match (str "magic", int "version", str "recipe") with
          | Some "hlpower-snapshot", Some v, Some _ when v <> snapshot_version
            ->
              cold ~counter:tel_snap_version "version-mismatch"
          | Some "hlpower-snapshot", Some _, Some r when r <> snapshot_recipe
            ->
              cold ~counter:tel_snap_recipe "recipe-mismatch"
          | Some "hlpower-snapshot", Some _, Some _ -> (
              (* entries, then exactly one trailer counting them *)
              let rec split acc = function
                | [] -> None
                | [ trailer ] -> Some (List.rev acc, trailer)
                | r :: tl -> split (r :: acc) tl
              in
              match split [] rest with
              | None -> cold ~counter:tel_snap_torn "truncated"
              | Some (entries, trailer) -> (
                  match
                    Option.bind
                      (Result.to_option (J.parse trailer))
                      (fun tj -> Option.bind (J.member "entries" tj) J.to_int_opt)
                  with
                  | Some n when n = List.length entries ->
                      let restored = ref 0 in
                      let install rec_s =
                        match J.parse rec_s with
                        | Error _ -> raise Exit
                        | Ok e -> (
                            let s name =
                              Option.bind (J.member name e) J.to_str_opt
                            in
                            match (s "cache", s "key") with
                            | Some "estimates", Some k -> (
                                match s "value" with
                                | Some v ->
                                    Netcache.put t.estimates ~key:(key_of_hex k)
                                      v;
                                    incr restored
                                | None -> raise Exit)
                            | Some "symbolic", Some k -> (
                                match s "bits" with
                                | Some b ->
                                    Netcache.put t.symbolic ~key:(key_of_hex k)
                                      (Int64.float_of_bits (key_of_hex b));
                                    incr restored
                                | None -> raise Exit)
                            | _ -> raise Exit)
                      in
                      (match List.iter install entries with
                      | () ->
                          Hlp_util.Telemetry.incr tel_snap_restores;
                          for _ = 1 to !restored do
                            Hlp_util.Telemetry.incr tel_snap_entries
                          done;
                          `Restored !restored
                      | exception (Exit | Failure _) ->
                          (* a record decoded but made no sense: drop the
                             whole restore — partial trust is no trust *)
                          ignore (Netcache.clear t.estimates);
                          ignore (Netcache.clear t.symbolic);
                          cold ~counter:tel_snap_torn "malformed")
                  | _ -> cold ~counter:tel_snap_torn "truncated"))
          | _ -> cold ~counter:tel_snap_torn "malformed"))

(* --- memory-pressure relief ---

   Wired as Server's [on_memory_soft] callback: every soft-budget sample
   sheds a fixed fraction of each cache (second-chance order, so the hot
   working set survives longest). Repeated pressure shrinks the caches
   geometrically toward empty; the estimates/symbolic evictions are the
   ones that actually return memory at scale. *)

let trim ?(fraction = 0.25) t =
  let f = if Float.is_finite fraction then Float.max 0.0 (Float.min 1.0 fraction) else 0.25 in
  let one c =
    let n = int_of_float (ceil (float_of_int (Netcache.length c) *. f)) in
    if n > 0 then Netcache.evict c n else 0
  in
  one t.estimates + one t.symbolic + one t.models + one t.netlists

(* --- envelopes ---

   Every envelope echoes the request id [rid] so a client-observed slow
   or failed request is findable in the server's access log and trace by
   the same string. *)

let ok_envelope ?(cached = false) ~rid id result =
  J.to_string ~compact:true
    (J.Obj
       [ ("id", J.Int id);
         ("rid", J.Str rid);
         ("ok", J.Bool true);
         ("cached", J.Bool cached);
         ("result", result) ])

let error_envelope_parts ~rid id cls msg code =
  J.to_string ~compact:true
    (J.Obj
       [ ("id", J.Int id);
         ("rid", J.Str rid);
         ("ok", J.Bool false);
         ( "error",
           J.Obj
             [ ("class", J.Str cls);
               ("message", J.Str msg);
               ("exit_code", J.Int code) ] ) ])

let error_envelope ~rid id e =
  error_envelope_parts ~rid id (Err.class_name e) (Err.to_string e)
    (Err.exit_code e)

(* Shed frames carry a retry_after_s hint so a resilient client backs
   off instead of reconnecting immediately into the same full queue. *)
let overload_response e =
  J.to_string ~compact:true
    (J.Obj
       [ ("id", J.Int (-1));
         ("ok", J.Bool false);
         ( "error",
           J.Obj
             [ ("class", J.Str (Err.class_name e));
               ("message", J.Str (Err.to_string e));
               ("exit_code", J.Int (Err.exit_code e));
               ("retry_after_s", J.Float Hlp_util.Server.retry_after_hint_s) ] )
       ])

(* --- request field access (typed errors, never exceptions) --- *)

let bad what why = raise (Err.invalid_input ~what:("request " ^ what) why)

let opt_field obj name conv what =
  match J.member name obj with
  | None -> None
  | Some v -> (
      match conv v with
      | Some x -> Some x
      | None -> bad name ("must be " ^ what))

let opt_int obj name = opt_field obj name J.to_int_opt "an integer"
let opt_float obj name = opt_field obj name J.to_float_opt "a number"
let opt_str obj name = opt_field obj name J.to_str_opt "a string"

let req_str obj name =
  match opt_str obj name with Some s -> s | None -> bad name "is required"

let with_default d = function Some v -> v | None -> d

let fbits f = Printf.sprintf "%016Lx" (Int64.bits_of_float f)

(* --- common request decoding --- *)

let decode_circuit t obj =
  let name = req_str obj "circuit" in
  let gen =
    match List.assoc_opt name circuits with
    | Some g -> g
    | None ->
        bad "circuit"
          ("unknown (expected one of "
          ^ String.concat ", " (List.map fst circuits)
          ^ ")")
  in
  let width = with_default 8 (opt_int obj "width") in
  if width < 1 || width > 24 then bad "width" "must be in 1..24";
  let net =
    Netcache.find_or_compute t.netlists
      ~key:(Netcache.combine (Netcache.hash_string name) (Int64.of_int width))
      (fun () -> gen width)
  in
  (name, width, net)

let decode_engine obj =
  let s = with_default "bitparallel" (opt_str obj "engine") in
  match Hlp_sim.Engine.of_string s with
  | Some e -> e
  | None -> bad "engine" ("unknown engine " ^ s)

(* --- ops --- *)

let op_ping obj ~rid id =
  let sleep_s = with_default 0.0 (opt_float obj "sleep_s") in
  if (not (Float.is_finite sleep_s)) || sleep_s < 0.0 || sleep_s > 30.0 then
    bad "sleep_s" "must be in [0, 30]";
  if sleep_s > 0.0 then Unix.sleepf sleep_s;
  ok_envelope ~rid id
    (J.Obj [ ("op", J.Str "ping"); ("pong", J.Bool true) ])

let op_estimate t guard (ctx : Srv.ctx) obj ~rid id =
  let name, width, net = decode_circuit t obj in
  let engine = decode_engine obj in
  let seed = with_default 47 (opt_int obj "seed") in
  let rp = with_default 0.05 (opt_float obj "relative_precision") in
  let max_cycles = opt_int obj "max_cycles" in
  let node_limit = opt_int obj "node_limit" in
  let key =
    let open Netcache in
    List.fold_left combine
      (Netlist.fingerprint net)
      [ hash_string (Hlp_sim.Engine.to_string engine);
        Int64.of_int seed;
        Int64.bits_of_float rp;
        Int64.of_int (with_default 0 max_cycles);
        Int64.of_int (with_default 0 node_limit) ]
  in
  ctx.Srv.key <- Printf.sprintf "%016Lx" key;
  let result, outcome =
    Netcache.find_or_compute_outcome t.estimates ~key (fun () ->
        let try_symbolic = Hlp_util.Supervisor.breaker_allows t.breaker in
        match
          Probprop.estimate_guarded ~guard ~seed ~engine ~relative_precision:rp
            ?max_cycles ?node_limit ~try_symbolic ~symbolic_cache:t.symbolic net
        with
        | Error e -> raise (Err.Error e)  (* never cache failures *)
        | Ok g ->
            if try_symbolic then
              if g.Probprop.symbolic_fallback then
                Hlp_util.Supervisor.breaker_failure t.breaker
              else Hlp_util.Supervisor.breaker_success t.breaker;
            let p = g.Probprop.provenance in
            J.to_string ~compact:true
              (J.Obj
                 [ ("op", J.Str "estimate");
                   ("circuit", J.Str name);
                   ("width", J.Int width);
                   ("engine", J.Str (Hlp_sim.Engine.to_string engine));
                   ("seed", J.Int seed);
                   ("relative_precision", J.Float rp);
                   ("capacitance", J.Float g.Probprop.capacitance);
                   ("capacitance_bits", J.Str (fbits g.Probprop.capacitance));
                   ("estimator", J.Str p.Probprop.estimator_used);
                   ( "engine_used",
                     match p.Probprop.engine with
                     | Some e -> J.Str e
                     | None -> J.Null );
                   ("symbolic_fallback", J.Bool g.Probprop.symbolic_fallback);
                   ("batches", J.Int p.Probprop.batches);
                   ("cycles_used", J.Int p.Probprop.cycles_used);
                   ( "half_interval",
                     match p.Probprop.half_interval with
                     | Some h -> J.Float h
                     | None -> J.Null ) ]))
  in
  ctx.Srv.cache <-
    (match outcome with
    | `Hit -> "hit"
    | `Miss -> "miss"
    | `Coalesced -> "coalesced");
  (* [cached] keeps its pre-outcome meaning: true only for a value that
     was already in the table when the request arrived — a coalesced
     joiner shared a computation that ran on its behalf *)
  let cached = outcome = `Hit in
  Printf.sprintf
    "{\"id\":%d,\"rid\":\"%s\",\"ok\":true,\"cached\":%b,\"result\":%s}" id
    (J.escape rid) cached result

let op_sampler t obj ~rid id =
  let name, width, net = decode_circuit t obj in
  let engine = decode_engine obj in
  let seed = with_default 47 (opt_int obj "seed") in
  let cycles = with_default 256 (opt_int obj "cycles") in
  if cycles < 2 || cycles > 100_000 then bad "cycles" "must be in 2..100000";
  let widths = widths_of name width in
  let model, dut =
    Netcache.find_or_compute t.models
      ~key:
        (Netcache.combine
           (Netcache.combine (Netlist.fingerprint net) (Int64.of_int seed))
           (Int64.of_int width))
      (fun () ->
        let dut = { Macromodel.net; widths } in
        let obs =
          List.map (Macromodel.observe dut)
            (Macromodel.training_streams ~seed dut)
        in
        (Macromodel.fit Macromodel.Bitwise dut obs, dut))
  in
  let rng = Hlp_util.Prng.create seed in
  let traces =
    List.map (fun w -> Hlp_sim.Streams.uniform rng ~width:w ~n:cycles) widths
  in
  let s = Sampling.prepare_cached ~engine model dut traces in
  let census = (Sampling.census s).Sampling.value in
  let sampled = (Sampling.sampler ~seed s).Sampling.value in
  let gate_ref = Sampling.gate_reference s in
  ok_envelope ~rid id
    (J.Obj
       [ ("op", J.Str "sampler");
         ("circuit", J.Str name);
         ("width", J.Int width);
         ("engine", J.Str (Hlp_sim.Engine.to_string engine));
         ("seed", J.Int seed);
         ("cycles", J.Int cycles);
         ("census", J.Float census);
         ("census_bits", J.Str (fbits census));
         ("sampled", J.Float sampled);
         ("sampled_bits", J.Str (fbits sampled));
         ("gate_reference", J.Float gate_ref);
         ("gate_reference_bits", J.Str (fbits gate_ref)) ])

(* One source of truth for service counters: [stats] is a thin alias
   serving exactly these fields; [metrics] serves them plus the full
   flight-recorder snapshot. *)
let stats_fields t =
  let breaker =
    match Hlp_util.Supervisor.breaker_state t.breaker with
    | Hlp_util.Supervisor.Closed -> "closed"
    | Hlp_util.Supervisor.Open -> "open"
    | Hlp_util.Supervisor.Half_open -> "half-open"
  in
  [ ("netlists", J.Int (Netcache.length t.netlists));
    ("symbolic", J.Int (Netcache.length t.symbolic));
    ("models", J.Int (Netcache.length t.models));
    ("estimates", J.Int (Netcache.length t.estimates));
    ("estimates_inflight", J.Int (Netcache.inflight t.estimates));
    ( "estimates_coalesced",
      J.Int
        (Hlp_util.Telemetry.count
           (Hlp_util.Telemetry.counter "server.estimates.coalesced")) );
    ("kernel_plans", J.Int (Hlp_sim.Kernel.cache_length ()));
    ("breaker", J.Str breaker) ]

let op_stats t ~rid id =
  ok_envelope ~rid id (J.Obj (("op", J.Str "stats") :: stats_fields t))

let cache_json : 'a. 'a Netcache.t -> string * J.t =
 fun c ->
  let cnt suffix =
    Hlp_util.Telemetry.count
      (Hlp_util.Telemetry.counter (Netcache.name c ^ suffix))
  in
  let hits = cnt ".cache_hits" and misses = cnt ".cache_misses" in
  let lookups = hits + misses in
  ( Netcache.name c,
    J.Obj
      [ ("length", J.Int (Netcache.length c));
        ("capacity", J.Int (Netcache.capacity c));
        ("inflight", J.Int (Netcache.inflight c));
        ("hits", J.Int hits);
        ("misses", J.Int misses);
        ("evictions", J.Int (cnt ".cache_evictions"));
        ("coalesced", J.Int (cnt ".coalesced"));
        ( "hit_ratio",
          if lookups = 0 then J.Null
          else J.Float (float_of_int hits /. float_of_int lookups) ) ] )

let op_metrics t ~rid id =
  let tel = Hlp_util.Telemetry.json_value () in
  let pick name = Option.value ~default:(J.Obj []) (J.member name tel) in
  ok_envelope ~rid id
    (J.Obj
       (("op", J.Str "metrics")
        :: ("uptime_s", J.Float (Hlp_util.Clock.now_s () -. t.started))
        :: ( "rss_bytes",
             match Hlp_util.Memstat.rss_bytes () with
             | Some b -> J.Int b
             | None -> J.Null )
        :: ("telemetry_enabled", J.Bool (Hlp_util.Telemetry.enabled ()))
        :: stats_fields t
       @ [ ("counters", pick "counters");
           ("histograms", pick "histograms");
           ( "caches",
             J.Obj
               [ cache_json t.netlists;
                 cache_json t.symbolic;
                 cache_json t.models;
                 cache_json t.estimates ] ) ]))

(* --- Prometheus text exposition of a metrics result object --- *)

let prom_ident name =
  "hlpower_"
  ^ String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
      name

let prometheus_of_metrics v =
  let b = Buffer.create 4096 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string b s;
        Buffer.add_char b '\n')
      fmt
  in
  (match Option.bind (J.member "uptime_s" v) J.to_float_opt with
  | Some u ->
      line "# TYPE hlpower_uptime_seconds gauge";
      line "hlpower_uptime_seconds %s" (J.float_repr u)
  | None -> ());
  (match J.member "counters" v with
  | Some (J.Obj kvs) ->
      List.iter
        (fun (name, jv) ->
          match jv with
          | J.Int n ->
              let m = prom_ident name in
              line "# TYPE %s counter" m;
              line "%s %d" m n
          | _ -> ())
        kvs
  | _ -> ());
  (match J.member "caches" v with
  | Some (J.Obj caches) ->
      List.iter
        (fun field ->
          let metric = "hlpower_cache_" ^ field in
          let values =
            List.filter_map
              (fun (cname, cv) ->
                Option.map
                  (fun x -> (cname, x))
                  (Option.bind (J.member field cv) J.to_float_opt))
              caches
          in
          if values <> [] then begin
            line "# TYPE %s gauge" metric;
            List.iter
              (fun (cname, x) ->
                line "%s{cache=%S} %s" metric cname (J.float_repr x))
              values
          end)
        [ "length"; "capacity"; "inflight"; "hits"; "misses"; "evictions";
          "coalesced"; "hit_ratio" ]
  | _ -> ());
  (match J.member "histograms" v with
  | Some (J.Obj hs) ->
      List.iter
        (fun (name, h) ->
          let metric = prom_ident name in
          line "# TYPE %s histogram" metric;
          let buckets =
            match Option.bind (J.member "buckets" h) J.to_list_opt with
            | Some l -> l
            | None -> []
          in
          (* our buckets are per-bucket counts; Prometheus wants
             cumulative-to-upper-bound *)
          let cum = ref 0 in
          List.iter
            (fun bkt ->
              match J.to_list_opt bkt with
              | Some [ upper; cnt ] -> (
                  match (J.to_float_opt upper, J.to_int_opt cnt) with
                  | Some u, Some c ->
                      cum := !cum + c;
                      line "%s_bucket{le=%S} %d" metric
                        (Printf.sprintf "%g" u)
                        !cum
                  | _ -> ())
              | _ -> ())
            buckets;
          let count =
            Option.value ~default:!cum
              (Option.bind (J.member "count" h) J.to_int_opt)
          in
          line "%s_bucket{le=\"+Inf\"} %d" metric count;
          (match Option.bind (J.member "sum" h) J.to_float_opt with
          | Some s -> line "%s_sum %s" metric (J.float_repr s)
          | None -> ());
          line "%s_count %d" metric count)
        hs
  | _ -> ());
  Buffer.contents b

let handle t (ctx : Srv.ctx) payload =
  match J.parse payload with
  | Error msg ->
      ctx.Srv.status <- "invalid-input";
      error_envelope_parts ~rid:ctx.Srv.rid (-1) "invalid-input"
        ("request parse: " ^ msg) 65
  | Ok req -> (
      let id = with_default 0 (try opt_int req "id" with Err.Error _ -> None) in
      (* a caller-supplied rid replaces the transport's fallback, so both
         sides of the wire log the same string *)
      (match (try opt_str req "rid" with Err.Error _ -> None) with
      | Some r when r <> "" -> ctx.Srv.rid <- r
      | _ -> ());
      let rid = ctx.Srv.rid in
      try
        let op = req_str req "op" in
        ctx.Srv.op <- op;
        Hlp_util.Trace.span ("service." ^ op)
          ~args:(fun () -> [ ("rid", J.Str rid) ])
          (fun () ->
            match op with
            | "ping" -> op_ping req ~rid id
            | "estimate" -> op_estimate t ctx.Srv.guard ctx req ~rid id
            | "sampler" -> op_sampler t req ~rid id
            | "stats" -> op_stats t ~rid id
            | "metrics" -> op_metrics t ~rid id
            | other -> bad "op" ("unknown op " ^ other))
      with
      | Err.Error e ->
          ctx.Srv.status <- Err.class_name e;
          error_envelope ~rid id e
      | exn ->
          (* a programming error must still answer this request; the
             daemon itself never dies for one frame *)
          ctx.Srv.status <- "internal";
          error_envelope_parts ~rid id "internal" (Printexc.to_string exn) 70)

(* --- request builders --- *)

(* Builders stamp a client-side rid when the caller did not supply one,
   so every request is findable server-side without caller bookkeeping. *)
let build ?id ?rid op fields =
  let id = match id with Some i -> [ ("id", J.Int i) ] | None -> [] in
  let rid =
    match rid with Some r -> r | None -> Srv.fresh_rid ~prefix:"c" ()
  in
  J.to_string ~compact:true
    (J.Obj (id @ (("rid", J.Str rid) :: ("op", J.Str op) :: fields)))

let opt_j name conv = function Some v -> [ (name, conv v) ] | None -> []

let ping_request ?id ?rid ?sleep_s () =
  build ?id ?rid "ping" (opt_j "sleep_s" (fun s -> J.Float s) sleep_s)

let estimate_request ?id ?rid ?engine ?seed ?relative_precision ?max_cycles
    ?node_limit ~circuit ~width () =
  build ?id ?rid "estimate"
    ([ ("circuit", J.Str circuit); ("width", J.Int width) ]
    @ opt_j "engine" (fun e -> J.Str e) engine
    @ opt_j "seed" (fun s -> J.Int s) seed
    @ opt_j "relative_precision" (fun r -> J.Float r) relative_precision
    @ opt_j "max_cycles" (fun m -> J.Int m) max_cycles
    @ opt_j "node_limit" (fun n -> J.Int n) node_limit)

let sampler_request ?id ?rid ?engine ?seed ?cycles ~circuit ~width () =
  build ?id ?rid "sampler"
    ([ ("circuit", J.Str circuit); ("width", J.Int width) ]
    @ opt_j "engine" (fun e -> J.Str e) engine
    @ opt_j "seed" (fun s -> J.Int s) seed
    @ opt_j "cycles" (fun c -> J.Int c) cycles)

let stats_request ?id ?rid () = build ?id ?rid "stats" []
let metrics_request ?id ?rid () = build ?id ?rid "metrics" []

(* --- response decoding --- *)

type response = {
  id : int;
  rid : string;
  ok : bool;
  cached : bool;
  result : J.t option;
  error : (string * string * int) option;
}

let parse_response s =
  match J.parse s with
  | Error msg -> Error ("response parse: " ^ msg)
  | Ok v -> (
      match J.member "ok" v with
      | Some (J.Bool ok) ->
          let id =
            match Option.bind (J.member "id" v) J.to_int_opt with
            | Some i -> i
            | None -> -1
          in
          let cached =
            match J.member "cached" v with Some (J.Bool b) -> b | _ -> false
          in
          let rid =
            Option.value ~default:""
              (Option.bind (J.member "rid" v) J.to_str_opt)
          in
          let error =
            match J.member "error" v with
            | Some e ->
                let s name =
                  Option.value ~default:""
                    (Option.bind (J.member name e) J.to_str_opt)
                in
                let code =
                  Option.value ~default:1
                    (Option.bind (J.member "exit_code" e) J.to_int_opt)
                in
                Some (s "class", s "message", code)
            | None -> None
          in
          Ok { id; rid; ok; cached; result = J.member "result" v; error }
      | _ -> Error "response missing \"ok\"")

let result_string r =
  Option.map (fun j -> J.to_string ~compact:true j) r.result
