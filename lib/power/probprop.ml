open Hlp_logic

type node_stats = {
  prob : float array;
  activity : float array;
}

(* Under independence, a gate's output probability is a polynomial in its
   input probabilities; the output activity is approximated by the total
   derivative (Najm's transition density):
     D(y) = sum_i |dP(y)/dP(x_i)| * D(x_i)
   where the Boolean difference probability is evaluated numerically by
   flipping one input's probability between 0 and 1. *)
let gate_prob kind pins =
  let conj () = Array.fold_left (fun acc p -> acc *. p) 1.0 pins in
  let disj () = 1.0 -. Array.fold_left (fun acc p -> acc *. (1.0 -. p)) 1.0 pins in
  match kind with
  | Gate.Input -> invalid_arg "gate_prob: input"
  | Gate.Const b -> if b then 1.0 else 0.0
  | Gate.Buf | Gate.Dff -> pins.(0)
  | Gate.Not -> 1.0 -. pins.(0)
  | Gate.And _ -> conj ()
  | Gate.Or _ -> disj ()
  | Gate.Nand _ -> 1.0 -. conj ()
  | Gate.Nor _ -> 1.0 -. disj ()
  | Gate.Xor -> (pins.(0) *. (1.0 -. pins.(1))) +. (pins.(1) *. (1.0 -. pins.(0)))
  | Gate.Xnor ->
      1.0 -. ((pins.(0) *. (1.0 -. pins.(1))) +. (pins.(1) *. (1.0 -. pins.(0))))
  | Gate.Mux -> ((1.0 -. pins.(0)) *. pins.(1)) +. (pins.(0) *. pins.(2))

let require_combinational ~what net =
  if Netlist.num_dffs net > 0 then
    raise
      (Hlp_util.Err.invalid_input ~what
         "combinational netlists only (flip-flop state breaks the closed form)")

let propagate ?(input_prob = fun _ -> 0.5) ?(input_activity = fun _ -> 0.5) net =
  require_combinational ~what:"Probprop.propagate: netlist" net;
  let n = Netlist.num_nodes net in
  let prob = Array.make n 0.0 and activity = Array.make n 0.0 in
  Array.iteri
    (fun k w ->
      prob.(w) <- input_prob k;
      activity.(w) <- input_activity k)
    net.Netlist.inputs;
  Array.iteri
    (fun i (node : Netlist.node) ->
      match node.Netlist.kind with
      | Gate.Input -> ()
      | Gate.Const b ->
          prob.(i) <- (if b then 1.0 else 0.0);
          activity.(i) <- 0.0
      | kind ->
          let pins = Array.map (fun w -> prob.(w)) node.Netlist.fanin in
          prob.(i) <- gate_prob kind pins;
          let acc = ref 0.0 in
          Array.iteri
            (fun k w ->
              let hi = Array.copy pins and lo = Array.copy pins in
              hi.(k) <- 1.0;
              lo.(k) <- 0.0;
              let sensitivity = abs_float (gate_prob kind hi -. gate_prob kind lo) in
              acc := !acc +. (sensitivity *. activity.(w)))
            node.Netlist.fanin;
          activity.(i) <- min 1.0 !acc)
    net.Netlist.nodes;
  { prob; activity }

let estimate_capacitance net stats =
  let caps = Netlist.node_capacitance net in
  let total = ref 0.0 in
  Array.iteri (fun i c -> total := !total +. (c *. stats.activity.(i))) caps;
  !total

(* --- exact symbolic estimation (BDD signal probabilities) --- *)

let tel_symbolic_runs = Hlp_util.Telemetry.counter "probprop.symbolic_runs"
let tel_symbolic_fallbacks = Hlp_util.Telemetry.counter "probprop.symbolic_fallbacks"

let symbolic ?(input_prob = fun _ -> 0.5) ?node_limit net =
  require_combinational ~what:"Probprop.symbolic: netlist" net;
  Hlp_util.Telemetry.incr tel_symbolic_runs;
  Hlp_util.Trace.span
    ~args:(fun () ->
      [ ("gates", Hlp_util.Json.Int (Netlist.num_nodes net));
        ("node_limit",
         match node_limit with
         | Some l -> Hlp_util.Json.Int l
         | None -> Hlp_util.Json.Null) ])
    "probprop.symbolic"
  @@ fun () ->
  let m = Hlp_bdd.Bdd.manager ?node_limit () in
  let order = Hlp_bdd.Bdd.first_use_order net in
  (* the budgeted part: global BDDs for every node (exponential worst case) *)
  let funcs = Hlp_bdd.Bdd.of_netlist_all ~order m net in
  let nin = Array.length net.Netlist.inputs in
  let inv = Array.make nin 0 in
  for k = 0 to nin - 1 do
    inv.(order k) <- k
  done;
  let p v = input_prob inv.(v) in
  let n = Netlist.num_nodes net in
  let prob = Array.make n 0.0 and activity = Array.make n 0.0 in
  Array.iteri
    (fun i f ->
      let pi = Hlp_bdd.Bdd.probability m ~p f in
      prob.(i) <- pi;
      (* consecutive vectors independent: a node toggles iff its settled
         value differs between two independent draws *)
      activity.(i) <- 2.0 *. pi *. (1.0 -. pi))
    funcs;
  { prob; activity }

type monte_carlo = {
  estimate : float;
  half_interval : float;
  cycles_used : int;
  batches : int;
  batch_means : float array;
}

(* Convergence telemetry: one observation per stopping-rule evaluation, so
   recorded half-widths reproduce the whole convergence trajectory. *)
let tel_batches = Hlp_util.Telemetry.counter "probprop.batches"
let tel_mc_cycles = Hlp_util.Telemetry.counter "probprop.mc_cycles"
let tel_running_mean = Hlp_util.Telemetry.series "probprop.running_mean"
let tel_half_width = Hlp_util.Telemetry.series "probprop.ci_half_width"

(* 95% Student-t half-width of the mean of [means] (df = batches - 1).
   The seed implementation used the z = 1.96 normal interval here, which
   under-covers badly at the 3-5 batch counts the stopping rule sees
   (t_{2,0.975} = 4.303): runs stopped early with intervals that missed
   the long-run mean far more than 5% of the time. *)
let ci_half_width means =
  let lo, hi =
    Hlp_util.Stats.confidence_interval ~level:0.95
      ~df:(Array.length means - 1) means
  in
  (hi -. lo) /. 2.0

(* the Burch-et-al. stopping criterion, shared by all engines *)
let ci_stop ~relative_precision ~max_cycles ~means ~cycles =
  if Array.length means >= 2 && Hlp_util.Telemetry.enabled () then begin
    Hlp_util.Telemetry.observe tel_running_mean (Hlp_util.Stats.mean means);
    Hlp_util.Telemetry.observe tel_half_width (ci_half_width means)
  end;
  cycles >= max_cycles
  || Array.length means >= 3
     &&
     let m = Hlp_util.Stats.mean means in
     let half = ci_half_width means in
     m > 0.0 && half /. m <= relative_precision

let monte_carlo_bitparallel ~batch ~relative_precision ~max_cycles ~seed ~engine
    ?jobs ?max_retries ~guard net =
  let stop ~means ~cycles =
    (* deadline / cancellation granularity: one stopping-rule evaluation *)
    Hlp_util.Guard.check ~where:"probprop.monte_carlo" guard;
    ci_stop ~relative_precision ~max_cycles ~means ~cycles
  in
  let r =
    Hlp_sim.Parsim.monte_carlo_units ?jobs ?max_retries ~engine net ~batch ~seed
      ~stop
  in
  let means = r.Hlp_sim.Parsim.unit_means in
  Hlp_util.Telemetry.add tel_batches (Array.length means);
  Hlp_util.Telemetry.add tel_mc_cycles r.Hlp_sim.Parsim.cycles;
  {
    estimate = r.Hlp_sim.Parsim.mean;
    half_interval = ci_half_width means;
    cycles_used = r.Hlp_sim.Parsim.cycles;
    batches = Array.length means;
    batch_means = means;
  }

let monte_carlo ?(batch = 30) ?(relative_precision = 0.05) ?(max_cycles = 100_000)
    ?(seed = 47) ?(engine = Hlp_sim.Engine.Scalar) ?jobs ?max_retries
    ?(guard = Hlp_util.Guard.unlimited) net =
  if batch < 2 then
    raise
      (Hlp_util.Err.invalid_input ~what:"Probprop.monte_carlo: batch"
         "must be >= 2 (batch means need at least two cycles)");
  match engine with
  | Hlp_sim.Engine.Bitparallel | Hlp_sim.Engine.Parallel ->
      monte_carlo_bitparallel ~batch ~relative_precision ~max_cycles ~seed ~engine
        ?jobs ?max_retries ~guard net
  | Hlp_sim.Engine.Scalar ->
  let rng = Hlp_util.Prng.create seed in
  let sim = Hlp_sim.Funcsim.create net in
  let nin = Array.length net.Netlist.inputs in
  let batch_means = ref [] in
  let cycles = ref 0 in
  let prev_cap = ref 0.0 in
  let rec go k =
    Hlp_util.Guard.check ~where:"probprop.monte_carlo" guard;
    Hlp_util.Trace.span
      ~args:(fun () ->
        [ ("batch", Hlp_util.Json.Int k);
          ("cycles", Hlp_util.Json.Int batch) ])
      "probprop.mc_batch"
      (fun () ->
        for _ = 1 to batch do
          Hlp_sim.Funcsim.step sim
            (Array.init nin (fun _ -> Hlp_util.Prng.bool rng))
        done);
    cycles := !cycles + batch;
    let cap = Hlp_sim.Funcsim.switched_capacitance sim in
    batch_means := ((cap -. !prev_cap) /. float_of_int batch) :: !batch_means;
    prev_cap := cap;
    let means = Array.of_list !batch_means in
    if Array.length means >= 2 && Hlp_util.Telemetry.enabled () then begin
      Hlp_util.Telemetry.observe tel_running_mean (Hlp_util.Stats.mean means);
      Hlp_util.Telemetry.observe tel_half_width (ci_half_width means)
    end;
    if Array.length means >= 3 then begin
      let m = Hlp_util.Stats.mean means in
      let half = ci_half_width means in
      if (m > 0.0 && half /. m <= relative_precision) || !cycles >= max_cycles then begin
        Hlp_util.Telemetry.add tel_batches k;
        Hlp_util.Telemetry.add tel_mc_cycles !cycles;
        { estimate = m;
          half_interval = half;
          cycles_used = !cycles;
          batches = k;
          (* !batch_means is newest-first; the record is chronological *)
          batch_means = Array.of_list (List.rev !batch_means) }
      end
      else go (k + 1)
    end
    else go (k + 1)
  in
  go 1

(* --- guarded estimation: symbolic first, sampling as the fallback --- *)

type estimator = Symbolic | Monte_carlo of monte_carlo

type provenance = {
  estimator_used : string;
  engine : string option;
  symbolic_fallback : bool;
  engine_fallbacks : int;
  seed : int;
  batches : int;
  cycles_used : int;
  half_interval : float option;
  convergence_tail : float array;
  guard_deadline_trips : int;
  guard_cancel_trips : int;
  worker_failures : int;
  shard_retries : int;
  faults_injected : (string * int) list;
  counters_live : bool;
  wall_time_s : float;
}

type guarded = {
  capacitance : float;
  estimator : estimator;
  engine_used : Hlp_sim.Engine.t option;
  symbolic_fallback : bool;
  engine_fallbacks : int;
  provenance : provenance;
}

let provenance_json p =
  let open Hlp_util.Json in
  Obj
    [ ("estimator", Str p.estimator_used);
      ("engine", match p.engine with Some e -> Str e | None -> Null);
      ("symbolic_fallback", Bool p.symbolic_fallback);
      ("engine_fallbacks", Int p.engine_fallbacks);
      ("seed", Int p.seed);
      ("batches", Int p.batches);
      ("cycles_used", Int p.cycles_used);
      ("half_interval",
       match p.half_interval with Some h -> Float h | None -> Null);
      ("convergence_tail",
       List (Array.to_list (Array.map (fun x -> Float x) p.convergence_tail)));
      ("guard_trips",
       Obj
         [ ("deadline", Int p.guard_deadline_trips);
           ("cancel", Int p.guard_cancel_trips) ]);
      ("worker_failures", Int p.worker_failures);
      ("shard_retries", Int p.shard_retries);
      ("faults_injected",
       Obj (List.map (fun (n, c) -> (n, Int c)) p.faults_injected));
      ("counters_live", Bool p.counters_live);
      ("wall_time_s", Float p.wall_time_s) ]

let default_node_limit = 200_000

(* how many trailing batch means the provenance record keeps: enough to see
   whether the stopping rule was coasting or still moving, small enough to
   keep run reports compact *)
let tail_len = 8

let estimate_guarded ?(guard = Hlp_util.Guard.unlimited)
    ?(node_limit = default_node_limit) ?input_prob ?batch ?relative_precision
    ?max_cycles ?(seed = 47) ?(engine = Hlp_sim.Engine.Bitparallel) ?jobs
    ?max_retries net =
  (* provenance baselines: counter deltas isolate this estimate's share of
     the process-wide counters. Telemetry counters only move while the
     telemetry switch is on, so the record carries [counters_live] to say
     whether the deltas are meaningful; fault-injection counters are
     independent of that switch. *)
  let t0 = Hlp_util.Clock.now_s () in
  let read name = Hlp_util.Telemetry.count (Hlp_util.Telemetry.counter name) in
  let deadline0 = read "guard.deadline_trips"
  and cancel0 = read "guard.cancel_trips"
  and failures0 = read "parsim.worker_failures"
  and retries0 = read "parsim.shard_retries" in
  let fired0 =
    List.map
      (fun p -> (p, Hlp_util.Faultinject.fired p))
      Hlp_util.Faultinject.all_points
  in
  let finish ~capacitance ~estimator ~engine_used ~symbolic_fallback
      ~engine_fallbacks =
    let batches, cycles_used, half_interval, convergence_tail =
      match estimator with
      | Symbolic -> (0, 0, None, [||])
      | Monte_carlo mc ->
          let n = Array.length mc.batch_means in
          let k = min tail_len n in
          ( mc.batches,
            mc.cycles_used,
            Some mc.half_interval,
            Array.sub mc.batch_means (n - k) k )
    in
    let provenance =
      { estimator_used =
          (match estimator with
          | Symbolic -> "symbolic"
          | Monte_carlo _ -> "monte_carlo");
        engine = Option.map Hlp_sim.Engine.to_string engine_used;
        symbolic_fallback;
        engine_fallbacks;
        seed;
        batches;
        cycles_used;
        half_interval;
        convergence_tail;
        guard_deadline_trips = read "guard.deadline_trips" - deadline0;
        guard_cancel_trips = read "guard.cancel_trips" - cancel0;
        worker_failures = read "parsim.worker_failures" - failures0;
        shard_retries = read "parsim.shard_retries" - retries0;
        faults_injected =
          List.filter_map
            (fun (p, n0) ->
              let d = Hlp_util.Faultinject.fired p - n0 in
              if d > 0 then Some (Hlp_util.Faultinject.point_name p, d)
              else None)
            fired0;
        counters_live = Hlp_util.Telemetry.enabled ();
        wall_time_s = Hlp_util.Clock.now_s () -. t0 }
    in
    { capacitance; estimator; engine_used; symbolic_fallback; engine_fallbacks;
      provenance }
  in
  Hlp_util.Trace.span "probprop.estimate_guarded" @@ fun () ->
  Hlp_util.Guard.run guard @@ fun guard ->
  (* stage 1: exact symbolic propagation under a BDD node budget.
     Sequential netlists skip straight to sampling (the closed form needs
     a combinational cone); a budget trip is the paper's symbolic blowup,
     counted and degraded, never fatal. *)
  let symbolic_cap, symbolic_fallback =
    if Netlist.num_dffs net > 0 then (None, false)
    else
      match symbolic ?input_prob ~node_limit net with
      | stats -> (Some (estimate_capacitance net stats), false)
      | exception Hlp_util.Err.Error (Hlp_util.Err.Budget_exceeded _) ->
          Hlp_util.Telemetry.incr tel_symbolic_fallbacks;
          Hlp_util.Trace.instant
            ~args:(fun () -> [ ("node_limit", Hlp_util.Json.Int node_limit) ])
            "probprop.symbolic_budget_trip";
          (None, true)
  in
  match symbolic_cap with
  | Some cap ->
      finish ~capacitance:cap ~estimator:Symbolic ~engine_used:None
        ~symbolic_fallback:false ~engine_fallbacks:0
  | None -> (
      Hlp_util.Guard.check ~where:"probprop.fallback" guard;
      (* stage 2: Monte Carlo sampling behind the engine degradation
         chain (Parallel -> Bitparallel -> Scalar from [engine] down) *)
      match
        Hlp_sim.Parsim.with_degradation ~what:"probprop.monte_carlo" ~guard
          ~engine (fun e ->
            monte_carlo ?batch ?relative_precision ?max_cycles ~seed ~engine:e
              ?jobs ?max_retries ~guard net)
      with
      | Ok d ->
          finish ~capacitance:d.Hlp_sim.Parsim.value.estimate
            ~estimator:(Monte_carlo d.Hlp_sim.Parsim.value)
            ~engine_used:(Some d.Hlp_sim.Parsim.engine_used) ~symbolic_fallback
            ~engine_fallbacks:d.Hlp_sim.Parsim.fallbacks
      | Error e -> raise (Hlp_util.Err.Error e))
