open Hlp_logic

type node_stats = {
  prob : float array;
  activity : float array;
}

(* Under independence, a gate's output probability is a polynomial in its
   input probabilities; the output activity is approximated by the total
   derivative (Najm's transition density):
     D(y) = sum_i |dP(y)/dP(x_i)| * D(x_i)
   where the Boolean difference probability is evaluated numerically by
   flipping one input's probability between 0 and 1. *)
let gate_prob kind pins =
  let conj () = Array.fold_left (fun acc p -> acc *. p) 1.0 pins in
  let disj () = 1.0 -. Array.fold_left (fun acc p -> acc *. (1.0 -. p)) 1.0 pins in
  match kind with
  | Gate.Input -> invalid_arg "gate_prob: input"
  | Gate.Const b -> if b then 1.0 else 0.0
  | Gate.Buf | Gate.Dff -> pins.(0)
  | Gate.Not -> 1.0 -. pins.(0)
  | Gate.And _ -> conj ()
  | Gate.Or _ -> disj ()
  | Gate.Nand _ -> 1.0 -. conj ()
  | Gate.Nor _ -> 1.0 -. disj ()
  | Gate.Xor -> (pins.(0) *. (1.0 -. pins.(1))) +. (pins.(1) *. (1.0 -. pins.(0)))
  | Gate.Xnor ->
      1.0 -. ((pins.(0) *. (1.0 -. pins.(1))) +. (pins.(1) *. (1.0 -. pins.(0))))
  | Gate.Mux -> ((1.0 -. pins.(0)) *. pins.(1)) +. (pins.(0) *. pins.(2))

let require_combinational ~what net =
  if Netlist.num_dffs net > 0 then
    raise
      (Hlp_util.Err.invalid_input ~what
         "combinational netlists only (flip-flop state breaks the closed form)")

let propagate ?(input_prob = fun _ -> 0.5) ?(input_activity = fun _ -> 0.5) net =
  require_combinational ~what:"Probprop.propagate: netlist" net;
  let n = Netlist.num_nodes net in
  let prob = Array.make n 0.0 and activity = Array.make n 0.0 in
  Array.iteri
    (fun k w ->
      prob.(w) <- input_prob k;
      activity.(w) <- input_activity k)
    net.Netlist.inputs;
  Array.iteri
    (fun i (node : Netlist.node) ->
      match node.Netlist.kind with
      | Gate.Input -> ()
      | Gate.Const b ->
          prob.(i) <- (if b then 1.0 else 0.0);
          activity.(i) <- 0.0
      | kind ->
          let pins = Array.map (fun w -> prob.(w)) node.Netlist.fanin in
          prob.(i) <- gate_prob kind pins;
          let acc = ref 0.0 in
          Array.iteri
            (fun k w ->
              let hi = Array.copy pins and lo = Array.copy pins in
              hi.(k) <- 1.0;
              lo.(k) <- 0.0;
              let sensitivity = abs_float (gate_prob kind hi -. gate_prob kind lo) in
              acc := !acc +. (sensitivity *. activity.(w)))
            node.Netlist.fanin;
          activity.(i) <- min 1.0 !acc)
    net.Netlist.nodes;
  { prob; activity }

let estimate_capacitance net stats =
  let caps = Netlist.node_capacitance net in
  let total = ref 0.0 in
  Array.iteri (fun i c -> total := !total +. (c *. stats.activity.(i))) caps;
  !total

(* --- exact symbolic estimation (BDD signal probabilities) --- *)

let tel_symbolic_runs = Hlp_util.Telemetry.counter "probprop.symbolic_runs"
let tel_symbolic_fallbacks = Hlp_util.Telemetry.counter "probprop.symbolic_fallbacks"

let symbolic ?(input_prob = fun _ -> 0.5) ?node_limit net =
  require_combinational ~what:"Probprop.symbolic: netlist" net;
  Hlp_util.Telemetry.incr tel_symbolic_runs;
  Hlp_util.Trace.span
    ~args:(fun () ->
      [ ("gates", Hlp_util.Json.Int (Netlist.num_nodes net));
        ("node_limit",
         match node_limit with
         | Some l -> Hlp_util.Json.Int l
         | None -> Hlp_util.Json.Null) ])
    "probprop.symbolic"
  @@ fun () ->
  let m = Hlp_bdd.Bdd.manager ?node_limit () in
  let order = Hlp_bdd.Bdd.first_use_order net in
  (* the budgeted part: global BDDs for every node (exponential worst case) *)
  let funcs = Hlp_bdd.Bdd.of_netlist_all ~order m net in
  let nin = Array.length net.Netlist.inputs in
  let inv = Array.make nin 0 in
  for k = 0 to nin - 1 do
    inv.(order k) <- k
  done;
  let p v = input_prob inv.(v) in
  let n = Netlist.num_nodes net in
  let prob = Array.make n 0.0 and activity = Array.make n 0.0 in
  Array.iteri
    (fun i f ->
      let pi = Hlp_bdd.Bdd.probability m ~p f in
      prob.(i) <- pi;
      (* consecutive vectors independent: a node toggles iff its settled
         value differs between two independent draws *)
      activity.(i) <- 2.0 *. pi *. (1.0 -. pi))
    funcs;
  { prob; activity }

type monte_carlo = {
  estimate : float;
  half_interval : float;
  cycles_used : int;
  batches : int;
  batch_means : float array;
}

(* Convergence telemetry: one observation per stopping-rule evaluation, so
   recorded half-widths reproduce the whole convergence trajectory. *)
let tel_batches = Hlp_util.Telemetry.counter "probprop.batches"
let tel_mc_cycles = Hlp_util.Telemetry.counter "probprop.mc_cycles"
let tel_running_mean = Hlp_util.Telemetry.series "probprop.running_mean"
let tel_half_width = Hlp_util.Telemetry.series "probprop.ci_half_width"

(* 95% Student-t half-width of the mean of [means] (df = batches - 1).
   The seed implementation used the z = 1.96 normal interval here, which
   under-covers badly at the 3-5 batch counts the stopping rule sees
   (t_{2,0.975} = 4.303): runs stopped early with intervals that missed
   the long-run mean far more than 5% of the time. *)
let ci_half_width means =
  let lo, hi =
    Hlp_util.Stats.confidence_interval ~level:0.95
      ~df:(Array.length means - 1) means
  in
  (hi -. lo) /. 2.0

(* the Burch-et-al. stopping criterion, shared by all engines *)
let ci_stop ~relative_precision ~max_cycles ~means ~cycles =
  if Array.length means >= 2 && Hlp_util.Telemetry.enabled () then begin
    Hlp_util.Telemetry.observe tel_running_mean (Hlp_util.Stats.mean means);
    Hlp_util.Telemetry.observe tel_half_width (ci_half_width means)
  end;
  cycles >= max_cycles
  || Array.length means >= 3
     &&
     let m = Hlp_util.Stats.mean means in
     let half = ci_half_width means in
     m > 0.0 && half /. m <= relative_precision

(* --- crash-safe checkpointing ---

   A checkpoint is a {!Hlp_util.Journal} of the Monte Carlo loop's exact
   state at batch/unit boundaries. Floats cross the journal as the hex of
   their IEEE-754 bits ([%Lx]), never as decimal text: float addition is
   non-associative and [%.17g] round-trips are not the accumulator, so
   anything less than bit transport would break the byte-identical-resume
   contract. The first record is a header binding the journal to the run
   parameters and the circuit fingerprint; a mismatch self-heals (truncate
   and start fresh, counted in ["probprop.ck_header_mismatches"]) rather
   than wedging a batch campaign after a parameter change. *)

type checkpoint = {
  ck_path : string;
  ck_every : int;
  ck_sync_every : int;
  ck_resume : bool;
  ck_on_batch : (int -> unit) option;
}

let checkpoint ?(every = 1) ?(sync_every = 16) ?(resume = false) ?on_batch path
    =
  if every < 1 then
    raise
      (Hlp_util.Err.invalid_input ~what:"Probprop.checkpoint: every"
         "must be >= 1");
  if sync_every < 1 then
    raise
      (Hlp_util.Err.invalid_input ~what:"Probprop.checkpoint: sync_every"
         "must be >= 1");
  { ck_path = path;
    ck_every = every;
    ck_sync_every = sync_every;
    ck_resume = resume;
    ck_on_batch = on_batch }

let tel_ck_records = Hlp_util.Telemetry.counter "probprop.ck_records"
let tel_ck_resumes = Hlp_util.Telemetry.counter "probprop.ck_resumes"
let tel_ck_torn = Hlp_util.Telemetry.counter "probprop.ck_torn_tails"

let tel_ck_mismatches =
  Hlp_util.Telemetry.counter "probprop.ck_header_mismatches"

let bits_hex f = Printf.sprintf "%Lx" (Int64.bits_of_float f)

(* hex parses modulo 2^64, so all 64 bit patterns round-trip *)
let bits_of_hex s = Int64.float_of_bits (Int64.of_string ("0x" ^ s))

let header_payload ~kind ~seed ~batch ~relative_precision ~max_cycles ~engine
    net =
  Hlp_util.Json.to_string ~compact:true
    (Hlp_util.Json.Obj
       [ ("v", Hlp_util.Json.Int 1);
         ("kind", Hlp_util.Json.Str kind);
         ("seed", Hlp_util.Json.Int seed);
         ("batch", Hlp_util.Json.Int batch);
         ("rp", Hlp_util.Json.Str (bits_hex relative_precision));
         ("max_cycles", Hlp_util.Json.Int max_cycles);
         ("engine", Hlp_util.Json.Str engine);
         ("net",
          Hlp_util.Json.Str (Printf.sprintf "%Lx" (Netlist.fingerprint net)))
       ])

type ck_writer = {
  ckw : checkpoint;
  j : Hlp_util.Journal.t;
  mutable n : int;  (* records appended through this writer *)
}

let ck_append w payload =
  Hlp_util.Journal.append w.j payload;
  w.n <- w.n + 1;
  Hlp_util.Telemetry.incr tel_ck_records;
  (* group commit: fsync every few records, and always at close *)
  if w.n mod w.ckw.ck_sync_every = 0 then Hlp_util.Journal.sync w.j

(* the on_batch hook exists so tests can kill the process at an exact
   checkpoint boundary; sync first so the record the hook announces is
   actually durable when the bullet arrives *)
let ck_notify w k =
  match w.ckw.ck_on_batch with
  | None -> ()
  | Some f ->
      Hlp_util.Journal.sync w.j;
      f k

let ck_heal ck ~header j =
  Hlp_util.Telemetry.incr tel_ck_mismatches;
  Hlp_util.Trace.instant "probprop.ck_self_heal";
  Hlp_util.Journal.close j;
  let j, _ = Hlp_util.Journal.open_ ~resume:false ck.ck_path in
  Hlp_util.Journal.append j header;
  j

(* open the journal, validate (or write) the header, and return the
   surviving body records when resuming *)
let ck_open ck ~header =
  if ck.ck_resume then begin
    let r = Hlp_util.Journal.recover ck.ck_path in
    if r.Hlp_util.Journal.torn_bytes > 0 then
      Hlp_util.Telemetry.incr tel_ck_torn
  end;
  let j, records = Hlp_util.Journal.open_ ~resume:ck.ck_resume ck.ck_path in
  match records with
  | h :: rest when String.equal h header -> (j, rest)
  | [] ->
      Hlp_util.Journal.append j header;
      (j, [])
  | _ -> (ck_heal ck ~header j, [])

(* --- scalar-engine checkpoint records ---

   One record per [every] batches:
   {"k":last batch index,"means":[bits...],"prng":bits,"cap":bits,
    "cycles":n,"vec":"0101..."} — the batch means since the previous
   record plus the complete simulator state at the batch boundary: PRNG
   state, the exact switched-capacitance accumulator, and the last input
   vector (node values are a pure function of it on a combinational
   net, so replaying one uncounted step re-primes the simulator). *)

type scalar_resume = {
  sr_k : int;  (* batches completed *)
  sr_means_rev : float list;  (* newest-first, like the live loop *)
  sr_prng : int64;
  sr_cap : float;
  sr_cycles : int;
  sr_vec : bool array;
}

let scalar_record ~k ~means ~prng ~cap ~cycles ~vec =
  Hlp_util.Json.to_string ~compact:true
    (Hlp_util.Json.Obj
       [ ("k", Hlp_util.Json.Int k);
         ("means",
          Hlp_util.Json.List
            (List.map (fun m -> Hlp_util.Json.Str (bits_hex m)) means));
         ("prng", Hlp_util.Json.Str (Printf.sprintf "%Lx" prng));
         ("cap", Hlp_util.Json.Str (bits_hex cap));
         ("cycles", Hlp_util.Json.Int cycles);
         ("vec",
          Hlp_util.Json.Str
            (String.init (Array.length vec) (fun i ->
                 if vec.(i) then '1' else '0'))) ])

let parse_scalar_record payload =
  match Hlp_util.Json.parse payload with
  | Error _ -> None
  | Ok v -> (
      let open Hlp_util.Json in
      try
        let get f name = Option.get (f (Option.get (member name v))) in
        let means =
          List.map
            (fun m -> bits_of_hex (Option.get (to_str_opt m)))
            (get to_list_opt "means")
        in
        let vs = get to_str_opt "vec" in
        Some
          { sr_k = get to_int_opt "k";
            sr_means_rev = List.rev means;
            sr_prng = Int64.of_string ("0x" ^ get to_str_opt "prng");
            sr_cap = bits_of_hex (get to_str_opt "cap");
            sr_cycles = get to_int_opt "cycles";
            sr_vec = Array.init (String.length vs) (fun i -> vs.[i] = '1') }
      with _ -> None)

(* fold the body records into the state at the last one; [None] on any
   malformed or inconsistent record (the caller self-heals) *)
let parse_scalar_records ~nin records =
  let rec go acc = function
    | [] -> acc
    | r :: rest -> (
        match (parse_scalar_record r, acc) with
        | None, _ -> None
        | Some sr, prev ->
            let means_rev =
              match prev with
              | None -> sr.sr_means_rev
              | Some p -> sr.sr_means_rev @ p.sr_means_rev
            in
            if
              List.length means_rev <> sr.sr_k
              || Array.length sr.sr_vec <> nin
            then None
            else go (Some { sr with sr_means_rev = means_rev }) rest)
  in
  go None records

(* --- unit-engine checkpoint records ---

   One record per freshly computed unit: {"u":index,"mean":bits}. A
   unit's mean is a pure function of (seed, unit index), so no PRNG or
   simulator state travels; resume means are the longest contiguous
   index prefix, after dropping duplicates (a crash mid-round re-runs
   and re-journals that round). *)

let unit_record ~u ~mean =
  Hlp_util.Json.to_string ~compact:true
    (Hlp_util.Json.Obj
       [ ("u", Hlp_util.Json.Int u);
         ("mean", Hlp_util.Json.Str (bits_hex mean)) ])

let parse_unit_record payload =
  match Hlp_util.Json.parse payload with
  | Error _ -> None
  | Ok v -> (
      let open Hlp_util.Json in
      try
        Some
          ( Option.get (to_int_opt (Option.get (member "u" v))),
            bits_of_hex (Option.get (to_str_opt (Option.get (member "mean" v))))
          )
      with _ -> None)

let parse_unit_records records =
  let tbl = Hashtbl.create 64 in
  let ok =
    List.for_all
      (fun r ->
        match parse_unit_record r with
        | Some (u, m) ->
            if u >= 0 && not (Hashtbl.mem tbl u) then Hashtbl.add tbl u m;
            u >= 0
        | None -> false)
      records
  in
  if not ok then None
  else begin
    let rec prefix acc u =
      match Hashtbl.find_opt tbl u with
      | Some m -> prefix (m :: acc) (u + 1)
      | None -> Array.of_list (List.rev acc)
    in
    Some (prefix [] 0)
  end

let monte_carlo_bitparallel ~batch ~relative_precision ~max_cycles ~seed ~engine
    ?jobs ?max_retries ?checkpoint:ck ~guard net =
  let writer, resume_means =
    match ck with
    | None -> (None, None)
    | Some ck -> (
        let header =
          (* per-unit means are a pure function of (seed, unit index) and
             bit-identical across the unit engines (the kernel suite pins
             it), so the header binds the record format, not the
             arithmetic backend: a campaign checkpointed under one unit
             engine resumes byte-identically under another *)
          header_payload ~kind:"mc-units" ~seed ~batch ~relative_precision
            ~max_cycles ~engine:"units" net
        in
        let j, records = ck_open ck ~header in
        let w = { ckw = ck; j; n = 0 } in
        match records with
        | [] -> (Some w, None)
        | _ -> (
            match parse_unit_records records with
            | Some means when Array.length means > 0 ->
                Hlp_util.Telemetry.incr tel_ck_resumes;
                (Some w, Some means)
            | Some _ -> (Some w, None)
            | None -> (Some { w with j = ck_heal ck ~header j }, None)))
  in
  let on_unit =
    Option.map
      (fun w u mean ->
        ck_append w (unit_record ~u ~mean);
        ck_notify w u)
      writer
  in
  let stop ~means ~cycles =
    (* deadline / cancellation granularity: one stopping-rule evaluation *)
    Hlp_util.Guard.check ~where:"probprop.monte_carlo" guard;
    ci_stop ~relative_precision ~max_cycles ~means ~cycles
  in
  let finally () =
    match writer with Some w -> Hlp_util.Journal.close w.j | None -> ()
  in
  let r =
    Fun.protect ~finally (fun () ->
        Hlp_sim.Parsim.monte_carlo_units ?jobs ?max_retries ?resume_means
          ?on_unit ~engine net ~batch ~seed ~stop)
  in
  let means = r.Hlp_sim.Parsim.unit_means in
  Hlp_util.Telemetry.add tel_batches (Array.length means);
  Hlp_util.Telemetry.add tel_mc_cycles r.Hlp_sim.Parsim.cycles;
  {
    estimate = r.Hlp_sim.Parsim.mean;
    half_interval = ci_half_width means;
    cycles_used = r.Hlp_sim.Parsim.cycles;
    batches = Array.length means;
    batch_means = means;
  }

let monte_carlo ?(batch = 30) ?(relative_precision = 0.05) ?(max_cycles = 100_000)
    ?(seed = 47) ?(engine = Hlp_sim.Engine.Scalar) ?jobs ?max_retries
    ?checkpoint:ck ?(guard = Hlp_util.Guard.unlimited) net =
  if batch < 2 then
    raise
      (Hlp_util.Err.invalid_input ~what:"Probprop.monte_carlo: batch"
         "must be >= 2 (batch means need at least two cycles)");
  match engine with
  | Hlp_sim.Engine.Bitparallel | Hlp_sim.Engine.Parallel
  | Hlp_sim.Engine.Compiled ->
      monte_carlo_bitparallel ~batch ~relative_precision ~max_cycles ~seed ~engine
        ?jobs ?max_retries ?checkpoint:ck ~guard net
  | Hlp_sim.Engine.Scalar ->
  let nin = Array.length net.Netlist.inputs in
  let writer, resume =
    match ck with
    | None -> (None, None)
    | Some ck -> (
        if Netlist.num_dffs net > 0 then
          raise
            (Hlp_util.Err.invalid_input
               ~what:"Probprop.monte_carlo: checkpoint"
               "scalar checkpointing needs a combinational netlist \
                (flip-flop state cannot be restored from one vector)");
        let header =
          header_payload ~kind:"mc-scalar" ~seed ~batch ~relative_precision
            ~max_cycles ~engine:"scalar" net
        in
        let j, records = ck_open ck ~header in
        let w = { ckw = ck; j; n = 0 } in
        match records with
        | [] -> (Some w, None)
        | _ -> (
            match parse_scalar_records ~nin records with
            | Some sr ->
                Hlp_util.Telemetry.incr tel_ck_resumes;
                (Some w, Some sr)
            | None -> (Some { w with j = ck_heal ck ~header j }, None)))
  in
  let sim = Hlp_sim.Funcsim.create net in
  let rng, means0, cap0, cycles0, k0 =
    match resume with
    | None -> (Hlp_util.Prng.create seed, [], 0.0, 0, 0)
    | Some sr ->
        Hlp_sim.Funcsim.restore sim ~inputs:sr.sr_vec ~switched:sr.sr_cap
          ~cycles:sr.sr_cycles;
        ( Hlp_util.Prng.of_state sr.sr_prng,
          sr.sr_means_rev,
          sr.sr_cap,
          sr.sr_cycles,
          sr.sr_k )
  in
  let batch_means = ref means0 in
  let cycles = ref cycles0 in
  let prev_cap = ref cap0 in
  let pending = ref [] in (* means since the last journal record, newest-first *)
  let last_vec = ref [||] in
  let journal_batch k =
    match writer with
    | None -> ()
    | Some w ->
        if k mod w.ckw.ck_every = 0 && !pending <> [] then begin
          ck_append w
            (scalar_record ~k ~means:(List.rev !pending)
               ~prng:(Hlp_util.Prng.state rng) ~cap:!prev_cap ~cycles:!cycles
               ~vec:!last_vec);
          pending := []
        end;
        ck_notify w k
  in
  (* evaluate the stopping rule on the means so far; also the resume
     entry check, covering a crash after the rule fired but before the
     run could report *)
  let stop_now () =
    let means = Array.of_list !batch_means in
    if Array.length means >= 2 && Hlp_util.Telemetry.enabled () then begin
      Hlp_util.Telemetry.observe tel_running_mean (Hlp_util.Stats.mean means);
      Hlp_util.Telemetry.observe tel_half_width (ci_half_width means)
    end;
    if Array.length means >= 3 then begin
      let m = Hlp_util.Stats.mean means in
      let half = ci_half_width means in
      if (m > 0.0 && half /. m <= relative_precision) || !cycles >= max_cycles
      then Some (m, half)
      else None
    end
    else None
  in
  let finish (m, half) k =
    (match writer with
    | None -> ()
    | Some w ->
        (* flush means journaled on no record yet (every > 1), then seal *)
        if !pending <> [] then
          ck_append w
            (scalar_record ~k ~means:(List.rev !pending)
               ~prng:(Hlp_util.Prng.state rng) ~cap:!prev_cap ~cycles:!cycles
               ~vec:!last_vec);
        Hlp_util.Journal.close w.j);
    Hlp_util.Telemetry.add tel_batches k;
    Hlp_util.Telemetry.add tel_mc_cycles !cycles;
    { estimate = m;
      half_interval = half;
      cycles_used = !cycles;
      batches = k;
      (* !batch_means is newest-first; the record is chronological *)
      batch_means = Array.of_list (List.rev !batch_means) }
  in
  let rec go k =
    Hlp_util.Guard.check ~where:"probprop.monte_carlo" guard;
    Hlp_util.Trace.span
      ~args:(fun () ->
        [ ("batch", Hlp_util.Json.Int k);
          ("cycles", Hlp_util.Json.Int batch) ])
      "probprop.mc_batch"
      (fun () ->
        for _ = 1 to batch do
          let v = Array.init nin (fun _ -> Hlp_util.Prng.bool rng) in
          last_vec := v;
          Hlp_sim.Funcsim.step sim v
        done);
    cycles := !cycles + batch;
    let cap = Hlp_sim.Funcsim.switched_capacitance sim in
    let mean = (cap -. !prev_cap) /. float_of_int batch in
    batch_means := mean :: !batch_means;
    pending := mean :: !pending;
    prev_cap := cap;
    journal_batch k;
    match stop_now () with Some mh -> finish mh k | None -> go (k + 1)
  in
  (* Journal.close is idempotent: finish seals on the success path, and
     the protect covers guard trips and faults without losing records *)
  let finally () =
    match writer with Some w -> Hlp_util.Journal.close w.j | None -> ()
  in
  Fun.protect ~finally (fun () ->
      match if k0 > 0 then stop_now () else None with
      | Some mh -> finish mh k0
      | None -> go (k0 + 1))

(* --- guarded estimation: symbolic first, sampling as the fallback --- *)

type estimator = Symbolic | Monte_carlo of monte_carlo

type provenance = {
  estimator_used : string;
  engine : string option;
  symbolic_fallback : bool;
  engine_fallbacks : int;
  seed : int;
  batches : int;
  cycles_used : int;
  half_interval : float option;
  convergence_tail : float array;
  guard_deadline_trips : int;
  guard_cancel_trips : int;
  worker_failures : int;
  shard_retries : int;
  faults_injected : (string * int) list;
  counters_live : bool;
  wall_time_s : float;
}

type guarded = {
  capacitance : float;
  estimator : estimator;
  engine_used : Hlp_sim.Engine.t option;
  symbolic_fallback : bool;
  engine_fallbacks : int;
  provenance : provenance;
}

let provenance_json p =
  let open Hlp_util.Json in
  Obj
    [ ("estimator", Str p.estimator_used);
      ("engine", match p.engine with Some e -> Str e | None -> Null);
      ("symbolic_fallback", Bool p.symbolic_fallback);
      ("engine_fallbacks", Int p.engine_fallbacks);
      ("seed", Int p.seed);
      ("batches", Int p.batches);
      ("cycles_used", Int p.cycles_used);
      ("half_interval",
       match p.half_interval with Some h -> Float h | None -> Null);
      ("convergence_tail",
       List (Array.to_list (Array.map (fun x -> Float x) p.convergence_tail)));
      ("guard_trips",
       Obj
         [ ("deadline", Int p.guard_deadline_trips);
           ("cancel", Int p.guard_cancel_trips) ]);
      ("worker_failures", Int p.worker_failures);
      ("shard_retries", Int p.shard_retries);
      ("faults_injected",
       Obj (List.map (fun (n, c) -> (n, Int c)) p.faults_injected));
      ("counters_live", Bool p.counters_live);
      ("wall_time_s", Float p.wall_time_s) ]

let default_node_limit = 200_000

(* how many trailing batch means the provenance record keeps: enough to see
   whether the stopping rule was coasting or still moving, small enough to
   keep run reports compact *)
let tail_len = 8

let estimate_guarded ?(guard = Hlp_util.Guard.unlimited)
    ?(node_limit = default_node_limit) ?input_prob ?batch ?relative_precision
    ?max_cycles ?(seed = 47) ?(engine = Hlp_sim.Engine.Bitparallel) ?jobs
    ?max_retries ?(try_symbolic = true) ?symbolic_cache ?checkpoint:ck net =
  (* provenance baselines: counter deltas isolate this estimate's share of
     the process-wide counters. Telemetry counters only move while the
     telemetry switch is on, so the record carries [counters_live] to say
     whether the deltas are meaningful; fault-injection counters are
     independent of that switch. *)
  let t0 = Hlp_util.Clock.now_s () in
  let read name = Hlp_util.Telemetry.count (Hlp_util.Telemetry.counter name) in
  let deadline0 = read "guard.deadline_trips"
  and cancel0 = read "guard.cancel_trips"
  and failures0 = read "parsim.worker_failures"
  and retries0 = read "parsim.shard_retries" in
  let fired0 =
    List.map
      (fun p -> (p, Hlp_util.Faultinject.fired p))
      Hlp_util.Faultinject.all_points
  in
  let finish ~capacitance ~estimator ~engine_used ~symbolic_fallback
      ~engine_fallbacks =
    let batches, cycles_used, half_interval, convergence_tail =
      match estimator with
      | Symbolic -> (0, 0, None, [||])
      | Monte_carlo mc ->
          let n = Array.length mc.batch_means in
          let k = min tail_len n in
          ( mc.batches,
            mc.cycles_used,
            Some mc.half_interval,
            Array.sub mc.batch_means (n - k) k )
    in
    let provenance =
      { estimator_used =
          (match estimator with
          | Symbolic -> "symbolic"
          | Monte_carlo _ -> "monte_carlo");
        engine = Option.map Hlp_sim.Engine.to_string engine_used;
        symbolic_fallback;
        engine_fallbacks;
        seed;
        batches;
        cycles_used;
        half_interval;
        convergence_tail;
        guard_deadline_trips = read "guard.deadline_trips" - deadline0;
        guard_cancel_trips = read "guard.cancel_trips" - cancel0;
        worker_failures = read "parsim.worker_failures" - failures0;
        shard_retries = read "parsim.shard_retries" - retries0;
        faults_injected =
          List.filter_map
            (fun (p, n0) ->
              let d = Hlp_util.Faultinject.fired p - n0 in
              if d > 0 then Some (Hlp_util.Faultinject.point_name p, d)
              else None)
            fired0;
        counters_live = Hlp_util.Telemetry.enabled ();
        wall_time_s = Hlp_util.Clock.now_s () -. t0 }
    in
    { capacitance; estimator; engine_used; symbolic_fallback; engine_fallbacks;
      provenance }
  in
  Hlp_util.Trace.span "probprop.estimate_guarded" @@ fun () ->
  Hlp_util.Guard.run guard @@ fun guard ->
  (* stage 1: exact symbolic propagation under a BDD node budget.
     Sequential netlists skip straight to sampling (the closed form needs
     a combinational cone); a budget trip is the paper's symbolic blowup,
     counted and degraded, never fatal. *)
  let symbolic_cap, symbolic_fallback =
    (* [try_symbolic = false] is the supervisor's circuit breaker saying
       the BDD stage has been tripping: route straight to sampling *)
    if Netlist.num_dffs net > 0 || not try_symbolic then (None, false)
    else begin
      let budget_trip () =
        Hlp_util.Telemetry.incr tel_symbolic_fallbacks;
        Hlp_util.Trace.instant
          ~args:(fun () -> [ ("node_limit", Hlp_util.Json.Int node_limit) ])
          "probprop.symbolic_budget_trip";
        (None, true)
      in
      match (input_prob, symbolic_cache) with
      | None, Some cache -> (
          (* the exact symbolic answer is pure in the netlist structure
             (under the default input distribution), so the serve daemon
             caches it by fingerprint. Only successes are inserted: a
             budget trip raises out of the compute thunk before the
             insert, so a later call with a larger budget still tries. *)
          match
            Netcache.find_or_compute cache ~key:(Netlist.fingerprint net)
              (fun () ->
                estimate_capacitance net (symbolic ~node_limit net))
          with
          | cap -> (Some cap, false)
          | exception Hlp_util.Err.Error (Hlp_util.Err.Budget_exceeded _) ->
              budget_trip ())
      | _ -> (
          match symbolic ?input_prob ~node_limit net with
          | stats -> (Some (estimate_capacitance net stats), false)
          | exception Hlp_util.Err.Error (Hlp_util.Err.Budget_exceeded _) ->
              budget_trip ())
    end
  in
  match symbolic_cap with
  | Some cap ->
      finish ~capacitance:cap ~estimator:Symbolic ~engine_used:None
        ~symbolic_fallback:false ~engine_fallbacks:0
  | None -> (
      Hlp_util.Guard.check ~where:"probprop.fallback" guard;
      (* stage 2: Monte Carlo sampling behind the engine degradation
         chain (Parallel -> Bitparallel -> Scalar from [engine] down) *)
      match
        Hlp_sim.Parsim.with_degradation ~what:"probprop.monte_carlo" ~guard
          ~engine (fun e ->
            monte_carlo ?batch ?relative_precision ?max_cycles ~seed ~engine:e
              ?jobs ?max_retries ?checkpoint:ck ~guard net)
      with
      | Ok d ->
          finish ~capacitance:d.Hlp_sim.Parsim.value.estimate
            ~estimator:(Monte_carlo d.Hlp_sim.Parsim.value)
            ~engine_used:(Some d.Hlp_sim.Parsim.engine_used) ~symbolic_fallback
            ~engine_fallbacks:d.Hlp_sim.Parsim.fallbacks
      | Error e -> raise (Hlp_util.Err.Error e))
