(** Regression-based power macro-models (Section II-C1).

    The flow is the paper's, end to end: characterize an RT-level module by
    simulating it under training streams and least-squares fitting a
    macro-model equation to the measured switched capacitance; then predict
    the power of unseen streams from their statistics alone. The model
    ladder reproduced here, in increasing accuracy and cost:

    - power-factor approximation (constant per activation) [39]
    - dual-bit-type model (uniform + sign regions) [40]
    - bitwise model (one coefficient per input pin)
    - input-output model (adds the output activity term)
    - 3-dimensional table (P_in, D_in, D_out) with interpolation [41] *)

type dut = {
  net : Hlp_logic.Netlist.t;
  widths : int list;  (** input word partition, LSB-first, in input order *)
}

type stream_stats = {
  in_acts : Hlp_sim.Activity.t list;  (** per input word *)
  out_act : Hlp_sim.Activity.t;  (** module outputs under zero-delay sim *)
  sign_probs : float array list;  (** per word: [++ +- -+ --] probabilities *)
  breakpoints : int list;  (** per word: dual-bit-type boundary *)
}

type observation = {
  stats : stream_stats;
  cap : float;  (** measured switched capacitance per cycle *)
}

val observe : dut -> int array list -> observation
(** Simulate the module under one stream per input word (all the same
    length) and collect statistics plus the reference capacitance. *)

val training_streams :
  ?seed:int -> ?n:int -> dut -> int array list list
(** The characterization suite: white noise at several signal probabilities
    and correlations, plus sign-correlated Gaussian walks — the
    "pseudorandom data" plus stressors of macro-model step 1. *)

type kind = Pfa | Dual_bit | Bitwise | Input_output

val kind_name : kind -> string

type model

val fit : kind -> dut -> observation list -> model
(** Least-mean-square-error fit of the macro-model equation (coefficients
    are clamped nonnegative: they are capacitances). *)

val predict : model -> stream_stats -> float
(** Evaluate the macro-model equation on a stream's statistics. *)

val model_kind : model -> kind

val model_coeffs : model -> float array
(** The fitted coefficient vector (a copy) — exposed so caches can key on
    the exact model, not just the circuit it was fitted for. *)

(** {1 3D-table macro-model (Gupta-Najm [41])} *)

type table3d

val fit_table : ?bins:int -> observation list -> table3d
(** Bin observations by (mean input signal probability, mean input
    activity, mean output activity) and average within cells. *)

val predict_table : table3d -> stream_stats -> float
(** Inverse-distance-weighted lookup over the filled cells (the paper's
    "table lookup with necessary interpolation equations"). *)

(** {1 Evaluation} *)

val relative_error : actual:float -> predicted:float -> float

val evaluate :
  predict:(stream_stats -> float) -> observation list -> float
(** Mean relative error of a predictor over labeled observations. *)
