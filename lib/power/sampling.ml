type t = {
  macro_values : float array;  (** per transition (cycle pairs), length n-1 *)
  gate_values : float array;  (** per transition, gate-level capacitance *)
}

let tel_macro_evals = Hlp_util.Telemetry.counter "sampling.macro_evals"
let tel_gate_cycles = Hlp_util.Telemetry.counter "sampling.gate_sample_cycles"
let tel_prepare_time = Hlp_util.Telemetry.timer "sampling.prepare"

(* All three estimators divide by sample sums and feed [Stats.mean]: a
   length mismatch, an empty stream, or a poisoned (non-finite) value
   would surface far downstream as an index error or a silent NaN
   estimate. Validation at assembly turns each into a typed error. *)
let validate ~what ~macro_values ~gate_values =
  let nm = Array.length macro_values and ng = Array.length gate_values in
  if nm <> ng then
    raise
      (Hlp_util.Err.invalid_input ~what
         (Printf.sprintf "length mismatch: %d macro vs %d gate values" nm ng));
  if nm = 0 then
    raise (Hlp_util.Err.invalid_input ~what "empty: need at least one transition");
  let check_finite name a =
    Array.iteri
      (fun i x ->
        if not (Float.is_finite x) then
          raise
            (Hlp_util.Err.invalid_input ~what
               (Printf.sprintf "%s.(%d) is not finite (%h): poisoned sample" name
                  i x)))
      a
  in
  check_finite "macro_values" macro_values;
  check_finite "gate_values" gate_values

let of_arrays ~macro_values ~gate_values =
  validate ~what:"Sampling.of_arrays" ~macro_values ~gate_values;
  { macro_values; gate_values }

let of_arrays_checked ~macro_values ~gate_values =
  Hlp_util.Err.protect (fun () -> of_arrays ~macro_values ~gate_values)

let prepare ?(engine = Hlp_sim.Engine.Scalar) ?jobs model dut traces =
  Hlp_util.Telemetry.time tel_prepare_time @@ fun () ->
  Hlp_util.Trace.span
    ~args:(fun () ->
      [ ("engine", Hlp_util.Json.Str (Hlp_sim.Engine.to_string engine));
        ("streams", Hlp_util.Json.Int (List.length traces)) ])
    "sampling.prepare"
  @@ fun () ->
  let n =
    match traces with
    | [] ->
        raise
          (Hlp_util.Err.invalid_input ~what:"Sampling.prepare: traces"
             "need at least one input stream")
    | t :: rest ->
        let n = Array.length t in
        List.iteri
          (fun i t' ->
            if Array.length t' <> n then
              raise
                (Hlp_util.Err.invalid_input ~what:"Sampling.prepare: traces"
                   (Printf.sprintf "stream %d has %d words, stream 0 has %d"
                      (i + 1) (Array.length t') n)))
          rest;
        n
  in
  if n < 2 then
    raise
      (Hlp_util.Err.invalid_input ~what:"Sampling.prepare: traces"
         "need at least two cycles (estimators average over transitions)");
  let widths = dut.Macromodel.widths in
  if List.length widths <> List.length traces then
    raise
      (Hlp_util.Err.invalid_input ~what:"Sampling.prepare: traces"
         (Printf.sprintf "%d streams for a DUT with %d input words"
            (List.length traces) (List.length widths)));
  let m = Array.length dut.Macromodel.net.Hlp_logic.Netlist.outputs in
  let vector i = Hlp_sim.Streams.pack ~widths traces i in
  let r = Hlp_sim.Parsim.replay ~engine ?jobs dut.Macromodel.net ~vector ~n in
  let out_words = r.Hlp_sim.Parsim.out_words in
  let gate_values = r.Hlp_sim.Parsim.transition_caps in
  (* per-transition macro-model evaluation on a two-word window *)
  let window i =
    let in_acts, sign_probs =
      List.split
        (List.map2
           (fun w tr ->
             let pair = [| tr.(i); tr.(i + 1) |] in
             ( Hlp_sim.Activity.of_trace ~width:w pair,
               Hlp_sim.Activity.sign_transition_probs ~width:w pair ))
           widths traces)
    in
    let out_pair = [| out_words.(i); out_words.(i + 1) |] in
    {
      Macromodel.in_acts;
      out_act = Hlp_sim.Activity.of_trace ~width:(max m 1) out_pair;
      sign_probs;
      breakpoints = List.map Hlp_sim.Activity.breakpoint in_acts;
    }
  in
  (* fault-injection point: a macro-model evaluation producing a poisoned
     (non-finite) per-transition value *)
  let predict_at i =
    let v = Macromodel.predict model (window i) in
    if Hlp_util.Faultinject.fire Hlp_util.Faultinject.Trace_sample then Float.nan
    else v
  in
  let macro_values =
    Hlp_util.Trace.span
      ~args:(fun () -> [ ("transitions", Hlp_util.Json.Int (n - 1)) ])
      "sampling.macro_eval"
    @@ fun () ->
    match engine with
    | Hlp_sim.Engine.Parallel ->
        (* windows are per-transition independent and slot-addressed, so
           the parallel map is deterministic in the worker count *)
        Hlp_sim.Parsim.map ?jobs (n - 1) predict_at
    | Hlp_sim.Engine.Scalar | Hlp_sim.Engine.Bitparallel ->
        Array.init (n - 1) predict_at
  in
  Hlp_util.Telemetry.add tel_macro_evals (n - 1);
  (* of_arrays validates lengths and finiteness, so a poisoned replay or
     macro evaluation surfaces here as a typed error, not as a silent NaN
     estimate downstream *)
  of_arrays ~macro_values ~gate_values

let cycles t = Array.length t.macro_values

let gate_reference t = Hlp_util.Stats.mean t.gate_values

type estimate = {
  value : float;
  macro_evaluations : int;
  gate_cycles : int;
}

let census t =
  { value = Hlp_util.Stats.mean t.macro_values;
    macro_evaluations = Array.length t.macro_values;
    gate_cycles = 0 }

let sampler ?(num_samples = 5) ?(sample_size = 40) ~seed t =
  assert (sample_size >= 30);
  let rng = Hlp_util.Prng.create seed in
  let n = Array.length t.macro_values in
  let sample_mean () =
    let acc = ref 0.0 in
    for _ = 1 to sample_size do
      acc := !acc +. t.macro_values.(Hlp_util.Prng.int rng n)
    done;
    !acc /. float_of_int sample_size
  in
  let means = Array.init num_samples (fun _ -> sample_mean ()) in
  { value = Hlp_util.Stats.mean means;
    macro_evaluations = num_samples * sample_size;
    gate_cycles = 0 }

let adaptive ?(sample_size = 40) ~seed t =
  let rng = Hlp_util.Prng.create seed in
  let n = Array.length t.macro_values in
  let idx = Array.init sample_size (fun _ -> Hlp_util.Prng.int rng n) in
  let gate_sample = Array.map (fun i -> t.gate_values.(i)) idx in
  let macro_sample = Array.map (fun i -> t.macro_values.(i)) idx in
  let census_macro = Hlp_util.Stats.mean t.macro_values in
  (* Stats.ratio_estimator falls back to population_x (= the census macro
     estimate) when the sampled macro values sum to zero, so a zero-activity
     sample degrades to the census estimate instead of reporting 0 power *)
  let value =
    Hlp_util.Stats.ratio_estimator ~y:gate_sample ~x:macro_sample
      ~population_x:census_macro
  in
  Hlp_util.Telemetry.add tel_gate_cycles sample_size;
  { value; macro_evaluations = n; gate_cycles = sample_size }
