type t = {
  macro_values : float array;  (** per transition (cycle pairs), length n-1 *)
  gate_values : float array;  (** per transition, gate-level capacitance *)
}

let tel_macro_evals = Hlp_util.Telemetry.counter "sampling.macro_evals"
let tel_gate_cycles = Hlp_util.Telemetry.counter "sampling.gate_sample_cycles"
let tel_prepare_time = Hlp_util.Telemetry.timer "sampling.prepare"

(* All three estimators divide by sample sums and feed [Stats.mean]: a
   length mismatch, an empty stream, or a poisoned (non-finite) value
   would surface far downstream as an index error or a silent NaN
   estimate. Validation at assembly turns each into a typed error. *)
let validate ~what ~macro_values ~gate_values =
  let nm = Array.length macro_values and ng = Array.length gate_values in
  if nm <> ng then
    raise
      (Hlp_util.Err.invalid_input ~what
         (Printf.sprintf "length mismatch: %d macro vs %d gate values" nm ng));
  if nm = 0 then
    raise (Hlp_util.Err.invalid_input ~what "empty: need at least one transition");
  let check_finite name a =
    Array.iteri
      (fun i x ->
        if not (Float.is_finite x) then
          raise
            (Hlp_util.Err.invalid_input ~what
               (Printf.sprintf "%s.(%d) is not finite (%h): poisoned sample" name
                  i x)))
      a
  in
  check_finite "macro_values" macro_values;
  check_finite "gate_values" gate_values

let of_arrays ~macro_values ~gate_values =
  validate ~what:"Sampling.of_arrays" ~macro_values ~gate_values;
  { macro_values; gate_values }

let of_arrays_checked ~macro_values ~gate_values =
  Hlp_util.Err.protect (fun () -> of_arrays ~macro_values ~gate_values)

let prepare ?(engine = Hlp_sim.Engine.Scalar) ?jobs model dut traces =
  Hlp_util.Telemetry.time tel_prepare_time @@ fun () ->
  Hlp_util.Trace.span
    ~args:(fun () ->
      [ ("engine", Hlp_util.Json.Str (Hlp_sim.Engine.to_string engine));
        ("streams", Hlp_util.Json.Int (List.length traces)) ])
    "sampling.prepare"
  @@ fun () ->
  let n =
    match traces with
    | [] ->
        raise
          (Hlp_util.Err.invalid_input ~what:"Sampling.prepare: traces"
             "need at least one input stream")
    | t :: rest ->
        let n = Array.length t in
        List.iteri
          (fun i t' ->
            if Array.length t' <> n then
              raise
                (Hlp_util.Err.invalid_input ~what:"Sampling.prepare: traces"
                   (Printf.sprintf "stream %d has %d words, stream 0 has %d"
                      (i + 1) (Array.length t') n)))
          rest;
        n
  in
  if n < 2 then
    raise
      (Hlp_util.Err.invalid_input ~what:"Sampling.prepare: traces"
         "need at least two cycles (estimators average over transitions)");
  let widths = dut.Macromodel.widths in
  if List.length widths <> List.length traces then
    raise
      (Hlp_util.Err.invalid_input ~what:"Sampling.prepare: traces"
         (Printf.sprintf "%d streams for a DUT with %d input words"
            (List.length traces) (List.length widths)));
  let m = Array.length dut.Macromodel.net.Hlp_logic.Netlist.outputs in
  let vector i = Hlp_sim.Streams.pack ~widths traces i in
  let r = Hlp_sim.Parsim.replay ~engine ?jobs dut.Macromodel.net ~vector ~n in
  let out_words = r.Hlp_sim.Parsim.out_words in
  let gate_values = r.Hlp_sim.Parsim.transition_caps in
  (* per-transition macro-model evaluation on a two-word window *)
  let window i =
    let in_acts, sign_probs =
      List.split
        (List.map2
           (fun w tr ->
             let pair = [| tr.(i); tr.(i + 1) |] in
             ( Hlp_sim.Activity.of_trace ~width:w pair,
               Hlp_sim.Activity.sign_transition_probs ~width:w pair ))
           widths traces)
    in
    let out_pair = [| out_words.(i); out_words.(i + 1) |] in
    {
      Macromodel.in_acts;
      out_act = Hlp_sim.Activity.of_trace ~width:(max m 1) out_pair;
      sign_probs;
      breakpoints = List.map Hlp_sim.Activity.breakpoint in_acts;
    }
  in
  (* fault-injection point: a macro-model evaluation producing a poisoned
     (non-finite) per-transition value *)
  let predict_at i =
    let v = Macromodel.predict model (window i) in
    if Hlp_util.Faultinject.fire Hlp_util.Faultinject.Trace_sample then Float.nan
    else v
  in
  let macro_values =
    Hlp_util.Trace.span
      ~args:(fun () -> [ ("transitions", Hlp_util.Json.Int (n - 1)) ])
      "sampling.macro_eval"
    @@ fun () ->
    match engine with
    | Hlp_sim.Engine.Parallel ->
        (* windows are per-transition independent and slot-addressed, so
           the parallel map is deterministic in the worker count *)
        Hlp_sim.Parsim.map ?jobs (n - 1) predict_at
    | Hlp_sim.Engine.Scalar | Hlp_sim.Engine.Bitparallel
    | Hlp_sim.Engine.Compiled ->
        Array.init (n - 1) predict_at
  in
  Hlp_util.Telemetry.add tel_macro_evals (n - 1);
  (* of_arrays validates lengths and finiteness, so a poisoned replay or
     macro evaluation surfaces here as a typed error, not as a silent NaN
     estimate downstream *)
  of_arrays ~macro_values ~gate_values

(* --- durable replay cache ---

   [prepare] is the expensive half of cosimulation (a full gate-level
   replay); the cache journals its per-transition value streams so a
   restarted campaign reloads them instead of re-simulating. Layout:
   a header binding the cache to (circuit fingerprint, engine, trace
   digest), chunked records of float bits, and a terminal done-marker —
   so a torn or incomplete cache is detected structurally and treated as
   a miss, never half-believed. *)

let tel_cache_hits = Hlp_util.Telemetry.counter "sampling.cache_hits"
let tel_cache_misses = Hlp_util.Telemetry.counter "sampling.cache_misses"

let bits_hex f = Printf.sprintf "%Lx" (Int64.bits_of_float f)
let bits_of_hex s = Int64.float_of_bits (Int64.of_string ("0x" ^ s))

let traces_digest traces =
  let b = Buffer.create 1024 in
  List.iter
    (fun tr ->
      Buffer.add_string b (string_of_int (Array.length tr));
      Buffer.add_char b ';';
      Array.iter
        (fun w ->
          let v = Int64.of_int w in
          for k = 0 to 7 do
            Buffer.add_char b
              (Char.chr
                 (Int64.to_int
                    (Int64.logand (Int64.shift_right_logical v (8 * k)) 0xFFL)))
          done)
        tr)
    traces;
  Printf.sprintf "%lx" (Hlp_util.Journal.crc32 (Buffer.contents b))

let cache_header ~engine ~digest dut =
  Hlp_util.Json.to_string ~compact:true
    (Hlp_util.Json.Obj
       [ ("v", Hlp_util.Json.Int 1);
         ("kind", Hlp_util.Json.Str "sampling-cache");
         ("net",
          Hlp_util.Json.Str
            (Printf.sprintf "%Lx"
               (Hlp_logic.Netlist.fingerprint dut.Macromodel.net)));
         ("engine", Hlp_util.Json.Str (Hlp_sim.Engine.to_string engine));
         ("traces", Hlp_util.Json.Str digest) ])

let cache_chunk = 256

(* body records into (macro, gate) arrays; [None] on any structural flaw *)
let load_cache records =
  let open Hlp_util.Json in
  let rec go count macc gacc = function
    | [] -> None (* no done-marker: the writer died mid-cache *)
    | [ last ] -> (
        match parse last with
        | Ok v -> (
            match member "done" v with
            | Some d when to_int_opt d = Some count && count > 0 ->
                let cat l = Array.concat (List.rev l) in
                Some (cat macc, cat gacc)
            | _ -> None)
        | Error _ -> None)
    | r :: rest -> (
        match parse r with
        | Error _ -> None
        | Ok v -> (
            try
              let i = Option.get (to_int_opt (Option.get (member "i" v))) in
              let arr name =
                Array.of_list
                  (List.map
                     (fun x -> bits_of_hex (Option.get (to_str_opt x)))
                     (Option.get (to_list_opt (Option.get (member name v)))))
              in
              let m = arr "m" and g = arr "g" in
              if i <> count || Array.length m <> Array.length g then None
              else go (count + Array.length m) (m :: macc) (g :: gacc) rest
            with _ -> None))
  in
  go 0 [] [] records

let prepare_journaled ?(engine = Hlp_sim.Engine.Scalar) ?jobs ~path model dut
    traces =
  let digest = traces_digest traces in
  let header = cache_header ~engine ~digest dut in
  let recompute () =
    Hlp_util.Telemetry.incr tel_cache_misses;
    let t = prepare ~engine ?jobs model dut traces in
    let j, _ = Hlp_util.Journal.open_ ~resume:false path in
    Fun.protect
      ~finally:(fun () -> Hlp_util.Journal.close j)
      (fun () ->
        Hlp_util.Journal.append j header;
        let n = Array.length t.macro_values in
        let k = ref 0 in
        while !k < n do
          let len = min cache_chunk (n - !k) in
          let slice name a =
            ( name,
              Hlp_util.Json.List
                (List.init len (fun d ->
                     Hlp_util.Json.Str (bits_hex a.(!k + d)))) )
          in
          Hlp_util.Journal.append j
            (Hlp_util.Json.to_string ~compact:true
               (Hlp_util.Json.Obj
                  [ ("i", Hlp_util.Json.Int !k);
                    slice "m" t.macro_values;
                    slice "g" t.gate_values ]));
          k := !k + len
        done;
        Hlp_util.Journal.append j
          (Hlp_util.Json.to_string ~compact:true
             (Hlp_util.Json.Obj [ ("done", Hlp_util.Json.Int n) ])));
    t
  in
  let r = Hlp_util.Journal.recover path in
  match r.Hlp_util.Journal.records with
  | h :: rest when String.equal h header -> (
      match load_cache rest with
      | Some (macro_values, gate_values) -> (
          (* revalidate through the checked assembler: a corrupt-but-CRC-
             valid cache degrades to a recompute, never to a bad stream *)
          match of_arrays_checked ~macro_values ~gate_values with
          | Ok t ->
              Hlp_util.Telemetry.incr tel_cache_hits;
              Hlp_util.Trace.instant "sampling.cache_hit";
              t
          | Error _ -> recompute ())
      | None -> recompute ())
  | _ -> recompute ()

(* In-memory prepared-sampler cache for the serve daemon: same artifact
   as the journaled cache, but process-local and keyed on the exact
   model too (fingerprint + engine + trace digest + model kind/coeffs),
   so a refitted model can never serve a stale stream. Prepared values
   are read-only after construction, satisfying Netcache's sharing
   contract. *)
let prepare_cache : t Hlp_logic.Netcache.t =
  Hlp_logic.Netcache.create ~capacity:32 ~name:"sampling.mem" ()

let clear_prepare_cache () = ignore (Hlp_logic.Netcache.clear prepare_cache)

let prepare_cached ?(engine = Hlp_sim.Engine.Scalar) ?jobs model dut traces =
  let open Hlp_logic.Netcache in
  let model_key =
    Array.fold_left
      (fun h c -> combine h (Int64.bits_of_float c))
      (hash_string (Macromodel.kind_name (Macromodel.model_kind model)))
      (Macromodel.model_coeffs model)
  in
  let key =
    combine
      (combine
         (combine
            (Hlp_logic.Netlist.fingerprint dut.Macromodel.net)
            (hash_string (Hlp_sim.Engine.to_string engine)))
         (hash_string (traces_digest traces)))
      model_key
  in
  find_or_compute prepare_cache ~key (fun () -> prepare ~engine ?jobs model dut traces)

let cycles t = Array.length t.macro_values

let gate_reference t = Hlp_util.Stats.mean t.gate_values

type estimate = {
  value : float;
  macro_evaluations : int;
  gate_cycles : int;
}

let census t =
  { value = Hlp_util.Stats.mean t.macro_values;
    macro_evaluations = Array.length t.macro_values;
    gate_cycles = 0 }

let sampler ?(num_samples = 5) ?(sample_size = 40) ~seed t =
  assert (sample_size >= 30);
  let rng = Hlp_util.Prng.create seed in
  let n = Array.length t.macro_values in
  let sample_mean () =
    let acc = ref 0.0 in
    for _ = 1 to sample_size do
      acc := !acc +. t.macro_values.(Hlp_util.Prng.int rng n)
    done;
    !acc /. float_of_int sample_size
  in
  let means = Array.init num_samples (fun _ -> sample_mean ()) in
  { value = Hlp_util.Stats.mean means;
    macro_evaluations = num_samples * sample_size;
    gate_cycles = 0 }

let adaptive ?(sample_size = 40) ~seed t =
  let rng = Hlp_util.Prng.create seed in
  let n = Array.length t.macro_values in
  let idx = Array.init sample_size (fun _ -> Hlp_util.Prng.int rng n) in
  let gate_sample = Array.map (fun i -> t.gate_values.(i)) idx in
  let macro_sample = Array.map (fun i -> t.macro_values.(i)) idx in
  let census_macro = Hlp_util.Stats.mean t.macro_values in
  (* Stats.ratio_estimator falls back to population_x (= the census macro
     estimate) when the sampled macro values sum to zero, so a zero-activity
     sample degrades to the census estimate instead of reporting 0 power *)
  let value =
    Hlp_util.Stats.ratio_estimator ~y:gate_sample ~x:macro_sample
      ~population_x:census_macro
  in
  Hlp_util.Telemetry.add tel_gate_cycles sample_size;
  { value; macro_evaluations = n; gate_cycles = sample_size }
