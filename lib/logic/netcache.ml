(* Fingerprint-keyed derived-artifact cache with single-flight misses.

   Compiling a netlist into a replay kernel (or any other derived,
   immutable artifact) is pure in the structure, and Netlist.fingerprint
   is a stable structural key, so the artifact can be memoized across
   estimates, batch jobs, and server requests. The cache is bounded
   (second-chance eviction — a one-bit recency mark per entry, set on
   hit, gives LRU-ish behaviour without a hot-path list splice) and
   mutex-protected so worker domains can share it; cached values must
   therefore be immutable after construction.

   Misses are single-flight: the first caller of a key computes while
   later callers of the same key park on a condition variable and share
   the one result — under the thundering herd the estimation service
   sees (N identical requests land together), N-1 computations collapse
   into waits. A failing compute wakes the joiners with the computing
   caller's exception (typed errors propagate verbatim) and leaves
   nothing behind, so the next caller retries fresh — failures are never
   cached, and never shared beyond the generation that joined them. *)

type 'a outcome = Pending | Value of 'a | Failed of exn

type 'a entry = { v : 'a; mutable used : bool }

type 'a t = {
  name : string;
  capacity : int;
  tbl : (int64, 'a entry) Hashtbl.t;
  order : int64 Queue.t;  (* clock hand order for second-chance eviction *)
  inflight : (int64, 'a outcome ref) Hashtbl.t;
  lock : Mutex.t;
  resolved : Condition.t;  (* broadcast when any in-flight slot resolves *)
  hits : Hlp_util.Telemetry.counter;
  misses : Hlp_util.Telemetry.counter;
  evictions : Hlp_util.Telemetry.counter;
  coalesced : Hlp_util.Telemetry.counter;
}

let create ?(capacity = 64) ~name () =
  if capacity < 1 then
    raise
      (Hlp_util.Err.invalid_input ~what:"Netcache.create: capacity"
         "must be >= 1");
  {
    name;
    capacity;
    tbl = Hashtbl.create 16;
    order = Queue.create ();
    inflight = Hashtbl.create 8;
    lock = Mutex.create ();
    resolved = Condition.create ();
    hits = Hlp_util.Telemetry.counter (name ^ ".cache_hits");
    misses = Hlp_util.Telemetry.counter (name ^ ".cache_misses");
    evictions = Hlp_util.Telemetry.counter (name ^ ".cache_evictions");
    coalesced = Hlp_util.Telemetry.counter (name ^ ".coalesced");
  }

let locked c f =
  Mutex.lock c.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) f

(* Second-chance victim selection: pop the hand; a recently-hit entry
   spends its mark and goes to the back, an unmarked one is the victim.
   Terminates because each pass clears marks. Runs under the lock. *)
let rec victim_locked c =
  let k = Queue.pop c.order in
  match Hashtbl.find_opt c.tbl k with
  | None -> victim_locked c
  | Some e ->
      if e.used then begin
        e.used <- false;
        Queue.push k c.order;
        victim_locked c
      end
      else k

let evict_one_locked c =
  let k = victim_locked c in
  Hashtbl.remove c.tbl k;
  Hlp_util.Telemetry.incr c.evictions

let insert_locked c ~key v =
  if not (Hashtbl.mem c.tbl key) then begin
    if Hashtbl.length c.tbl >= c.capacity then evict_one_locked c;
    Hashtbl.replace c.tbl key { v; used = false };
    Queue.push key c.order
  end

(* Publish the compute's outcome: resolve the slot for parked joiners,
   retire it so later callers start a fresh generation, and (successes
   only) install the value. Runs under the lock. *)
let resolve_locked c ~key slot outcome =
  slot := outcome;
  Hashtbl.remove c.inflight key;
  (match outcome with
  | Value v -> insert_locked c ~key v
  | Pending | Failed _ -> ());
  Condition.broadcast c.resolved

let find_or_compute_outcome c ~key f =
  Mutex.lock c.lock;
  match Hashtbl.find_opt c.tbl key with
  | Some e ->
      e.used <- true;
      Mutex.unlock c.lock;
      Hlp_util.Telemetry.incr c.hits;
      (e.v, `Hit)
  | None -> (
      match Hashtbl.find_opt c.inflight key with
      | Some slot ->
          (* join the in-flight compute: park until the computing caller
             resolves the slot, then share its value — or its error *)
          Hlp_util.Telemetry.incr c.coalesced;
          let rec wait () =
            match !slot with
            | Pending ->
                Condition.wait c.resolved c.lock;
                wait ()
            | Value v ->
                Mutex.unlock c.lock;
                Hlp_util.Telemetry.incr c.hits;
                (v, `Coalesced)
            | Failed e ->
                Mutex.unlock c.lock;
                raise e
          in
          wait ()
      | None ->
          let slot = ref Pending in
          Hashtbl.add c.inflight key slot;
          Mutex.unlock c.lock;
          Hlp_util.Telemetry.incr c.misses;
          (* the compute runs outside the lock: compiles and estimates can
             be slow, and joiners must be able to park meanwhile *)
          (match f () with
          | v ->
              locked c (fun () -> resolve_locked c ~key slot (Value v));
              (v, `Miss)
          | exception e ->
              locked c (fun () -> resolve_locked c ~key slot (Failed e));
              raise e))

let find_or_compute c ~key f = fst (find_or_compute_outcome c ~key f)

let mem c key = locked c (fun () -> Hashtbl.mem c.tbl key)
let length c = locked c (fun () -> Hashtbl.length c.tbl)
let inflight c = locked c (fun () -> Hashtbl.length c.inflight)

let clear c =
  (* in-flight slots are left to resolve normally: the computing callers
     still publish to their joiners, and successes repopulate the table *)
  locked c (fun () ->
      let dropped = Hashtbl.length c.tbl in
      Hashtbl.reset c.tbl;
      Queue.clear c.order;
      for _ = 1 to dropped do
        Hlp_util.Telemetry.incr c.evictions
      done;
      dropped)

let evict c n =
  locked c (fun () ->
      let n = min n (Hashtbl.length c.tbl) in
      for _ = 1 to n do
        evict_one_locked c
      done;
      n)

let put c ~key v = locked c (fun () -> insert_locked c ~key v)

let items c =
  locked c (fun () ->
      Queue.fold
        (fun acc k ->
          match Hashtbl.find_opt c.tbl k with
          | Some e -> (k, e.v) :: acc
          | None -> acc)
        [] c.order
      |> List.rev)

let name c = c.name
let capacity c = c.capacity

(* --- key derivation ---

   Composite cache keys (fingerprint + engine + seed + precision, the
   serve estimate-cache key) are built by folding extra material into an
   existing key with the same FNV-1a step Netlist.fingerprint uses, so
   key quality is uniform across the toolkit. *)

let fnv_prime = 0x100000001b3L
let fnv_basis = 0xcbf29ce484222325L

let fnv_byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xFF))) fnv_prime

let combine h k =
  let h = ref h in
  for i = 0 to 7 do
    h := fnv_byte !h (Int64.to_int (Int64.shift_right_logical k (8 * i)))
  done;
  !h

let hash_string s =
  let h = ref fnv_basis in
  String.iter (fun c -> h := fnv_byte !h (Char.code c)) s;
  !h
