(* Fingerprint-keyed derived-artifact cache.

   Compiling a netlist into a replay kernel (or any other derived,
   immutable artifact) is pure in the structure, and Netlist.fingerprint
   is a stable structural key, so the artifact can be memoized across
   estimates, batch jobs, and server requests. The cache is bounded
   (FIFO eviction — entries are cheap to rebuild, recency tracking is
   not worth a hot-path write) and mutex-protected so worker domains can
   share it; cached values must therefore be immutable after
   construction. *)

type 'a t = {
  name : string;
  capacity : int;
  tbl : (int64, 'a) Hashtbl.t;
  order : int64 Queue.t;  (* insertion order, for FIFO eviction *)
  lock : Mutex.t;
  hits : Hlp_util.Telemetry.counter;
  misses : Hlp_util.Telemetry.counter;
  evictions : Hlp_util.Telemetry.counter;
}

let create ?(capacity = 64) ~name () =
  if capacity < 1 then
    raise
      (Hlp_util.Err.invalid_input ~what:"Netcache.create: capacity"
         "must be >= 1");
  {
    name;
    capacity;
    tbl = Hashtbl.create 16;
    order = Queue.create ();
    lock = Mutex.create ();
    hits = Hlp_util.Telemetry.counter (name ^ ".cache_hits");
    misses = Hlp_util.Telemetry.counter (name ^ ".cache_misses");
    evictions = Hlp_util.Telemetry.counter (name ^ ".cache_evictions");
  }

let locked c f =
  Mutex.lock c.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) f

(* The compute runs outside the lock: compiles can be slow, and two
   domains racing on the same key at worst compile twice — the earlier
   insert wins, so both callers still observe a single canonical value. *)
let find_or_compute c ~key f =
  match locked c (fun () -> Hashtbl.find_opt c.tbl key) with
  | Some v ->
      Hlp_util.Telemetry.incr c.hits;
      v
  | None ->
      Hlp_util.Telemetry.incr c.misses;
      let v = f () in
      locked c (fun () ->
          match Hashtbl.find_opt c.tbl key with
          | Some winner -> winner
          | None ->
              if Hashtbl.length c.tbl >= c.capacity then begin
                let victim = Queue.pop c.order in
                Hashtbl.remove c.tbl victim;
                Hlp_util.Telemetry.incr c.evictions
              end;
              Hashtbl.replace c.tbl key v;
              Queue.push key c.order;
              v)

let mem c key = locked c (fun () -> Hashtbl.mem c.tbl key)
let length c = locked c (fun () -> Hashtbl.length c.tbl)

let clear c =
  locked c (fun () ->
      Hashtbl.reset c.tbl;
      Queue.clear c.order)

let name c = c.name
let capacity c = c.capacity

(* --- key derivation ---

   Composite cache keys (fingerprint + engine + seed + precision, the
   serve estimate-cache key) are built by folding extra material into an
   existing key with the same FNV-1a step Netlist.fingerprint uses, so
   key quality is uniform across the toolkit. *)

let fnv_prime = 0x100000001b3L
let fnv_basis = 0xcbf29ce484222325L

let fnv_byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xFF))) fnv_prime

let combine h k =
  let h = ref h in
  for i = 0 to 7 do
    h := fnv_byte !h (Int64.to_int (Int64.shift_right_logical k (8 * i)))
  done;
  !h

let hash_string s =
  let h = ref fnv_basis in
  String.iter (fun c -> h := fnv_byte !h (Char.code c)) s;
  !h
