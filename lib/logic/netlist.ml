type wire = int

type node = { kind : Gate.kind; fanin : wire array }

type t = {
  nodes : node array;
  inputs : wire array;
  outputs : (string * wire) array;
  dffs : wire array;
  dff_init : bool array;
  input_names : string array;
}

let num_nodes t = Array.length t.nodes

let num_gates t =
  Array.fold_left
    (fun acc n ->
      match n.kind with Gate.Input | Gate.Const _ | Gate.Dff -> acc | _ -> acc + 1)
    0 t.nodes

let num_dffs t = Array.length t.dffs

module Builder = struct
  type b = {
    mutable arr : node array;
    mutable count : int;
    mutable rev_inputs : (wire * string) list;
    mutable rev_outputs : (string * wire) list;
    mutable rev_dffs : (wire * bool) list;
    pending : (int, unit) Hashtbl.t;  (* dffs whose data pin is unset *)
  }

  let dummy = { kind = Gate.Const false; fanin = [||] }

  let create () =
    { arr = Array.make 64 dummy; count = 0; rev_inputs = []; rev_outputs = [];
      rev_dffs = []; pending = Hashtbl.create 8 }

  let push b node =
    if b.count = Array.length b.arr then begin
      let bigger = Array.make (2 * b.count) dummy in
      Array.blit b.arr 0 bigger 0 b.count;
      b.arr <- bigger
    end;
    b.arr.(b.count) <- node;
    b.count <- b.count + 1

  let count b = b.count

  let add b kind fanin =
    assert (Array.length fanin = Gate.arity kind);
    Array.iter (fun w -> assert (w >= 0 && w < b.count)) fanin;
    let id = b.count in
    push b { kind; fanin };
    id

  let input ?name b =
    let id = add b Gate.Input [||] in
    let name = match name with Some n -> n | None -> Printf.sprintf "in%d" id in
    b.rev_inputs <- (id, name) :: b.rev_inputs;
    id

  let inputs ?(prefix = "in") b n =
    Array.init n (fun i -> input ~name:(Printf.sprintf "%s%d" prefix i) b)

  let const_ b v = add b (Gate.Const v) [||]

  let gate b kind fanin = add b kind fanin

  let buf b w = add b Gate.Buf [| w |]
  let not_ b w = add b Gate.Not [| w |]

  let nary b mk neutral = function
    | [] -> const_ b neutral
    | [ w ] -> w
    | ws -> add b (mk (List.length ws)) (Array.of_list ws)

  let and_ b ws = nary b (fun n -> Gate.And n) true ws
  let or_ b ws = nary b (fun n -> Gate.Or n) false ws

  let nand_ b ws =
    match ws with
    | [] -> const_ b false
    | [ w ] -> not_ b w
    | ws -> add b (Gate.Nand (List.length ws)) (Array.of_list ws)

  let nor_ b ws =
    match ws with
    | [] -> const_ b true
    | [ w ] -> not_ b w
    | ws -> add b (Gate.Nor (List.length ws)) (Array.of_list ws)

  let xor_ b a c = add b Gate.Xor [| a; c |]
  let xnor_ b a c = add b Gate.Xnor [| a; c |]
  let mux b ~sel ~a0 ~a1 = add b Gate.Mux [| sel; a0; a1 |]

  let dff ?(init = false) b d =
    let id = add b Gate.Dff [| d |] in
    b.rev_dffs <- (id, init) :: b.rev_dffs;
    id

  let dff_feedback ?(init = false) b f =
    let q = b.count in
    push b { kind = Gate.Dff; fanin = [| q |] };
    Hashtbl.replace b.pending q ();
    b.rev_dffs <- (q, init) :: b.rev_dffs;
    let d = f q in
    assert (d >= 0 && d < b.count);
    b.arr.(q) <- { kind = Gate.Dff; fanin = [| d |] };
    Hashtbl.remove b.pending q;
    q

  let output b name w =
    assert (w >= 0 && w < b.count);
    b.rev_outputs <- (name, w) :: b.rev_outputs

  let finish b =
    if Hashtbl.length b.pending > 0 then
      failwith "Netlist.Builder.finish: unconnected dff data pin";
    let nodes = Array.sub b.arr 0 b.count in
    let ins = List.rev b.rev_inputs in
    let dffs = List.rev b.rev_dffs in
    {
      nodes;
      inputs = Array.of_list (List.map fst ins);
      input_names = Array.of_list (List.map snd ins);
      outputs = Array.of_list (List.rev b.rev_outputs);
      dffs = Array.of_list (List.map fst dffs);
      dff_init = Array.of_list (List.map snd dffs);
    }
end

let fanout_counts t =
  let counts = Array.make (num_nodes t) 0 in
  Array.iter
    (fun n -> Array.iter (fun w -> counts.(w) <- counts.(w) + 1) n.fanin)
    t.nodes;
  counts

(* Statistical wire-load model: short nets for low fanout, superlinear
   growth after that, as in the paper's "custom wire-load models". *)
let wire_load fanout =
  if fanout = 0 then 0.0 else 0.3 +. (0.25 *. float_of_int fanout)

let node_capacitance t =
  let caps =
    Array.map (fun n -> Gate.intrinsic_capacitance n.kind) t.nodes
  in
  let fanout = Array.make (num_nodes t) 0 in
  Array.iter
    (fun n ->
      Array.iter
        (fun w ->
          fanout.(w) <- fanout.(w) + 1;
          caps.(w) <- caps.(w) +. Gate.input_capacitance n.kind)
        n.fanin)
    t.nodes;
  Array.iteri (fun i f -> caps.(i) <- caps.(i) +. wire_load f) fanout;
  caps

let total_capacitance t = Array.fold_left ( +. ) 0.0 (node_capacitance t)

let gate_equivalents t =
  Array.fold_left (fun acc n -> acc +. Gate.gate_equivalents n.kind) 0.0 t.nodes

let levels t =
  let arr = Array.make (num_nodes t) 0.0 in
  Array.iteri
    (fun i n ->
      match n.kind with
      | Gate.Input | Gate.Const _ | Gate.Dff -> arr.(i) <- 0.0
      | kind ->
          let worst =
            Array.fold_left (fun acc w -> max acc arr.(w)) 0.0 n.fanin
          in
          arr.(i) <- worst +. Gate.delay kind)
    t.nodes;
  arr

let critical_path t = Array.fold_left max 0.0 (levels t)

(* Integer levelization for the compiled replay kernel: sources (inputs,
   registers, zero-fanin constant drivers) sit at level 0; a combinational
   gate sits one past its deepest fanin. Within a level no gate reads
   another, so any per-level evaluation order settles identically to the
   id-order interpreter — the property the kernel's reordered
   struct-of-arrays evaluation rests on. Nodes nothing consumes (dangling
   outputs, dead cones) still get a level: they toggle and burn power in
   the interpreter, so the kernel must evaluate them too. *)
let comb_levels t =
  let lv = Array.make (num_nodes t) 0 in
  Array.iteri
    (fun i n ->
      match n.kind with
      | Gate.Input | Gate.Const _ | Gate.Dff -> lv.(i) <- 0
      | _ ->
          let worst = Array.fold_left (fun acc w -> max acc lv.(w)) 0 n.fanin in
          lv.(i) <- worst + 1)
    t.nodes;
  lv

let logic_depth t =
  let d = Array.make (num_nodes t) 0 in
  let deepest = ref 0 in
  Array.iteri
    (fun i n ->
      match n.kind with
      | Gate.Input | Gate.Const _ | Gate.Dff -> d.(i) <- 0
      | _ ->
          let worst = Array.fold_left (fun acc w -> max acc d.(w)) 0 n.fanin in
          d.(i) <- worst + 1;
          deepest := max !deepest d.(i))
    t.nodes;
  !deepest

(* FNV-1a over the full structure. Order matters everywhere it is fed, so
   any change to a gate, a wire, or a port name changes the fingerprint. *)
let fingerprint_walk t =
  let h = ref 0xcbf29ce484222325L in
  let prime = 0x100000001b3L in
  let mix_byte b =
    h := Int64.mul (Int64.logxor !h (Int64.of_int (b land 0xff))) prime
  in
  let mix_int i =
    let v = Int64.of_int i in
    for k = 0 to 7 do
      mix_byte (Int64.to_int (Int64.shift_right_logical v (8 * k)))
    done
  in
  let mix_string s = String.iter (fun c -> mix_byte (Char.code c)) s in
  Array.iter
    (fun n ->
      mix_string (Gate.name n.kind);
      mix_int (Array.length n.fanin);
      Array.iter mix_int n.fanin)
    t.nodes;
  Array.iter mix_int t.inputs;
  Array.iter mix_string t.input_names;
  Array.iter
    (fun (name, w) ->
      mix_string name;
      mix_int w)
    t.outputs;
  Array.iter mix_int t.dffs;
  Array.iter (fun b -> mix_byte (Bool.to_int b)) t.dff_init;
  !h

(* The walk touches every byte of the structure, so repeated cache lookups
   against one circuit (the hot pattern: fingerprint-keyed kernel and BDD
   caches re-key per request) would pay it each time. Netlists are
   immutable after construction — the Netcache sharing contract — so the
   last result can be memoized by physical identity. A racing domain at
   worst recomputes and stores the same pair. *)
let fp_memo : (t * int64) option ref = ref None

let fingerprint t =
  match !fp_memo with
  | Some (t', fp) when t' == t -> fp
  | _ ->
      let fp = fingerprint_walk t in
      fp_memo := Some (t, fp);
      fp

let validate t =
  let n = num_nodes t in
  Array.iteri
    (fun i node ->
      if Array.length node.fanin <> Gate.arity node.kind then
        failwith (Printf.sprintf "node %d: arity mismatch for %s" i (Gate.name node.kind));
      Array.iter
        (fun w ->
          if w < 0 || w >= n then failwith (Printf.sprintf "node %d: fanin out of range" i);
          match node.kind with
          | Gate.Dff -> ()
          | _ ->
              if w >= i then
                failwith (Printf.sprintf "node %d: combinational fanin %d not earlier" i w))
        node.fanin)
    t.nodes;
  Array.iter
    (fun w ->
      match t.nodes.(w).kind with
      | Gate.Dff -> ()
      | _ -> failwith "dffs array contains a non-dff node")
    t.dffs;
  Array.iter (fun (_, w) -> if w < 0 || w >= n then failwith "output out of range") t.outputs

let stats_string t =
  Printf.sprintf
    "%d nodes (%d gates, %d inputs, %d dffs, %d outputs), Ctot=%.1f, GE=%.1f, depth=%d"
    (num_nodes t) (num_gates t)
    (Array.length t.inputs)
    (num_dffs t)
    (Array.length t.outputs)
    (total_capacitance t) (gate_equivalents t) (logic_depth t)
