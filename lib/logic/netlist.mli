(** Gate-level netlists.

    A netlist is a directed graph of {!Gate.kind} instances. Primary inputs,
    constant drivers, and D-flip-flop outputs are sources; every
    combinational gate refers only to nodes created before it, so node-id
    order is a valid topological order of the combinational logic (the
    builder enforces this; flip-flop data pins may close feedback loops).

    This is the structural substrate every estimation technique in the paper
    consumes: total/module capacitance for the entropy models, gate
    equivalents for the complexity models, per-node switched capacitance for
    the "gate-level reference" power that macro-models are judged against. *)

type wire = int
(** A wire is the id of its driving node. *)

type node = { kind : Gate.kind; fanin : wire array }

type t = private {
  nodes : node array;
  inputs : wire array;  (** primary inputs, in declaration order *)
  outputs : (string * wire) array;  (** named primary outputs *)
  dffs : wire array;  (** flip-flop nodes, in declaration order *)
  dff_init : bool array;  (** initial state, parallel to [dffs] *)
  input_names : string array;  (** parallel to [inputs] *)
}

val num_nodes : t -> int
val num_gates : t -> int
(** Combinational cells only (excludes inputs, constants, flip-flops). *)

val num_dffs : t -> int

(** {1 Building} *)

module Builder : sig
  type b

  val create : unit -> b

  val count : b -> int
  (** Number of nodes created so far; node ids [count .. ] will be assigned
      to whatever is built next, which lets callers tag id ranges with
      metadata (e.g. the Table I category map). *)

  val input : ?name:string -> b -> wire
  val inputs : ?prefix:string -> b -> int -> wire array
  val const_ : b -> bool -> wire
  val gate : b -> Gate.kind -> wire array -> wire
  val buf : b -> wire -> wire
  val not_ : b -> wire -> wire
  val and_ : b -> wire list -> wire
  (** n-ary AND; a single wire passes through, an empty list is constant 1. *)

  val or_ : b -> wire list -> wire
  val nand_ : b -> wire list -> wire
  val nor_ : b -> wire list -> wire
  val xor_ : b -> wire -> wire -> wire
  val xnor_ : b -> wire -> wire -> wire
  val mux : b -> sel:wire -> a0:wire -> a1:wire -> wire
  (** [mux ~sel ~a0 ~a1] is [a1] when [sel] is high, else [a0]. *)

  val dff : ?init:bool -> b -> wire -> wire
  (** Register whose data pin is already known. *)

  val dff_feedback : ?init:bool -> b -> (wire -> wire) -> wire
  (** [dff_feedback b f] creates a register, feeds its output [q] to [f],
      and connects the returned wire to the data pin — the idiom for FSM
      next-state feedback. Returns [q]. *)

  val output : b -> string -> wire -> unit
  val finish : b -> t
end

(** {1 Structural analysis} *)

val fanout_counts : t -> int array
(** Per-node number of consumers (flip-flop data pins count). *)

val node_capacitance : t -> float array
(** Effective switched capacitance of each node: cell intrinsic output
    capacitance + statistical wire load (a function of fanout) + the input
    capacitance of every consumer pin. Toggling node [i] switches
    [node_capacitance.(i)]. *)

val total_capacitance : t -> float
(** Sum of {!node_capacitance}: the C_tot of the paper's entropy-based
    power expression. *)

val gate_equivalents : t -> float
(** Design size in NAND2 equivalents (Chip Estimation System unit). *)

val levels : t -> float array
(** Arrival time of each node under the library delays (inputs and register
    outputs at 0.0). *)

val critical_path : t -> float
(** Longest combinational arrival time over all nodes. *)

val comb_levels : t -> int array
(** Integer topological level of each node: inputs, registers, and
    zero-fanin constant drivers at 0, combinational gates at
    [1 + max fanin level]. Gates on the same level never read each other,
    so a level is a unit of reorderable evaluation — the contract the
    compiled replay kernel ({!Hlp_sim.Kernel}) builds its
    struct-of-arrays schedule on. Dangling (fanout-free) nodes are
    levelized like any other: they still switch capacitance. *)

val logic_depth : t -> int
(** Longest combinational path measured in gate counts. *)

val fingerprint : t -> int64
(** Structural hash (FNV-1a over every gate kind, fanin wire, port name,
    and register init). A checkpoint journal records it in its header so
    a resume against a {e different} circuit is detected instead of
    silently producing a garbage estimate. Stable across processes —
    depends only on the structure, never on addresses or hash seeds. *)

val validate : t -> unit
(** Asserts structural invariants: arities match, combinational fanins
    precede their gate, flip-flop pins are in range. Raises [Failure] with
    a diagnostic otherwise. *)

val stats_string : t -> string
(** One-line human-readable summary. *)
