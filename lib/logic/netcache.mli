(** Fingerprint-keyed cache for artifacts derived from a netlist, with
    single-flight misses.

    Anything computed purely from a netlist's structure — a compiled
    replay kernel, a prepared sampler, a built BDD — can be memoized
    under {!Netlist.fingerprint}. The cache is bounded (second-chance
    eviction: a one-bit recency mark per entry, set on hit, makes
    eviction LRU-ish without a hot-path list splice) and safe to share
    across domains; values stored in it must be immutable after
    construction, since concurrent readers receive the same physical
    value.

    Misses are {e single-flight}: when several domains ask for the same
    absent key at once, exactly one runs the compute while the others
    park on a condition variable and share its result — the
    thundering-herd shape of N identical service requests costs one
    computation, not N. A failing compute propagates the computing
    caller's exception (typed {!Hlp_util.Err.Error}s verbatim) to every
    parked joiner, publishes nothing, and retires the in-flight slot, so
    the next caller starts a fresh generation — failures are never
    cached.

    Counters surface through {!Hlp_util.Telemetry} as
    [<name>.cache_hits], [<name>.cache_misses], [<name>.cache_evictions],
    and [<name>.coalesced] (callers that joined an in-flight compute
    instead of starting their own). A joiner that receives a value also
    counts as a hit, so [hits + misses = successful lookups] holds with
    or without contention. Every entry that leaves the cache for any
    reason — capacity pressure, {!evict}, or {!clear} — increments
    [<name>.cache_evictions], so the counter is a complete audit trail
    of cache shrinkage. *)

type 'a t

val create : ?capacity:int -> name:string -> unit -> 'a t
(** [create ~name ()] makes an empty cache holding at most [capacity]
    (default 64) entries. Raises the typed [Invalid_input] on a
    non-positive capacity. *)

val find_or_compute : 'a t -> key:int64 -> (unit -> 'a) -> 'a
(** [find_or_compute c ~key f] returns the cached value for [key],
    computing and inserting [f ()] on a miss. [f] runs outside the lock;
    concurrent callers of the same absent key run [f] exactly once — the
    first caller computes, the rest join (counted in [<name>.coalesced])
    and share the value or re-raise the computing caller's exception.

    [f] must not call back into the same cache with the same key: the
    re-entrant call would join its own in-flight slot and deadlock. *)

val find_or_compute_outcome :
  'a t -> key:int64 -> (unit -> 'a) -> 'a * [ `Hit | `Miss | `Coalesced ]
(** {!find_or_compute} plus how the value was obtained: [`Hit] from the
    table, [`Miss] computed by this caller, [`Coalesced] joined another
    caller's in-flight compute. One atomic lookup (no separate
    [mem]-then-compute race); the access log records the outcome per
    request. Counter accounting is unchanged ([`Coalesced] increments
    both [.coalesced] and, on success, [.cache_hits]). *)

val mem : 'a t -> int64 -> bool
val length : 'a t -> int

val inflight : 'a t -> int
(** Number of keys currently being computed (in-flight slots). *)

val clear : 'a t -> int
(** Drop every cached entry, returning how many were dropped; each is
    counted in [<name>.cache_evictions] so a [clear] leaves the same
    audit trail as capacity pressure. In-flight computes are unaffected:
    they still publish to their joiners and (on success) repopulate the
    table. *)

val evict : 'a t -> int -> int
(** [evict c n] removes up to [n] entries by second-chance order
    (recently-hit entries are spared one round), returning how many were
    actually removed; each increments [<name>.cache_evictions]. The
    memory-pressure relief valve: shrink the cache proportionally
    without dumping the whole working set. *)

val put : 'a t -> key:int64 -> 'a -> unit
(** [put c ~key v] installs [v] without touching hit/miss counters —
    snapshot rehydration, not a lookup. A no-op when [key] is already
    present; capacity pressure evicts (counted) as usual. *)

val items : 'a t -> (int64 * 'a) list
(** Current entries in eviction order (next victim first). A consistent
    point-in-time copy taken under the lock — the snapshot writer's
    view. *)

val name : 'a t -> string
val capacity : 'a t -> int

(** {1 Key derivation}

    Caches whose artifacts depend on more than netlist structure — an
    estimate depends on the engine, seed, and precision too — fold the
    extra material into the fingerprint with the same FNV-1a step the
    fingerprint itself uses. *)

val combine : int64 -> int64 -> int64
(** [combine h k] folds the 8 bytes of [k] into [h] (FNV-1a). Not
    commutative: fold fields in a fixed order. *)

val hash_string : string -> int64
(** FNV-1a of the bytes, from the standard basis. *)
