(** Fingerprint-keyed cache for artifacts derived from a netlist.

    Anything computed purely from a netlist's structure — a compiled
    replay kernel, a prepared sampler, a built BDD — can be memoized
    under {!Netlist.fingerprint}. The cache is bounded (FIFO eviction)
    and safe to share across domains; values stored in it must be
    immutable after construction, since concurrent readers receive the
    same physical value. Hit/miss/eviction counts surface through
    {!Hlp_util.Telemetry} as [<name>.cache_hits], [<name>.cache_misses],
    and [<name>.cache_evictions]. *)

type 'a t

val create : ?capacity:int -> name:string -> unit -> 'a t
(** [create ~name ()] makes an empty cache holding at most [capacity]
    (default 64) entries. Raises the typed [Invalid_input] on a
    non-positive capacity. *)

val find_or_compute : 'a t -> key:int64 -> (unit -> 'a) -> 'a
(** [find_or_compute c ~key f] returns the cached value for [key],
    computing and inserting [f ()] on a miss. [f] runs outside the lock;
    if two domains race on the same key the first insert wins and both
    see the same canonical value. *)

val mem : 'a t -> int64 -> bool
val length : 'a t -> int
val clear : 'a t -> unit
val name : 'a t -> string
val capacity : 'a t -> int

(** {1 Key derivation}

    Caches whose artifacts depend on more than netlist structure — an
    estimate depends on the engine, seed, and precision too — fold the
    extra material into the fingerprint with the same FNV-1a step the
    fingerprint itself uses. *)

val combine : int64 -> int64 -> int64
(** [combine h k] folds the 8 bytes of [k] into [h] (FNV-1a). Not
    commutative: fold fields in a fixed order. *)

val hash_string : string -> int64
(** FNV-1a of the bytes, from the standard basis. *)
