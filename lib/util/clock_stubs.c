/* Monotonic clock binding: OCaml's Unix module only exposes
   gettimeofday (wall clock), which steps under NTP corrections and can
   make timer spans negative or trip deadlines spuriously.  POSIX
   CLOCK_MONOTONIC never steps backwards. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>
#include <stdint.h>

int64_t hlp_clock_monotonic_ns(value unit)
{
  struct timespec ts;
#ifdef CLOCK_MONOTONIC
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  (void)unit;
  return (int64_t)ts.tv_sec * INT64_C(1000000000) + (int64_t)ts.tv_nsec;
}

CAMLprim value hlp_clock_monotonic_ns_byte(value unit)
{
  return caml_copy_int64(hlp_clock_monotonic_ns(unit));
}
