type counter = { c_name : string; value : int Atomic.t }

type timer = { t_name : string; calls : int Atomic.t; nanos : int Atomic.t }

type series = {
  s_name : string;
  lock : Mutex.t;
  mutable items : float list;  (* reversed *)
  mutable length : int;
}

type histogram = { h_name : string; h : Hdr.t }

let on = Atomic.make false

let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

(* Registries. Instruments are created at module-initialization time (and
   idempotently thereafter), so registration is rare; the lock only guards
   the tables, never the hot add/observe paths. *)
let registry_lock = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let timers : (string, timer) Hashtbl.t = Hashtbl.create 16
let series_tbl : (string, series) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let registered tbl name make =
  Mutex.lock registry_lock;
  let v =
    match Hashtbl.find_opt tbl name with
    | Some v -> v
    | None ->
        let v = make () in
        Hashtbl.add tbl name v;
        v
  in
  Mutex.unlock registry_lock;
  v

let counter name =
  registered counters name (fun () -> { c_name = name; value = Atomic.make 0 })

let add c n = if Atomic.get on then ignore (Atomic.fetch_and_add c.value n)
let incr c = add c 1
let count c = Atomic.get c.value

let timer name =
  registered timers name (fun () ->
      { t_name = name; calls = Atomic.make 0; nanos = Atomic.make 0 })

(* Durations come from the monotonic clock: a wall-clock (NTP) step
   mid-span would otherwise charge a negative or wildly wrong duration. *)
let time t f =
  if not (Atomic.get on) then f ()
  else begin
    let t0 = Clock.now_s () in
    Fun.protect
      ~finally:(fun () ->
        let dt = Clock.now_s () -. t0 in
        ignore (Atomic.fetch_and_add t.calls 1);
        ignore (Atomic.fetch_and_add t.nanos (int_of_float (dt *. 1e9))))
      f
  end

let timer_stats t = (Atomic.get t.calls, float_of_int (Atomic.get t.nanos) /. 1e9)

let series name =
  registered series_tbl name (fun () ->
      { s_name = name; lock = Mutex.create (); items = []; length = 0 })

let observe s x =
  if Atomic.get on then begin
    Mutex.lock s.lock;
    s.items <- x :: s.items;
    s.length <- s.length + 1;
    Mutex.unlock s.lock
  end

let histogram name =
  registered histograms name (fun () -> { h_name = name; h = Hdr.create () })

let record hg v = if Atomic.get on then Hdr.record hg.h v
let hist_snapshot hg = Hdr.snapshot hg.h
let hist_count hg = Hdr.count hg.h

let observations s =
  Mutex.lock s.lock;
  let a = Array.make s.length 0.0 in
  List.iteri (fun i x -> a.(s.length - 1 - i) <- x) s.items;
  Mutex.unlock s.lock;
  a

let reset () =
  Mutex.lock registry_lock;
  Hashtbl.iter (fun _ c -> Atomic.set c.value 0) counters;
  Hashtbl.iter
    (fun _ t ->
      Atomic.set t.calls 0;
      Atomic.set t.nanos 0)
    timers;
  Hashtbl.iter
    (fun _ s ->
      Mutex.lock s.lock;
      s.items <- [];
      s.length <- 0;
      Mutex.unlock s.lock)
    series_tbl;
  Hashtbl.iter (fun _ hg -> Hdr.clear hg.h) histograms;
  Mutex.unlock registry_lock

(* --- output --- *)

let sorted tbl =
  let l = Hashtbl.fold (fun _ v acc -> v :: acc) tbl [] in
  l

let sorted_counters () =
  List.sort (fun a b -> compare a.c_name b.c_name) (sorted counters)

let sorted_timers () =
  List.sort (fun a b -> compare a.t_name b.t_name) (sorted timers)

let sorted_series () =
  List.sort (fun a b -> compare a.s_name b.s_name) (sorted series_tbl)

let sorted_histograms () =
  List.sort (fun a b -> compare a.h_name b.h_name) (sorted histograms)

let json_value () =
  Json.Obj
    [ ("enabled", Json.Bool (enabled ()));
      ( "counters",
        Json.Obj
          (List.map (fun c -> (c.c_name, Json.Int (count c))) (sorted_counters ())) );
      ( "timers",
        Json.Obj
          (List.map
             (fun t ->
               let calls, secs = timer_stats t in
               ( t.t_name,
                 Json.Obj [ ("calls", Json.Int calls); ("seconds", Json.Float secs) ] ))
             (sorted_timers ())) );
      ( "series",
        Json.Obj
          (List.map
             (fun s ->
               ( s.s_name,
                 Json.List
                   (Array.to_list
                      (Array.map (fun x -> Json.Float x) (observations s))) ))
             (sorted_series ())) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun hg -> (hg.h_name, Hdr.json_of_snapshot (hist_snapshot hg)))
             (sorted_histograms ())) ) ]

let to_json () = Json.to_string ~compact:true (json_value ())

let print_report ?(oc = stdout) () =
  let p fmt = Printf.fprintf oc fmt in
  let cs = List.filter (fun c -> count c <> 0) (sorted_counters ()) in
  let ts = List.filter (fun t -> fst (timer_stats t) <> 0) (sorted_timers ()) in
  let ss =
    List.filter (fun s -> Array.length (observations s) > 0) (sorted_series ())
  in
  let hs = List.filter (fun hg -> hist_count hg > 0) (sorted_histograms ()) in
  p "telemetry:\n";
  if cs = [] && ts = [] && ss = [] && hs = [] then p "  (no instruments fired)\n";
  List.iter (fun c -> p "  %-32s %12d\n" c.c_name (count c)) cs;
  List.iter
    (fun t ->
      let calls, secs = timer_stats t in
      p "  %-32s %12d calls %10.3f ms total\n" t.t_name calls (secs *. 1e3))
    ts;
  List.iter
    (fun s ->
      let xs = observations s in
      let n = Array.length xs in
      p "  %-32s %12d obs   first %.4g last %.4g\n" s.s_name n xs.(0) xs.(n - 1))
    ss;
  List.iter
    (fun hg ->
      let s = hist_snapshot hg in
      p "  %-32s %12d obs   p50 %.4g p99 %.4g max %.4g\n" hg.h_name s.Hdr.total
        (Hdr.quantile s 0.50) (Hdr.quantile s 0.99) s.Hdr.maxv)
    hs
