(* Deterministic fault-injecting socket proxy.

   Sits between a client and the estimation daemon and mangles the byte
   stream in the ways a bad network (or a dying peer) would: delays,
   dropped chunks, mid-frame truncation, bit corruption, split writes,
   and slammed connections. Every fault decision is a pure splitmix64
   hash of (seed, draw index) — the same discipline as Faultinject — so
   a soak run is reproducible from its seed: equal seeds and equal draw
   counts give equal fault schedules, independent of scheduling.

   The proxy never interprets frames. It works on raw chunks, which is
   the point: the CRC wall and the typed-error taxonomy downstream must
   turn arbitrary byte damage into loud, typed failures, and the proxy
   must not know enough about the protocol to be accidentally gentle. *)

let tel_connections = Telemetry.counter "chaos.connections"
let tel_chunks = Telemetry.counter "chaos.chunks"
let tel_faults = Telemetry.counter "chaos.faults"
let tel_upstream_failures = Telemetry.counter "chaos.upstream_failures"

type fault = Delay | Drop | Truncate | Corrupt | Split | Slam

let all_faults = [ Delay; Drop; Truncate; Corrupt; Split; Slam ]

let fault_name = function
  | Delay -> "delay"
  | Drop -> "drop"
  | Truncate -> "truncate"
  | Corrupt -> "corrupt"
  | Split -> "split"
  | Slam -> "slam"

let fault_of_name = function
  | "delay" -> Some Delay
  | "drop" -> Some Drop
  | "truncate" -> Some Truncate
  | "corrupt" -> Some Corrupt
  | "split" -> Some Split
  | "slam" -> Some Slam
  | _ -> None

let fault_counter f = Telemetry.counter ("chaos.fault." ^ fault_name f)

(* Pure splitmix64 finalizer of (seed, draw index): the n-th draw of a
   given proxy is the same in every run, whichever worker makes it. *)
let mix ~seed ~n =
  let z = ref (Int64.of_int ((seed * 0x9E3779B9) lxor (n * 0x85EBCA6B))) in
  z := Int64.mul (Int64.logxor !z (Int64.shift_right_logical !z 30)) 0xBF58476D1CE4E5B9L;
  z := Int64.mul (Int64.logxor !z (Int64.shift_right_logical !z 27)) 0x94D049BB133111EBL;
  Int64.logxor !z (Int64.shift_right_logical !z 31)

let draw_float ~seed counter =
  let n = Atomic.fetch_and_add counter 1 in
  Int64.to_float (Int64.shift_right_logical (mix ~seed ~n) 11) *. 0x1p-53

let draw_int ~seed counter bound =
  let n = Atomic.fetch_and_add counter 1 in
  Int64.to_int (Int64.rem (Int64.shift_right_logical (mix ~seed ~n) 1) (Int64.of_int bound))

type t = {
  listen_fd : Unix.file_descr;
  listen_path : string;
  stopping : bool Atomic.t;
  queue : Unix.file_descr Queue.t;
  mu : Mutex.t;
  cond : Condition.t;
  mutable accepter : unit Domain.t option;
  mutable workers : unit Domain.t list;
}

exception Conn_done

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let rec write_all fd b off len =
  if len > 0 then begin
    let n =
      try Unix.write fd b off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd b (off + n) (len - n)
  end

(* Apply at most one fault to [chunk], then forward what survives to
   [dst]. Raises Conn_done when the fault kills the connection. *)
let transmit ~seed ~rate ~faults ~max_delay_s ~counter dst chunk len =
  Telemetry.incr tel_chunks;
  let fire = rate > 0.0 && draw_float ~seed counter < rate in
  if not fire then write_all dst chunk 0 len
  else begin
    let fault = List.nth faults (draw_int ~seed counter (List.length faults)) in
    Telemetry.incr tel_faults;
    Telemetry.incr (fault_counter fault);
    match fault with
    | Delay ->
        Unix.sleepf (draw_float ~seed counter *. max_delay_s);
        write_all dst chunk 0 len
    | Drop -> ()
    | Truncate ->
        (* forward a prefix, then slam: the receiver holds a torn frame *)
        write_all dst chunk 0 (max 1 (len / 2));
        raise Conn_done
    | Corrupt ->
        let bit = draw_int ~seed counter (len * 8) in
        let byte = bit / 8 in
        Bytes.set chunk byte
          (Char.chr (Char.code (Bytes.get chunk byte) lxor (1 lsl (bit mod 8))));
        write_all dst chunk 0 len
    | Split ->
        let third = max 1 (len / 3) in
        let off = ref 0 in
        while !off < len do
          let n = min third (len - !off) in
          write_all dst chunk !off n;
          off := !off + n;
          if !off < len then Unix.sleepf 0.001
        done
    | Slam -> raise Conn_done
  end

let shovel_pair t ~seed ~rate ~faults ~max_delay_s ~counter client upstream =
  let buf = Bytes.create 4096 in
  let rec loop () =
    if Atomic.get t.stopping then ()
    else
      match Unix.select [ client; upstream ] [] [] 0.1 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | [], _, _ -> loop ()
      | ready, _, _ ->
          List.iter
            (fun src ->
              let dst = if src == client then upstream else client in
              match Unix.read src buf 0 (Bytes.length buf) with
              | 0 -> raise Conn_done
              | n -> transmit ~seed ~rate ~faults ~max_delay_s ~counter dst buf n
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
            ready;
          loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      close_quiet client;
      close_quiet upstream)
    (fun () ->
      try loop ()
      with
      | Conn_done -> ()
      (* the peer vanished mid-write/read: that is chaos working *)
      | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) -> ())

let start ?(seed = 0) ?(rate = 0.05) ?(faults = all_faults) ?(max_delay_s = 0.05)
    ?(workers = 8) ~listen ~upstream () =
  if (not (Float.is_finite rate)) || rate < 0.0 || rate > 1.0 then
    raise (Err.invalid_input ~what:"Chaos.start: rate" "must be in [0, 1]");
  if (not (Float.is_finite max_delay_s)) || max_delay_s < 0.0 then
    raise
      (Err.invalid_input ~what:"Chaos.start: max_delay_s"
         "must be finite and non-negative");
  if workers < 1 then
    raise (Err.invalid_input ~what:"Chaos.start: workers" "must be >= 1");
  if faults = [] then
    raise (Err.invalid_input ~what:"Chaos.start: faults" "must be non-empty");
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  Server.prepare_path listen;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind listen_fd (Unix.ADDR_UNIX listen)
   with Unix.Unix_error (e, _, _) ->
     close_quiet listen_fd;
     raise
       (Err.invalid_input ~what:"Chaos.start: listen"
          (Printf.sprintf "cannot bind %s: %s" listen (Unix.error_message e))));
  Unix.listen listen_fd 64;
  let t =
    {
      listen_fd;
      listen_path = listen;
      stopping = Atomic.make false;
      queue = Queue.create ();
      mu = Mutex.create ();
      cond = Condition.create ();
      accepter = None;
      workers = [];
    }
  in
  let counter = Atomic.make 0 in
  let worker () =
    let rec next () =
      Mutex.lock t.mu;
      let rec wait () =
        if Atomic.get t.stopping then begin
          Mutex.unlock t.mu;
          None
        end
        else
          match Queue.take_opt t.queue with
          | Some fd ->
              Mutex.unlock t.mu;
              Some fd
          | None ->
              Condition.wait t.cond t.mu;
              wait ()
      in
      match wait () with
      | None -> ()
      | Some client ->
          let up = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          (match Unix.connect up (Unix.ADDR_UNIX upstream) with
          | () ->
              shovel_pair t ~seed ~rate ~faults ~max_delay_s ~counter client up
          | exception Unix.Unix_error _ ->
              Telemetry.incr tel_upstream_failures;
              close_quiet up;
              close_quiet client);
          next ()
    in
    next ()
  in
  let accepter () =
    let rec loop () =
      if Atomic.get t.stopping then ()
      else begin
        (match Unix.select [ listen_fd ] [] [] 0.05 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | [], _, _ -> ()
        | _ -> (
            match Unix.accept ~cloexec:true listen_fd with
            | exception Unix.Unix_error _ -> ()
            | fd, _ ->
                Telemetry.incr tel_connections;
                Mutex.lock t.mu;
                Queue.add fd t.queue;
                Condition.signal t.cond;
                Mutex.unlock t.mu));
        loop ()
      end
    in
    loop ()
  in
  t.workers <- List.init workers (fun _ -> Domain.spawn worker);
  t.accepter <- Some (Domain.spawn accepter);
  t

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    Mutex.lock t.mu;
    Condition.broadcast t.cond;
    Mutex.unlock t.mu;
    Option.iter Domain.join t.accepter;
    List.iter Domain.join t.workers;
    Mutex.lock t.mu;
    Queue.iter close_quiet t.queue;
    Queue.clear t.queue;
    Mutex.unlock t.mu;
    close_quiet t.listen_fd;
    try Unix.unlink t.listen_path with Unix.Unix_error _ | Sys_error _ -> ()
  end
