(* 16-bit lookup table: popcount is on the hot path of the bit-parallel
   simulator (one call per toggling node per step), where the bit-at-a-time
   loop would cost up to 63 iterations per call. *)
let pop16 =
  let t = Bytes.create 65536 in
  Bytes.set t 0 '\000';
  for i = 1 to 65535 do
    Bytes.set t i (Char.chr (Char.code (Bytes.get t (i lsr 1)) + (i land 1)))
  done;
  t

let popcount w =
  Char.code (Bytes.unsafe_get pop16 (w land 0xffff))
  + Char.code (Bytes.unsafe_get pop16 ((w lsr 16) land 0xffff))
  + Char.code (Bytes.unsafe_get pop16 ((w lsr 32) land 0xffff))
  + Char.code (Bytes.unsafe_get pop16 (w lsr 48))

let hamming a b = popcount (a lxor b)

let bit w i = (w lsr i) land 1 = 1

let set_bit w i v = if v then w lor (1 lsl i) else w land lnot (1 lsl i)

let mask width =
  assert (width >= 0 && width <= 62);
  (1 lsl width) - 1

let to_gray w = w lxor (w lsr 1)

let of_gray g =
  let rec go acc g = if g = 0 then acc else go (acc lxor g) (g lsr 1) in
  go 0 g

let bits_of_int ~width w = Array.init width (fun i -> bit w i)

let int_of_bits a =
  let v = ref 0 in
  for i = Array.length a - 1 downto 0 do
    v := (!v lsl 1) lor (if a.(i) then 1 else 0)
  done;
  !v

let sign_extend ~width w =
  let w = w land mask width in
  if bit w (width - 1) then w - (1 lsl width) else w

let of_signed ~width v = v land mask width

let transitions ~width words =
  let total = ref 0 in
  for i = 1 to Array.length words - 1 do
    total := !total + hamming (words.(i - 1) land mask width) (words.(i) land mask width)
  done;
  !total

let pp_binary ~width fmt w =
  for i = width - 1 downto 0 do
    Format.pp_print_char fmt (if bit w i then '1' else '0')
  done
