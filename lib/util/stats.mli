(** Descriptive statistics and sampling-theory helpers.

    Used by the sampling-based power estimators (census / sampler / adaptive
    macro-modeling, Section II-C2 of the paper) and by every experiment that
    reports errors and confidence intervals. *)

val mean : float array -> float
(** Arithmetic mean. Requires a non-empty array. *)

val variance : float array -> float
(** Unbiased sample variance (divides by [n - 1]); [0.] for arrays of
    length [<= 1]. *)

val stddev : float array -> float

val mean_list : float list -> float

val minimum : float array -> float

val maximum : float array -> float

val median : float array -> float
(** Median (does not mutate the input). *)

val percentile : float array -> float -> float
(** [percentile a p] with [p] in [\[0,100\]], nearest-rank convention. *)

val confidence_interval_95 : float array -> float * float
(** Normal-approximation 95% confidence interval of the mean:
    [(mean - 1.96 s/sqrt n, mean + 1.96 s/sqrt n)]. Only asymptotically
    valid: at small sample counts it is too narrow (under-covers), because
    the variance is itself estimated — use {!confidence_interval}, which
    applies the Student-t correction, whenever [n] is small (the
    Monte Carlo stopping rule stops on as few as 3 batch means). *)

val t_quantile : level:float -> df:int -> float
(** Two-sided Student-t quantile: the [t] with [P(|T_df| <= t) = level].
    Supported levels: 0.90, 0.95, 0.99 (tabulated for df = 1..30, 40, 60,
    120; interpolated linearly in 1/df elsewhere, converging to the normal
    quantile as df grows). Raises [Invalid_argument] on other levels or
    [df < 1]. *)

val confidence_interval : level:float -> df:int -> float array -> float * float
(** Student-t confidence interval of the mean at the given [level]:
    [(mean - t s/sqrt n, mean + t s/sqrt n)] with [t = t_quantile ~level ~df].
    Pass [df = n - 1] for an i.i.d. sample of [n] batch means. Unlike
    {!confidence_interval_95} this has correct finite-sample coverage under
    normality — at [df = 2] the 95% multiplier is 4.303, not 1.96. Raises
    [Invalid_argument] if [df < 1]. *)

val relative_error : actual:float -> estimate:float -> float
(** [|estimate - actual| / |actual|]; [0.] when both are zero, [infinity]
    when only [actual] is. *)

val mean_relative_error : actual:float array -> estimate:float array -> float
(** Mean of pointwise relative errors over paired samples. *)

val rms_error : actual:float array -> estimate:float array -> float

val correlation : float array -> float array -> float
(** Pearson correlation coefficient; [0.] when either side is constant. *)

type linreg = { slope : float; intercept : float; r2 : float }

val linear_regression : x:float array -> y:float array -> linreg
(** Ordinary least squares on paired samples. *)

val ratio_estimator : y:float array -> x:float array -> population_x:float -> float
(** Classical ratio estimator: [(sum y / sum x) * population_x]. This is the
    statistical engine behind adaptive macro-modeling: [y] are expensive
    gate-level measurements on a small sample, [x] the cheap macro-model
    values on the same sample, [population_x] the macro-model total over the
    whole stream. When the sample's [x] values sum to zero the ratio is
    undefined; the estimator then falls back to [population_x] (ratio 1,
    i.e. the uncorrected census value) rather than reporting zero. *)

val histogram : bins:int -> float array -> (float * int) array
(** Equal-width histogram; each entry is (bin lower edge, count). *)
