(* Resident-set sampling for memory-pressure-aware admission.

   /proc/self/statm column 2 is the resident page count; multiplied by
   the page size it is the same RSS the OOM killer scores. The parse is
   a few microseconds — cheap enough to sample on the server's accept
   tick, but callers still throttle (Server samples at most a few times
   a second) because admission only needs a recent reading, not an
   exact one. On platforms without procfs the reading is [None] and
   every budget check degrades to "no pressure": the daemon behaves
   exactly as before this module existed. *)

let page_size =
  (* getconf PAGE_SIZE without the subprocess: OCaml has no binding, but
     statm is Linux-only anyway and 4 KiB is the only page size the
     supported targets use; a wrong constant here skews budgets by a
     power of two, so keep it overridable for exotic kernels. *)
  match Sys.getenv_opt "HLP_PAGE_SIZE" with
  | Some s -> ( try int_of_string s with Failure _ -> 4096)
  | None -> 4096

let proc_rss_bytes () =
  match In_channel.with_open_text "/proc/self/statm" In_channel.input_line with
  | Some line -> (
      match String.split_on_char ' ' line with
      | _size :: resident :: _ -> (
          match int_of_string_opt resident with
          | Some pages -> Some (pages * page_size)
          | None -> None)
      | _ -> None)
  | None -> None
  | exception Sys_error _ -> None

(* The source indirection exists solely so tests can inject a
   deterministic RSS curve (the memory-pressure admission tests ramp a
   fake RSS through the soft and hard budgets); production code always
   reads /proc through it. Same shape as Clock.source. *)
let source : (unit -> int option) Atomic.t = Atomic.make proc_rss_bytes

let rss_bytes () = (Atomic.get source) ()

let with_source fake f =
  let prev = Atomic.get source in
  Atomic.set source fake;
  Fun.protect ~finally:(fun () -> Atomic.set source prev) f
