(** Resident-set sampling for memory-pressure-aware admission.

    The estimation daemon's two-threshold memory policy (soft budget →
    proportional cache eviction, hard budget → typed [Overloaded] sheds)
    needs the same RSS number the OOM killer scores. This module reads
    it from [/proc/self/statm]; where procfs is absent the reading is
    [None] and pressure checks degrade to "no pressure" rather than
    guessing. *)

val rss_bytes : unit -> int option
(** Current resident set size in bytes from the active source ([/proc]
    unless a test injected one with {!with_source}). [None] when the
    platform cannot say — treat as no pressure. *)

val with_source : (unit -> int option) -> (unit -> 'a) -> 'a
(** [with_source fake f] runs [f] with {!rss_bytes} reading [fake],
    restoring the real source afterwards (also on exceptions). For
    tests: drive a deterministic RSS ramp through the soft and hard
    budgets. Process-global — do not use from concurrent domains. *)
