type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let bits64 t =
  let z = Int64.add t.state golden in
  t.state <- z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = bits64 t in
  { state = s }

let state t = t.state
let of_state s = { state = s }

let int t n =
  assert (n > 0);
  (* keep 62 bits so the value fits OCaml's 63-bit int as a nonnegative *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod n

let float t x =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  x *. v /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let gaussian t ~mu ~sigma =
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 1e-300 then draw ()
    else
      let u2 = float t 1.0 in
      mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))
  in
  draw ()

let exponential t ~mean =
  let rec draw () =
    let u = float t 1.0 in
    if u <= 1e-300 then draw () else -.mean *. log u
  in
  draw ()

let pareto t ~shape ~scale =
  let rec draw () =
    let u = float t 1.0 in
    if u <= 1e-300 then draw () else scale /. (u ** (1.0 /. shape))
  in
  draw ()

let geometric t ~p =
  assert (p > 0.0 && p <= 1.0);
  let rec count k = if bernoulli t p then k else count (k + 1) in
  count 0

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let pick_weighted t l =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 l in
  assert (total > 0.0);
  let x = float t total in
  let rec go acc = function
    | [] -> invalid_arg "pick_weighted: empty"
    | [ (_, v) ] -> v
    | (w, v) :: rest -> if x < acc +. w then v else go (acc +. w) rest
  in
  go 0.0 l
