(* HDR-style log-bucketed histogram. Values below [sub_buckets] get an
   exact bucket; each power-of-two octave above is split into
   [sub_buckets] linear sub-buckets, so a bucket's relative width never
   exceeds 1/sub_buckets and a midpoint-answered quantile is within
   1/(2*sub_buckets) of the exact sample quantile. With 63-bit ints the
   top octave is k = 62, giving a fixed bucket count small enough to
   snapshot and ship whole. *)

let sub_bits = 5
let sub_buckets = 1 lsl sub_bits (* 32 *)
let max_relative_error = 1.0 /. float_of_int (2 * sub_buckets)

(* indices: [0, sub_buckets) exact, then (62 - sub_bits + 1) octaves of
   [sub_buckets] each minus the first octave's low half which the exact
   region already covers. Max value index: k = 62 → 1887. *)
let nbuckets = sub_buckets + ((62 - sub_bits) * sub_buckets) + sub_buckets

type t = {
  buckets : int Atomic.t array;
  n : int Atomic.t;
  units : int Atomic.t;  (* sum of recorded integer units *)
  minu : int Atomic.t;  (* max_int when empty *)
  maxu : int Atomic.t;  (* -1 when empty *)
}

let create () =
  {
    buckets = Array.init nbuckets (fun _ -> Atomic.make 0);
    n = Atomic.make 0;
    units = Atomic.make 0;
    minu = Atomic.make max_int;
    maxu = Atomic.make (-1);
  }

let msb v =
  let k = ref 0 in
  let v = ref v in
  while !v > 1 do
    v := !v lsr 1;
    incr k
  done;
  !k

let index_of u =
  if u < sub_buckets then u
  else
    let k = msb u in
    let shift = k - sub_bits in
    sub_buckets + (shift * sub_buckets) + ((u lsr shift) - sub_buckets)

let bucket_bounds i =
  if i < sub_buckets then (float_of_int i, float_of_int (i + 1))
  else begin
    let j = i - sub_buckets in
    let shift = j / sub_buckets in
    let pos = j mod sub_buckets in
    let low = ldexp (float_of_int (sub_buckets + pos)) shift in
    (low, low +. ldexp 1.0 shift)
  end

(* Midpoint for wide buckets, the exact value for width-1 buckets. *)
let representative i =
  let low, high = bucket_bounds i in
  if high -. low <= 1.0 then low else (low +. high) /. 2.0

let rec atomic_min a u =
  let cur = Atomic.get a in
  if u < cur && not (Atomic.compare_and_set a cur u) then atomic_min a u

let rec atomic_max a u =
  let cur = Atomic.get a in
  if u > cur && not (Atomic.compare_and_set a cur u) then atomic_max a u

(* Largest float certain to round into the int range. *)
let max_unit_f = 4.0e18

let record t v =
  if Float.is_finite v then begin
    let u =
      if v <= 0.0 then 0
      else if v >= max_unit_f then max_int
      else int_of_float (Float.round v)
    in
    ignore (Atomic.fetch_and_add t.buckets.(index_of u) 1);
    ignore (Atomic.fetch_and_add t.n 1);
    ignore (Atomic.fetch_and_add t.units u);
    atomic_min t.minu u;
    atomic_max t.maxu u
  end

let count t = Atomic.get t.n

let clear t =
  Array.iter (fun b -> Atomic.set b 0) t.buckets;
  Atomic.set t.n 0;
  Atomic.set t.units 0;
  Atomic.set t.minu max_int;
  Atomic.set t.maxu (-1)

type snapshot = {
  counts : int array;
  total : int;
  sum : float;
  minv : float;
  maxv : float;
}

(* total comes from the copied buckets, not [t.n], so quantile ranks are
   always consistent with the counts actually captured mid-traffic. *)
let snapshot t =
  let counts = Array.map Atomic.get t.buckets in
  let total = Array.fold_left ( + ) 0 counts in
  let mn = Atomic.get t.minu and mx = Atomic.get t.maxu in
  {
    counts;
    total;
    sum = float_of_int (Atomic.get t.units);
    minv = (if mx < 0 then nan else float_of_int mn);
    maxv = (if mx < 0 then nan else float_of_int mx);
  }

let empty =
  { counts = Array.make nbuckets 0; total = 0; sum = 0.0; minv = nan; maxv = nan }

let merge a b =
  let fmin x y = if Float.is_nan x then y else if Float.is_nan y then x else Float.min x y in
  let fmax x y = if Float.is_nan x then y else if Float.is_nan y then x else Float.max x y in
  {
    counts = Array.init nbuckets (fun i -> a.counts.(i) + b.counts.(i));
    total = a.total + b.total;
    sum = a.sum +. b.sum;
    minv = fmin a.minv b.minv;
    maxv = fmax a.maxv b.maxv;
  }

let quantile s q =
  if not (q > 0.0 && q <= 1.0) then invalid_arg "Hdr.quantile: q outside (0, 1]";
  if s.total = 0 then nan
  else begin
    (* same rank convention as an exact sorted sample: the ceil(q*n)-th
       smallest observation, 1-based. *)
    let rank = max 1 (int_of_float (ceil (q *. float_of_int s.total))) in
    let cum = ref 0 and i = ref 0 and found = ref nan in
    while Float.is_nan !found && !i < nbuckets do
      cum := !cum + s.counts.(!i);
      if !cum >= rank then found := representative !i;
      incr i
    done;
    !found
  end

let mean s = if s.total = 0 then nan else s.sum /. float_of_int s.total

let nonzero_buckets s =
  let acc = ref [] in
  for i = nbuckets - 1 downto 0 do
    if s.counts.(i) > 0 then acc := (snd (bucket_bounds i), s.counts.(i)) :: !acc
  done;
  !acc

let json_of_snapshot s =
  let num x = if Float.is_finite x then Json.Float x else Json.Null in
  let q p = if s.total = 0 then Json.Null else num (quantile s p) in
  Json.Obj
    [ ("count", Json.Int s.total);
      ("sum", Json.Float s.sum);
      ("min", num s.minv);
      ("max", num s.maxv);
      ("mean", if s.total = 0 then Json.Null else num (mean s));
      ("p50", q 0.50);
      ("p90", q 0.90);
      ("p99", q 0.99);
      ("p999", q 0.999);
      ("max_relative_error", Json.Float max_relative_error);
      ( "buckets",
        Json.List
          (List.map
             (fun (upper, c) -> Json.List [ Json.Float upper; Json.Int c ])
             (nonzero_buckets s)) ) ]
