(** Hierarchical span tracing with Chrome trace-event export.

    Where {!Telemetry} aggregates (how many shard retries, how long in
    replay total), [Trace] records {e structure}: which engine attempt
    contained which shard, where the backoff sat inside the retry, which
    Monte Carlo batch tripped the deadline. The export is the Chrome
    trace-event JSON format, loadable in Perfetto ([ui.perfetto.dev]) or
    [chrome://tracing] for a flame-graph view of one run.

    Discipline matches {!Telemetry}: the global switch is off by default
    and every instrumented site costs exactly one predictable branch when
    disabled ({!span} is [f ()], {!instant} is a no-op). Timestamps come
    from {!Clock} (monotonic), so spans cannot go negative under NTP
    steps.

    Concurrency: each domain appends to its own bounded buffer (created
    on first use, registered globally), so {!Hlp_sim.Parsim} worker
    domains trace without locking; buffers are merged and time-sorted at
    flush. When a domain's buffer fills, the {e newest} events are
    dropped (and counted in {!dropped}) in a nesting-preserving way: a
    dropped begin swallows its matching end, so the exported stream stays
    well-formed — every [E] event matches an earlier [B] on the same
    thread. *)

val enabled : unit -> bool
(** Current state of the global switch (off at program start). *)

val enable : ?capacity:int -> unit -> unit
(** Switch tracing on. [capacity] (default 65536) bounds each domain
    buffer created from now on; buffers that already exist keep theirs.
    The first [enable] pins the trace epoch: exported timestamps are
    microseconds since that moment. *)

val disable : unit -> unit

val reset : unit -> unit
(** Drop all recorded events and clear the epoch. Call only at quiescent
    points (no worker domains running). *)

(** {1 Recording} *)

val span : ?args:(unit -> (string * Json.t) list) -> string -> (unit -> 'a) -> 'a
(** [span name f] wraps [f] in a begin/end pair on the calling domain
    (exception-safe: the span closes even if [f] raises). When disabled
    this is exactly [f ()]; [args] is a thunk so argument lists are never
    built on the disabled path. *)

val begin_span : ?args:(string * Json.t) list -> string -> unit
(** Explicit begin, for spans that cannot wrap a closure. Must be closed
    with {!end_span} on the same domain. No-op while disabled. *)

val end_span : unit -> unit

val instant : ?args:(unit -> (string * Json.t) list) -> string -> unit
(** A zero-duration marker (Chrome ["i"] event), e.g. a budget trip or a
    retry backoff. No-op while disabled. *)

(** {1 Inspection & export} *)

val event_count : unit -> int
(** Events currently recorded across all domain buffers. *)

val dropped : unit -> int
(** Events dropped across all domain buffers because a buffer was full. *)

val json_value : unit -> Json.t
(** The merged trace as a Chrome trace-event object:
    [{"traceEvents": [{"name","ph","ts","pid","tid","args"}, ...],
      "displayTimeUnit": "ms", "droppedEvents": int}].
    Events are sorted by timestamp (stable within a domain); [ts] is in
    microseconds since the trace epoch. Each domain buffer that dropped
    events additionally contributes one ["trace.dropped"] metadata event
    ([ph = "M"], [args.dropped] = its count), so truncation is visible
    inside the trace viewer, not only in [droppedEvents]. *)

val to_json : unit -> string
(** Compact one-line serialization of {!json_value}. *)

val write : path:string -> unit
(** Write {!to_json} (plus a newline) to [path]. Buffers that dropped
    events are also named on stderr (per-tid totals) so a silent ring
    overflow cannot masquerade as a complete flush. *)
