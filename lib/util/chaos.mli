(** Deterministic fault-injecting socket proxy — the adversary the
    resilience layer is tested against.

    The proxy listens on one Unix socket and forwards raw byte chunks to
    an upstream socket (both directions), injecting faults drawn from a
    seeded splitmix64 stream — the same decision discipline as
    {!Faultinject}: every draw is a pure hash of (seed, draw index), so
    a soak run's fault schedule is reproducible from its seed and draw
    count, independent of thread scheduling.

    The proxy is protocol-blind on purpose. It damages chunks, not
    frames; whether byte damage becomes a typed error (CRC wall, torn
    frame detection, timeouts) instead of silent corruption or a hang is
    exactly what the downstream stack must prove. Used in-process by the
    resilience tests and bench E40, and manually via
    [hlpower chaos-proxy].

    Counters in {!Telemetry}: ["chaos.connections"], ["chaos.chunks"],
    ["chaos.faults"], ["chaos.fault.<name>"],
    ["chaos.upstream_failures"]. *)

type fault =
  | Delay  (** hold the chunk for a drawn fraction of [max_delay_s] *)
  | Drop  (** discard the chunk; the stream silently loses bytes *)
  | Truncate  (** forward half the chunk, then close both directions *)
  | Corrupt  (** flip one drawn bit, then forward *)
  | Split  (** forward in three partial writes with small gaps *)
  | Slam  (** close both directions immediately *)

val all_faults : fault list
val fault_name : fault -> string

val fault_of_name : string -> fault option
(** Inverse of {!fault_name}; [None] for unknown names (CLI parsing). *)

type t

val start :
  ?seed:int ->
  ?rate:float ->
  ?faults:fault list ->
  ?max_delay_s:float ->
  ?workers:int ->
  listen:string ->
  upstream:string ->
  unit ->
  t
(** [start ~listen ~upstream ()] binds [listen] (via
    {!Server.prepare_path} — refusing to steal a live socket) and
    proxies every accepted connection to [upstream]. Each forwarded
    chunk suffers at most one fault with probability [rate] (default
    0.05), chosen uniformly among [faults] (default {!all_faults}).
    [workers] (default 8) bounds concurrent proxied connections — a
    bounded domain pool, same shape as {!serve}; excess connections
    wait in an accept queue. An unreachable [upstream] closes the
    client connection (a fault in itself).

    Ignores [SIGPIPE] process-wide, like {!Server.serve}. Returns
    immediately; the proxy runs on background domains until {!stop}.
    Raises the typed [Invalid_input] on a rate outside [0, 1], a
    negative [max_delay_s], [workers < 1], empty [faults], or an
    unusable [listen] path. *)

val stop : t -> unit
(** Stop accepting, close every proxied connection, join the background
    domains, and unlink the listen socket. Idempotent. *)
