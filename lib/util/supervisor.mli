(** Supervised batch execution: bounded in-flight concurrency over worker
    domains, deadline-aware admission control with load shedding, a
    circuit breaker for flappy estimators, and graceful signal handling.

    The paper's estimators are single long-running statistical jobs; the
    production shape (HL-Pow / PowerGear style campaigns) is {e fleets} of
    them — hundreds of design points, each an independent estimate. This
    module is the generic runner for such fleets: it knows nothing about
    power estimation, only about jobs, budgets, deadlines, and failure
    containment. The batch CLI ([hlpower batch]) wires it to
    {!Hlp_power.Probprop.estimate_guarded} plus per-job {!Journal}s.

    Everything observable is counted: admissions, sheds, failures, and
    breaker transitions appear in {!Telemetry}
    (["supervisor.jobs_run"], ["supervisor.sheds"],
    ["supervisor.deadline_sheds"], ["supervisor.breaker_opens"], ...) and
    as {!Trace} instants, so a run report shows why a job never ran. *)

(** {1 Circuit breaker}

    A named three-state breaker (closed -> open -> half-open) guarding a
    fallible-but-preferred path. The batch runner uses one per estimator:
    repeated [Budget_exceeded] trips from the symbolic BDD stage open the
    breaker, jobs route straight to Monte Carlo sampling (skipping the
    doomed BDD build entirely), and after a cooldown one probe job is
    allowed to try symbolic again — success closes the breaker, failure
    re-opens it for another cooldown. *)

type breaker

type breaker_state = Closed | Open | Half_open

val breaker :
  ?failure_threshold:int -> ?cooldown_s:float -> string -> breaker
(** [breaker name] with [failure_threshold] consecutive failures to open
    (default 3) and [cooldown_s] seconds open before half-opening
    (default 30). Raises [Err.Error (Invalid_input _)] on a
    non-positive threshold or a non-finite/negative cooldown. Safe to
    share across worker domains (mutex-protected). *)

val breaker_state : breaker -> breaker_state

val breaker_allows : breaker -> bool
(** Ask permission to take the guarded path. [Closed]: always true.
    [Open]: false until the cooldown elapses (monotonic {!Clock}), at
    which point the breaker half-opens and exactly {e one} caller gets
    true (the probe); concurrent callers keep getting false until the
    probe reports. Every [true] must be paired with a later
    {!breaker_success} or {!breaker_failure}. *)

val breaker_success : breaker -> unit
(** The guarded path worked: resets the failure count; a half-open probe
    success closes the breaker (counted in ["supervisor.breaker_closes"]). *)

val breaker_failure : breaker -> unit
(** The guarded path tripped: bumps the consecutive-failure count; at the
    threshold (or on a half-open probe failure) the breaker opens and the
    cooldown restarts (counted in ["supervisor.breaker_opens"], with a
    {!Trace} instant carrying the breaker name). *)

(** {1 Batch job runner} *)

type stats = {
  ran : int;  (** jobs whose [run] was invoked (whatever the outcome) *)
  ok : int;  (** jobs that returned [Ok] *)
  failed : int;  (** jobs whose [run] returned a typed error *)
  shed_queue : int;  (** rejected at admission: queue over budget *)
  shed_deadline : int;  (** never started: batch deadline / cancellation *)
}

val run_jobs :
  ?max_inflight:int ->
  ?queue_budget:int ->
  ?deadline_s:float ->
  ?token:Guard.token ->
  (int -> Guard.t -> 'job -> 'r) ->
  'job array ->
  ('r, Err.t) result array * stats
(** [run_jobs f jobs] runs every admitted job on a pool of at most
    [max_inflight] worker domains (default {e half} the recommended
    domain count, at least 1 — each job may itself shard over domains)
    and returns one result slot per job, in job order.

    {e Admission control}: with [queue_budget] set, jobs beyond the first
    [queue_budget] are shed immediately with
    [Error (Overloaded {queue = "supervisor.queue"; _})] — bounded-queue
    load shedding, a typed answer instead of unbounded latency. With
    [deadline_s] set, jobs that have not {e started} when the batch
    deadline passes (or when [token] is cancelled, e.g. by a signal
    handler) are shed with the corresponding typed error without running.

    Each started job receives its index and a {!Guard.t} carrying the
    remaining batch deadline and [token]; long jobs must thread it into
    their estimators so cancellation takes effect at batch granularity.
    [f]'s typed errors ({!Err.Error}) are contained in the job's slot;
    any other exception — from the job body, a tracer args thunk, or the
    worker's own bookkeeping — is contained as
    [Error (Worker_failure {shard = index; _})] carrying the printed
    exception, and the pool keeps draining. (Letting it escape used to
    kill the worker domain silently and hang the runner's completion
    poll.)

    Workers never outlive the call: all domains are joined before it
    returns, even on cancellation. Raises [Invalid_input] on non-positive
    [max_inflight]/[queue_budget] or a non-finite/negative [deadline_s]. *)

(** {1 Watchdog}

    Process supervision for the crash-only daemon: start a child (via
    re-exec — never bare fork under OCaml 5 domains), watch it with
    [waitpid] polls and an optional liveness probe, restart it on crash
    or wedge with decorrelated-jitter backoff, and give up through a
    flap breaker when restarts cluster faster than the window allows.
    Generic over the child: what to start, how to probe, and where
    lifecycle events go are all callbacks, so this module stays
    power-agnostic (the [hlpower supervise] CLI wires it to the serve
    daemon and a {!Journal.Lines} supervision journal).

    Telemetry: ["watchdog.starts"], ["watchdog.restarts"],
    ["watchdog.probe_misses"], ["watchdog.gave_up"]. *)

type watchdog_event =
  | Wd_started of int  (** child started (pid) *)
  | Wd_healthy of int  (** first successful probe of this incarnation *)
  | Wd_probe_timeout of int * int
      (** (pid, consecutive misses) — the child is wedged and about to
          be terminated *)
  | Wd_exited of int * string  (** (pid, status) — crash detected *)
  | Wd_restarting of float  (** backoff sleep before the next start *)
  | Wd_gave_up of int  (** flap breaker tripped (restarts in window) *)
  | Wd_draining of int  (** propagating SIGTERM to the child (pid) *)
  | Wd_drained of int * string  (** (pid, final status) — clean stop *)

val watchdog_event_json : watchdog_event -> Json.t
(** One supervision-journal line per event: [{ts, event, ...}] with
    [event] one of [started], [healthy], [probe-timeout], [exited],
    [restarting], [gave-up], [draining], [drained]. *)

val status_string : Unix.process_status -> string
(** ["exit N"] / ["signal SIGKILL"]-style rendering of a wait status. *)

val watch :
  ?probe:(unit -> bool) ->
  ?probe_every_s:float ->
  ?probe_misses:int ->
  ?backoff_base_s:float ->
  ?backoff_cap_s:float ->
  ?flap_window_s:float ->
  ?flap_max:int ->
  ?grace_s:float ->
  ?seed:int ->
  ?on_event:(watchdog_event -> unit) ->
  ?token:Guard.token ->
  start:(unit -> int) ->
  unit ->
  [ `Drained | `Gave_up of int ]
(** [watch ~start ()] runs the supervision loop in the calling domain
    until drain or give-up. [start] spawns one child incarnation and
    returns its pid (use [Unix.create_process] — re-exec, not fork).

    {b Liveness.} Every [probe_every_s] (default 0.5 s) the optional
    [probe] is called (exceptions count as failure); [probe_misses]
    (default 4) consecutive failures declare the child wedged — it is
    terminated (SIGTERM, then SIGKILL after [grace_s], default 5 s) and
    the crash path runs. A successful probe resets the miss count and,
    once per incarnation, emits [Wd_healthy].

    {b Crash & backoff.} A child exit (or induced wedge-kill) schedules
    a restart after a decorrelated-jitter sleep between [backoff_base_s]
    (default 0.1 s) and [backoff_cap_s] (default 5 s); [seed] fixes the
    jitter stream for tests. More than [flap_max] (default 5) restarts
    inside the sliding [flap_window_s] (default 30 s) trip the flap
    breaker: [`Gave_up n] — the caller turns this into a typed non-zero
    exit rather than looping a crashing binary forever.

    {b Drain.} Cancelling [token] (the {!with_graceful_stop} handler)
    propagates SIGTERM to the child, waits up to [grace_s] for it to
    drain, SIGKILLs a straggler, reaps it, and returns [`Drained]. The
    backoff sleep also honours the token.

    [on_event] receives every lifecycle transition (exceptions
    swallowed); serialize with {!watchdog_event_json} into a
    {!Journal.Lines} supervision journal. Raises the typed
    [Invalid_input] on non-positive tuning parameters. *)

(** {1 Signals} *)

val with_graceful_stop :
  ?signals:int list -> (Guard.token -> 'a) -> 'a * int option
(** [with_graceful_stop f] installs handlers for [signals] (default
    SIGINT and SIGTERM) that cancel the token handed to [f], runs [f],
    restores the previous handlers (also on exceptions), and reports the
    signal that fired, if any. The handler only flips the token — flushing
    journals and writing final reports is the caller's job, after [f]
    drains — so the process exits through the normal path with everything
    synced, and the caller can exit with the shell convention
    [128 + signum] ({!signal_exit_code}). *)

val signal_exit_code : int -> int
(** [signal_exit_code signum] is the conventional exit code for a run
    stopped by [signum]: 130 for SIGINT, 143 for SIGTERM. *)
