(** Deterministic pseudo-random number generation.

    All stochastic components of the toolkit draw from this splitmix64-based
    generator so that every experiment is reproducible from a seed. The
    global OCaml [Random] state is never used. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes an independent generator. Equal seeds give equal
    streams. *)

val split : t -> t
(** [split t] derives a new generator whose stream is independent of the
    subsequent outputs of [t]; both remain usable. *)

val state : t -> int64
(** The full internal state (splitmix64 is a 64-bit counter generator).
    [of_state (state t)] continues [t]'s stream exactly — the capture a
    checkpoint journal records so a resumed Monte Carlo run draws the
    byte-identical remainder of the stream. *)

val of_state : int64 -> t
(** Rebuild a generator from a captured {!state}. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal deviate by Box-Muller. *)

val exponential : t -> mean:float -> float
(** Exponential deviate with the given mean. *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto deviate: heavy-tailed, used for idle-period workloads. *)

val geometric : t -> p:float -> int
(** Number of Bernoulli(p) failures before the first success. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_weighted : t -> (float * 'a) list -> 'a
(** [pick_weighted t l] samples proportionally to the (positive) weights.
    Requires a non-empty list with positive total weight. *)
