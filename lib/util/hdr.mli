(** Lock-free log-bucketed (HDR-style) histograms with bounded-relative-
    error quantiles — the shared quantile math of the flight recorder.

    A histogram counts non-negative {e integer units} (the caller picks
    the unit: nanoseconds for durations, bytes for sizes) in buckets
    whose width grows geometrically: values below {!sub_buckets} get an
    exact bucket each; above that, every power-of-two octave is split
    into {!sub_buckets} linear sub-buckets. A bucket's relative width is
    therefore at most [1/sub_buckets], and a quantile answered as the
    bucket midpoint is within {!max_relative_error} ([1/(2*sub_buckets)],
    1.5625% at the default 32 sub-buckets) of the exact sorted-sample
    quantile — small values (< {!sub_buckets}) are exact.

    Recording is one atomic increment per observation (plus atomic
    min/max maintenance), so worker domains share one histogram without
    locks; {!snapshot} is a racy-but-consistent-enough copy (each bucket
    read atomically), and snapshots are plain data: mergeable across
    domains, processes, or time windows with {!merge} (associative and
    commutative — the qcheck wall in [test_flight] pins both laws).

    {!Telemetry.histogram} wraps this with the global registry and the
    on/off switch; the CLI client uses it directly so client- and
    server-side percentiles come from the same math. *)

type t
(** A live histogram: atomic bucket counters plus count/sum/min/max. *)

val create : unit -> t

val record : t -> float -> unit
(** [record h v] counts one observation of [v] units. Negative values
    clamp to 0, non-finite values are ignored, and [v] is rounded to the
    nearest integer unit (callers scale first: seconds [*. 1e9] for a
    nanosecond histogram). Lock-free; safe from any domain. *)

val count : t -> int
(** Observations recorded so far. *)

val clear : t -> unit
(** Zero every bucket and the count/sum/min/max — {!Telemetry.reset}'s
    histogram half. Not atomic with respect to concurrent [record]s. *)

(** {1 Snapshots} *)

type snapshot = {
  counts : int array;  (** per-bucket counts, index = {!bucket_bounds} *)
  total : int;
  sum : float;  (** sum of recorded units *)
  minv : float;  (** smallest recorded unit; [nan] when empty *)
  maxv : float;  (** largest recorded unit; [nan] when empty *)
}

val snapshot : t -> snapshot

val empty : snapshot

val merge : snapshot -> snapshot -> snapshot
(** Pointwise sum; associative and commutative, with {!empty} as the
    identity. *)

val quantile : snapshot -> float -> float
(** [quantile s q] for [q] in (0, 1]: the representative value of the
    bucket holding the [ceil (q * total)]-th smallest observation
    (the same rank convention as an exact sorted sample). [nan] when the
    snapshot is empty; raises [Invalid_argument] for [q] outside (0, 1].
    Within {!max_relative_error} of the exact sample quantile for values
    >= {!sub_buckets}; exact below. *)

val mean : snapshot -> float
(** [sum / total]; [nan] when empty. *)

(** {1 Bucket geometry} *)

val sub_buckets : int
(** Linear sub-buckets per power-of-two octave (32). *)

val max_relative_error : float
(** [1 / (2 * sub_buckets)] — the documented quantile error bound. *)

val bucket_bounds : int -> float * float
(** [(low, high)] of bucket [i]: the bucket counts values in
    [\[low, high)]. *)

val nonzero_buckets : snapshot -> (float * int) list
(** [(upper_bound, count)] for every non-empty bucket, ascending — the
    compact wire form the [metrics] op and Prometheus exposition use. *)

val json_of_snapshot : snapshot -> Json.t
(** [{"count", "sum", "min", "max", "mean", "p50", "p90", "p99", "p999",
     "max_relative_error", "buckets": [[upper, count], ...]}] with
    non-finite floats emitted as [null] (empty histograms). *)
