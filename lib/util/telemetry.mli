(** Process-wide telemetry: counters, timers, and observation series for
    the simulation engines and estimators.

    The registry is global and the switch is off by default, so
    instrumented hot paths cost one predictable branch when disabled (the
    simulators keep their own plain per-instance counters regardless; the
    telemetry layer only {e aggregates} them, at step or replay
    granularity, when enabled). Counters and timers are atomic and series
    appends are mutex-protected, so {!Hlp_sim.Parsim} worker domains can
    report concurrently.

    Typical use:
    {[
      Telemetry.enable ();
      ... run a workload ...
      Telemetry.print_report ();            (* human-readable table *)
      print_string (Telemetry.to_json ());  (* machine-readable *)
    ]} *)

type counter
(** A named monotonic integer, atomic across domains. *)

type timer
(** A named accumulator of wall-clock spans (call count + total seconds). *)

type series
(** A named append-only sequence of float observations, in append order —
    used for convergence diagnostics (e.g. confidence half-width after
    each Monte Carlo batch). *)

type histogram
(** A named {!Hdr} histogram (log-bucketed, lock-free, bounded-relative-
    error quantiles) — used by the serve flight recorder for per-op
    latency and frame-size distributions. *)

val enabled : unit -> bool
(** Current state of the global switch (off at program start). *)

val enable : unit -> unit

val disable : unit -> unit

val reset : unit -> unit
(** Zero every counter, timer, and histogram and clear every series.
    Registered names survive (instruments are created once, at module
    initialization). *)

(** {1 Instruments}

    Creation is idempotent by name: the same name returns the same
    underlying instrument, so modules can declare their instruments at
    top level without coordination. *)

val counter : string -> counter

val add : counter -> int -> unit
(** Atomic add; no-op while disabled. *)

val incr : counter -> unit

val count : counter -> int
(** Current value (reads regardless of the switch). *)

val timer : string -> timer

val time : timer -> (unit -> 'a) -> 'a
(** [time t f] runs [f] and, when enabled, charges its wall-clock duration
    to [t]. When disabled it is exactly [f ()]. *)

val timer_stats : timer -> int * float
(** (calls, total seconds). *)

val series : string -> series

val observe : series -> float -> unit
(** Append an observation; no-op while disabled. *)

val observations : series -> float array
(** Snapshot of the series in append order. *)

val histogram : string -> histogram

val record : histogram -> float -> unit
(** One atomic bucket increment; no-op while disabled. The unit is the
    caller's (the serve layer uses nanoseconds for durations — names end
    in [_ns] — and bytes for sizes). *)

val hist_snapshot : histogram -> Hdr.snapshot
(** Current contents as a mergeable {!Hdr.snapshot} (reads regardless of
    the switch). *)

val hist_count : histogram -> int

(** {1 Output} *)

val json_value : unit -> Json.t
(** The whole registry as a {!Json.t} value, for embedding into larger
    reports (e.g. the run-provenance record). *)

val to_json : unit -> string
(** The whole registry as a JSON object:
    [{"enabled": bool,
      "counters": {name: int, ...},
      "timers": {name: {"calls": int, "seconds": float}, ...},
      "series": {name: [float, ...], ...},
      "histograms": {name: {"count", ..., "p50", ..., "buckets"}, ...}}]
    (histogram objects per {!Hdr.json_of_snapshot}). Names are sorted;
    non-finite floats are emitted as [null]. *)

val print_report : ?oc:out_channel -> unit -> unit
(** Human-readable dump (counters, timers, series summaries), sorted by
    name. Instruments that never fired are omitted. *)
