let mean a =
  assert (Array.length a > 0);
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let mean_list l =
  assert (l <> []);
  List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let variance a =
  let n = Array.length a in
  if n <= 1 then 0.0
  else
    let m = mean a in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a in
    ss /. float_of_int (n - 1)

let stddev a = sqrt (variance a)

let minimum a = Array.fold_left min a.(0) a
let maximum a = Array.fold_left max a.(0) a

let sorted_copy a =
  let b = Array.copy a in
  Array.sort compare b;
  b

let median a =
  assert (Array.length a > 0);
  let b = sorted_copy a in
  let n = Array.length b in
  if n mod 2 = 1 then b.(n / 2) else (b.((n / 2) - 1) +. b.(n / 2)) /. 2.0

let percentile a p =
  assert (Array.length a > 0 && p >= 0.0 && p <= 100.0);
  let b = sorted_copy a in
  let n = Array.length b in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  b.(max 0 (min (n - 1) (rank - 1)))

let confidence_interval_95 a =
  let m = mean a in
  let half = 1.96 *. stddev a /. sqrt (float_of_int (Array.length a)) in
  (m -. half, m +. half)

(* Two-sided Student-t quantiles: [t] such that P(|T_df| <= t) = level.
   Tabulated per level for df = 1..30, then 40, 60, 120; between table rows
   and beyond 120 the quantile is interpolated linearly in 1/df against the
   normal limit, the standard textbook scheme (error < 1e-3 everywhere). *)
let t_table =
  [
    ( 0.90,
      1.645,
      [| 6.314; 2.920; 2.353; 2.132; 2.015; 1.943; 1.895; 1.860; 1.833; 1.812;
         1.796; 1.782; 1.771; 1.761; 1.753; 1.746; 1.740; 1.734; 1.729; 1.725;
         1.721; 1.717; 1.714; 1.711; 1.708; 1.706; 1.703; 1.701; 1.699; 1.697 |],
      [| (40, 1.684); (60, 1.671); (120, 1.658) |] );
    ( 0.95,
      1.960,
      [| 12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
         2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
         2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042 |],
      [| (40, 2.021); (60, 2.000); (120, 1.980) |] );
    ( 0.99,
      2.576,
      [| 63.657; 9.925; 5.841; 4.604; 4.032; 3.707; 3.499; 3.355; 3.250; 3.169;
         3.106; 3.055; 3.012; 2.977; 2.947; 2.921; 2.898; 2.878; 2.861; 2.845;
         2.831; 2.819; 2.807; 2.797; 2.787; 2.779; 2.771; 2.763; 2.756; 2.750 |],
      [| (40, 2.704); (60, 2.660); (120, 2.617) |] );
  ]

let t_quantile ~level ~df =
  if df < 1 then invalid_arg "Stats.t_quantile: df must be >= 1";
  let _, z, dense, tail =
    match List.find_opt (fun (l, _, _, _) -> abs_float (l -. level) < 1e-9) t_table with
    | Some row -> row
    | None ->
        invalid_arg
          (Printf.sprintf "Stats.t_quantile: unsupported level %g (use 0.90, 0.95, 0.99)"
             level)
  in
  if df <= Array.length dense then dense.(df - 1)
  else
    (* interpolate in 1/df between bracketing anchors; beyond the last
       anchor the normal quantile z is the 1/df -> 0 limit *)
    let interp (dfl, tl) (dfh, th) =
      let x = 1.0 /. float_of_int df in
      let xl = 1.0 /. float_of_int dfl
      and xh = match dfh with Some d -> 1.0 /. float_of_int d | None -> 0.0 in
      th +. ((tl -. th) *. (x -. xh) /. (xl -. xh))
    in
    let anchors =
      Array.append
        [| (Array.length dense, dense.(Array.length dense - 1)) |]
        tail
    in
    let rec go i =
      if i + 1 >= Array.length anchors then interp anchors.(i) (None, z)
      else
        let dfh, th = anchors.(i + 1) in
        if df <= dfh then interp anchors.(i) (Some dfh, th) else go (i + 1)
    in
    go 0

let confidence_interval ~level ~df a =
  if df < 1 then invalid_arg "Stats.confidence_interval: df must be >= 1";
  let m = mean a in
  let t = t_quantile ~level ~df in
  let half = t *. stddev a /. sqrt (float_of_int (Array.length a)) in
  (m -. half, m +. half)

let relative_error ~actual ~estimate =
  if actual = 0.0 then if estimate = 0.0 then 0.0 else infinity
  else abs_float (estimate -. actual) /. abs_float actual

let mean_relative_error ~actual ~estimate =
  assert (Array.length actual = Array.length estimate && Array.length actual > 0);
  let errs = Array.mapi (fun i a -> relative_error ~actual:a ~estimate:estimate.(i)) actual in
  mean errs

let rms_error ~actual ~estimate =
  assert (Array.length actual = Array.length estimate && Array.length actual > 0);
  let ss = ref 0.0 in
  Array.iteri (fun i a -> let d = estimate.(i) -. a in ss := !ss +. (d *. d)) actual;
  sqrt (!ss /. float_of_int (Array.length actual))

let correlation x y =
  assert (Array.length x = Array.length y && Array.length x > 0);
  let mx = mean x and my = mean y in
  let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
  Array.iteri
    (fun i xi ->
      let dx = xi -. mx and dy = y.(i) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy))
    x;
  if !sxx = 0.0 || !syy = 0.0 then 0.0 else !sxy /. sqrt (!sxx *. !syy)

type linreg = { slope : float; intercept : float; r2 : float }

let linear_regression ~x ~y =
  assert (Array.length x = Array.length y && Array.length x > 0);
  let mx = mean x and my = mean y in
  let sxy = ref 0.0 and sxx = ref 0.0 in
  Array.iteri
    (fun i xi ->
      let dx = xi -. mx in
      sxy := !sxy +. (dx *. (y.(i) -. my));
      sxx := !sxx +. (dx *. dx))
    x;
  let slope = if !sxx = 0.0 then 0.0 else !sxy /. !sxx in
  let intercept = my -. (slope *. mx) in
  let r = correlation x y in
  { slope; intercept; r2 = r *. r }

let ratio_estimator ~y ~x ~population_x =
  assert (Array.length x = Array.length y && Array.length x > 0);
  let sy = Array.fold_left ( +. ) 0.0 y and sx = Array.fold_left ( +. ) 0.0 x in
  if sx = 0.0 then
    (* the sample carries no auxiliary signal, so the ratio is undefined;
       fall back to the uncorrected auxiliary total (ratio 1) instead of
       reporting a spurious zero *)
    population_x
  else sy /. sx *. population_x

let histogram ~bins a =
  assert (bins > 0 && Array.length a > 0);
  let lo = minimum a and hi = maximum a in
  let width = if hi = lo then 1.0 else (hi -. lo) /. float_of_int bins in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let i = int_of_float ((x -. lo) /. width) in
      let i = max 0 (min (bins - 1) i) in
      counts.(i) <- counts.(i) + 1)
    a;
  Array.mapi (fun i c -> (lo +. (float_of_int i *. width), c)) counts
