external monotonic_ns : unit -> (int64[@unboxed])
  = "hlp_clock_monotonic_ns_byte" "hlp_clock_monotonic_ns"
[@@noalloc]

let monotonic_s () = Int64.to_float (monotonic_ns ()) *. 1e-9

(* The source indirection exists solely so tests can inject a
   deterministic (or deliberately misbehaving) clock; production code
   always reads the monotonic stub through it. *)
let source = Atomic.make monotonic_s

let now_s () = (Atomic.get source) ()

let with_source fake f =
  let prev = Atomic.get source in
  Atomic.set source fake;
  Fun.protect ~finally:(fun () -> Atomic.set source prev) f
