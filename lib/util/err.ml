type t =
  | Invalid_input of { what : string; why : string }
  | Budget_exceeded of { budget : string; limit : int; used : int }
  | Deadline_exceeded of { limit_s : float; elapsed_s : float }
  | Cancelled of { where : string }
  | Worker_failure of { shard : int; attempts : int; why : string }
  | Overloaded of { queue : string; budget : int; pending : int }

exception Error of t

let invalid_input ~what why = Error (Invalid_input { what; why })
let budget_exceeded ~budget ~limit ~used = Error (Budget_exceeded { budget; limit; used })

let to_string = function
  | Invalid_input { what; why } -> Printf.sprintf "invalid input: %s: %s" what why
  | Budget_exceeded { budget; limit; used } ->
      Printf.sprintf "budget exceeded: %s: used %d of limit %d" budget used limit
  | Deadline_exceeded { limit_s; elapsed_s } ->
      Printf.sprintf "deadline exceeded: %.3fs elapsed of %.3fs allowed" elapsed_s limit_s
  | Cancelled { where } -> Printf.sprintf "cancelled: %s" where
  | Worker_failure { shard; attempts; why } ->
      Printf.sprintf "worker failure: shard %d failed after %d attempt%s: %s" shard
        attempts (if attempts = 1 then "" else "s") why
  | Overloaded { queue; budget; pending } ->
      Printf.sprintf "overloaded: %s: %d pending exceeds budget %d" queue pending
        budget

let class_name = function
  | Invalid_input _ -> "invalid-input"
  | Budget_exceeded _ -> "budget-exceeded"
  | Deadline_exceeded _ -> "deadline-exceeded"
  | Cancelled _ -> "cancelled"
  | Worker_failure _ -> "worker-failure"
  | Overloaded _ -> "overloaded"

(* Exit codes start at 65 (sysexits EX_DATAERR) to stay clear of shell
   conventions (0/1/2), signal codes (128+), and Cmdliner's own 123-125.
   The table is append-only: codes are part of the scripted-caller
   contract and pinned by the exit-code stability test. *)
let exit_code = function
  | Invalid_input _ -> 65
  | Budget_exceeded _ -> 66
  | Deadline_exceeded _ -> 67
  | Cancelled _ -> 68
  | Worker_failure _ -> 69
  | Overloaded _ -> 70

let protect f = match f () with v -> Ok v | exception Error e -> Result.Error e

let () =
  Printexc.register_printer (function
    | Error e -> Some (Printf.sprintf "Hlp_util.Err.Error(%s)" (to_string e))
    | _ -> None)
