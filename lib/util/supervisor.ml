(* Supervised batch execution: breaker + bounded pool + signal plumbing.
   Generic over the job payload — the power-estimation wiring lives in the
   batch CLI, not here. *)

let tel_jobs_run = Telemetry.counter "supervisor.jobs_run"
let tel_jobs_ok = Telemetry.counter "supervisor.jobs_ok"
let tel_jobs_failed = Telemetry.counter "supervisor.jobs_failed"
let tel_sheds = Telemetry.counter "supervisor.sheds"
let tel_deadline_sheds = Telemetry.counter "supervisor.deadline_sheds"
let tel_breaker_opens = Telemetry.counter "supervisor.breaker_opens"
let tel_breaker_half_opens = Telemetry.counter "supervisor.breaker_half_opens"
let tel_breaker_closes = Telemetry.counter "supervisor.breaker_closes"

(* --- circuit breaker --- *)

type breaker_state = Closed | Open | Half_open

type breaker = {
  b_name : string;
  threshold : int;
  cooldown_s : float;
  mu : Mutex.t;
  mutable st : breaker_state;
  mutable failures : int;  (* consecutive failures while closed *)
  mutable opened_at : float;  (* monotonic, meaningful while open *)
  mutable probing : bool;  (* half-open: the single probe is out *)
}

let breaker ?(failure_threshold = 3) ?(cooldown_s = 30.0) name =
  if failure_threshold < 1 then
    raise
      (Err.invalid_input ~what:"Supervisor.breaker: failure_threshold"
         "must be >= 1");
  if (not (Float.is_finite cooldown_s)) || cooldown_s < 0.0 then
    raise
      (Err.invalid_input ~what:"Supervisor.breaker: cooldown_s"
         "must be finite and non-negative");
  { b_name = name;
    threshold = failure_threshold;
    cooldown_s;
    mu = Mutex.create ();
    st = Closed;
    failures = 0;
    opened_at = 0.0;
    probing = false }

let locked b f =
  Mutex.lock b.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock b.mu) f

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

let transition b st' =
  b.st <- st';
  Trace.instant
    ~args:(fun () ->
      [ ("breaker", Json.Str b.b_name); ("state", Json.Str (state_name st')) ])
    "supervisor.breaker"

let breaker_state b = locked b (fun () -> b.st)

let breaker_allows b =
  locked b @@ fun () ->
  match b.st with
  | Closed -> true
  | Half_open ->
      if b.probing then false
      else begin
        b.probing <- true;
        true
      end
  | Open ->
      if Clock.now_s () -. b.opened_at >= b.cooldown_s then begin
        Telemetry.incr tel_breaker_half_opens;
        transition b Half_open;
        b.probing <- true;
        true
      end
      else false

let breaker_success b =
  locked b @@ fun () ->
  b.failures <- 0;
  match b.st with
  | Half_open ->
      b.probing <- false;
      Telemetry.incr tel_breaker_closes;
      transition b Closed
  | Closed | Open -> ()

let open_locked b =
  b.failures <- 0;
  b.probing <- false;
  b.opened_at <- Clock.now_s ();
  Telemetry.incr tel_breaker_opens;
  transition b Open

let breaker_failure b =
  locked b @@ fun () ->
  match b.st with
  | Half_open -> open_locked b (* the probe failed: full cooldown again *)
  | Open -> ()
  | Closed ->
      b.failures <- b.failures + 1;
      if b.failures >= b.threshold then open_locked b

(* --- batch job runner --- *)

type stats = {
  ran : int;
  ok : int;
  failed : int;
  shed_queue : int;
  shed_deadline : int;
}

let run_jobs ?max_inflight ?queue_budget ?deadline_s ?token f jobs =
  let max_inflight =
    match max_inflight with
    | None -> max 1 (Domain.recommended_domain_count () / 2)
    | Some w when w >= 1 -> w
    | Some _ ->
        raise (Err.invalid_input ~what:"Supervisor.run_jobs: max_inflight" "must be >= 1")
  in
  (match queue_budget with
  | Some b when b < 1 ->
      raise (Err.invalid_input ~what:"Supervisor.run_jobs: queue_budget" "must be >= 1")
  | _ -> ());
  (match deadline_s with
  | Some d when (not (Float.is_finite d)) || d < 0.0 ->
      raise
        (Err.invalid_input ~what:"Supervisor.run_jobs: deadline_s"
           "must be finite and non-negative")
  | _ -> ());
  let n = Array.length jobs in
  let admitted = match queue_budget with Some b -> min n b | None -> n in
  let guard = Guard.create ?deadline_s ?token () in
  let results =
    Array.init n (fun i ->
        if i < admitted then Error (Err.Cancelled { where = "supervisor: not reached" })
        else
          (* load shedding at admission: the queue budget is a latency
             bound, so the excess gets a typed answer now, not a slot *)
          Error
            (Err.Overloaded
               { queue = "supervisor.queue"; budget = admitted; pending = n }))
  in
  Telemetry.add tel_sheds (n - admitted);
  if n - admitted > 0 then
    Trace.instant
      ~args:(fun () ->
        [ ("admitted", Json.Int admitted); ("shed", Json.Int (n - admitted)) ])
      "supervisor.load_shed";
  let ran = Atomic.make 0
  and ok = Atomic.make 0
  and failed = Atomic.make 0
  and shed_deadline = Atomic.make 0 in
  let completed = Atomic.make 0 in
  let next = Atomic.make 0 in
  let shed_reason () =
    match token with
    | Some tk when Guard.is_cancelled tk ->
        Err.Cancelled { where = "supervisor.admission" }
    | _ ->
        Err.Deadline_exceeded
          { limit_s = Option.value deadline_s ~default:0.0;
            elapsed_s = Guard.elapsed_s guard }
  in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < admitted then begin
        (* the whole per-index body is containment scope, not just the job
           thunk: an exception from anywhere else — a [Trace.span] args
           thunk, the guard check, the stats bookkeeping — used to skip
           [Atomic.incr completed] and kill the domain silently, leaving
           the main poll loop below spinning on [completed < admitted]
           forever. Every claimed index must advance [completed]. *)
        (try
           if Guard.expired guard then begin
             results.(i) <- Error (shed_reason ());
             Atomic.incr shed_deadline;
             Telemetry.incr tel_deadline_sheds
           end
           else begin
             Atomic.incr ran;
             Telemetry.incr tel_jobs_run;
             let r =
               Trace.span
                 ~args:(fun () -> [ ("job", Json.Int i) ])
                 "supervisor.job"
                 (fun () -> Err.protect (fun () -> f i guard jobs.(i)))
             in
             (match r with
             | Ok _ ->
                 Atomic.incr ok;
                 Telemetry.incr tel_jobs_ok
             | Error _ ->
                 Atomic.incr failed;
                 Telemetry.incr tel_jobs_failed);
             results.(i) <- r
           end
         with exn ->
           results.(i) <-
             Error
               (Err.Worker_failure
                  { shard = i; attempts = 1; why = Printexc.to_string exn });
           Atomic.incr failed;
           Telemetry.incr tel_jobs_failed);
        Atomic.incr completed;
        loop ()
      end
    in
    loop ()
  in
  if admitted > 0 then begin
    let w = min max_inflight admitted in
    let domains = List.init w (fun _ -> Domain.spawn worker) in
    (* poll instead of blocking straight into join: the main domain stays
       at safe points, so a SIGINT/SIGTERM handler runs promptly, cancels
       the token, and the workers drain within one job boundary *)
    while Atomic.get completed < admitted do
      Unix.sleepf 0.02
    done;
    List.iter Domain.join domains
  end;
  ( results,
    { ran = Atomic.get ran;
      ok = Atomic.get ok;
      failed = Atomic.get failed;
      shed_queue = n - admitted;
      shed_deadline = Atomic.get shed_deadline } )

(* --- watchdog ---

   Process supervision for the crash-only daemon: spawn the child
   through a caller-supplied [start] (re-exec, never bare fork — OCaml 5
   domains and fork don't mix), watch it with waitpid polls and an
   optional liveness probe, restart on crash or wedge with decorrelated
   jitter, and give up via a flap breaker when restarts cluster. The
   module stays power-agnostic: what the child is, how to probe it, and
   where lifecycle events go are all callbacks. *)

let tel_wd_starts = Telemetry.counter "watchdog.starts"
let tel_wd_restarts = Telemetry.counter "watchdog.restarts"
let tel_wd_probe_misses = Telemetry.counter "watchdog.probe_misses"
let tel_wd_gave_up = Telemetry.counter "watchdog.gave_up"

type watchdog_event =
  | Wd_started of int  (* child pid *)
  | Wd_healthy of int  (* first successful probe after a start *)
  | Wd_probe_timeout of int * int  (* pid, consecutive misses *)
  | Wd_exited of int * string  (* pid, "exit N" / "signal NAME" *)
  | Wd_restarting of float  (* backoff sleep before next start *)
  | Wd_gave_up of int  (* restarts inside the flap window *)
  | Wd_draining of int  (* pid being sent the propagated SIGTERM *)
  | Wd_drained of int * string  (* pid, final status *)

let signal_name s =
  if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigint then "SIGINT"
  else if s = Sys.sighup then "SIGHUP"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigquit then "SIGQUIT"
  else Printf.sprintf "signal#%d" s

let status_string = function
  | Unix.WEXITED n -> Printf.sprintf "exit %d" n
  | Unix.WSIGNALED s -> "signal " ^ signal_name s
  | Unix.WSTOPPED s -> "stopped " ^ signal_name s

let watchdog_event_json ev =
  let obj kind fields =
    Json.Obj
      (("ts", Json.Float (Unix.gettimeofday ()))
      :: ("event", Json.Str kind)
      :: fields)
  in
  match ev with
  | Wd_started pid -> obj "started" [ ("pid", Json.Int pid) ]
  | Wd_healthy pid -> obj "healthy" [ ("pid", Json.Int pid) ]
  | Wd_probe_timeout (pid, misses) ->
      obj "probe-timeout" [ ("pid", Json.Int pid); ("misses", Json.Int misses) ]
  | Wd_exited (pid, st) ->
      obj "exited" [ ("pid", Json.Int pid); ("status", Json.Str st) ]
  | Wd_restarting sleep_s ->
      obj "restarting" [ ("backoff_s", Json.Float sleep_s) ]
  | Wd_gave_up n -> obj "gave-up" [ ("restarts_in_window", Json.Int n) ]
  | Wd_draining pid -> obj "draining" [ ("pid", Json.Int pid) ]
  | Wd_drained (pid, st) ->
      obj "drained" [ ("pid", Json.Int pid); ("status", Json.Str st) ]

(* decorrelated jitter, same discipline as the client reconnect path *)
let wd_backoff rng ~base_s ~cap_s prev_s =
  Float.min cap_s (base_s +. Prng.float rng (Float.max base_s (prev_s *. 3.0)))

let watch ?probe ?(probe_every_s = 0.5) ?(probe_misses = 4)
    ?(backoff_base_s = 0.1) ?(backoff_cap_s = 5.0) ?(flap_window_s = 30.0)
    ?(flap_max = 5) ?(grace_s = 5.0) ?seed ?(on_event = fun _ -> ()) ?token
    ~start () =
  let positive what v =
    if (not (Float.is_finite v)) || v <= 0.0 then
      raise
        (Err.invalid_input ~what:("Supervisor.watch: " ^ what)
           "must be finite and positive")
  in
  positive "probe_every_s" probe_every_s;
  positive "backoff_base_s" backoff_base_s;
  positive "backoff_cap_s" backoff_cap_s;
  positive "flap_window_s" flap_window_s;
  positive "grace_s" grace_s;
  if probe_misses < 1 then
    raise
      (Err.invalid_input ~what:"Supervisor.watch: probe_misses" "must be >= 1");
  if flap_max < 1 then
    raise (Err.invalid_input ~what:"Supervisor.watch: flap_max" "must be >= 1");
  let rng =
    Prng.create
      (match seed with
      | Some s -> s
      | None ->
          (Unix.getpid () * 0x9E3779B9)
          lxor Int64.to_int (Int64.bits_of_float (Clock.now_s ())))
  in
  let emit ev = try on_event ev with _ -> () in
  let stop_requested () =
    match token with Some tk -> Guard.is_cancelled tk | None -> false
  in
  let kill_quiet pid s = try Unix.kill pid s with Unix.Unix_error _ -> () in
  (* SIGTERM, then SIGKILL after the grace period; reaps and returns the
     final status either way *)
  let terminate pid =
    kill_quiet pid Sys.sigterm;
    let deadline = Clock.now_s () +. grace_s in
    let rec wait () =
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ ->
          if Clock.now_s () >= deadline then begin
            kill_quiet pid Sys.sigkill;
            let _, st = Unix.waitpid [] pid in
            status_string st
          end
          else begin
            Unix.sleepf 0.02;
            wait ()
          end
      | _, st -> status_string st
      | exception Unix.Unix_error (Unix.ECHILD, _, _) -> "already reaped"
    in
    wait ()
  in
  (* restart timestamps inside the sliding flap window *)
  let restarts = ref [] in
  let flap_trips now =
    restarts := now :: List.filter (fun t -> now -. t < flap_window_s) !restarts;
    List.length !restarts > flap_max
  in
  let rec supervise sleep_s =
    if stop_requested () then `Drained
    else begin
      let pid = start () in
      Telemetry.incr tel_wd_starts;
      emit (Wd_started pid);
      let last_probe = ref (Clock.now_s ()) in
      let misses = ref 0 in
      let healthy = ref false in
      (* watch one incarnation until it exits, wedges, or drain begins *)
      let rec tick () =
        if stop_requested () then begin
          emit (Wd_draining pid);
          let st = terminate pid in
          emit (Wd_drained (pid, st));
          `Drained
        end
        else
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ -> (
              match probe with
              | Some p when Clock.now_s () -. !last_probe >= probe_every_s -> (
                  last_probe := Clock.now_s ();
                  match (try p () with _ -> false) with
                  | true ->
                      if not !healthy then begin
                        healthy := true;
                        emit (Wd_healthy pid)
                      end;
                      misses := 0;
                      pause ()
                  | false ->
                      incr misses;
                      Telemetry.incr tel_wd_probe_misses;
                      if !misses >= probe_misses then begin
                        emit (Wd_probe_timeout (pid, !misses));
                        (* a wedged child is a crash we must induce *)
                        let st = terminate pid in
                        crash ("wedged, " ^ st)
                      end
                      else pause ())
              | _ -> pause ())
          | _, st -> crash (status_string st)
          | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
              crash "already reaped"
      and pause () =
        Unix.sleepf 0.05;
        tick ()
      and crash status =
        emit (Wd_exited (pid, status));
        let now = Clock.now_s () in
        if flap_trips now then begin
          Telemetry.incr tel_wd_gave_up;
          emit (Wd_gave_up (List.length !restarts));
          `Gave_up (List.length !restarts)
        end
        else begin
          let sleep_s = wd_backoff rng ~base_s:backoff_base_s ~cap_s:backoff_cap_s sleep_s in
          Telemetry.incr tel_wd_restarts;
          emit (Wd_restarting sleep_s);
          (* the backoff sleep still honours drain *)
          let deadline = now +. sleep_s in
          let rec nap () =
            if stop_requested () then ()
            else if Clock.now_s () < deadline then begin
              Unix.sleepf 0.02;
              nap ()
            end
          in
          nap ();
          `Restart sleep_s
        end
      in
      match tick () with
      | `Drained -> `Drained
      | `Gave_up n -> `Gave_up n
      | `Restart sleep_s -> supervise sleep_s
    end
  in
  supervise backoff_base_s

(* --- signals --- *)

let with_graceful_stop ?signals f =
  let signals = match signals with Some s -> s | None -> [ Sys.sigint; Sys.sigterm ] in
  let token = Guard.token ~name:"supervisor.signal" () in
  let fired = Atomic.make 0 in
  (* the handler only flips the token: journal flushing and report writing
     happen on the normal exit path, after the pool drains, so nothing is
     ever written from inside a handler *)
  let handle s =
    Atomic.set fired s;
    Guard.cancel token
  in
  let previous =
    List.map (fun s -> (s, Sys.signal s (Sys.Signal_handle handle))) signals
  in
  Fun.protect
    ~finally:(fun () -> List.iter (fun (s, h) -> Sys.set_signal s h) previous)
    (fun () ->
      let r = f token in
      (r, match Atomic.get fired with 0 -> None | s -> Some s))

let signal_exit_code s =
  if s = Sys.sigint then 130
  else if s = Sys.sigterm then 143
  else if s = Sys.sighup then 129
  else if s = Sys.sigquit then 131
  else if s > 0 then 128 + s (* a raw OS signal number *)
  else 128
