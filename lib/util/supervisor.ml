(* Supervised batch execution: breaker + bounded pool + signal plumbing.
   Generic over the job payload — the power-estimation wiring lives in the
   batch CLI, not here. *)

let tel_jobs_run = Telemetry.counter "supervisor.jobs_run"
let tel_jobs_ok = Telemetry.counter "supervisor.jobs_ok"
let tel_jobs_failed = Telemetry.counter "supervisor.jobs_failed"
let tel_sheds = Telemetry.counter "supervisor.sheds"
let tel_deadline_sheds = Telemetry.counter "supervisor.deadline_sheds"
let tel_breaker_opens = Telemetry.counter "supervisor.breaker_opens"
let tel_breaker_half_opens = Telemetry.counter "supervisor.breaker_half_opens"
let tel_breaker_closes = Telemetry.counter "supervisor.breaker_closes"

(* --- circuit breaker --- *)

type breaker_state = Closed | Open | Half_open

type breaker = {
  b_name : string;
  threshold : int;
  cooldown_s : float;
  mu : Mutex.t;
  mutable st : breaker_state;
  mutable failures : int;  (* consecutive failures while closed *)
  mutable opened_at : float;  (* monotonic, meaningful while open *)
  mutable probing : bool;  (* half-open: the single probe is out *)
}

let breaker ?(failure_threshold = 3) ?(cooldown_s = 30.0) name =
  if failure_threshold < 1 then
    raise
      (Err.invalid_input ~what:"Supervisor.breaker: failure_threshold"
         "must be >= 1");
  if (not (Float.is_finite cooldown_s)) || cooldown_s < 0.0 then
    raise
      (Err.invalid_input ~what:"Supervisor.breaker: cooldown_s"
         "must be finite and non-negative");
  { b_name = name;
    threshold = failure_threshold;
    cooldown_s;
    mu = Mutex.create ();
    st = Closed;
    failures = 0;
    opened_at = 0.0;
    probing = false }

let locked b f =
  Mutex.lock b.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock b.mu) f

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

let transition b st' =
  b.st <- st';
  Trace.instant
    ~args:(fun () ->
      [ ("breaker", Json.Str b.b_name); ("state", Json.Str (state_name st')) ])
    "supervisor.breaker"

let breaker_state b = locked b (fun () -> b.st)

let breaker_allows b =
  locked b @@ fun () ->
  match b.st with
  | Closed -> true
  | Half_open ->
      if b.probing then false
      else begin
        b.probing <- true;
        true
      end
  | Open ->
      if Clock.now_s () -. b.opened_at >= b.cooldown_s then begin
        Telemetry.incr tel_breaker_half_opens;
        transition b Half_open;
        b.probing <- true;
        true
      end
      else false

let breaker_success b =
  locked b @@ fun () ->
  b.failures <- 0;
  match b.st with
  | Half_open ->
      b.probing <- false;
      Telemetry.incr tel_breaker_closes;
      transition b Closed
  | Closed | Open -> ()

let open_locked b =
  b.failures <- 0;
  b.probing <- false;
  b.opened_at <- Clock.now_s ();
  Telemetry.incr tel_breaker_opens;
  transition b Open

let breaker_failure b =
  locked b @@ fun () ->
  match b.st with
  | Half_open -> open_locked b (* the probe failed: full cooldown again *)
  | Open -> ()
  | Closed ->
      b.failures <- b.failures + 1;
      if b.failures >= b.threshold then open_locked b

(* --- batch job runner --- *)

type stats = {
  ran : int;
  ok : int;
  failed : int;
  shed_queue : int;
  shed_deadline : int;
}

let run_jobs ?max_inflight ?queue_budget ?deadline_s ?token f jobs =
  let max_inflight =
    match max_inflight with
    | None -> max 1 (Domain.recommended_domain_count () / 2)
    | Some w when w >= 1 -> w
    | Some _ ->
        raise (Err.invalid_input ~what:"Supervisor.run_jobs: max_inflight" "must be >= 1")
  in
  (match queue_budget with
  | Some b when b < 1 ->
      raise (Err.invalid_input ~what:"Supervisor.run_jobs: queue_budget" "must be >= 1")
  | _ -> ());
  (match deadline_s with
  | Some d when (not (Float.is_finite d)) || d < 0.0 ->
      raise
        (Err.invalid_input ~what:"Supervisor.run_jobs: deadline_s"
           "must be finite and non-negative")
  | _ -> ());
  let n = Array.length jobs in
  let admitted = match queue_budget with Some b -> min n b | None -> n in
  let guard = Guard.create ?deadline_s ?token () in
  let results =
    Array.init n (fun i ->
        if i < admitted then Error (Err.Cancelled { where = "supervisor: not reached" })
        else
          (* load shedding at admission: the queue budget is a latency
             bound, so the excess gets a typed answer now, not a slot *)
          Error
            (Err.Overloaded
               { queue = "supervisor.queue"; budget = admitted; pending = n }))
  in
  Telemetry.add tel_sheds (n - admitted);
  if n - admitted > 0 then
    Trace.instant
      ~args:(fun () ->
        [ ("admitted", Json.Int admitted); ("shed", Json.Int (n - admitted)) ])
      "supervisor.load_shed";
  let ran = Atomic.make 0
  and ok = Atomic.make 0
  and failed = Atomic.make 0
  and shed_deadline = Atomic.make 0 in
  let completed = Atomic.make 0 in
  let next = Atomic.make 0 in
  let shed_reason () =
    match token with
    | Some tk when Guard.is_cancelled tk ->
        Err.Cancelled { where = "supervisor.admission" }
    | _ ->
        Err.Deadline_exceeded
          { limit_s = Option.value deadline_s ~default:0.0;
            elapsed_s = Guard.elapsed_s guard }
  in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < admitted then begin
        (* the whole per-index body is containment scope, not just the job
           thunk: an exception from anywhere else — a [Trace.span] args
           thunk, the guard check, the stats bookkeeping — used to skip
           [Atomic.incr completed] and kill the domain silently, leaving
           the main poll loop below spinning on [completed < admitted]
           forever. Every claimed index must advance [completed]. *)
        (try
           if Guard.expired guard then begin
             results.(i) <- Error (shed_reason ());
             Atomic.incr shed_deadline;
             Telemetry.incr tel_deadline_sheds
           end
           else begin
             Atomic.incr ran;
             Telemetry.incr tel_jobs_run;
             let r =
               Trace.span
                 ~args:(fun () -> [ ("job", Json.Int i) ])
                 "supervisor.job"
                 (fun () -> Err.protect (fun () -> f i guard jobs.(i)))
             in
             (match r with
             | Ok _ ->
                 Atomic.incr ok;
                 Telemetry.incr tel_jobs_ok
             | Error _ ->
                 Atomic.incr failed;
                 Telemetry.incr tel_jobs_failed);
             results.(i) <- r
           end
         with exn ->
           results.(i) <-
             Error
               (Err.Worker_failure
                  { shard = i; attempts = 1; why = Printexc.to_string exn });
           Atomic.incr failed;
           Telemetry.incr tel_jobs_failed);
        Atomic.incr completed;
        loop ()
      end
    in
    loop ()
  in
  if admitted > 0 then begin
    let w = min max_inflight admitted in
    let domains = List.init w (fun _ -> Domain.spawn worker) in
    (* poll instead of blocking straight into join: the main domain stays
       at safe points, so a SIGINT/SIGTERM handler runs promptly, cancels
       the token, and the workers drain within one job boundary *)
    while Atomic.get completed < admitted do
      Unix.sleepf 0.02
    done;
    List.iter Domain.join domains
  end;
  ( results,
    { ran = Atomic.get ran;
      ok = Atomic.get ok;
      failed = Atomic.get failed;
      shed_queue = n - admitted;
      shed_deadline = Atomic.get shed_deadline } )

(* --- signals --- *)

let with_graceful_stop ?signals f =
  let signals = match signals with Some s -> s | None -> [ Sys.sigint; Sys.sigterm ] in
  let token = Guard.token ~name:"supervisor.signal" () in
  let fired = Atomic.make 0 in
  (* the handler only flips the token: journal flushing and report writing
     happen on the normal exit path, after the pool drains, so nothing is
     ever written from inside a handler *)
  let handle s =
    Atomic.set fired s;
    Guard.cancel token
  in
  let previous =
    List.map (fun s -> (s, Sys.signal s (Sys.Signal_handle handle))) signals
  in
  Fun.protect
    ~finally:(fun () -> List.iter (fun (s, h) -> Sys.set_signal s h) previous)
    (fun () ->
      let r = f token in
      (r, match Atomic.get fired with 0 -> None | s -> Some s))

let signal_exit_code s =
  if s = Sys.sigint then 130
  else if s = Sys.sigterm then 143
  else if s = Sys.sighup then 129
  else if s = Sys.sigquit then 131
  else if s > 0 then 128 + s (* a raw OS signal number *)
  else 128
