(** Framed request/response transport over a Unix-domain socket — the
    wire layer of the [hlpower serve] estimation daemon.

    The interactive design loop the paper targets asks the same netlist
    hundreds of times while a designer iterates; paying process startup,
    netlist construction, and sampler preparation per query swamps the
    estimator itself. This module is the generic long-lived front end:
    it knows nothing about power estimation, only about frames,
    connections, admission control, and graceful drain. The protocol
    schema and the hot caches live in [Hlp_power.Service]; the CLI wires
    both together.

    {b Framing.} Every message is one frame: a 4-byte little-endian
    payload length, a 4-byte little-endian CRC32 of the payload
    ({!Journal.crc32} — the same polynomial and discipline as the WAL),
    then the payload bytes. A length over {!max_frame_bytes} or a CRC
    mismatch is a typed [Invalid_input] error, never a silent
    truncation: the CRC turns a desynchronized or corrupted stream into
    a loud failure at the frame boundary.

    {b Scheduling.} Connections are accepted on the caller's domain and
    handed to a bounded pool of [max_inflight] worker domains through a
    queue with an admission budget: when [queue_budget] connections are
    already waiting for a worker, new connections get one typed
    overload frame — carrying a [retry_after_s] hint a well-behaved
    client sleeps on before reconnecting — and are closed, the same
    load-shedding shape as {!Supervisor.run_jobs}. Each request runs
    under a fresh {!Guard} carrying [deadline_s], so a handler can
    degrade or stop mid-estimate.

    {b Retry semantics.} The transport cannot tell "the server never saw
    the frame" from "the response was lost" — only the caller knows
    whether replaying a request is safe. {!Client.request} therefore
    splits failures: connect and write failures are always retried (a
    torn write is rejected by the server's CRC wall before any handler
    runs), while failures {e after} the frame was fully written are
    retried only for requests declared idempotent. Every operation of
    the estimation protocol ([estimate], [sampler], [ping], [stats]) is
    pure by construction — estimates are deterministic in (netlist,
    engine, seed, precision) and served from a shared cache — so the
    service client retries them freely; see [Hlp_power.Service].

    {b Drain.} Cancelling [token] (e.g. from a
    {!Supervisor.with_graceful_stop} signal handler) stops the accept
    loop; workers finish the request in flight, close their
    connections, and join before {!serve} returns — so journals and
    telemetry flushed after {!serve} see a quiet pool.

    Both {!serve} and {!connect} ignore [SIGPIPE] process-wide (writes
    to a vanished peer surface as [EPIPE] and are handled
    per-connection, instead of killing the process).

    Everything observable is counted in {!Telemetry}:
    ["server.connections"], ["server.requests"], ["server.sheds"],
    ["server.frame_errors"], ["server.slow_requests"], and on the client
    side ["client.retries"], ["client.reconnects"],
    ["client.overload_waits"], ["client.exhausted"].

    {b Flight recorder.} When {!Telemetry} is enabled, every served
    request additionally feeds histograms — ["server.queue_wait_ns"]
    (accept-to-worker wait, charged to a connection's first request) and
    per-op ["server.op.<op>.service_ns"] / [".bytes_in"] / [".bytes_out"]
    (frame sizes incl. the 8-byte header) — and, when [serve] was given
    [access_log], appends one JSON line per request: [ts] (epoch
    seconds), [rid], [op], [key], [cache], [queue_s], [service_s],
    [bytes_in], [bytes_out], [status]. Requests slower than [slow_s]
    bump ["server.slow_requests"] and emit a ["server.slow_request"]
    {!Trace} instant carrying the rid, so one id finds the request in
    the client report, the access log, and the trace. When Telemetry is
    disabled the whole recorder is one branch per request. *)

val max_frame_bytes : int
(** Hard cap on a single frame payload (64 MiB) — an admission bound on
    allocation, not a protocol limit anything legitimate approaches. *)

(** {1 Frame codec}

    Exposed for tests, the chaos proxy, and the client side; both ends
    of the socket speak exactly these functions. *)

val write_frame : Unix.file_descr -> string -> unit
(** Write one complete frame (handles short writes). Raises
    [Err.Error (Invalid_input _)] on an oversized payload and
    [Unix.Unix_error] if the peer vanished. *)

val read_frame : Unix.file_descr -> string option
(** Read one complete frame. [None] on a clean end-of-stream (the peer
    closed between frames); raises [Err.Error (Invalid_input _)] on a
    mid-frame end-of-stream, an oversized length, or a CRC mismatch.
    Retries transparently on [EINTR] and on receive timeouts
    ([EAGAIN]/[EWOULDBLOCK] from [SO_RCVTIMEO]), so a frame is never
    split by a poll tick — and never returns while the peer is merely
    slow. Unbounded: a stalled peer stalls the caller; use
    {!read_frame_within} to bound the wait. *)

val read_frame_within : timeout_s:float -> Unix.file_descr -> string option
(** Like {!read_frame}, but gives up after [timeout_s] seconds with a
    typed [Deadline_exceeded]. Once a frame has started, a deadline trip
    is instead a typed [Invalid_input] ("timeout mid-frame"): the frame
    boundary is lost, so the caller must drop the connection rather than
    resynchronize. Requires [SO_RCVTIMEO] on [fd] (the receive timeout
    is the poll tick that lets the deadline be observed while blocked);
    raises [Invalid_input] on a non-positive or non-finite timeout. *)

val prepare_path : string -> unit
(** Make [path] safe to bind: nothing exists — fine; a socket file
    nobody accepts on (probe connect refused) — unlink it; a socket with
    a {e live} server — typed [Invalid_input] refusal, never stealing
    the path from a running daemon; anything that is not a socket —
    typed [Invalid_input]. {!serve} calls this; exposed for other
    listeners (the chaos proxy) that bind their own sockets. *)

(** {1 Server} *)

type ctx = {
  guard : Guard.t;  (** fresh per request, carrying [deadline_s] *)
  mutable rid : string;
      (** request id. The transport stamps a {!fresh_rid} fallback; the
          protocol layer overwrites it with the caller-supplied id so
          client-side and server-side records correlate. *)
  mutable op : string;  (** protocol op; [""] records as ["unknown"] *)
  mutable key : string;  (** cache/fingerprint key, if the op has one *)
  mutable cache : string;  (** ["hit"], ["miss"], ["coalesced"], or [""] *)
  mutable status : string;
      (** ["ok"] (preset) or a typed error class. An exception escaping
          the handler records as its {!Err.class_name} (or
          ["exception"]) before the connection is dropped. *)
}
(** Per-request context the transport hands to the handler: the guard to
    run under, plus mutable attribution fields the protocol layer fills
    in for the access log and per-op histograms. *)

type handler = ctx -> string -> string
(** One request payload to one response payload, under the request's
    context. The handler must return its errors {e encoded in the
    response} (the service layer maps {!Err.t} to error frames); an
    exception escaping the handler closes that connection (after logging
    the request with its error class) but never the server. *)

val fresh_rid : ?prefix:string -> unit -> string
(** A process-unique request id: [<prefix><pid>-<seq>] from an atomic
    sequence. The server stamps [~prefix:"s"] (the default) on requests
    that carried no id; the service client builders stamp
    [~prefix:"c"]. *)

val retry_after_hint_s : float
(** The [retry_after_s] value the default overload frame carries. *)

(** {1 Hot-reloadable knobs}

    The daemon's mutable operating parameters — admission budget,
    request deadline, slow-request threshold, memory budgets — live in
    one immutable record behind an [Atomic] that every use site reads
    afresh. A SIGHUP reload is then a single {!set_knobs} of a fully
    validated record: no half-applied config, no dropped connections. *)

type knobs = {
  queue_budget : int;  (** accept-queue admission budget (default 64) *)
  deadline_s : float option;  (** per-request guard deadline *)
  slow_s : float option;  (** slow-request threshold *)
  mem_soft_bytes : int option;
      (** RSS at-or-above this triggers the [on_memory_soft] relief
          callback (proportional cache eviction) each sample *)
  mem_hard_bytes : int option;
      (** RSS at-or-above this sheds new requests with the typed
          [Overloaded] envelope until pressure recedes *)
}

val default_knobs : knobs
(** [queue_budget = 64], everything else off. *)

val validate_knobs : knobs -> unit
(** Raises the typed [Invalid_input] on a non-positive budget or
    threshold, a negative/non-finite deadline, or a soft budget above
    the hard one. *)

val set_knobs : knobs Atomic.t -> knobs -> unit
(** Validate and publish a new knob record (counted in
    ["server.knob_reloads"]). The SIGHUP path: in-flight requests keep
    the knobs they started with; every later read sees the new record. *)

val default_overload : Err.t -> string
(** Minimal JSON error envelope:
    [{"ok":false,"error":{"class":...,"message":...,"retry_after_s":...}}].
    The [retry_after_s] field is the backoff hint {!Client.request}
    honors before reconnecting. *)

val serve :
  ?max_inflight:int ->
  ?queue_budget:int ->
  ?deadline_s:float ->
  ?overload:(Err.t -> string) ->
  ?token:Guard.token ->
  ?on_ready:(unit -> unit) ->
  ?access_log:string ->
  ?access_log_max_bytes:int ->
  ?slow_s:float ->
  ?knobs:knobs Atomic.t ->
  ?on_tick:(unit -> unit) ->
  ?on_memory_soft:(unit -> unit) ->
  ?mem_sample_every_s:float ->
  path:string ->
  handler ->
  unit
(** [serve ~path handler] prepares [path] (see {!prepare_path} — stale
    socket files are unlinked, a live server is a typed refusal), binds
    it, spawns [max_inflight] worker domains (default half the
    recommended domain count, at least 1), and accepts until [token] is
    cancelled; the socket file is unlinked again on the way out.

    [queue_budget] (default 64) bounds connections waiting for a free
    worker; excess connections receive [overload
    (Overloaded {queue = "server.accept"; _})] as their only frame
    (default {!default_overload}) and are closed. [deadline_s] bounds
    each request's guard. [on_ready] runs once the socket is listening,
    before the first accept — tests use it to release a waiting client.

    [access_log] names a {!Journal.Lines} JSONL file recording one line
    per served request (see the module comment; rotation keeps it under
    ~2×[access_log_max_bytes], default 16 MiB); [slow_s] is the
    slow-request threshold. The recorder only fires while {!Telemetry}
    is enabled.

    [knobs], when given, is the shared hot-reload cell: the scalar
    [queue_budget]/[deadline_s]/[slow_s] arguments are ignored in its
    favour and every admission check, guard creation, and slow-threshold
    compare reads the cell afresh, so a concurrent {!set_knobs} (the
    SIGHUP handler) takes effect between requests without dropping
    connections. Without [knobs] the scalars seed a private cell and
    behave exactly as before.

    [on_tick] runs on the accept loop roughly every 50 ms (exceptions
    swallowed) — the hook for snapshot spills and reload-flag polls.

    {b Memory pressure.} When the active knobs carry memory budgets, the
    accept loop samples {!Memstat.rss_bytes} every [mem_sample_every_s]
    (default 0.25 s). At-or-above [mem_soft_bytes] each sample counts
    ["server.memory.soft_trims"] and invokes [on_memory_soft]
    (proportional cache eviction, wired by the service layer); crossing
    a level also emits a ["server.memory.soft"] / ["server.memory.hard"]
    {!Trace} instant. At-or-above [mem_hard_bytes] new requests are
    answered with the typed [Overloaded] envelope
    ([queue = "server.memory"], counted in ["server.memory.hard_sheds"]
    and ["server.sheds"]) without running the handler, until a later
    sample sees the resident set back under budget — shedding instead of
    dying to the OOM killer. An unreadable RSS (no procfs) reads as no
    pressure.

    Raises [Err.Error (Invalid_input _)] on a non-positive
    [max_inflight]/[access_log_max_bytes]/[mem_sample_every_s], invalid
    knob values (see {!validate_knobs}), an unbindable [path], or a
    [path] another live server owns. *)

(** {1 Client} *)

type conn

val connect : ?wait_s:float -> ?seed:int -> string -> conn
(** Connect to a serving socket, retrying [ENOENT]/[ECONNREFUSED] for up
    to [wait_s] seconds (default 5 — covers a daemon still starting)
    with exponential backoff and decorrelated jitter (5 ms base, 640 ms
    cap), so a fleet of clients waiting out a restart reconnects as a
    spread, not a lockstep herd. The jitter stream is seeded from the
    pid and clock by default; pass [seed] for a reproducible schedule in
    tests. Raises [Err.Error (Invalid_input _)] once the wait is
    exhausted. *)

val request : conn -> string -> string
(** One round trip: write a request frame, block for the response
    frame. Raises [Err.Error (Invalid_input _)] if the server closed
    without responding (e.g. after an overload frame already consumed).
    No retries — see {!Client} for the resilient wrapper. *)

val request_within : timeout_s:float -> conn -> string -> string
(** {!request} bounded by [timeout_s] via {!read_frame_within} (sets the
    socket's receive timeout as the poll tick) — the watchdog's health
    probe, where an unbounded read would let a wedged daemon wedge its
    supervisor too. Raises the typed [Deadline_exceeded] on timeout. *)

val close : conn -> unit

(** {1 Resilient client}

    A reconnecting wrapper around {!connect}/{!request} for callers that
    face an unreliable path to the daemon — restarts, shed load, a
    flaky network (or the chaos proxy). Not thread-safe: one [Client.t]
    per domain. *)

module Client : sig
  type t

  val create :
    ?seed:int ->
    ?max_retries:int ->
    ?backoff_base_s:float ->
    ?backoff_cap_s:float ->
    ?connect_wait_s:float ->
    ?request_timeout_s:float ->
    string ->
    t
  (** [create path] makes a client of the daemon at [path]; no
      connection is opened until the first {!request}. [max_retries]
      (default 5) bounds retries {e per request}; sleeps between
      attempts follow decorrelated jitter from [backoff_base_s]
      (default 5 ms) to [backoff_cap_s] (default 640 ms). [connect_wait_s]
      (default 5) is passed to each underlying {!connect}.
      [request_timeout_s], when given, bounds each round trip with
      {!read_frame_within} — without it a hung server hangs the caller.
      [seed] fixes the jitter stream for tests. Raises the typed
      [Invalid_input] on out-of-range parameters. *)

  val request : ?idempotent:bool -> t -> string -> string
  (** [request t payload] performs one logical round trip, transparently
      reconnecting and retrying up to [max_retries] times. Connect and
      write failures are always retried (the server's CRC wall rejects a
      torn request before any handler runs). Failures after the request
      frame was fully written — connection closed without a response, a
      torn or corrupt response frame, a response timeout — are retried
      only when [idempotent] (default [true], matching the estimation
      protocol; pass [false] for requests whose replay is unsafe).
      A typed overload response makes the client sleep the frame's
      [retry_after_s] hint, reconnect, and retry; when retries are
      exhausted on overload the shed frame itself is returned (it is a
      well-formed typed answer). On exhaustion of any other failure the
      last typed error is re-raised.

      {b Restart rides.} When [request_timeout_s] is set, a connect
      exhaustion (the daemon's socket gone or refusing — the signature
      of a supervised restart in progress) inside the request deadline
      re-enters the connect loop under the existing jittered backoff
      {e without} charging a retry (counted in ["client.restart_rides"]),
      so any restart shorter than the deadline is invisible to the
      caller. Past the deadline — or without one — connect exhaustion
      consumes retries as before. *)

  val counts : t -> int * int
  (** [(logical, wire)]: logical {!request} calls vs request frames
      actually written. [wire / logical] is the retry amplification a
      soak run pins. *)

  val close : t -> unit
  (** Drop the current connection, if any. The client remains usable:
      the next {!request} reconnects. *)
end
