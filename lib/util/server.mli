(** Framed request/response transport over a Unix-domain socket — the
    wire layer of the [hlpower serve] estimation daemon.

    The interactive design loop the paper targets asks the same netlist
    hundreds of times while a designer iterates; paying process startup,
    netlist construction, and sampler preparation per query swamps the
    estimator itself. This module is the generic long-lived front end:
    it knows nothing about power estimation, only about frames,
    connections, admission control, and graceful drain. The protocol
    schema and the hot caches live in [Hlp_power.Service]; the CLI wires
    both together.

    {b Framing.} Every message is one frame: a 4-byte little-endian
    payload length, a 4-byte little-endian CRC32 of the payload
    ({!Journal.crc32} — the same polynomial and discipline as the WAL),
    then the payload bytes. A length over {!max_frame_bytes} or a CRC
    mismatch is a typed [Invalid_input] error, never a silent
    truncation: the CRC turns a desynchronized or corrupted stream into
    a loud failure at the frame boundary.

    {b Scheduling.} Connections are accepted on the caller's domain and
    handed to a bounded pool of [max_inflight] worker domains through a
    queue with an admission budget: when [queue_budget] connections are
    already waiting for a worker, new connections get one typed
    overload frame and are closed — the same load-shedding shape as
    {!Supervisor.run_jobs}, a fast typed answer instead of unbounded
    queueing. Each request runs under a fresh {!Guard} carrying
    [deadline_s], so a handler can degrade or stop mid-estimate.

    {b Drain.} Cancelling [token] (e.g. from a
    {!Supervisor.with_graceful_stop} signal handler) stops the accept
    loop; workers finish the request in flight, close their
    connections, and join before {!serve} returns — so journals and
    telemetry flushed after {!serve} see a quiet pool.

    Everything observable is counted in {!Telemetry}:
    ["server.connections"], ["server.requests"], ["server.sheds"],
    ["server.frame_errors"]. *)

val max_frame_bytes : int
(** Hard cap on a single frame payload (64 MiB) — an admission bound on
    allocation, not a protocol limit anything legitimate approaches. *)

(** {1 Frame codec}

    Exposed for tests and for the client side; both ends of the socket
    speak exactly these two functions. *)

val write_frame : Unix.file_descr -> string -> unit
(** Write one complete frame (handles short writes). Raises
    [Err.Error (Invalid_input _)] on an oversized payload and
    [Unix.Unix_error] if the peer vanished. *)

val read_frame : Unix.file_descr -> string option
(** Read one complete frame. [None] on a clean end-of-stream (the peer
    closed between frames); raises [Err.Error (Invalid_input _)] on a
    mid-frame end-of-stream, an oversized length, or a CRC mismatch.
    Retries transparently on [EINTR] and on receive timeouts
    ([EAGAIN]/[EWOULDBLOCK] from [SO_RCVTIMEO]) once a frame has
    started, so a frame is never split by a poll tick. *)

(** {1 Server} *)

type handler = Guard.t -> string -> string
(** One request payload to one response payload, under the request's
    guard. The handler must return its errors {e encoded in the
    response} (the service layer maps {!Err.t} to error frames); an
    exception escaping the handler closes that connection but never the
    server. *)

val serve :
  ?max_inflight:int ->
  ?queue_budget:int ->
  ?deadline_s:float ->
  ?overload:(Err.t -> string) ->
  ?token:Guard.token ->
  ?on_ready:(unit -> unit) ->
  path:string ->
  handler ->
  unit
(** [serve ~path handler] binds [path] (unlinking any stale socket
    file), spawns [max_inflight] worker domains (default half the
    recommended domain count, at least 1), and accepts until [token] is
    cancelled; the socket file is unlinked again on the way out.

    [queue_budget] (default 64) bounds connections waiting for a free
    worker; excess connections receive [overload
    (Overloaded {queue = "server.accept"; _})] as their only frame
    (default: a minimal JSON error envelope) and are closed.
    [deadline_s] bounds each request's guard. [on_ready] runs once the
    socket is listening, before the first accept — tests use it to
    release a waiting client.

    Raises [Err.Error (Invalid_input _)] on a non-positive
    [max_inflight]/[queue_budget], a non-finite/negative [deadline_s],
    or an unbindable [path]. *)

(** {1 Client} *)

type conn

val connect : ?wait_s:float -> string -> conn
(** Connect to a serving socket, retrying [ENOENT]/[ECONNREFUSED] for up
    to [wait_s] seconds (default 5 — covers a daemon still starting).
    Raises [Err.Error (Invalid_input _)] once the wait is exhausted. *)

val request : conn -> string -> string
(** One round trip: write a request frame, block for the response
    frame. Raises [Err.Error (Invalid_input _)] if the server closed
    without responding (e.g. after an overload frame already consumed). *)

val close : conn -> unit
