type phase = B | E | I

type event = {
  ph : phase;
  name : string;  (* "" for E: ends match their begin by stack, not name *)
  ts_ns : int64;
  args : (string * Json.t) list;
}

let dummy = { ph = I; name = ""; ts_ns = 0L; args = [] }

(* One buffer per domain, appended to only by its owning domain — the hot
   begin/end path takes no lock. The registry collects every buffer ever
   created (worker domains die at join; their events must survive them)
   and is only locked at buffer creation and at flush. Flushing while
   worker domains are still appending is benign but may observe a partial
   tail; callers flush after joins, as documented. *)
type buf = {
  tid : int;
  events : event array;
  mutable len : int;
  mutable depth : int;  (* spans begun AND recorded, not yet ended *)
  mutable drop_depth : int;  (* open spans whose B was dropped *)
  mutable dropped : int;
}

let on = Atomic.make false
let enabled () = Atomic.get on

let default_capacity = 65536
let cap = Atomic.make default_capacity

(* exported timestamps are relative to the first enable, so they fit
   %.9g microseconds with sub-microsecond precision *)
let epoch_ns = Atomic.make 0L

let reg_lock = Mutex.create ()
let buffers : buf list ref = ref []

let key =
  Domain.DLS.new_key (fun () ->
      let b =
        { tid = (Domain.self () :> int);
          events = Array.make (Atomic.get cap) dummy;
          len = 0;
          depth = 0;
          drop_depth = 0;
          dropped = 0 }
      in
      Mutex.lock reg_lock;
      buffers := b :: !buffers;
      Mutex.unlock reg_lock;
      b)

let enable ?(capacity = default_capacity) () =
  if capacity < 16 then
    raise (Err.invalid_input ~what:"Trace.enable: capacity" "must be >= 16");
  Atomic.set cap capacity;
  if Atomic.get epoch_ns = 0L then Atomic.set epoch_ns (Clock.monotonic_ns ());
  Atomic.set on true

let disable () = Atomic.set on false

let reset () =
  Mutex.lock reg_lock;
  List.iter
    (fun b ->
      b.len <- 0;
      b.depth <- 0;
      b.drop_depth <- 0;
      b.dropped <- 0)
    !buffers;
  Mutex.unlock reg_lock;
  Atomic.set epoch_ns (if Atomic.get on then Clock.monotonic_ns () else 0L)

(* --- recording --- *)

(* When the buffer is full the *newest* events are dropped, preserving the
   recorded prefix: a dropped B raises [drop_depth] so its matching end is
   swallowed too, keeping the stream well-nested (no E without a B). *)
let push b ev =
  if b.len < Array.length b.events then begin
    b.events.(b.len) <- ev;
    b.len <- b.len + 1;
    true
  end
  else begin
    b.dropped <- b.dropped + 1;
    false
  end

let begin_span ?(args = []) name =
  if Atomic.get on then begin
    let b = Domain.DLS.get key in
    if push b { ph = B; name; ts_ns = Clock.monotonic_ns (); args } then
      b.depth <- b.depth + 1
    else b.drop_depth <- b.drop_depth + 1
  end

let end_span () =
  if Atomic.get on then begin
    let b = Domain.DLS.get key in
    if b.drop_depth > 0 then begin
      b.drop_depth <- b.drop_depth - 1;
      b.dropped <- b.dropped + 1
    end
    else if b.depth > 0 then begin
      (* depth falls even if the E itself is dropped: the span is closed
         either way, and an unmatched B is the tolerable direction *)
      b.depth <- b.depth - 1;
      ignore (push b { ph = E; name = ""; ts_ns = Clock.monotonic_ns (); args = [] })
    end
    (* depth = 0: tracing was enabled mid-span; recording the E would
       orphan it, so it is silently discarded *)
  end

let span ?args name f =
  if not (Atomic.get on) then f ()
  else begin
    begin_span ?args:(Option.map (fun g -> g ()) args) name;
    Fun.protect ~finally:end_span f
  end

let instant ?args name =
  if Atomic.get on then begin
    let b = Domain.DLS.get key in
    let args = match args with None -> [] | Some g -> g () in
    ignore (push b { ph = I; name; ts_ns = Clock.monotonic_ns (); args })
  end

(* --- inspection & export --- *)

let snapshot () =
  Mutex.lock reg_lock;
  let bufs = !buffers in
  Mutex.unlock reg_lock;
  bufs

let event_count () = List.fold_left (fun acc b -> acc + b.len) 0 (snapshot ())
let dropped () = List.fold_left (fun acc b -> acc + b.dropped) 0 (snapshot ())

let json_value () =
  let bufs = snapshot () in
  let epoch = Atomic.get epoch_ns in
  (* (buffer index, position) is the tiebreaker: a stable within-domain
     order even when consecutive events share a nanosecond timestamp *)
  let evs =
    List.concat
      (List.mapi
         (fun bix b -> List.init b.len (fun i -> (b.tid, bix, i, b.events.(i))))
         bufs)
  in
  let evs =
    List.sort
      (fun (_, b1, i1, e1) (_, b2, i2, e2) ->
        match Int64.compare e1.ts_ns e2.ts_ns with
        | 0 -> compare (b1, i1) (b2, i2)
        | c -> c)
      evs
  in
  let ev_json (tid, _, _, e) =
    let ts_us = Int64.to_float (Int64.sub e.ts_ns epoch) /. 1e3 in
    let fields =
      [ ("name", Json.Str e.name);
        ("ph", Json.Str (match e.ph with B -> "B" | E -> "E" | I -> "i"));
        ("ts", Json.Float ts_us);
        ("pid", Json.Int 1);
        ("tid", Json.Int tid) ]
    in
    let fields =
      match e.ph with I -> fields @ [ ("s", Json.Str "t") ] | B | E -> fields
    in
    let fields =
      if e.args = [] then fields else fields @ [ ("args", Json.Obj e.args) ]
    in
    Json.Obj fields
  in
  (* drops were previously only a global count; surface the per-domain
     totals as Chrome metadata events so a truncated timeline announces
     itself inside the viewer, not just in a side channel *)
  let drop_meta =
    List.filter_map
      (fun b ->
        if b.dropped = 0 then None
        else
          Some
            (Json.Obj
               [ ("name", Json.Str "trace.dropped");
                 ("ph", Json.Str "M");
                 ("pid", Json.Int 1);
                 ("tid", Json.Int b.tid);
                 ("args", Json.Obj [ ("dropped", Json.Int b.dropped) ]) ]))
      bufs
  in
  Json.Obj
    [ ("traceEvents", Json.List (List.map ev_json evs @ drop_meta));
      ("displayTimeUnit", Json.Str "ms");
      ("droppedEvents", Json.Int (List.fold_left (fun a b -> a + b.dropped) 0 bufs)) ]

let to_json () = Json.to_string ~compact:true (json_value ())

(* atomic (temp + rename): a SIGTERM arriving mid-flush must not leave a
   torn trace JSON behind *)
let write ~path =
  let dropped_tids =
    List.filter_map
      (fun b -> if b.dropped = 0 then None else Some (b.tid, b.dropped))
      (snapshot ())
  in
  if dropped_tids <> [] then
    Printf.eprintf "trace: ring buffer overflow, dropped %d event(s) (%s)\n%!"
      (List.fold_left (fun a (_, d) -> a + d) 0 dropped_tids)
      (String.concat ", "
         (List.map
            (fun (tid, d) -> Printf.sprintf "tid %d: %d" tid d)
            (List.sort compare dropped_tids)));
  Journal.write_atomic ~path (to_json () ^ "\n")
