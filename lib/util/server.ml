(* Framed Unix-socket transport: accept loop + bounded worker pool.
   Protocol schema and caches live in Hlp_power.Service; this layer only
   moves CRC-checked frames and applies admission control. *)

let tel_connections = Telemetry.counter "server.connections"
let tel_requests = Telemetry.counter "server.requests"
let tel_sheds = Telemetry.counter "server.sheds"
let tel_frame_errors = Telemetry.counter "server.frame_errors"

let max_frame_bytes = 64 * 1024 * 1024

(* --- frame codec: [4B LE length][4B LE crc32(payload)][payload] --- *)

let frame_error why =
  Telemetry.incr tel_frame_errors;
  raise (Err.invalid_input ~what:"server frame" why)

let rec write_all fd b off len =
  if len > 0 then begin
    let n =
      try Unix.write fd b off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd b (off + n) (len - n)
  end

let write_frame fd payload =
  let len = String.length payload in
  if len > max_frame_bytes then
    raise
      (Err.invalid_input ~what:"server frame"
         (Printf.sprintf "payload %d bytes exceeds max %d" len max_frame_bytes));
  let b = Bytes.create (8 + len) in
  Bytes.set_int32_le b 0 (Int32.of_int len);
  Bytes.set_int32_le b 4 (Journal.crc32 payload);
  Bytes.blit_string payload 0 b 8 len;
  write_all fd b 0 (8 + len)

(* Read exactly [len] bytes. [at_start] distinguishes a clean peer close
   (EOF before any header byte -> None) from a torn frame (EOF mid-frame
   -> typed error). EAGAIN/EWOULDBLOCK come from SO_RCVTIMEO poll ticks:
   before a frame starts they surface as [`Timeout] so the worker can
   re-check its stop flag; once a frame has started we keep reading —
   a frame must never be split by the poll tick. *)
let read_exact fd b len ~at_start =
  let got = ref 0 in
  let result = ref `Ok in
  while !result = `Ok && !got < len do
    match Unix.read fd b !got (len - !got) with
    | 0 -> if at_start && !got = 0 then result := `Eof else frame_error "eof mid-frame"
    | n -> got := !got + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        if at_start && !got = 0 then result := `Timeout
  done;
  !result

let read_frame_poll fd =
  let header = Bytes.create 8 in
  match read_exact fd header 8 ~at_start:true with
  | `Eof -> `Eof
  | `Timeout -> `Timeout
  | `Ok ->
      let len = Int32.to_int (Bytes.get_int32_le header 0) in
      let crc = Bytes.get_int32_le header 4 in
      if len < 0 || len > max_frame_bytes then
        frame_error (Printf.sprintf "length %d out of range" len);
      let payload = Bytes.create len in
      (match read_exact fd payload len ~at_start:false with
      | `Ok -> ()
      | `Eof | `Timeout -> assert false);
      let payload = Bytes.unsafe_to_string payload in
      if Journal.crc32 payload <> crc then frame_error "crc mismatch";
      `Frame payload

let rec read_frame fd =
  match read_frame_poll fd with
  | `Eof -> None
  | `Frame p -> Some p
  | `Timeout -> read_frame fd

(* --- server --- *)

type handler = Guard.t -> string -> string

let default_overload e =
  Json.to_string ~compact:true
    (Json.Obj
       [ ("ok", Json.Bool false);
         ( "error",
           Json.Obj
             [ ("class", Json.Str (Err.class_name e));
               ("message", Json.Str (Err.to_string e)) ] ) ])

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let serve ?max_inflight ?(queue_budget = 64) ?deadline_s
    ?(overload = default_overload) ?token ?on_ready ~path handler =
  let max_inflight =
    match max_inflight with
    | None -> max 1 (Domain.recommended_domain_count () / 2)
    | Some w when w >= 1 -> w
    | Some _ ->
        raise (Err.invalid_input ~what:"Server.serve: max_inflight" "must be >= 1")
  in
  if queue_budget < 1 then
    raise (Err.invalid_input ~what:"Server.serve: queue_budget" "must be >= 1");
  (match deadline_s with
  | Some d when (not (Float.is_finite d)) || d < 0.0 ->
      raise
        (Err.invalid_input ~what:"Server.serve: deadline_s"
           "must be finite and non-negative")
  | _ -> ());
  if Sys.file_exists path then Unix.unlink path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind listen_fd (Unix.ADDR_UNIX path)
   with Unix.Unix_error (e, _, _) ->
     close_quiet listen_fd;
     raise
       (Err.invalid_input ~what:"Server.serve: path"
          (Printf.sprintf "cannot bind %s: %s" path (Unix.error_message e))));
  Unix.listen listen_fd (queue_budget + max_inflight);
  let queue = Queue.create () in
  let mu = Mutex.create () in
  let cond = Condition.create () in
  let stopping = Atomic.make false in
  let worker () =
    let next_conn () =
      Mutex.lock mu;
      let rec wait () =
        if Atomic.get stopping then begin
          Mutex.unlock mu;
          None
        end
        else
          match Queue.take_opt queue with
          | Some fd ->
              Mutex.unlock mu;
              Some fd
          | None ->
              Condition.wait cond mu;
              wait ()
      in
      wait ()
    in
    (* serve one connection until the peer closes or drain begins; the
       in-flight request always finishes — drain is between frames *)
    let rec conn_loop fd =
      match read_frame_poll fd with
      | `Eof -> close_quiet fd
      | `Timeout -> if Atomic.get stopping then close_quiet fd else conn_loop fd
      | `Frame req ->
          Telemetry.incr tel_requests;
          let guard = Guard.create ?deadline_s () in
          write_frame fd (handler guard req);
          if Atomic.get stopping then close_quiet fd else conn_loop fd
    in
    let rec run () =
      match next_conn () with
      | None -> ()
      | Some fd ->
          (* a torn frame, a vanished peer, or a handler exception kills
             this connection, never the worker *)
          (try conn_loop fd with _ -> close_quiet fd);
          run ()
    in
    run ()
  in
  let domains = List.init max_inflight (fun _ -> Domain.spawn worker) in
  let stop_requested () =
    match token with Some tk -> Guard.is_cancelled tk | None -> false
  in
  let accept_one () =
    match Unix.accept ~cloexec:true listen_fd with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | fd, _ ->
        Telemetry.incr tel_connections;
        (* the receive timeout is the drain poll tick: a worker blocked on
           an idle persistent connection re-checks [stopping] this often *)
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.05;
        Mutex.lock mu;
        let pending = Queue.length queue in
        if pending >= queue_budget then begin
          Mutex.unlock mu;
          Telemetry.incr tel_sheds;
          let e =
            Err.Overloaded
              { queue = "server.accept"; budget = queue_budget; pending }
          in
          (try write_frame fd (overload e) with _ -> ());
          close_quiet fd
        end
        else begin
          Queue.add fd queue;
          Condition.signal cond;
          Mutex.unlock mu
        end
  in
  let rec accept_loop () =
    if not (stop_requested ()) then begin
      (match Unix.select [ listen_fd ] [] [] 0.05 with
      | [], _, _ -> ()
      | _ -> accept_one ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stopping true;
      Mutex.lock mu;
      Condition.broadcast cond;
      Mutex.unlock mu;
      List.iter Domain.join domains;
      (* connections accepted but never assigned to a worker *)
      Mutex.lock mu;
      Queue.iter close_quiet queue;
      Queue.clear queue;
      Mutex.unlock mu;
      close_quiet listen_fd;
      (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ()))
    (fun () ->
      Option.iter (fun f -> f ()) on_ready;
      accept_loop ())

(* --- client --- *)

type conn = { fd : Unix.file_descr }

let connect ?(wait_s = 5.0) path =
  let deadline = Clock.now_s () +. wait_s in
  let rec go () =
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> { fd }
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when Clock.now_s () < deadline ->
        close_quiet fd;
        Unix.sleepf 0.02;
        go ()
    | exception Unix.Unix_error (e, _, _) ->
        close_quiet fd;
        raise
          (Err.invalid_input ~what:"Server.connect"
             (Printf.sprintf "cannot connect %s: %s" path (Unix.error_message e)))
  in
  go ()

let request c payload =
  write_frame c.fd payload;
  match read_frame c.fd with
  | Some resp -> resp
  | None ->
      raise
        (Err.invalid_input ~what:"Server.request"
           "server closed the connection without responding")

let close c = close_quiet c.fd
