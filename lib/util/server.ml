(* Framed Unix-socket transport: accept loop + bounded worker pool.
   Protocol schema and caches live in Hlp_power.Service; this layer only
   moves CRC-checked frames and applies admission control. *)

let tel_connections = Telemetry.counter "server.connections"
let tel_requests = Telemetry.counter "server.requests"
let tel_sheds = Telemetry.counter "server.sheds"
let tel_frame_errors = Telemetry.counter "server.frame_errors"
let tel_slow = Telemetry.counter "server.slow_requests"
let tel_mem_soft = Telemetry.counter "server.memory.soft_trims"
let tel_mem_hard = Telemetry.counter "server.memory.hard_sheds"
let tel_reloads = Telemetry.counter "server.knob_reloads"

(* flight-recorder histograms; per-op ones are registered on first use *)
let h_queue_wait = Telemetry.histogram "server.queue_wait_ns"

let max_frame_bytes = 64 * 1024 * 1024

(* Writes to a peer that already closed must surface as EPIPE (handled
   per-connection), never as a process-killing SIGPIPE. Idempotent; done
   lazily by serve/connect so plain library linkage never touches signal
   state. *)
let ignore_sigpipe =
  lazy (if Sys.os_type = "Unix" then ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore))

(* --- frame codec: [4B LE length][4B LE crc32(payload)][payload] --- *)

let frame_error why =
  Telemetry.incr tel_frame_errors;
  raise (Err.invalid_input ~what:"server frame" why)

let rec write_all fd b off len =
  if len > 0 then begin
    let n =
      try Unix.write fd b off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd b (off + n) (len - n)
  end

let write_frame fd payload =
  let len = String.length payload in
  if len > max_frame_bytes then
    raise
      (Err.invalid_input ~what:"server frame"
         (Printf.sprintf "payload %d bytes exceeds max %d" len max_frame_bytes));
  let b = Bytes.create (8 + len) in
  Bytes.set_int32_le b 0 (Int32.of_int len);
  Bytes.set_int32_le b 4 (Journal.crc32 payload);
  Bytes.blit_string payload 0 b 8 len;
  write_all fd b 0 (8 + len)

(* Read exactly [len] bytes. [at_start] distinguishes a clean peer close
   (EOF before any header byte -> None) from a torn frame (EOF mid-frame
   -> typed error). EAGAIN/EWOULDBLOCK come from SO_RCVTIMEO poll ticks:
   before a frame starts they surface as [`Timeout] so the caller can
   re-check its stop flag or deadline; once a frame has started we keep
   reading — a frame must never be split by the poll tick — unless an
   explicit [deadline] (monotonic, absolute) has passed, in which case
   the stalled frame is a typed error: the frame boundary is lost and
   the connection must be dropped. *)
let read_exact fd b len ~at_start ~deadline =
  let got = ref 0 in
  let result = ref `Ok in
  while !result = `Ok && !got < len do
    match Unix.read fd b !got (len - !got) with
    | 0 -> if at_start && !got = 0 then result := `Eof else frame_error "eof mid-frame"
    | n -> got := !got + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        if at_start && !got = 0 then result := `Timeout
        else (
          match deadline with
          | Some d when Clock.now_s () >= d -> frame_error "timeout mid-frame"
          | _ -> ())
  done;
  !result

let read_frame_poll ?deadline fd =
  let header = Bytes.create 8 in
  match read_exact fd header 8 ~at_start:true ~deadline with
  | `Eof -> `Eof
  | `Timeout -> `Timeout
  | `Ok ->
      let len = Int32.to_int (Bytes.get_int32_le header 0) in
      let crc = Bytes.get_int32_le header 4 in
      if len < 0 || len > max_frame_bytes then
        frame_error (Printf.sprintf "length %d out of range" len);
      let payload = Bytes.create len in
      (match read_exact fd payload len ~at_start:false ~deadline with
      | `Ok -> ()
      | `Eof | `Timeout -> assert false);
      let payload = Bytes.unsafe_to_string payload in
      if Journal.crc32 payload <> crc then frame_error "crc mismatch";
      `Frame payload

let rec read_frame fd =
  match read_frame_poll fd with
  | `Eof -> None
  | `Frame p -> Some p
  | `Timeout -> read_frame fd

(* Bounded read: requires SO_RCVTIMEO on [fd] for the poll ticks that
   let the deadline be observed while blocked before a frame starts. *)
let read_frame_within ~timeout_s fd =
  if (not (Float.is_finite timeout_s)) || timeout_s <= 0.0 then
    raise
      (Err.invalid_input ~what:"Server.read_frame_within: timeout_s"
         "must be finite and positive");
  let t0 = Clock.now_s () in
  let deadline = t0 +. timeout_s in
  let rec go () =
    match read_frame_poll ~deadline fd with
    | `Eof -> None
    | `Frame p -> Some p
    | `Timeout ->
        if Clock.now_s () >= deadline then
          raise
            (Err.Error
               (Err.Deadline_exceeded
                  { limit_s = timeout_s; elapsed_s = Clock.now_s () -. t0 }))
        else go ()
  in
  go ()

(* --- socket-path hygiene ---

   A daemon must never steal a path out from under a live daemon: probe
   the existing file with a connect before unlinking. A successful
   connect means someone is accepting there — typed refusal; a
   connection-refused socket file is the genuinely stale leftover of a
   crashed process and is safe to remove. Anything that is not a socket
   is refused outright rather than deleted. *)

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let prepare_path path =
  match Unix.stat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () ->
          close_quiet fd;
          raise
            (Err.invalid_input ~what:"Server.serve: path"
               (Printf.sprintf
                  "%s already has a live server listening (refusing to steal \
                   the socket)"
                  path))
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ECONNRESET), _, _)
        ->
          close_quiet fd;
          (try Unix.unlink path with Unix.Unix_error _ -> ())
      | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
          (* vanished between stat and connect: nothing left to unlink *)
          close_quiet fd
      | exception Unix.Unix_error (e, _, _) ->
          close_quiet fd;
          raise
            (Err.invalid_input ~what:"Server.serve: path"
               (Printf.sprintf "cannot probe %s: %s" path (Unix.error_message e))))
  | _ ->
      raise
        (Err.invalid_input ~what:"Server.serve: path"
           (path ^ " exists and is not a socket"))

(* --- server --- *)

(* Per-request context. The transport creates it (guard + fallback rid)
   and records from it after the handler returns; the protocol layer
   annotates it (caller rid, op, cache key/outcome, typed status) so the
   access log can attribute without the transport parsing payloads. *)
type ctx = {
  guard : Guard.t;
  mutable rid : string;
  mutable op : string;
  mutable key : string;
  mutable cache : string;
  mutable status : string;
}

type handler = ctx -> string -> string

(* pid + process-wide counter: unique across the clients and servers of
   one box without coordination. Servers stamp "s" rids as the fallback
   for callers that sent none; clients stamp "c" rids. *)
let rid_counter = Atomic.make 0

let fresh_rid ?(prefix = "s") () =
  Printf.sprintf "%s%d-%d" prefix (Unix.getpid ())
    (Atomic.fetch_and_add rid_counter 1)

let retry_after_hint_s = 0.1

(* --- hot-reloadable knobs ---

   The mutable operating parameters live in one immutable record behind
   an Atomic, read at each use site (admission check, guard creation,
   slow-threshold compare, memory sampler). Reload is then a single
   Atomic.set of a fully validated record: no half-applied config, no
   torn reads, no dropped connections. *)

type knobs = {
  queue_budget : int;
  deadline_s : float option;
  slow_s : float option;
  mem_soft_bytes : int option;
  mem_hard_bytes : int option;
}

let default_knobs =
  {
    queue_budget = 64;
    deadline_s = None;
    slow_s = None;
    mem_soft_bytes = None;
    mem_hard_bytes = None;
  }

let validate_knobs k =
  if k.queue_budget < 1 then
    raise (Err.invalid_input ~what:"Server knobs: queue_budget" "must be >= 1");
  (match k.deadline_s with
  | Some d when (not (Float.is_finite d)) || d < 0.0 ->
      raise
        (Err.invalid_input ~what:"Server knobs: deadline_s"
           "must be finite and non-negative")
  | _ -> ());
  (match k.slow_s with
  | Some s when (not (Float.is_finite s)) || s <= 0.0 ->
      raise
        (Err.invalid_input ~what:"Server knobs: slow_s"
           "must be finite and positive")
  | _ -> ());
  let positive what v =
    match v with
    | Some b when b < 1 ->
        raise (Err.invalid_input ~what:("Server knobs: " ^ what) "must be >= 1")
    | _ -> ()
  in
  positive "mem_soft_bytes" k.mem_soft_bytes;
  positive "mem_hard_bytes" k.mem_hard_bytes;
  match (k.mem_soft_bytes, k.mem_hard_bytes) with
  | Some s, Some h when s > h ->
      raise
        (Err.invalid_input ~what:"Server knobs: mem_soft_bytes"
           "must be <= mem_hard_bytes")
  | _ -> ()

let set_knobs cell k =
  validate_knobs k;
  Atomic.set cell k;
  Telemetry.incr tel_reloads

let default_overload e =
  Json.to_string ~compact:true
    (Json.Obj
       [ ("ok", Json.Bool false);
         ( "error",
           Json.Obj
             [ ("class", Json.Str (Err.class_name e));
               ("message", Json.Str (Err.to_string e));
               ("retry_after_s", Json.Float retry_after_hint_s) ] ) ])

let serve ?max_inflight ?(queue_budget = 64) ?deadline_s
    ?(overload = default_overload) ?token ?on_ready ?access_log
    ?access_log_max_bytes ?slow_s ?knobs ?on_tick ?on_memory_soft
    ?(mem_sample_every_s = 0.25) ~path handler =
  Lazy.force ignore_sigpipe;
  let max_inflight =
    match max_inflight with
    | None -> max 1 (Domain.recommended_domain_count () / 2)
    | Some w when w >= 1 -> w
    | Some _ ->
        raise (Err.invalid_input ~what:"Server.serve: max_inflight" "must be >= 1")
  in
  (* scalar args seed the knob record when the caller did not supply a
     shared cell; either way every use site below reads [kn] *)
  let kn =
    match knobs with
    | Some cell -> cell
    | None ->
        Atomic.make
          { default_knobs with queue_budget; deadline_s; slow_s }
  in
  validate_knobs (Atomic.get kn);
  if (not (Float.is_finite mem_sample_every_s)) || mem_sample_every_s <= 0.0
  then
    raise
      (Err.invalid_input ~what:"Server.serve: mem_sample_every_s"
         "must be finite and positive");
  (match access_log_max_bytes with
  | Some b when b <= 0 ->
      raise
        (Err.invalid_input ~what:"Server.serve: access_log_max_bytes"
           "must be >= 1")
  | _ -> ());
  prepare_path path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind listen_fd (Unix.ADDR_UNIX path)
   with Unix.Unix_error (e, _, _) ->
     close_quiet listen_fd;
     raise
       (Err.invalid_input ~what:"Server.serve: path"
          (Printf.sprintf "cannot bind %s: %s" path (Unix.error_message e))));
  Unix.listen listen_fd ((Atomic.get kn).queue_budget + max_inflight);
  let queue = Queue.create () in
  let mu = Mutex.create () in
  let cond = Condition.create () in
  let stopping = Atomic.make false in
  (* memory-pressure level, written by the accept-loop sampler, read by
     every worker at request admission: 0 ok, 1 soft, 2 hard *)
  let pressure = Atomic.make 0 in
  let last_rss = Atomic.make 0 in
  (* the access log outlives every worker: opened before the pool spawns,
     closed in the drain path after the joins *)
  let log =
    Option.map
      (fun p -> Journal.Lines.open_ ?max_bytes:access_log_max_bytes p)
      access_log
  in
  (* One record per served request, written before the response frame so
     the log always ties out to [server.requests] even if the peer
     vanished mid-write. The whole recorder hangs off the Telemetry
     switch — disabled, a request costs this one branch. *)
  let observe ctx ~queue_s ~service_s ~bytes_in ~bytes_out =
    if Telemetry.enabled () then begin
      let op = if ctx.op = "" then "unknown" else ctx.op in
      Telemetry.record h_queue_wait (queue_s *. 1e9);
      Telemetry.record
        (Telemetry.histogram ("server.op." ^ op ^ ".service_ns"))
        (service_s *. 1e9);
      Telemetry.record
        (Telemetry.histogram ("server.op." ^ op ^ ".bytes_in"))
        (float_of_int bytes_in);
      Telemetry.record
        (Telemetry.histogram ("server.op." ^ op ^ ".bytes_out"))
        (float_of_int bytes_out);
      (match (Atomic.get kn).slow_s with
      | Some s when service_s >= s ->
          Telemetry.incr tel_slow;
          Trace.instant "server.slow_request" ~args:(fun () ->
              [ ("rid", Json.Str ctx.rid);
                ("op", Json.Str op);
                ("service_s", Json.Float service_s) ])
      | _ -> ());
      match log with
      | None -> ()
      | Some l ->
          let line =
            Json.to_string ~compact:true
              (Json.Obj
                 [ ("ts", Json.Float (Unix.gettimeofday ()));
                   ("rid", Json.Str ctx.rid);
                   ("op", Json.Str op);
                   ("key", Json.Str ctx.key);
                   ("cache", Json.Str ctx.cache);
                   ("queue_s", Json.Float queue_s);
                   ("service_s", Json.Float service_s);
                   ("bytes_in", Json.Int bytes_in);
                   ("bytes_out", Json.Int bytes_out);
                   ("status", Json.Str ctx.status) ])
          in
          (* log I/O must never kill the connection it describes *)
          (try Journal.Lines.append l line with _ -> ())
    end
  in
  let worker () =
    let next_conn () =
      Mutex.lock mu;
      let rec wait () =
        if Atomic.get stopping then begin
          Mutex.unlock mu;
          None
        end
        else
          match Queue.take_opt queue with
          | Some entry ->
              Mutex.unlock mu;
              Some entry
          | None ->
              Condition.wait cond mu;
              wait ()
      in
      wait ()
    in
    (* serve one connection until the peer closes or drain begins; the
       in-flight request always finishes — drain is between frames.
       [queue_s] (accept-to-worker wait) is charged to the connection's
       first request; later requests on the persistent connection never
       waited in the accept queue. *)
    let rec conn_loop fd queue_s =
      match read_frame_poll fd with
      | `Eof -> close_quiet fd
      | `Timeout -> if Atomic.get stopping then close_quiet fd else conn_loop fd 0.0
      | `Frame _req when Atomic.get pressure >= 2 ->
          (* hard memory budget: shed the request with the same typed
             overload envelope as queue pressure — a degraded answer the
             resilient client sleeps on, instead of an OOM kill that
             loses every cache. The connection stays open; the client
             decides whether to wait or leave. *)
          Telemetry.incr tel_requests;
          Telemetry.incr tel_sheds;
          Telemetry.incr tel_mem_hard;
          let k = Atomic.get kn in
          let e =
            Err.Overloaded
              {
                queue = "server.memory";
                budget =
                  (match k.mem_hard_bytes with Some b -> b | None -> 0);
                pending = Atomic.get last_rss;
              }
          in
          (try write_frame fd (overload e) with _ -> ());
          if Atomic.get stopping then close_quiet fd else conn_loop fd 0.0
      | `Frame req ->
          Telemetry.incr tel_requests;
          let t0 = Clock.now_s () in
          let ctx =
            {
              guard = Guard.create ?deadline_s:(Atomic.get kn).deadline_s ();
              rid = fresh_rid ();
              op = "";
              key = "";
              cache = "";
              status = "ok";
            }
          in
          let bytes_in = String.length req + 8 in
          let resp =
            try Trace.span "server.request" (fun () -> handler ctx req)
            with e ->
              ctx.status <-
                (match e with
                | Err.Error err -> Err.class_name err
                | _ -> "exception");
              observe ctx ~queue_s ~service_s:(Clock.now_s () -. t0) ~bytes_in
                ~bytes_out:0;
              raise e
          in
          observe ctx ~queue_s ~service_s:(Clock.now_s () -. t0) ~bytes_in
            ~bytes_out:(String.length resp + 8);
          write_frame fd resp;
          if Atomic.get stopping then close_quiet fd else conn_loop fd 0.0
    in
    let rec run () =
      match next_conn () with
      | None -> ()
      | Some (fd, enq_ts) ->
          (* a torn frame, a vanished peer, or a handler exception kills
             this connection, never the worker *)
          (try conn_loop fd (Clock.now_s () -. enq_ts) with _ -> close_quiet fd);
          run ()
    in
    run ()
  in
  let domains = List.init max_inflight (fun _ -> Domain.spawn worker) in
  let stop_requested () =
    match token with Some tk -> Guard.is_cancelled tk | None -> false
  in
  let accept_one () =
    match Unix.accept ~cloexec:true listen_fd with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | fd, _ ->
        Telemetry.incr tel_connections;
        (* the receive timeout is the drain poll tick: a worker blocked on
           an idle persistent connection re-checks [stopping] this often *)
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.05;
        let queue_budget = (Atomic.get kn).queue_budget in
        Mutex.lock mu;
        let pending = Queue.length queue in
        if pending >= queue_budget then begin
          Mutex.unlock mu;
          Telemetry.incr tel_sheds;
          let e =
            Err.Overloaded
              { queue = "server.accept"; budget = queue_budget; pending }
          in
          (try write_frame fd (overload e) with _ -> ());
          close_quiet fd
        end
        else begin
          Queue.add (fd, Clock.now_s ()) queue;
          Condition.signal cond;
          Mutex.unlock mu
        end
  in
  (* RSS sampler, run on the accept tick and throttled to
     [mem_sample_every_s]: classifies the current resident set against
     the (hot-reloadable) budgets, publishes the level for workers, and
     while at-or-above the soft budget invokes the relief callback —
     proportional cache eviction wired in by the service layer — so
     repeated samples shrink the working set geometrically instead of
     dumping it. Level transitions emit trace instants; an unreadable
     RSS (no procfs) reads as level 0, i.e. the pre-budget behaviour. *)
  let last_sample = ref 0.0 in
  let sample_memory () =
    let k = Atomic.get kn in
    if k.mem_soft_bytes <> None || k.mem_hard_bytes <> None then begin
      let now = Clock.now_s () in
      if now -. !last_sample >= mem_sample_every_s then begin
        last_sample := now;
        let rss = match Memstat.rss_bytes () with Some b -> b | None -> 0 in
        Atomic.set last_rss rss;
        let level =
          match (k.mem_hard_bytes, k.mem_soft_bytes) with
          | Some h, _ when rss > 0 && rss >= h -> 2
          | _, Some s when rss > 0 && rss >= s -> 1
          | _ -> 0
        in
        let prev = Atomic.exchange pressure level in
        if level > prev then
          Trace.instant
            (if level >= 2 then "server.memory.hard" else "server.memory.soft")
            ~args:(fun () ->
              [ ("rss_bytes", Json.Int rss);
                ( "soft_bytes",
                  Json.Int (Option.value ~default:0 k.mem_soft_bytes) );
                ( "hard_bytes",
                  Json.Int (Option.value ~default:0 k.mem_hard_bytes) ) ]);
        if level >= 1 then begin
          Telemetry.incr tel_mem_soft;
          match on_memory_soft with
          | Some f -> ( try f () with _ -> ())
          | None -> ()
        end
      end
    end
    else if Atomic.get pressure <> 0 then Atomic.set pressure 0
  in
  let rec accept_loop () =
    if not (stop_requested ()) then begin
      (match on_tick with Some f -> ( try f () with _ -> ()) | None -> ());
      sample_memory ();
      (match Unix.select [ listen_fd ] [] [] 0.05 with
      | [], _, _ -> ()
      | _ -> accept_one ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stopping true;
      Mutex.lock mu;
      Condition.broadcast cond;
      Mutex.unlock mu;
      List.iter Domain.join domains;
      (* connections accepted but never assigned to a worker *)
      Mutex.lock mu;
      Queue.iter (fun (fd, _) -> close_quiet fd) queue;
      Queue.clear queue;
      Mutex.unlock mu;
      Option.iter (fun l -> try Journal.Lines.close l with _ -> ()) log;
      close_quiet listen_fd;
      (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ()))
    (fun () ->
      Option.iter (fun f -> f ()) on_ready;
      accept_loop ())

(* --- client --- *)

type conn = { fd : Unix.file_descr }

(* Decorrelated jitter (base..3*previous, capped): consecutive sleeps
   de-synchronize callers that failed at the same instant, so a daemon
   restart is greeted by a spread of reconnects, not a lockstep herd. *)
let next_backoff rng ~base_s ~cap_s prev_s =
  Float.min cap_s (base_s +. Prng.float rng (Float.max base_s (prev_s *. 3.0)))

(* Jitter wants entropy, not reproducibility: distinct processes (and
   distinct clients in one process) must draw distinct schedules, so the
   default seed mixes the pid with the monotonic clock. Tests that need a
   fixed schedule pass ?seed. *)
let jitter_rng seed =
  Prng.create
    (match seed with
    | Some s -> s
    | None ->
        (Unix.getpid () * 0x9E3779B9)
        lxor Int64.to_int (Int64.bits_of_float (Clock.now_s ())))

let connect ?(wait_s = 5.0) ?seed path =
  Lazy.force ignore_sigpipe;
  let deadline = Clock.now_s () +. wait_s in
  let rng = jitter_rng seed in
  let rec go sleep_s =
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> { fd }
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when Clock.now_s () < deadline ->
        close_quiet fd;
        let remaining = deadline -. Clock.now_s () in
        Unix.sleepf (Float.max 0.0 (Float.min sleep_s remaining));
        go (next_backoff rng ~base_s:0.005 ~cap_s:0.64 sleep_s)
    | exception Unix.Unix_error (e, _, _) ->
        close_quiet fd;
        raise
          (Err.invalid_input ~what:"Server.connect"
             (Printf.sprintf "cannot connect %s: %s" path (Unix.error_message e)))
  in
  go 0.005

let request c payload =
  write_frame c.fd payload;
  match read_frame c.fd with
  | Some resp -> resp
  | None ->
      raise
        (Err.invalid_input ~what:"Server.request"
           "server closed the connection without responding")

let request_within ~timeout_s c payload =
  Unix.setsockopt_float c.fd Unix.SO_RCVTIMEO 0.05;
  write_frame c.fd payload;
  match read_frame_within ~timeout_s c.fd with
  | Some resp -> resp
  | None ->
      raise
        (Err.invalid_input ~what:"Server.request"
           "server closed the connection without responding")

let close c = close_quiet c.fd

(* --- resilient client --- *)

module Client = struct
  let tel_retries = Telemetry.counter "client.retries"
  let tel_reconnects = Telemetry.counter "client.reconnects"
  let tel_overload_waits = Telemetry.counter "client.overload_waits"
  let tel_exhausted = Telemetry.counter "client.exhausted"
  let tel_restart_rides = Telemetry.counter "client.restart_rides"

  type t = {
    path : string;
    max_retries : int;
    backoff_base_s : float;
    backoff_cap_s : float;
    connect_wait_s : float;
    request_timeout_s : float option;
    rng : Prng.t;
    mutable conn : conn option;
    mutable ever_connected : bool;
    mutable wire : int;  (* request frames actually written *)
    mutable logical : int;  (* request calls *)
  }

  let create ?seed ?(max_retries = 5) ?(backoff_base_s = 0.005)
      ?(backoff_cap_s = 0.64) ?(connect_wait_s = 5.0) ?request_timeout_s path =
    if max_retries < 0 then
      raise
        (Err.invalid_input ~what:"Server.Client.create: max_retries"
           "must be >= 0");
    let positive what v =
      if (not (Float.is_finite v)) || v <= 0.0 then
        raise
          (Err.invalid_input ~what:("Server.Client.create: " ^ what)
             "must be finite and positive")
    in
    positive "backoff_base_s" backoff_base_s;
    positive "backoff_cap_s" backoff_cap_s;
    Option.iter (positive "request_timeout_s") request_timeout_s;
    if (not (Float.is_finite connect_wait_s)) || connect_wait_s < 0.0 then
      raise
        (Err.invalid_input ~what:"Server.Client.create: connect_wait_s"
           "must be finite and non-negative");
    {
      path;
      max_retries;
      backoff_base_s;
      backoff_cap_s;
      connect_wait_s;
      request_timeout_s;
      rng = jitter_rng seed;
      conn = None;
      ever_connected = false;
      wire = 0;
      logical = 0;
    }

  let disconnect t =
    Option.iter close t.conn;
    t.conn <- None

  let close = disconnect
  let counts t = (t.logical, t.wire)

  let conn ?wait_s t =
    match t.conn with
    | Some c -> c
    | None ->
        let wait_s = Option.value wait_s ~default:t.connect_wait_s in
        let c = connect ~wait_s t.path in
        if t.ever_connected then Telemetry.incr tel_reconnects;
        t.ever_connected <- true;
        (* the receive timeout is the deadline poll tick of
           read_frame_within; only needed when requests are bounded *)
        if t.request_timeout_s <> None then
          Unix.setsockopt_float c.fd Unix.SO_RCVTIMEO 0.05;
        t.conn <- Some c;
        c

  (* An overloaded shed frame carries the server's typed Overloaded in
     the error envelope plus a retry_after_s hint; the server closes the
     connection right after writing it, so honoring the hint always
     means reconnect-after-sleep. *)
  let overload_hint payload =
    match Json.parse payload with
    | Error _ -> None
    | Ok v -> (
        match (Json.member "ok" v, Json.member "error" v) with
        | Some (Json.Bool false), Some e -> (
            match Option.bind (Json.member "class" e) Json.to_str_opt with
            | Some "overloaded" ->
                Some
                  (Option.value ~default:retry_after_hint_s
                     (Option.bind (Json.member "retry_after_s" e)
                        Json.to_float_opt))
            | _ -> None)
        | _ -> None)

  let read_response t c =
    match t.request_timeout_s with
    | Some s -> read_frame_within ~timeout_s:s c.fd
    | None -> read_frame c.fd

  let no_response =
    Err.Invalid_input
      {
        what = "Server.Client.request";
        why = "server closed the connection without responding";
      }

  let request ?(idempotent = true) t payload =
    t.logical <- t.logical + 1;
    (* A supervised daemon restart shows up here as connect attempts
       exhausting their wait (the socket is gone or refusing while the
       watchdog re-execs). When the request carries a deadline, that
       deadline — not max_retries — bounds how long we wait out the
       restart window: connect exhaustion before it passes re-enters the
       connect loop without charging a retry, so a restart shorter than
       the deadline is invisible to the caller. *)
    let ride_deadline =
      Option.map (fun s -> Clock.now_s () +. s) t.request_timeout_s
    in
    let connect_budget () =
      (* never exceed the per-attempt wait, never go negative *)
      Option.map
        (fun d ->
          Float.max 0.01 (Float.min t.connect_wait_s (d -. Clock.now_s ())))
        ride_deadline
    in
    (* [sent]: whether the server may already have executed this request.
       Connect and write failures happen before the request could have
       been processed (a torn write is dropped by the server's CRC wall),
       so they are retried even for non-idempotent requests; once the
       frame is fully written, only idempotent requests may be retried. *)
    let retry_or ~attempt ~sleep_s ~retryable (e : Err.t) k =
      if attempt >= t.max_retries || not retryable then begin
        Telemetry.incr tel_exhausted;
        raise (Err.Error e)
      end
      else begin
        Telemetry.incr tel_retries;
        Unix.sleepf sleep_s;
        k (next_backoff t.rng ~base_s:t.backoff_base_s ~cap_s:t.backoff_cap_s sleep_s)
      end
    in
    let rec attempt n sleep_s =
      let retry ~retryable e =
        disconnect t;
        retry_or ~attempt:n ~sleep_s ~retryable e (fun s -> attempt (n + 1) s)
      in
      match conn ?wait_s:(connect_budget ()) t with
      | exception
          Err.Error (Err.Invalid_input { what = "Server.connect"; _ } as e)
        -> (
          match ride_deadline with
          | Some d when Clock.now_s () < d ->
              (* still inside the request deadline: ride the restart
                 window instead of burning a retry *)
              Telemetry.incr tel_restart_rides;
              disconnect t;
              attempt n sleep_s
          | _ -> retry ~retryable:true e)
      | exception Err.Error e -> retry ~retryable:true e
      | c -> (
          match
            write_frame c.fd payload;
            t.wire <- t.wire + 1
          with
          | exception Unix.Unix_error (e, _, _) ->
              retry ~retryable:true
                (Err.Invalid_input
                   {
                     what = "Server.Client.request";
                     why = "write failed: " ^ Unix.error_message e;
                   })
          | exception Err.Error e -> retry ~retryable:false e
          | () -> (
              match read_response t c with
              | Some resp -> (
                  match overload_hint resp with
                  | Some retry_after when n < t.max_retries ->
                      Telemetry.incr tel_overload_waits;
                      disconnect t;
                      Unix.sleepf (Float.min retry_after t.backoff_cap_s);
                      Telemetry.incr tel_retries;
                      attempt (n + 1) sleep_s
                  | _ ->
                      (* retries exhausted on overload: the shed frame is
                         itself a typed answer — return it *)
                      resp)
              | None -> retry ~retryable:idempotent no_response
              | exception Err.Error e -> retry ~retryable:idempotent e
              | exception Unix.Unix_error (e, _, _) ->
                  retry ~retryable:idempotent
                    (Err.Invalid_input
                       {
                         what = "Server.Client.request";
                         why = "read failed: " ^ Unix.error_message e;
                       })))
    in
    attempt 0 t.backoff_base_s
end
