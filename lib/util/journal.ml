(* Append-only write-ahead journal with length+CRC32 framing, torn-tail
   recovery, and atomic snapshot-via-rename files. *)

(* --- CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320), table-driven --- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* --- frame format: [len32 LE][crc32 LE][payload] --- *)

let header_bytes = 8

(* a length field beyond this is treated as frame garbage, not a record:
   recovery must never try to allocate an attacker- or corruption-sized
   buffer *)
let max_record_bytes = 1 lsl 26 (* 64 MiB *)

let put_u32_le b v =
  for i = 0 to 3 do
    Buffer.add_char b
      (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v (8 * i)) 0xFFl)))
  done

let get_u32_le s off =
  let byte i = Int32.of_int (Char.code s.[off + i]) in
  Int32.logor (byte 0)
    (Int32.logor
       (Int32.shift_left (byte 1) 8)
       (Int32.logor (Int32.shift_left (byte 2) 16) (Int32.shift_left (byte 3) 24)))

let frame payload =
  let b = Buffer.create (header_bytes + String.length payload) in
  put_u32_le b (Int32.of_int (String.length payload));
  put_u32_le b (crc32 payload);
  Buffer.add_string b payload;
  Buffer.contents b

(* --- recovery --- *)

type recovery = {
  records : string list;
  valid_bytes : int;
  torn_bytes : int;
}

let recover path =
  if not (Sys.file_exists path) then { records = []; valid_bytes = 0; torn_bytes = 0 }
  else begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    let records = ref [] in
    let pos = ref 0 in
    let ok = ref true in
    while !ok && !pos + header_bytes <= len do
      let plen = Int32.to_int (get_u32_le s !pos) in
      if plen < 0 || plen > max_record_bytes || !pos + header_bytes + plen > len then
        ok := false
      else begin
        let payload = String.sub s (!pos + header_bytes) plen in
        if crc32 payload <> get_u32_le s (!pos + 4) then ok := false
        else begin
          records := payload :: !records;
          pos := !pos + header_bytes + plen
        end
      end
    done;
    { records = List.rev !records; valid_bytes = !pos; torn_bytes = len - !pos }
  end

(* --- appending --- *)

type t = {
  path : string;
  fd : Unix.file_descr;
  mutable nappended : int;
  mutable closed : bool;
}

(* no Telemetry here: Journal sits below Json in the module order (Json's
   atomic writes come through here, Telemetry's JSON export goes through
   Json), so counting journal events is the caller's job *)

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

let open_ ?(resume = false) path =
  let r = if resume then recover path else { records = []; valid_bytes = 0; torn_bytes = 0 } in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  (* drop the torn tail (resume) or everything (fresh) before appending:
     new frames must start exactly where the valid prefix ends *)
  Unix.ftruncate fd r.valid_bytes;
  ignore (Unix.lseek fd r.valid_bytes Unix.SEEK_SET);
  ({ path; fd; nappended = 0; closed = false }, r.records)

let append t payload =
  if t.closed then invalid_arg "Journal.append: closed";
  write_all t.fd (frame payload);
  t.nappended <- t.nappended + 1

let sync t = if not t.closed then Unix.fsync t.fd

let close t =
  if not t.closed then begin
    sync t;
    t.closed <- true;
    Unix.close t.fd
  end

let path t = t.path
let appended t = t.nappended

(* --- atomic snapshots --- *)

let fsync_dir dir =
  (* the rename is only durable once the directory entry is synced; not
     every filesystem allows opening a directory for fsync, so best-effort *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd
  | exception Unix.Unix_error _ -> ()

let write_atomic ~path contents =
  let dir = Filename.dirname path in
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Hashtbl.hash (path, contents))
  in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      write_all fd contents;
      Unix.fsync fd);
  Unix.rename tmp path;
  fsync_dir dir

(* --- line-oriented logs --- *)

module Lines = struct
  (* Newline-framed append log with size-bounded rotation — the access
     log's storage. Human/grep-friendly where the WAL above is CRC-framed;
     shares the one-write-per-record discipline so a crash tears at most
     the final line, which any line-oriented reader skips naturally. *)

  type t = {
    l_path : string;
    max_bytes : int;
    lock : Mutex.t;
    mutable fd : Unix.file_descr;
    mutable size : int;
    mutable closed : bool;
  }

  let rotated path = path ^ ".1"

  let open_log path =
    let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
    let size = (Unix.fstat fd).Unix.st_size in
    (fd, size)

  let open_ ?(max_bytes = 16 * 1024 * 1024) path =
    if max_bytes <= 0 then invalid_arg "Journal.Lines.open_: max_bytes must be positive";
    let fd, size = open_log path in
    { l_path = path; max_bytes; lock = Mutex.create (); fd; size; closed = false }

  let append t line =
    if t.closed then invalid_arg "Journal.Lines.append: closed";
    if String.contains line '\n' then
      invalid_arg "Journal.Lines.append: embedded newline";
    let record = line ^ "\n" in
    Mutex.lock t.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () ->
        (* rotate before the write that would cross the bound, so the live
           file plus its one predecessor hold at most ~2*max_bytes (a
           single line longer than max_bytes still lands whole) *)
        if t.size > 0 && t.size + String.length record > t.max_bytes then begin
          Unix.close t.fd;
          Unix.rename t.l_path (rotated t.l_path);
          let fd, size = open_log t.l_path in
          t.fd <- fd;
          t.size <- size
        end;
        write_all t.fd record;
        t.size <- t.size + String.length record)

  let sync t = if not t.closed then Unix.fsync t.fd

  let close t =
    if not t.closed then begin
      sync t;
      t.closed <- true;
      Unix.close t.fd
    end

  let path t = t.l_path
end
