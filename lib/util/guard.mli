(** Deadlines and cooperative cancellation for long-running estimation.

    A guard bundles an optional wall-clock deadline and an optional
    cancellation token. Estimators thread a guard through their batch /
    round loops and call {!check} at stopping-rule granularity; a tripped
    guard raises the corresponding typed {!Err.Error}
    ([Deadline_exceeded] / [Cancelled]), which the [*_guarded] entry
    points turn into a [result]. Checks are cheap (one [Atomic.get] plus,
    with a deadline, one monotonic {!Clock} read — never [gettimeofday],
    so an NTP step cannot trip a deadline) and sit inside per-batch
    loops without measurable cost; they are {e cooperative} — a deadline
    fires at the next check, not preemptively, so granularity is one batch
    or shard, never mid-gate.

    Resource budgets that are not time-shaped (BDD node counts, retry
    counts) live with the resource owner ({!Bdd.manager}'s [node_limit],
    {!Hlp_sim.Parsim}'s [max_retries]) and report through the same
    {!Err.t} taxonomy. *)

type token
(** A cancellation token: a named atomic flag, safe to {!cancel} from any
    domain (e.g. a signal handler or a supervising thread). *)

val token : ?name:string -> unit -> token
val cancel : token -> unit
val is_cancelled : token -> bool

type t

val create : ?deadline_s:float -> ?token:token -> unit -> t
(** A guard whose deadline (if any) starts {e now}. Raises
    [Err.Error (Invalid_input _)] on a negative or non-finite deadline. *)

val unlimited : t
(** Never trips; the default of every [?guard] parameter. *)

val elapsed_s : t -> float

val remaining_s : t -> float option
(** Seconds left before the deadline ([None] without one); may be
    negative once expired. *)

val check : ?where:string -> t -> unit
(** Raise [Err.Error (Cancelled _)] if the token fired, else
    [Err.Error (Deadline_exceeded _)] if past the deadline, else return.
    Trips are counted in the ["guard.deadline_trips"] /
    ["guard.cancel_trips"] telemetry counters. *)

val expired : t -> bool
(** Non-raising {!check}. *)

val run : t -> (t -> 'a) -> ('a, Err.t) result
(** [run g f] checks [g], runs [f g], and catches any typed error —
    the standard wrapper the [*_guarded] estimation entry points use. *)
