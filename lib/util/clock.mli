(** Monotonic time for every timer, deadline, and trace timestamp in the
    toolkit.

    [Unix.gettimeofday] is wall-clock time: an NTP step mid-run makes
    timer spans negative and deadline guards trip (or never trip)
    spuriously. Everything that measures {e durations} — {!Telemetry}
    timers, {!Guard} deadlines, {!Trace} span timestamps — reads this
    module instead, which binds [clock_gettime(CLOCK_MONOTONIC)].

    The epoch is arbitrary (typically boot time): values are only
    meaningful as differences. *)

val monotonic_ns : unit -> int64
(** Raw monotonic reading in nanoseconds. Never decreases. *)

val now_s : unit -> float
(** Seconds from the current source (the monotonic clock, unless a test
    injected one with {!with_source}). This is the reading every timer
    and deadline in the toolkit uses. *)

val with_source : (unit -> float) -> (unit -> 'a) -> 'a
(** [with_source fake f] runs [f] with {!now_s} reading [fake] instead of
    the monotonic clock, restoring the real clock afterwards (also on
    exceptions). For tests only: lets a regression test replay an NTP
    step or drive a deadline deterministically. Process-global — do not
    use from concurrent domains. *)
