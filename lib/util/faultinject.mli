(** Seeded fault injection for the guarded-execution test harness.

    A small set of named injection points is compiled into the hot paths
    (disabled they cost one [Atomic.get] plus a mask test, and the whole
    harness is off by default). When armed via {!configure}, each visit to
    an armed point {e draws}: an atomic per-point sequence number is
    hashed (splitmix64) with the configured seed, and the point fires if
    the resulting uniform deviate falls under the configured rate. The
    multiset of fired draws therefore depends only on
    [(seed, rate, #draws)] — worker-domain scheduling can permute {e which
    shard} absorbs a fault, but not {e how many} fire, and any single
    shard's retry draws fresh sequence numbers (transient-fault model).

    Injection points and what a firing simulates:
    - [Gate_eval]: a gate-evaluation raise inside {!Hlp_sim.Funcsim} /
      {!Hlp_sim.Bitsim} steps (bad netlist memory, cosmic ray — an
      arbitrary exception on the innermost path);
    - [Trace_sample]: a poisoned (non-finite) per-transition macro-model
      value inside {!Hlp_power.Sampling.prepare};
    - [Domain_kill]: a {!Hlp_sim.Parsim} worker domain dying at shard
      pickup;
    - [Bdd_blowup]: artificial BDD node-budget exhaustion — {!Bdd} raises
      the same typed [Budget_exceeded] as a real blowup, exercising the
      symbolic-to-sampling degradation chain without building a large
      diagram. *)

type point = Gate_eval | Trace_sample | Domain_kill | Bdd_blowup

val all_points : point list
val point_name : point -> string

val configure : ?seed:int -> ?rate:float -> point list -> unit
(** Arm the given points at the given firing probability (default 0.05)
    and reset all draw/fire counters. Raises [Err.Error (Invalid_input _)]
    unless [rate] is in [[0, 1]]. *)

val disarm : unit -> unit
(** Disarm every point (the program-start state). *)

val enabled : unit -> bool
val armed : point -> bool

val fire : point -> bool
(** Draw at this point: [true] iff armed and this draw's seeded deviate
    falls under the rate. Safe from any domain. *)

val fired : point -> int
(** Number of firings since the last {!configure}. *)

val injected_exn : point -> exn
(** The exception an injection site raises ([Failure] with a recognizable
    message — deliberately {e untyped}, faults arrive as arbitrary
    exceptions and containment must not depend on their shape). *)

val trip : point -> unit
(** [if fire p then raise (injected_exn p)] — the common site idiom. *)

val with_faults : ?seed:int -> ?rate:float -> point list -> (unit -> 'a) -> 'a
(** Run a thunk with the points armed, disarming afterwards (tests). *)
