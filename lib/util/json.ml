type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_repr x = if Float.is_finite x then Printf.sprintf "%.9g" x else "null"

(* Pretty-printing matches the historical bench/json_out.ml format exactly,
   so regenerating a committed BENCH_*.json produces byte-stable diffs. *)
let rec emit b ~indent v =
  let pad n = String.make n ' ' in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (string_of_bool x)
  | Int x -> Buffer.add_string b (string_of_int x)
  | Float x -> Buffer.add_string b (float_repr x)
  | Str s -> Buffer.add_string b (Printf.sprintf "\"%s\"" (escape s))
  | List [] -> Buffer.add_string b "[]"
  | List items ->
      Buffer.add_string b "[";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ",";
          Buffer.add_string b "\n";
          Buffer.add_string b (pad (indent + 2));
          emit b ~indent:(indent + 2) x)
        items;
      Buffer.add_string b "\n";
      Buffer.add_string b (pad indent);
      Buffer.add_string b "]"
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
      Buffer.add_string b "{";
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_string b ",";
          Buffer.add_string b "\n";
          Buffer.add_string b (pad (indent + 2));
          Buffer.add_string b (Printf.sprintf "\"%s\": " (escape k));
          emit b ~indent:(indent + 2) x)
        fields;
      Buffer.add_string b "\n";
      Buffer.add_string b (pad indent);
      Buffer.add_string b "}"

let rec emit_compact b v =
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (string_of_bool x)
  | Int x -> Buffer.add_string b (string_of_int x)
  | Float x -> Buffer.add_string b (float_repr x)
  | Str s -> Buffer.add_string b (Printf.sprintf "\"%s\"" (escape s))
  | List items ->
      Buffer.add_string b "[";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ",";
          emit_compact b x)
        items;
      Buffer.add_string b "]"
  | Obj fields ->
      Buffer.add_string b "{";
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_string b ",";
          Buffer.add_string b (Printf.sprintf "\"%s\":" (escape k));
          emit_compact b x)
        fields;
      Buffer.add_string b "}"

let to_string ?(compact = false) v =
  let b = Buffer.create 4096 in
  if compact then emit_compact b v
  else begin
    emit b ~indent:0 v;
    Buffer.add_string b "\n"
  end;
  Buffer.contents b

(* write-temp-then-rename: a signal or crash mid-emit must never leave a
   torn BENCH/telemetry/report JSON file on disk *)
let write ~path v = Journal.write_atomic ~path (to_string v)

(* --- parser --- *)

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char b '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char b '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char b '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
          | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
          | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
          | Some 'b' -> Buffer.add_char b '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char b '\012'; advance (); go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 128 -> Buffer.add_char b (Char.chr code)
              | Some _ ->
                  (* outside the subset we emit; keep the escape verbatim *)
                  Buffer.add_string b ("\\u" ^ hex)
              | None -> fail "bad \\u escape");
              pos := !pos + 4;
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing characters";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors --- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_str_opt = function Str s -> Some s | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
