type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Shortest decimal representation that parses back to exactly [x]: try
   15, 16, then 17 significant digits (17 always round-trips a double).
   The old [%.9g] truncated — an emit->parse round trip silently moved
   estimates by up to ~1e-9 relative, fatal for a wire protocol whose
   warm-cache answers must be byte-identical to cold ones. A repr that
   reads back as an integer gets ".0" appended so [Float] survives the
   [parse] type split (["1"] would come back as [Int 1]). *)
let float_repr x =
  if not (Float.is_finite x) then "null"
  else begin
    let bits = Int64.bits_of_float x in
    let rec shortest p =
      let s = Printf.sprintf "%.*g" p x in
      if p >= 17 || Int64.bits_of_float (float_of_string s) = bits then s
      else shortest (p + 1)
    in
    let s = shortest 15 in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"
  end

(* Pretty-printing matches the historical bench/json_out.ml format exactly,
   so regenerating a committed BENCH_*.json produces byte-stable diffs. *)
let rec emit b ~indent v =
  let pad n = String.make n ' ' in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (string_of_bool x)
  | Int x -> Buffer.add_string b (string_of_int x)
  | Float x -> Buffer.add_string b (float_repr x)
  | Str s -> Buffer.add_string b (Printf.sprintf "\"%s\"" (escape s))
  | List [] -> Buffer.add_string b "[]"
  | List items ->
      Buffer.add_string b "[";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ",";
          Buffer.add_string b "\n";
          Buffer.add_string b (pad (indent + 2));
          emit b ~indent:(indent + 2) x)
        items;
      Buffer.add_string b "\n";
      Buffer.add_string b (pad indent);
      Buffer.add_string b "]"
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
      Buffer.add_string b "{";
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_string b ",";
          Buffer.add_string b "\n";
          Buffer.add_string b (pad (indent + 2));
          Buffer.add_string b (Printf.sprintf "\"%s\": " (escape k));
          emit b ~indent:(indent + 2) x)
        fields;
      Buffer.add_string b "\n";
      Buffer.add_string b (pad indent);
      Buffer.add_string b "}"

let rec emit_compact b v =
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (string_of_bool x)
  | Int x -> Buffer.add_string b (string_of_int x)
  | Float x -> Buffer.add_string b (float_repr x)
  | Str s -> Buffer.add_string b (Printf.sprintf "\"%s\"" (escape s))
  | List items ->
      Buffer.add_string b "[";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ",";
          emit_compact b x)
        items;
      Buffer.add_string b "]"
  | Obj fields ->
      Buffer.add_string b "{";
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_string b ",";
          Buffer.add_string b (Printf.sprintf "\"%s\":" (escape k));
          emit_compact b x)
        fields;
      Buffer.add_string b "}"

let to_string ?(compact = false) v =
  let b = Buffer.create 4096 in
  if compact then emit_compact b v
  else begin
    emit b ~indent:0 v;
    Buffer.add_string b "\n"
  end;
  Buffer.contents b

(* write-temp-then-rename: a signal or crash mid-emit must never leave a
   torn BENCH/telemetry/report JSON file on disk *)
let write ~path v = Journal.write_atomic ~path (to_string v)

(* --- parser --- *)

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char b '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char b '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char b '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
          | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
          | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
          | Some 'b' -> Buffer.add_char b '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char b '\012'; advance (); go ()
          | Some 'u' ->
              advance ();
              (* exactly 4 hex digits, checked character-by-character:
                 [int_of_string "0x..."] also accepts OCaml numeric-literal
                 underscores, so "\u0_41" used to slip through as 'A' *)
              let hex4 () =
                if !pos + 4 > n then fail "truncated \\u escape";
                let v = ref 0 in
                for i = !pos to !pos + 3 do
                  let d =
                    match s.[i] with
                    | '0' .. '9' as c -> Char.code c - Char.code '0'
                    | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
                    | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
                    | _ -> fail "bad \\u escape"
                  in
                  v := (!v * 16) + d
                done;
                pos := !pos + 4;
                !v
              in
              let code = hex4 () in
              (* surrogate pairs combine into one astral code point; a lone
                 surrogate has no UTF-8 encoding and is rejected *)
              let code =
                if code >= 0xD800 && code <= 0xDBFF then begin
                  if
                    not
                      (!pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u')
                  then fail "unpaired high surrogate";
                  pos := !pos + 2;
                  let lo = hex4 () in
                  if lo < 0xDC00 || lo > 0xDFFF then
                    fail "unpaired high surrogate";
                  0x10000 + ((code - 0xD800) lsl 10) + (lo - 0xDC00)
                end
                else if code >= 0xDC00 && code <= 0xDFFF then
                  fail "unpaired low surrogate"
                else code
              in
              (* decode to UTF-8 so parse∘emit round-trips: the emitter
                 writes raw UTF-8 and only escapes controls *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end
              else if code < 0x10000 then begin
                Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
                Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end;
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  (* strict JSON number grammar: optional '-', then "0" or a nonzero-led
     digit run, then optional fraction and exponent. [int_of_string] and
     [float_of_string] alone are too liberal — they accept OCaml-isms
     like leading zeros ("01"), underscores ("1_0"), a leading '+', and
     hex, none of which any JSON peer would emit, and all of which would
     mask corruption on the wire. *)
  let check_number_grammar tok =
    let n = String.length tok in
    let p = ref 0 in
    let digits () =
      let start = !p in
      while !p < n && (match tok.[!p] with '0' .. '9' -> true | _ -> false) do
        incr p
      done;
      !p > start
    in
    let ok =
      n > 0
      && begin
           if tok.[0] = '-' then incr p;
           (* int part: "0" alone, or a nonzero-led digit run *)
           (!p < n
           &&
           match tok.[!p] with
           | '0' ->
               incr p;
               true
           | '1' .. '9' -> digits ()
           | _ -> false)
           && (if !p < n && tok.[!p] = '.' then begin
                 incr p;
                 digits ()
               end
               else true)
           &&
           if !p < n && (tok.[!p] = 'e' || tok.[!p] = 'E') then begin
             incr p;
             if !p < n && (tok.[!p] = '+' || tok.[!p] = '-') then incr p;
             digits ()
           end
           else true
         end
    in
    if not ok || !p <> n then fail "bad number"
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    check_number_grammar tok;
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          (* grammar-valid but beyond native int range: widen to float *)
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing characters";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors --- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_str_opt = function Str s -> Some s | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
