type point = Gate_eval | Trace_sample | Domain_kill | Bdd_blowup

let all_points = [ Gate_eval; Trace_sample; Domain_kill; Bdd_blowup ]

let point_name = function
  | Gate_eval -> "gate-eval"
  | Trace_sample -> "trace-sample"
  | Domain_kill -> "domain-kill"
  | Bdd_blowup -> "bdd-blowup"

let index = function
  | Gate_eval -> 0
  | Trace_sample -> 1
  | Domain_kill -> 2
  | Bdd_blowup -> 3

let npoints = 4

type config = { mask : int; rate : float; seed : int }

let config = Atomic.make { mask = 0; rate = 0.0; seed = 0 }

(* draw counters are atomic so worker domains draw concurrently; each draw
   takes a unique sequence number, so the multiset of decisions depends
   only on (seed, rate, draw count), never on domain scheduling *)
let draws = Array.init npoints (fun _ -> Atomic.make 0)
let fires = Array.init npoints (fun _ -> Atomic.make 0)

let configure ?(seed = 0) ?(rate = 0.05) points =
  if not (Float.is_finite rate) || rate < 0.0 || rate > 1.0 then
    raise (Err.invalid_input ~what:"Faultinject.configure: rate" "must be in [0, 1]");
  Array.iter (fun a -> Atomic.set a 0) draws;
  Array.iter (fun a -> Atomic.set a 0) fires;
  let mask = List.fold_left (fun m p -> m lor (1 lsl index p)) 0 points in
  Atomic.set config { mask; rate; seed }

let disarm () = Atomic.set config { mask = 0; rate = 0.0; seed = 0 }

let enabled () = (Atomic.get config).mask <> 0
let armed p = (Atomic.get config).mask land (1 lsl index p) <> 0

(* splitmix64 finalizer: an independent uniform decision per draw *)
let decision ~seed ~point ~n =
  let z = ref (Int64.of_int ((seed * 0x9E3779B9) lxor (point * 0x85EBCA6B) lxor n)) in
  z := Int64.mul (Int64.logxor !z (Int64.shift_right_logical !z 30)) 0xBF58476D1CE4E5B9L;
  z := Int64.mul (Int64.logxor !z (Int64.shift_right_logical !z 27)) 0x94D049BB133111EBL;
  z := Int64.logxor !z (Int64.shift_right_logical !z 31);
  Int64.to_float (Int64.shift_right_logical !z 11) *. (1.0 /. 9007199254740992.0)

let fire p =
  let c = Atomic.get config in
  c.mask land (1 lsl index p) <> 0
  &&
  let i = index p in
  let n = Atomic.fetch_and_add draws.(i) 1 in
  let hit = decision ~seed:c.seed ~point:i ~n < c.rate in
  if hit then Atomic.incr fires.(i);
  hit

let fired p = Atomic.get fires.(index p)

let injected_exn p = Failure (Printf.sprintf "fault injected: %s" (point_name p))

let trip p = if fire p then raise (injected_exn p)

let with_faults ?seed ?rate points f =
  configure ?seed ?rate points;
  Fun.protect ~finally:disarm f
