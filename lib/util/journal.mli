(** Crash-safe durability primitives: an append-only write-ahead journal
    and atomic snapshot files.

    Long-running estimation jobs (Monte Carlo campaigns over many design
    points) must survive process death: a SIGKILLed run resumed from its
    journal has to produce the byte-identical estimate an uninterrupted
    run would have. The journal provides the storage half of that
    contract; {!Hlp_power.Probprop} provides the replay half.

    {2 Record framing}

    Each record is framed as an 8-byte header plus the payload:
    [4-byte little-endian payload length | 4-byte little-endian CRC32 of
    the payload | payload bytes]. Appends issue one [write] per record, so
    a crash can tear at most the final record.

    {2 Recovery discipline}

    {!recover} scans from the start and accepts records until the first
    frame that does not check out — a truncated header, a length that
    runs past end-of-file, or a CRC mismatch. Everything from that point
    on is the {e torn tail}: the standard WAL rule is that a bad frame
    makes every later byte untrustworthy, so the tail is dropped (and
    reported), never partially believed. Recovery therefore {e always}
    succeeds and always yields a prefix of the appended records, no
    matter where the file was cut.

    {2 Sync discipline}

    [append] hands the record to the kernel immediately (it survives
    process death), {!sync} additionally [fsync]s (it survives power
    loss). Writers group-commit: sync every few records, and always on
    {!close}. Snapshots ({!write_atomic}) are written to a temp file,
    fsynced, and [rename]d over the target, so a concurrent reader (or a
    crash mid-write) sees either the old complete file or the new
    complete file — never a torn one. *)

val crc32 : string -> int32
(** CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) of the whole
    string — the per-record checksum of the frame format. *)

val frame : string -> string
(** One record in the journal's wire format: [4B LE length]
    [4B LE crc32(payload)][payload]. Exposed so snapshot writers can
    build a CRC-framed record stream in memory (concatenated frames are
    exactly what {!recover} reads back) and hand it to {!write_atomic}
    in one piece — per-record CRCs turn any bit flip in a snapshot into
    a loud truncation at recovery, never silently different bytes. *)

type t
(** An open journal, positioned for appending. *)

type recovery = {
  records : string list;  (** accepted payloads, in append order *)
  valid_bytes : int;  (** bytes of well-formed prefix *)
  torn_bytes : int;  (** bytes dropped after the last valid record *)
}

val recover : string -> recovery
(** Scan [path] and return every record of its longest well-formed
    prefix. A missing file recovers as zero records. Never raises on
    torn or corrupt content (that is the point); raises [Sys_error] only
    on I/O errors such as unreadable permissions. *)

val open_ : ?resume:bool -> string -> t * string list
(** [open_ ~resume path] opens [path] for appending and returns the
    recovered records. With [resume = true] (default [false]) the file
    is first truncated to its valid prefix (discarding any torn tail) and
    the surviving records are returned; with [resume = false] the file
    is truncated to empty and the record list is [[]]. Parent directories
    must exist. *)

val append : t -> string -> unit
(** Frame and append one record with a single [write]. The data reaches
    the kernel before [append] returns (survives a SIGKILL of this
    process); call {!sync} to also survive power loss. *)

val sync : t -> unit
(** [fsync] the journal file. *)

val close : t -> unit
(** {!sync} then close the descriptor. Idempotent. *)

val path : t -> string

val appended : t -> int
(** Records appended through this handle (excludes recovered ones). *)

(** {1 Atomic snapshot files} *)

val write_atomic : path:string -> string -> unit
(** Write [contents] to a unique temp file next to [path], [fsync] it,
    and [rename] it over [path] (then best-effort [fsync] the directory,
    so the rename itself survives power loss). A reader or a crash at
    any point sees either the previous file or the new one, never a torn
    mixture — the discipline every JSON artifact writer in the toolkit
    uses ({!Json.write}, {!Trace.write}, the CLI report emitters). *)

(** {1 Line-oriented logs}

    Newline-framed sibling of the CRC-framed journal, for logs meant to
    be read with [grep]/[jq] rather than replayed — the serve access log.
    Appends share the journal's one-[write]-per-record discipline (a
    crash tears at most the final line; line-oriented readers skip it
    naturally) and the mutex makes concurrent appends from worker domains
    atomic with respect to rotation. *)

module Lines : sig
  type t

  val open_ : ?max_bytes:int -> string -> t
  (** Open [path] for appending (created if absent, never truncated —
      reopening continues where the last process stopped). [max_bytes]
      (default 16 MiB, must be positive) bounds the live file: an append
      that would cross the bound first renames the live file to
      {!rotated}[ path] (clobbering the previous rotation), so the log
      occupies at most ~2×[max_bytes] on disk. *)

  val append : t -> string -> unit
  (** Append one line ([line] must not contain ['\n']; the newline is
      added). One [write] per line; thread-safe. *)

  val sync : t -> unit

  val close : t -> unit
  (** {!sync} then close. Idempotent. *)

  val path : t -> string

  val rotated : string -> string
  (** Where rotation puts the previous generation ([path ^ ".1"]). *)
end
