type token = { flag : bool Atomic.t; name : string }

let token ?(name = "token") () = { flag = Atomic.make false; name }
let cancel tk = Atomic.set tk.flag true
let is_cancelled tk = Atomic.get tk.flag

type t = {
  deadline_s : float option;  (* elapsed-time budget, relative to [start] *)
  start : float;  (* monotonic (Clock.now_s) at creation *)
  tok : token option;
}

let tel_deadline_trips = Telemetry.counter "guard.deadline_trips"
let tel_cancel_trips = Telemetry.counter "guard.cancel_trips"

let create ?deadline_s ?token () =
  (match deadline_s with
  | Some d when not (Float.is_finite d) || d < 0.0 ->
      raise (Err.invalid_input ~what:"Guard.create: deadline_s"
               "must be a finite non-negative number of seconds")
  | _ -> ());
  (* monotonic, not gettimeofday: an NTP step during the run must not
     consume (or extend) the budget *)
  { deadline_s; start = Clock.now_s (); tok = token }

let unlimited = { deadline_s = None; start = 0.0; tok = None }

let elapsed_s g = Clock.now_s () -. g.start

let remaining_s g =
  Option.map (fun limit -> limit -. elapsed_s g) g.deadline_s

let check ?(where = "guard") g =
  (match g.tok with
  | Some tk when is_cancelled tk ->
      Telemetry.incr tel_cancel_trips;
      raise (Err.Error (Err.Cancelled { where = Printf.sprintf "%s (%s)" tk.name where }))
  | _ -> ());
  match g.deadline_s with
  | Some limit_s ->
      let elapsed_s = elapsed_s g in
      (* >=, so a zero budget trips at the very first check even when the
         clock has not visibly advanced between [create] and [check] *)
      if elapsed_s >= limit_s then begin
        Telemetry.incr tel_deadline_trips;
        raise (Err.Error (Err.Deadline_exceeded { limit_s; elapsed_s }))
      end
  | None -> ()

let expired g =
  match Err.protect (fun () -> check g) with Ok () -> false | Error _ -> true

let run g f =
  Err.protect (fun () ->
      check ~where:"start" g;
      f g)
