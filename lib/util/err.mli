(** Typed error taxonomy for every failure the toolkit can degrade into.

    The paper's central practical tension — exact symbolic estimation is
    precise but blows up unpredictably, sampling is the robust fallback —
    only becomes an engineering property if resource exhaustion is a
    {e value}, not a crash. Every library path reachable from user input
    reports failures as one of these classes (raised as {!Error} on
    exception paths, or carried in a [result] by the [*_checked] /
    [*_guarded] entry points); raw [failwith]/[assert] remains only for
    programming errors that no input can trigger.

    Each class has a stable CLI exit code ({!exit_code}), so scripted
    callers can distinguish "the input was bad" from "the budget was too
    small" without parsing stderr. *)

type t =
  | Invalid_input of { what : string; why : string }
      (** A caller-supplied value (trace, array, width, flag) is unusable. *)
  | Budget_exceeded of { budget : string; limit : int; used : int }
      (** A resource budget tripped (e.g. [budget = "bdd.nodes"]). Budgets
          are checked before the resource is consumed, so the holder of the
          budget (e.g. a {!Bdd} manager) remains consistent and usable. *)
  | Deadline_exceeded of { limit_s : float; elapsed_s : float }
      (** A {!Guard} wall-clock deadline passed. *)
  | Cancelled of { where : string }
      (** A {!Guard} cancellation token was triggered. *)
  | Worker_failure of { shard : int; attempts : int; why : string }
      (** A parallel shard kept failing after bounded retries
          ({!Hlp_sim.Parsim}); [why] is the printed original exception. *)
  | Overloaded of { queue : string; budget : int; pending : int }
      (** Admission control shed the work: accepting it would have pushed
          [queue] past its [budget] ({!Supervisor}'s load shedding). The
          caller should retry later or against another instance — unlike
          [Budget_exceeded] this says nothing about the work itself. *)

exception Error of t
(** The one exception library code raises for user-triggerable failures.
    Registered with [Printexc] so stray escapes still print usefully. *)

val invalid_input : what:string -> string -> exn
(** [invalid_input ~what why] is [Error (Invalid_input _)], for [raise]. *)

val budget_exceeded : budget:string -> limit:int -> used:int -> exn

val to_string : t -> string

val class_name : t -> string
(** Short stable identifier of the class (e.g. ["budget-exceeded"]). *)

val exit_code : t -> int
(** Stable process exit code per class: invalid-input 65, budget-exceeded
    66, deadline-exceeded 67, cancelled 68, worker-failure 69,
    overloaded 70. The table is append-only (pinned by the exit-code
    stability test); signal exits use the shell convention 128+signum
    (SIGINT 130, SIGTERM 143) at the CLI layer, never these codes. *)

val protect : (unit -> 'a) -> ('a, t) result
(** Run a thunk, catching exactly {!Error} (other exceptions — programming
    errors — still escape). *)
