(** One JSON representation for every machine-readable artifact the
    toolkit emits — telemetry dumps, Chrome trace exports, run-provenance
    reports, and the bench [BENCH_*.json] snapshots — plus a minimal
    parser so tests and the bench regression gate can read those
    artifacts back without an external dependency.

    The emitter mirrors what the artifacts need and nothing more: UTF-8
    strings pass through untouched (only quotes, backslashes, and control
    characters are escaped), finite floats print in shortest round-trip
    form (the fewest significant digits that parse back to the identical
    bit pattern), and non-finite floats become [null] (JSON has no
    NaN/infinity). Since the serve wire protocol carries estimates as
    frames, [parse] ∘ [to_string] is the identity on every value this
    module can emit. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** Body of a JSON string literal (no surrounding quotes). *)

val float_repr : float -> string
(** Shortest decimal string that reads back (via [float_of_string]) to
    the exact same bits — tries 15, 16, then 17 significant digits.
    Integer-looking output gains a [".0"] suffix so the value survives
    [parse]'s [Int]/[Float] split. ["null"] for non-finite floats. *)

val to_string : ?compact:bool -> t -> string
(** Serialize. Default is pretty-printed with two-space indent and a
    trailing newline (the committed-artifact format); [~compact:true]
    emits a single line with no spaces (the telemetry/trace format). *)

val write : path:string -> t -> unit
(** Pretty-print to a file. *)

val parse : string -> (t, string) result
(** Recursive-descent parser for standard JSON. Numbers with a ['.'],
    ['e'], or ['E'] parse as [Float], others as [Int] (widening to
    [Float] past native-int range); the number grammar is strict JSON —
    leading zeros ([01]), a leading [+], and OCaml numeric-literal
    underscores are rejected. [\uXXXX] escapes require exactly 4 hex
    digits and decode to UTF-8 bytes, combining surrogate pairs into
    astral code points (lone surrogates are an error). Used for reading
    back our own artifacts and for the serve wire protocol. *)

(** {1 Accessors} — tiny helpers for picking results apart in tests and
    the bench regression gate. Each returns [None] on a type or key
    mismatch. *)

val member : string -> t -> t option
val to_float_opt : t -> float option
(** [Int]s widen to float. *)

val to_int_opt : t -> int option
val to_str_opt : t -> string option
val to_list_opt : t -> t list option
