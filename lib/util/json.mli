(** One JSON representation for every machine-readable artifact the
    toolkit emits — telemetry dumps, Chrome trace exports, run-provenance
    reports, and the bench [BENCH_*.json] snapshots — plus a minimal
    parser so tests and the bench regression gate can read those
    artifacts back without an external dependency.

    The emitter mirrors what the artifacts need and nothing more: UTF-8
    strings pass through untouched (only quotes, backslashes, and control
    characters are escaped), finite floats print as [%.9g], and non-finite
    floats become [null] (JSON has no NaN/infinity). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** Body of a JSON string literal (no surrounding quotes). *)

val float_repr : float -> string
(** [%.9g] for finite floats, ["null"] otherwise. *)

val to_string : ?compact:bool -> t -> string
(** Serialize. Default is pretty-printed with two-space indent and a
    trailing newline (the committed-artifact format); [~compact:true]
    emits a single line with no spaces (the telemetry/trace format). *)

val write : path:string -> t -> unit
(** Pretty-print to a file. *)

val parse : string -> (t, string) result
(** Minimal recursive-descent parser for the subset this module emits
    (standard JSON; numbers with a ['.'], ['e'], or ['E'] parse as
    [Float], others as [Int]; no unicode unescaping beyond [\uXXXX] for
    code points below 128). Intended for reading back our own artifacts,
    not arbitrary hostile input. *)

(** {1 Accessors} — tiny helpers for picking results apart in tests and
    the bench regression gate. Each returns [None] on a type or key
    mismatch. *)

val member : string -> t -> t option
val to_float_opt : t -> float option
(** [Int]s widen to float. *)

val to_int_opt : t -> int option
val to_str_opt : t -> string option
val to_list_opt : t -> t list option
