type t =
  | Leaf of bool
  | Node of { id : int; var : int; low : t; high : t }

let ident = function Leaf false -> 0 | Leaf true -> 1 | Node { id; _ } -> id

type man = {
  unique : (int * int * int, t) Hashtbl.t;  (* (var, low id, high id) *)
  ite_cache : (int * int * int, t) Hashtbl.t;
  mutable next_id : int;
  limit : int;  (* node budget; max_int = unlimited *)
}

let tel_budget_trips = Hlp_util.Telemetry.counter "bdd.budget_trips"

let manager ?(cache_size = 1 lsl 14) ?node_limit () =
  let limit =
    match node_limit with
    | None -> max_int
    | Some l when l > 0 -> l
    | Some _ ->
        raise (Hlp_util.Err.invalid_input ~what:"Bdd.manager: node_limit"
                 "must be positive")
  in
  { unique = Hashtbl.create cache_size;
    ite_cache = Hashtbl.create cache_size;
    next_id = 2;
    limit }

let node_limit m = if m.limit = max_int then None else Some m.limit

let zero _ = Leaf false
let one _ = Leaf true

let top_var = function
  | Leaf _ -> max_int
  | Node { var; _ } -> var

(* The budget is enforced on the only node-creating path, before the node
   is inserted and before [next_id] advances: a tripped manager holds
   exactly the nodes it held at the trip, its unique table is canonical,
   and it remains usable for smaller functions afterwards. The
   fault-injection hook raises the same typed error as a real blowup. *)
let budget_check m =
  let used = Hashtbl.length m.unique in
  if used >= m.limit then begin
    Hlp_util.Telemetry.incr tel_budget_trips;
    raise (Hlp_util.Err.budget_exceeded ~budget:"bdd.nodes" ~limit:m.limit ~used)
  end;
  if Hlp_util.Faultinject.fire Hlp_util.Faultinject.Bdd_blowup then begin
    Hlp_util.Telemetry.incr tel_budget_trips;
    raise
      (Hlp_util.Err.budget_exceeded ~budget:"bdd.nodes(injected)" ~limit:m.limit
         ~used)
  end

let mk m var low high =
  if ident low = ident high then low
  else begin
    let key = (var, ident low, ident high) in
    match Hashtbl.find_opt m.unique key with
    | Some n -> n
    | None ->
        budget_check m;
        let n = Node { id = m.next_id; var; low; high } in
        m.next_id <- m.next_id + 1;
        Hashtbl.add m.unique key n;
        n
  end

let var m i =
  assert (i >= 0);
  mk m i (Leaf false) (Leaf true)

let nvar m i =
  assert (i >= 0);
  mk m i (Leaf true) (Leaf false)

let cof v node =
  match node with
  | Node { var; low; high; _ } when var = v -> (low, high)
  | _ -> (node, node)

let rec ite m f g h =
  match f with
  | Leaf true -> g
  | Leaf false -> h
  | Node _ ->
      if ident g = ident h then g
      else if ident g = 1 && ident h = 0 then f
      else begin
        let key = (ident f, ident g, ident h) in
        match Hashtbl.find_opt m.ite_cache key with
        | Some r -> r
        | None ->
            let v = min (top_var f) (min (top_var g) (top_var h)) in
            let f0, f1 = cof v f and g0, g1 = cof v g and h0, h1 = cof v h in
            let low = ite m f0 g0 h0 and high = ite m f1 g1 h1 in
            let r = mk m v low high in
            Hashtbl.add m.ite_cache key r;
            r
      end

let not_ m f = ite m f (Leaf false) (Leaf true)
let and_ m f g = ite m f g (Leaf false)
let or_ m f g = ite m f (Leaf true) g
let xor_ m f g = ite m f (not_ m g) g
let xnor_ m f g = ite m f g (not_ m g)
let imp m f g = ite m f g (Leaf true)

let conj m = List.fold_left (and_ m) (Leaf true)
let disj m = List.fold_left (or_ m) (Leaf false)

let equal a b = ident a = ident b
let is_zero f = ident f = 0
let is_one f = ident f = 1

let rec cofactor m f ~var:v value =
  match f with
  | Leaf _ -> f
  | Node { var; low; high; _ } ->
      if var > v then f
      else if var = v then if value then high else low
      else
        let l = cofactor m low ~var:v value
        and h = cofactor m high ~var:v value in
        mk m var l h

let node_count m = Hashtbl.length m.unique

let quantify combine m vars f =
  (* top-level span only (one per quantification, not per variable): the
     node-count argument is read at span begin, so a blowup shows as a
     long span starting from a small table *)
  Hlp_util.Trace.span
    ~args:(fun () ->
      [ ("vars", Hlp_util.Json.Int (List.length vars));
        ("nodes", Hlp_util.Json.Int (node_count m)) ])
    "bdd.quantify"
  @@ fun () ->
  let vars = List.sort_uniq compare vars in
  List.fold_left
    (fun acc v ->
      let l = cofactor m acc ~var:v false and h = cofactor m acc ~var:v true in
      combine m l h)
    f vars

let exists m vars f = quantify or_ m vars f
let forall m vars f = quantify and_ m vars f

(* Substitution must rebuild with ite on the branch variable because [g] may
   contain variables ordered above the branch point. *)
let rec compose m f ~var:v g =
  match f with
  | Leaf _ -> f
  | Node { var = fv; low; high; _ } ->
      if fv > v then f
      else if fv = v then ite m g high low
      else
        let l = compose m low ~var:v g and h = compose m high ~var:v g in
        ite m (var m fv) h l

(* spanned shadow of the recursive worker above: one span per top-level
   substitution, never per recursion step *)
let compose m f ~var g =
  Hlp_util.Trace.span
    ~args:(fun () -> [ ("nodes", Hlp_util.Json.Int (node_count m)) ])
    "bdd.compose"
    (fun () -> compose m f ~var g)

let rename m map f =
  let memo = Hashtbl.create 64 in
  let rec go f =
    match f with
    | Leaf _ -> f
    | Node { id; var; low; high } -> (
        match Hashtbl.find_opt memo id with
        | Some r -> r
        | None ->
            let v' = map var in
            let l = go low and h = go high in
            (match l, h with
            | Node { var = lv; _ }, _ when lv <= v' ->
                invalid_arg "Bdd.rename: map is not monotone"
            | _, Node { var = hv; _ } when hv <= v' ->
                invalid_arg "Bdd.rename: map is not monotone"
            | _ -> ());
            let r = mk m v' l h in
            Hashtbl.add memo id r;
            r)
  in
  go f

let support f =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go = function
    | Leaf _ -> ()
    | Node { id; var; low; high } ->
        if not (Hashtbl.mem seen id) then begin
          Hashtbl.add seen id ();
          Hashtbl.replace vars var ();
          go low;
          go high
        end
  in
  go f;
  List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

let fold f ~leaf ~node =
  let memo = Hashtbl.create 64 in
  let rec go = function
    | Leaf b -> leaf b
    | Node { id; var; low; high } -> (
        match Hashtbl.find_opt memo id with
        | Some r -> r
        | None ->
            let r = node var (go low) (go high) in
            Hashtbl.add memo id r;
            r)
  in
  go f

let size_shared roots =
  let seen = Hashtbl.create 64 in
  let count = ref 0 in
  let rec go = function
    | Leaf _ -> ()
    | Node { id; low; high; _ } ->
        if not (Hashtbl.mem seen id) then begin
          Hashtbl.add seen id ();
          incr count;
          go low;
          go high
        end
  in
  List.iter go roots;
  !count

let size f = size_shared [ f ]

let probability _m ~p f =
  let memo = Hashtbl.create 64 in
  let rec go = function
    | Leaf false -> 0.0
    | Leaf true -> 1.0
    | Node { id; var; low; high } -> (
        match Hashtbl.find_opt memo id with
        | Some x -> x
        | None ->
            let pv = p var in
            let x = ((1.0 -. pv) *. go low) +. (pv *. go high) in
            Hashtbl.add memo id x;
            x)
  in
  go f

let count_sat ~nvars f =
  probability (manager ()) ~p:(fun _ -> 0.5) f *. (2.0 ** float_of_int nvars)

let rec eval f assign =
  match f with
  | Leaf b -> b
  | Node { var; low; high; _ } -> eval (if assign var then high else low) assign

let pick_sat f =
  let rec go acc = function
    | Leaf true -> Some (List.rev acc)
    | Leaf false -> None
    | Node { var; low; high; _ } -> (
        match go ((var, false) :: acc) low with
        | Some r -> Some r
        | None -> go ((var, true) :: acc) high)
  in
  go [] f

let of_netlist_all ?(order = fun k -> k) ?override m (net : Hlp_logic.Netlist.t) =
  Hlp_util.Trace.span
    ~args:(fun () ->
      [ ("gates", Hlp_util.Json.Int (Hlp_logic.Netlist.num_nodes net));
        ("nodes_before", Hlp_util.Json.Int (node_count m)) ])
    "bdd.of_netlist_all"
  @@ fun () ->
  let open Hlp_logic in
  let n = Netlist.num_nodes net in
  let funcs = Array.make n (Leaf false) in
  let apply_override i f =
    match override with
    | Some (w, g) when w = i -> g f
    | _ -> f
  in
  (* primary input k -> variable (order k); dff j -> variable (#inputs + j) *)
  Array.iteri (fun k w -> funcs.(w) <- apply_override w (var m (order k))) net.Netlist.inputs;
  let base = Array.length net.Netlist.inputs in
  Array.iteri (fun j w -> funcs.(w) <- var m (base + j)) net.Netlist.dffs;
  Array.iteri
    (fun i (node : Netlist.node) ->
      (match node.Netlist.kind with
      | Gate.Input | Gate.Dff -> ()
      | Gate.Const b -> funcs.(i) <- Leaf b
      | Gate.Buf -> funcs.(i) <- funcs.(node.Netlist.fanin.(0))
      | Gate.Not -> funcs.(i) <- not_ m funcs.(node.Netlist.fanin.(0))
      | Gate.And _ ->
          funcs.(i) <- conj m (Array.to_list (Array.map (fun w -> funcs.(w)) node.Netlist.fanin))
      | Gate.Or _ ->
          funcs.(i) <- disj m (Array.to_list (Array.map (fun w -> funcs.(w)) node.Netlist.fanin))
      | Gate.Nand _ ->
          funcs.(i) <-
            not_ m (conj m (Array.to_list (Array.map (fun w -> funcs.(w)) node.Netlist.fanin)))
      | Gate.Nor _ ->
          funcs.(i) <-
            not_ m (disj m (Array.to_list (Array.map (fun w -> funcs.(w)) node.Netlist.fanin)))
      | Gate.Xor ->
          funcs.(i) <- xor_ m funcs.(node.Netlist.fanin.(0)) funcs.(node.Netlist.fanin.(1))
      | Gate.Xnor ->
          funcs.(i) <- xnor_ m funcs.(node.Netlist.fanin.(0)) funcs.(node.Netlist.fanin.(1))
      | Gate.Mux ->
          funcs.(i) <-
            ite m
              funcs.(node.Netlist.fanin.(0))
              funcs.(node.Netlist.fanin.(2))
              funcs.(node.Netlist.fanin.(1)));
      match node.Netlist.kind with
      | Gate.Input -> ()
      | Gate.Const _ | Gate.Buf | Gate.Not | Gate.And _ | Gate.Or _ | Gate.Nand _
      | Gate.Nor _ | Gate.Xor | Gate.Xnor | Gate.Mux | Gate.Dff ->
          funcs.(i) <- apply_override i funcs.(i))
    net.Netlist.nodes;
  Hlp_util.Trace.instant
    ~args:(fun () -> [ ("nodes", Hlp_util.Json.Int (node_count m)) ])
    "bdd.nodes_after_build";
  funcs

let of_netlist ?order m net =
  let funcs = of_netlist_all ?order m net in
  Array.to_list
    (Array.map (fun (name, w) -> (name, funcs.(w))) net.Hlp_logic.Netlist.outputs)

let first_use_order (net : Hlp_logic.Netlist.t) =
  let open Hlp_logic in
  let n = Netlist.num_nodes net in
  let first_use = Array.make n max_int in
  Array.iteri
    (fun i (node : Netlist.node) ->
      Array.iter
        (fun w -> if first_use.(w) = max_int then first_use.(w) <- i)
        node.Netlist.fanin)
    net.Netlist.nodes;
  let ranked =
    Array.mapi (fun k w -> (first_use.(w), k)) net.Netlist.inputs
  in
  Array.sort compare ranked;
  let var_of = Array.make (Array.length net.Netlist.inputs) 0 in
  Array.iteri (fun rank (_, k) -> var_of.(k) <- rank) ranked;
  fun k -> var_of.(k)

