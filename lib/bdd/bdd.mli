(** Reduced ordered binary decision diagrams (Bryant 1986), hash-consed.

    This is the symbolic substrate the survey leans on for: the Ferrandi
    et al. total-capacitance model (node count of the circuit's BDD),
    observability don't-care computation for guarded evaluation,
    predictor-function synthesis for precomputation, and signal-probability
    evaluation for probabilistic power estimation.

    Nodes are managed by an explicit manager; all operands of a binary
    operation must come from the same manager. Variable order is the
    integer order of variable indices. *)

type man
(** BDD manager: unique table and operation caches. *)

type t
(** A BDD node (immutable, hash-consed). *)

val manager : ?cache_size:int -> ?node_limit:int -> unit -> man
(** [node_limit] is a budget on live unique-table nodes: any operation
    that would create a node past the limit raises the typed error
    [Hlp_util.Err.Error (Budget_exceeded {budget = "bdd.nodes"; _})]
    (checked in [mk], the single node-creating path shared by [ite] and
    every connective). The check happens {e before} insertion, so a
    tripped manager is never corrupted: its unique table stays canonical
    and it remains usable for functions that fit the budget — this is the
    mechanism {!Hlp_power.Probprop} uses to degrade from exact symbolic
    estimation to Monte Carlo sampling when a diagram blows up. Raises
    [Invalid_input] unless positive. Default: unlimited. *)

val node_limit : man -> int option
(** The configured budget, if any. *)

val zero : man -> t
val one : man -> t
val var : man -> int -> t
(** [var m i] is the function of variable [i]. Requires [i >= 0]. *)

val nvar : man -> int -> t
(** Complement of [var]. *)

val ite : man -> t -> t -> t -> t
(** If-then-else: [ite m f g h = f*g + f'*h]. All other connectives reduce
    to it. *)

val not_ : man -> t -> t
val and_ : man -> t -> t -> t
val or_ : man -> t -> t -> t
val xor_ : man -> t -> t -> t
val xnor_ : man -> t -> t -> t
val imp : man -> t -> t -> t
val conj : man -> t list -> t
val disj : man -> t list -> t

val equal : t -> t -> bool
(** Constant-time function equality (hash-consing canonicity). *)

val is_zero : t -> bool
val is_one : t -> bool

val cofactor : man -> t -> var:int -> bool -> t
(** Restrict a variable to a constant. *)

val exists : man -> int list -> t -> t
(** Existential quantification over a set of variables. *)

val forall : man -> int list -> t -> t
(** Universal quantification. *)

val compose : man -> t -> var:int -> t -> t
(** [compose m f ~var g] substitutes function [g] for variable [var] in [f]. *)

val rename : man -> (int -> int) -> t -> t
(** Variable renaming. The map must be strictly monotone on the function's
    support (it preserves the variable order), which makes renaming a
    linear-time relabeling — the standard next-state-to-present-state swap
    of symbolic reachability. *)

val support : t -> int list
(** Variables the function actually depends on, ascending. *)

val fold : t -> leaf:(bool -> 'a) -> node:(int -> 'a -> 'a -> 'a) -> 'a
(** Memoized bottom-up fold: [node var low_result high_result] is applied
    once per distinct internal node. The basis of structural consumers
    (mux-network synthesis, dot export) that must not re-expand shared
    subgraphs. *)

val size : t -> int
(** Number of distinct internal nodes reachable from this root (the [N] of
    the Ferrandi capacitance model, for a single output). *)

val size_shared : t list -> int
(** Distinct internal nodes across several roots (multi-output [N]). *)

val count_sat : nvars:int -> t -> float
(** Number of satisfying assignments over a space of [nvars] variables. *)

val probability : man -> p:(int -> float) -> t -> float
(** Satisfaction probability when variable [i] is true independently with
    probability [p i]: the signal-probability evaluation used by the
    probabilistic estimation techniques of Section II-C. *)

val eval : t -> (int -> bool) -> bool
(** Evaluate under a complete assignment. *)

val pick_sat : t -> (int * bool) list option
(** A partial assignment (variable, value) satisfying the function, or
    [None] if unsatisfiable. *)

val node_count : man -> int
(** Total live unique-table entries, for diagnostics. *)

(** {1 Circuits to BDDs} *)

val of_netlist : ?order:(int -> int) -> man -> Hlp_logic.Netlist.t -> (string * t) list
(** Build the global function of every primary output, with input [k] of the
    netlist mapped to BDD variable [order k] (default: identity). Flip-flop
    outputs are treated as free pseudo-inputs numbered after the primary
    inputs. Exponential in the worst case; intended for the module-sized
    circuits of the experiments. *)

val of_netlist_all :
  ?order:(int -> int) ->
  ?override:(int * (t -> t)) ->
  man ->
  Hlp_logic.Netlist.t ->
  t array
(** Per-node global functions for the entire netlist (same variable
    convention); index [i] is the function of node [i]. [override] rewrites
    the function of one node after it is computed ([(wire, transform)]) —
    the cut-point mechanism used for observability don't-care analysis. *)

val first_use_order : Hlp_logic.Netlist.t -> int -> int
(** Static variable-ordering heuristic: inputs are ranked by the id of the
    first gate consuming them, which interleaves the operand words of
    datapath blocks (ripple adders, comparators) and keeps their BDDs
    small — the standard trick BDD-based estimators depend on. *)
