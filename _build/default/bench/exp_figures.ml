(* Experiments E1-E9: the paper's table and figures. Each function prints
   the reproduced artifact; EXPERIMENTS.md records paper-vs-measured. *)

open Hlp_util

let fmt = Table.fmt_float

(* E1 / Table I: FIR switched capacitance by category, before and after
   constant-multiplication conversion. *)
let table1_fir () =
  let width = 12 in
  let before = Hlp_rtl.Fir.build ~width ~constant_mult:false () in
  let after = Hlp_rtl.Fir.build ~width ~constant_mult:true () in
  let tb = Hlp_rtl.Fir.measure ~cycles:300 before in
  let ta = Hlp_rtl.Fir.measure ~cycles:300 after in
  let row cat =
    let get t = List.find (fun r -> r.Hlp_rtl.Fir.category = cat) t.Hlp_rtl.Fir.rows in
    let b = get tb and a = get ta in
    [ Hlp_rtl.Fir.category_name cat;
      fmt b.Hlp_rtl.Fir.switched; Table.fmt_pct b.Hlp_rtl.Fir.share;
      fmt a.Hlp_rtl.Fir.switched; Table.fmt_pct a.Hlp_rtl.Fir.share ]
  in
  Table.print ~title:"E1 / Table I: 11-tap FIR capacitance (cap units/cycle)"
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "Component"; "before"; "% of total"; "after"; "% of total" ]
    (List.map row
       [ Hlp_rtl.Fir.Exec_units; Hlp_rtl.Fir.Registers_clock;
         Hlp_rtl.Fir.Control_logic; Hlp_rtl.Fir.Interconnect ]
    @ [ [ "Total"; fmt tb.Hlp_rtl.Fir.total; "100.0%"; fmt ta.Hlp_rtl.Fir.total; "100.0%" ] ]);
  Printf.printf "total reduction: %.2fx (paper: 2.65x; exec units %.1fx, paper 7.9x)\n\n"
    (tb.Hlp_rtl.Fir.total /. ta.Hlp_rtl.Fir.total)
    ((List.find (fun r -> r.Hlp_rtl.Fir.category = Hlp_rtl.Fir.Exec_units) tb.Hlp_rtl.Fir.rows)
       .Hlp_rtl.Fir.switched
    /. (List.find (fun r -> r.Hlp_rtl.Fir.category = Hlp_rtl.Fir.Exec_units) ta.Hlp_rtl.Fir.rows)
         .Hlp_rtl.Fir.switched)

(* E2 / Fig. 2: memory-access minimization. *)
let fig2_memory () =
  let n = 256 in
  let run (prog, mem) = Hlp_isa.Machine.run ~mem_init:mem prog in
  let rm = run (Hlp_isa.Programs.fig2_memory ~n) in
  let rr = run (Hlp_isa.Programs.fig2_register ~n) in
  assert (rm.Hlp_isa.Machine.regs.(7) = rr.Hlp_isa.Machine.regs.(7));
  let row name (r : Hlp_isa.Machine.result) =
    let c = r.Hlp_isa.Machine.counters in
    [ name;
      string_of_int (c.Hlp_isa.Machine.mem_reads + c.Hlp_isa.Machine.mem_writes);
      string_of_int c.Hlp_isa.Machine.cycles;
      fmt r.Hlp_isa.Machine.energy ]
  in
  Table.print ~title:"E2 / Fig. 2: memory-access minimization (n=256, same result)"
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right ]
    ~header:[ "version"; "memory accesses"; "cycles"; "energy" ]
    [ row "intermediate array in memory" rm; row "kept in register" rr ];
  Printf.printf "energy saving: %.1f%% (paper: eliminates 2n of 3n accesses)\n\n"
    (100.0 *. (1.0 -. (rr.Hlp_isa.Machine.energy /. rm.Hlp_isa.Machine.energy)))

(* E3 / Fig. 3 + Section III-B claims. *)
let fig3_shutdown () =
  let device = Hlp_pm.Policy.default_device in
  let sessions = Hlp_pm.Policy.workload ~sessions:20_000 (Prng.create 42) in
  let row p =
    let s = Hlp_pm.Policy.simulate device p sessions in
    [ Hlp_pm.Policy.policy_name p;
      Printf.sprintf "%.2fx" s.Hlp_pm.Policy.improvement;
      Table.fmt_pct s.Hlp_pm.Policy.delay_penalty;
      string_of_int s.Hlp_pm.Policy.shutdowns ]
  in
  Table.print ~title:"E3 / Fig. 3: shutdown policies (paper: predictive up to 38x, ~3% delay)"
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right ]
    ~header:[ "policy"; "power improvement"; "delay penalty"; "shutdowns" ]
    (List.map row
       [ Hlp_pm.Policy.Always_on; Hlp_pm.Policy.Timeout 20.0; Hlp_pm.Policy.Timeout 5.0;
         Hlp_pm.Policy.Threshold 1.0; Hlp_pm.Policy.Regression;
         Hlp_pm.Policy.Exp_average { alpha = 0.3; prewake = false };
         Hlp_pm.Policy.Exp_average { alpha = 0.3; prewake = true };
         Hlp_pm.Policy.Oracle ])

(* E31 (extension of E3): multi-depth shutdown — doze vs power-off. *)
let e31_multistate () =
  let d = Hlp_pm.Multistate.default_device in
  let sessions = Hlp_pm.Policy.workload ~sessions:20_000 (Prng.create 42) in
  let row p =
    let s = Hlp_pm.Multistate.simulate d p sessions in
    [ Hlp_pm.Multistate.policy_name p;
      Printf.sprintf "%.2fx" s.Hlp_pm.Multistate.improvement;
      Table.fmt_pct s.Hlp_pm.Multistate.delay_penalty;
      String.concat " "
        (List.map
           (fun (l, c) -> Printf.sprintf "%s:%d" l c)
           s.Hlp_pm.Multistate.depth_histogram) ]
  in
  Table.print
    ~title:"E31: multi-depth shutdown (doze 0.3/cheap-wake vs off 0.02/costly-wake)"
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Left ]
    ~header:[ "policy"; "improvement"; "delay"; "sleeps by depth" ]
    (List.map row
       [ Hlp_pm.Multistate.Deepest_only; Hlp_pm.Multistate.Predictive_depth 0.3;
         Hlp_pm.Multistate.Oracle_depth ])

(* E4/E5 / Figs. 4-5: polynomial restructuring; the last column is the
   quick-synthesis (Section II-B3) gate-level confirmation. *)
let poly_figures () =
  let row name g =
    let sched = Hlp_rtl.Schedule.asap g in
    let usage = Hlp_rtl.Schedule.resource_usage g sched in
    let get r = Option.value ~default:0 (List.assoc_opt r usage) in
    assert (Hlp_rtl.Quicksynth.functional_check g);
    [ name;
      string_of_int (Hlp_rtl.Transform.mul_count g);
      string_of_int (Hlp_rtl.Transform.add_sub_count g);
      string_of_int (Hlp_rtl.Cdfg.critical_path_ops g);
      string_of_int (get Hlp_rtl.Module_energy.Multiplier);
      string_of_int (get Hlp_rtl.Module_energy.Adder);
      fmt (Hlp_rtl.Schedule.energy g);
      fmt (Hlp_rtl.Quicksynth.simulate_capacitance ~cycles:400 g) ]
  in
  assert (Hlp_rtl.Transform.equivalent (Hlp_rtl.Cdfg.poly2_direct ()) (Hlp_rtl.Cdfg.poly2_horner ()));
  assert (Hlp_rtl.Transform.equivalent (Hlp_rtl.Cdfg.poly3_direct ()) (Hlp_rtl.Cdfg.poly3_horner ()));
  Table.print
    ~title:"E4-E5 / Figs. 4-5: polynomial evaluation restructuring (behaviour-preserving)"
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "implementation"; "mul ops"; "add ops"; "critical path"; "mult units"; "add units"; "table energy"; "quick-synth cap" ]
    [
      row "2nd order, direct" (Hlp_rtl.Cdfg.poly2_direct ());
      row "2nd order, factored" (Hlp_rtl.Cdfg.poly2_horner ());
      row "3rd order, direct" (Hlp_rtl.Cdfg.poly3_direct ());
      row "3rd order, factored" (Hlp_rtl.Cdfg.poly3_horner ());
    ];
  Printf.printf "paper: 2nd order 2A+2M/cp3 -> 2A+1M/cp3 (win); 3rd order 3A+4M/cp4 -> 3A+2M/cp5 (op/speed tradeoff)\n\n"

(* E6 / Fig. 6: precomputation. *)
let fig6_precompute () =
  let rows =
    List.map
      (fun n ->
        let net = Hlp_logic.Generators.comparator_circuit n in
        let plan =
          Hlp_optlogic.Precompute.analyze net ~output:"lt"
            ~subset:[ n - 1; (2 * n) - 1 ]
        in
        let ev = Hlp_optlogic.Precompute.evaluate ~cycles:1500 net ~output:"lt" plan in
        [ Printf.sprintf "%d-bit comparator, MSB pair" n;
          Table.fmt_pct plan.Hlp_optlogic.Precompute.shutdown_prob;
          string_of_int plan.Hlp_optlogic.Precompute.predictor_nodes;
          fmt ev.Hlp_optlogic.Precompute.baseline_cap;
          fmt ev.Hlp_optlogic.Precompute.managed_cap;
          Table.fmt_pct ev.Hlp_optlogic.Precompute.saving ])
      [ 6; 8; 10; 12 ]
  in
  Table.print ~title:"E6 / Fig. 6: precomputation (predict from the operand MSBs)"
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "block"; "shutdown prob"; "predictor nodes"; "base cap"; "managed cap"; "saving" ]
    rows

(* E7 / Fig. 7: gated clocks. *)
let fig7_gated_clock () =
  let rows =
    List.map
      (fun (label, stg, p) ->
        let ev = Hlp_optlogic.Gated_clock.evaluate ~input_one_prob:p stg in
        [ label;
          Table.fmt_pct ev.Hlp_optlogic.Gated_clock.idle_fraction;
          fmt ev.Hlp_optlogic.Gated_clock.normal_cap;
          fmt ev.Hlp_optlogic.Gated_clock.gated_cap;
          Table.fmt_pct ev.Hlp_optlogic.Gated_clock.saving ])
      [
        ("reactive 6+4, 3% requests", Hlp_fsm.Stg.reactive ~wait_states:6 ~burst_states:4, 0.03);
        ("reactive 6+4, 20% requests", Hlp_fsm.Stg.reactive ~wait_states:6 ~burst_states:4, 0.2);
        ("reactive 6+4, 50% requests", Hlp_fsm.Stg.reactive ~wait_states:6 ~burst_states:4, 0.5);
        ("counter, always enabled", Hlp_fsm.Stg.counter_fsm ~bits:4, 1.0);
      ]
  in
  Table.print ~title:"E7 / Fig. 7: gated clocks (saving tracks idleness)"
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "controller"; "idle cycles"; "normal cap"; "gated cap"; "saving" ]
    rows

(* E8 / Fig. 8: guarded evaluation. *)
let fig8_guard () =
  let rows =
    List.concat_map
      (fun n ->
        let net = Hlp_optlogic.Guard.demo_circuit n in
        match Hlp_optlogic.Guard.find_candidates net with
        | [] -> [ [ Printf.sprintf "%d-bit" n; "-"; "-"; "-"; "-" ] ]
        | best :: _ ->
            let ev = Hlp_optlogic.Guard.evaluate ~cycles:1500 net best in
            [ [ Printf.sprintf "%d-bit shared add/and datapath" n;
                Table.fmt_pct ev.Hlp_optlogic.Guard.frozen_fraction;
                fmt ev.Hlp_optlogic.Guard.baseline_cap;
                fmt ev.Hlp_optlogic.Guard.guarded_cap;
                Table.fmt_pct ev.Hlp_optlogic.Guard.saving ] ])
      [ 6; 8; 12; 16 ]
  in
  Table.print ~title:"E8 / Fig. 8: guarded evaluation (existing mux select as guard)"
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "circuit"; "frozen cycles"; "base cap"; "guarded cap"; "saving" ]
    rows

(* E9 / Fig. 9: low-power retiming. *)
let fig9_retime () =
  let net = Hlp_logic.Generators.multiplier_circuit 6 in
  let cuts = Hlp_optlogic.Retime.best_cut ~cycles:300 net ~max_depth:(Hlp_logic.Netlist.logic_depth net) in
  (* show a representative sweep *)
  let depth = Hlp_logic.Netlist.logic_depth net in
  let picks = [ 0; depth / 4; depth / 2; (3 * depth) / 4; depth ] in
  let rows =
    List.map
      (fun d ->
        let e = List.find (fun e -> e.Hlp_optlogic.Retime.depth = d) cuts in
        [ string_of_int e.Hlp_optlogic.Retime.depth;
          string_of_int e.Hlp_optlogic.Retime.registers;
          fmt e.Hlp_optlogic.Retime.total_cap;
          fmt e.Hlp_optlogic.Retime.glitch_cap ])
      (List.sort_uniq compare picks)
  in
  let best =
    List.fold_left
      (fun acc e ->
        if e.Hlp_optlogic.Retime.total_cap < acc.Hlp_optlogic.Retime.total_cap then e else acc)
      (List.hd cuts) cuts
  in
  Table.print ~title:"E9 / Fig. 9: pipeline register placement vs glitch power (6x6 multiplier)"
    ~align:[ Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "cut depth"; "registers"; "total cap/cycle"; "glitch cap/cycle" ]
    rows;
  Printf.printf "best cut: depth %d (registers placed after the glitchy array rows)\n\n"
    best.Hlp_optlogic.Retime.depth

let all () =
  table1_fir ();
  fig2_memory ();
  fig3_shutdown ();
  e31_multistate ();
  poly_figures ();
  fig6_precompute ();
  fig7_gated_clock ();
  fig8_guard ();
  fig9_retime ()
