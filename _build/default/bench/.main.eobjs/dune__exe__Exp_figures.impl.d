bench/exp_figures.ml: Array Hlp_fsm Hlp_isa Hlp_logic Hlp_optlogic Hlp_pm Hlp_rtl Hlp_util List Option Printf Prng String Table
