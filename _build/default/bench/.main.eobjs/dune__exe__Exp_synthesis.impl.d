bench/exp_synthesis.ml: Array Hlp_bus Hlp_fsm Hlp_isa Hlp_logic Hlp_optlogic Hlp_power Hlp_rtl Hlp_sim Hlp_util List Printf Prng String Table
