bench/main.mli:
