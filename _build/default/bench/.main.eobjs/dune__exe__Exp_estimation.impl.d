bench/exp_estimation.ml: Array Bits Format Hlp_fsm Hlp_isa Hlp_logic Hlp_power Hlp_sim Hlp_util List Netlist Printf Prng Stats Table
