(* Experiments E17-E20: the synthesis/optimization claims of Section III. *)

open Hlp_util

let fmt = Table.fmt_float

(* E17: bus encodings across stream classes. *)
let e17_bus () =
  let width = 16 in
  let rng = Prng.create 7 in
  let train = Hlp_bus.Traces.loop_kernel rng ~body:12 ~iterations:80 ~width in
  let beach = Hlp_bus.Encoding.train_beach ~width train in
  let schemes =
    [ Hlp_bus.Encoding.Binary; Hlp_bus.Encoding.Gray_code; Hlp_bus.Encoding.Bus_invert;
      Hlp_bus.Encoding.T0; Hlp_bus.Encoding.T0_bus_invert;
      Hlp_bus.Encoding.Working_zone { zones = 4; offset_bits = 4 }; beach ]
  in
  let streams =
    [
      ("sequential", Hlp_bus.Traces.sequential () ~width ~n:6000);
      ("seq + 5% jumps", Hlp_bus.Traces.sequential_with_jumps rng ~jump_prob:0.05 ~width ~n:6000);
      ("interleaved arrays",
       Hlp_bus.Traces.interleaved_arrays rng ~bases:[ 0x0100; 0x4200; 0x8000; 0xC000 ]
         ~stride:1 ~width ~n:6000);
      ("loop kernel", Hlp_bus.Traces.loop_kernel rng ~body:12 ~iterations:80 ~width);
      ("random data", Hlp_bus.Traces.random_data rng ~width ~n:6000);
    ]
  in
  let rows =
    List.map
      (fun scheme ->
        Hlp_bus.Encoding.scheme_name scheme
        :: List.map
             (fun (_, s) ->
               assert (Hlp_bus.Encoding.roundtrip scheme ~width s);
               fmt ~digits:3 (Hlp_bus.Encoding.evaluate scheme ~width s).Hlp_bus.Encoding.per_word)
             streams)
      schemes
  in
  Table.print
    ~title:"E17: bus-line transitions per word, 16-bit bus (paper: Gray ~1, T0 -> 0 on sequential)"
    ~align:(Table.Left :: List.map (fun _ -> Table.Right) streams)
    ~header:("scheme" :: List.map fst streams)
    rows

(* E18: power-management scheduling + low-power allocation. *)
let e18_hls () =
  (* scheduling with shutdown of mutually exclusive mux arms *)
  let g = Hlp_rtl.Cdfg.branchy () in
  let asap = Hlp_rtl.Schedule.asap g in
  let rows =
    List.map
      (fun slack ->
        let latency = asap.Hlp_rtl.Schedule.latency + slack in
        let pm = Hlp_rtl.Schedule.power_managed g ~latency in
        let base = Hlp_rtl.Schedule.energy g in
        let managed = Hlp_rtl.Schedule.pm_energy g pm ~sel_prob:(fun _ -> 0.5) in
        [ string_of_int latency;
          string_of_int (List.length pm.Hlp_rtl.Schedule.manageable);
          fmt base; fmt managed;
          Table.fmt_pct (1.0 -. (managed /. base)) ])
      [ 0; 1; 2; 4 ]
  in
  Table.print
    ~title:"E18a: Monteiro power-managed scheduling (paper [65] reports 5-33% savings)"
    ~align:[ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "latency"; "manageable muxes"; "base energy"; "managed energy"; "saving" ]
    rows;
  (* allocation: area-driven vs switching-aware binding *)
  let rows =
    List.map
      (fun (name, g, resources) ->
        let sched = Hlp_rtl.Schedule.list_schedule g ~resources in
        let prof = Hlp_rtl.Allocate.profile ~samples:150 g in
        let area = Hlp_rtl.Allocate.bind_greedy_area g sched in
        let lp = Hlp_rtl.Allocate.bind_low_power g sched prof in
        let ca = Hlp_rtl.Allocate.switched_capacitance g sched area prof in
        let cl = Hlp_rtl.Allocate.switched_capacitance g sched lp prof in
        [ name; fmt ca; fmt cl; Table.fmt_pct (1.0 -. (cl /. ca));
          string_of_int (Hlp_rtl.Allocate.register_count g sched) ])
      [
        ("diffeq", Hlp_rtl.Cdfg.diffeq (),
         [ (Hlp_rtl.Module_energy.Multiplier, 2); (Hlp_rtl.Module_energy.Adder, 2) ]);
        ("fir 8-tap", Hlp_rtl.Cdfg.fir ~coeffs:[ 1; 2; 4; 8; 8; 4; 2; 1 ],
         [ (Hlp_rtl.Module_energy.Multiplier, 3); (Hlp_rtl.Module_energy.Adder, 2) ]);
        ("poly3 + poly2 pair",
         (let b = Hlp_rtl.Cdfg.Build.create () in
          let x = Hlp_rtl.Cdfg.Build.input b "x" and y = Hlp_rtl.Cdfg.Build.input b "y" in
          let a = Hlp_rtl.Cdfg.Build.input b "a" and c = Hlp_rtl.Cdfg.Build.input b "c" in
          let x2 = Hlp_rtl.Cdfg.Build.mul b x x in
          let y2 = Hlp_rtl.Cdfg.Build.mul b y y in
          let t1 = Hlp_rtl.Cdfg.Build.mul b a x2 in
          let t2 = Hlp_rtl.Cdfg.Build.mul b c y2 in
          let s1 = Hlp_rtl.Cdfg.Build.add b t1 y in
          let s2 = Hlp_rtl.Cdfg.Build.add b t2 x in
          let r = Hlp_rtl.Cdfg.Build.add b s1 s2 in
          Hlp_rtl.Cdfg.Build.finish b ~outputs:[ r ]),
         [ (Hlp_rtl.Module_energy.Multiplier, 2); (Hlp_rtl.Module_energy.Adder, 2) ]);
      ]
  in
  Table.print ~title:"E18b: low-power allocation vs area-driven binding"
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "design"; "area binding cap"; "low-power binding cap"; "saving"; "registers" ]
    rows;
  (* register binding (Chang-Pedram) *)
  let rows =
    List.map
      (fun (name, g) ->
        let sched =
          Hlp_rtl.Schedule.list_schedule g ~resources:[ (Hlp_rtl.Module_energy.Multiplier, 2) ]
        in
        let prof = Hlp_rtl.Allocate.profile ~samples:150 g in
        let area = Hlp_rtl.Allocate.bind_registers_area g sched in
        let lp = Hlp_rtl.Allocate.bind_registers_low_power g sched prof in
        let ca = Hlp_rtl.Allocate.register_switched_capacitance g sched area prof in
        let cl = Hlp_rtl.Allocate.register_switched_capacitance g sched lp prof in
        [ name;
          string_of_int area.Hlp_rtl.Allocate.num_regs;
          string_of_int lp.Hlp_rtl.Allocate.num_regs;
          fmt ca; fmt cl; Table.fmt_pct (1.0 -. (cl /. ca)) ])
      [ ("diffeq", Hlp_rtl.Cdfg.diffeq ());
        ("fir 8-tap", Hlp_rtl.Cdfg.fir ~coeffs:[ 1; 2; 4; 8; 8; 4; 2; 1 ]) ]
  in
  Table.print
    ~title:"E18c: register binding (Chang-Pedram [64]): value similarity drives the packing"
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "design"; "regs (area)"; "regs (lp)"; "area binding cap"; "lp binding cap"; "saving" ]
    rows

(* E19: multiple supply-voltage scheduling. *)
let e19_voltage () =
  let g = Hlp_rtl.Cdfg.diffeq () in
  let base = Hlp_rtl.Voltage.single_voltage g in
  let rows =
    List.filter_map
      (fun stretch ->
        let deadline = base.Hlp_rtl.Voltage.total_delay *. stretch in
        match Hlp_rtl.Voltage.schedule g ~deadline with
        | None -> None
        | Some asg ->
            Hlp_rtl.Voltage.verify g asg;
            Some
              [ Printf.sprintf "%.2fx" stretch;
                fmt asg.Hlp_rtl.Voltage.total_delay;
                fmt asg.Hlp_rtl.Voltage.total_energy;
                string_of_int asg.Hlp_rtl.Voltage.num_shifters;
                Table.fmt_pct
                  (1.0 -. (asg.Hlp_rtl.Voltage.total_energy /. base.Hlp_rtl.Voltage.total_energy)) ])
      [ 1.0; 1.25; 1.5; 2.0; 3.0; 4.0 ]
  in
  Table.print
    ~title:
      (Printf.sprintf
         "E19: Chang-Pedram multi-voltage scheduling on diffeq (5.0/3.3/2.4V; single-Vdd energy %.0f)"
         base.Hlp_rtl.Voltage.total_energy)
    ~align:[ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "deadline"; "delay"; "energy"; "level shifters"; "energy saving" ]
    rows

(* E20: FSM encoding for low power. *)
let e20_fsm_encode () =
  let rng = Prng.create 5 in
  let rows =
    List.map
      (fun stg ->
        let dist = Hlp_fsm.Markov.analyze stg in
        let cost enc = Hlp_fsm.Encode.cost stg dist enc in
        let cap enc = Hlp_fsm.Synth.switched_capacitance_per_cycle ~encoding:enc ~cycles:1500 stg in
        let annealed = Hlp_fsm.Encode.anneal ~iterations:15_000 rng stg dist in
        let nat = Hlp_fsm.Encode.natural stg in
        [ stg.Hlp_fsm.Stg.name;
          fmt ~digits:3 (cost nat); fmt (cap nat);
          fmt ~digits:3 (cost (Hlp_fsm.Encode.gray stg));
          fmt ~digits:3 (cost (Hlp_fsm.Encode.one_hot stg));
          fmt ~digits:3 (cost annealed); fmt (cap annealed) ])
      (Hlp_fsm.Stg.zoo_extended ())
  in
  Table.print
    ~title:"E20: state encoding (E[Hamming]/cycle proxy and synthesized cap/cycle)"
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "machine"; "natural"; "nat cap"; "gray"; "one-hot"; "annealed"; "ann cap" ]
    rows

(* E22: cold scheduling (Su et al., Section III-A). *)
let e22_coldsched () =
  let rows =
    List.map
      (fun (name, (prog, mem)) ->
        let e = Hlp_isa.Coldsched.measure ~mem_init:mem prog in
        [ name;
          fmt ~digits:2 e.Hlp_isa.Coldsched.original_toggles;
          fmt ~digits:2 e.Hlp_isa.Coldsched.scheduled_toggles;
          Table.fmt_pct e.Hlp_isa.Coldsched.saving ])
      (Hlp_isa.Programs.all ())
  in
  Table.print
    ~title:"E22: cold scheduling (instruction-bus toggles/instr; needs ILP to act)"
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right ]
    ~header:[ "program"; "original"; "cold-scheduled"; "saving" ]
    rows

(* E23: F-test stepwise macro-model construction (Wu et al.). *)
let e23_stepwise () =
  let dut =
    { Hlp_power.Macromodel.net = Hlp_logic.Generators.adder_circuit 8; widths = [ 8; 8 ] }
  in
  let obs =
    List.map (Hlp_power.Macromodel.observe dut) (Hlp_power.Macromodel.training_streams dut)
  in
  let features =
    Array.of_list
      (List.map
         (fun o ->
           Array.concat
             (List.map
                (fun a -> a.Hlp_sim.Activity.activity)
                o.Hlp_power.Macromodel.stats.Hlp_power.Macromodel.in_acts))
         obs)
  in
  let response = Array.of_list (List.map (fun o -> o.Hlp_power.Macromodel.cap) obs) in
  let m = Hlp_power.Stepwise.fit ~features ~response () in
  let r2 = Hlp_power.Stepwise.r_squared m ~features ~response in
  let sample = features.(0) in
  let lo, hi = Hlp_power.Stepwise.confidence_interval m sample in
  Printf.printf
    "== E23: F-test stepwise macro-model (Wu et al.) ==\n\
     candidate pool: 16 per-pin activities; selected %d variables %s\n\
     r^2 = %.3f; sample prediction %.1f with 95%% interval [%.1f, %.1f]\n\
     (paper: ~8 selected variables, 5-10%% average error)\n\n"
    (List.length m.Hlp_power.Stepwise.selected)
    (String.concat "," (List.map string_of_int m.Hlp_power.Stepwise.selected))
    r2
    (Hlp_power.Stepwise.predict m sample)
    lo hi

(* E24: FSM decomposition with submachine shutdown. *)
let e24_decompose () =
  let rows =
    List.map
      (fun (label, stg, p_req) ->
        let dist =
          Hlp_fsm.Markov.analyze
            ~input_prob:(fun i -> if i = 1 then p_req else 1.0 -. p_req)
            stg
        in
        let part = Hlp_fsm.Decompose.balanced_min_cut (Hlp_util.Prng.create 3) stg dist in
        let d = Hlp_fsm.Decompose.decompose stg dist part in
        let ev = Hlp_fsm.Decompose.evaluate stg d in
        [ label;
          Table.fmt_pct d.Hlp_fsm.Decompose.crossing;
          fmt ev.Hlp_fsm.Decompose.monolithic_cap;
          fmt ev.Hlp_fsm.Decompose.decomposed_cap;
          Table.fmt_pct ev.Hlp_fsm.Decompose.saving ])
      [
        ("reactive 6+6, 5% requests", Hlp_fsm.Stg.reactive ~wait_states:6 ~burst_states:6, 0.05);
        ("reactive 8+8, 10% requests", Hlp_fsm.Stg.reactive ~wait_states:8 ~burst_states:8, 0.1);
      ]
  in
  Table.print
    ~title:"E24: FSM decomposition + idle-half shutdown (Section III-H)"
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "machine"; "crossing prob"; "monolithic cap"; "decomposed cap"; "saving" ]
    rows

(* E25: Panda-Dutt memory mapping. *)
let e25_memmap () =
  let width = 12 in
  let arrays = [ ("a", 100); ("b", 100); ("c", 60); ("d", 200) ] in
  let acc = Hlp_bus.Memmap.interleaved_workload (Hlp_util.Prng.create 5) arrays ~n:6000 in
  let t bases = Hlp_bus.Memmap.transitions ~width ~bases acc in
  let naive = t (Hlp_bus.Memmap.naive_bases arrays) in
  let aligned = t (Hlp_bus.Memmap.aligned_bases arrays) in
  let opt = t (Hlp_bus.Memmap.optimize (Hlp_util.Prng.create 7) ~width arrays acc) in
  Table.print
    ~title:"E25: memory mapping for address-bus power (Panda-Dutt, Section III-A)"
    ~align:[ Table.Left; Table.Right; Table.Right ]
    ~header:[ "placement"; "bus transitions"; "vs naive" ]
    [
      [ "declaration-order packing"; string_of_int naive; "-" ];
      [ "power-of-two aligned"; string_of_int aligned;
        Table.fmt_pct (1.0 -. (float_of_int aligned /. float_of_int naive)) ];
      [ "annealed placement"; string_of_int opt;
        Table.fmt_pct (1.0 -. (float_of_int opt /. float_of_int naive)) ];
    ]

(* E26: internal organization as a macro-model parameter. *)
let e26_architectures () =
  let n = 8 in
  let build_adder f =
    let module B = Hlp_logic.Netlist.Builder in
    let b = B.create () in
    let x = B.inputs ~prefix:"a" b n and y = B.inputs ~prefix:"b" b n in
    let sum, _ = f b x y in
    Array.iteri (fun i w -> B.output b (Printf.sprintf "s%d" i) w) sum;
    B.finish b
  in
  let build_mult f =
    let module B = Hlp_logic.Netlist.Builder in
    let b = B.create () in
    let x = B.inputs ~prefix:"a" b n and y = B.inputs ~prefix:"b" b n in
    let p = f b x y in
    Array.iteri (fun i w -> B.output b (Printf.sprintf "p%d" i) w) p;
    B.finish b
  in
  let designs =
    [
      ("ripple adder", build_adder (fun b x y -> Hlp_logic.Generators.ripple_adder b x y));
      ("carry-select adder",
       build_adder (fun b x y -> Hlp_logic.Generators.carry_select_adder b ~block:4 x y));
      ("array multiplier", build_mult Hlp_logic.Generators.array_multiplier);
      ("wallace multiplier", build_mult Hlp_logic.Generators.wallace_multiplier);
    ]
  in
  let rows =
    List.map
      (fun (label, net) ->
        let sim = Hlp_sim.Eventsim.create net in
        let rng = Prng.create 3 in
        Hlp_sim.Eventsim.run sim (fun _ -> Array.init (2 * n) (fun _ -> Prng.bool rng)) 400;
        [ label;
          fmt (Hlp_logic.Netlist.critical_path net);
          fmt (Hlp_logic.Netlist.total_capacitance net);
          fmt (Hlp_sim.Eventsim.functional_switched_capacitance sim /. 400.0);
          fmt (Hlp_sim.Eventsim.glitch_capacitance sim /. 400.0) ])
      designs
  in
  Table.print
    ~title:
      "E26: internal organization (same function, different power/delay — the macro-model parameterization axis)"
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "organization"; "critical path"; "C_tot"; "functional cap/cyc"; "glitch cap/cyc" ]
    rows

(* E27: glitch reduction by delay balancing (Raghunathan et al. [109]). *)
let e27_balancing () =
  let rows =
    List.map
      (fun (label, net) ->
        let gb, ga, tb, ta = Hlp_optlogic.Retime.balancing_evaluation ~cycles:300 net in
        [ label; fmt gb; fmt ga; Table.fmt_pct (1.0 -. (ga /. gb)); fmt tb; fmt ta ])
      [
        ("array multiplier 6x6", Hlp_logic.Generators.multiplier_circuit 6);
        ("8-operand adder chain",
         (let module B = Hlp_logic.Netlist.Builder in
          let b = B.create () in
          let words = List.init 8 (fun k -> B.inputs ~prefix:(Printf.sprintf "w%d" k) b 8) in
          let sum =
            List.fold_left
              (fun acc w ->
                match acc with
                | None -> Some w
                | Some s -> Some (fst (Hlp_logic.Generators.ripple_adder b s w)))
              None words
          in
          (match sum with
          | Some s -> Array.iteri (fun i w -> B.output b (Printf.sprintf "s%d" i) w) s
          | None -> ());
          B.finish b));
      ]
  in
  Table.print
    ~title:
      "E27: glitch reduction by path balancing (glitches drop; buffer overhead can exceed the gain — the overhead tension of Section III-I)"
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "circuit"; "glitch before"; "glitch after"; "glitch saving"; "total before"; "total after" ]
    rows

(* E29: bus encodings on real program streams (cross-subsystem integration:
   the ISA machine's fetch/data buses feed the Section III-G codes). *)
let e29_bus_on_traces () =
  let width = 16 in
  let programs =
    [ ("matmul n=10", Hlp_isa.Programs.matmul ~n:10);
      ("fir 8x256", Hlp_isa.Programs.fir ~taps:8 ~samples:256);
      ("bubble sort n=48", Hlp_isa.Programs.bubble_sort ~n:48) ]
  in
  let schemes =
    [ Hlp_bus.Encoding.Binary; Hlp_bus.Encoding.Gray_code; Hlp_bus.Encoding.T0;
      Hlp_bus.Encoding.Working_zone { zones = 4; offset_bits = 4 };
      Hlp_bus.Encoding.Bus_invert ]
  in
  let rows =
    List.concat_map
      (fun (name, (prog, mem)) ->
        let _, traces = Hlp_isa.Machine.run_traced ~mem_init:mem prog in
        List.map
          (fun (bus, stream) ->
            (Printf.sprintf "%s / %s" name bus)
            :: List.map
                 (fun s ->
                   assert (Hlp_bus.Encoding.roundtrip s ~width stream);
                   fmt ~digits:3
                     (Hlp_bus.Encoding.evaluate s ~width stream).Hlp_bus.Encoding.per_word)
                 schemes)
          [ ("fetch", traces.Hlp_isa.Machine.pcs);
            ("data", traces.Hlp_isa.Machine.data_addrs) ])
      programs
  in
  Table.print
    ~title:"E29: bus encodings on real program address streams (transitions/word)"
    ~align:(Table.Left :: List.map (fun _ -> Table.Right) schemes)
    ~header:("program / bus" :: List.map Hlp_bus.Encoding.scheme_name schemes)
    rows

let all () =
  e17_bus ();
  e18_hls ();
  e19_voltage ();
  e20_fsm_encode ();
  e22_coldsched ();
  e23_stepwise ();
  e24_decompose ();
  e25_memmap ();
  e26_architectures ();
  e27_balancing ();
  e29_bus_on_traces ()
