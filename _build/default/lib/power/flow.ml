type component =
  | Datapath of {
      name : string;
      dut : Macromodel.dut;
      traces : int array list;
    }
  | Controller of { name : string; stg : Hlp_fsm.Stg.t }
  | Glue of { name : string; net : Hlp_logic.Netlist.t }

type line = {
  component : string;
  method_ : string;
  estimate : float;
  reference : float;
  error : float;
}

type report = {
  lines : line list;
  total_estimate : float;
  total_reference : float;
  total_error : float;
}

let datapath_line ~name dut traces =
  (* characterize once, then predict from the stream statistics; the
     reference observation also yields the measured capacitance *)
  let training =
    List.map (Macromodel.observe dut) (Macromodel.training_streams dut)
  in
  let model = Macromodel.fit Macromodel.Input_output dut training in
  let obs = Macromodel.observe dut traces in
  let estimate = Macromodel.predict model obs.Macromodel.stats in
  { component = name; method_ = "io macro-model"; estimate;
    reference = obs.Macromodel.cap;
    error = Hlp_util.Stats.relative_error ~actual:obs.Macromodel.cap ~estimate }

(* The controller model is fitted once per process on the benchmark zoo —
   the "previously designed standard cell controllers" of the paper. *)
let controller_fit =
  lazy (Complexity.fit_controller (List.map Complexity.controller_sample (Hlp_fsm.Stg.zoo ())))

let controller_line ~name stg =
  let sample = Complexity.controller_sample stg in
  let estimate = Complexity.controller_predict (Lazy.force controller_fit) sample in
  let reference = sample.Complexity.cap_per_cycle in
  { component = name; method_ = "Landman-Rabaey"; estimate; reference;
    error = Hlp_util.Stats.relative_error ~actual:reference ~estimate }

let glue_line ~seed ~name net =
  let estimate = Probprop.estimate_capacitance net (Probprop.propagate net) in
  let sim = Hlp_sim.Funcsim.create net in
  let rng = Hlp_util.Prng.create seed in
  let nin = Array.length net.Hlp_logic.Netlist.inputs in
  let cycles = 4000 in
  Hlp_sim.Funcsim.run sim (fun _ -> Array.init nin (fun _ -> Hlp_util.Prng.bool rng)) cycles;
  let reference = Hlp_sim.Funcsim.switched_capacitance sim /. float_of_int cycles in
  { component = name; method_ = "probabilistic"; estimate; reference;
    error = Hlp_util.Stats.relative_error ~actual:reference ~estimate }

let estimate ?(seed = 17) components =
  let lines =
    List.map
      (function
        | Datapath { name; dut; traces } -> datapath_line ~name dut traces
        | Controller { name; stg } -> controller_line ~name stg
        | Glue { name; net } -> glue_line ~seed ~name net)
      components
  in
  let total_estimate = List.fold_left (fun acc l -> acc +. l.estimate) 0.0 lines in
  let total_reference = List.fold_left (fun acc l -> acc +. l.reference) 0.0 lines in
  {
    lines;
    total_estimate;
    total_reference;
    total_error =
      Hlp_util.Stats.relative_error ~actual:total_reference ~estimate:total_estimate;
  }

let pp_report fmt r =
  Format.fprintf fmt "%-16s %-16s %10s %10s %8s@." "component" "method" "estimate"
    "reference" "error";
  List.iter
    (fun l ->
      Format.fprintf fmt "%-16s %-16s %10.1f %10.1f %7.1f%%@." l.component l.method_
        l.estimate l.reference (100.0 *. l.error))
    r.lines;
  Format.fprintf fmt "%-16s %-16s %10.1f %10.1f %7.1f%%@." "TOTAL" "" r.total_estimate
    r.total_reference (100.0 *. r.total_error)
