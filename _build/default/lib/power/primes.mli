(** Prime-implicant analysis (Quine-McCluskey) on small truth tables.

    The Nemani-Najm area-complexity model (Section II-B2) is defined in
    terms of the essential prime implicants of a function's on-set and
    off-set; this module computes them exactly for functions of up to ~12
    variables given as minterm sets. *)

type cube = { value : int; dc : int }
(** Positional cube: bit [i] of [dc] set means variable [i] is absent from
    the product term; otherwise bit [i] of [value] gives its literal
    polarity. *)

val cube_covers : cube -> int -> bool
(** Does the cube contain the minterm? *)

val cube_literals : nvars:int -> cube -> int
(** Number of literals in the product term, [nvars - popcount dc]. *)

val cube_size : cube -> int
(** Number of minterms covered, [2^popcount dc]. *)

val primes : nvars:int -> int list -> cube list
(** All prime implicants of the function whose on-set is the given minterm
    list. *)

val essential_primes : nvars:int -> int list -> cube list
(** Primes that are the unique cover of at least one on-set minterm. *)

val cover : nvars:int -> int list -> cube list
(** A small (greedy) irredundant cover: essential primes first, then greedy
    set covering — the "minimum sum-of-products" proxy used by the
    complexity-based models. *)

val cover_literals : nvars:int -> int list -> int
(** Total literal count of {!cover} — the classic two-level area metric. *)
