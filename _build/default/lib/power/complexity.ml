type ces = {
  energy_gate : float;
  c_load : float;
  e_gate : float;
}

let ces_default = { energy_gate = 1.2; c_load = 3.0; e_gate = 0.25 }

let ces_power ces ~gate_equivalents ~vdd ~freq =
  freq *. gate_equivalents
  *. (ces.energy_gate +. (0.5 *. vdd *. vdd *. ces.c_load))
  *. ces.e_gate

let ces_switched_capacitance_estimate ces net =
  (* express the per-cycle energy as an equivalent switched capacitance at
     the reference supply so it can be compared with simulation *)
  let vdd = 5.0 in
  let n = Hlp_logic.Netlist.gate_equivalents net in
  ces_power ces ~gate_equivalents:n ~vdd ~freq:1.0 /. (0.5 *. vdd *. vdd)

type area_complexity = {
  c_on : float;
  c_off : float;
  c_avg : float;
}

let side_measure ~nvars minterms =
  if minterms = [] then 0.0
  else begin
    let total = 1 lsl nvars in
    let ess = Primes.essential_primes ~nvars minterms in
    (* bucket by literal count; a minterm belongs to the bucket of the
       *largest* essential prime covering it (fewest literals), so each
       p_i is the mass covered at size c_i but not by any larger prime *)
    let buckets = Hashtbl.create 8 in
    List.iter
      (fun m ->
        let covering = List.filter (fun c -> Primes.cube_covers c m) ess in
        match covering with
        | [] -> ()
        | _ ->
            let best =
              List.fold_left
                (fun acc c -> min acc (Primes.cube_literals ~nvars c))
                max_int covering
            in
            Hashtbl.replace buckets best
              (1 + Option.value ~default:0 (Hashtbl.find_opt buckets best)))
      minterms;
    Hashtbl.fold
      (fun lits count acc ->
        acc +. (float_of_int lits *. (float_of_int count /. float_of_int total)))
      buckets 0.0
  end

let linear_measure ~nvars ~on_set =
  let all = List.init (1 lsl nvars) (fun i -> i) in
  let on_tbl = Hashtbl.create 64 in
  List.iter (fun m -> Hashtbl.replace on_tbl m ()) on_set;
  let off_set = List.filter (fun m -> not (Hashtbl.mem on_tbl m)) all in
  let c_on = side_measure ~nvars on_set in
  let c_off = side_measure ~nvars off_set in
  { c_on; c_off; c_avg = (c_on +. c_off) /. 2.0 }

let actual_area ~nvars ~on_set = Primes.cover_literals ~nvars on_set

let fit_area_regression ~nvars population =
  let x =
    Array.of_list
      (List.map (fun (on_set, _) -> (linear_measure ~nvars ~on_set).c_avg) population)
  in
  let y = Array.of_list (List.map (fun (_, a) -> float_of_int a) population) in
  Hlp_util.Stats.linear_regression ~x ~y

type controller_fit = {
  c_i : float;
  c_o : float;
  r2 : float;
}

type controller_sample = {
  n_i : int;
  n_o : int;
  e_i : float;
  e_o : float;
  n_m : int;
  cap_per_cycle : float;
}

let controller_sample (stg : Hlp_fsm.Stg.t) =
  let open Hlp_fsm in
  let r = Synth.synthesize stg in
  let enc = r.Synth.encoding in
  let state_bits = enc.Encode.width in
  let dist = Markov.analyze stg in
  let state_activity =
    Markov.expected_hamming stg dist ~code:(fun s -> enc.Encode.code.(s))
    /. float_of_int state_bits
  in
  let n_i = stg.Stg.input_bits + state_bits in
  let n_o = stg.Stg.output_bits + state_bits in
  (* external inputs are driven uniformly at random: activity 0.5 *)
  let e_i =
    ((0.5 *. float_of_int stg.Stg.input_bits)
    +. (state_activity *. float_of_int state_bits))
    /. float_of_int n_i
  in
  (* output activity: measure from a quick STG simulation *)
  let rng = Hlp_util.Prng.create 19 in
  let ni = Stg.num_inputs stg in
  let inputs = List.init 2000 (fun _ -> Hlp_util.Prng.int rng ni) in
  let _, outs = Stg.simulate stg inputs in
  let out_trace = Array.of_list outs in
  let out_act =
    if stg.Stg.output_bits = 0 then 0.0
    else
      Hlp_sim.Activity.mean_activity
        (Hlp_sim.Activity.of_trace ~width:stg.Stg.output_bits out_trace)
  in
  let e_o =
    ((out_act *. float_of_int stg.Stg.output_bits)
    +. (state_activity *. float_of_int state_bits))
    /. float_of_int n_o
  in
  {
    n_i;
    n_o;
    e_i;
    e_o;
    n_m = r.Synth.num_minterms;
    cap_per_cycle = Synth.switched_capacitance_per_cycle stg;
  }

let fit_controller samples =
  assert (List.length samples >= 2);
  let x =
    Array.of_list
      (List.map
         (fun s ->
           [|
             float_of_int s.n_i *. s.e_i *. float_of_int s.n_m;
             float_of_int s.n_o *. s.e_o *. float_of_int s.n_m;
           |])
         samples)
  in
  let y = Array.of_list (List.map (fun s -> s.cap_per_cycle) samples) in
  let beta = Hlp_util.Linalg.least_squares_nonneg x y in
  let r2 = Hlp_util.Linalg.r_squared x y beta in
  { c_i = beta.(0); c_o = beta.(1); r2 }

let controller_predict fit s =
  (float_of_int s.n_i *. fit.c_i *. s.e_i *. float_of_int s.n_m)
  +. (float_of_int s.n_o *. fit.c_o *. s.e_o *. float_of_int s.n_m)
