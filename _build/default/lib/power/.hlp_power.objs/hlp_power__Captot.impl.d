lib/power/captot.ml: Array Hlp_bdd Hlp_logic Hlp_sim Hlp_util List Netlist
