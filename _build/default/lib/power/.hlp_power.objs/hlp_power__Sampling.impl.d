lib/power/sampling.ml: Array Hlp_logic Hlp_sim Hlp_util List Macromodel
