lib/power/cyclemodel.mli: Macromodel
