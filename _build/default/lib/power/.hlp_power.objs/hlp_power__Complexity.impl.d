lib/power/complexity.ml: Array Encode Hashtbl Hlp_fsm Hlp_logic Hlp_sim Hlp_util List Markov Option Primes Stg Synth
