lib/power/memory_model.mli:
