lib/power/probprop.ml: Array Gate Hlp_logic Hlp_sim Hlp_util Netlist
