lib/power/captot.mli: Hlp_logic
