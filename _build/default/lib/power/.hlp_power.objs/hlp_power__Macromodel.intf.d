lib/power/macromodel.mli: Hlp_logic Hlp_sim
