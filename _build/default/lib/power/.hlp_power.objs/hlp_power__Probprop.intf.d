lib/power/probprop.mli: Hlp_logic
