lib/power/macromodel.ml: Array Hashtbl Hlp_logic Hlp_sim Hlp_util List Option
