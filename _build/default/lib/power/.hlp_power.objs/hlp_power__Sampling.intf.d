lib/power/sampling.mli: Macromodel
