lib/power/flow.ml: Array Complexity Format Hlp_fsm Hlp_logic Hlp_sim Hlp_util Lazy List Macromodel Probprop
