lib/power/memory_model.ml:
