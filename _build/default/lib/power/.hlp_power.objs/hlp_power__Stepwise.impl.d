lib/power/stepwise.ml: Array Hlp_util List
