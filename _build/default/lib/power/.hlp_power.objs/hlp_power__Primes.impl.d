lib/power/primes.ml: Array Hashtbl Hlp_util List Set
