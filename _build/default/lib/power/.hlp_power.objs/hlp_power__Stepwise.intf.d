lib/power/stepwise.mli:
