lib/power/entropy.mli: Hlp_logic
