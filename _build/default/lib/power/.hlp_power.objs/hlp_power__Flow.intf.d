lib/power/flow.mli: Format Hlp_fsm Hlp_logic Macromodel
