lib/power/complexity.mli: Hlp_fsm Hlp_logic Hlp_util
