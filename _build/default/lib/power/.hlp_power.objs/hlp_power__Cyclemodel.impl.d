lib/power/cyclemodel.ml: Array Hlp_sim Hlp_util List Macromodel Stepwise
