lib/power/primes.mli:
