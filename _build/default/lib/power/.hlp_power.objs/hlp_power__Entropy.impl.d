lib/power/entropy.ml: Array Hlp_logic Hlp_sim Hlp_util Netlist
