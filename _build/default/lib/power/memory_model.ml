type sram = {
  n : int;
  k : int;
  word_bits : int;
  vdd : float;
  v_swing : float;
  c_int : float;
  c_tr : float;
}

let default_sram ~n ~k =
  assert (k >= 0 && k <= n);
  { n; k; word_bits = 8; vdd = 5.0; v_swing = 0.5; c_int = 0.9; c_tr = 0.25 }

let pow2 e = 2.0 ** float_of_int e

let cell_array_energy s =
  0.5 *. s.vdd *. s.v_swing *. pow2 s.k *. (s.c_int +. (pow2 (s.n - s.k) *. s.c_tr))

let row_decoder_energy s =
  (* a decoder over n-k address bits: a few predecode lines switch per
     access, but the decoder's output wiring and the unselected word-line
     stubs it drives scale with the row count 2^(n-k) — this is the term
     that penalizes tall-narrow organizations *)
  let rows_bits = float_of_int (s.n - s.k) in
  0.5 *. s.vdd *. s.vdd *. (4.0 +. (2.5 *. rows_bits) +. (0.05 *. pow2 (s.n - s.k)))

let word_line_energy s =
  (* driving the selected row: gate capacitance of 2^k cells *)
  0.5 *. s.vdd *. s.vdd *. pow2 s.k *. 0.35

let column_select_energy s =
  let cols_bits = float_of_int s.k in
  0.5 *. s.vdd *. s.vdd *. (2.0 +. (2.0 *. cols_bits) +. (0.1 *. pow2 s.k))

let sense_amp_energy s =
  0.5 *. s.vdd *. s.v_swing *. (6.0 *. float_of_int s.word_bits)

let read_energy s =
  cell_array_energy s +. row_decoder_energy s +. word_line_energy s
  +. column_select_energy s +. sense_amp_energy s

let optimal_k ~n =
  let best = ref 0 and best_e = ref infinity in
  for k = 0 to n do
    let e = read_energy (default_sram ~n ~k) in
    if e < !best_e then begin
      best := k;
      best_e := e
    end
  done;
  !best

let htree_clock_capacitance ~levels ~c_wire_root =
  (* level l has 2^l branches of length root/2^(l/2): capacitance per level
     c_root * 2^l / 2^(l/2) = c_root * 2^(l/2) *)
  let acc = ref 0.0 in
  for l = 0 to levels - 1 do
    acc := !acc +. (c_wire_root *. (2.0 ** (float_of_int l /. 2.0)))
  done;
  !acc

let interconnect_energy ~length_mm ~c_per_mm ~vdd ~activity =
  0.5 *. vdd *. vdd *. length_mm *. c_per_mm *. activity

let off_chip_driver_energy ~c_pad ~vdd ~activity = 0.5 *. vdd *. vdd *. c_pad *. activity
