(** The Fig. 1 estimation flow: level-by-level power feedback for a mixed
    design.

    The paper's central pitch is that a design made of datapath macros, a
    controller, and random glue logic can be power-estimated {e without}
    fully simulating it at the gate level: macro-model equations for the
    library datapath components, a complexity model for the controller, and
    probabilistic propagation for the glue. This module packages that loop:
    describe the design, get a per-component estimate, and (for validation)
    the full gate-level reference next to it. *)

type component =
  | Datapath of {
      name : string;
      dut : Macromodel.dut;
      traces : int array list;  (** the operand streams it will see *)
    }
  | Controller of { name : string; stg : Hlp_fsm.Stg.t }
  | Glue of { name : string; net : Hlp_logic.Netlist.t }

type line = {
  component : string;
  method_ : string;  (** which estimator priced it *)
  estimate : float;  (** switched capacitance per cycle *)
  reference : float;  (** gate-level simulation of the same component *)
  error : float;
}

type report = {
  lines : line list;
  total_estimate : float;
  total_reference : float;
  total_error : float;
}

val estimate : ?seed:int -> component list -> report
(** Price every component with its level-appropriate model:
    - datapath: an input-output macro-model characterized once on the
      standard training streams, then evaluated on the component's actual
      stream statistics;
    - controller: the Landman-Rabaey regression fitted on the benchmark
      zoo, applied to the machine's [N_I], [N_O], [N_M] and activities;
    - glue: probabilistic propagation (no simulation).
    The reference column is full gate-level simulation of each component
    under the same stimuli. *)

val pp_report : Format.formatter -> report -> unit
