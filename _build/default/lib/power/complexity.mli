(** Complexity-based power models (Section II-B2): predict power from a
    notion of circuit complexity when neither a netlist nor a simulation is
    available. *)

(** {1 Chip Estimation System (Muller-Glaser et al. [14])} *)

type ces = {
  energy_gate : float;  (** internal energy per equivalent-gate transition *)
  c_load : float;  (** average load capacitance per equivalent gate *)
  e_gate : float;  (** average output activity per gate per cycle *)
}

val ces_default : ces
(** Library defaults calibrated against the {!Hlp_logic.Gate} library. *)

val ces_power :
  ces -> gate_equivalents:float -> vdd:float -> freq:float -> float
(** [P = f N (E_gate_internal + 0.5 V^2 C_load) E_gate]. *)

val ces_switched_capacitance_estimate : ces -> Hlp_logic.Netlist.t -> float
(** Equivalent switched capacitance per cycle predicted for a netlist from
    its gate-equivalent count alone (implementation- and data-independent,
    as the paper stresses). *)

(** {1 Nemani-Najm area complexity ([15])} *)

type area_complexity = {
  c_on : float;  (** linear measure of the on-set *)
  c_off : float;  (** linear measure of the off-set *)
  c_avg : float;  (** [(c_on + c_off) / 2] *)
}

val linear_measure : nvars:int -> on_set:int list -> area_complexity
(** The linear measure: on-set essential primes are bucketed by literal
    count [c_i]; each bucket weighs its exclusive minterm probability
    [p_i]; the measure is [sum c_i p_i] (and symmetrically for the
    off-set). Uniform minterm probabilities are assumed, as in the paper's
    random-logic experiments. *)

val actual_area : nvars:int -> on_set:int list -> int
(** Reference "optimized area": literal count of a greedy irredundant
    two-level cover, standing in for the SIS-optimized gate count the
    paper regresses against. *)

val fit_area_regression :
  nvars:int -> (int list * int) list -> Hlp_util.Stats.linreg
(** Regression of actual area on the linear measure across a function
    population: the paper's family of regression curves. *)

(** {1 Landman-Rabaey controller model ([17])} *)

type controller_fit = {
  c_i : float;  (** regression capacitance per input-plus-state line *)
  c_o : float;  (** per output-plus-state line *)
  r2 : float;
}

type controller_sample = {
  n_i : int;  (** external inputs + state lines *)
  n_o : int;  (** external outputs + state lines *)
  e_i : float;  (** mean activity on input + state lines *)
  e_o : float;
  n_m : int;  (** minterms in the implemented cover *)
  cap_per_cycle : float;  (** measured switched capacitance *)
}

val controller_sample : Hlp_fsm.Stg.t -> controller_sample
(** Synthesize the machine, measure its switched capacitance per cycle
    under uniform inputs, and collect the model's predictor variables. *)

val fit_controller : controller_sample list -> controller_fit
(** Least-squares fit of [cap = (N_I C_I E_I + N_O C_O E_O) N_M]. *)

val controller_predict : controller_fit -> controller_sample -> float
