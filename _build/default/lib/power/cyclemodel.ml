type dut = Macromodel.dut

type trace_data = {
  features : float array array;  (** per transition *)
  powers : float array;
  nbits : int;  (** input bits (toggle-vector length) *)
}

(* Variable pool layout for a module with [nbits] input bits:
   [0 .. nbits-1]          per-bit toggle this cycle
   [nbits .. 2 nbits-1]    per-bit toggle previous cycle (temporal, lag 1)
   [2 nbits ..]            pairwise products of adjacent-bit toggles
                           (spatial correlation, order 2, locality-limited
                           to keep the pool linear in nbits) *)
let pool_size nbits = (2 * nbits) + (nbits - 1)

let features_of ~nbits ~prev_toggles ~toggles =
  let f = Array.make (pool_size nbits) 0.0 in
  for b = 0 to nbits - 1 do
    f.(b) <- (if toggles.(b) then 1.0 else 0.0);
    f.(nbits + b) <- (if prev_toggles.(b) then 1.0 else 0.0)
  done;
  for b = 0 to nbits - 2 do
    f.((2 * nbits) + b) <- (if toggles.(b) && toggles.(b + 1) then 1.0 else 0.0)
  done;
  f

let collect (dut : dut) traces =
  let widths = dut.Macromodel.widths in
  let nbits = List.fold_left ( + ) 0 widths in
  let n =
    match traces with [] -> invalid_arg "collect: no traces" | t :: _ -> Array.length t
  in
  assert (n >= 3);
  let sim = Hlp_sim.Funcsim.create dut.Macromodel.net in
  let vec i = Hlp_sim.Streams.pack ~widths traces i in
  let gate_cum = Array.make n 0.0 in
  let vecs = Array.init n vec in
  Array.iteri
    (fun i v ->
      Hlp_sim.Funcsim.step sim v;
      gate_cum.(i) <- Hlp_sim.Funcsim.switched_capacitance sim)
    vecs;
  let toggles i =
    Array.init nbits (fun b -> vecs.(i).(b) <> vecs.(i + 1).(b))
  in
  let features =
    Array.init (n - 2) (fun i ->
        features_of ~nbits ~prev_toggles:(toggles i) ~toggles:(toggles (i + 1)))
  in
  let powers = Array.init (n - 2) (fun i -> gate_cum.(i + 2) -. gate_cum.(i + 1)) in
  { features; powers; nbits }

let num_cycles t = Array.length t.powers

let reference t = t.powers

type qiu = Stepwise.t

let fit_qiu ?f_enter t =
  Stepwise.fit ?f_enter ~features:t.features ~response:t.powers ()

let predict_qiu m t = Array.map (Stepwise.predict m) t.features

let qiu_variables (m : qiu) = List.length m.Stepwise.selected

type clusters = {
  bits : int;
  table : float array;  (** mean power per cluster *)
  fallback : float;  (** global mean for empty clusters *)
}

(* Cluster key: a [bits]-bit hash of the toggle pattern (which bits of the
   feature vector's current-toggle section are set). *)
let cluster_of ~bits ~nbits feat =
  let h = ref 0 in
  for b = 0 to nbits - 1 do
    if feat.(b) > 0.5 then h := (!h * 31) + b + 1
  done;
  !h land ((1 lsl bits) - 1)

let fit_clusters ?(bits = 6) t =
  let size = 1 lsl bits in
  let sum = Array.make size 0.0 and count = Array.make size 0 in
  Array.iteri
    (fun i feat ->
      let c = cluster_of ~bits ~nbits:t.nbits feat in
      sum.(c) <- sum.(c) +. t.powers.(i);
      count.(c) <- count.(c) + 1)
    t.features;
  let fallback = Hlp_util.Stats.mean t.powers in
  {
    bits;
    table =
      Array.init size (fun c ->
          if count.(c) = 0 then fallback else sum.(c) /. float_of_int count.(c));
    fallback;
  }

let predict_clusters m t =
  Array.map (fun feat -> m.table.(cluster_of ~bits:m.bits ~nbits:t.nbits feat)) t.features

type accuracy = {
  average_error : float;
  cycle_error : float;
}

let accuracy ~predicted ~actual =
  assert (Array.length predicted = Array.length actual && Array.length actual > 0);
  let avg_p = Hlp_util.Stats.mean predicted and avg_a = Hlp_util.Stats.mean actual in
  (* per-cycle relative error, normalized by the mean power (per-cycle
     actuals can be near zero, which would blow up a pointwise ratio) *)
  let cyc = ref 0.0 in
  Array.iteri (fun i p -> cyc := !cyc +. abs_float (p -. actual.(i))) predicted;
  {
    average_error = Hlp_util.Stats.relative_error ~actual:avg_a ~estimate:avg_p;
    cycle_error = !cyc /. float_of_int (Array.length actual) /. max 1e-9 avg_a;
  }
