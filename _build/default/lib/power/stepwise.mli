(** Statistical macro-model construction with F-test variable selection
    (Wu, Ding, Hsieh, Pedram [44], Section II-C1).

    Instead of fixing the macro-model equation form, start from a candidate
    variable pool and add (remove) the most (least) power-critical variable
    by a partial F-test at each step, so each module type ends up with its
    own equation — plus a confidence interval on predictions, which is what
    the statistical framework buys. *)

type t = {
  selected : int list;  (** indices into the candidate feature vector *)
  coeffs : float array;  (** parallel to [selected], plus intercept last *)
  sigma2 : float;  (** residual variance of the final fit *)
  dof : int;  (** residual degrees of freedom *)
}

val fit :
  ?f_enter:float ->
  ?f_remove:float ->
  features:float array array ->
  response:float array ->
  unit ->
  t
(** Forward-backward stepwise regression. A variable enters when its
    partial F statistic exceeds [f_enter] (default 4.0, ~5% significance)
    and leaves when it drops below [f_remove] (default 3.9 < f_enter so
    the loop terminates). An intercept is always included. *)

val predict : t -> float array -> float

val confidence_interval : t -> float array -> float * float
(** 95% prediction interval (normal approximation) — "the confidence level
    for the predicted power value" of the paper. *)

val r_squared : t -> features:float array array -> response:float array -> float
