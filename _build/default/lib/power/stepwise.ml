type t = {
  selected : int list;
  coeffs : float array;
  sigma2 : float;
  dof : int;
}

let design features selected =
  Array.map
    (fun row -> Array.of_list (List.map (fun j -> row.(j)) selected @ [ 1.0 ]))
    features

let rss features response selected =
  let x = design features selected in
  let beta = Hlp_util.Linalg.least_squares x response in
  let pred = Hlp_util.Linalg.mat_vec x beta in
  let ss = ref 0.0 in
  Array.iteri (fun i y -> let d = y -. pred.(i) in ss := !ss +. (d *. d)) response;
  (!ss, beta)

let fit ?(f_enter = 4.0) ?(f_remove = 3.9) ~features ~response () =
  assert (f_remove < f_enter);
  let n = Array.length response in
  let p = if n = 0 then 0 else Array.length features.(0) in
  assert (Array.length features = n && n > 3);
  let selected = ref [] in
  let continue = ref true in
  while !continue do
    continue := false;
    let k = List.length !selected in
    let rss_cur, _ = rss features response !selected in
    (* forward step: best variable to add *)
    if n - k - 2 > 0 then begin
      let best = ref None in
      for j = 0 to p - 1 do
        if not (List.mem j !selected) then begin
          let rss_new, _ = rss features response (j :: !selected) in
          let dof = n - k - 2 in
          if rss_new < rss_cur then begin
            let f = (rss_cur -. rss_new) /. (rss_new /. float_of_int dof) in
            match !best with
            | Some (_, bf) when bf >= f -> ()
            | _ -> best := Some (j, f)
          end
        end
      done;
      match !best with
      | Some (j, f) when f > f_enter ->
          selected := j :: !selected;
          continue := true
      | _ -> ()
    end;
    (* backward step: weakest variable to drop *)
    let k = List.length !selected in
    if k > 0 && n - k - 1 > 0 then begin
      let rss_cur, _ = rss features response !selected in
      let weakest = ref None in
      List.iter
        (fun j ->
          let without = List.filter (fun x -> x <> j) !selected in
          let rss_new, _ = rss features response without in
          let dof = n - k - 1 in
          let f = (rss_new -. rss_cur) /. (rss_cur /. float_of_int (max 1 dof)) in
          match !weakest with
          | Some (_, wf) when wf <= f -> ()
          | _ -> weakest := Some (j, f))
        !selected;
      match !weakest with
      | Some (j, f) when f < f_remove ->
          selected := List.filter (fun x -> x <> j) !selected;
          continue := true
      | _ -> ()
    end
  done;
  let selected = List.sort compare !selected in
  let rss_final, beta = rss features response selected in
  let dof = max 1 (n - List.length selected - 1) in
  { selected; coeffs = beta; sigma2 = rss_final /. float_of_int dof; dof }

let predict t row =
  let x = Array.of_list (List.map (fun j -> row.(j)) t.selected @ [ 1.0 ]) in
  Hlp_util.Linalg.vec_dot t.coeffs x

let confidence_interval t row =
  let center = predict t row in
  (* prediction interval ignoring parameter covariance: +- 1.96 sigma *)
  let half = 1.96 *. sqrt t.sigma2 in
  (center -. half, center +. half)

let r_squared t ~features ~response =
  let pred = Array.map (predict t) features in
  let my = Hlp_util.Stats.mean response in
  let ss_res = ref 0.0 and ss_tot = ref 0.0 in
  Array.iteri
    (fun i y ->
      let dr = y -. pred.(i) and dt = y -. my in
      ss_res := !ss_res +. (dr *. dr);
      ss_tot := !ss_tot +. (dt *. dt))
    response;
  if !ss_tot = 0.0 then 1.0 else 1.0 -. (!ss_res /. !ss_tot)
