(** Parametric power models for memories and chip-level components
    (Liu-Svensson [42], Section II-C1).

    A six-transistor SRAM of [2^n] words organized as [2^(n-k)] rows by
    [2^k] columns dissipates in four places per access: the cell array
    (bit-line swings), the row decoder, the selected word line, and the
    column-select/sense path. The organization parameter [k] trades row
    energy against column energy, so the model exposes the classic
    optimal-aspect-ratio exploration. Capacitances are in the same
    arbitrary units as the gate library; voltages in volts. *)

type sram = {
  n : int;  (** total address bits: the array stores [2^n] words *)
  k : int;  (** column bits: [2^k] columns of [2^(n-k)] rows *)
  word_bits : int;  (** bits per word read out by the sense amps *)
  vdd : float;
  v_swing : float;  (** bit-line swing (read) *)
  c_int : float;  (** wiring capacitance per cell along a row *)
  c_tr : float;  (** drain capacitance per cell on a bit line *)
}

val default_sram : n:int -> k:int -> sram
(** 0.8um-flavoured constants; [word_bits = 8]. *)

val cell_array_energy : sram -> float
(** Paper expression: [0.5 V Vswing 2^k (C_int + 2^(n-k) C_tr)] — every
    cell on the selected row drives bit or not-bit during a read. *)

val row_decoder_energy : sram -> float
val word_line_energy : sram -> float
val column_select_energy : sram -> float
val sense_amp_energy : sram -> float

val read_energy : sram -> float
(** Sum of the five components for one read access. *)

val optimal_k : n:int -> int
(** The column-bit count minimizing {!read_energy} for a [2^n]-word array
    (with {!default_sram} constants). *)

(** {1 Chip-level components} *)

val htree_clock_capacitance : levels:int -> c_wire_root:float -> float
(** Total capacitance of an H-tree clock net: each level halves the wire
    length but doubles the branch count, giving the geometric series the
    paper's processor model sums. *)

val interconnect_energy :
  length_mm:float -> c_per_mm:float -> vdd:float -> activity:float -> float

val off_chip_driver_energy : c_pad:float -> vdd:float -> activity:float -> float
