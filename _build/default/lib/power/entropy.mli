(** Information-theoretic power models (Section II-B1).

    Entropy measures the randomness of the signals crossing a module
    boundary; under temporal independence the switching activity of a line
    is at most half its entropy, so input/output entropies plus a model of
    how entropy decays through logic give a simulation-free estimate of the
    average switching activity — and hence of power, via
    [P = 0.5 V^2 f C_tot E_avg]. *)

val activity_upper_bound : float -> float
(** [h/2]: Marculescu et al.'s bound on the average switching activity of a
    line with bit entropy [h]. *)

val h_avg_marculescu : n:int -> m:int -> h_in:float -> h_out:float -> float
(** Closed-form average line entropy for a linear gate distribution between
    [n] inputs and [m] outputs with average bit-level boundary entropies
    [h_in], [h_out] (exponential per-level decay model, [9]). Requires
    [h_in > h_out > 0]. *)

val h_avg_nemani_najm : n:int -> m:int -> h_in:float -> h_out:float -> float
(** Nemani-Najm average line entropy [2 (H_in + H_out) / (3 (n + m))] from
    *word-level* boundary entropies (quadratic decay model, [10]). In
    practice the word entropies are approximated by the sums of bit
    entropies, which is what this function expects: pass
    [h_in = n * mean bit entropy] and [h_out = m * mean bit entropy]. *)

val power :
  c_tot:float -> e_avg:float -> vdd:float -> freq:float -> float
(** [0.5 V^2 f C_tot E_avg], the Section II-B1 power expression. *)

type estimate = {
  h_in : float;  (** measured mean input bit entropy *)
  h_out : float;  (** measured mean output bit entropy *)
  h_avg : float;  (** modeled average line entropy *)
  e_avg : float;  (** modeled average activity, [h_avg / 2] *)
  c_tot : float;
  power : float;
}

type model = Marculescu | Nemani_najm

val estimate_netlist :
  ?vdd:float ->
  ?freq:float ->
  model:model ->
  Hlp_logic.Netlist.t ->
  input_trace:int array ->
  estimate
(** End-to-end behavioural estimate of a combinational module: boundary
    entropies are measured on the given input trace (one word per cycle,
    packed LSB-first across the module's input vector) and on the outputs
    of a quick functional simulation — exactly the paper's flow. The
    line-entropy model converts them into an average activity; the
    structural [C_tot] comes from the netlist. *)
