type cube = { value : int; dc : int }

let cube_covers c m = m land lnot c.dc = c.value land lnot c.dc

let cube_literals ~nvars c = nvars - Hlp_util.Bits.popcount c.dc

let cube_size c = 1 lsl Hlp_util.Bits.popcount c.dc

let normalize c = { c with value = c.value land lnot c.dc }

(* Quine-McCluskey: repeatedly merge pairs of cubes identical except in one
   specified variable; cubes never merged into anything are prime. *)
let primes ~nvars on_set =
  assert (nvars >= 1 && nvars <= 14);
  let module S = Set.Make (struct
    type t = cube

    let compare = compare
  end) in
  let initial = List.map (fun m -> normalize { value = m; dc = 0 }) on_set in
  let rec rounds current acc_primes =
    if S.is_empty current then acc_primes
    else begin
      let merged = ref S.empty in
      let used = Hashtbl.create 64 in
      let arr = Array.of_list (S.elements current) in
      let n = Array.length arr in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let a = arr.(i) and b = arr.(j) in
          if a.dc = b.dc then begin
            let diff = a.value lxor b.value in
            if Hlp_util.Bits.popcount diff = 1 then begin
              merged := S.add (normalize { value = a.value; dc = a.dc lor diff }) !merged;
              Hashtbl.replace used a ();
              Hashtbl.replace used b ()
            end
          end
        done
      done;
      let primes_here =
        S.filter (fun c -> not (Hashtbl.mem used c)) current
      in
      rounds !merged (S.union acc_primes primes_here)
    end
  in
  S.elements (rounds (S.of_list initial) S.empty)

let essential_primes ~nvars on_set =
  let ps = primes ~nvars on_set in
  let essential = Hashtbl.create 16 in
  List.iter
    (fun m ->
      match List.filter (fun c -> cube_covers c m) ps with
      | [ only ] -> Hashtbl.replace essential only ()
      | _ -> ())
    on_set;
  List.filter (Hashtbl.mem essential) ps

let cover ~nvars on_set =
  if on_set = [] then []
  else begin
    let ps = primes ~nvars on_set in
    let ess = essential_primes ~nvars on_set in
    let covered = Hashtbl.create 64 in
    let mark c = List.iter (fun m -> if cube_covers c m then Hashtbl.replace covered m ()) on_set in
    List.iter mark ess;
    let chosen = ref (List.rev ess) in
    let remaining () = List.filter (fun m -> not (Hashtbl.mem covered m)) on_set in
    let rec greedy () =
      match remaining () with
      | [] -> ()
      | rem ->
          let best =
            List.fold_left
              (fun best c ->
                let gain = List.length (List.filter (cube_covers c) rem) in
                match best with
                | Some (_, g) when g >= gain -> best
                | _ when gain = 0 -> best
                | _ -> Some (c, gain))
              None ps
          in
          (match best with
          | None -> failwith "Primes.cover: uncoverable minterm"
          | Some (c, _) ->
              chosen := c :: !chosen;
              mark c;
              greedy ())
    in
    greedy ();
    List.rev !chosen
  end

let cover_literals ~nvars on_set =
  List.fold_left (fun acc c -> acc + cube_literals ~nvars c) 0 (cover ~nvars on_set)
