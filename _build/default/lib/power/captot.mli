(** Total-capacitance models for behavioral-level estimation
    (Section II-B1): when no netlist exists yet, [C_tot] itself must be
    predicted from boundary information.

    Two surveyed models: Cheng-Agrawal's entropic gate-count estimate
    (exponential in the input count — "too pessimistic when n is large")
    and Ferrandi et al.'s regression on the BDD node count of the
    function. *)

val cheng_agrawal : n:int -> m:int -> h_out:float -> float
(** [C_tot = (m/n) 2^n h_out]. *)

type ferrandi = { alpha : float; beta : float }

val ferrandi_predict : ferrandi -> n:int -> m:int -> bdd_nodes:int -> h_out:float -> float
(** [C_tot = alpha (m/n) N h_out + beta]. *)

val bdd_nodes_of_netlist : Hlp_logic.Netlist.t -> int
(** Shared node count of the output BDDs — the [N] of the model. *)

val fit_ferrandi :
  (Hlp_logic.Netlist.t * float) list -> ferrandi
(** Least-squares fit of [(alpha, beta)] over a population of synthesized
    circuits with known actual capacitances (the paper's "linear regression
    analysis on the total capacitance values for a large number of
    synthesized circuits"). Output entropies are taken under white-noise
    inputs via BDD signal probabilities. *)

val h_out_white_noise : Hlp_logic.Netlist.t -> float
(** Mean output bit entropy under independent equiprobable inputs,
    computed exactly from the output BDDs. *)
