let activity_upper_bound h = h /. 2.0

let h_avg_marculescu ~n ~m ~h_in ~h_out =
  assert (n > 0 && m > 0 && h_in > 0.0 && h_out > 0.0);
  let nf = float_of_int n and mf = float_of_int m in
  let ratio = h_in /. h_out in
  if abs_float (ratio -. 1.0) < 1e-6 then
    (* entropy does not decay: every line carries the boundary entropy *)
    h_in
  else begin
    let lnr = log ratio in
    let inv = h_out /. h_in in
    2.0 *. nf *. h_in
    /. ((nf +. mf) *. lnr)
    *. (1.0 -. (mf /. nf *. inv) -. ((1.0 -. (mf /. nf)) *. (1.0 -. inv) /. lnr))
  end

let h_avg_nemani_najm ~n ~m ~h_in ~h_out =
  assert (n > 0 && m > 0);
  2.0 /. (3.0 *. float_of_int (n + m)) *. (h_in +. h_out)

let power ~c_tot ~e_avg ~vdd ~freq = 0.5 *. vdd *. vdd *. freq *. c_tot *. e_avg

type estimate = {
  h_in : float;
  h_out : float;
  h_avg : float;
  e_avg : float;
  c_tot : float;
  power : float;
}

type model = Marculescu | Nemani_najm

let estimate_netlist ?(vdd = 5.0) ?(freq = 1.0) ~model net ~input_trace =
  let open Hlp_logic in
  let n = Array.length net.Netlist.inputs in
  let m = Array.length net.Netlist.outputs in
  assert (n > 0 && m > 0 && Array.length input_trace >= 2);
  (* quick functional simulation to observe the outputs *)
  let sim = Hlp_sim.Funcsim.create net in
  let out_trace =
    Array.map
      (fun w ->
        let vec = Array.init n (fun i -> Hlp_util.Bits.bit w i) in
        Hlp_sim.Funcsim.step sim vec;
        let v = ref 0 in
        Array.iteri
          (fun i (_, wire) -> if Hlp_sim.Funcsim.value sim wire then v := !v lor (1 lsl i))
          net.Netlist.outputs;
        !v)
      input_trace
  in
  let act_in = Hlp_sim.Activity.of_trace ~width:n input_trace in
  let act_out = Hlp_sim.Activity.of_trace ~width:m out_trace in
  let h_in = Hlp_sim.Activity.mean_bit_entropy act_in in
  let h_out = Hlp_sim.Activity.mean_bit_entropy act_out in
  let h_avg =
    match model with
    | Marculescu ->
        let h_in = max h_in 1e-6 and h_out = max h_out 1e-6 in
        (* the decay model needs h_out < h_in; clamp boundary noise *)
        let h_out = min h_out h_in in
        h_avg_marculescu ~n ~m ~h_in ~h_out
    | Nemani_najm ->
        (* sectional entropies approximated by bit-entropy sums *)
        h_avg_nemani_najm ~n ~m
          ~h_in:(h_in *. float_of_int n)
          ~h_out:(h_out *. float_of_int m)
  in
  let e_avg = activity_upper_bound h_avg in
  let c_tot = Netlist.total_capacitance net in
  { h_in; h_out; h_avg; e_avg; c_tot; power = power ~c_tot ~e_avg ~vdd ~freq }
