(** Cycle-accurate power macro-models (Section II-C1).

    Average-power models are not enough for reliability and noise analysis;
    the paper reviews two cycle-accurate approaches, both reproduced here:

    - Mehta-Owens-Irwin clustering [43]: input transitions are hashed into
      a small number of clusters and the per-cluster mean power is looked
      up — weak when "mode-changing bits" make nearby patterns behave
      differently;
    - Wu/Qiu et al. [44][45]: regression on per-cycle variables with
      F-test selection, extended with first-order temporal and
      pairwise spatial correlation terms. The paper's accuracy claim —
      macro-models with a handful of variables predict ~5-10% average and
      10-20% cycle power error — is the E28 reproduction target.

    Cycle power is switched capacitance per clock cycle; the reference
    comes from gate-level simulation of the module. *)

type dut = Macromodel.dut

type trace_data
(** Per-cycle features and reference powers for one stream. *)

val collect : dut -> int array list -> trace_data
(** Simulate the module over the streams (one per input word) and record,
    per transition: the per-bit input toggle vector, lag-1 toggle history,
    selected pairwise (spatial) toggle products, and the gate-level cycle
    capacitance. *)

val num_cycles : trace_data -> int

val reference : trace_data -> float array
(** Per-cycle gate-level capacitances. *)

(** {1 Qiu-style regression model} *)

type qiu

val fit_qiu : ?f_enter:float -> trace_data -> qiu
(** F-test stepwise selection over the per-cycle variable pool (per-bit
    toggles, lag-1 temporal terms, pairwise spatial terms). *)

val predict_qiu : qiu -> trace_data -> float array
(** Per-cycle predictions on (possibly different) trace data from the same
    module. *)

val qiu_variables : qiu -> int
(** Number of selected variables (the paper quotes ~8). *)

(** {1 Mehta-style clustering model} *)

type clusters

val fit_clusters : ?bits:int -> trace_data -> clusters
(** Hash each cycle's toggle pattern to a [2^bits]-entry table (default 64
    clusters, "relatively small ... for efficiency reasons") and store the
    mean power per cluster. *)

val predict_clusters : clusters -> trace_data -> float array

(** {1 Evaluation} *)

type accuracy = {
  average_error : float;  (** relative error of the mean power *)
  cycle_error : float;  (** mean relative error per cycle *)
}

val accuracy : predicted:float array -> actual:float array -> accuracy
