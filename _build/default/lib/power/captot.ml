let cheng_agrawal ~n ~m ~h_out =
  assert (n > 0 && m > 0);
  float_of_int m /. float_of_int n *. (2.0 ** float_of_int n) *. h_out

type ferrandi = { alpha : float; beta : float }

let ferrandi_predict { alpha; beta } ~n ~m ~bdd_nodes ~h_out =
  (alpha *. (float_of_int m /. float_of_int n) *. float_of_int bdd_nodes *. h_out)
  +. beta

let bdd_nodes_of_netlist net =
  let man = Hlp_bdd.Bdd.manager () in
  let order = Hlp_bdd.Bdd.first_use_order net in
  let outs = Hlp_bdd.Bdd.of_netlist ~order man net in
  Hlp_bdd.Bdd.size_shared (List.map snd outs)

let h_out_white_noise net =
  let man = Hlp_bdd.Bdd.manager () in
  let order = Hlp_bdd.Bdd.first_use_order net in
  let outs = Hlp_bdd.Bdd.of_netlist ~order man net in
  match outs with
  | [] -> 0.0
  | _ ->
      let entropies =
        List.map
          (fun (_, f) ->
            let p = Hlp_bdd.Bdd.probability man ~p:(fun _ -> 0.5) f in
            Hlp_sim.Activity.bit_entropy ~p)
          outs
      in
      Hlp_util.Stats.mean_list entropies

let fit_ferrandi population =
  assert (population <> []);
  let rows =
    List.map
      (fun (net, _) ->
        let open Hlp_logic in
        let n = Array.length net.Netlist.inputs in
        let m = Array.length net.Netlist.outputs in
        let nodes = bdd_nodes_of_netlist net in
        let h_out = h_out_white_noise net in
        [| float_of_int m /. float_of_int n *. float_of_int nodes *. h_out; 1.0 |])
      population
  in
  let x = Array.of_list rows in
  let y = Array.of_list (List.map snd population) in
  let beta = Hlp_util.Linalg.least_squares x y in
  { alpha = beta.(0); beta = beta.(1) }
