(** Netlist export: structural Verilog and Graphviz dot.

    The toolkit builds netlists through its own API (parsing HDL is out of
    scope, see DESIGN.md), but results should leave the sandbox: the
    Verilog writer emits a flat gate-level module that any simulator or
    synthesis tool can consume, and the dot writer draws small circuits for
    documentation. *)

val to_verilog : ?module_name:string -> Netlist.t -> string
(** Flat structural Verilog-2001: one `wire` per node, primitive gate
    instantiations (`and`, `or`, `not`, `xor`, ...), `assign`-based mux and
    xnor, and always-block flip-flops with an asynchronous reset to the
    declared initial state. Output names are sanitized to identifiers. *)

val to_dot : ?max_nodes:int -> Netlist.t -> string
(** Graphviz digraph of the netlist (refuses circuits above [max_nodes],
    default 400 — bigger graphs are unreadable anyway). *)
