(** Word-level circuit generators.

    These constructors play the role of the RT-level module library that the
    paper's macro-modeling flow characterizes: adders, multipliers,
    comparators, ALUs, shifters, register words, plus random logic for the
    regression experiments. All datapath words are LSB-first wire arrays.

    Functions beginning with a builder argument compose inside a larger
    design; the [*_circuit] functions at the bottom produce complete
    stand-alone netlists with named inputs/outputs. *)

open Netlist

type word = wire array
(** LSB-first bundle of wires. *)

val constant_word : Builder.b -> width:int -> int -> word
(** Constant driver word for the low [width] bits of the integer. *)

val zero_extend : Builder.b -> word -> int -> word
val half_adder : Builder.b -> wire -> wire -> wire * wire
(** [(sum, carry)]. *)

val full_adder : Builder.b -> wire -> wire -> wire -> wire * wire
(** [(sum, carry)]. *)

val ripple_adder : Builder.b -> ?cin:wire -> word -> word -> word * wire
(** Equal-width ripple-carry addition; returns [(sum, carry_out)]. *)

val subtractor : Builder.b -> word -> word -> word * wire
(** Two's-complement [a - b]; the extra wire is the borrow-free flag
    (carry out, i.e. [a >= b] for unsigned operands). *)

val negate : Builder.b -> word -> word
(** Two's-complement negation. *)

val equal : Builder.b -> word -> word -> wire
val less_than : Builder.b -> word -> word -> wire
(** Unsigned comparison [a < b]. *)

val mux_word : Builder.b -> sel:wire -> a0:word -> a1:word -> word
val and_word : Builder.b -> word -> word -> word
val xor_word : Builder.b -> word -> word -> word

val shift_left_const : Builder.b -> word -> int -> width:int -> word
(** Logical shift by a constant, truncated/zero-filled to [width]. *)

val carry_select_adder : Builder.b -> ?block:int -> word -> word -> word * wire
(** Carry-select organization: the word is split into blocks; each block
    computes both carry-in hypotheses in parallel and a mux picks the
    real one — faster and hungrier than ripple (the "internal
    organization/architecture" axis the macro-models are parameterized
    by). Functionally identical to {!ripple_adder}. *)

val array_multiplier : Builder.b -> word -> word -> word
(** Unsigned array multiplier; the product has [wa + wb] bits. This is the
    deep-logic-nesting module the paper singles out as hard for pure-input
    macro-models, and the main glitch producer for the retiming experiment. *)

val wallace_multiplier : Builder.b -> word -> word -> word
(** Carry-save (Wallace-style) reduction of the partial products followed
    by one final ripple adder: shallower than the array multiplier, fewer
    glitches, same function. *)

val constant_multiplier : Builder.b -> word -> int -> width:int -> word
(** Multiply by a non-negative constant using canonical-signed-digit
    recoding into shift-and-add/subtract — the strength-reduction
    transformation behind Table I. *)

val csd_digits : int -> int list
(** Canonical-signed-digit recoding, least-significant first, digits in
    [{-1, 0, 1}]; exposed for testing. *)

val register_word : ?init:int -> Builder.b -> word -> word
(** One flip-flop per bit. *)

val alu : Builder.b -> sel:word -> word -> word -> word
(** Four-function ALU ([00]=and, [01]=or, [10]=xor, [11]=add) on a 2-bit
    select word, used by the guarded-evaluation experiment. *)

(** {1 Complete circuits} *)

val adder_circuit : int -> t
(** [adder_circuit n]: n-bit adder with carry out. *)

val multiplier_circuit : int -> t
(** [multiplier_circuit n]: n x n unsigned array multiplier. *)

val comparator_circuit : int -> t
(** Outputs [lt] and [eq]. *)

val max_circuit : int -> t
(** [max(a, b)] via comparator and mux — the classic precomputation target:
    the MSB comparison usually decides the answer. *)

val alu_circuit : int -> t
val parity_circuit : int -> t

val random_logic :
  Hlp_util.Prng.t -> inputs:int -> outputs:int -> gates:int -> t
(** Random combinational DAG: each gate picks a random kind and random
    earlier fanins (biased toward recent nodes so depth grows). Used by the
    regression-based complexity/capacitance experiments, which need a large
    population of synthesized circuits. *)

val random_function_circuit : Hlp_util.Prng.t -> inputs:int -> minterm_prob:float -> t
(** Single-output circuit computing a random boolean function with the given
    on-set density, built as a two-level AND-OR cover of its minterms (then
    usable for area-complexity regression). Inputs must be small (<= 12). *)
