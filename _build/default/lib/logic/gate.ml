type kind =
  | Input
  | Const of bool
  | Buf
  | Not
  | And of int
  | Or of int
  | Nand of int
  | Nor of int
  | Xor
  | Xnor
  | Mux
  | Dff

let arity = function
  | Input | Const _ -> 0
  | Buf | Not | Dff -> 1
  | And n | Or n | Nand n | Nor n ->
      assert (n >= 2);
      n
  | Xor | Xnor -> 2
  | Mux -> 3

let eval kind pins =
  assert (Array.length pins = arity kind);
  let conj () = Array.for_all (fun b -> b) pins in
  let disj () = Array.exists (fun b -> b) pins in
  match kind with
  | Input -> invalid_arg "Gate.eval: Input has no function"
  | Const b -> b
  | Buf | Dff -> pins.(0)
  | Not -> not pins.(0)
  | And _ -> conj ()
  | Or _ -> disj ()
  | Nand _ -> not (conj ())
  | Nor _ -> not (disj ())
  | Xor -> pins.(0) <> pins.(1)
  | Xnor -> pins.(0) = pins.(1)
  | Mux -> if pins.(0) then pins.(2) else pins.(1)

let name = function
  | Input -> "input"
  | Const b -> if b then "one" else "zero"
  | Buf -> "buf"
  | Not -> "inv"
  | And n -> Printf.sprintf "and%d" n
  | Or n -> Printf.sprintf "or%d" n
  | Nand n -> Printf.sprintf "nand%d" n
  | Nor n -> Printf.sprintf "nor%d" n
  | Xor -> "xor2"
  | Xnor -> "xnor2"
  | Mux -> "mux2"
  | Dff -> "dff"

(* Characterization: loosely modeled on a 0.8um standard-cell book, in units
   of one minimum inverter input capacitance and one inverter delay. *)

let input_capacitance = function
  | Input | Const _ -> 0.0
  | Buf -> 1.0
  | Not -> 1.0
  | And _ | Nand _ -> 1.1
  | Or _ | Nor _ -> 1.2
  | Xor | Xnor -> 1.8
  | Mux -> 1.4
  | Dff -> 2.0

let intrinsic_capacitance = function
  | Input -> 0.4
  | Const _ -> 0.0
  | Buf -> 0.6
  | Not -> 0.5
  | And n | Nand n -> 0.6 +. (0.25 *. float_of_int n)
  | Or n | Nor n -> 0.7 +. (0.3 *. float_of_int n)
  | Xor | Xnor -> 2.0
  | Mux -> 1.6
  | Dff -> 2.4

let delay = function
  | Input | Const _ -> 0.0
  | Buf -> 1.0
  | Not -> 1.0
  | And n | Nand n -> 1.0 +. (0.2 *. float_of_int (n - 2))
  | Or n | Nor n -> 1.2 +. (0.2 *. float_of_int (n - 2))
  | Xor | Xnor -> 1.8
  | Mux -> 1.5
  | Dff -> 2.0

let gate_equivalents = function
  | Input | Const _ -> 0.0
  | Buf | Not -> 0.5
  | And n | Nand n -> 0.5 *. float_of_int n
  | Or n | Nor n -> 0.5 *. float_of_int n
  | Xor | Xnor -> 1.5
  | Mux -> 1.5
  | Dff -> 4.0

let all_combinational =
  [ Buf; Not; And 2; And 3; Or 2; Or 3; Nand 2; Nand 3; Nor 2; Nor 3; Xor; Xnor; Mux ]
