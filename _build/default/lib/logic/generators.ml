open Netlist

type word = wire array

module B = Builder

let constant_word b ~width v =
  Array.init width (fun i -> B.const_ b (Hlp_util.Bits.bit v i))

let zero_extend b w width =
  if Array.length w >= width then Array.sub w 0 width
  else begin
    let zero = B.const_ b false in
    Array.init width (fun i -> if i < Array.length w then w.(i) else zero)
  end

let half_adder b x y =
  let sum = B.xor_ b x y in
  let carry = B.and_ b [ x; y ] in
  (sum, carry)

let full_adder b x y cin =
  let t = B.xor_ b x y in
  let sum = B.xor_ b t cin in
  let carry = B.or_ b [ B.and_ b [ x; y ]; B.and_ b [ t; cin ] ] in
  (sum, carry)

let ripple_adder b ?cin x y =
  assert (Array.length x = Array.length y);
  let n = Array.length x in
  let carry = ref (match cin with Some c -> c | None -> B.const_ b false) in
  let sum =
    Array.init n (fun i ->
        let s, c = full_adder b x.(i) y.(i) !carry in
        carry := c;
        s)
  in
  (sum, !carry)

let negate b w =
  let inverted = Array.map (B.not_ b) w in
  let one = B.const_ b true in
  let zero = Array.map (fun _ -> B.const_ b false) w in
  let sum, _ = ripple_adder b ~cin:one inverted zero in
  sum

let subtractor b x y =
  let ynot = Array.map (B.not_ b) y in
  let one = B.const_ b true in
  ripple_adder b ~cin:one x ynot

let equal b x y =
  assert (Array.length x = Array.length y);
  let eqs = Array.to_list (Array.mapi (fun i xi -> B.xnor_ b xi y.(i)) x) in
  B.and_ b eqs

let less_than b x y =
  (* a < b iff a - b borrows, i.e. carry-out of a + ~b + 1 is 0 *)
  let _, carry = subtractor b x y in
  B.not_ b carry

let mux_word b ~sel ~a0 ~a1 =
  assert (Array.length a0 = Array.length a1);
  Array.init (Array.length a0) (fun i -> B.mux b ~sel ~a0:a0.(i) ~a1:a1.(i))

let and_word b x y =
  assert (Array.length x = Array.length y);
  Array.mapi (fun i xi -> B.and_ b [ xi; y.(i) ]) x

let xor_word b x y =
  assert (Array.length x = Array.length y);
  Array.mapi (fun i xi -> B.xor_ b xi y.(i)) x

let shift_left_const b w k ~width =
  let zero = B.const_ b false in
  Array.init width (fun i ->
      if i < k then zero
      else if i - k < Array.length w then w.(i - k)
      else zero)

let carry_select_adder b ?(block = 4) x y =
  assert (Array.length x = Array.length y);
  let n = Array.length x in
  let zero = B.const_ b false and one = B.const_ b true in
  let rec blocks lo carry acc =
    if lo >= n then (Array.concat (List.rev acc), carry)
    else begin
      let len = min block (n - lo) in
      let xs = Array.sub x lo len and ys = Array.sub y lo len in
      (* both hypotheses computed speculatively *)
      let s0, c0 = ripple_adder b ~cin:zero xs ys in
      let s1, c1 = ripple_adder b ~cin:one xs ys in
      let sum = Array.init len (fun i -> B.mux b ~sel:carry ~a0:s0.(i) ~a1:s1.(i)) in
      let cout = B.mux b ~sel:carry ~a0:c0 ~a1:c1 in
      blocks (lo + len) cout (sum :: acc)
    end
  in
  blocks 0 zero []

let array_multiplier b x y =
  let wa = Array.length x and wb = Array.length y in
  let width = wa + wb in
  let zero = B.const_ b false in
  let row j =
    (* partial product x * y_j shifted left by j *)
    Array.init width (fun i ->
        if i < j || i - j >= wa then zero else B.and_ b [ x.(i - j); y.(j) ])
  in
  let acc = ref (row 0) in
  for j = 1 to wb - 1 do
    let sum, _ = ripple_adder b !acc (row j) in
    acc := sum
  done;
  !acc

(* carry-save addition: three words in, (sum, carry) out, no propagation *)
let carry_save b x y z =
  let n = Array.length x in
  assert (Array.length y = n && Array.length z = n);
  let zero = B.const_ b false in
  let sum = Array.init n (fun i -> B.xor_ b (B.xor_ b x.(i) y.(i)) z.(i)) in
  let carry =
    Array.init n (fun i ->
        if i = 0 then zero
        else
          let j = i - 1 in
          B.or_ b
            [ B.and_ b [ x.(j); y.(j) ]; B.and_ b [ x.(j); z.(j) ];
              B.and_ b [ y.(j); z.(j) ] ])
  in
  (sum, carry)

let wallace_multiplier b x y =
  let wa = Array.length x and wb = Array.length y in
  let width = wa + wb in
  let zero = B.const_ b false in
  let row j =
    Array.init width (fun i ->
        if i < j || i - j >= wa then zero else B.and_ b [ x.(i - j); y.(j) ])
  in
  let rec reduce rows =
    match rows with
    | [] -> Array.make width zero
    | [ only ] -> only
    | [ a; c ] ->
        let s, _ = ripple_adder b a c in
        s
    | a :: c :: d :: rest ->
        let s, carry = carry_save b a c d in
        reduce (rest @ [ s; carry ])
  in
  reduce (List.init wb row)

let csd_digits c =
  assert (c >= 0);
  (* canonical signed digit recoding: no two adjacent nonzero digits *)
  let rec go c =
    if c = 0 then []
    else if c land 1 = 0 then 0 :: go (c lsr 1)
    else
      let rem = c mod 4 in
      if rem = 3 then -1 :: go ((c + 1) lsr 1) else 1 :: go (c lsr 1)
  in
  go c

let constant_multiplier b w c ~width =
  let digits = csd_digits c in
  let zero_word = Array.init width (fun _ -> B.const_ b false) in
  let acc = ref zero_word and any = ref false in
  List.iteri
    (fun k d ->
      if d <> 0 then begin
        let shifted = shift_left_const b w k ~width in
        let term = if d = 1 then shifted else negate b shifted in
        if not !any then begin acc := term; any := true end
        else begin
          let sum, _ = ripple_adder b !acc term in
          acc := sum
        end
      end)
    digits;
  !acc

let register_word ?(init = 0) b w =
  Array.mapi (fun i d -> B.dff ~init:(Hlp_util.Bits.bit init i) b d) w

let alu b ~sel x y =
  assert (Array.length sel = 2);
  let a = and_word b x y in
  let o = Array.mapi (fun i xi -> B.or_ b [ xi; y.(i) ]) x in
  let xo = xor_word b x y in
  let sum, _ = ripple_adder b x y in
  let lo = mux_word b ~sel:sel.(0) ~a0:a ~a1:o in
  let hi = mux_word b ~sel:sel.(0) ~a0:xo ~a1:sum in
  mux_word b ~sel:sel.(1) ~a0:lo ~a1:hi

let finish_with_outputs b prefix word =
  Array.iteri (fun i w -> B.output b (Printf.sprintf "%s%d" prefix i) w) word;
  B.finish b

let adder_circuit n =
  let b = B.create () in
  let x = B.inputs ~prefix:"a" b n and y = B.inputs ~prefix:"b" b n in
  let sum, carry = ripple_adder b x y in
  Array.iteri (fun i w -> B.output b (Printf.sprintf "s%d" i) w) sum;
  B.output b "cout" carry;
  B.finish b

let multiplier_circuit n =
  let b = B.create () in
  let x = B.inputs ~prefix:"a" b n and y = B.inputs ~prefix:"b" b n in
  let p = array_multiplier b x y in
  finish_with_outputs b "p" p

let comparator_circuit n =
  let b = B.create () in
  let x = B.inputs ~prefix:"a" b n and y = B.inputs ~prefix:"b" b n in
  B.output b "lt" (less_than b x y);
  B.output b "eq" (equal b x y);
  B.finish b

let max_circuit n =
  let b = B.create () in
  let x = B.inputs ~prefix:"a" b n and y = B.inputs ~prefix:"b" b n in
  let lt = less_than b x y in
  let m = mux_word b ~sel:lt ~a0:x ~a1:y in
  finish_with_outputs b "m" m

let alu_circuit n =
  let b = B.create () in
  let sel = B.inputs ~prefix:"op" b 2 in
  let x = B.inputs ~prefix:"a" b n and y = B.inputs ~prefix:"b" b n in
  let r = alu b ~sel x y in
  finish_with_outputs b "r" r

let parity_circuit n =
  let b = B.create () in
  let x = B.inputs ~prefix:"a" b n in
  let rec tree = function
    | [] -> B.const_ b false
    | [ w ] -> w
    | ws ->
        let rec pair = function
          | [] -> []
          | [ w ] -> [ w ]
          | a :: c :: rest -> B.xor_ b a c :: pair rest
        in
        tree (pair ws)
  in
  B.output b "parity" (tree (Array.to_list x));
  B.finish b

let random_logic rng ~inputs ~outputs ~gates =
  let b = B.create () in
  let ins = B.inputs b inputs in
  ignore ins;
  let kinds =
    [| Gate.And 2; Gate.Or 2; Gate.Nand 2; Gate.Nor 2; Gate.Xor; Gate.Xnor;
       Gate.Not; Gate.And 3; Gate.Or 3; Gate.Mux |]
  in
  let count = ref inputs in
  (* pick fanins biased toward recent nodes so the DAG gains depth *)
  let pick () =
    let n = !count in
    let r = Hlp_util.Prng.float rng 1.0 in
    let idx =
      if r < 0.5 then n - 1 - Hlp_util.Prng.int rng (max 1 (n / 4))
      else Hlp_util.Prng.int rng n
    in
    max 0 (min (n - 1) idx)
  in
  let last = ref 0 in
  for _ = 1 to gates do
    let kind = Hlp_util.Prng.choose rng kinds in
    let fanin = Array.init (Gate.arity kind) (fun _ -> pick ()) in
    last := B.gate b kind fanin;
    incr count
  done;
  (* outputs: the last [outputs] created gates (or fewer) *)
  let total = !count in
  for i = 0 to outputs - 1 do
    let w = max 0 (total - 1 - i) in
    B.output b (Printf.sprintf "o%d" i) w
  done;
  B.finish b

let random_function_circuit rng ~inputs ~minterm_prob =
  assert (inputs <= 12);
  let b = B.create () in
  let ins = B.inputs b inputs in
  let neg = Array.map (B.not_ b) ins in
  let products = ref [] in
  for m = 0 to (1 lsl inputs) - 1 do
    if Hlp_util.Prng.bernoulli rng minterm_prob then begin
      let lits =
        List.init inputs (fun i ->
            if Hlp_util.Bits.bit m i then ins.(i) else neg.(i))
      in
      products := B.and_ b lits :: !products
    end
  done;
  B.output b "f" (B.or_ b !products);
  B.finish b
