lib/logic/export.ml: Array Buffer Gate List Netlist Printf String
