lib/logic/generators.ml: Array Builder Gate Hlp_util List Netlist Printf
