lib/logic/export.mli: Netlist
