lib/logic/gate.ml: Array Printf
