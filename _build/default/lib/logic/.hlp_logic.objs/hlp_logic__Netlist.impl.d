lib/logic/netlist.ml: Array Gate Hashtbl List Printf
