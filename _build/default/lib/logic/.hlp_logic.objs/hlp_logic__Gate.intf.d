lib/logic/gate.mli:
