lib/logic/generators.mli: Builder Hlp_util Netlist
