(** Gate library: primitive cell kinds, their logic functions, and their
    capacitance/delay characterization.

    The library plays the role of the technology library the paper's
    estimation techniques assume: every cell carries an intrinsic output
    capacitance, a per-pin input capacitance, and a propagation delay, so a
    netlist has a well-defined total capacitance and a well-defined switched
    capacitance under simulation. Values are in arbitrary-but-consistent
    capacitance units (1.0 = one minimum inverter input); only ratios matter
    for the reproduced experiments. *)

type kind =
  | Input  (** primary input pseudo-gate *)
  | Const of bool  (** constant driver *)
  | Buf
  | Not
  | And of int  (** [And n]: n-input AND, n >= 2 *)
  | Or of int
  | Nand of int
  | Nor of int
  | Xor  (** 2-input *)
  | Xnor  (** 2-input *)
  | Mux  (** 3 pins: select, data0, data1; output = select ? data1 : data0 *)
  | Dff  (** 1 pin: data; output is the registered value *)

val arity : kind -> int
(** Number of fanin pins. *)

val eval : kind -> bool array -> bool
(** Combinational function of the cell. For [Dff] this is the identity on
    its single pin (the simulator decides when to latch it); [Input] and
    [Const] take no pins. *)

val name : kind -> string
(** Short cell name, e.g. ["nand3"]. *)

val input_capacitance : kind -> float
(** Capacitance presented by one input pin of the cell. *)

val intrinsic_capacitance : kind -> float
(** Parasitic capacitance at the cell output (drain junctions etc.). *)

val delay : kind -> float
(** Nominal propagation delay in normalized gate-delay units; used by the
    event-driven simulator, so unequal path delays create glitches exactly
    as in the paper's discussion of spurious transitions. *)

val gate_equivalents : kind -> float
(** Size of the cell in 2-input-NAND equivalents, the unit used by the
    Chip Estimation System complexity model (Section II-B2). *)

val all_combinational : kind list
(** Every combinational kind at representative arities, for tests. *)
