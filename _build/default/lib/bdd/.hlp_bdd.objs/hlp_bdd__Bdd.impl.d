lib/bdd/bdd.ml: Array Gate Hashtbl Hlp_logic List Netlist
