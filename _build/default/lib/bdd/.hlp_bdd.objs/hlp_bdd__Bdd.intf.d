lib/bdd/bdd.mli: Hlp_logic
