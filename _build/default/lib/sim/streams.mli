(** Input-stream generators.

    The paper's macro-modeling results hinge on the statistics of the data
    driving a module: pseudorandom white noise for characterization,
    temporally correlated sign-extended data (speech-like) that breaks naive
    models, biased streams that expose training bias. Each generator
    produces a reproducible word trace from a {!Hlp_util.Prng.t}. Words are
    LSB-first unsigned integers of the given width. *)

val uniform : Hlp_util.Prng.t -> width:int -> n:int -> int array
(** Independent uniform words: the pseudorandom characterization data of
    macro-model step 1. *)

val biased_bits : Hlp_util.Prng.t -> width:int -> p:float -> n:int -> int array
(** Each bit independently 1 with probability [p] each cycle. *)

val correlated_bits :
  Hlp_util.Prng.t -> width:int -> p:float -> rho:float -> n:int -> int array
(** Per-bit two-state Markov stream with stationary one-probability [p] and
    lag-1 correlation [rho] ([rho = 0] is white noise; [rho -> 1] freezes).
    Transition probabilities follow from [p] and [rho]. *)

val gaussian_walk :
  Hlp_util.Prng.t -> width:int -> sigma:float -> n:int -> int array
(** Two's-complement random-walk data (reflecting at the representable
    range). High-order sign bits switch rarely and in a correlated way while
    low-order bits look random — exactly the dual-bit-type regime of
    Landman-Rabaey. *)

val counter : start:int -> width:int -> n:int -> int array
(** Consecutive addresses [start, start+1, ...] (mod 2^width). *)

val strided : start:int -> stride:int -> width:int -> n:int -> int array

val hold : Hlp_util.Prng.t -> change_prob:float -> int array -> int array
(** Resample a trace so that each cycle keeps the previous word with
    probability [1 - change_prob] (activation-frequency control for the
    power-factor-approximation experiment). *)

val constant : value:int -> n:int -> int array

(** {1 Packing into circuit input vectors} *)

val pack : widths:int list -> int array list -> int -> bool array
(** [pack ~widths traces i] concatenates (LSB-first) the [i]-th word of each
    trace into one input vector, in order; trace [k] contributes
    [List.nth widths k] bits. Suitable as the vector source of
    {!Funcsim.run}. *)

val pack_fn : widths:int list -> int array list -> int -> bool array
(** Alias of {!pack} with the usual partial application
    [run sim (pack_fn ~widths traces) n]. *)
