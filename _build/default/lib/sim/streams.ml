open Hlp_util

let uniform rng ~width ~n =
  Array.init n (fun _ -> Int64.to_int (Int64.shift_right_logical (Prng.bits64 rng) 2) land Bits.mask width)

let biased_bits rng ~width ~p ~n =
  Array.init n (fun _ ->
      let w = ref 0 in
      for i = 0 to width - 1 do
        if Prng.bernoulli rng p then w := !w lor (1 lsl i)
      done;
      !w)

let correlated_bits rng ~width ~p ~rho ~n =
  assert (p > 0.0 && p < 1.0 && rho >= 0.0 && rho < 1.0);
  (* two-state Markov chain: P(1->1) = p + rho(1-p), P(0->1) = p(1-rho) *)
  let p11 = p +. (rho *. (1.0 -. p)) in
  let p01 = p *. (1.0 -. rho) in
  let state = Array.init width (fun _ -> Prng.bernoulli rng p) in
  Array.init n (fun _ ->
      let w = ref 0 in
      for i = 0 to width - 1 do
        let next = if state.(i) then Prng.bernoulli rng p11 else Prng.bernoulli rng p01 in
        state.(i) <- next;
        if next then w := !w lor (1 lsl i)
      done;
      !w)

let gaussian_walk rng ~width ~sigma ~n =
  let lo = -(1 lsl (width - 1)) and hi = (1 lsl (width - 1)) - 1 in
  let x = ref 0 in
  Array.init n (fun _ ->
      let step = int_of_float (Float.round (Prng.gaussian rng ~mu:0.0 ~sigma)) in
      let nx = !x + step in
      let nx = if nx > hi then (2 * hi) - nx else if nx < lo then (2 * lo) - nx else nx in
      x := max lo (min hi nx);
      Bits.of_signed ~width !x)

let counter ~start ~width ~n =
  Array.init n (fun i -> (start + i) land Bits.mask width)

let strided ~start ~stride ~width ~n =
  Array.init n (fun i -> (start + (i * stride)) land Bits.mask width)

let hold rng ~change_prob trace =
  let prev = ref (if Array.length trace > 0 then trace.(0) else 0) in
  Array.mapi
    (fun i w ->
      if i = 0 || Prng.bernoulli rng change_prob then begin
        prev := w;
        w
      end
      else !prev)
    trace

let constant ~value ~n = Array.make n value

let pack ~widths traces i =
  let total = List.fold_left ( + ) 0 widths in
  let vec = Array.make total false in
  let pos = ref 0 in
  List.iter2
    (fun width trace ->
      let w = trace.(i) in
      for b = 0 to width - 1 do
        vec.(!pos + b) <- Bits.bit w b
      done;
      pos := !pos + width)
    widths traces;
  vec

let pack_fn = pack
