open Hlp_util

type t = {
  width : int;
  n : int;
  signal_prob : float array;
  activity : float array;
}

let of_trace ~width trace =
  let n = Array.length trace in
  assert (n >= 2);
  let ones = Array.make width 0 and toggles = Array.make width 0 in
  Array.iteri
    (fun i w ->
      for b = 0 to width - 1 do
        if Bits.bit w b then ones.(b) <- ones.(b) + 1;
        if i > 0 && Bits.bit w b <> Bits.bit trace.(i - 1) b then
          toggles.(b) <- toggles.(b) + 1
      done)
    trace;
  {
    width;
    n;
    signal_prob = Array.map (fun c -> float_of_int c /. float_of_int n) ones;
    activity = Array.map (fun c -> float_of_int c /. float_of_int (n - 1)) toggles;
  }

let mean_signal_prob t = Stats.mean t.signal_prob
let mean_activity t = Stats.mean t.activity

let bit_entropy ~p =
  if p <= 0.0 || p >= 1.0 then 0.0
  else
    let q = 1.0 -. p in
    -.((p *. (log p /. log 2.0)) +. (q *. (log q /. log 2.0)))

let bit_entropies t = Array.map (fun p -> bit_entropy ~p) t.signal_prob

let mean_bit_entropy t = Stats.mean (bit_entropies t)

let word_entropy ~width trace =
  let mask = Bits.mask width in
  let counts = Hashtbl.create 256 in
  Array.iter
    (fun w ->
      let w = w land mask in
      Hashtbl.replace counts w (1 + Option.value ~default:0 (Hashtbl.find_opt counts w)))
    trace;
  let n = float_of_int (Array.length trace) in
  Hashtbl.fold
    (fun _ c acc ->
      let p = float_of_int c /. n in
      acc -. (p *. (log p /. log 2.0)))
    counts 0.0

let sign_transition_probs ~width trace =
  let n = Array.length trace in
  assert (n >= 2);
  let counts = Array.make 4 0 in
  let sign w = Bits.bit w (width - 1) in
  for i = 1 to n - 1 do
    let a = sign trace.(i - 1) and b = sign trace.(i) in
    let idx = (if a then 2 else 0) + if b then 1 else 0 in
    counts.(idx) <- counts.(idx) + 1
  done;
  Array.map (fun c -> float_of_int c /. float_of_int (n - 1)) counts

let breakpoint t =
  (* scan from the MSB down: the correlated region is the maximal suffix of
     bits whose activity is below 0.35 toggles/cycle *)
  let rec go b = if b >= 0 && t.activity.(b) < 0.35 then go (b - 1) else b + 1 in
  go (t.width - 1)
