(** Trace statistics: the signal probabilities, switching activities, and
    empirical entropies that the behavioral-level estimation models of
    Section II-B consume. *)

type t = {
  width : int;
  n : int;  (** trace length in words *)
  signal_prob : float array;  (** per bit, fraction of cycles at 1 *)
  activity : float array;  (** per bit, toggles per cycle *)
}

val of_trace : width:int -> int array -> t
(** Analyze a word trace. Requires at least 2 words. *)

val mean_signal_prob : t -> float
val mean_activity : t -> float
(** Average bit-level switching activity over the word — the [E_I]/[E_O] of
    the macro-model equations. *)

val bit_entropy : p:float -> float
(** Binary entropy [h(p)] in bits ([0.] at [p = 0] or [1]). *)

val bit_entropies : t -> float array
(** Per-bit entropy from the signal probabilities (the
    independence-upper-bound form used throughout Section II-B1). *)

val mean_bit_entropy : t -> float
(** Average per-bit entropy [h] — the [h_in]/[h_out] of the Marculescu
    model. *)

val word_entropy : width:int -> int array -> float
(** Empirical word-level (sectional) entropy [-sum p_i log2 p_i] over the
    distinct words of the trace — the [H_in]/[H_out] of the Nemani-Najm
    model. *)

val sign_transition_probs : width:int -> int array -> float array
(** Probabilities of the four sign transitions [++ +- -+ --] between
    consecutive words (two's-complement MSB as sign) — the [E_xy] of the
    dual-bit-type macro-model. Order: [|p_pp; p_pm; p_mp; p_mm|]. *)

val breakpoint : t -> int
(** Dual-bit-type boundary: the lowest bit position from which the
    measured activity stays clearly below the white-noise level (0.5
    toggles/cycle), i.e. the start of the correlated "sign" region.
    Equals [width] for white noise. *)
