lib/sim/funcsim.ml: Array Gate Hlp_logic Netlist String
