lib/sim/streams.mli: Hlp_util
