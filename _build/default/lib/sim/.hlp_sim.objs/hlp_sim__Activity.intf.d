lib/sim/activity.mli:
