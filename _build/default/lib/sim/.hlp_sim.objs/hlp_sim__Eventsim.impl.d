lib/sim/eventsim.ml: Array Gate Hlp_logic Hlp_util List Netlist
