lib/sim/eventsim.mli: Hlp_logic
