lib/sim/funcsim.mli: Hlp_logic
