lib/sim/streams.ml: Array Bits Float Hlp_util Int64 List Prng
