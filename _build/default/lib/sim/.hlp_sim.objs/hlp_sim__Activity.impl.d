lib/sim/activity.ml: Array Bits Hashtbl Hlp_util Option Stats
