(** Event-driven timed simulation with glitch accounting.

    Uses a transport-delay model with the per-cell delays of the gate
    library: when paths of unequal length reconverge, intermediate spurious
    transitions (glitches) occur and are charged capacitance, exactly the
    effect the low-power retiming technique of Section III-J exploits
    (registers filter glitches). A zero-delay settle of the same circuit
    gives the functional transition count; the difference is glitch power. *)

type s

val create : Hlp_logic.Netlist.t -> s

val step : s -> bool array -> unit
(** One clock cycle: latch flip-flops, apply the input vector, then run the
    event queue to quiescence. *)

val value : s -> Hlp_logic.Netlist.wire -> bool
val cycles : s -> int

val toggle_counts : s -> int array
(** All transitions, including glitches. *)

val functional_toggle_counts : s -> int array
(** Transitions between settled cycle boundaries only (what a zero-delay
    simulator would report). *)

val glitch_counts : s -> int array
(** [toggle_counts - functional_toggle_counts], per node. *)

val switched_capacitance : s -> float
(** Capacitance-weighted total including glitches. *)

val functional_switched_capacitance : s -> float

val glitch_capacitance : s -> float
(** Capacitance switched by spurious transitions alone. *)

val run : s -> (int -> bool array) -> int -> unit
