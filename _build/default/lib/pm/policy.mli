(** System-level power management (Section III-B).

    An event-driven device alternates Active and Idle periods. A shutdown
    policy decides, at the start of each idle period (and knowing only the
    past), when to power the device down; waking it back up costs time
    [t_wakeup] and energy [e_wakeup]. Policies reproduced:

    - always-on (no management);
    - static timeout after [T] (Fig. 3 and its three documented flaws);
    - Srivastava's threshold rule: a short preceding active burst predicts
      a long idle period — shut down immediately;
    - Srivastava's regression rule: predict the idle length as a quadratic
      function of the previous active/idle durations; shut down now if the
      prediction exceeds the break-even time;
    - Hwang-Wu: exponentially-weighted prediction with misprediction
      correction and pre-wakeup (hides the restart latency);
    - the clairvoyant oracle (lower bound on energy). *)

type device = {
  p_active : float;  (** power while computing *)
  p_idle : float;  (** power while on but idle *)
  p_off : float;  (** power while shut down *)
  t_wakeup : float;  (** time to come back up *)
  e_wakeup : float;  (** energy of one restart *)
}

val default_device : device
(** X-server-class numbers: idle power close to active power (the display
    chain burns power even when nothing happens), cheap sleep state. *)

val breakeven : device -> float
(** Minimum idle length for which shutting down immediately saves energy. *)

type policy =
  | Always_on
  | Oracle
  | Timeout of float
  | Threshold of float
      (** shut down immediately iff the preceding active period was shorter
          than the given value *)
  | Regression
  | Exp_average of { alpha : float; prewake : bool }

val policy_name : policy -> string

type session = { active : float; idle : float }

val workload :
  ?sessions:int ->
  ?mean_active:float ->
  ?short_idle:float ->
  ?long_idle:float ->
  ?long_prob:float ->
  Hlp_util.Prng.t ->
  session array
(** Event-driven workload: exponential active bursts; idle periods are a
    mixture of short interactive gaps and heavy-tailed think-time pauses —
    the distribution shape that makes naive timeouts waste power. A short
    active burst precedes long idles with high probability (the structure
    Srivastava's threshold rule exploits). *)

type stats = {
  energy : float;
  always_on_energy : float;
  oracle_energy : float;
  improvement : float;  (** [always_on_energy / energy] *)
  delay_penalty : float;  (** added wakeup latency, fraction of total time *)
  shutdowns : int;
}

val simulate : device -> policy -> session array -> stats
(** Run the policy over the workload and account energy and latency. *)
