lib/pm/multistate.ml: Array Hashtbl List Option Policy Printf
