lib/pm/policy.mli: Hlp_util
