lib/pm/policy.ml: Array Hlp_util List Printf
