lib/pm/multistate.mli: Policy
