(** Multi-depth shutdown (extension of Section III-B).

    The paper notes a device can be shut down "by lowering its power supply
    or by turning off its clock" — mechanisms with very different restart
    costs. This module generalizes {!Policy} to a menu of sleep states
    (e.g. clock-gated doze: cheap to enter/leave, modest savings; supply
    cut: deep savings, expensive wakeup) and lets the predictor choose a
    depth per idle period: predicted short idles doze, predicted long idles
    power off. *)

type sleep_state = {
  label : string;
  power : float;  (** draw while in this state *)
  t_wake : float;
  e_wake : float;
}

type device = {
  p_active : float;
  p_idle : float;
  sleep_states : sleep_state list;  (** ordered from shallow to deep *)
}

val default_device : device
(** Idle 0.9, doze 0.3 (cheap wake), off 0.02 (expensive wake). *)

val breakeven : device -> sleep_state -> float
(** Idle length above which entering the state beats staying idle. *)

val best_state_for : device -> float -> sleep_state option
(** The energy-optimal depth for a known idle length ([None] = stay idle);
    the clairvoyant decision rule. *)

type choice = Stay_idle | Sleep of sleep_state

type policy =
  | Deepest_only  (** classic single-state shutdown (always power off) *)
  | Oracle_depth  (** clairvoyant depth per idle period *)
  | Predictive_depth of float
      (** exponential-average idle prediction (the given alpha) feeding
          {!best_state_for} *)

val policy_name : policy -> string

type stats = {
  energy : float;
  always_on_energy : float;
  improvement : float;
  delay_penalty : float;
  depth_histogram : (string * int) list;  (** sleeps entered per state *)
}

val simulate : device -> policy -> Policy.session array -> stats
(** Same session workloads as {!Policy.workload}. Wakeups are on demand
    (latency charged per sleep whose state has [t_wake > 0]). *)
