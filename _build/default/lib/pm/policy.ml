type device = {
  p_active : float;
  p_idle : float;
  p_off : float;
  t_wakeup : float;
  e_wakeup : float;
}

let default_device =
  { p_active = 1.0; p_idle = 0.9; p_off = 0.02; t_wakeup = 2.0; e_wakeup = 3.0 }

let breakeven d =
  (* p_idle * t = p_off * t + e_wakeup  =>  t = e_wakeup / (p_idle - p_off) *)
  d.e_wakeup /. (d.p_idle -. d.p_off)

type policy =
  | Always_on
  | Oracle
  | Timeout of float
  | Threshold of float
  | Regression
  | Exp_average of { alpha : float; prewake : bool }

let policy_name = function
  | Always_on -> "always-on"
  | Oracle -> "oracle"
  | Timeout t -> Printf.sprintf "timeout(%.0f)" t
  | Threshold t -> Printf.sprintf "threshold(%.1f)" t
  | Regression -> "regression"
  | Exp_average { alpha; prewake } ->
      Printf.sprintf "exp-average(%.1f%s)" alpha (if prewake then "+prewake" else "")

type session = { active : float; idle : float }

let workload ?(sessions = 2000) ?(mean_active = 3.0) ?(short_idle = 4.0)
    ?(long_idle = 120.0) ?(long_prob = 0.35) rng =
  (* consecutive think-time pauses are correlated (the user keeps doing the
     same kind of thing), which is what history-based predictors exploit *)
  let last_long = ref long_idle in
  Array.init sessions (fun _ ->
      if Hlp_util.Prng.bernoulli rng long_prob then begin
        let fresh = Hlp_util.Prng.pareto rng ~shape:1.8 ~scale:long_idle in
        let idle = (0.7 *. !last_long) +. (0.3 *. fresh) in
        last_long := idle;
        (* think-time sessions start with a very short burst of activity *)
        { active = Hlp_util.Prng.exponential rng ~mean:(0.1 *. mean_active); idle }
      end
      else
        { active = Hlp_util.Prng.exponential rng ~mean:mean_active;
          idle = Hlp_util.Prng.exponential rng ~mean:short_idle })

type stats = {
  energy : float;
  always_on_energy : float;
  oracle_energy : float;
  improvement : float;
  delay_penalty : float;
  shutdowns : int;
}

(* Per-idle-period decision: time at which to power down (or None), and a
   predicted wake-up time for prewaking policies. *)
type decision = { shutdown_at : float option; prewake_at : float option }

let simulate d policy sessions_arr =
  let be = breakeven d in
  let energy = ref 0.0 and penalty = ref 0.0 and shutdowns = ref 0 in
  let always_on = ref 0.0 and oracle = ref 0.0 and total_time = ref 0.0 in
  (* policy state *)
  let history = ref [] in  (* (active, idle) most recent first *)
  (* Hwang-Wu-style predictor: think-time sessions are recognized by their
     short activity burst and get their own exponentially-weighted idle
     predictor, so interactive gaps do not pollute it *)
  let exp_pred = ref (4.0 *. be) in
  let think_session active = active < 1.5 in
  let regression_predict active =
    (* quadratic fit idle ~ c0 + c1 a + c2 a^2 over a sliding window *)
    let window = 60 in
    let h = !history in
    if List.length h < 10 then be
    else begin
      let recent = List.filteri (fun i _ -> i < window) h in
      let x =
        Array.of_list (List.map (fun (a, _) -> [| 1.0; a; a *. a |]) recent)
      in
      let y = Array.of_list (List.map snd recent) in
      match Hlp_util.Linalg.least_squares x y with
      | beta -> max 0.0 (beta.(0) +. (beta.(1) *. active) +. (beta.(2) *. active *. active))
      | exception Failure _ -> be
    end
  in
  let decide active =
    match policy with
    | Always_on -> { shutdown_at = None; prewake_at = None }
    | Oracle -> { shutdown_at = None; prewake_at = None }  (* handled separately *)
    | Timeout t -> { shutdown_at = Some t; prewake_at = None }
    | Threshold a_th ->
        if active < a_th then { shutdown_at = Some 0.0; prewake_at = None }
        else { shutdown_at = None; prewake_at = None }
    | Regression ->
        let pred = regression_predict active in
        if pred > be then { shutdown_at = Some 0.0; prewake_at = None }
        else { shutdown_at = None; prewake_at = None }
    | Exp_average { alpha = _; prewake } ->
        if think_session active then begin
          let pred = !exp_pred in
          if pred > be then
            { shutdown_at = Some 0.0;
              prewake_at = (if prewake then Some (max 0.5 (pred -. d.t_wakeup)) else None) }
          else { shutdown_at = None; prewake_at = None }
        end
        else { shutdown_at = None; prewake_at = None }
  in
  Array.iter
    (fun { active; idle } ->
      total_time := !total_time +. active +. idle;
      always_on := !always_on +. (d.p_active *. active) +. (d.p_idle *. idle);
      oracle :=
        !oracle +. (d.p_active *. active)
        +. min (d.p_idle *. idle) ((d.p_off *. idle) +. d.e_wakeup);
      energy := !energy +. (d.p_active *. active);
      (match policy with
      | Oracle ->
          energy :=
            !energy +. min (d.p_idle *. idle) ((d.p_off *. idle) +. d.e_wakeup)
      | _ -> (
          let dec = decide active in
          match dec.shutdown_at with
          | None -> energy := !energy +. (d.p_idle *. idle)
          | Some s when s >= idle -> energy := !energy +. (d.p_idle *. idle)
          | Some s ->
              incr shutdowns;
              let wake =
                match dec.prewake_at with
                | Some w when w > s && w < idle -> Some w
                | _ -> None
              in
              (match wake with
              | Some w ->
                  (* prewake with misprediction correction: stay up for one
                     break-even window after the predicted wake; if the idle
                     period outlives it, go back to sleep and wake on demand *)
                  energy :=
                    !energy +. (d.p_idle *. s) +. (d.p_off *. (w -. s)) +. d.e_wakeup;
                  if idle -. w <= be then
                    (* hit: the request arrives while the device is up *)
                    energy := !energy +. (d.p_idle *. (idle -. w))
                  else begin
                    energy :=
                      !energy +. (d.p_idle *. be)
                      +. (d.p_off *. (idle -. w -. be))
                      +. d.e_wakeup;
                    penalty := !penalty +. d.t_wakeup
                  end
              | None ->
                  (* wake on demand: pay the restart latency *)
                  energy :=
                    !energy +. (d.p_idle *. s) +. (d.p_off *. (idle -. s)) +. d.e_wakeup;
                  penalty := !penalty +. d.t_wakeup)));
      (* update predictors *)
      (match policy with
      | Exp_average { alpha; _ } ->
          if think_session active then
            exp_pred := (alpha *. idle) +. ((1.0 -. alpha) *. !exp_pred)
      | _ -> ());
      history := (active, idle) :: !history)
    sessions_arr;
  {
    energy = !energy;
    always_on_energy = !always_on;
    oracle_energy = !oracle;
    improvement = (if !energy > 0.0 then !always_on /. !energy else infinity);
    delay_penalty = (if !total_time > 0.0 then !penalty /. !total_time else 0.0);
    shutdowns = !shutdowns;
  }
