type sleep_state = {
  label : string;
  power : float;
  t_wake : float;
  e_wake : float;
}

type device = {
  p_active : float;
  p_idle : float;
  sleep_states : sleep_state list;
}

let default_device =
  {
    p_active = 1.0;
    p_idle = 0.9;
    sleep_states =
      [
        { label = "doze"; power = 0.3; t_wake = 0.2; e_wake = 0.4 };
        { label = "off"; power = 0.02; t_wake = 2.0; e_wake = 3.0 };
      ];
  }

let breakeven d s = s.e_wake /. (d.p_idle -. s.power)

(* energy of spending an idle period of length t in state s (enter at 0,
   wake on demand) vs staying idle *)
let idle_energy d t = d.p_idle *. t

let sleep_energy s t = (s.power *. t) +. s.e_wake

type choice = Stay_idle | Sleep of sleep_state

let best_state_for d t =
  let best =
    List.fold_left
      (fun acc s ->
        let e = sleep_energy s t in
        match acc with
        | Some (_, be) when be <= e -> acc
        | _ -> if e < idle_energy d t then Some (s, e) else acc)
      None d.sleep_states
  in
  Option.map fst best

type policy =
  | Deepest_only
  | Oracle_depth
  | Predictive_depth of float

let policy_name = function
  | Deepest_only -> "deepest-only"
  | Oracle_depth -> "oracle-depth"
  | Predictive_depth a -> Printf.sprintf "predictive-depth(%.1f)" a

type stats = {
  energy : float;
  always_on_energy : float;
  improvement : float;
  delay_penalty : float;
  depth_histogram : (string * int) list;
}

let simulate d policy sessions =
  let energy = ref 0.0 and always_on = ref 0.0 in
  let penalty = ref 0.0 and total_time = ref 0.0 in
  let histogram = Hashtbl.create 4 in
  let bump label =
    Hashtbl.replace histogram label
      (1 + Option.value ~default:0 (Hashtbl.find_opt histogram label))
  in
  let deepest =
    match List.rev d.sleep_states with
    | s :: _ -> s
    | [] -> invalid_arg "Multistate.simulate: no sleep states"
  in
  (* two idle-length predictors, one per session class (think-time sessions
     open with a short activity burst — the Policy threshold heuristic) *)
  let think_session active = active < 1.5 in
  let pred_long = ref (4.0 *. breakeven d deepest) in
  let pred_short = ref (breakeven d deepest /. 2.0) in
  Array.iter
    (fun { Policy.active; idle } ->
      total_time := !total_time +. active +. idle;
      always_on := !always_on +. (d.p_active *. active) +. (d.p_idle *. idle);
      energy := !energy +. (d.p_active *. active);
      let choice =
        match policy with
        | Deepest_only -> Sleep deepest
        | Oracle_depth -> (
            match best_state_for d idle with Some s -> Sleep s | None -> Stay_idle)
        | Predictive_depth _ -> (
            let predicted = if think_session active then !pred_long else !pred_short in
            match best_state_for d predicted with Some s -> Sleep s | None -> Stay_idle)
      in
      (match choice with
      | Stay_idle -> energy := !energy +. idle_energy d idle
      | Sleep s ->
          bump s.label;
          energy := !energy +. sleep_energy s idle;
          penalty := !penalty +. s.t_wake);
      (match policy with
      | Predictive_depth alpha ->
          let p = if think_session active then pred_long else pred_short in
          p := (alpha *. idle) +. ((1.0 -. alpha) *. !p)
      | Deepest_only | Oracle_depth -> ()))
    sessions;
  {
    energy = !energy;
    always_on_energy = !always_on;
    improvement = (if !energy > 0.0 then !always_on /. !energy else infinity);
    delay_penalty = (if !total_time > 0.0 then !penalty /. !total_time else 0.0);
    depth_histogram =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) histogram []);
  }
