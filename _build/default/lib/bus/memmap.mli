(** Low-power memory mapping (Panda-Dutt [53][54], Section III-A).

    The power of off-chip drivers and memory decoding tracks address-bus
    transitions, and those depend on {e where} the compiler places each
    array: two arrays accessed in an interleaved fashion should sit at
    bases that differ in few bits at matching offsets. Given the arrays and
    an access pattern extracted at compile time, this module searches the
    placement space for the bus-cheapest layout. *)

type arrays = (string * int) list
(** Declared arrays: (name, element count). *)

type access = { array_id : int; element : int }

val address_trace : bases:int array -> access array -> int array
(** Concrete bus addresses for the access sequence under a placement. *)

val transitions : width:int -> bases:int array -> access array -> int
(** Total address-bus toggles of the access sequence. *)

val naive_bases : arrays -> int array
(** Declaration-order packing (what a naive allocator does). *)

val aligned_bases : arrays -> int array
(** Packing with each base rounded up to the array's power-of-two size —
    keeps high-order bits stable within an array. *)

val optimize :
  ?iterations:int ->
  Hlp_util.Prng.t ->
  width:int ->
  arrays ->
  access array ->
  int array
(** Annealed placement search: permutes the packing order and toggles
    per-array power-of-two alignment to minimize {!transitions}. Always at
    least as good as the better of {!naive_bases}/{!aligned_bases} on the
    given trace (both are in the search space and seed the search). *)

val interleaved_workload :
  Hlp_util.Prng.t -> arrays -> n:int -> access array
(** Round-robin sequential walks over all arrays with occasional restarts:
    the Panda-Dutt motivating pattern. *)
