open Hlp_util

let sequential ?(start = 0) () ~width ~n =
  Array.init n (fun i -> (start + i) land Bits.mask width)

let sequential_with_jumps rng ~jump_prob ~width ~n =
  let mask = Bits.mask width in
  let addr = ref 0 in
  Array.init n (fun _ ->
      if Prng.bernoulli rng jump_prob then
        addr := Int64.to_int (Int64.shift_right_logical (Prng.bits64 rng) 8) land mask
      else addr := (!addr + 1) land mask;
      !addr)

let interleaved_arrays rng ~bases ~stride ~width ~n =
  assert (bases <> []);
  let mask = Bits.mask width in
  let arr = Array.of_list bases in
  let cursors = Array.map (fun b -> b) arr in
  let k = Array.length arr in
  Array.init n (fun _ ->
      let z = Prng.int rng k in
      let a = cursors.(z) land mask in
      cursors.(z) <- cursors.(z) + stride;
      a)

let loop_kernel rng ~body ~iterations ~width =
  let mask = Bits.mask width in
  let base = 0x40 in
  let data_base = 1 lsl (width - 2) in
  let out = ref [] in
  for it = 0 to iterations - 1 do
    for pc = 0 to body - 1 do
      out := ((base + pc) land mask) :: !out;
      (* sporadic data access inside the loop body *)
      if pc mod 5 = 3 then
        out := ((data_base + (it mod 64) + (Prng.int rng 4)) land mask) :: !out
    done
  done;
  Array.of_list (List.rev !out)

let random_data rng ~width ~n =
  let mask = Bits.mask width in
  Array.init n (fun _ ->
      Int64.to_int (Int64.shift_right_logical (Prng.bits64 rng) 8) land mask)
