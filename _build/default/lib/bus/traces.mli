(** Address/data trace generators for the bus-encoding experiments.

    The relative merit of the Section III-G codes depends entirely on the
    stream class: Gray/T0 shine on in-sequence instruction addresses,
    Working-Zone on interleaved array accesses, Beach on repetitive
    embedded-code traces, Bus-Invert on uncorrelated data. *)

val sequential : ?start:int -> unit -> width:int -> n:int -> int array
(** Pure in-sequence addresses (instruction fetch without branches). *)

val sequential_with_jumps :
  Hlp_util.Prng.t -> jump_prob:float -> width:int -> n:int -> int array
(** In-sequence runs broken by random jumps (realistic instruction flow). *)

val interleaved_arrays :
  Hlp_util.Prng.t -> bases:int list -> stride:int -> width:int -> n:int -> int array
(** Round-robin walks over several array regions — the working-zone
    workload: each access is sequential {e within} its zone but the zones
    interleave, destroying global sequentiality. *)

val loop_kernel :
  Hlp_util.Prng.t -> body:int -> iterations:int -> width:int -> int array
(** An embedded loop: the same short address sequence repeated (with the
    occasional data access inside), the Beach-code workload. *)

val random_data : Hlp_util.Prng.t -> width:int -> n:int -> int array
(** Uncorrelated data words (the Bus-Invert workload). *)
