lib/bus/memmap.mli: Hlp_util
