lib/bus/traces.mli: Hlp_util
