lib/bus/traces.ml: Array Bits Hlp_util Int64 List Prng
