lib/bus/encoding.mli:
