lib/bus/encoding.ml: Array Bits Hashtbl Hlp_util List Option Prng
