lib/bus/memmap.ml: Array Hlp_util List
