type arrays = (string * int) list

type access = { array_id : int; element : int }

let address_trace ~bases accesses =
  Array.map (fun a -> bases.(a.array_id) + a.element) accesses

let transitions ~width ~bases accesses =
  Hlp_util.Bits.transitions ~width (address_trace ~bases accesses)

let pack ?(align = fun _ -> false) arrays order =
  let n = List.length arrays in
  let sizes = Array.of_list (List.map snd arrays) in
  let bases = Array.make n 0 in
  let cursor = ref 0 in
  List.iter
    (fun idx ->
      let base =
        if align idx then begin
          let rec up a = if a >= sizes.(idx) then a else up (2 * a) in
          let alignment = up 1 in
          (!cursor + alignment - 1) / alignment * alignment
        end
        else !cursor
      in
      bases.(idx) <- base;
      cursor := base + sizes.(idx))
    order;
  bases

let naive_bases arrays = pack arrays (List.init (List.length arrays) (fun i -> i))

let aligned_bases arrays =
  pack ~align:(fun _ -> true) arrays (List.init (List.length arrays) (fun i -> i))

let optimize ?(iterations = 3000) rng ~width arrays accesses =
  let n = List.length arrays in
  let order = Array.init n (fun i -> i) in
  let aligned = Array.make n true in
  let current_bases () =
    pack ~align:(fun i -> aligned.(i)) arrays (Array.to_list order)
  in
  let cost () = transitions ~width ~bases:(current_bases ()) accesses in
  let best_bases = ref (current_bases ()) in
  let best = ref (cost ()) in
  (* seed with the two reference placements *)
  List.iter
    (fun bases ->
      let c = transitions ~width ~bases accesses in
      if c < !best then begin
        best := c;
        best_bases := bases
      end)
    [ naive_bases arrays; aligned_bases arrays ];
  let current = ref (cost ()) in
  for k = 0 to iterations - 1 do
    let undo =
      if Hlp_util.Prng.bool rng && n >= 2 then begin
        let i = Hlp_util.Prng.int rng n and j = Hlp_util.Prng.int rng n in
        let t = order.(i) in
        order.(i) <- order.(j);
        order.(j) <- t;
        fun () ->
          let t = order.(i) in
          order.(i) <- order.(j);
          order.(j) <- t
      end
      else begin
        let i = Hlp_util.Prng.int rng n in
        aligned.(i) <- not aligned.(i);
        fun () -> aligned.(i) <- not aligned.(i)
      end
    in
    let c' = cost () in
    let temperature =
      float_of_int (max 1 !current) *. 0.02
      *. exp (-6.0 *. float_of_int k /. float_of_int iterations)
    in
    if
      c' <= !current
      || Hlp_util.Prng.float rng 1.0 < exp (-.float_of_int (c' - !current) /. temperature)
    then begin
      current := c';
      if c' < !best then begin
        best := c';
        best_bases := current_bases ()
      end
    end
    else undo ()
  done;
  !best_bases

let interleaved_workload rng arrays ~n =
  (* lock-step interleaving — `for i { .. a[i] .. b[i] .. c[i] .. }` — with
     a sprinkling of random accesses; this is the access structure whose
     bus cost the placement controls *)
  let k = List.length arrays in
  let sizes = Array.of_list (List.map snd arrays) in
  let index = ref 0 and turn = ref 0 in
  Array.init n (fun _ ->
      if Hlp_util.Prng.bernoulli rng 0.1 then begin
        let a = Hlp_util.Prng.int rng k in
        { array_id = a; element = Hlp_util.Prng.int rng sizes.(a) }
      end
      else begin
        let a = !turn in
        turn := (!turn + 1) mod k;
        if !turn = 0 then incr index;
        { array_id = a; element = !index mod sizes.(a) }
      end)
