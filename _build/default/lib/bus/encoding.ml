open Hlp_util

type beach = {
  width : int;
  groups : int list list;  (** bit positions per cluster, LSB-first *)
  codes : int array list;  (** per cluster: bijective recoding table *)
  inverses : int array list;
}

type scheme =
  | Binary
  | Gray_code
  | Bus_invert
  | T0
  | T0_bus_invert
  | Working_zone of { zones : int; offset_bits : int }
  | Beach of beach

let scheme_name = function
  | Binary -> "binary"
  | Gray_code -> "gray"
  | Bus_invert -> "bus-invert"
  | T0 -> "t0"
  | T0_bus_invert -> "t0+bus-invert"
  | Working_zone _ -> "working-zone"
  | Beach _ -> "beach"

let extra_lines = function
  | Binary | Gray_code -> 0
  | Bus_invert | T0 -> 1
  | T0_bus_invert -> 2
  | Working_zone _ -> 1
  | Beach _ -> 0

type codec = {
  enc : int -> int;
  dec : int -> int;
  lines : int;
}

let binary_codec ~width = { enc = (fun w -> w); dec = (fun b -> b); lines = width }

let gray_codec ~width =
  { enc = (fun w -> Bits.to_gray w); dec = (fun b -> Bits.of_gray b); lines = width }

let bus_invert_codec ~width =
  let prev_bus = ref 0 in
  let enc w =
    let plain = w land Bits.mask width in
    let inverted = lnot w land Bits.mask width in
    let bus =
      if Bits.hamming plain (!prev_bus land Bits.mask width) > width / 2 then
        inverted lor (1 lsl width)
      else plain
    in
    prev_bus := bus;
    bus
  in
  let dec bus =
    let body = bus land Bits.mask width in
    if Bits.bit bus width then lnot body land Bits.mask width else body
  in
  { enc; dec; lines = width + 1 }

let t0_codec ~width =
  let mask = Bits.mask width in
  let prev_addr = ref None in
  let prev_bus = ref 0 in
  let enc w =
    let w = w land mask in
    let bus =
      match !prev_addr with
      | Some p when (p + 1) land mask = w ->
          (* consecutive: freeze the address lines, raise INC *)
          (!prev_bus land mask) lor (1 lsl width)
      | _ -> w
    in
    prev_addr := Some w;
    prev_bus := bus;
    bus
  in
  let dec_prev = ref None in
  let dec bus =
    let w =
      if Bits.bit bus width then
        match !dec_prev with
        | Some p -> (p + 1) land mask
        | None -> bus land mask
      else bus land mask
    in
    dec_prev := Some w;
    w
  in
  { enc; dec; lines = width + 1 }

let t0_bus_invert_codec ~width =
  let mask = Bits.mask width in
  let prev_addr = ref None in
  let prev_bus = ref 0 in
  let inc_line = 1 lsl width and inv_line = 1 lsl (width + 1) in
  let enc w =
    let w = w land mask in
    let bus =
      match !prev_addr with
      | Some p when (p + 1) land mask = w -> (!prev_bus land mask) lor inc_line
      | _ ->
          let inverted = lnot w land mask in
          if Bits.hamming w (!prev_bus land mask) > width / 2 then inverted lor inv_line
          else w
    in
    prev_addr := Some w;
    prev_bus := bus;
    bus
  in
  let dec_prev = ref None in
  let dec bus =
    let w =
      if bus land inc_line <> 0 then
        match !dec_prev with Some p -> (p + 1) land mask | None -> bus land mask
      else begin
        let body = bus land mask in
        if bus land inv_line <> 0 then lnot body land mask else body
      end
    in
    dec_prev := Some w;
    w
  in
  { enc; dec; lines = width + 2 }

let working_zone_codec ~zones ~offset_bits ~width =
  assert (zones >= 1 && offset_bits >= 1 && zones + offset_bits <= width);
  let mask = Bits.mask width in
  let half = 1 lsl (offset_bits - 1) in
  let hit_line = 1 lsl width in
  (* shared reference-update logic keeps encoder and decoder in lockstep *)
  let make_refs () = (Array.make zones 0, ref 0) in
  let find_zone refs addr =
    let rec go i =
      if i = zones then None
      else
        let diff = addr - refs.(i) in
        if diff >= -half && diff < half then Some (i, diff) else go (i + 1)
    in
    go 0
  in
  let enc_refs, enc_rr = make_refs () in
  let prev_bus = ref 0 in
  let enc w =
    let addr = w land mask in
    let bus =
      match find_zone enc_refs addr with
      | Some (i, diff) ->
          enc_refs.(i) <- addr;
          let offset = Bits.to_gray (diff + half) in
          (* layout: [offset gray][one-hot zone][frozen rest] + hit line *)
          let zone_bits = 1 lsl (offset_bits + i) in
          let frozen =
            !prev_bus land mask land lnot (Bits.mask (offset_bits + zones))
          in
          offset lor zone_bits lor frozen lor hit_line
      | None ->
          enc_refs.(!enc_rr) <- addr;
          enc_rr := (!enc_rr + 1) mod zones;
          addr
    in
    prev_bus := bus;
    bus
  in
  let dec_refs, dec_rr = make_refs () in
  let dec bus =
    if bus land hit_line <> 0 then begin
      let offset = Bits.of_gray (bus land Bits.mask offset_bits) - half in
      let rec zone i =
        if i = zones then failwith "working-zone: no zone bit"
        else if Bits.bit bus (offset_bits + i) then i
        else zone (i + 1)
      in
      let i = zone 0 in
      let addr = (dec_refs.(i) + offset) land mask in
      dec_refs.(i) <- addr;
      addr
    end
    else begin
      let addr = bus land mask in
      dec_refs.(!dec_rr) <- addr;
      dec_rr := (!dec_rr + 1) mod zones;
      addr
    end
  in
  { enc; dec; lines = width + 1 }

(* --- Beach --- *)

let cluster_value groups_bits w =
  List.fold_left (fun (acc, k) bit -> ((acc lor (if Bits.bit w bit then 1 lsl k else 0)), k + 1))
    (0, 0) groups_bits
  |> fst

let scatter_value groups_bits v =
  List.fold_left
    (fun (acc, k) bit -> ((if Bits.bit v k then acc lor (1 lsl bit) else acc), k + 1))
    (0, 0) groups_bits
  |> fst

let beach_codec (b : beach) =
  let enc w =
    List.fold_left2
      (fun acc bits code ->
        let v = cluster_value bits w in
        acc lor scatter_value bits code.(v))
      0 b.groups b.codes
  in
  let dec bus =
    List.fold_left2
      (fun acc bits inv ->
        let v = cluster_value bits bus in
        acc lor scatter_value bits inv.(v))
      0 b.groups b.inverses
  in
  { enc; dec; lines = b.width }

let codec_of = function
  | Binary -> binary_codec
  | Gray_code -> gray_codec
  | Bus_invert -> bus_invert_codec
  | T0 -> t0_codec
  | T0_bus_invert -> t0_bus_invert_codec
  | Working_zone { zones; offset_bits } -> working_zone_codec ~zones ~offset_bits
  | Beach b -> fun ~width -> assert (width = b.width); beach_codec b

(* Greedy/annealed recoding of one cluster: minimize
   sum counts(v, w) * hamming(code v, code w) over bijections. *)
let anneal_cluster rng nbits counts iterations =
  let space = 1 lsl nbits in
  let code = Array.init space (fun i -> i) in
  let cost () =
    Hashtbl.fold
      (fun (v, w) c acc -> acc +. (float_of_int c *. float_of_int (Bits.hamming code.(v) code.(w))))
      counts 0.0
  in
  let current = ref (cost ()) in
  for k = 0 to iterations - 1 do
    let i = Prng.int rng space and j = Prng.int rng space in
    if i <> j then begin
      let tmp = code.(i) in
      code.(i) <- code.(j);
      code.(j) <- tmp;
      let c' = cost () in
      let temperature = 2.0 *. exp (-6.0 *. float_of_int k /. float_of_int iterations) in
      if c' <= !current || Prng.float rng 1.0 < exp (-.(c' -. !current) /. temperature)
      then current := c'
      else begin
        let tmp = code.(i) in
        code.(i) <- code.(j);
        code.(j) <- tmp
      end
    end
  done;
  code

let train_beach ?(clusters = 4) ~width trace =
  assert (clusters >= 1 && width mod clusters = 0);
  let bits_per = width / clusters in
  assert (bits_per <= 8);
  let groups =
    List.init clusters (fun g -> List.init bits_per (fun k -> (g * bits_per) + k))
  in
  let rng = Prng.create 71 in
  let codes =
    List.map
      (fun bits ->
        let counts = Hashtbl.create 256 in
        for i = 1 to Array.length trace - 1 do
          let v = cluster_value bits trace.(i - 1) and w = cluster_value bits trace.(i) in
          Hashtbl.replace counts (v, w)
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts (v, w)))
        done;
        anneal_cluster rng bits_per counts 4000)
      groups
  in
  let inverses =
    List.map
      (fun code ->
        let inv = Array.make (Array.length code) 0 in
        Array.iteri (fun v c -> inv.(c) <- v) code;
        inv)
      codes
  in
  Beach { width; groups; codes; inverses }

type result = {
  transitions : int;
  lines : int;
  per_word : float;
}

let transmit scheme ~width stream =
  let codec = (codec_of scheme) ~width in
  Array.map codec.enc stream

let evaluate scheme ~width stream =
  let codec = (codec_of scheme) ~width in
  let bus = Array.map codec.enc stream in
  let transitions = Bits.transitions ~width:codec.lines bus in
  {
    transitions;
    lines = codec.lines;
    per_word =
      (if Array.length stream <= 1 then 0.0
       else float_of_int transitions /. float_of_int (Array.length stream - 1));
  }

let roundtrip scheme ~width stream =
  let codec = (codec_of scheme) ~width in
  Array.for_all
    (fun w -> codec.dec (codec.enc w) = w land Bits.mask width)
    stream
