(** Low-power bus encoding (Section III-G).

    Every scheme is a pair of stateful transducers (encoder at the sender,
    decoder at the receiver) over a [width]-bit bus, possibly with redundant
    extra lines. The figure of merit is the number of bus-line transitions
    needed to transmit a word stream; correctness means the decoder
    reconstructs the stream exactly.

    Schemes: plain binary (baseline), Gray [78], Bus-Invert [77], T0 [80],
    T0 combined with Bus-Invert [81], Working-Zone [82], and the
    trace-trained Beach code [83]. *)

type scheme =
  | Binary
  | Gray_code
  | Bus_invert
  | T0
  | T0_bus_invert
  | Working_zone of { zones : int; offset_bits : int }
  | Beach of beach

and beach
(** Trained Beach parameters: line clusters and per-cluster recoding
    functions (opaque; build with {!train_beach}). *)

val scheme_name : scheme -> string

val extra_lines : scheme -> int
(** Redundant bus lines the scheme adds (INV, INC, zone-miss...). *)

val train_beach : ?clusters:int -> width:int -> int array -> scheme
(** Learn a Beach code from a typical execution trace: bus lines are
    grouped into [clusters] (default 4) contiguous groups by correlation,
    and each cluster gets a one-to-one recoding minimizing the expected
    transitions between consecutive patterns of the training trace (the
    same hypercube-embedding machinery as low-power state encoding, as the
    paper points out). *)

type result = {
  transitions : int;  (** total line toggles on the (redundant) bus *)
  lines : int;  (** bus width including redundant lines *)
  per_word : float;  (** transitions per transmitted word *)
}

val evaluate : scheme -> width:int -> int array -> result
(** Encode the stream and count transitions (initial bus state: first
    encoded word; its transitions are not counted, matching the usual
    convention). *)

val transmit : scheme -> width:int -> int array -> int array
(** The sequence of physical bus states (encoded words, extra lines in the
    high bits), for inspection and tests. *)

val roundtrip : scheme -> width:int -> int array -> bool
(** [decode (encode stream) = stream]. *)
