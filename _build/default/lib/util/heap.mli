(** Minimal binary min-heap keyed by float priorities, for the event queue
    of the timed logic simulator. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int
val push : 'a t -> float -> 'a -> unit
val pop : 'a t -> (float * 'a) option
(** Smallest key first; ties pop in unspecified order. *)

val peek_key : 'a t -> float option
