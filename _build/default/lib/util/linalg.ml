type matrix = float array array

let make rows cols v = Array.init rows (fun _ -> Array.make cols v)

let identity n =
  Array.init n (fun i -> Array.init n (fun j -> if i = j then 1.0 else 0.0))

let dims m = (Array.length m, if Array.length m = 0 then 0 else Array.length m.(0))

let transpose m =
  let rows, cols = dims m in
  Array.init cols (fun j -> Array.init rows (fun i -> m.(i).(j)))

let vec_dot a b =
  assert (Array.length a = Array.length b);
  let s = ref 0.0 in
  Array.iteri (fun i x -> s := !s +. (x *. b.(i))) a;
  !s

let mat_vec m v =
  Array.map (fun row -> vec_dot row v) m

let mat_mul a b =
  let ra, ca = dims a and rb, cb = dims b in
  assert (ca = rb);
  let bt = transpose b in
  Array.init ra (fun i -> Array.init cb (fun j -> vec_dot a.(i) bt.(j)))

let solve a b =
  let n = Array.length a in
  assert (n = Array.length b);
  let m = Array.map Array.copy a in
  let x = Array.copy b in
  for col = 0 to n - 1 do
    (* partial pivoting *)
    let pivot = ref col in
    for r = col + 1 to n - 1 do
      if abs_float m.(r).(col) > abs_float m.(!pivot).(col) then pivot := r
    done;
    if abs_float m.(!pivot).(col) < 1e-12 then failwith "Linalg.solve: singular matrix";
    if !pivot <> col then begin
      let tmp = m.(col) in
      m.(col) <- m.(!pivot);
      m.(!pivot) <- tmp;
      let t = x.(col) in
      x.(col) <- x.(!pivot);
      x.(!pivot) <- t
    end;
    for r = col + 1 to n - 1 do
      let factor = m.(r).(col) /. m.(col).(col) in
      if factor <> 0.0 then begin
        for c = col to n - 1 do
          m.(r).(c) <- m.(r).(c) -. (factor *. m.(col).(c))
        done;
        x.(r) <- x.(r) -. (factor *. x.(col))
      end
    done
  done;
  for r = n - 1 downto 0 do
    let s = ref x.(r) in
    for c = r + 1 to n - 1 do
      s := !s -. (m.(r).(c) *. x.(c))
    done;
    x.(r) <- !s /. m.(r).(r)
  done;
  x

let least_squares x y =
  let xt = transpose x in
  let xtx = mat_mul xt x in
  let n = Array.length xtx in
  (* tiny ridge term guards against collinear design matrices *)
  for i = 0 to n - 1 do
    xtx.(i).(i) <- xtx.(i).(i) +. 1e-9
  done;
  let xty = mat_vec xt y in
  solve xtx xty

let least_squares_nonneg x y =
  let rows, cols = dims x in
  let active = Array.make cols true in
  let rec fit () =
    let idxs =
      List.filter (fun j -> active.(j)) (List.init cols (fun j -> j))
    in
    if idxs = [] then Array.make cols 0.0
    else begin
      let xr =
        Array.init rows (fun i -> Array.of_list (List.map (fun j -> x.(i).(j)) idxs))
      in
      let beta = least_squares xr y in
      let neg = ref false in
      List.iteri
        (fun k j -> if beta.(k) < 0.0 then begin active.(j) <- false; neg := true end)
        idxs;
      if !neg then fit ()
      else begin
        let full = Array.make cols 0.0 in
        List.iteri (fun k j -> full.(j) <- beta.(k)) idxs;
        full
      end
    end
  in
  fit ()

let r_squared x y beta =
  let pred = mat_vec x beta in
  let my = Stats.mean y in
  let ss_res = ref 0.0 and ss_tot = ref 0.0 in
  Array.iteri
    (fun i yi ->
      let dr = yi -. pred.(i) and dt = yi -. my in
      ss_res := !ss_res +. (dr *. dr);
      ss_tot := !ss_tot +. (dt *. dt))
    y;
  if !ss_tot = 0.0 then 1.0 else 1.0 -. (!ss_res /. !ss_tot)
