(** Small dense linear algebra for regression-based power macro-models.

    The macro-model characterization step of the paper (Section II-C1) fits
    multivariable regression curves by least-mean-square error; this module
    provides the normal-equation solver used for that fit, plus the matrix
    primitives needed by Markov steady-state analysis. *)

type matrix = float array array
(** Row-major; [m.(i).(j)] is row [i], column [j]. Rows must be rectangular. *)

val make : int -> int -> float -> matrix
val identity : int -> matrix
val dims : matrix -> int * int
val transpose : matrix -> matrix
val mat_mul : matrix -> matrix -> matrix
val mat_vec : matrix -> float array -> float array
val vec_dot : float array -> float array -> float

val solve : matrix -> float array -> float array
(** [solve a b] solves [a x = b] by Gaussian elimination with partial
    pivoting. Raises [Failure] on a (numerically) singular system. *)

val least_squares : matrix -> float array -> float array
(** [least_squares x y] returns coefficients [beta] minimizing
    [||x beta - y||^2] via the normal equations [(x^T x) beta = x^T y],
    with a tiny ridge term for robustness against collinear designs. *)

val least_squares_nonneg : matrix -> float array -> float array
(** Like {!least_squares} but clips negative coefficients to zero and
    re-fits the remaining columns; regression capacitances are physical
    quantities and must not be negative. *)

val r_squared : matrix -> float array -> float array -> float
(** [r_squared x y beta] is the coefficient of determination of the fit. *)
