(** Fixed-width text tables for the experiment reports printed by the bench
    harness (one per paper table/figure). *)

type align = Left | Right

val render : ?align:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays the rows out under the header with column
    widths fitted to the content, a rule under the header, and two spaces
    between columns. [align] defaults to [Right] for every column. *)

val print : ?align:align list -> title:string -> header:string list -> string list list -> unit
(** Render to stdout under a [== title ==] banner. *)

val fmt_float : ?digits:int -> float -> string
(** Fixed-point formatting helper (default 2 digits). *)

val fmt_pct : float -> string
(** Format a ratio as a percentage with one digit, e.g. [0.123] -> ["12.3%"]. *)
