type 'a t = {
  mutable keys : float array;
  mutable vals : 'a option array;
  mutable len : int;
}

let create () = { keys = Array.make 16 0.0; vals = Array.make 16 None; len = 0 }

let is_empty h = h.len = 0
let size h = h.len

let swap h i j =
  let k = h.keys.(i) in
  h.keys.(i) <- h.keys.(j);
  h.keys.(j) <- k;
  let v = h.vals.(i) in
  h.vals.(i) <- h.vals.(j);
  h.vals.(j) <- v

let push h key v =
  if h.len = Array.length h.keys then begin
    let keys = Array.make (2 * h.len) 0.0 and vals = Array.make (2 * h.len) None in
    Array.blit h.keys 0 keys 0 h.len;
    Array.blit h.vals 0 vals 0 h.len;
    h.keys <- keys;
    h.vals <- vals
  end;
  h.keys.(h.len) <- key;
  h.vals.(h.len) <- Some v;
  h.len <- h.len + 1;
  let i = ref (h.len - 1) in
  while !i > 0 && h.keys.((!i - 1) / 2) > h.keys.(!i) do
    swap h !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let pop h =
  if h.len = 0 then None
  else begin
    let key = h.keys.(0) in
    let v = match h.vals.(0) with Some v -> v | None -> assert false in
    h.len <- h.len - 1;
    h.keys.(0) <- h.keys.(h.len);
    h.vals.(0) <- h.vals.(h.len);
    h.vals.(h.len) <- None;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.len && h.keys.(l) < h.keys.(!smallest) then smallest := l;
      if r < h.len && h.keys.(r) < h.keys.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        swap h !i !smallest;
        i := !smallest
      end
      else continue := false
    done;
    Some (key, v)
  end

let peek_key h = if h.len = 0 then None else Some h.keys.(0)
