lib/util/bits.ml: Array Format
