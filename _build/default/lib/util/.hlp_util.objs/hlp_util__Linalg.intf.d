lib/util/linalg.mli:
