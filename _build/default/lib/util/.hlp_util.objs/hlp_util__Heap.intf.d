lib/util/heap.mli:
