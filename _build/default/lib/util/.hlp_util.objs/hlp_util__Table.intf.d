lib/util/table.mli:
