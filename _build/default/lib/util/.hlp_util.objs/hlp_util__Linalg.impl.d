lib/util/linalg.ml: Array List Stats
