lib/util/prng.mli:
