lib/util/stats.mli:
