let mean a =
  assert (Array.length a > 0);
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let mean_list l =
  assert (l <> []);
  List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let variance a =
  let n = Array.length a in
  if n <= 1 then 0.0
  else
    let m = mean a in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a in
    ss /. float_of_int (n - 1)

let stddev a = sqrt (variance a)

let minimum a = Array.fold_left min a.(0) a
let maximum a = Array.fold_left max a.(0) a

let sorted_copy a =
  let b = Array.copy a in
  Array.sort compare b;
  b

let median a =
  assert (Array.length a > 0);
  let b = sorted_copy a in
  let n = Array.length b in
  if n mod 2 = 1 then b.(n / 2) else (b.((n / 2) - 1) +. b.(n / 2)) /. 2.0

let percentile a p =
  assert (Array.length a > 0 && p >= 0.0 && p <= 100.0);
  let b = sorted_copy a in
  let n = Array.length b in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  b.(max 0 (min (n - 1) (rank - 1)))

let confidence_interval_95 a =
  let m = mean a in
  let half = 1.96 *. stddev a /. sqrt (float_of_int (Array.length a)) in
  (m -. half, m +. half)

let relative_error ~actual ~estimate =
  if actual = 0.0 then if estimate = 0.0 then 0.0 else infinity
  else abs_float (estimate -. actual) /. abs_float actual

let mean_relative_error ~actual ~estimate =
  assert (Array.length actual = Array.length estimate && Array.length actual > 0);
  let errs = Array.mapi (fun i a -> relative_error ~actual:a ~estimate:estimate.(i)) actual in
  mean errs

let rms_error ~actual ~estimate =
  assert (Array.length actual = Array.length estimate && Array.length actual > 0);
  let ss = ref 0.0 in
  Array.iteri (fun i a -> let d = estimate.(i) -. a in ss := !ss +. (d *. d)) actual;
  sqrt (!ss /. float_of_int (Array.length actual))

let correlation x y =
  assert (Array.length x = Array.length y && Array.length x > 0);
  let mx = mean x and my = mean y in
  let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
  Array.iteri
    (fun i xi ->
      let dx = xi -. mx and dy = y.(i) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy))
    x;
  if !sxx = 0.0 || !syy = 0.0 then 0.0 else !sxy /. sqrt (!sxx *. !syy)

type linreg = { slope : float; intercept : float; r2 : float }

let linear_regression ~x ~y =
  assert (Array.length x = Array.length y && Array.length x > 0);
  let mx = mean x and my = mean y in
  let sxy = ref 0.0 and sxx = ref 0.0 in
  Array.iteri
    (fun i xi ->
      let dx = xi -. mx in
      sxy := !sxy +. (dx *. (y.(i) -. my));
      sxx := !sxx +. (dx *. dx))
    x;
  let slope = if !sxx = 0.0 then 0.0 else !sxy /. !sxx in
  let intercept = my -. (slope *. mx) in
  let r = correlation x y in
  { slope; intercept; r2 = r *. r }

let ratio_estimator ~y ~x ~population_x =
  assert (Array.length x = Array.length y && Array.length x > 0);
  let sy = Array.fold_left ( +. ) 0.0 y and sx = Array.fold_left ( +. ) 0.0 x in
  if sx = 0.0 then 0.0 else sy /. sx *. population_x

let histogram ~bins a =
  assert (bins > 0 && Array.length a > 0);
  let lo = minimum a and hi = maximum a in
  let width = if hi = lo then 1.0 else (hi -. lo) /. float_of_int bins in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let i = int_of_float ((x -. lo) /. width) in
      let i = max 0 (min (bins - 1) i) in
      counts.(i) <- counts.(i) + 1)
    a;
  Array.mapi (fun i c -> (lo +. (float_of_int i *. width), c)) counts
