(** Bit-level helpers shared by bus encoders, stream statistics, and state
    encodings. Words are OCaml [int]s interpreted as unsigned bit-vectors of
    an explicit width (at most 62 bits). *)

val popcount : int -> int
(** Number of set bits. *)

val hamming : int -> int -> int
(** Hamming distance between two words. *)

val bit : int -> int -> bool
(** [bit w i] is bit [i] (LSB = 0) of [w]. *)

val set_bit : int -> int -> bool -> int
(** [set_bit w i v] returns [w] with bit [i] forced to [v]. *)

val mask : int -> int
(** [mask width] is the all-ones word of that width. Requires
    [0 <= width <= 62]. *)

val to_gray : int -> int
(** Binary-reflected Gray code of a word. *)

val of_gray : int -> int
(** Inverse of {!to_gray}. *)

val bits_of_int : width:int -> int -> bool array
(** LSB-first expansion to [width] booleans. *)

val int_of_bits : bool array -> int
(** LSB-first recomposition. *)

val sign_extend : width:int -> int -> int
(** Interpret the low [width] bits as two's complement and return the OCaml
    integer value. *)

val of_signed : width:int -> int -> int
(** Truncate a (possibly negative) integer to its low [width] bits. *)

val transitions : width:int -> int array -> int
(** Total number of bit toggles along a word sequence: the quantity every
    bus-encoding experiment counts. *)

val pp_binary : width:int -> Format.formatter -> int -> unit
(** Print as a fixed-width binary string, MSB first. *)
