type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?align ~header rows =
  let ncols = List.length header in
  let aligns =
    match align with
    | Some l ->
        assert (List.length l = ncols);
        Array.of_list l
    | None -> Array.make ncols Right
  in
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
        row)
    rows;
  let line cells =
    String.concat "  "
      (List.mapi (fun i c -> pad aligns.(i) widths.(i) c) cells)
  in
  let rule =
    String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let body = List.map line rows in
  String.concat "\n" ((line header :: rule :: body) @ [ "" ])

let print ?align ~title ~header rows =
  Printf.printf "== %s ==\n%s\n" title (render ?align ~header rows)

let fmt_float ?(digits = 2) v = Printf.sprintf "%.*f" digits v

let fmt_pct r = Printf.sprintf "%.1f%%" (100.0 *. r)
