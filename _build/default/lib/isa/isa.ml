type reg = int

type instr =
  | Add of reg * reg * reg
  | Sub of reg * reg * reg
  | Mul of reg * reg * reg
  | And_ of reg * reg * reg
  | Or_ of reg * reg * reg
  | Xor_ of reg * reg * reg
  | Addi of reg * reg * int
  | Shli of reg * reg * int
  | Ld of reg * reg * int
  | St of reg * reg * int
  | Beq of reg * reg * int
  | Bne of reg * reg * int
  | Blt of reg * reg * int
  | Jmp of int
  | Nop
  | Halt

type cls = Alu | Mulc | Mem | Branch | Other

let classify = function
  | Add _ | Sub _ | And_ _ | Or_ _ | Xor_ _ | Addi _ | Shli _ -> Alu
  | Mul _ -> Mulc
  | Ld _ | St _ -> Mem
  | Beq _ | Bne _ | Blt _ | Jmp _ -> Branch
  | Nop | Halt -> Other

let cls_name = function
  | Alu -> "alu"
  | Mulc -> "mul"
  | Mem -> "mem"
  | Branch -> "branch"
  | Other -> "other"

let all_classes = [ Alu; Mulc; Mem; Branch; Other ]

let imm16 v = v land 0xFFFF

let encode = function
  | Add (d, a, b) -> (0x01 lsl 24) lor (d lsl 20) lor (a lsl 16) lor (b lsl 12)
  | Sub (d, a, b) -> (0x02 lsl 24) lor (d lsl 20) lor (a lsl 16) lor (b lsl 12)
  | Mul (d, a, b) -> (0x03 lsl 24) lor (d lsl 20) lor (a lsl 16) lor (b lsl 12)
  | And_ (d, a, b) -> (0x04 lsl 24) lor (d lsl 20) lor (a lsl 16) lor (b lsl 12)
  | Or_ (d, a, b) -> (0x05 lsl 24) lor (d lsl 20) lor (a lsl 16) lor (b lsl 12)
  | Xor_ (d, a, b) -> (0x06 lsl 24) lor (d lsl 20) lor (a lsl 16) lor (b lsl 12)
  | Addi (d, a, imm) -> (0x07 lsl 24) lor (d lsl 20) lor (a lsl 16) lor imm16 imm
  | Shli (d, a, imm) -> (0x08 lsl 24) lor (d lsl 20) lor (a lsl 16) lor imm16 imm
  | Ld (d, a, off) -> (0x09 lsl 24) lor (d lsl 20) lor (a lsl 16) lor imm16 off
  | St (s, a, off) -> (0x0A lsl 24) lor (s lsl 20) lor (a lsl 16) lor imm16 off
  | Beq (a, b, off) -> (0x0B lsl 24) lor (a lsl 20) lor (b lsl 16) lor imm16 off
  | Bne (a, b, off) -> (0x0C lsl 24) lor (a lsl 20) lor (b lsl 16) lor imm16 off
  | Blt (a, b, off) -> (0x0D lsl 24) lor (a lsl 20) lor (b lsl 16) lor imm16 off
  | Jmp target -> (0x0E lsl 24) lor imm16 target
  | Nop -> 0x0F lsl 24
  | Halt -> 0x10 lsl 24

let pp = function
  | Add (d, a, b) -> Printf.sprintf "add r%d, r%d, r%d" d a b
  | Sub (d, a, b) -> Printf.sprintf "sub r%d, r%d, r%d" d a b
  | Mul (d, a, b) -> Printf.sprintf "mul r%d, r%d, r%d" d a b
  | And_ (d, a, b) -> Printf.sprintf "and r%d, r%d, r%d" d a b
  | Or_ (d, a, b) -> Printf.sprintf "or r%d, r%d, r%d" d a b
  | Xor_ (d, a, b) -> Printf.sprintf "xor r%d, r%d, r%d" d a b
  | Addi (d, a, imm) -> Printf.sprintf "addi r%d, r%d, %d" d a imm
  | Shli (d, a, imm) -> Printf.sprintf "shli r%d, r%d, %d" d a imm
  | Ld (d, a, off) -> Printf.sprintf "ld r%d, %d(r%d)" d off a
  | St (s, a, off) -> Printf.sprintf "st r%d, %d(r%d)" s off a
  | Beq (a, b, off) -> Printf.sprintf "beq r%d, r%d, %+d" a b off
  | Bne (a, b, off) -> Printf.sprintf "bne r%d, r%d, %+d" a b off
  | Blt (a, b, off) -> Printf.sprintf "blt r%d, r%d, %+d" a b off
  | Jmp t -> Printf.sprintf "jmp %d" t
  | Nop -> "nop"
  | Halt -> "halt"

let validate_program prog =
  let n = Array.length prog in
  let check_reg r = if r < 0 || r > 7 then failwith "Isa: bad register" in
  Array.iteri
    (fun pc i ->
      let branch off =
        let t = pc + 1 + off in
        if t < 0 || t > n then failwith "Isa: branch out of range"
      in
      match i with
      | Add (d, a, b) | Sub (d, a, b) | Mul (d, a, b) | And_ (d, a, b)
      | Or_ (d, a, b) | Xor_ (d, a, b) ->
          check_reg d; check_reg a; check_reg b
      | Addi (d, a, _) | Shli (d, a, _) | Ld (d, a, _) | St (d, a, _) ->
          check_reg d; check_reg a
      | Beq (a, b, off) | Bne (a, b, off) | Blt (a, b, off) ->
          check_reg a; check_reg b; branch off
      | Jmp t -> if t < 0 || t > n then failwith "Isa: jump out of range"
      | Nop | Halt -> ())
    prog
