(** Instruction-level power macro-model (Tiwari et al. [7], Section II-A).

    [Energy = sum_i BC_i N_i + sum_ij SC_ij N_ij + sum_k OC_k]: per-class
    base costs, circuit-state overheads for consecutive class pairs, and
    "other" costs for stalls and cache misses. Coefficients are fitted by
    least squares against the microarchitectural machine's measured energy
    over a training set of programs — the role played by physical current
    measurements in the paper. *)

type model

val feature_names : string list

val features : Machine.counters -> float array
(** The predictor vector: class counts, class-pair counts (collapsed to
    same/different class transitions to keep the model small), stalls,
    i-cache misses, d-cache misses, branch flushes. *)

val fit : (Isa.instr array * (int * int) list) list -> model
(** Train on (program, initial memory) pairs by running each and solving
    the regression. *)

val predict : model -> Machine.counters -> float
(** Estimated energy from counters alone (no per-cycle energy
    accounting). *)

val evaluate : model -> (Isa.instr array * (int * int) list) list -> float
(** Mean relative energy-prediction error over programs. *)

val coefficients : model -> (string * float) list
