type counters = {
  cycles : int;
  instructions : int;
  class_counts : (Isa.cls * int) list;
  pair_counts : ((Isa.cls * Isa.cls) * int) list;
  icache_misses : int;
  dcache_misses : int;
  branch_flushes : int;
  load_use_stalls : int;
  mem_reads : int;
  mem_writes : int;
  ibus_toggles : int;
}

type result = {
  energy : float;
  counters : counters;
  halted : bool;
  regs : int array;
}

(* Energy constants, arbitrary units; ratios follow the usual embedded-CPU
   folklore: multiplies and cache misses dominate, bus activity is
   data-dependent. *)
let e_cycle_base = 1.0
let e_fetch = 4.0
let e_ibus_per_toggle = 0.12
let e_decode = 2.0
let e_opbus_per_toggle = 0.06
let e_alu = 3.0
let e_alu_per_toggle = 0.10
let e_mul = 22.0
let e_mul_per_toggle = 0.30
let e_branch_unit = 2.5
let e_agen = 3.0
let e_dcache_hit = 6.0
let e_dcache_miss = 30.0
let e_icache_miss = 25.0
let e_stall_cycle = 1.5
let e_flush = 3.0

let icache_miss_penalty = 4
let dcache_miss_penalty = 8
let flush_penalty = 2

let cache_lines = 64
let line_words = 4

type cache = { tags : int array }

let cache_create () = { tags = Array.make cache_lines (-1) }

let cache_access c addr =
  let block = addr / line_words in
  let line = block mod cache_lines in
  if c.tags.(line) = block then true
  else begin
    c.tags.(line) <- block;
    false
  end

let word16 v = v land 0xFFFF
let toggles a b = Hlp_util.Bits.popcount ((a lxor b) land 0xFFFFFFFF)

let nop_hook = fun (_ : int) -> ()

let run_with_memory ?(max_instructions = 2_000_000) ?(mem_init = [])
    ?(on_fetch = nop_hook) ?(on_mem = nop_hook) prog =
  Isa.validate_program prog;
  let n = Array.length prog in
  let regs = Array.make 8 0 in
  let mem = Hashtbl.create 1024 in
  List.iter (fun (a, v) -> Hashtbl.replace mem (word16 a) v) mem_init;
  let read_mem a = Option.value ~default:0 (Hashtbl.find_opt mem (word16 a)) in
  let write_mem a v = Hashtbl.replace mem (word16 a) v in
  let icache = cache_create () and dcache = cache_create () in
  let pc = ref 0 in
  let energy = ref 0.0 and cycles = ref 0 and instructions = ref 0 in
  let icache_misses = ref 0 and dcache_misses = ref 0 in
  let branch_flushes = ref 0 and load_use_stalls = ref 0 in
  let mem_reads = ref 0 and mem_writes = ref 0 in
  let ibus_toggles = ref 0 in
  let class_counts = Hashtbl.create 8 and pair_counts = Hashtbl.create 16 in
  let bump tbl k =
    Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
  in
  let prev_encoding = ref 0 in
  let prev_class = ref None in
  let prev_dest = ref (-1) in  (* register written by the previous load *)
  let halted = ref false in
  let spend c e =
    cycles := !cycles + c;
    energy := !energy +. e +. (float_of_int c *. e_cycle_base)
  in
  let get r = if r = 0 then 0 else regs.(r) in
  let set r v = if r <> 0 then regs.(r) <- v in
  (try
     while (not !halted) && !pc < n && !instructions < max_instructions do
       let i = prog.(!pc) in
       on_fetch !pc;
       incr instructions;
       let cls = Isa.classify i in
       bump class_counts cls;
       (match !prev_class with
       | Some p -> bump pair_counts (p, cls)
       | None -> ());
       prev_class := Some cls;
       (* fetch *)
       let enc = Isa.encode i in
       let tog = toggles enc !prev_encoding in
       ibus_toggles := !ibus_toggles + tog;
       spend 1 (e_fetch +. (float_of_int tog *. e_ibus_per_toggle));
       prev_encoding := enc;
       if not (cache_access icache !pc) then begin
         incr icache_misses;
         spend icache_miss_penalty e_icache_miss
       end;
       (* load-use interlock *)
       let uses =
         match i with
         | Isa.Add (_, a, b) | Isa.Sub (_, a, b) | Isa.Mul (_, a, b)
         | Isa.And_ (_, a, b) | Isa.Or_ (_, a, b) | Isa.Xor_ (_, a, b)
         | Isa.Beq (a, b, _) | Isa.Bne (a, b, _) | Isa.Blt (a, b, _) -> [ a; b ]
         | Isa.Addi (_, a, _) | Isa.Shli (_, a, _) | Isa.Ld (_, a, _) -> [ a ]
         | Isa.St (s, a, _) -> [ s; a ]
         | Isa.Jmp _ | Isa.Nop | Isa.Halt -> []
       in
       if !prev_dest >= 0 && List.mem !prev_dest uses then begin
         incr load_use_stalls;
         spend 1 e_stall_cycle
       end;
       prev_dest := -1;
       (* decode + register read: operand bus activity *)
       let opvals = List.map get uses in
       let opact =
         List.fold_left (fun acc v -> acc + Hlp_util.Bits.popcount (v land 0xFFFF)) 0 opvals
       in
       spend 0 (e_decode +. (float_of_int opact *. e_opbus_per_toggle));
       let next = ref (!pc + 1) in
       (match i with
       | Isa.Add (d, a, b) -> spend 0 (e_alu +. (float_of_int (toggles (get a) (get b)) *. e_alu_per_toggle)); set d (get a + get b)
       | Isa.Sub (d, a, b) -> spend 0 (e_alu +. (float_of_int (toggles (get a) (get b)) *. e_alu_per_toggle)); set d (get a - get b)
       | Isa.And_ (d, a, b) -> spend 0 e_alu; set d (get a land get b)
       | Isa.Or_ (d, a, b) -> spend 0 e_alu; set d (get a lor get b)
       | Isa.Xor_ (d, a, b) -> spend 0 e_alu; set d (get a lxor get b)
       | Isa.Addi (d, a, imm) -> spend 0 e_alu; set d (get a + imm)
       | Isa.Shli (d, a, imm) -> spend 0 e_alu; set d (get a lsl imm)
       | Isa.Mul (d, a, b) ->
           spend 2 (e_mul +. (float_of_int (toggles (get a) (get b)) *. e_mul_per_toggle));
           set d (get a * get b)
       | Isa.Ld (d, a, off) ->
           incr mem_reads;
           let addr = get a + off in
           on_mem (word16 addr);
           spend 0 e_agen;
           if cache_access dcache addr then spend 1 e_dcache_hit
           else begin
             incr dcache_misses;
             spend dcache_miss_penalty e_dcache_miss
           end;
           set d (read_mem addr);
           prev_dest := d
       | Isa.St (s, a, off) ->
           incr mem_writes;
           let addr = get a + off in
           on_mem (word16 addr);
           spend 0 e_agen;
           if cache_access dcache addr then spend 1 e_dcache_hit
           else begin
             incr dcache_misses;
             spend dcache_miss_penalty e_dcache_miss
           end;
           write_mem addr (get s)
       | Isa.Beq (a, b, off) ->
           spend 0 e_branch_unit;
           if get a = get b then begin
             next := !pc + 1 + off;
             incr branch_flushes;
             spend flush_penalty e_flush
           end
       | Isa.Bne (a, b, off) ->
           spend 0 e_branch_unit;
           if get a <> get b then begin
             next := !pc + 1 + off;
             incr branch_flushes;
             spend flush_penalty e_flush
           end
       | Isa.Blt (a, b, off) ->
           spend 0 e_branch_unit;
           if get a < get b then begin
             next := !pc + 1 + off;
             incr branch_flushes;
             spend flush_penalty e_flush
           end
       | Isa.Jmp t ->
           spend 0 e_branch_unit;
           next := t;
           incr branch_flushes;
           spend flush_penalty e_flush
       | Isa.Nop -> ()
       | Isa.Halt -> halted := true);
       pc := !next
     done
   with Invalid_argument _ -> halted := false);
  let to_list tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  ( {
      energy = !energy;
      counters =
        {
          cycles = !cycles;
          instructions = !instructions;
          class_counts = List.sort compare (to_list class_counts);
          pair_counts = List.sort compare (to_list pair_counts);
          icache_misses = !icache_misses;
          dcache_misses = !dcache_misses;
          branch_flushes = !branch_flushes;
          load_use_stalls = !load_use_stalls;
          mem_reads = !mem_reads;
          mem_writes = !mem_writes;
          ibus_toggles = !ibus_toggles;
        };
      halted = !halted;
      regs = Array.copy regs;
    },
    read_mem )

let run ?max_instructions ?mem_init prog =
  fst (run_with_memory ?max_instructions ?mem_init prog)

type traces = { pcs : int array; data_addrs : int array }

let run_traced ?max_instructions ?mem_init prog =
  let pcs = ref [] and addrs = ref [] in
  let r, _ =
    run_with_memory ?max_instructions ?mem_init
      ~on_fetch:(fun pc -> pcs := pc :: !pcs)
      ~on_mem:(fun a -> addrs := a :: !addrs)
      prog
  in
  ( r,
    { pcs = Array.of_list (List.rev !pcs);
      data_addrs = Array.of_list (List.rev !addrs) } )

let energy_per_cycle r =
  if r.counters.cycles = 0 then 0.0 else r.energy /. float_of_int r.counters.cycles
