(** Cold scheduling (Su, Tsui, Despain [6], Section III-A).

    Instruction scheduling that minimizes instruction-bus switching: within
    a basic block, data-ready instructions are emitted in the order that
    minimizes the Hamming distance between consecutive instruction
    encodings (a list scheduler whose priority is the "power cost" of the
    bus transition, exactly as the paper describes). Control flow and data
    dependencies are preserved, so the program computes the same thing. *)

val basic_blocks : Isa.instr array -> (int * int) list
(** Maximal single-entry single-exit straight-line regions as
    [(start, stop)) index ranges: boundaries at branches, jumps, halts, and
    branch targets. *)

val depends : Isa.instr -> Isa.instr -> bool
(** Conservative dependence test (RAW/WAR/WAW on registers, any pair of
    memory operations, any control transfer). *)

val reorder : Isa.instr array -> Isa.instr array
(** Cold-schedule every basic block. The result executes identically
    (same final registers/memory) but with fewer instruction-bus
    transitions. *)

type evaluation = {
  original_toggles : float;  (** ibus toggles per instruction, original *)
  scheduled_toggles : float;  (** after cold scheduling *)
  saving : float;
  energy_original : float;
  energy_scheduled : float;
}

val measure :
  ?mem_init:(int * int) list -> Isa.instr array -> evaluation
(** Run both versions on {!Machine}, check the final register files agree,
    and compare dynamic instruction-bus activity and total energy. *)
