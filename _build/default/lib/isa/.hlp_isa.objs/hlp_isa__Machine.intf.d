lib/isa/machine.mli: Isa
