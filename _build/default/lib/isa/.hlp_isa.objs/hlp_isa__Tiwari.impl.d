lib/isa/tiwari.ml: Array Hlp_util Isa List Machine Option
