lib/isa/machine.ml: Array Hashtbl Hlp_util Isa List Option
