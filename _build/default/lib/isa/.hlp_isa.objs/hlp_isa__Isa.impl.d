lib/isa/isa.ml: Array Printf
