lib/isa/profile.mli: Isa Machine
