lib/isa/programs.mli: Isa
