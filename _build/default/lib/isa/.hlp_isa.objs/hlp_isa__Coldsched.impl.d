lib/isa/coldsched.ml: Array Hlp_util Isa List Machine
