lib/isa/isa.mli:
