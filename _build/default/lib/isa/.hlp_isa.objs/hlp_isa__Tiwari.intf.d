lib/isa/tiwari.mli: Isa Machine
