lib/isa/coldsched.mli: Isa
