lib/isa/profile.ml: Array Asm Float Hlp_util Isa List Machine Option
