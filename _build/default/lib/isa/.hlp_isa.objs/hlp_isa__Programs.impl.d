lib/isa/programs.ml: Asm Hlp_util Isa List
