type item =
  | Ins of Isa.instr
  | Label of string
  | Beq_l of Isa.reg * Isa.reg * string
  | Bne_l of Isa.reg * Isa.reg * string
  | Blt_l of Isa.reg * Isa.reg * string
  | Jmp_l of string

let assemble items =
  let targets = Hashtbl.create 16 in
  let pc = ref 0 in
  List.iter
    (function
      | Label name -> Hashtbl.replace targets name !pc
      | Ins _ | Beq_l _ | Bne_l _ | Blt_l _ | Jmp_l _ -> incr pc)
    items;
  let resolve name =
    match Hashtbl.find_opt targets name with
    | Some t -> t
    | None -> failwith ("assemble: unknown label " ^ name)
  in
  let out = ref [] in
  pc := 0;
  List.iter
    (fun item ->
      let emit i =
        out := i :: !out;
        incr pc
      in
      match item with
      | Label _ -> ()
      | Ins i -> emit i
      | Beq_l (a, b, l) -> emit (Isa.Beq (a, b, resolve l - (!pc + 1)))
      | Bne_l (a, b, l) -> emit (Isa.Bne (a, b, resolve l - (!pc + 1)))
      | Blt_l (a, b, l) -> emit (Isa.Blt (a, b, resolve l - (!pc + 1)))
      | Jmp_l l -> emit (Isa.Jmp (resolve l)))
    items;
  let prog = Array.of_list (List.rev !out) in
  Isa.validate_program prog;
  prog
