type t = {
  mix : (Isa.cls * float) list;
  icache_miss_rate : float;
  dcache_miss_rate : float;
  branch_taken_rate : float;
  stall_rate : float;
  energy_per_cycle : float;
  instructions : int;
}

let extract (r : Machine.result) =
  let c = r.Machine.counters in
  let total = float_of_int (max 1 c.Machine.instructions) in
  let count cls =
    float_of_int (Option.value ~default:0 (List.assoc_opt cls c.Machine.class_counts))
  in
  let mem_ops = count Isa.Mem in
  let branches = count Isa.Branch in
  {
    mix = List.map (fun cls -> (cls, count cls /. total)) Isa.all_classes;
    icache_miss_rate = float_of_int c.Machine.icache_misses /. total;
    dcache_miss_rate =
      (if mem_ops > 0.0 then float_of_int c.Machine.dcache_misses /. mem_ops else 0.0);
    branch_taken_rate =
      (if branches > 0.0 then float_of_int c.Machine.branch_flushes /. branches else 0.0);
    stall_rate = float_of_int c.Machine.load_use_stalls /. total;
    energy_per_cycle = Machine.energy_per_cycle r;
    instructions = c.Machine.instructions;
  }

let distance a b =
  let mix_dist =
    List.fold_left2
      (fun acc (_, pa) (_, pb) -> acc +. abs_float (pa -. pb))
      0.0 a.mix b.mix
  in
  mix_dist
  +. abs_float (a.icache_miss_rate -. b.icache_miss_rate)
  +. abs_float (a.dcache_miss_rate -. b.dcache_miss_rate)
  +. (0.5 *. abs_float (a.branch_taken_rate -. b.branch_taken_rate))
  +. abs_float (a.stall_rate -. b.stall_rate)

let synthesize ?(seed = 97) ?(body_instructions = 150) ?(iterations = 10) profile =
  let rng = Hlp_util.Prng.create seed in
  let frac cls = Option.value ~default:0.0 (List.assoc_opt cls profile.mix) in
  let quota cls =
    int_of_float (Float.round (frac cls *. float_of_int body_instructions))
  in
  (* register plan: r1 loop counter, r6 memory pointer, r2-r5 scratch, r7 acc *)
  let n_mem = quota Isa.Mem and n_mul = quota Isa.Mulc in
  let n_branch = max 1 (quota Isa.Branch) in
  let n_alu = max 0 (body_instructions - n_mem - n_mul - n_branch) in
  (* memory stride mixing reproduces the d-cache miss rate: stride 4 always
     misses (new line), stride 1 misses a quarter of the time *)
  let p_big_stride = max 0.0 (min 1.0 ((4.0 *. profile.dcache_miss_rate -. 1.0) /. 3.0)) in
  let ops = ref [] in
  let emit x = ops := x :: !ops in
  for _ = 1 to n_mem do
    let stride = if Hlp_util.Prng.bernoulli rng p_big_stride then 4 else 1 in
    if Hlp_util.Prng.bool rng then emit (`Mem_load stride) else emit (`Mem_store stride)
  done;
  for _ = 1 to n_mul do
    emit `Mul
  done;
  for _ = 1 to n_branch - 1 do
    (* the loop back-edge provides one taken branch per iteration *)
    emit (`Branch (Hlp_util.Prng.bernoulli rng profile.branch_taken_rate))
  done;
  for _ = 1 to n_alu do
    emit `Alu
  done;
  let body = Array.of_list !ops in
  Hlp_util.Prng.shuffle rng body;
  (* place load-use pairs to reproduce the stall rate: after a load, with
     the right probability the next op consumes r2 *)
  let want_stalls = profile.stall_rate *. float_of_int body_instructions in
  let items = ref [] in
  let add i = items := i :: !items in
  let stalls_placed = ref 0.0 in
  Array.iter
    (fun op ->
      match op with
      | `Mem_load stride ->
          add (Asm.Ins (Isa.Ld (2, 6, 0)));
          if !stalls_placed < want_stalls then begin
            (* immediate consumer of the loaded value: a load-use stall *)
            add (Asm.Ins (Isa.Add (7, 7, 2)));
            stalls_placed := !stalls_placed +. 1.0
          end;
          add (Asm.Ins (Isa.Addi (6, 6, stride)))
      | `Mem_store stride ->
          add (Asm.Ins (Isa.St (7, 6, 0)));
          add (Asm.Ins (Isa.Addi (6, 6, stride)))
      | `Mul -> add (Asm.Ins (Isa.Mul (3, 3, 4)))
      | `Alu ->
          add
            (Asm.Ins
               (match Hlp_util.Prng.int rng 3 with
               | 0 -> Isa.Add (4, 4, 5)
               | 1 -> Isa.Xor_ (5, 5, 3)
               | _ -> Isa.Addi (4, 4, 1)))
      | `Branch taken ->
          if taken then add (Asm.Ins (Isa.Beq (0, 0, 0)))
          else add (Asm.Ins (Isa.Bne (0, 0, 0))))
    body;
  let body_items = List.rev !items in
  let program =
    Asm.assemble
      ([
         Asm.Ins (Isa.Addi (1, 0, iterations));
         Asm.Ins (Isa.Addi (3, 0, 7));
         Asm.Ins (Isa.Addi (4, 0, 13));
         Asm.Ins (Isa.Addi (5, 0, 29));
         Asm.Ins (Isa.Addi (6, 0, 0));
         Asm.Label "top";
       ]
      @ body_items
      @ [
          Asm.Ins (Isa.Addi (1, 1, -1));
          Asm.Bne_l (1, 0, "top");
          Asm.Ins Isa.Halt;
        ])
  in
  let rng2 = Hlp_util.Prng.create (seed + 1) in
  let mem = List.init 512 (fun k -> (k, Hlp_util.Prng.int rng2 100)) in
  (program, mem)

type validation = {
  original : t;
  synthetic : t;
  energy_error : float;
  trace_reduction : float;
}

let validate result ?seed () =
  let original = extract result in
  let prog, mem = synthesize ?seed original in
  let r = Machine.run ~mem_init:mem prog in
  let synthetic = extract r in
  {
    original;
    synthetic;
    energy_error =
      Hlp_util.Stats.relative_error ~actual:original.energy_per_cycle
        ~estimate:synthetic.energy_per_cycle;
    trace_reduction =
      float_of_int original.instructions /. float_of_int (max 1 synthetic.instructions);
  }
