(** Application programs for the software-power experiments, written
    directly in the {!Isa} assembly.

    Includes the Fig. 2 pair: the same reduction computed with an
    intermediate array spilled to memory versus kept in a register — the
    memory-access-minimization transformation. *)

val matmul : n:int -> Isa.instr array * (int * int) list
(** [n x n] integer matrix multiply; returns (program, initial memory).
    A at 0, B at n^2, C at 2 n^2. *)

val fir : taps:int -> samples:int -> Isa.instr array * (int * int) list
(** FIR filter over a sample buffer; coefficients at 0, samples at 64,
    outputs at 4096. *)

val bubble_sort : n:int -> Isa.instr array * (int * int) list
(** In-place sort of an array at address 0. *)

val string_search : hay:int -> Isa.instr array * (int * int) list
(** Naive substring search over a [hay]-byte text. *)

val fig2_memory : n:int -> Isa.instr array * (int * int) list
(** Fig. 2 left: [b[i] = a[i] * c] into a memory-resident temporary array,
    then a second loop sums [b[i]] — 2n extra memory accesses. Result in
    r7. *)

val fig2_register : n:int -> Isa.instr array * (int * int) list
(** Fig. 2 right: fused loop keeping the product in a register. Result in
    r7; identical to {!fig2_memory}'s. *)

val vector_kernel : n:int -> Isa.instr array * (int * int) list
(** Unrolled four-lane multiply-accumulate: a block with real
    instruction-level freedom, the cold-scheduling showcase. *)

val all : unit -> (string * (Isa.instr array * (int * int) list)) list
(** The benchmark set used for macro-model training/validation. *)
