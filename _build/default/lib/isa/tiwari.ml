type model = { coeffs : float array }

let class_count counters cls =
  Option.value ~default:0 (List.assoc_opt cls counters.Machine.class_counts)

let pair_bucket (a, b) = if a = b then `Same else `Switch

let feature_names =
  List.map (fun c -> "base_" ^ Isa.cls_name c) Isa.all_classes
  @ [ "state_same"; "state_switch"; "oc_stall"; "oc_imiss"; "oc_dmiss"; "oc_flush" ]

let features (c : Machine.counters) =
  let base =
    List.map (fun cls -> float_of_int (class_count c cls)) Isa.all_classes
  in
  let same = ref 0 and switch = ref 0 in
  List.iter
    (fun (pair, n) ->
      match pair_bucket pair with
      | `Same -> same := !same + n
      | `Switch -> switch := !switch + n)
    c.Machine.pair_counts;
  Array.of_list
    (base
    @ [
        float_of_int !same;
        float_of_int !switch;
        float_of_int c.Machine.load_use_stalls;
        float_of_int c.Machine.icache_misses;
        float_of_int c.Machine.dcache_misses;
        float_of_int c.Machine.branch_flushes;
      ])

let fit programs =
  assert (List.length programs >= 2);
  (* rows are normalized per instruction so that short and long programs
     weigh equally in the least-squares fit (otherwise the big traces
     dominate and small programs predict poorly) *)
  let rows =
    List.map
      (fun (prog, mem_init) ->
        let r = Machine.run ~mem_init prog in
        let scale = 1.0 /. float_of_int (max 1 r.Machine.counters.Machine.instructions) in
        ( Array.map (fun f -> f *. scale) (features r.Machine.counters),
          r.Machine.energy *. scale ))
      programs
  in
  let x = Array.of_list (List.map fst rows) in
  let y = Array.of_list (List.map snd rows) in
  { coeffs = Hlp_util.Linalg.least_squares_nonneg x y }

let predict m counters = Hlp_util.Linalg.vec_dot m.coeffs (features counters)

let evaluate m programs =
  Hlp_util.Stats.mean_list
    (List.map
       (fun (prog, mem_init) ->
         let r = Machine.run ~mem_init prog in
         Hlp_util.Stats.relative_error ~actual:r.Machine.energy
           ~estimate:(predict m r.Machine.counters))
       programs)

let coefficients m = List.combine feature_names (Array.to_list m.coeffs)
