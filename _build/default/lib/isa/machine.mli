(** Cycle simulator with microarchitectural energy accounting.

    This is the "actual current measurement" stand-in of the Tiwari et al.
    methodology: it executes programs on the {!Isa} processor with an
    instruction cache, a data cache, a load-use interlock and a
    predict-not-taken front end, charging energy for every
    microarchitectural event (bus toggles weighted by Hamming distance,
    ALU/multiplier operand activity, cache hits and misses, stall and flush
    cycles). The instruction-level macro-model of {!Tiwari} is fitted
    against the numbers this machine produces. *)

type counters = {
  cycles : int;
  instructions : int;
  class_counts : (Isa.cls * int) list;
  pair_counts : ((Isa.cls * Isa.cls) * int) list;
      (** consecutive retired classes — circuit-state pairs *)
  icache_misses : int;
  dcache_misses : int;
  branch_flushes : int;
  load_use_stalls : int;
  mem_reads : int;
  mem_writes : int;
  ibus_toggles : int;
      (** instruction-bus bit transitions between consecutive fetches *)
}

type result = {
  energy : float;
  counters : counters;
  halted : bool;
  regs : int array;  (** final register file *)
}

val run :
  ?max_instructions:int ->
  ?mem_init:(int * int) list ->
  Isa.instr array ->
  result
(** Execute from pc 0 until [Halt] or the instruction budget (default
    2_000_000). [mem_init] preloads data memory. *)

val energy_per_cycle : result -> float

val run_with_memory :
  ?max_instructions:int ->
  ?mem_init:(int * int) list ->
  ?on_fetch:(int -> unit) ->
  ?on_mem:(int -> unit) ->
  Isa.instr array ->
  result * (int -> int)
(** Like {!run} but also returns a reader over the final data memory, for
    functional checks. [on_fetch] fires with every executed pc; [on_mem]
    with every data-memory address touched. *)

type traces = { pcs : int array; data_addrs : int array }

val run_traced :
  ?max_instructions:int ->
  ?mem_init:(int * int) list ->
  Isa.instr array ->
  result * traces
(** Run and collect the program-counter and data-address sequences — the
    real bus streams the Section III-G encodings operate on. *)
