(** Profile-driven program synthesis (Hsieh et al. [8], Section II-A).

    Long application traces are too slow to simulate at low level; instead,
    extract a characteristic profile (instruction mix, cache miss rates,
    branch and stall statistics) from a fast architectural run and
    synthesize a much shorter program whose profile — and therefore whose
    power per cycle — matches the original. The short program is then the
    workload for slow detailed simulation. *)

type t = {
  mix : (Isa.cls * float) list;  (** instruction-class fractions *)
  icache_miss_rate : float;  (** per instruction *)
  dcache_miss_rate : float;  (** per memory access *)
  branch_taken_rate : float;  (** flushes per branch *)
  stall_rate : float;  (** load-use stalls per instruction *)
  energy_per_cycle : float;  (** of the original run, for reference *)
  instructions : int;
}

val extract : Machine.result -> t

val distance : t -> t -> float
(** Profile dissimilarity (weighted L1 over the mix and the rates), for
    tests and for the synthesis loop. *)

val synthesize :
  ?seed:int -> ?body_instructions:int -> ?iterations:int -> t -> Isa.instr array * (int * int) list
(** Generate a short synthetic program matching the profile: a loop whose
    body reproduces the instruction mix, whose memory accesses walk a
    footprint sized to reproduce the d-cache miss rate, and whose branches
    are taken with the right frequency. Default: ~200-instruction body,
    30 iterations — orders of magnitude shorter than real traces. *)

type validation = {
  original : t;
  synthetic : t;
  energy_error : float;  (** relative error in energy per cycle *)
  trace_reduction : float;  (** original instructions / synthetic *)
}

val validate : Machine.result -> ?seed:int -> unit -> validation
(** Extract, synthesize, re-measure, compare. *)
