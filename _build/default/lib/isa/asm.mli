(** Two-pass mini assembler with symbolic branch labels, shared by the
    benchmark programs and the profile-driven program synthesizer. *)

type item =
  | Ins of Isa.instr
  | Label of string
  | Beq_l of Isa.reg * Isa.reg * string
  | Bne_l of Isa.reg * Isa.reg * string
  | Blt_l of Isa.reg * Isa.reg * string
  | Jmp_l of string

val assemble : item list -> Isa.instr array
(** Resolves labels to pc-relative offsets and validates the result;
    raises [Failure] on undefined labels or out-of-range targets. *)
