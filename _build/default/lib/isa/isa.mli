(** A small load/store RISC instruction set.

    The software-level power estimation techniques of Section II-A need a
    processor to measure: this ISA plus the cycle simulator in {!Machine}
    plays the role of the paper's embedded CPU. Eight general registers
    ([r0] reads as zero), word-addressed memory, and a compact 32-bit
    encoding whose bit patterns drive the instruction-bus activity
    accounting. *)

type reg = int
(** Register index 0..7; writes to register 0 are discarded. *)

type instr =
  | Add of reg * reg * reg
  | Sub of reg * reg * reg
  | Mul of reg * reg * reg
  | And_ of reg * reg * reg
  | Or_ of reg * reg * reg
  | Xor_ of reg * reg * reg
  | Addi of reg * reg * int
  | Shli of reg * reg * int
  | Ld of reg * reg * int  (** [Ld (rd, ra, off)]: rd <- mem[ra + off] *)
  | St of reg * reg * int  (** [St (rs, ra, off)]: mem[ra + off] <- rs *)
  | Beq of reg * reg * int  (** pc-relative branch offset *)
  | Bne of reg * reg * int
  | Blt of reg * reg * int
  | Jmp of int  (** absolute target *)
  | Nop
  | Halt

type cls = Alu | Mulc | Mem | Branch | Other
(** Instruction classes, the granularity of the circuit-state overhead
    table in the Tiwari model. *)

val classify : instr -> cls
val cls_name : cls -> string
val all_classes : cls list

val encode : instr -> int
(** 32-bit binary encoding; consecutive fetches switch the instruction bus
    by the Hamming distance of these words. *)

val pp : instr -> string

val validate_program : instr array -> unit
(** Checks register indices and branch targets; raises [Failure]. *)
