open Asm

let matmul ~n =
  let bbase = n * n and cbase = 2 * n * n in
  let prog =
    assemble
      [
        Ins (Isa.Addi (6, 0, n));
        Ins (Isa.Addi (1, 0, 0));
        Label "i";
        Ins (Isa.Addi (2, 0, 0));
        Label "j";
        Ins (Isa.Addi (3, 0, 0));
        Ins (Isa.Addi (7, 0, 0));
        Label "k";
        Ins (Isa.Mul (4, 1, 6));
        Ins (Isa.Add (4, 4, 3));
        Ins (Isa.Ld (5, 4, 0));
        Ins (Isa.Mul (4, 3, 6));
        Ins (Isa.Add (4, 4, 2));
        Ins (Isa.Ld (4, 4, bbase));
        Ins (Isa.Mul (5, 5, 4));
        Ins (Isa.Add (7, 7, 5));
        Ins (Isa.Addi (3, 3, 1));
        Blt_l (3, 6, "k");
        Ins (Isa.Mul (4, 1, 6));
        Ins (Isa.Add (4, 4, 2));
        Ins (Isa.St (7, 4, cbase));
        Ins (Isa.Addi (2, 2, 1));
        Blt_l (2, 6, "j");
        Ins (Isa.Addi (1, 1, 1));
        Blt_l (1, 6, "i");
        Ins Isa.Halt;
      ]
  in
  let rng = Hlp_util.Prng.create 7 in
  let mem =
    List.init (2 * n * n) (fun k -> (k, Hlp_util.Prng.int rng 100))
  in
  (prog, mem)

let fir ~taps ~samples =
  let sample_base = 64 and out_base = 4096 in
  let prog =
    assemble
      [
        Ins (Isa.Addi (6, 0, taps));
        Ins (Isa.Addi (1, 0, 0));  (* r1 = output index *)
        Label "outer";
        Ins (Isa.Addi (2, 0, 0));  (* r2 = tap *)
        Ins (Isa.Addi (7, 0, 0));  (* acc *)
        Label "inner";
        Ins (Isa.Ld (3, 2, 0));  (* coeff[tap] *)
        Ins (Isa.Add (4, 1, 2));
        Ins (Isa.Ld (4, 4, sample_base));  (* sample[i + tap] *)
        Ins (Isa.Mul (3, 3, 4));
        Ins (Isa.Add (7, 7, 3));
        Ins (Isa.Addi (2, 2, 1));
        Blt_l (2, 6, "inner");
        Ins (Isa.St (7, 1, out_base));
        Ins (Isa.Addi (1, 1, 1));
        Ins (Isa.Addi (5, 0, samples - taps));
        Blt_l (1, 5, "outer");
        Ins Isa.Halt;
      ]
  in
  let rng = Hlp_util.Prng.create 11 in
  let mem =
    List.init taps (fun k -> (k, 1 + Hlp_util.Prng.int rng 15))
    @ List.init samples (fun k -> (sample_base + k, Hlp_util.Prng.int rng 256))
  in
  (prog, mem)

let bubble_sort ~n =
  let prog =
    assemble
      [
        Ins (Isa.Addi (6, 0, (n - 1)));
        Ins (Isa.Addi (1, 0, 0));  (* r1 = pass *)
        Label "pass";
        Ins (Isa.Addi (2, 0, 0));  (* r2 = index *)
        Label "scan";
        Ins (Isa.Ld (3, 2, 0));
        Ins (Isa.Ld (4, 2, 1));
        Blt_l (3, 4, "inorder");
        Ins (Isa.St (4, 2, 0));
        Ins (Isa.St (3, 2, 1));
        Label "inorder";
        Ins (Isa.Addi (2, 2, 1));
        Blt_l (2, 6, "scan");
        Ins (Isa.Addi (1, 1, 1));
        Blt_l (1, 6, "pass");
        Ins Isa.Halt;
      ]
  in
  let rng = Hlp_util.Prng.create 13 in
  let mem = List.init n (fun k -> (k, Hlp_util.Prng.int rng 1000)) in
  (prog, mem)

let string_search ~hay =
  let needle_base = 8192 and needle_len = 4 in
  let prog =
    assemble
      [
        Ins (Isa.Addi (6, 0, (hay - needle_len)));
        Ins (Isa.Addi (5, 0, needle_len));
        Ins (Isa.Addi (1, 0, 0));  (* position *)
        Ins (Isa.Addi (7, 0, 0));  (* match count *)
        Label "pos";
        Ins (Isa.Addi (2, 0, 0));  (* offset within needle *)
        Label "cmp";
        Ins (Isa.Add (3, 1, 2));
        Ins (Isa.Ld (3, 3, 0));
        Ins (Isa.Ld (4, 2, needle_base));
        Bne_l (3, 4, "miss");
        Ins (Isa.Addi (2, 2, 1));
        Blt_l (2, 5, "cmp");
        Ins (Isa.Addi (7, 7, 1));
        Label "miss";
        Ins (Isa.Addi (1, 1, 1));
        Blt_l (1, 6, "pos");
        Ins Isa.Halt;
      ]
  in
  let rng = Hlp_util.Prng.create 17 in
  let mem =
    List.init hay (fun k -> (k, Hlp_util.Prng.int rng 4))
    @ List.init needle_len (fun k -> (needle_base + k, Hlp_util.Prng.int rng 4))
  in
  (prog, mem)

let fig2_common_mem n =
  let rng = Hlp_util.Prng.create 19 in
  List.init n (fun k -> (k, Hlp_util.Prng.int rng 50))

let fig2_memory ~n =
  (* b[i] = a[i] * c in one loop (b spilled to memory), sum b[i] in a
     second loop: the 2n extra accesses of Fig. 2's left side *)
  let bbase = n in
  let prog =
    assemble
      [
        Ins (Isa.Addi (6, 0, n));
        Ins (Isa.Addi (5, 0, 3));  (* c = 3 *)
        Ins (Isa.Addi (1, 0, 0));
        Label "produce";
        Ins (Isa.Ld (2, 1, 0));
        Ins (Isa.Mul (2, 2, 5));
        Ins (Isa.St (2, 1, bbase));
        Ins (Isa.Addi (1, 1, 1));
        Blt_l (1, 6, "produce");
        Ins (Isa.Addi (1, 0, 0));
        Ins (Isa.Addi (7, 0, 0));
        Label "consume";
        Ins (Isa.Ld (2, 1, bbase));
        Ins (Isa.Add (7, 7, 2));
        Ins (Isa.Addi (1, 1, 1));
        Blt_l (1, 6, "consume");
        Ins Isa.Halt;
      ]
  in
  (prog, fig2_common_mem n)

let fig2_register ~n =
  let prog =
    assemble
      [
        Ins (Isa.Addi (6, 0, n));
        Ins (Isa.Addi (5, 0, 3));
        Ins (Isa.Addi (1, 0, 0));
        Ins (Isa.Addi (7, 0, 0));
        Label "fused";
        Ins (Isa.Ld (2, 1, 0));
        Ins (Isa.Mul (2, 2, 5));
        Ins (Isa.Add (7, 7, 2));
        Ins (Isa.Addi (1, 1, 1));
        Blt_l (1, 6, "fused");
        Ins Isa.Halt;
      ]
  in
  (prog, fig2_common_mem n)

let vector_kernel ~n =
  (* unrolled multiply-accumulate over four independent lanes: the kind of
     block with enough instruction-level freedom for cold scheduling to
     reorder (each lane uses its own registers; loads do not alias) *)
  let prog =
    assemble
      [
        Ins (Isa.Addi (6, 0, n));
        Ins (Isa.Addi (1, 0, 0));
        Label "loop";
        Ins (Isa.Ld (2, 1, 0));
        Ins (Isa.Ld (3, 1, 1024));
        Ins (Isa.Ld (4, 1, 2048));
        Ins (Isa.Ld (5, 1, 3072));
        Ins (Isa.Mul (2, 2, 2));
        Ins (Isa.Xor_ (3, 3, 2));
        Ins (Isa.Mul (4, 4, 4));
        Ins (Isa.And_ (5, 5, 4));
        Ins (Isa.Add (7, 7, 2));
        Ins (Isa.Add (7, 7, 3));
        Ins (Isa.Add (7, 7, 4));
        Ins (Isa.Add (7, 7, 5));
        Ins (Isa.Addi (1, 1, 1));
        Blt_l (1, 6, "loop");
        Ins Isa.Halt;
      ]
  in
  let rng = Hlp_util.Prng.create 23 in
  let mem =
    List.concat_map
      (fun base -> List.init n (fun k -> (base + k, Hlp_util.Prng.int rng 200)))
      [ 0; 1024; 2048; 3072 ]
  in
  (prog, mem)

let all () =
  [
    ("matmul", matmul ~n:10);
    ("fir", fir ~taps:8 ~samples:256);
    ("bubble_sort", bubble_sort ~n:48);
    ("string_search", string_search ~hay:512);
    ("fig2_memory", fig2_memory ~n:256);
    ("fig2_register", fig2_register ~n:256);
    ("vector_kernel", vector_kernel ~n:128);
  ]
