let is_control = function
  | Isa.Beq _ | Isa.Bne _ | Isa.Blt _ | Isa.Jmp _ | Isa.Halt -> true
  | Isa.Add _ | Isa.Sub _ | Isa.Mul _ | Isa.And_ _ | Isa.Or_ _ | Isa.Xor_ _
  | Isa.Addi _ | Isa.Shli _ | Isa.Ld _ | Isa.St _ | Isa.Nop -> false

let is_mem = function
  | Isa.Ld _ | Isa.St _ -> true
  | _ -> false

let is_store = function Isa.St _ -> true | _ -> false

(* register defined (r0 is a sink, never really written) *)
let def = function
  | Isa.Add (d, _, _) | Isa.Sub (d, _, _) | Isa.Mul (d, _, _)
  | Isa.And_ (d, _, _) | Isa.Or_ (d, _, _) | Isa.Xor_ (d, _, _)
  | Isa.Addi (d, _, _) | Isa.Shli (d, _, _) | Isa.Ld (d, _, _) ->
      if d = 0 then None else Some d
  | Isa.St _ | Isa.Beq _ | Isa.Bne _ | Isa.Blt _ | Isa.Jmp _ | Isa.Nop | Isa.Halt ->
      None

let uses = function
  | Isa.Add (_, a, b) | Isa.Sub (_, a, b) | Isa.Mul (_, a, b)
  | Isa.And_ (_, a, b) | Isa.Or_ (_, a, b) | Isa.Xor_ (_, a, b)
  | Isa.Beq (a, b, _) | Isa.Bne (a, b, _) | Isa.Blt (a, b, _) -> [ a; b ]
  | Isa.Addi (_, a, _) | Isa.Shli (_, a, _) | Isa.Ld (_, a, _) -> [ a ]
  | Isa.St (s, a, _) -> [ s; a ]
  | Isa.Jmp _ | Isa.Nop | Isa.Halt -> []

let depends i j =
  (* must i stay before j? *)
  is_control i || is_control j
  || (is_mem i && is_mem j && (is_store i || is_store j))
  || (match def i with
     | Some d -> List.mem d (uses j) || def j = Some d  (* RAW / WAW *)
     | None -> false)
  || (match def j with
     | Some d -> List.mem d (uses i)  (* WAR *)
     | None -> false)

let basic_blocks prog =
  let n = Array.length prog in
  let leader = Array.make (n + 1) false in
  leader.(0) <- true;
  leader.(n) <- true;
  Array.iteri
    (fun pc i ->
      match i with
      | Isa.Beq (_, _, off) | Isa.Bne (_, _, off) | Isa.Blt (_, _, off) ->
          if pc + 1 <= n then leader.(pc + 1) <- true;
          let t = pc + 1 + off in
          if t >= 0 && t <= n then leader.(t) <- true
      | Isa.Jmp t ->
          if pc + 1 <= n then leader.(pc + 1) <- true;
          if t >= 0 && t <= n then leader.(t) <- true
      | Isa.Halt -> if pc + 1 <= n then leader.(pc + 1) <- true
      | _ -> ())
    prog;
  let rec collect start pc acc =
    if pc > n then List.rev acc
    else if pc = n then List.rev ((start, n) :: acc)
    else if leader.(pc) && pc > start then collect pc pc ((start, pc) :: acc)
    else collect start (pc + 1) acc
  in
  match collect 0 1 [] with
  | blocks -> List.filter (fun (a, b) -> b > a) blocks

(* Greedy cold list scheduling of one block: repeatedly emit the ready
   instruction whose encoding is closest (Hamming) to the previous one. *)
let schedule_block prev_enc instrs =
  let n = Array.length instrs in
  let emitted = Array.make n false in
  let out = ref [] in
  let prev = ref prev_enc in
  for _ = 1 to n do
    (* ready = not emitted and no un-emitted earlier instruction depends-before it *)
    let ready =
      List.filter
        (fun j ->
          (not emitted.(j))
          && (let ok = ref true in
              for k = 0 to j - 1 do
                if (not emitted.(k)) && depends instrs.(k) instrs.(j) then ok := false
              done;
              !ok))
        (List.init n (fun j -> j))
    in
    let best =
      List.fold_left
        (fun acc j ->
          let cost = Hlp_util.Bits.hamming (Isa.encode instrs.(j)) !prev in
          match acc with
          | Some (_, c) when c <= cost -> acc
          | _ -> Some (j, cost))
        None ready
    in
    match best with
    | None -> failwith "Coldsched: no ready instruction (cyclic dependence?)"
    | Some (j, _) ->
        emitted.(j) <- true;
        prev := Isa.encode instrs.(j);
        out := instrs.(j) :: !out
  done;
  Array.of_list (List.rev !out)

let reorder prog =
  let out = Array.copy prog in
  let prev_enc = ref 0 in
  List.iter
    (fun (start, stop) ->
      let block = Array.sub prog start (stop - start) in
      let scheduled = schedule_block !prev_enc block in
      Array.blit scheduled 0 out start (stop - start);
      prev_enc := (if stop > start then Isa.encode scheduled.(stop - start - 1) else !prev_enc))
    (basic_blocks prog);
  Isa.validate_program out;
  out

type evaluation = {
  original_toggles : float;
  scheduled_toggles : float;
  saving : float;
  energy_original : float;
  energy_scheduled : float;
}

let measure ?(mem_init = []) prog =
  let r1 = Machine.run ~mem_init prog in
  let r2 = Machine.run ~mem_init (reorder prog) in
  if r1.Machine.regs <> r2.Machine.regs then
    failwith "Coldsched.measure: reordering changed the result";
  let per_instr (r : Machine.result) =
    float_of_int r.Machine.counters.Machine.ibus_toggles
    /. float_of_int (max 1 r.Machine.counters.Machine.instructions)
  in
  let o = per_instr r1 and s = per_instr r2 in
  {
    original_toggles = o;
    scheduled_toggles = s;
    saving = (if o > 0.0 then 1.0 -. (s /. o) else 0.0);
    energy_original = r1.Machine.energy;
    energy_scheduled = r2.Machine.energy;
  }
