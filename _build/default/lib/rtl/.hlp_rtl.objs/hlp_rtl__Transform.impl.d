lib/rtl/transform.ml: Array Cdfg Hashtbl Hlp_logic Hlp_util List
