lib/rtl/module_energy.ml: Cdfg
