lib/rtl/quicksynth.mli: Cdfg Hlp_logic
