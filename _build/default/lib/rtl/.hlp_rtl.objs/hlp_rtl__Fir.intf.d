lib/rtl/fir.mli: Hlp_logic
