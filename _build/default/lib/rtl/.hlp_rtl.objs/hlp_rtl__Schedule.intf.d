lib/rtl/schedule.mli: Cdfg Module_energy
