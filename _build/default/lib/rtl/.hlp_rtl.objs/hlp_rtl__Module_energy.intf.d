lib/rtl/module_energy.mli: Cdfg
