lib/rtl/allocate.ml: Array Cdfg Hashtbl Hlp_util List Module_energy Option Schedule
