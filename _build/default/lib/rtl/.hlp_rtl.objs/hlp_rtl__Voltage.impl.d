lib/rtl/voltage.ml: Array Cdfg List Module_energy
