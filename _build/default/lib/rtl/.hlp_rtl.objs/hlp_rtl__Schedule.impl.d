lib/rtl/schedule.ml: Array Cdfg Hashtbl List Module_energy Option Printf
