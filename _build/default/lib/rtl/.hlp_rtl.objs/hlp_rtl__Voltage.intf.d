lib/rtl/voltage.mli: Cdfg
