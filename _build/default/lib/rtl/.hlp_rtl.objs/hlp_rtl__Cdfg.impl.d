lib/rtl/cdfg.ml: Array Hashtbl List Option Printf
