lib/rtl/allocate.mli: Cdfg Module_energy Schedule
