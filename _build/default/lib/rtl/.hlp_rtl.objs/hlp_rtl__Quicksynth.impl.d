lib/rtl/quicksynth.ml: Array Cdfg Generators Hashtbl Hlp_logic Hlp_sim Hlp_util List Netlist Option Printf String
