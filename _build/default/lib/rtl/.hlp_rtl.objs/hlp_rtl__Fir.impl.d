lib/rtl/fir.ml: Array Generators Hlp_logic Hlp_sim Hlp_util List Netlist Printf
