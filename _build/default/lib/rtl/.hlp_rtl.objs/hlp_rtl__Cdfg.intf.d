lib/rtl/cdfg.mli:
