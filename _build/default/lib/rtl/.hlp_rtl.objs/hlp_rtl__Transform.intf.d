lib/rtl/transform.mli: Cdfg
