(** Resource allocation and binding (Section III-E).

    Operations scheduled in disjoint control steps and implementable on the
    same functional-unit class are *compatible*; binding compatible
    operations to the same unit saves area but makes the unit's inputs see
    the concatenation of both operand streams, so the binding choice changes
    switching activity. Following Raghunathan-Jha [65], edges of the
    compatibility graph carry a weight [W = Wc * (1 - Ws)] combining the
    capacitance saving with the measured inter-operation switching, and the
    allocator greedily merges the heaviest edges.

    Switching statistics come from profiling the CDFG interpreter over a
    stream of random input environments, mirroring the "high-level
    simulation of the CDFG" in the paper. *)

type binding = {
  unit_of : int array;  (** node id -> functional unit id (-1 for none) *)
  num_units : (Module_energy.resource * int) list;  (** units per class *)
}

type profile = int array array
(** [profile.(sample).(node)]: node values over profiling samples. *)

val profile : ?samples:int -> ?seed:int -> ?range:int -> Cdfg.t -> profile
(** Evaluate the graph under random input environments. *)

val bind_greedy_area : Cdfg.t -> Schedule.t -> binding
(** Area-driven baseline: left-edge style packing that minimizes unit count
    and ignores switching (the "serial allocation" strawman). *)

val bind_low_power :
  ?width:int -> ?initiation_interval:int -> Cdfg.t -> Schedule.t -> profile -> binding
(** Raghunathan-Jha-style weighted merging. Uses no more units than exist
    operations; in practice lands at (or near) the area-minimal count.
    With [initiation_interval] set, operations also conflict when their
    occupation intervals collide modulo the interval — the functionally
    pipelined module assignment of Chang-Pedram [19]: a new graph
    evaluation starts every II steps, so a unit is busy in every residue
    its operation covers. *)

val switched_capacitance :
  ?width:int -> Cdfg.t -> Schedule.t -> binding -> profile -> float
(** Total switched capacitance per graph evaluation implied by a binding:
    for each unit, operations execute in control-step order and each
    consecutive pair charges the unit's capacitance scaled by the measured
    Hamming activity between their operand tuples (commutative operations
    may reorder operands — the Musoll-Cortadella transformation). *)

val register_count : Cdfg.t -> Schedule.t -> int
(** Minimum registers for the schedule by lifetime analysis (left-edge). *)

(** {1 Register allocation and binding (Chang-Pedram [64])} *)

type reg_binding = {
  reg_of : int array;  (** node id -> register id; [-1] for unstored values *)
  num_regs : int;
}

val bind_registers_area : Cdfg.t -> Schedule.t -> reg_binding
(** Left-edge register packing over value lifetimes (area-minimal). *)

val bind_registers_low_power :
  ?width:int -> Cdfg.t -> Schedule.t -> profile -> reg_binding
(** Lifetime-compatible values are merged onto registers by descending
    value similarity (low Hamming distance between the values a register
    holds in sequence), the probability-driven register binding of
    Chang-Pedram; compacted to the area-minimal register count. *)

val register_switched_capacitance :
  ?width:int -> Cdfg.t -> Schedule.t -> reg_binding -> profile -> float
(** Capacitance switched at register inputs per graph evaluation: each
    register charges its per-bit write activity over the sequence of values
    it stores. *)
