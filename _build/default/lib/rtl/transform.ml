(* Rebuild helper: map over nodes producing possibly-multiple replacement
   nodes, tracked through an id substitution. *)

let rebuild (g : Cdfg.t) ~expand =
  let b = Cdfg.Build.create () in
  let subst = Array.make (Array.length g.Cdfg.nodes) (-1) in
  Array.iter
    (fun (node : Cdfg.node) ->
      let args = List.map (fun a -> subst.(a)) node.Cdfg.args in
      subst.(node.Cdfg.id) <- expand b node args)
    g.Cdfg.nodes;
  Cdfg.Build.finish b ~outputs:(List.map (fun o -> subst.(o)) g.Cdfg.outputs)

let default_expand b (node : Cdfg.node) args =
  let module B = Cdfg.Build in
  match node.Cdfg.op, args with
  | Cdfg.Input s, [] -> B.input b s
  | Cdfg.Const c, [] -> B.const b c
  | Cdfg.Add, [ x; y ] -> B.add b x y
  | Cdfg.Sub, [ x; y ] -> B.sub b x y
  | Cdfg.Mul, [ x; y ] -> B.mul b x y
  | Cdfg.MulConst c, [ x ] -> B.mul_const b c x
  | Cdfg.Shl k, [ x ] -> B.shl b k x
  | Cdfg.Mux, [ sel; a0; a1 ] -> B.mux b ~sel ~a0 ~a1
  | Cdfg.Cmp, [ x; y ] -> B.cmp b x y
  | _ -> failwith "Transform: arity mismatch"

let recognize_const_mults (g : Cdfg.t) =
  rebuild g ~expand:(fun b node args ->
      match node.Cdfg.op, args with
      | Cdfg.Mul, [ x; y ] -> (
          let const_of a =
            match g.Cdfg.nodes.(a).Cdfg.op with Cdfg.Const c -> Some c | _ -> None
          in
          let xa = List.nth node.Cdfg.args 0 and ya = List.nth node.Cdfg.args 1 in
          match const_of xa, const_of ya with
          | Some c, _ -> Cdfg.Build.mul_const b c y
          | _, Some c -> Cdfg.Build.mul_const b c x
          | None, None -> Cdfg.Build.mul b x y)
      | _ -> default_expand b node args)

let strength_reduce (g : Cdfg.t) =
  rebuild g ~expand:(fun b node args ->
      match node.Cdfg.op, args with
      | Cdfg.MulConst c, [ x ] ->
          if c = 0 then Cdfg.Build.const b 0
          else begin
            let digits = Hlp_logic.Generators.csd_digits c in
            let acc = ref None in
            List.iteri
              (fun k d ->
                if d <> 0 then begin
                  let term = if k = 0 then x else Cdfg.Build.shl b k x in
                  acc :=
                    Some
                      (match !acc with
                      | None ->
                          if d = 1 then term
                          else Cdfg.Build.sub b (Cdfg.Build.const b 0) term
                      | Some so_far ->
                          if d = 1 then Cdfg.Build.add b so_far term
                          else Cdfg.Build.sub b so_far term)
                end)
              digits;
            match !acc with Some v -> v | None -> Cdfg.Build.const b 0
          end
      | _ -> default_expand b node args)

let eliminate_dead (g : Cdfg.t) =
  let n = Array.length g.Cdfg.nodes in
  let live = Array.make n false in
  let rec mark i =
    if not live.(i) then begin
      live.(i) <- true;
      List.iter mark g.Cdfg.nodes.(i).Cdfg.args
    end
  in
  List.iter mark g.Cdfg.outputs;
  let b = Cdfg.Build.create () in
  let subst = Array.make n (-1) in
  Array.iter
    (fun (node : Cdfg.node) ->
      if live.(node.Cdfg.id) then begin
        let args = List.map (fun a -> subst.(a)) node.Cdfg.args in
        subst.(node.Cdfg.id) <- default_expand b node args
      end)
    g.Cdfg.nodes;
  Cdfg.Build.finish b ~outputs:(List.map (fun o -> subst.(o)) g.Cdfg.outputs)

let equivalent ?(samples = 100) ?(seed = 9) g1 g2 =
  let ins1 = List.sort_uniq compare (Cdfg.inputs g1) in
  let ins2 = List.sort_uniq compare (Cdfg.inputs g2) in
  ins1 = ins2
  &&
  let rng = Hlp_util.Prng.create seed in
  let ok = ref true in
  for _ = 1 to samples do
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun name -> Hashtbl.replace tbl name (Hlp_util.Prng.int rng 10_000 - 5_000))
      ins1;
    let env name = Hashtbl.find tbl name in
    let v1 = Cdfg.evaluate g1 ~env and v2 = Cdfg.evaluate g2 ~env in
    let o1 = List.map (fun o -> v1.(o)) g1.Cdfg.outputs in
    let o2 = List.map (fun o -> v2.(o)) g2.Cdfg.outputs in
    if o1 <> o2 then ok := false
  done;
  !ok

let mul_count g = Cdfg.count g (function Cdfg.Mul | Cdfg.MulConst _ -> true | _ -> false)

let add_sub_count g = Cdfg.count g (function Cdfg.Add | Cdfg.Sub -> true | _ -> false)
