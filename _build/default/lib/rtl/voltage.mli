(** Multiple supply-voltage scheduling (Section III-F, Chang-Pedram [73]).

    Each CDFG operation is assigned one of a fixed set of supply voltages.
    Off-critical operations run at reduced supplies, saving energy
    quadratically; level shifters are inserted (and priced) whenever a
    lower-voltage producer feeds a higher-voltage consumer. The algorithm
    computes a Pareto energy-delay curve per node bottom-up by dynamic
    programming (exact on trees, heuristic merge on DAGs) and then picks the
    cheapest root point meeting the deadline. *)

type point = {
  delay : float;  (** arrival time at this node's output *)
  energy : float;  (** total energy of the subgraph, shifters included *)
  vdd : float;  (** supply assigned to this node *)
}

type assignment = {
  vdd_of : float array;  (** per node; reference voltage for inputs *)
  total_energy : float;
  total_delay : float;
  num_shifters : int;
}

val voltages : float list
(** The supply menu: 5.0, 3.3, 2.4 V (a classic mid-90s set). *)

val curve : ?width:int -> Cdfg.t -> int -> point list
(** Pareto-pruned energy-delay tradeoff curve of the cone rooted at the
    node (ascending delay, descending energy). *)

val schedule : ?width:int -> Cdfg.t -> deadline:float -> assignment option
(** Minimum-energy voltage assignment meeting the deadline, or [None] if
    even the all-reference-voltage design misses it. *)

val single_voltage : ?width:int -> Cdfg.t -> assignment
(** Baseline: everything at the reference supply. *)

val verify : ?width:int -> Cdfg.t -> assignment -> unit
(** Recomputes delay/energy of an assignment from scratch and checks the
    recorded totals; raises [Failure] on mismatch. *)
