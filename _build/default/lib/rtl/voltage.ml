type point = {
  delay : float;
  energy : float;
  vdd : float;
}

type assignment = {
  vdd_of : float array;
  total_energy : float;
  total_delay : float;
  num_shifters : int;
}

let voltages = [ 5.0; 3.3; 2.4 ]

let node_cost ?(width = 16) op vdd =
  match Module_energy.resource_of_op op with
  | None -> (0.0, 0.0)
  | Some r ->
      ( Module_energy.delay r ~width ~vdd,
        Module_energy.energy r ~width ~vdd ~activity:0.5 )

(* Pareto prune: keep points not dominated in (delay, energy). *)
let prune points =
  let sorted =
    List.sort
      (fun a b ->
        match compare a.delay b.delay with 0 -> compare a.energy b.energy | c -> c)
      points
  in
  let rec keep best_energy = function
    | [] -> []
    | p :: rest ->
        if p.energy < best_energy -. 1e-12 then p :: keep p.energy rest
        else keep best_energy rest
  in
  keep infinity sorted

(* Per-node tradeoff tables. For every node we keep, per candidate voltage,
   the best (delay, energy) of the cone rooted there. On DAGs shared nodes
   are priced once per parent (a conservative over-count the paper's
   tree-oriented DP also incurs); verify() recomputes exactly. *)
let tables ?(width = 16) (g : Cdfg.t) =
  let n = Array.length g.Cdfg.nodes in
  let tabs : (float * point list) list array = Array.make n [] in
  (* tabs.(i): for each vdd of node i, pareto list of (arrival, cone energy,
     choice table handled by reconstruction) *)
  Array.iter
    (fun (node : Cdfg.node) ->
      let i = node.Cdfg.id in
      match Module_energy.resource_of_op node.Cdfg.op with
      | None -> tabs.(i) <- [ (Module_energy.vdd_reference, [ { delay = 0.0; energy = 0.0; vdd = Module_energy.vdd_reference } ]) ]
      | Some _ ->
          let options =
            List.map
              (fun vdd ->
                let d_op, e_op = node_cost ~width node.Cdfg.op vdd in
                (* combine argument curves: for each arg pick a pareto point;
                   to keep this polynomial we combine greedily per arg and
                   re-prune (exact for trees) *)
                let combos =
                  List.fold_left
                    (fun acc a ->
                      let arg_tab = tabs.(a) in
                      let arg_points =
                        List.concat_map
                          (fun (arg_vdd, pts) ->
                            List.map
                              (fun p ->
                                (* level shifter when the producer voltage
                                   differs from the consumer voltage *)
                                let shift =
                                  arg_vdd <> vdd
                                  && (match g.Cdfg.nodes.(a).Cdfg.op with
                                     | Cdfg.Input _ | Cdfg.Const _ -> false
                                     | _ -> true)
                                in
                                let sd = if shift then Module_energy.level_shifter_delay else 0.0 in
                                let se = if shift then Module_energy.level_shifter_energy ~width:16 else 0.0 in
                                { delay = p.delay +. sd; energy = p.energy +. se; vdd = arg_vdd })
                              pts)
                          arg_tab
                        |> prune
                      in
                      List.concat_map
                        (fun (d_acc, e_acc) ->
                          List.map
                            (fun p -> (max d_acc p.delay, e_acc +. p.energy))
                            arg_points)
                        acc
                      |> List.map (fun (d, e) -> (d, e))
                      |> List.sort_uniq compare)
                    [ (0.0, 0.0) ]
                    node.Cdfg.args
                in
                let pts =
                  List.map
                    (fun (d, e) -> { delay = d +. d_op; energy = e +. e_op; vdd })
                    combos
                  |> prune
                in
                (vdd, pts))
              voltages
          in
          tabs.(i) <- options)
    g.Cdfg.nodes;
  tabs

let curve ?width (g : Cdfg.t) root =
  let tabs = tables ?width g in
  List.concat_map (fun (_, pts) -> pts) tabs.(root) |> prune

(* Reconstruct a concrete assignment greedily: choose each node's voltage
   top-down so that its cone still meets its local deadline at minimal
   energy. *)
let schedule ?(width = 16) (g : Cdfg.t) ~deadline =
  let n = Array.length g.Cdfg.nodes in
  (* quick feasibility *)
  let tabs = tables ~width g in
  let root_curve root = List.concat_map (fun (_, pts) -> pts) tabs.(root) |> prune in
  let feasible =
    List.for_all
      (fun o ->
        match root_curve o with
        | [] -> false
        | p :: _ -> p.delay <= deadline +. 1e-9)
      g.Cdfg.outputs
  in
  if not feasible then None
  else begin
    (* per-node deadline = min over users (their start requirement); we
       process in reverse topological order, assigning the lowest voltage
       that keeps the node's *local* slack nonnegative under an ASAP
       arrival computed with current choices *)
    let vdd_of = Array.make n Module_energy.vdd_reference in
    let arrival = Array.make n 0.0 in
    let compute_arrivals () =
      Array.iter
        (fun (node : Cdfg.node) ->
          let i = node.Cdfg.id in
          let d_op, _ = node_cost ~width node.Cdfg.op vdd_of.(i) in
          let base =
            List.fold_left
              (fun acc a ->
                let shift =
                  vdd_of.(a) <> vdd_of.(i)
                  && (match g.Cdfg.nodes.(a).Cdfg.op with
                     | Cdfg.Input _ | Cdfg.Const _ -> false
                     | _ -> true)
                  && (match Module_energy.resource_of_op node.Cdfg.op with
                     | Some _ -> true
                     | None -> false)
                in
                let sd = if shift then Module_energy.level_shifter_delay else 0.0 in
                max acc (arrival.(a) +. sd))
              0.0 node.Cdfg.args
          in
          arrival.(i) <- base +. d_op)
        g.Cdfg.nodes
    in
    let total_delay () =
      compute_arrivals ();
      List.fold_left (fun acc o -> max acc arrival.(o)) 0.0 g.Cdfg.outputs
    in
    (* greedy: repeatedly try to lower the voltage of the node with the
       largest energy gain that keeps the deadline *)
    let improved = ref true in
    while !improved do
      improved := false;
      Array.iter
        (fun (node : Cdfg.node) ->
          let i = node.Cdfg.id in
          match Module_energy.resource_of_op node.Cdfg.op with
          | None -> ()
          | Some _ ->
              let current = vdd_of.(i) in
              let lower = List.filter (fun v -> v < current) voltages in
              List.iter
                (fun v ->
                  if vdd_of.(i) = current then begin
                    vdd_of.(i) <- v;
                    if total_delay () > deadline +. 1e-9 then vdd_of.(i) <- current
                    else improved := true
                  end)
                (List.sort compare lower))
        g.Cdfg.nodes
    done;
    let d = total_delay () in
    (* energy and shifter count of the final assignment *)
    let energy = ref 0.0 and shifters = ref 0 in
    Array.iter
      (fun (node : Cdfg.node) ->
        let i = node.Cdfg.id in
        let _, e = node_cost ~width node.Cdfg.op vdd_of.(i) in
        energy := !energy +. e;
        (match Module_energy.resource_of_op node.Cdfg.op with
        | None -> ()
        | Some _ ->
            List.iter
              (fun a ->
                match g.Cdfg.nodes.(a).Cdfg.op with
                | Cdfg.Input _ | Cdfg.Const _ -> ()
                | _ ->
                    if vdd_of.(a) <> vdd_of.(i) then begin
                      incr shifters;
                      energy := !energy +. Module_energy.level_shifter_energy ~width
                    end)
              node.Cdfg.args))
      g.Cdfg.nodes;
    Some { vdd_of; total_energy = !energy; total_delay = d; num_shifters = !shifters }
  end

let single_voltage ?(width = 16) (g : Cdfg.t) =
  let n = Array.length g.Cdfg.nodes in
  let vdd_of = Array.make n Module_energy.vdd_reference in
  let arrival = Array.make n 0.0 in
  let energy = ref 0.0 in
  Array.iter
    (fun (node : Cdfg.node) ->
      let d_op, e_op = node_cost ~width node.Cdfg.op Module_energy.vdd_reference in
      let base = List.fold_left (fun acc a -> max acc arrival.(a)) 0.0 node.Cdfg.args in
      arrival.(node.Cdfg.id) <- base +. d_op;
      energy := !energy +. e_op)
    g.Cdfg.nodes;
  let d = List.fold_left (fun acc o -> max acc arrival.(o)) 0.0 g.Cdfg.outputs in
  { vdd_of; total_energy = !energy; total_delay = d; num_shifters = 0 }

let verify ?(width = 16) (g : Cdfg.t) asg =
  let n = Array.length g.Cdfg.nodes in
  assert (Array.length asg.vdd_of = n);
  let arrival = Array.make n 0.0 in
  let energy = ref 0.0 and shifters = ref 0 in
  Array.iter
    (fun (node : Cdfg.node) ->
      let i = node.Cdfg.id in
      let d_op, e_op = node_cost ~width node.Cdfg.op asg.vdd_of.(i) in
      let base =
        List.fold_left
          (fun acc a ->
            let shift =
              (match g.Cdfg.nodes.(a).Cdfg.op with
              | Cdfg.Input _ | Cdfg.Const _ -> false
              | _ -> true)
              && (match Module_energy.resource_of_op node.Cdfg.op with
                 | Some _ -> true
                 | None -> false)
              && asg.vdd_of.(a) <> asg.vdd_of.(i)
            in
            if shift then begin
              incr shifters;
              energy := !energy +. Module_energy.level_shifter_energy ~width
            end;
            let sd = if shift then Module_energy.level_shifter_delay else 0.0 in
            max acc (arrival.(a) +. sd))
          0.0 node.Cdfg.args
      in
      arrival.(i) <- base +. d_op;
      energy := !energy +. e_op)
    g.Cdfg.nodes;
  let d = List.fold_left (fun acc o -> max acc arrival.(o)) 0.0 g.Cdfg.outputs in
  if abs_float (d -. asg.total_delay) > 1e-6 then failwith "Voltage.verify: delay mismatch";
  if abs_float (!energy -. asg.total_energy) > 1e-6 then
    failwith "Voltage.verify: energy mismatch";
  if !shifters <> asg.num_shifters then failwith "Voltage.verify: shifter count mismatch"
