(** Operation scheduling (Section III-D).

    Control steps are integers from 0; an operation scheduled at step [s]
    with latency [l] occupies steps [s .. s+l-1] and its results become
    available at [s+l]. Inputs and constants are available at step 0. *)

type t = {
  steps : int array;  (** per node: start step (0 for inputs/constants) *)
  latency : int;  (** number of control steps used by the whole graph *)
}

val op_latency : Cdfg.op -> int
(** Latency in control steps (from {!Module_energy.latency_cycles}). *)

val asap : Cdfg.t -> t
(** As-soon-as-possible schedule; its latency is the minimum feasible. *)

val alap : Cdfg.t -> latency:int -> t
(** As-late-as-possible schedule meeting the given latency. Raises
    [Invalid_argument] if the latency is below the ASAP minimum. *)

val list_schedule :
  Cdfg.t -> resources:(Module_energy.resource * int) list -> t
(** Resource-constrained list scheduling with ALAP-urgency priority.
    Unlisted resource classes are unconstrained. *)

val resource_usage : Cdfg.t -> t -> (Module_energy.resource * int) list
(** Peak number of simultaneously busy units per class — the hardware cost
    of a schedule (the "two adders and one multiplier" of Fig. 4). *)

val verify : Cdfg.t -> t -> unit
(** Checks data dependencies are respected; raises [Failure]. *)

(** {1 Power-management scheduling (Monteiro et al. [63])} *)

type pm = {
  schedule : t;
  manageable : int list;  (** mux node ids that admit shutdown *)
  guarded : (int * int list) list;
  (** for each manageable mux: the node ids in its exclusive false-arm and
      true-arm cones ([N0] and [N1] with the shared part removed),
      concatenated — the operations that can be disabled on one side *)
  arm0 : (int * int list) list;  (** mux -> exclusive false-arm cone *)
  arm1 : (int * int list) list;  (** mux -> exclusive true-arm cone *)
}

val power_managed : Cdfg.t -> latency:int -> pm
(** Identifies the muxes whose control cone [N_C] can be scheduled (ALAP)
    entirely before both data cones [N_0], [N_1] (ASAP) within the latency
    bound; those muxes can disable the non-selected arm. *)

val energy :
  ?width:int -> ?vdd:float -> ?activity:float -> Cdfg.t -> float
(** Total energy of one evaluation with every operation executed (no power
    management), using the module library. *)

val pm_energy :
  ?width:int ->
  ?vdd:float ->
  ?activity:float ->
  Cdfg.t ->
  pm ->
  sel_prob:(int -> float) ->
  float
(** Expected energy when manageable muxes shut down their non-selected arm;
    [sel_prob mux] is the probability the mux selects arm 1 (from
    profiling). *)
