(** RT-level module characterization: energy and delay per operation as a
    function of bit width, supply voltage, and operand activity.

    This is the precharacterized high-level design library the paper's
    macro-modeling flow assumes (Section II-C): high-level synthesis
    (scheduling, allocation, voltage assignment) prices candidate designs
    with these numbers rather than with a gate-level netlist. The values are
    derived from the gate library of {!Hlp_logic.Gate}: an n-bit ripple
    adder's capacitance grows linearly in n, an n x n array multiplier's
    quadratically, etc. Energies are in capacitance-units x V^2 (arbitrary
    but consistent); delays in normalized gate delays. *)

type resource = Adder | Multiplier | Subtractor | Shifter | Comparator | MuxUnit | Register

val resource_of_op : Cdfg.op -> resource option
(** Functional unit class implementing a CDFG op ([None] for inputs and
    constants; constant multiplies map to [Shifter] after strength
    reduction, [Multiplier] before). *)

val switched_capacitance : resource -> width:int -> activity:float -> float
(** Average capacitance switched per operation, scaled by the mean operand
    switching activity (activity 0.5 = white noise). *)

val energy : resource -> width:int -> vdd:float -> activity:float -> float
(** [0.5 * C_sw * Vdd^2]. *)

val delay : resource -> width:int -> vdd:float -> float
(** Propagation delay with the alpha-power supply-voltage model
    [d(V) = d0 * V / (V - Vt)^alpha], [Vt = 0.8], [alpha = 1.3]: lowering
    the supply saves quadratically on energy and costs delay — the engine
    of multiple-voltage scheduling (Section III-F). *)

val latency_cycles : resource -> int
(** Control steps a unit occupies at the reference voltage (adder 1,
    multiplier 2, ...). *)

val vdd_reference : float
(** Nominal supply (5.0 V, the paper's era). *)

val level_shifter_energy : width:int -> float
val level_shifter_delay : float
(** Cost of crossing voltage islands (Section III-F). *)
