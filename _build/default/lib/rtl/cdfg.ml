type op =
  | Input of string
  | Const of int
  | Add
  | Sub
  | Mul
  | MulConst of int
  | Shl of int
  | Mux
  | Cmp

type node = { id : int; op : op; args : int list }

type t = {
  nodes : node array;
  outputs : int list;
}

let arity = function
  | Input _ | Const _ -> 0
  | Add | Sub | Mul | Cmp -> 2
  | MulConst _ | Shl _ -> 1
  | Mux -> 3

let validate t =
  Array.iteri
    (fun i n ->
      if n.id <> i then failwith "Cdfg.validate: non-dense ids";
      if List.length n.args <> arity n.op then failwith "Cdfg.validate: arity";
      List.iter
        (fun a ->
          if a < 0 || a >= i then failwith "Cdfg.validate: argument not earlier")
        n.args)
    t.nodes;
  List.iter
    (fun o ->
      if o < 0 || o >= Array.length t.nodes then failwith "Cdfg.validate: output range")
    t.outputs

module Build = struct
  type b = { mutable rev : node list; mutable count : int }

  let create () = { rev = []; count = 0 }

  let push b op args =
    List.iter (fun a -> assert (a >= 0 && a < b.count)) args;
    let id = b.count in
    b.rev <- { id; op; args } :: b.rev;
    b.count <- id + 1;
    id

  let input b name = push b (Input name) []
  let const b v = push b (Const v) []
  let add b x y = push b Add [ x; y ]
  let sub b x y = push b Sub [ x; y ]
  let mul b x y = push b Mul [ x; y ]
  let mul_const b c x = push b (MulConst c) [ x ]
  let shl b k x = push b (Shl k) [ x ]
  let mux b ~sel ~a0 ~a1 = push b Mux [ sel; a0; a1 ]
  let cmp b x y = push b Cmp [ x; y ]

  let finish b ~outputs =
    let t = { nodes = Array.of_list (List.rev b.rev); outputs } in
    validate t;
    t
end

let mnemonic = function
  | Input _ -> "input"
  | Const _ -> "const"
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | MulConst _ -> "mul_const"
  | Shl _ -> "shl"
  | Mux -> "mux"
  | Cmp -> "cmp"

let is_computational = function Input _ | Const _ -> false | _ -> true

let op_counts t =
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun n ->
      if is_computational n.op then begin
        let k = mnemonic n.op in
        Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
      end)
    t.nodes;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort compare

let count t pred =
  Array.fold_left (fun acc n -> if pred n.op then acc + 1 else acc) 0 t.nodes

let depths t =
  let d = Array.make (Array.length t.nodes) 0 in
  Array.iter
    (fun n ->
      let deepest = List.fold_left (fun acc a -> max acc d.(a)) 0 n.args in
      d.(n.id) <- (if is_computational n.op then deepest + 1 else deepest))
    t.nodes;
  d

let critical_path_ops t =
  let d = depths t in
  List.fold_left (fun acc o -> max acc d.(o)) 0 t.outputs

let evaluate t ~env =
  let v = Array.make (Array.length t.nodes) 0 in
  Array.iter
    (fun n ->
      let a i = v.(List.nth n.args i) in
      v.(n.id) <-
        (match n.op with
        | Input name -> env name
        | Const c -> c
        | Add -> a 0 + a 1
        | Sub -> a 0 - a 1
        | Mul -> a 0 * a 1
        | MulConst c -> c * a 0
        | Shl k -> a 0 lsl k
        | Mux -> if a 0 <> 0 then a 2 else a 1
        | Cmp -> if a 0 < a 1 then 1 else 0))
    t.nodes;
  v

let inputs t =
  Array.to_list t.nodes
  |> List.filter_map (fun n -> match n.op with Input s -> Some s | _ -> None)

let transitive_fanin t root =
  let seen = Array.make (Array.length t.nodes) false in
  let rec go i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter go t.nodes.(i).args
    end
  in
  go root;
  seen

(* --- examples --- *)

(* Figs. 4 and 5 evaluate the monic polynomials x^2 + Bx + A and
   x^3 + Cx^2 + Bx + A; with a leading coefficient of 1 the op counts and
   critical paths of the paper hold exactly:
   Fig. 4: direct 2 mul / 2 add / cp 3, factored 1 mul / 2 add / cp 3;
   Fig. 5: direct 4 mul / 3 add / cp 4, factored 2 mul / 3 add / cp 5. *)

let poly2_direct () =
  let b = Build.create () in
  let x = Build.input b "x" in
  let aa = Build.input b "a" and bb = Build.input b "b" in
  let x2 = Build.mul b x x in
  let bx = Build.mul b bb x in
  let s = Build.add b aa bx in
  let r = Build.add b s x2 in
  Build.finish b ~outputs:[ r ]

let poly2_horner () =
  let b = Build.create () in
  let x = Build.input b "x" in
  let aa = Build.input b "a" and bb = Build.input b "b" in
  let t1 = Build.add b bb x in
  let t2 = Build.mul b t1 x in
  let r = Build.add b aa t2 in
  Build.finish b ~outputs:[ r ]

let poly3_direct () =
  let b = Build.create () in
  let x = Build.input b "x" in
  let aa = Build.input b "a" and bb = Build.input b "b" and cc = Build.input b "c" in
  let x2 = Build.mul b x x in
  let x3 = Build.mul b x2 x in
  let bx = Build.mul b bb x in
  let cx2 = Build.mul b cc x2 in
  let s1 = Build.add b aa bx in
  let s2 = Build.add b s1 cx2 in
  let r = Build.add b s2 x3 in
  Build.finish b ~outputs:[ r ]

let poly3_horner () =
  let b = Build.create () in
  let x = Build.input b "x" in
  let aa = Build.input b "a" and bb = Build.input b "b" and cc = Build.input b "c" in
  let t1 = Build.add b cc x in
  let t2 = Build.mul b t1 x in
  let t3 = Build.add b bb t2 in
  let t4 = Build.mul b t3 x in
  let r = Build.add b aa t4 in
  Build.finish b ~outputs:[ r ]

let fir ~coeffs =
  let b = Build.create () in
  let xs =
    List.mapi (fun i _ -> Build.input b (Printf.sprintf "x%d" i)) coeffs
  in
  let terms =
    List.map2 (fun c x -> Build.mul b (Build.const b c) x) coeffs xs
  in
  let rec sum = function
    | [] -> Build.const b 0
    | [ t ] -> t
    | a :: rest -> Build.add b a (sum rest)
  in
  let r = sum terms in
  Build.finish b ~outputs:[ r ]

let branchy () =
  let b = Build.create () in
  let x = Build.input b "x" and y = Build.input b "y" and z = Build.input b "z" in
  let sel = Build.cmp b x y in
  (* arm 0: cheap; arm 1: expensive multiply chain; mutually exclusive *)
  let arm0 = Build.add b x z in
  let m1 = Build.mul b x y in
  let m2 = Build.mul b m1 z in
  let arm1 = Build.add b m2 y in
  let r1 = Build.mux b ~sel ~a0:arm0 ~a1:arm1 in
  (* a second independent conditional *)
  let sel2 = Build.cmp b z y in
  let a0 = Build.sub b y z in
  let t = Build.mul b z z in
  let a1 = Build.add b t x in
  let r2 = Build.mux b ~sel:sel2 ~a0 ~a1 in
  let out = Build.add b r1 r2 in
  Build.finish b ~outputs:[ out ]

let diffeq () =
  (* one iteration of the HLS diffeq benchmark:
     x' = x + dx; u' = u - 3*x*u*dx - 3*y*dx; y' = y + u*dx *)
  let b = Build.create () in
  let x = Build.input b "x" and y = Build.input b "y" and u = Build.input b "u" in
  let dx = Build.input b "dx" in
  let three = Build.const b 3 in
  let x' = Build.add b x dx in
  let t1 = Build.mul b three x in
  let t2 = Build.mul b u dx in
  let t3 = Build.mul b t1 t2 in
  let t4 = Build.mul b three y in
  let t5 = Build.mul b t4 dx in
  let t6 = Build.sub b u t3 in
  let u' = Build.sub b t6 t5 in
  let y' = Build.add b y t2 in
  Build.finish b ~outputs:[ x'; u'; y' ]
