(** Control-data-flow graphs: the behavioral-level design representation of
    Section III (transformations, scheduling, allocation, multi-voltage
    assignment all operate on it).

    A CDFG here is a DAG of word-level operations. Node ids are dense and
    topologically ordered (every argument precedes its user). Conditionals
    are expressed with [Mux] nodes, whose transitive fanins drive the
    power-management scheduling of Monteiro et al. *)

type op =
  | Input of string
  | Const of int
  | Add
  | Sub
  | Mul
  | MulConst of int  (** multiplication by a compile-time constant *)
  | Shl of int  (** left shift by a constant *)
  | Mux  (** args: [sel; a0; a1]; [sel <> 0] picks [a1] *)
  | Cmp  (** args: [a; b]; yields [1] when [a < b] *)

type node = { id : int; op : op; args : int list }

type t = {
  nodes : node array;
  outputs : int list;  (** node ids of the results *)
}

val validate : t -> unit
(** Raises [Failure] if ids are not dense/topological or arities are off. *)

val arity : op -> int
(** Expected argument count; [-1] is never returned (inputs/consts are 0). *)

(** {1 Construction} *)

module Build : sig
  type b

  val create : unit -> b
  val input : b -> string -> int
  val const : b -> int -> int
  val add : b -> int -> int -> int
  val sub : b -> int -> int -> int
  val mul : b -> int -> int -> int
  val mul_const : b -> int -> int -> int
  (** [mul_const b c x] multiplies node [x] by constant [c]. *)

  val shl : b -> int -> int -> int
  (** [shl b k x]. *)

  val mux : b -> sel:int -> a0:int -> a1:int -> int
  val cmp : b -> int -> int -> int
  val finish : b -> outputs:int list -> t
end

(** {1 Analysis} *)

val op_counts : t -> (string * int) list
(** Operation histogram by mnemonic (inputs/consts excluded). *)

val count : t -> (op -> bool) -> int

val critical_path_ops : t -> int
(** Longest path counting every computational op as one step — the
    "critical path of length three" metric of Figs. 4 and 5. *)

val depths : t -> int array

val evaluate : t -> env:(string -> int) -> int array
(** Reference interpreter over OCaml ints (no overflow wrapping): node
    values under the given input environment, used to prove
    transformations preserve behaviour. *)

val inputs : t -> string list

val transitive_fanin : t -> int -> bool array
(** Set of node ids feeding (transitively) the given node, inclusive. *)

(** {1 Ready-made behavioral examples} *)

val poly2_direct : unit -> t
(** Fig. 4 left: [a x^2 + b x + c] computed directly (2 adds, 2 muls). *)

val poly2_horner : unit -> t
(** Fig. 4 right: [(a x + b) x + c] (2 adds, 1 mul). *)

val poly3_direct : unit -> t
(** Fig. 5 left: [a x^3 + b x^2 + c x + d] directly (3 adds, 4 muls,
    critical path 4). *)

val poly3_horner : unit -> t
(** Fig. 5 right: [((a x + b) x + c) x + d] (3 adds, 2 muls, critical
    path 5 — the speed/operation-count tradeoff of the paper). *)

val fir : coeffs:int list -> t
(** Direct-form FIR over inputs [x0 .. x(n-1)] with constant
    coefficients: [sum c_i * x_i] using general multiplications. *)

val branchy : unit -> t
(** A mux-heavy dataflow with mutually exclusive arms, the target of the
    power-management scheduling experiment (E18). *)

val diffeq : unit -> t
(** The classic HLS differential-equation benchmark body. *)
