type resource = Adder | Multiplier | Subtractor | Shifter | Comparator | MuxUnit | Register

let resource_of_op = function
  | Cdfg.Input _ | Cdfg.Const _ -> None
  | Cdfg.Add -> Some Adder
  | Cdfg.Sub -> Some Subtractor
  | Cdfg.Mul -> Some Multiplier
  | Cdfg.MulConst _ -> Some Multiplier
  | Cdfg.Shl _ -> Some Shifter
  | Cdfg.Mux -> Some MuxUnit
  | Cdfg.Cmp -> Some Comparator

(* Per-bit switched-capacitance coefficients calibrated against the gate
   library generators (see test_rtl: an 8-bit ripple adder's simulated
   switched capacitance per random operation is within 2x of this model). *)
let switched_capacitance res ~width ~activity =
  let w = float_of_int width in
  let base =
    match res with
    | Adder | Subtractor -> 14.0 *. w
    | Multiplier -> 11.0 *. w *. w
    | Shifter -> 3.0 *. w
    | Comparator -> 7.0 *. w
    | MuxUnit -> 4.0 *. w
    | Register -> 6.0 *. w
  in
  base *. (activity /. 0.5)

let energy res ~width ~vdd ~activity =
  0.5 *. switched_capacitance res ~width ~activity *. vdd *. vdd

let vdd_reference = 5.0
let v_threshold = 0.8
let alpha = 1.3

let base_delay res ~width =
  let w = float_of_int width in
  match res with
  | Adder | Subtractor -> 2.0 *. w
  | Multiplier -> 3.5 *. w
  | Shifter -> 1.0
  | Comparator -> 1.8 *. w
  | MuxUnit -> 2.0
  | Register -> 2.0

let voltage_factor vdd =
  let ref_f = vdd_reference /. ((vdd_reference -. v_threshold) ** alpha) in
  let f = vdd /. ((vdd -. v_threshold) ** alpha) in
  f /. ref_f

let delay res ~width ~vdd =
  assert (vdd > v_threshold);
  base_delay res ~width *. voltage_factor vdd

let latency_cycles = function
  | Adder | Subtractor | Comparator -> 1
  | Multiplier -> 2
  | Shifter | MuxUnit | Register -> 1

let level_shifter_energy ~width = 2.0 *. float_of_int width
let level_shifter_delay = 1.5
