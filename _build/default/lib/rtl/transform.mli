(** Behavioral transformations (Section III-C).

    These rewrites change the computational structure of a CDFG while
    preserving its input/output behaviour: constant-multiplication
    strength reduction (the Table I transformation), recognition of
    multiplications by constants, and dead-node elimination. Polynomial
    restructuring examples (Figs. 4/5) live in {!Cdfg} as paired
    constructors. *)

val recognize_const_mults : Cdfg.t -> Cdfg.t
(** Replace [Mul(Const c, x)] / [Mul(x, Const c)] by [MulConst c] nodes. *)

val strength_reduce : Cdfg.t -> Cdfg.t
(** Expand every [MulConst c] into a canonical-signed-digit shift-and-
    add/subtract network, eliminating general multiplications by constants
    entirely — more adders, no multipliers. *)

val eliminate_dead : Cdfg.t -> Cdfg.t
(** Drop nodes not reachable from the outputs (keeping ids dense and
    topological). *)

val equivalent : ?samples:int -> ?seed:int -> Cdfg.t -> Cdfg.t -> bool
(** Randomized behavioural equivalence check: both graphs must name the
    same inputs and produce identical output vectors on random
    environments. *)

val mul_count : Cdfg.t -> int
(** General multiplications (the expensive ops strength reduction
    removes). *)

val add_sub_count : Cdfg.t -> int
