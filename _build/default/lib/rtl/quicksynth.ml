open Hlp_logic

let netlist ?(width = 8) (g : Cdfg.t) =
  let module B = Netlist.Builder in
  let b = B.create () in
  let n = Array.length g.Cdfg.nodes in
  let words : Netlist.wire array array = Array.make n [||] in
  Array.iteri
    (fun i (node : Cdfg.node) ->
      let arg k = words.(List.nth node.Cdfg.args k) in
      let word =
        match node.Cdfg.op with
        | Cdfg.Input name ->
            let raw = B.inputs ~prefix:(name ^ "_") b width in
            Generators.register_word b raw
        | Cdfg.Const c -> Generators.constant_word b ~width c
        | Cdfg.Add -> fst (Generators.ripple_adder b (arg 0) (arg 1))
        | Cdfg.Sub -> fst (Generators.subtractor b (arg 0) (arg 1))
        | Cdfg.Mul ->
            Array.sub (Generators.array_multiplier b (arg 0) (arg 1)) 0 width
        | Cdfg.MulConst c ->
            Generators.constant_multiplier b (arg 0) (c land Hlp_util.Bits.mask width) ~width
        | Cdfg.Shl k -> Generators.shift_left_const b (arg 0) k ~width
        | Cdfg.Cmp ->
            let lt = Generators.less_than b (arg 0) (arg 1) in
            Generators.zero_extend b [| lt |] width
        | Cdfg.Mux ->
            let sel = B.or_ b (Array.to_list (arg 0)) in
            Generators.mux_word b ~sel ~a0:(arg 1) ~a1:(arg 2)
      in
      words.(i) <- word)
    g.Cdfg.nodes;
  List.iteri
    (fun k o ->
      let registered = Generators.register_word b words.(o) in
      Array.iteri
        (fun bit w -> B.output b (Printf.sprintf "out%d_%d" k bit) w)
        registered)
    g.Cdfg.outputs;
  let net = B.finish b in
  Netlist.validate net;
  net

let simulate_capacitance ?(width = 8) ?(cycles = 1000) ?(seed = 19) g =
  let net = netlist ~width g in
  let sim = Hlp_sim.Funcsim.create net in
  let rng = Hlp_util.Prng.create seed in
  let nin = Array.length net.Netlist.inputs in
  Hlp_sim.Funcsim.run sim (fun _ -> Array.init nin (fun _ -> Hlp_util.Prng.bool rng)) cycles;
  Hlp_sim.Funcsim.switched_capacitance sim /. float_of_int cycles

let functional_check ?(width = 8) ?(samples = 60) ?(seed = 23) g =
  let net = netlist ~width g in
  let sim = Hlp_sim.Funcsim.create net in
  let rng = Hlp_util.Prng.create seed in
  let input_names = Cdfg.inputs g in
  let mask = Hlp_util.Bits.mask width in
  let ok = ref true in
  (* the inputs register at the boundary adds one cycle of latency, so we
     feed each environment twice and read after the second step *)
  let read_output k =
    let v = ref 0 in
    Array.iter
      (fun (name, w) ->
        let prefix = Printf.sprintf "out%d_" k in
        let pl = String.length prefix in
        if String.length name > pl && String.sub name 0 pl = prefix then begin
          let bit = int_of_string (String.sub name pl (String.length name - pl)) in
          if Hlp_sim.Funcsim.value sim w then v := !v lor (1 lsl bit)
        end)
      net.Netlist.outputs;
    !v
  in
  for _ = 1 to samples do
    (* small nonnegative operands keep signed and unsigned semantics equal *)
    let env_tbl = Hashtbl.create 8 in
    List.iter
      (fun name -> Hashtbl.replace env_tbl name (Hlp_util.Prng.int rng (1 lsl (width - 2))))
      input_names;
    let nin = Array.length net.Netlist.inputs in
    let bitvec = Array.make nin false in
    Array.iteri
      (fun idx name ->
        (* names look like "<input>_<bit>" *)
        match String.rindex_opt name '_' with
        | None -> ()
        | Some cut ->
            let base = String.sub name 0 cut in
            let bit = int_of_string (String.sub name (cut + 1) (String.length name - cut - 1)) in
            let v = Option.value ~default:0 (Hashtbl.find_opt env_tbl base) in
            bitvec.(idx) <- Hlp_util.Bits.bit v bit)
      net.Netlist.input_names;
    (* two steps: input register, then output register capture *)
    Hlp_sim.Funcsim.step sim bitvec;
    Hlp_sim.Funcsim.step sim bitvec;
    Hlp_sim.Funcsim.step sim bitvec;
    let values = Cdfg.evaluate g ~env:(fun name -> Hashtbl.find env_tbl name) in
    List.iteri
      (fun k o ->
        let expect = values.(o) land mask in
        if read_output k <> expect then ok := false)
      g.Cdfg.outputs
  done;
  !ok
