type t = {
  steps : int array;
  latency : int;
}

let op_latency op =
  match Module_energy.resource_of_op op with
  | None -> 0
  | Some r -> Module_energy.latency_cycles r

let users (g : Cdfg.t) =
  let u = Array.make (Array.length g.Cdfg.nodes) [] in
  Array.iter
    (fun (n : Cdfg.node) -> List.iter (fun a -> u.(a) <- n.Cdfg.id :: u.(a)) n.Cdfg.args)
    g.Cdfg.nodes;
  u

let asap (g : Cdfg.t) =
  let steps = Array.make (Array.length g.Cdfg.nodes) 0 in
  let finish = Array.make (Array.length g.Cdfg.nodes) 0 in
  Array.iter
    (fun (n : Cdfg.node) ->
      let ready = List.fold_left (fun acc a -> max acc finish.(a)) 0 n.Cdfg.args in
      steps.(n.Cdfg.id) <- ready;
      finish.(n.Cdfg.id) <- ready + op_latency n.Cdfg.op)
    g.Cdfg.nodes;
  let latency = Array.fold_left max 0 finish in
  { steps; latency }

let alap (g : Cdfg.t) ~latency =
  let min_latency = (asap g).latency in
  if latency < min_latency then
    invalid_arg
      (Printf.sprintf "Schedule.alap: latency %d below minimum %d" latency min_latency);
  let n = Array.length g.Cdfg.nodes in
  let u = users g in
  let steps = Array.make n 0 in
  for i = n - 1 downto 0 do
    let node = g.Cdfg.nodes.(i) in
    let lat = op_latency node.Cdfg.op in
    let deadline =
      List.fold_left (fun acc user -> min acc steps.(user)) latency u.(i)
    in
    steps.(i) <- deadline - lat
  done;
  { steps; latency }

let list_schedule (g : Cdfg.t) ~resources =
  let n = Array.length g.Cdfg.nodes in
  let urgency = (alap g ~latency:(asap g).latency).steps in
  let cap r = List.assoc_opt r resources in
  let steps = Array.make n (-1) in
  let finish = Array.make n 0 in
  let scheduled = Array.make n false in
  (* inputs/constants are implicitly done *)
  Array.iter
    (fun (node : Cdfg.node) ->
      if op_latency node.Cdfg.op = 0 && node.Cdfg.args = [] then begin
        steps.(node.Cdfg.id) <- 0;
        scheduled.(node.Cdfg.id) <- true
      end)
    g.Cdfg.nodes;
  let busy_until : (Module_energy.resource, int array) Hashtbl.t = Hashtbl.create 8 in
  let unit_pool r =
    match Hashtbl.find_opt busy_until r with
    | Some a -> Some a
    | None -> (
        match cap r with
        | None -> None  (* unconstrained *)
        | Some k ->
            let a = Array.make k 0 in
            Hashtbl.add busy_until r a;
            Some a)
  in
  let remaining = ref (Array.fold_left (fun acc s -> if s then acc else acc + 1) 0 scheduled) in
  ignore remaining;
  let todo = ref (List.filter (fun i -> not scheduled.(i)) (List.init n (fun i -> i))) in
  let step = ref 0 in
  while !todo <> [] do
    (* ready ops whose args have all finished by this step *)
    let ready =
      List.filter
        (fun i ->
          List.for_all
            (fun a -> scheduled.(a) && finish.(a) <= !step)
            g.Cdfg.nodes.(i).Cdfg.args)
        !todo
    in
    let ready = List.sort (fun a b -> compare urgency.(a) urgency.(b)) ready in
    List.iter
      (fun i ->
        let node = g.Cdfg.nodes.(i) in
        let lat = op_latency node.Cdfg.op in
        let can =
          match Module_energy.resource_of_op node.Cdfg.op with
          | None -> true
          | Some r -> (
              match unit_pool r with
              | None -> true
              | Some pool ->
                  (* find a unit free at this step *)
                  let rec find k =
                    if k = Array.length pool then None
                    else if pool.(k) <= !step then Some k
                    else find (k + 1)
                  in
                  (match find 0 with
                  | None -> false
                  | Some k ->
                      pool.(k) <- !step + lat;
                      true))
        in
        if can then begin
          steps.(i) <- !step;
          finish.(i) <- !step + lat;
          scheduled.(i) <- true
        end)
      ready;
    todo := List.filter (fun i -> not scheduled.(i)) !todo;
    incr step;
    if !step > 10_000 then failwith "Schedule.list_schedule: no progress"
  done;
  { steps; latency = Array.fold_left max 0 finish }

let resource_usage (g : Cdfg.t) sched =
  let tally = Hashtbl.create 8 in
  for step = 0 to sched.latency - 1 do
    let busy = Hashtbl.create 8 in
    Array.iter
      (fun (node : Cdfg.node) ->
        match Module_energy.resource_of_op node.Cdfg.op with
        | None -> ()
        | Some r ->
            let s = sched.steps.(node.Cdfg.id) in
            let lat = op_latency node.Cdfg.op in
            if step >= s && step < s + lat then
              Hashtbl.replace busy r (1 + Option.value ~default:0 (Hashtbl.find_opt busy r)))
      g.Cdfg.nodes;
    Hashtbl.iter
      (fun r c ->
        let cur = Option.value ~default:0 (Hashtbl.find_opt tally r) in
        Hashtbl.replace tally r (max cur c))
      busy
  done;
  Hashtbl.fold (fun r c acc -> (r, c) :: acc) tally []
  |> List.sort compare

let verify (g : Cdfg.t) sched =
  Array.iter
    (fun (node : Cdfg.node) ->
      let s = sched.steps.(node.Cdfg.id) in
      if s < 0 then failwith "Schedule.verify: unscheduled node";
      List.iter
        (fun a ->
          let af = sched.steps.(a) + op_latency g.Cdfg.nodes.(a).Cdfg.op in
          if af > s then failwith "Schedule.verify: dependency violated")
        node.Cdfg.args;
      if s + op_latency node.Cdfg.op > sched.latency then
        failwith "Schedule.verify: exceeds latency")
    g.Cdfg.nodes

(* --- power-management scheduling --- *)

type pm = {
  schedule : t;
  manageable : int list;
  guarded : (int * int list) list;
  arm0 : (int * int list) list;
  arm1 : (int * int list) list;
}

let cone_sets (g : Cdfg.t) mux =
  match g.Cdfg.nodes.(mux).Cdfg.op, g.Cdfg.nodes.(mux).Cdfg.args with
  | Cdfg.Mux, [ sel; a0; a1 ] ->
      let nc = Cdfg.transitive_fanin g sel in
      let f0 = Cdfg.transitive_fanin g a0 in
      let f1 = Cdfg.transitive_fanin g a1 in
      let n = Array.length g.Cdfg.nodes in
      let collect pred = List.filter pred (List.init n (fun i -> i)) in
      let computational i =
        match g.Cdfg.nodes.(i).Cdfg.op with
        | Cdfg.Input _ | Cdfg.Const _ -> false
        | _ -> true
      in
      (* nodes in exactly one data cone and not needed by the control *)
      let n0 = collect (fun i -> computational i && f0.(i) && not f1.(i) && not nc.(i)) in
      let n1 = collect (fun i -> computational i && f1.(i) && not f0.(i) && not nc.(i)) in
      let ncl = collect (fun i -> computational i && nc.(i)) in
      Some (ncl, n0, n1)
  | _ -> None

let power_managed (g : Cdfg.t) ~latency =
  let a = asap g in
  let l = alap g ~latency in
  let muxes =
    Array.to_list g.Cdfg.nodes
    |> List.filter_map (fun (n : Cdfg.node) ->
           match n.Cdfg.op with Cdfg.Mux -> Some n.Cdfg.id | _ -> None)
    |> List.rev  (* bottom-most first, as the paper prescribes *)
  in
  let manageable = ref [] and arm0 = ref [] and arm1 = ref [] and guarded = ref [] in
  List.iter
    (fun mux ->
      match cone_sets g mux with
      | None -> ()
      | Some (nc, n0, n1) ->
          if n0 <> [] || n1 <> [] then begin
            (* control must be able to finish before any exclusive data op
               needs to start *)
            let control_done =
              List.fold_left
                (fun acc i -> max acc (a.steps.(i) + op_latency g.Cdfg.nodes.(i).Cdfg.op))
                0 nc
            in
            let data_deadline =
              List.fold_left (fun acc i -> min acc l.steps.(i)) max_int (n0 @ n1)
            in
            if control_done <= data_deadline then begin
              manageable := mux :: !manageable;
              arm0 := (mux, n0) :: !arm0;
              arm1 := (mux, n1) :: !arm1;
              guarded := (mux, n0 @ n1) :: !guarded
            end
          end)
    muxes;
  { schedule = l; manageable = List.rev !manageable;
    guarded = List.rev !guarded; arm0 = List.rev !arm0; arm1 = List.rev !arm1 }

let node_energy ?(width = 16) ?(vdd = Module_energy.vdd_reference) ?(activity = 0.5)
    (node : Cdfg.node) =
  match Module_energy.resource_of_op node.Cdfg.op with
  | None -> 0.0
  | Some r -> Module_energy.energy r ~width ~vdd ~activity

let energy ?width ?vdd ?activity (g : Cdfg.t) =
  Array.fold_left
    (fun acc node -> acc +. node_energy ?width ?vdd ?activity node)
    0.0 g.Cdfg.nodes

let pm_energy ?width ?vdd ?activity (g : Cdfg.t) pm ~sel_prob =
  let total = energy ?width ?vdd ?activity g in
  (* subtract the expected energy of the disabled arms; a node guarded by
     several muxes is only credited once (first mux claiming it wins) *)
  let claimed = Array.make (Array.length g.Cdfg.nodes) false in
  let credit = ref 0.0 in
  List.iter
    (fun mux ->
      let p1 = sel_prob mux in
      let n0 = List.assoc mux pm.arm0 and n1 = List.assoc mux pm.arm1 in
      List.iter
        (fun i ->
          if not claimed.(i) then begin
            claimed.(i) <- true;
            (* arm0 ops are idle when the mux selects arm 1 *)
            credit := !credit +. (p1 *. node_energy ?width ?vdd ?activity g.Cdfg.nodes.(i))
          end)
        n0;
      List.iter
        (fun i ->
          if not claimed.(i) then begin
            claimed.(i) <- true;
            credit :=
              !credit +. ((1.0 -. p1) *. node_energy ?width ?vdd ?activity g.Cdfg.nodes.(i))
          end)
        n1)
    pm.manageable;
  total -. !credit
