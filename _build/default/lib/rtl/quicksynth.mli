(** Quick synthesis for behavioral-level estimation (Section II-B3).

    "One approach for behavioral-level power prediction is to assume some
    RT-level template and produce estimates based on that assumption" — the
    template here is the simplest defensible one: a fully parallel datapath
    (one functional unit per operation, registered inputs and outputs, mux
    trees for CDFG multiplexors). The synthesized netlist is then fed to
    any of the RT/gate-level estimators, which is exactly the paper's flow:
    quick synthesis first, Section II-C techniques after. *)

val netlist : ?width:int -> Cdfg.t -> Hlp_logic.Netlist.t
(** Map every CDFG operation to a datapath block from
    {!Hlp_logic.Generators} at the given word width (default 8):
    [Add]/[Sub] ripple units, [Mul] an array multiplier truncated to the
    width, [MulConst] a CSD shift-add network, [Shl] wiring, [Cmp] an
    unsigned comparator, [Mux] a word multiplexor steered by the OR of the
    select word. Inputs are named after the CDFG inputs
    ([<name>_0..<name>_w-1]); output [k] is registered and exposed as
    [out<k>_*]. Arithmetic is two's-complement modulo [2^width], matching
    {!Cdfg.evaluate} for in-range values (comparisons are unsigned). *)

val simulate_capacitance :
  ?width:int -> ?cycles:int -> ?seed:int -> Cdfg.t -> float
(** Quick-synthesize and simulate under uniform random inputs: the
    switched capacitance per evaluation that a behavioral estimator would
    report for this CDFG, with no hand-built netlist. *)

val functional_check : ?width:int -> ?samples:int -> ?seed:int -> Cdfg.t -> bool
(** Random cross-validation of the synthesized netlist against the CDFG
    interpreter (inputs drawn small enough to avoid the signed/unsigned
    comparison divergence). *)
