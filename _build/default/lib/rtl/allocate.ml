type binding = {
  unit_of : int array;
  num_units : (Module_energy.resource * int) list;
}

type profile = int array array

let profile ?(samples = 200) ?(seed = 42) ?(range = 1 lsl 12) (g : Cdfg.t) =
  let rng = Hlp_util.Prng.create seed in
  (* inputs carry different dynamic ranges (a dx is small, a coordinate is
     wide) — the magnitude diversity the switching-aware binder exploits *)
  let range_of name = max 16 (range lsr (Hashtbl.hash name mod 6)) in
  Array.init samples (fun _ ->
      let tbl = Hashtbl.create 8 in
      let env name =
        match Hashtbl.find_opt tbl name with
        | Some v -> v
        | None ->
            let v = Hlp_util.Prng.int rng (range_of name) in
            Hashtbl.add tbl name v;
            v
      in
      Cdfg.evaluate g ~env)

let resource_nodes (g : Cdfg.t) =
  Array.to_list g.Cdfg.nodes
  |> List.filter_map (fun (n : Cdfg.node) ->
         match Module_energy.resource_of_op n.Cdfg.op with
         | Some r -> Some (r, n.Cdfg.id)
         | None -> None)

let overlap ?initiation_interval (g : Cdfg.t) (sched : Schedule.t) i j =
  let si = sched.Schedule.steps.(i) and sj = sched.Schedule.steps.(j) in
  let li = Schedule.op_latency g.Cdfg.nodes.(i).Cdfg.op in
  let lj = Schedule.op_latency g.Cdfg.nodes.(j).Cdfg.op in
  match initiation_interval with
  | None -> not (si + li <= sj || sj + lj <= si)
  | Some ii ->
      (* under functional pipelining a unit is busy in every residue class
         its operation's occupied steps cover *)
      assert (ii >= 1);
      let residues s l =
        List.init (min l ii) (fun k -> (s + k) mod ii)
      in
      List.exists (fun r -> List.mem r (residues sj lj)) (residues si li)

let group_by_resource (g : Cdfg.t) =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (r, i) ->
      Hashtbl.replace tbl r (i :: Option.value ~default:[] (Hashtbl.find_opt tbl r)))
    (resource_nodes g);
  Hashtbl.fold (fun r l acc -> (r, List.rev l) :: acc) tbl []

let bind_greedy_area (g : Cdfg.t) sched =
  let unit_of = Array.make (Array.length g.Cdfg.nodes) (-1) in
  let num_units = ref [] in
  let next_unit = ref 0 in
  List.iter
    (fun (r, nodes) ->
      (* left-edge: sort by start step, place on the first unit whose last
         op does not overlap *)
      let nodes =
        List.sort (fun a b -> compare sched.Schedule.steps.(a) sched.Schedule.steps.(b)) nodes
      in
      let units = ref [] in  (* (unit id, members rev) *)
      List.iter
        (fun i ->
          let rec place = function
            | [] ->
                let u = !next_unit in
                incr next_unit;
                units := !units @ [ (u, ref [ i ]) ];
                unit_of.(i) <- u
            | (u, members) :: rest ->
                if List.exists (fun j -> overlap g sched i j) !members then place rest
                else begin
                  members := i :: !members;
                  unit_of.(i) <- u
                end
          in
          place !units)
        nodes;
      num_units := (r, List.length !units) :: !num_units)
    (group_by_resource g);
  { unit_of; num_units = List.sort compare !num_units }

let mean_hamming ?(width = 16) (prof : profile) i j =
  let mask = Hlp_util.Bits.mask width in
  let total = ref 0 in
  Array.iter
    (fun row ->
      total := !total + Hlp_util.Bits.hamming (row.(i) land mask) (row.(j) land mask))
    prof;
  float_of_int !total /. float_of_int (Array.length prof) /. float_of_int width

(* Switching seen at the *inputs* of a shared unit when operation [j]
   executes after operation [i]: the mean Hamming distance between their
   operand tuples. Commutative operations may swap operands (the
   Musoll-Cortadella operand-reordering transformation), so the cheaper
   of the two pairings counts. *)
let operand_hamming ?(width = 16) (g : Cdfg.t) (prof : profile) i j =
  let mask = Hlp_util.Bits.mask width in
  let args k = g.Cdfg.nodes.(k).Cdfg.args in
  let commutative k =
    match g.Cdfg.nodes.(k).Cdfg.op with
    | Cdfg.Add | Cdfg.Mul -> true
    | Cdfg.Sub | Cdfg.Cmp | Cdfg.Mux | Cdfg.MulConst _ | Cdfg.Shl _
    | Cdfg.Input _ | Cdfg.Const _ -> false
  in
  match args i, args j with
  | [ a1; a2 ], [ b1; b2 ] ->
      let dist row x y = Hlp_util.Bits.hamming (row.(x) land mask) (row.(y) land mask) in
      let total = ref 0 in
      Array.iter
        (fun row ->
          let straight = dist row a1 b1 + dist row a2 b2 in
          let swapped =
            if commutative j then dist row a1 b2 + dist row a2 b1 else max_int
          in
          total := !total + min straight swapped)
        prof;
      float_of_int !total
      /. float_of_int (Array.length prof)
      /. (2.0 *. float_of_int width)
  | [ a ], [ b ] -> mean_hamming ~width prof a b
  | _ -> mean_hamming ~width prof i j

let bind_low_power ?(width = 16) ?initiation_interval (g : Cdfg.t) sched prof =
  let unit_of = Array.make (Array.length g.Cdfg.nodes) (-1) in
  let next_unit = ref 0 in
  let num_units = ref [] in
  List.iter
    (fun (r, nodes) ->
      (* union-find style clusters, merged by descending W = Wc (1 - Ws) *)
      let cluster = Hashtbl.create 8 in
      List.iter (fun i -> Hashtbl.replace cluster i [ i ]) nodes;
      let head = Hashtbl.create 8 in
      List.iter (fun i -> Hashtbl.replace head i i) nodes;
      let compatible_clusters ci cj =
        List.for_all
          (fun i ->
            List.for_all (fun j -> not (overlap ?initiation_interval g sched i j)) cj)
          ci
      in
      let wc = Module_energy.switched_capacitance r ~width ~activity:0.5 in
      let edges = ref [] in
      let rec pairs = function
        | [] -> ()
        | i :: rest ->
            List.iter
              (fun j ->
                if not (overlap ?initiation_interval g sched i j) then begin
                  let ws = operand_hamming ~width g prof i j in
                  edges := (wc *. (1.0 -. ws), i, j) :: !edges
                end)
              rest;
            pairs rest
      in
      pairs nodes;
      let edges = List.sort (fun (a, _, _) (b, _, _) -> compare b a) !edges in
      let try_merge i j =
        let hi = Hashtbl.find head i and hj = Hashtbl.find head j in
        if hi <> hj then begin
          let ci = Hashtbl.find cluster hi and cj = Hashtbl.find cluster hj in
          if compatible_clusters ci cj then begin
            let merged = ci @ cj in
            Hashtbl.replace cluster hi merged;
            Hashtbl.remove cluster hj;
            List.iter (fun k -> Hashtbl.replace head k hi) merged
          end
        end
      in
      List.iter (fun (_, i, j) -> try_merge i j) edges;
      (* compaction: merge any remaining compatible clusters so the result
         never uses more units than the area-driven baseline *)
      let rec pairs = function
        | [] -> ()
        | i :: rest ->
            List.iter (fun j -> try_merge i j) rest;
            pairs rest
      in
      pairs nodes;
      let count = ref 0 in
      Hashtbl.iter
        (fun _ members ->
          let u = !next_unit in
          incr next_unit;
          incr count;
          List.iter (fun i -> unit_of.(i) <- u) members)
        cluster;
      num_units := (r, !count) :: !num_units)
    (group_by_resource g);
  { unit_of; num_units = List.sort compare !num_units }

let switched_capacitance ?(width = 16) (g : Cdfg.t) sched binding prof =
  (* group ops per unit, order by control step; consecutive executions on a
     unit charge its capacitance proportionally to operand Hamming activity *)
  let by_unit = Hashtbl.create 16 in
  Array.iteri
    (fun i u ->
      if u >= 0 then
        Hashtbl.replace by_unit u (i :: Option.value ~default:[] (Hashtbl.find_opt by_unit u)))
    binding.unit_of;
  let total = ref 0.0 in
  Hashtbl.iter
    (fun _ members ->
      let members =
        List.sort
          (fun a b -> compare sched.Schedule.steps.(a) sched.Schedule.steps.(b))
          members
      in
      match members with
      | [] -> ()
      | first :: _ ->
          let r =
            match Module_energy.resource_of_op g.Cdfg.nodes.(first).Cdfg.op with
            | Some r -> r
            | None -> assert false
          in
          (* first execution of the cycle charges white-noise activity
             (values arrive on a quiet unit); subsequent ones charge the
             measured inter-operation activity *)
          let rec charge = function
            | [] -> ()
            | [ _last ] -> ()
            | a :: b :: rest ->
                let ws = operand_hamming ~width g prof a b in
                total :=
                  !total +. Module_energy.switched_capacitance r ~width ~activity:ws;
                charge (b :: rest)
          in
          total := !total +. Module_energy.switched_capacitance r ~width ~activity:0.5;
          charge members)
    by_unit;
  !total

let register_count (g : Cdfg.t) sched =
  (* variable lifetime: from producing step (finish) to last consuming step *)
  let n = Array.length g.Cdfg.nodes in
  let last_use = Array.make n (-1) in
  Array.iter
    (fun (node : Cdfg.node) ->
      List.iter
        (fun a -> last_use.(a) <- max last_use.(a) sched.Schedule.steps.(node.Cdfg.id))
        node.Cdfg.args)
    g.Cdfg.nodes;
  List.iter (fun o -> last_use.(o) <- max last_use.(o) sched.Schedule.latency) g.Cdfg.outputs;
  (* peak number of simultaneously live values *)
  let peak = ref 0 in
  for step = 0 to sched.Schedule.latency do
    let live = ref 0 in
    Array.iteri
      (fun i node ->
        let birth =
          sched.Schedule.steps.(i) + Schedule.op_latency node.Cdfg.op
        in
        if last_use.(i) >= 0 && birth <= step && step <= last_use.(i) then incr live)
      g.Cdfg.nodes;
    peak := max !peak !live
  done;
  !peak

(* --- register allocation --- *)

type reg_binding = {
  reg_of : int array;
  num_regs : int;
}

(* A value needs a register when it is alive past the step it was produced
   in: from (finish step) to the last consuming step. *)
let lifetimes (g : Cdfg.t) (sched : Schedule.t) =
  let n = Array.length g.Cdfg.nodes in
  let last_use = Array.make n (-1) in
  Array.iter
    (fun (node : Cdfg.node) ->
      List.iter
        (fun a -> last_use.(a) <- max last_use.(a) sched.Schedule.steps.(node.Cdfg.id))
        node.Cdfg.args)
    g.Cdfg.nodes;
  List.iter (fun o -> last_use.(o) <- max last_use.(o) sched.Schedule.latency) g.Cdfg.outputs;
  Array.init n (fun i ->
      let birth = sched.Schedule.steps.(i) + Schedule.op_latency g.Cdfg.nodes.(i).Cdfg.op in
      if last_use.(i) > birth then Some (birth, last_use.(i)) else None)

let lives_overlap (b1, d1) (b2, d2) = not (d1 <= b2 || d2 <= b1)

let bind_registers_area (g : Cdfg.t) sched =
  let lt = lifetimes g sched in
  let n = Array.length lt in
  let reg_of = Array.make n (-1) in
  let order =
    List.sort
      (fun a b -> compare (fst (Option.get lt.(a))) (fst (Option.get lt.(b))))
      (List.filter (fun i -> lt.(i) <> None) (List.init n (fun i -> i)))
  in
  let regs = ref [] in  (* (reg id, members) *)
  let next = ref 0 in
  List.iter
    (fun i ->
      let li = Option.get lt.(i) in
      let rec place = function
        | [] ->
            let r = !next in
            incr next;
            regs := !regs @ [ (r, ref [ i ]) ];
            reg_of.(i) <- r
        | (r, members) :: rest ->
            if List.exists (fun j -> lives_overlap li (Option.get lt.(j))) !members then
              place rest
            else begin
              members := i :: !members;
              reg_of.(i) <- r
            end
      in
      place !regs)
    order;
  { reg_of; num_regs = !next }

let bind_registers_low_power ?(width = 16) (g : Cdfg.t) sched prof =
  let lt = lifetimes g sched in
  let n = Array.length lt in
  let stored = List.filter (fun i -> lt.(i) <> None) (List.init n (fun i -> i)) in
  let cluster = Hashtbl.create 8 and head = Hashtbl.create 8 in
  List.iter (fun i -> Hashtbl.replace cluster i [ i ]; Hashtbl.replace head i i) stored;
  let compatible ci cj =
    List.for_all
      (fun i ->
        List.for_all (fun j -> not (lives_overlap (Option.get lt.(i)) (Option.get lt.(j)))) cj)
      ci
  in
  let try_merge i j =
    let hi = Hashtbl.find head i and hj = Hashtbl.find head j in
    if hi <> hj then begin
      let ci = Hashtbl.find cluster hi and cj = Hashtbl.find cluster hj in
      if compatible ci cj then begin
        let merged = ci @ cj in
        Hashtbl.replace cluster hi merged;
        Hashtbl.remove cluster hj;
        List.iter (fun k -> Hashtbl.replace head k hi) merged
      end
    end
  in
  (* heaviest edges first: similar values share a register *)
  let edges = ref [] in
  let rec pairs = function
    | [] -> ()
    | i :: rest ->
        List.iter
          (fun j ->
            if not (lives_overlap (Option.get lt.(i)) (Option.get lt.(j))) then
              edges := (1.0 -. mean_hamming ~width prof i j, i, j) :: !edges)
          rest;
        pairs rest
  in
  pairs stored;
  List.iter
    (fun (_, i, j) -> try_merge i j)
    (List.sort (fun (a, _, _) (b, _, _) -> compare b a) !edges);
  let rec compact = function
    | [] -> ()
    | i :: rest ->
        List.iter (fun j -> try_merge i j) rest;
        compact rest
  in
  compact stored;
  let reg_of = Array.make n (-1) in
  let count = ref 0 in
  Hashtbl.iter
    (fun _ members ->
      let r = !count in
      incr count;
      List.iter (fun i -> reg_of.(i) <- r) members)
    cluster;
  { reg_of; num_regs = !count }

let register_switched_capacitance ?(width = 16) (_g : Cdfg.t) sched binding prof =
  let by_reg = Hashtbl.create 16 in
  Array.iteri
    (fun i r ->
      if r >= 0 then
        Hashtbl.replace by_reg r (i :: Option.value ~default:[] (Hashtbl.find_opt by_reg r)))
    binding.reg_of;
  let total = ref 0.0 in
  Hashtbl.iter
    (fun _ members ->
      let members =
        List.sort
          (fun a b -> compare sched.Schedule.steps.(a) sched.Schedule.steps.(b))
          members
      in
      (* first write charges white-noise activity; subsequent writes charge
         the measured hamming between consecutive stored values *)
      let rec charge = function
        | [] -> ()
        | [ _ ] -> ()
        | a :: b :: rest ->
            let ws = mean_hamming ~width prof a b in
            total :=
              !total
              +. Module_energy.switched_capacitance Module_energy.Register ~width
                   ~activity:ws;
            charge (b :: rest)
      in
      total :=
        !total
        +. Module_energy.switched_capacitance Module_energy.Register ~width ~activity:0.5;
      charge members)
    by_reg;
  !total
