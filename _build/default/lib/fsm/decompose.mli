(** FSM decomposition for selective shutdown (Section III-H, [86]-[87]).

    A machine is split into two interacting submachines by partitioning its
    state set; each submachine gets a {e wait} state it parks in while the
    other is active, so at any time exactly one submachine computes and the
    idle one can be clock-gated. A good partition minimizes the probability
    of crossing between the halves (the interconnect lines "tend to drive
    heavier loads"), keeping each half resident for long stretches. *)

type partition = bool array
(** [partition.(s)] is [true] when state [s] belongs to submachine B. *)

val crossing_probability : Stg.t -> Markov.dist -> partition -> float
(** Steady-state probability that a cycle moves between the halves. *)

val balanced_min_cut :
  ?iterations:int -> Hlp_util.Prng.t -> Stg.t -> Markov.dist -> partition
(** Annealed two-way partition minimizing {!crossing_probability} with a
    balance penalty (both halves must hold a nontrivial share of the
    steady-state mass, otherwise "shutdown" is vacuous). *)

type decomposition = {
  partition : partition;
  sub_a : Stg.t;  (** half A plus one wait state (the last state) *)
  sub_b : Stg.t;
  crossing : float;
  resident_a : float;  (** steady-state share of half A *)
}

val decompose : Stg.t -> Markov.dist -> partition -> decomposition
(** Build the two submachines. Each keeps its own states plus a single
    wait state; transitions that leave the half send the machine to its
    wait state, where it self-loops until the matching re-entry. The
    product of the two submachines is behaviourally checked against the
    original in the test suite. *)

type evaluation = {
  monolithic_cap : float;  (** synthesized switched capacitance per cycle *)
  decomposed_cap : float;
      (** active submachine capacitance + gated clock residue of the idle
          one, per cycle *)
  saving : float;
}

val evaluate : ?cycles:int -> ?seed:int -> Stg.t -> decomposition -> evaluation
(** Simulate the original machine, attribute each cycle to the active
    half, and charge only that half's synthesized logic (plus the idle
    half's clock-gated residue). *)
