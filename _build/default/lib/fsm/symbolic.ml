type t = {
  man : Hlp_bdd.Bdd.man;
  stg : Stg.t;
  encoding : Encode.t;
  relation : Hlp_bdd.Bdd.t;
  input_vars : int list;
  present_vars : int list;
  next_vars : int list;
}

let build ?encoding (stg : Stg.t) =
  let enc = match encoding with Some e -> e | None -> Encode.natural stg in
  let man = Hlp_bdd.Bdd.manager () in
  let k = stg.Stg.input_bits in
  let w = enc.Encode.width in
  let input_vars = List.init k (fun b -> b) in
  let present_vars = List.init w (fun b -> k + (2 * b)) in
  let next_vars = List.init w (fun b -> k + (2 * b) + 1) in
  let lit v set = if set then Hlp_bdd.Bdd.var man v else Hlp_bdd.Bdd.nvar man v in
  let cube vars word =
    Hlp_bdd.Bdd.conj man
      (List.mapi (fun b v -> lit v (Hlp_util.Bits.bit word b)) vars)
  in
  let relation = ref (Hlp_bdd.Bdd.zero man) in
  for s = 0 to stg.Stg.num_states - 1 do
    for i = 0 to Stg.num_inputs stg - 1 do
      let term =
        Hlp_bdd.Bdd.conj man
          [
            cube input_vars i;
            cube present_vars enc.Encode.code.(s);
            cube next_vars enc.Encode.code.(stg.Stg.next.(s).(i));
          ]
      in
      relation := Hlp_bdd.Bdd.or_ man !relation term
    done
  done;
  { man; stg; encoding = enc; relation = !relation; input_vars; present_vars; next_vars }

let state_cube t s =
  let lit v set = if set then Hlp_bdd.Bdd.var t.man v else Hlp_bdd.Bdd.nvar t.man v in
  Hlp_bdd.Bdd.conj t.man
    (List.mapi
       (fun b v -> lit v (Hlp_util.Bits.bit t.encoding.Encode.code.(s) b))
       t.present_vars)

let image t set =
  let step = Hlp_bdd.Bdd.and_ t.man t.relation set in
  let over_next = Hlp_bdd.Bdd.exists t.man (t.input_vars @ t.present_vars) step in
  (* rename next-state variables back onto the present-state rail *)
  Hlp_bdd.Bdd.rename t.man (fun v -> v - 1) over_next

let reachable t =
  let rec fixpoint current =
    let bigger = Hlp_bdd.Bdd.or_ t.man current (image t current) in
    if Hlp_bdd.Bdd.equal bigger current then current else fixpoint bigger
  in
  fixpoint (state_cube t t.stg.Stg.reset)

let reachable_states t =
  let reach = reachable t in
  Array.init t.stg.Stg.num_states (fun s ->
      not (Hlp_bdd.Bdd.is_zero (Hlp_bdd.Bdd.and_ t.man reach (state_cube t s))))

let count_reachable t =
  let reach = reachable t in
  let w = List.length t.present_vars in
  int_of_float
    (Float.round
       (Hlp_bdd.Bdd.probability t.man ~p:(fun _ -> 0.5) reach *. (2.0 ** float_of_int w)))

let self_loop_set t =
  (* constrain next = present bitwise, then drop the next variables *)
  let eqs =
    List.map2
      (fun pv nv ->
        Hlp_bdd.Bdd.xnor_ t.man (Hlp_bdd.Bdd.var t.man pv) (Hlp_bdd.Bdd.var t.man nv))
      t.present_vars t.next_vars
  in
  let self = Hlp_bdd.Bdd.and_ t.man t.relation (Hlp_bdd.Bdd.conj t.man eqs) in
  Hlp_bdd.Bdd.exists t.man t.next_vars self

let self_loop_probability t =
  let reach = reachable t in
  let selfs = Hlp_bdd.Bdd.and_ t.man (self_loop_set t) reach in
  let p f = Hlp_bdd.Bdd.probability t.man ~p:(fun _ -> 0.5) f in
  let p_reach = p reach in
  if p_reach = 0.0 then 0.0 else p selfs /. p_reach
