type dist = {
  state_prob : float array;
  trans_prob : float array array;
}

let analyze ?input_prob (stg : Stg.t) =
  let ni = Stg.num_inputs stg in
  let ip =
    match input_prob with
    | Some f -> f
    | None -> fun _ -> 1.0 /. float_of_int ni
  in
  let n = stg.Stg.num_states in
  (* transition matrix p.(s).(s') *)
  let p = Array.init n (fun _ -> Array.make n 0.0) in
  for s = 0 to n - 1 do
    for i = 0 to ni - 1 do
      let s' = stg.Stg.next.(s).(i) in
      p.(s).(s') <- p.(s).(s') +. ip i
    done
  done;
  (* power iteration from the reset state *)
  let pi = Array.make n 0.0 in
  pi.(stg.Stg.reset) <- 1.0;
  let tmp = Array.make n 0.0 in
  let rec iterate k =
    Array.fill tmp 0 n 0.0;
    for s = 0 to n - 1 do
      if pi.(s) > 0.0 then
        for s' = 0 to n - 1 do
          if p.(s).(s') > 0.0 then tmp.(s') <- tmp.(s') +. (pi.(s) *. p.(s).(s'))
        done
    done;
    let delta = ref 0.0 in
    for s = 0 to n - 1 do
      delta := !delta +. abs_float (tmp.(s) -. pi.(s));
      (* damping avoids oscillation on periodic chains *)
      pi.(s) <- (0.5 *. pi.(s)) +. (0.5 *. tmp.(s))
    done;
    if !delta > 1e-12 && k < 100_000 then iterate (k + 1)
  in
  iterate 0;
  let total = Array.fold_left ( +. ) 0.0 pi in
  Array.iteri (fun s v -> pi.(s) <- v /. total) pi;
  let trans = Array.init n (fun s -> Array.map (fun q -> pi.(s) *. q) p.(s)) in
  { state_prob = pi; trans_prob = trans }

let expected_hamming (stg : Stg.t) dist ~code =
  let n = stg.Stg.num_states in
  let acc = ref 0.0 in
  for s = 0 to n - 1 do
    for s' = 0 to n - 1 do
      let p = dist.trans_prob.(s).(s') in
      if p > 0.0 then
        acc := !acc +. (p *. float_of_int (Hlp_util.Bits.hamming (code s) (code s')))
    done
  done;
  !acc

let transition_entropy dist =
  Array.fold_left
    (fun acc row ->
      Array.fold_left
        (fun acc p -> if p > 0.0 then acc -. (p *. (log p /. log 2.0)) else acc)
        acc row)
    0.0 dist.trans_prob

let self_loop_probability dist =
  let acc = ref 0.0 in
  Array.iteri (fun s row -> acc := !acc +. row.(s)) dist.trans_prob;
  !acc
