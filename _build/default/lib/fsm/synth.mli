(** Controller synthesis: STG + encoding -> gate-level netlist.

    Produces the two-level (AND-OR) next-state and output logic the paper's
    Section III-H assumes as the direct translation of an encoded STG, so
    that encodings can be compared by *simulated switched capacitance*
    rather than just by the Hamming-distance proxy. *)

type result = {
  net : Hlp_logic.Netlist.t;
  encoding : Encode.t;
  num_minterms : int;
  (** AND terms actually instantiated — the [N_M] cover-size parameter of
      the Landman-Rabaey controller power model. *)
  state_wires : Hlp_logic.Netlist.wire array;
  (** the state-register outputs, LSB first *)
}

val synthesize : ?encoding:Encode.t -> Stg.t -> result
(** Netlist inputs are the STG input bits (LSB first, named [in*]); outputs
    are the Mealy outputs ([o*]). Default encoding: {!Encode.natural}. *)

val switched_capacitance_per_cycle :
  ?cycles:int -> ?seed:int -> ?encoding:Encode.t -> Stg.t -> float
(** Synthesize and simulate under uniform random inputs; returns average
    switched capacitance per cycle — the end-to-end figure of merit for the
    encoding experiments. *)
