type t = {
  width : int;
  code : int array;
}

let min_width states =
  let rec go w = if 1 lsl w >= states then w else go (w + 1) in
  go 1

let natural (stg : Stg.t) =
  { width = min_width stg.Stg.num_states;
    code = Array.init stg.Stg.num_states (fun s -> s) }

let gray (stg : Stg.t) =
  { width = min_width stg.Stg.num_states;
    code = Array.init stg.Stg.num_states Hlp_util.Bits.to_gray }

let one_hot (stg : Stg.t) =
  { width = stg.Stg.num_states;
    code = Array.init stg.Stg.num_states (fun s -> 1 lsl s) }

let random rng (stg : Stg.t) =
  let w = min_width stg.Stg.num_states in
  let codes = Array.init (1 lsl w) (fun i -> i) in
  Hlp_util.Prng.shuffle rng codes;
  { width = w; code = Array.sub codes 0 stg.Stg.num_states }

let cost stg dist enc = Markov.expected_hamming stg dist ~code:(fun s -> enc.code.(s))

let anneal_from ?(iterations = 20_000) rng stg dist start =
  let n = stg.Stg.num_states in
  let width = start.width in
  let space = 1 lsl width in
  assert (space >= n);
  (* occupancy map: codes currently in use, plus free codes *)
  let code = Array.copy start.code in
  let current = ref (cost stg dist { width; code }) in
  let eval () = cost stg dist { width; code } in
  let temperature k =
    let frac = float_of_int k /. float_of_int iterations in
    0.5 *. exp (-4.0 *. frac)
  in
  let owner = Array.make space (-1) in
  Array.iteri (fun s c -> owner.(c) <- s) code;
  for k = 0 to iterations - 1 do
    (* move: either swap two states' codes, or move a state to a free code *)
    let s = Hlp_util.Prng.int rng n in
    let target = Hlp_util.Prng.int rng space in
    let old_code = code.(s) in
    if target <> old_code then begin
      let other = owner.(target) in
      code.(s) <- target;
      owner.(target) <- s;
      owner.(old_code) <- -1;
      (match other with
      | -1 -> ()
      | o ->
          code.(o) <- old_code;
          owner.(old_code) <- o);
      let cost' = eval () in
      let dE = cost' -. !current in
      let accept =
        dE <= 0.0
        || Hlp_util.Prng.float rng 1.0 < exp (-.dE /. max 1e-9 (temperature k))
      in
      if accept then current := cost'
      else begin
        (* undo *)
        (match other with
        | -1 -> owner.(target) <- -1
        | o ->
            code.(o) <- target;
            owner.(target) <- o);
        code.(s) <- old_code;
        owner.(old_code) <- s
      end
    end
  done;
  { width; code }

let anneal ?width ?iterations rng stg dist =
  let w = match width with Some w -> w | None -> min_width stg.Stg.num_states in
  let nat = natural stg in
  let start =
    if w = nat.width then nat
    else { width = w; code = Array.copy nat.code }
  in
  anneal_from ?iterations rng stg dist start

let reencode ?iterations rng stg dist start = anneal_from ?iterations rng stg dist start

let is_injective enc =
  let seen = Hashtbl.create 16 in
  Array.for_all
    (fun c ->
      if Hashtbl.mem seen c then false
      else begin
        Hashtbl.add seen c ();
        true
      end)
    enc.code
