type t = {
  name : string;
  input_bits : int;
  output_bits : int;
  num_states : int;
  next : int array array;
  output : int array array;
  reset : int;
}

let num_inputs t = 1 lsl t.input_bits

let create ~name ~input_bits ~output_bits ~num_states ?(reset = 0) ~next ~output () =
  assert (num_states > 0 && input_bits >= 0 && output_bits >= 0);
  let ni = 1 lsl input_bits in
  let tab f = Array.init num_states (fun s -> Array.init ni (fun i -> f s i)) in
  { name; input_bits; output_bits; num_states; reset;
    next = tab next; output = tab output }

let validate t =
  let ni = num_inputs t in
  if Array.length t.next <> t.num_states || Array.length t.output <> t.num_states then
    failwith "Stg.validate: table height mismatch";
  if t.reset < 0 || t.reset >= t.num_states then failwith "Stg.validate: reset out of range";
  Array.iteri
    (fun s row ->
      if Array.length row <> ni then failwith "Stg.validate: next row width";
      Array.iter
        (fun ns ->
          if ns < 0 || ns >= t.num_states then
            failwith (Printf.sprintf "Stg.validate: next state out of range at %d" s))
        row)
    t.next;
  Array.iter
    (fun row ->
      if Array.length row <> ni then failwith "Stg.validate: output row width";
      Array.iter
        (fun o ->
          if o < 0 || o >= 1 lsl t.output_bits then
            failwith "Stg.validate: output out of range")
        row)
    t.output

let transition_count t =
  let pairs = Hashtbl.create 64 in
  Array.iteri
    (fun s row -> Array.iter (fun ns -> Hashtbl.replace pairs (s, ns) ()) row)
    t.next;
  Hashtbl.length pairs

let simulate t inputs =
  let state = ref t.reset in
  let outs =
    List.map
      (fun i ->
        let o = t.output.(!state).(i) in
        state := t.next.(!state).(i);
        o)
      inputs
  in
  (!state, outs)

let reachable t =
  let seen = Array.make t.num_states false in
  let rec go s =
    if not seen.(s) then begin
      seen.(s) <- true;
      Array.iter go t.next.(s)
    end
  in
  go t.reset;
  seen

(* --- KISS2 --- *)

let to_kiss t =
  let buf = Buffer.create 1024 in
  let ni = num_inputs t in
  Buffer.add_string buf (Printf.sprintf ".i %d\n.o %d\n.s %d\n.p %d\n.r s%d\n"
                           t.input_bits t.output_bits t.num_states
                           (t.num_states * ni) t.reset);
  for s = 0 to t.num_states - 1 do
    for i = 0 to ni - 1 do
      let bits w n =
        String.init n (fun k -> if Hlp_util.Bits.bit w (n - 1 - k) then '1' else '0')
      in
      Buffer.add_string buf
        (Printf.sprintf "%s s%d s%d %s\n" (bits i t.input_bits) s t.next.(s).(i)
           (bits t.output.(s).(i) t.output_bits))
    done
  done;
  Buffer.contents buf

let of_kiss text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  let input_bits = ref (-1) and output_bits = ref (-1) and reset_name = ref None in
  let rows = ref [] in
  List.iter
    (fun line ->
      let fields =
        String.split_on_char ' ' line |> List.filter (fun f -> f <> "")
      in
      match fields with
      | ".i" :: v :: _ -> input_bits := int_of_string v
      | ".o" :: v :: _ -> output_bits := int_of_string v
      | ".s" :: _ | ".p" :: _ | ".e" :: _ | ".end" :: _ -> ()
      | ".r" :: v :: _ -> reset_name := Some v
      | [ cube; from_s; to_s; out ] -> rows := (cube, from_s, to_s, out) :: !rows
      | _ -> failwith ("Stg.of_kiss: malformed line: " ^ line))
    lines;
  if !input_bits < 0 || !output_bits < 0 then failwith "Stg.of_kiss: missing .i/.o";
  let rows = List.rev !rows in
  (* state name table, in order of first appearance (reset first if given) *)
  let names = Hashtbl.create 16 in
  let order = ref [] in
  let intern n =
    match Hashtbl.find_opt names n with
    | Some i -> i
    | None ->
        let i = Hashtbl.length names in
        Hashtbl.add names n i;
        order := n :: !order;
        i
  in
  (match !reset_name with Some r -> ignore (intern r) | None -> ());
  List.iter (fun (_, f, t', _) -> ignore (intern f); ignore (intern t')) rows;
  let num_states = Hashtbl.length names in
  let ni = 1 lsl !input_bits in
  let next = Array.init num_states (fun s -> Array.init ni (fun _ -> s)) in
  let output = Array.init num_states (fun _ -> Array.make ni 0) in
  let parse_word str =
    let n = String.length str in
    let v = ref 0 in
    String.iteri
      (fun k c ->
        match c with
        | '1' -> v := !v lor (1 lsl (n - 1 - k))
        | '0' -> ()
        | _ -> failwith "Stg.of_kiss: bad output bit")
      str;
    !v
  in
  (* expand '-' don't-cares in the input cube to the covered input words *)
  let rec cube_values cube pos acc =
    if pos = String.length cube then [ acc ]
    else
      match cube.[pos] with
      | '0' -> cube_values cube (pos + 1) (acc lsl 1)
      | '1' -> cube_values cube (pos + 1) ((acc lsl 1) lor 1)
      | '-' ->
          cube_values cube (pos + 1) (acc lsl 1)
          @ cube_values cube (pos + 1) ((acc lsl 1) lor 1)
      | _ -> failwith "Stg.of_kiss: bad input bit"
  in
  List.iter
    (fun (cube, from_s, to_s, out) ->
      if String.length cube <> !input_bits then failwith "Stg.of_kiss: cube width";
      let f = intern from_s and t' = intern to_s and o = parse_word out in
      List.iter
        (fun i ->
          next.(f).(i) <- t';
          output.(f).(i) <- o)
        (cube_values cube 0 0))
    rows;
  let reset = match !reset_name with Some r -> intern r | None -> 0 in
  { name = "kiss"; input_bits = !input_bits; output_bits = !output_bits;
    num_states; next; output; reset }

(* --- zoo --- *)

let counter_fsm ~bits =
  let n = 1 lsl bits in
  create ~name:(Printf.sprintf "counter%d" bits) ~input_bits:1 ~output_bits:bits
    ~num_states:n
    ~next:(fun s i -> if i = 1 then (s + 1) mod n else s)
    ~output:(fun s _ -> s)
    ()

let sequence_detector ~pattern =
  let pat = Array.of_list pattern in
  let len = Array.length pat in
  assert (len > 0);
  (* state s = length of the longest prefix of [pat] matching the suffix of
     the input seen so far; classic KMP automaton *)
  let failure = Array.make len 0 in
  for i = 1 to len - 1 do
    let rec fall k =
      if k > 0 && pat.(i) <> pat.(k) then fall failure.(k - 1) else k
    in
    let k = fall failure.(i - 1) in
    failure.(i) <- if pat.(i) = pat.(k) then k + 1 else k
  done;
  let step s bit =
    let rec fall k =
      if k > 0 && pat.(k) <> bit then fall failure.(k - 1) else k
    in
    let k = fall s in
    if pat.(k) = bit then k + 1 else k
  in
  create ~name:"seqdet" ~input_bits:1 ~output_bits:1 ~num_states:len
    ~next:(fun s i ->
      let s' = step s (i = 1) in
      if s' = len then failure.(len - 1) else s')
    ~output:(fun s i -> if step s (i = 1) = len then 1 else 0)
    ()

let reactive ~wait_states ~burst_states =
  assert (wait_states >= 1 && burst_states >= 1);
  let n = wait_states + burst_states in
  create ~name:"reactive" ~input_bits:1 ~output_bits:1 ~num_states:n
    ~next:(fun s i ->
      if s < wait_states then
        if i land 1 = 1 then wait_states  (* request: enter the burst *)
        else s  (* idle self-loop *)
      else if s + 1 < n then s + 1
      else 0)
    ~output:(fun s _ -> if s >= wait_states then 1 else 0)
    ()

let updown ~bits =
  let n = 1 lsl bits in
  create ~name:(Printf.sprintf "updown%d" bits) ~input_bits:1 ~output_bits:bits
    ~num_states:n
    ~next:(fun s i -> if i = 1 then (s + 1) mod n else (s + n - 1) mod n)
    ~output:(fun s _ -> s)
    ()

let random_fsm rng ~states ~input_bits ~output_bits =
  create ~name:"random" ~input_bits ~output_bits ~num_states:states
    ~next:(fun _ _ -> Hlp_util.Prng.int rng states)
    ~output:(fun _ _ -> Hlp_util.Prng.int rng (1 lsl output_bits))
    ()

let zoo () =
  [
    counter_fsm ~bits:4;
    updown ~bits:4;
    sequence_detector ~pattern:[ true; false; true; true ];
    reactive ~wait_states:4 ~burst_states:4;
    random_fsm (Hlp_util.Prng.create 2024) ~states:12 ~input_bits:2 ~output_bits:3;
  ]

(* Textbook controllers written in KISS2, exercising the parser and adding
   realistic machines to the zoo. *)

let traffic_light_kiss = "\
.i 2\n\
.o 3\n\
.s 4\n\
.r GREEN\n\
-0 GREEN  GREEN  001\n\
-1 GREEN  YELLOW 001\n\
-- YELLOW RED    010\n\
0- RED    RED    100\n\
1- RED    REDY   100\n\
-- REDY   GREEN  110\n"

let memctrl_kiss = "\
.i 2\n\
.o 2\n\
.s 5\n\
.r IDLE\n\
00 IDLE  IDLE  00\n\
01 IDLE  READ  01\n\
10 IDLE  WRITE 10\n\
11 IDLE  READ  01\n\
-- READ  WAIT  01\n\
-- WRITE WAIT  10\n\
0- WAIT  DONE  00\n\
1- WAIT  WAIT  00\n\
-- DONE  IDLE  11\n"

let traffic_light () = { (of_kiss traffic_light_kiss) with name = "traffic" }

let memory_controller () = { (of_kiss memctrl_kiss) with name = "memctrl" }

let zoo_extended () = zoo () @ [ traffic_light (); memory_controller () ]
