let equivalence_classes (stg : Stg.t) =
  let n = stg.Stg.num_states in
  let ni = Stg.num_inputs stg in
  (* initial partition: states with identical output rows *)
  let cls = Array.make n 0 in
  let by_output = Hashtbl.create 16 in
  Array.iteri
    (fun s row ->
      let key = Array.to_list row in
      let id =
        match Hashtbl.find_opt by_output key with
        | Some id -> id
        | None ->
            let id = Hashtbl.length by_output in
            Hashtbl.add by_output key id;
            id
      in
      cls.(s) <- id)
    stg.Stg.output;
  (* refine: split classes by the class vector of their successors *)
  let changed = ref true in
  while !changed do
    changed := false;
    let by_sig = Hashtbl.create 16 in
    let fresh = Array.make n 0 in
    for s = 0 to n - 1 do
      let signature =
        (cls.(s), List.init ni (fun i -> cls.(stg.Stg.next.(s).(i))))
      in
      let id =
        match Hashtbl.find_opt by_sig signature with
        | Some id -> id
        | None ->
            let id = Hashtbl.length by_sig in
            Hashtbl.add by_sig signature id;
            id
      in
      fresh.(s) <- id
    done;
    if fresh <> cls then begin
      Array.blit fresh 0 cls 0 n;
      changed := true
    end
  done;
  cls

let minimize (stg : Stg.t) =
  let cls = equivalence_classes stg in
  (* compact class ids to 0..k-1 in order of appearance *)
  let remap = Hashtbl.create 16 in
  let order = ref [] in
  Array.iter
    (fun c ->
      if not (Hashtbl.mem remap c) then begin
        Hashtbl.add remap c (Hashtbl.length remap);
        order := c :: !order
      end)
    cls;
  let mapping = Array.map (fun c -> Hashtbl.find remap c) cls in
  let k = Hashtbl.length remap in
  (* a representative old state for each new state *)
  let rep = Array.make k (-1) in
  Array.iteri (fun s m -> if rep.(m) < 0 then rep.(m) <- s) mapping;
  let ni = Stg.num_inputs stg in
  let next =
    Array.init k (fun m -> Array.init ni (fun i -> mapping.(stg.Stg.next.(rep.(m)).(i))))
  in
  let output =
    Array.init k (fun m -> Array.init ni (fun i -> stg.Stg.output.(rep.(m)).(i)))
  in
  ( { stg with
      Stg.name = stg.Stg.name ^ "_min";
      num_states = k;
      next;
      output;
      reset = mapping.(stg.Stg.reset) },
    mapping )

let dc_retarget (stg : Stg.t) (enc : Encode.t) =
  let cls = equivalence_classes stg in
  let n = stg.Stg.num_states in
  let members = Hashtbl.create 16 in
  Array.iteri
    (fun s c ->
      Hashtbl.replace members c (s :: Option.value ~default:[] (Hashtbl.find_opt members c)))
    cls;
  let ni = Stg.num_inputs stg in
  let next =
    Array.init n (fun s ->
        Array.init ni (fun i ->
            let target = stg.Stg.next.(s).(i) in
            let candidates = Hashtbl.find members cls.(target) in
            List.fold_left
              (fun best cand ->
                let d c = Hlp_util.Bits.hamming enc.Encode.code.(s) enc.Encode.code.(c) in
                if d cand < d best then cand else best)
              target candidates))
  in
  { stg with Stg.name = stg.Stg.name ^ "_dc"; next }
