type partition = bool array

let crossing_probability (stg : Stg.t) (dist : Markov.dist) part =
  let acc = ref 0.0 in
  for s = 0 to stg.Stg.num_states - 1 do
    for s' = 0 to stg.Stg.num_states - 1 do
      if part.(s) <> part.(s') then acc := !acc +. dist.Markov.trans_prob.(s).(s')
    done
  done;
  !acc

let mass_b (dist : Markov.dist) part =
  let acc = ref 0.0 in
  Array.iteri (fun s p -> if part.(s) then acc := !acc +. p) dist.Markov.state_prob;
  !acc

let balanced_min_cut ?(iterations = 10_000) rng (stg : Stg.t) dist =
  let n = stg.Stg.num_states in
  assert (n >= 4);
  let part = Array.init n (fun s -> s mod 2 = 1) in
  let cost p =
    let cross = crossing_probability stg dist p in
    let m = mass_b dist p in
    let balance = max 0.0 (0.15 -. min m (1.0 -. m)) in
    cross +. (10.0 *. balance)
  in
  let current = ref (cost part) in
  for k = 0 to iterations - 1 do
    let s = Hlp_util.Prng.int rng n in
    part.(s) <- not part.(s);
    let c' = cost part in
    let temperature = 0.3 *. exp (-6.0 *. float_of_int k /. float_of_int iterations) in
    if c' <= !current || Hlp_util.Prng.float rng 1.0 < exp (-.(c' -. !current) /. temperature)
    then current := c'
    else part.(s) <- not part.(s)
  done;
  part

type decomposition = {
  partition : partition;
  sub_a : Stg.t;
  sub_b : Stg.t;
  crossing : float;
  resident_a : float;
}

(* Build the submachine holding the states where [keep s] is true; local
   state ids follow original order, plus one trailing wait state. *)
let submachine (stg : Stg.t) ~keep ~name =
  let locals =
    List.filter keep (List.init stg.Stg.num_states (fun s -> s))
  in
  let local_of = Hashtbl.create 16 in
  List.iteri (fun l s -> Hashtbl.add local_of s l) locals;
  let k = List.length locals in
  let wait = k in
  let orig = Array.of_list locals in
  let ni = Stg.num_inputs stg in
  let next l i =
    if l = wait then wait
    else begin
      let s' = stg.Stg.next.(orig.(l)).(i) in
      match Hashtbl.find_opt local_of s' with Some l' -> l' | None -> wait
    end
  in
  let output l i = if l = wait then 0 else stg.Stg.output.(orig.(l)).(i) in
  let reset =
    match Hashtbl.find_opt local_of stg.Stg.reset with Some l -> l | None -> wait
  in
  ignore ni;
  Stg.create ~name ~input_bits:stg.Stg.input_bits ~output_bits:stg.Stg.output_bits
    ~num_states:(k + 1) ~reset ~next ~output ()

let decompose (stg : Stg.t) dist part =
  let sub_a = submachine stg ~keep:(fun s -> not part.(s)) ~name:(stg.Stg.name ^ "_a") in
  let sub_b = submachine stg ~keep:(fun s -> part.(s)) ~name:(stg.Stg.name ^ "_b") in
  {
    partition = part;
    sub_a;
    sub_b;
    crossing = crossing_probability stg dist part;
    resident_a = 1.0 -. mass_b dist part;
  }

type evaluation = {
  monolithic_cap : float;
  decomposed_cap : float;
  saving : float;
}

let evaluate ?(cycles = 2000) ?(seed = 13) (stg : Stg.t) d =
  let mono = Synth.switched_capacitance_per_cycle ~cycles ~seed stg in
  let cap_a = Synth.switched_capacitance_per_cycle ~cycles ~seed d.sub_a in
  let cap_b = Synth.switched_capacitance_per_cycle ~cycles ~seed d.sub_b in
  (* each half pays the crossing hand-off: both state registers load, and
     the interconnect lines toggle *)
  let ra = Synth.synthesize d.sub_a and rb = Synth.synthesize d.sub_b in
  let width r = Array.length r.Synth.state_wires in
  let handoff = 3.0 *. float_of_int (width ra + width rb) in
  let decomposed =
    (d.resident_a *. cap_a)
    +. ((1.0 -. d.resident_a) *. cap_b)
    +. (d.crossing *. handoff)
  in
  { monolithic_cap = mono; decomposed_cap = decomposed;
    saving = 1.0 -. (decomposed /. mono) }
