open Hlp_logic

type result = {
  net : Netlist.t;
  encoding : Encode.t;
  num_minterms : int;
  state_wires : Netlist.wire array;
}

let synthesize ?encoding (stg : Stg.t) =
  let enc = match encoding with Some e -> e | None -> Encode.natural stg in
  assert (Array.length enc.Encode.code = stg.Stg.num_states);
  let module B = Netlist.Builder in
  let b = B.create () in
  let ins = B.inputs ~prefix:"in" b stg.Stg.input_bits in
  let ins_n = Array.map (B.not_ b) ins in
  let width = enc.Encode.width in
  let ni = Stg.num_inputs stg in
  let reset_code = enc.Encode.code.(stg.Stg.reset) in
  (* create the state registers up front so the next-state logic can read
     them; connect their data pins at the end *)
  let q = Array.make width (-1) in
  let d = Array.make width (-1) in
  let minterms = ref 0 in
  let qn = Array.make width (-1) in
  let build_body () =
    (* state recognizers *)
    let match_state s =
      let c = enc.Encode.code.(s) in
      let lits =
        List.init width (fun bit ->
            if Hlp_util.Bits.bit c bit then q.(bit) else qn.(bit))
      in
      B.and_ b lits
    in
    let match_input i =
      let lits =
        List.init stg.Stg.input_bits (fun bit ->
            if Hlp_util.Bits.bit i bit then ins.(bit) else ins_n.(bit))
      in
      B.and_ b lits
    in
    let state_match = Array.init stg.Stg.num_states match_state in
    let input_match = Array.init ni match_input in
    (* group transitions: only build an AND term when it feeds some OR *)
    let next_terms = Array.make width [] in
    let out_terms = Array.make stg.Stg.output_bits [] in
    let reach = Stg.reachable stg in
    for s = 0 to stg.Stg.num_states - 1 do
      if reach.(s) then
        for i = 0 to ni - 1 do
          let ns_code = enc.Encode.code.(stg.Stg.next.(s).(i)) in
          let out = stg.Stg.output.(s).(i) in
          if ns_code <> 0 || out <> 0 then begin
            let term = B.and_ b [ state_match.(s); input_match.(i) ] in
            incr minterms;
            for bit = 0 to width - 1 do
              if Hlp_util.Bits.bit ns_code bit then
                next_terms.(bit) <- term :: next_terms.(bit)
            done;
            for bit = 0 to stg.Stg.output_bits - 1 do
              if Hlp_util.Bits.bit out bit then
                out_terms.(bit) <- term :: out_terms.(bit)
            done
          end
        done
    done;
    for bit = 0 to width - 1 do
      d.(bit) <- B.or_ b next_terms.(bit)
    done;
    Array.map (fun terms -> B.or_ b terms) out_terms
  in
  (* allocate registers with feedback *)
  let created = ref 0 in
  let outs = ref [||] in
  let rec alloc bit =
    if bit = width then outs := build_body ()
    else begin
      let _ =
        B.dff_feedback ~init:(Hlp_util.Bits.bit reset_code bit) b (fun qw ->
            q.(bit) <- qw;
            qn.(bit) <- B.not_ b qw;
            incr created;
            alloc (bit + 1);
            d.(bit))
      in
      ()
    end
  in
  alloc 0;
  Array.iteri (fun i w -> B.output b (Printf.sprintf "o%d" i) w) !outs;
  let net = B.finish b in
  Netlist.validate net;
  { net; encoding = enc; num_minterms = !minterms; state_wires = Array.copy q }

let switched_capacitance_per_cycle ?(cycles = 2000) ?(seed = 7) ?encoding stg =
  let r = synthesize ?encoding stg in
  let rng = Hlp_util.Prng.create seed in
  let sim = Hlp_sim.Funcsim.create r.net in
  let nin = Array.length r.net.Netlist.inputs in
  Hlp_sim.Funcsim.run sim
    (fun _ -> Array.init nin (fun _ -> Hlp_util.Prng.bool rng))
    cycles;
  Hlp_sim.Funcsim.switched_capacitance sim /. float_of_int cycles
