lib/fsm/minimize.ml: Array Encode Hashtbl Hlp_util List Option Stg
