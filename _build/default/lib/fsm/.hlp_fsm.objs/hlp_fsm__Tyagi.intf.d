lib/fsm/tyagi.mli: Markov Stg
