lib/fsm/stg.ml: Array Buffer Hashtbl Hlp_util List Printf String
