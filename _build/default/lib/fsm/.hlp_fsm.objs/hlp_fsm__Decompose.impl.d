lib/fsm/decompose.ml: Array Hashtbl Hlp_util List Markov Stg Synth
