lib/fsm/symbolic.mli: Encode Hlp_bdd Stg
