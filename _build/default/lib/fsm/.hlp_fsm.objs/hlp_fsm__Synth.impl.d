lib/fsm/synth.ml: Array Encode Hlp_logic Hlp_sim Hlp_util List Netlist Printf Stg
