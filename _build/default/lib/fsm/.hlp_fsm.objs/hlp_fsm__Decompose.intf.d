lib/fsm/decompose.mli: Hlp_util Markov Stg
