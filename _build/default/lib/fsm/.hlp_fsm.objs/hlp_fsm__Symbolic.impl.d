lib/fsm/symbolic.ml: Array Encode Float Hlp_bdd Hlp_util List Stg
