lib/fsm/stg.mli: Hlp_util
