lib/fsm/markov.mli: Stg
