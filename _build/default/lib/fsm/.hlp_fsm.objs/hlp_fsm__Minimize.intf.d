lib/fsm/minimize.mli: Encode Stg
