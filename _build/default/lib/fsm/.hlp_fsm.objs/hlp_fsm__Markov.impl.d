lib/fsm/markov.ml: Array Hlp_util Stg
