lib/fsm/synth.mli: Encode Hlp_logic Stg
