lib/fsm/encode.ml: Array Hashtbl Hlp_util Markov Stg
