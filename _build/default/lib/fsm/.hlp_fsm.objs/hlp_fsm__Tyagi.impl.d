lib/fsm/tyagi.ml: Array Markov Stg
