lib/fsm/encode.mli: Hlp_util Markov Stg
