(** State transition graphs (completely specified Mealy machines).

    The controller substrate for Sections II-B (Tyagi entropic bounds,
    Landman-Rabaey controller models), III-H (encoding/re-encoding for low
    power) and III-I (gated clocks). States are dense integers; the input
    alphabet is the [2^input_bits] binary input words; every (state, input)
    pair has exactly one next state and output word. *)

type t = {
  name : string;
  input_bits : int;
  output_bits : int;
  num_states : int;
  next : int array array;  (** [next.(s).(i)] with [i] an input word *)
  output : int array array;  (** [output.(s).(i)] an output word *)
  reset : int;  (** initial state *)
}

val create :
  name:string ->
  input_bits:int ->
  output_bits:int ->
  num_states:int ->
  ?reset:int ->
  next:(int -> int -> int) ->
  output:(int -> int -> int) ->
  unit ->
  t
(** Tabulate a machine from its transition and output functions. *)

val validate : t -> unit
(** Checks table shapes and range of every entry; raises [Failure]. *)

val num_inputs : t -> int
(** Size of the input alphabet, [2^input_bits]. *)

val transition_count : t -> int
(** Number of distinct (state, next-state) pairs with at least one input —
    the [t] of Tyagi's sparsity condition. *)

val simulate : t -> int list -> int * int list
(** Run from reset over a list of input words; returns the final state and
    the output word sequence. *)

val reachable : t -> bool array
(** States reachable from reset. *)

(** {1 KISS2 interchange} *)

val to_kiss : t -> string
(** Serialize in the KISS2 STG format used by classic sequential synthesis
    tools (one line per (input cube, state, next state, output)). *)

val of_kiss : string -> t
(** Parse a KISS2 description. Input cubes may contain ['-'] don't-cares
    (expanded); unspecified (state, input) pairs default to a self-loop
    with all-zero output. Raises [Failure] on malformed input. *)

(** {1 Benchmark zoo} *)

val counter_fsm : bits:int -> t
(** Modulo counter with an enable input. *)

val sequence_detector : pattern:bool list -> t
(** Mealy detector that raises its output on each occurrence of the
    pattern (overlapping). *)

val reactive : wait_states:int -> burst_states:int -> t
(** A controller that idles in a wait state until a request arrives
    (input bit 0), then runs a burst. The extra wait codes beyond the
    first are spare (unreachable) — which the symbolic reachability
    analysis detects; what matters for the shutdown experiments is that
    the machine self-loops most of the time under rare requests. *)

val updown : bits:int -> t
(** Up/down counter: input bit selects direction. *)

val random_fsm :
  Hlp_util.Prng.t -> states:int -> input_bits:int -> output_bits:int -> t

val zoo : unit -> t list
(** A representative set of machines used across the experiments. *)

val traffic_light : unit -> t
(** A four-phase traffic-light controller, defined in KISS2 text and run
    through {!of_kiss} (sensor input bit 1 requests the cross direction). *)

val memory_controller : unit -> t
(** A five-state read/write handshake controller, also sourced from its
    KISS2 description. *)

val zoo_extended : unit -> t list
(** {!zoo} plus the KISS-sourced controllers. *)
