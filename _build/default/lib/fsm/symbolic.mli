(** Symbolic (BDD-based) FSM analysis (Section III-H).

    For controllers too large to enumerate, the paper's toolchain represents
    the transition structure implicitly: sets of states are characteristic
    functions, the transition relation is a BDD over (input, present-state,
    next-state) variables, and reachability is computed by image iterations
    "avoiding explicit enumeration of the elements of the sets". This module
    builds that machinery on {!Hlp_bdd.Bdd} and cross-checks it against the
    explicit algorithms on the benchmark zoo.

    Variable convention for a machine with [k] input bits and [w] encoded
    state bits: inputs are BDD variables [0..k-1]; present-state bit [b] is
    variable [k + 2b]; next-state bit [b] is [k + 2b + 1] (interleaving
    present/next keeps the relation BDD small). *)

type t = {
  man : Hlp_bdd.Bdd.man;
  stg : Stg.t;
  encoding : Encode.t;
  relation : Hlp_bdd.Bdd.t;  (** T(i, s, s') *)
  input_vars : int list;
  present_vars : int list;
  next_vars : int list;
}

val build : ?encoding:Encode.t -> Stg.t -> t
(** Encode the machine's transition relation symbolically (default
    encoding: {!Encode.natural}). *)

val state_cube : t -> int -> Hlp_bdd.Bdd.t
(** Characteristic function of one state over the present-state
    variables. *)

val image : t -> Hlp_bdd.Bdd.t -> Hlp_bdd.Bdd.t
(** One-step image: the set of states reachable in one transition from the
    given present-state set (over any input), expressed back on the
    present-state variables. *)

val reachable : t -> Hlp_bdd.Bdd.t
(** Least fixpoint of {!image} from the reset state. *)

val reachable_states : t -> bool array
(** Decode the symbolic reachable set back to explicit states (for the
    cross-check against {!Stg.reachable}). *)

val count_reachable : t -> int
(** Number of used codes in the reachable set (BDD sat-count). *)

val self_loop_set : t -> Hlp_bdd.Bdd.t
(** The set of (input, state) pairs whose transition is a self-loop —
    exactly the activation function [F_a] of clock gating, computed
    symbolically instead of by enumeration. *)

val self_loop_probability : t -> float
(** Probability (uniform inputs, uniform occupancy over reachable states)
    that a cycle is a self-loop, from BDD signal probabilities. *)
