(** Markov-chain analysis of state machines.

    Computing exact state and transition probabilities of the STG under an
    input distribution is the quantitative engine behind low-power state
    encoding (Section III-H, "use the transition probability of a given arc
    as a measure of its cost") and the Tyagi entropic bounds. *)

type dist = {
  state_prob : float array;  (** steady-state occupancy per state *)
  trans_prob : float array array;
  (** [trans_prob.(s).(s')]: steady-state probability that a clock cycle
      takes the machine from [s] to [s'] (sums to 1 over all pairs). *)
}

val analyze : ?input_prob:(int -> float) -> Stg.t -> dist
(** Steady-state analysis by power iteration. [input_prob] gives the
    probability of each input word (default uniform); it must sum to 1 over
    the alphabet. Unreachable states get zero probability. *)

val expected_hamming : Stg.t -> dist -> code:(int -> int) -> float
(** Expected Hamming distance per cycle of the state register under the
    encoding [code] — the objective minimized by low-power state
    assignment. *)

val transition_entropy : dist -> float
(** Entropy (bits) of the steady-state transition distribution [p_ij] —
    the [h(p_ij)] of Tyagi's bound. *)

val self_loop_probability : dist -> float
(** Probability that a cycle leaves the state unchanged: the idleness that
    clock gating converts into power savings. *)
