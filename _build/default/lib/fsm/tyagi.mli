(** Tyagi's entropic lower bounds on FSM switching (Section II-B1, [13]).

    For a machine with [T] states whose steady-state transition distribution
    has entropy [h(p_ij)], the expected Hamming distance of the state
    register per cycle is bounded below — regardless of encoding — by

    [h(p_ij) - 1.52 log2 T - 2.16 + 0.5 log2 (log2 T)]

    provided the machine is sparse:
    [t <= 2.23 T^1.72 / sqrt(log2 T)] with [t] the number of transitions of
    nonzero probability. *)

type report = {
  states : int;
  transitions : int;  (** nonzero-probability (state, next) pairs *)
  sparse : bool;  (** whether the sparsity premise holds *)
  entropy : float;  (** [h(p_ij)] in bits *)
  lower_bound : float;  (** the bound above (may be negative = vacuous) *)
}

val report : Stg.t -> Markov.dist -> report

val holds : Stg.t -> Markov.dist -> code:(int -> int) -> bool
(** Checks the bound against the actual expected Hamming distance of an
    encoding (trivially true when the bound is vacuous). *)
