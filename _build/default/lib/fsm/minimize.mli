(** State minimization of completely specified machines by partition
    refinement — the "restructuring" transformation of Section III-H, whose
    equivalence classes also expose the don't-care conditions the paper
    recommends exploiting. *)

val equivalence_classes : Stg.t -> int array
(** [equivalence_classes stg] maps each state to a class id such that two
    states share an id iff they are behaviourally equivalent. *)

val minimize : Stg.t -> Stg.t * int array
(** Minimized machine plus the old-state -> new-state mapping. Outputs and
    behaviour are preserved (see tests). *)

val dc_retarget : Stg.t -> Encode.t -> Stg.t
(** Exploit equivalence classes as don't-cares without collapsing states
    (the paper's recommendation over plain state minimization [89]): every
    transition may land on {e any} state equivalent to its original target,
    so each is re-pointed at the class member whose code is closest (in
    Hamming distance) to the current state's code. Observational behaviour
    is unchanged; state-register switching can only decrease under the
    given encoding. *)
