(** State encoding for low power (Section III-H).

    An encoding embeds the STG into a hypercube so that high-probability
    transitions connect codes at small Hamming distance. The annealing
    encoder implements the cost model common to the encoding literature the
    paper cites ([90]-[94]); re-encoding starts from an existing code. *)

type t = {
  width : int;  (** code width in bits *)
  code : int array;  (** state -> code word; injective *)
}

val natural : Stg.t -> t
(** Binary encoding of the state index, [ceil(log2 S)] bits. *)

val gray : Stg.t -> t
(** Binary-reflected Gray code of the state index. *)

val one_hot : Stg.t -> t

val random : Hlp_util.Prng.t -> Stg.t -> t
(** Random injective minimum-width encoding. *)

val cost : Stg.t -> Markov.dist -> t -> float
(** Expected state-register Hamming distance per cycle under the encoding:
    the switching-activity proxy minimized by low-power assignment. *)

val anneal :
  ?width:int ->
  ?iterations:int ->
  Hlp_util.Prng.t ->
  Stg.t ->
  Markov.dist ->
  t
(** Simulated-annealing embedding: starts from the natural encoding and
    swaps/moves codes to minimize {!cost}. [width] defaults to minimum
    width; one spare bit often helps. *)

val reencode :
  ?iterations:int -> Hlp_util.Prng.t -> Stg.t -> Markov.dist -> t -> t
(** Re-encoding: anneal starting from an existing (e.g. manual) encoding,
    as in Hachtel et al. [95]. *)

val is_injective : t -> bool
(** Sanity predicate used by the property tests. *)
