type report = {
  states : int;
  transitions : int;
  sparse : bool;
  entropy : float;
  lower_bound : float;
}

let log2 x = log x /. log 2.0

let report (stg : Stg.t) dist =
  let states = stg.Stg.num_states in
  let transitions = ref 0 in
  Array.iter
    (Array.iter (fun p -> if p > 0.0 then incr transitions))
    dist.Markov.trans_prob;
  let t = float_of_int !transitions and big_t = float_of_int states in
  let sparse =
    big_t > 1.0 && t <= 2.23 *. (big_t ** 1.72) /. sqrt (log2 big_t)
  in
  let entropy = Markov.transition_entropy dist in
  let lower_bound =
    if states <= 2 then 0.0
    else
      entropy -. (1.52 *. log2 big_t) -. 2.16 +. (0.5 *. log2 (log2 big_t))
  in
  { states; transitions = !transitions; sparse; entropy; lower_bound }

let holds stg dist ~code =
  let r = report stg dist in
  let actual = Markov.expected_hamming stg dist ~code in
  actual >= r.lower_bound -. 1e-9
