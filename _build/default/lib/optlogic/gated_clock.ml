let clock_pin_cap = Hlp_logic.Gate.input_capacitance Hlp_logic.Gate.Dff

type evaluation = {
  normal_cap : float;
  gated_cap : float;
  saving : float;
  idle_fraction : float;
}

(* F_a is an equality comparator between the state register outputs and the
   next-state lines: width XNOR gates and an AND tree, plus the glitch
   filter latch of Fig. 7. Charged per cycle in proportion to how often its
   inputs move. *)
let fa_overhead_per_cycle ~width ~state_activity =
  let xnor = Hlp_logic.Gate.intrinsic_capacitance Hlp_logic.Gate.Xnor in
  float_of_int width *. (xnor +. 2.0) *. state_activity
  +. 3.0 (* AND tree root + latch *) *. state_activity

let evaluate ?(cycles = 4000) ?(seed = 29) ?(input_one_prob = 0.5) stg =
  let open Hlp_fsm in
  let r = Synth.synthesize stg in
  let rng = Hlp_util.Prng.create seed in
  let sim = Hlp_sim.Funcsim.create r.Synth.net in
  let nin = stg.Stg.input_bits in
  let width = Array.length r.Synth.state_wires in
  let idle = ref 0 in
  let prev_state = ref (-1) in
  let state_changes = ref 0 in
  for _ = 1 to cycles do
    let vec = Array.init nin (fun _ -> Hlp_util.Prng.bernoulli rng input_one_prob) in
    Hlp_sim.Funcsim.step sim vec;
    let state =
      Array.fold_left
        (fun acc w -> (acc lsl 1) lor (if Hlp_sim.Funcsim.value sim w then 1 else 0))
        0 r.Synth.state_wires
    in
    (* self-loop detection: the next-state lines equal the current state *)
    let next =
      Array.fold_left
        (fun acc w ->
          let d = r.Synth.net.Hlp_logic.Netlist.nodes.(w).Hlp_logic.Netlist.fanin.(0) in
          (acc lsl 1) lor (if Hlp_sim.Funcsim.value sim d then 1 else 0))
        0 r.Synth.net.Hlp_logic.Netlist.dffs
    in
    let state_reg =
      Array.fold_left
        (fun acc w -> (acc lsl 1) lor (if Hlp_sim.Funcsim.value sim w then 1 else 0))
        0 r.Synth.net.Hlp_logic.Netlist.dffs
    in
    if next = state_reg then incr idle;
    if state <> !prev_state then incr state_changes;
    prev_state := state
  done;
  let logic_cap = Hlp_sim.Funcsim.switched_capacitance sim /. float_of_int cycles in
  let ndffs = float_of_int (Hlp_logic.Netlist.num_dffs r.Synth.net) in
  let idle_fraction = float_of_int !idle /. float_of_int cycles in
  let state_activity = float_of_int !state_changes /. float_of_int cycles in
  let normal_cap = logic_cap +. (ndffs *. clock_pin_cap) in
  let gated_cap =
    logic_cap
    +. (ndffs *. clock_pin_cap *. (1.0 -. idle_fraction))
    +. fa_overhead_per_cycle ~width ~state_activity
  in
  { normal_cap; gated_cap; saving = 1.0 -. (gated_cap /. normal_cap); idle_fraction }
